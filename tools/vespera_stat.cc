/**
 * @file
 * vespera-stat: diff two vespera-metrics documents and gate on
 * regression — the comparison engine behind the BENCH trajectory
 * (compare a fresh `--metrics` export against the committed baseline
 * in tools/bench_baseline/ and fail CI on drift).
 *
 *   vespera-stat [options] <baseline.json> <candidate.json>
 *
 *     --threshold=<frac>           global relative-change gate
 *                                  (default 0.10 = 10%)
 *     --threshold=<prefix>=<frac>  override for metrics whose name
 *                                  starts with <prefix> (longest
 *                                  matching prefix wins; repeatable)
 *     --ignore=<prefix>            exclude matching metrics entirely
 *                                  (repeatable)
 *     --compare-benchmarks         also gate the wall-clock sections
 *                                  ("benchmarks" + "host"); pair with
 *                                  loose --threshold=benchmarks= etc.
 *                                  override — wall time is noisy
 *     --json                       machine-readable vespera-stat/v1
 *                                  report on stdout instead of text
 *
 * Also accepts `vespera-lint-tune/v1` documents (vespera-lint tune
 * --json) on both sides, flattened to:
 *   tune.<kernel>.base_cycles     shipped-config exact cycles
 *   tune.<kernel>.best_cycles     best-found exact cycles
 *   tune.<kernel>.improvement     1 - best/base
 *   tune.<kernel>.configs_screened
 *   tune.totals.<field>           kernels/configs_screened/
 *                                 exact_verifications/opportunities
 * so the bench trajectory can gate "the tuner stopped finding the
 * known-better config" the same way it gates counter drift.
 *
 * Likewise `vespera-lint-migrate/v1` documents (vespera-lint migrate
 * --json) flatten to:
 *   migrate.<kernel>.parity            1/0 (a lost parity diffs as an
 *                                      infinite relative change)
 *   migrate.<kernel>.achieved_fraction hand-time / ported-time
 *   migrate.<kernel>.ported_cycles     static predicted issue cycles
 *   migrate.<kernel>.findings          migration-aware finding count
 *   migrate.totals.<field>             kernels / parity_failures
 *
 * Compared metrics, flattened to dotted names:
 *   counters.<name>               counter value
 *   rates.<name>                  rate meter mean rate
 *   attribution.<scope>.<cat>     attribution seconds (v2 section; v1
 *                                 docs' attrib.* counters normalize to
 *                                 the same keys, so v1 vs v2 works)
 *   histograms.<name>.<stat>      count/mean/p50/p90/p99/p999
 *   host.total_ns                 v2.1 self-profile (--selfprof runs):
 *   host.time.<cat>               self ns per category,
 *   host.calls.<cat>              scope entries per category,
 *   host.alloc.<cat>.{bytes,count} allocation telemetry,
 *   host.cache.kernel_eval.{hits,misses,key_count}
 *   benchmarks.<name>             google-benchmark median real ns
 * The "benchmarks" and "host" sections are wall-clock data and are
 * not compared by default: they vary with the machine, and the
 * simulated counters are the deterministic signal. The selfperf
 * trajectory job opts both in with --compare-benchmarks, gating the
 * machine-independent host *counts* tightly and the nanosecond
 * values with wide per-prefix thresholds.
 *
 * Any relative change beyond the threshold — in either direction — is
 * a regression: a counter that *dropped* 20% usually means lost
 * coverage, not a win. Metrics present only in the candidate are
 * reported but don't fail; metrics that disappeared do fail.
 *
 * Exit codes: 0 = within thresholds, 1 = regression (each offending
 * metric named on stdout), 2 = usage or document error.
 *
 * Timeline mode:
 *
 *   vespera-stat timeline [options] <baseline.json> <candidate.json>
 *
 * diffs the v2.2 "timeline" sections (virtual-time gauge series +
 * SLO monitors, obs/timeline.h) window by window instead of comparing
 * end-of-run aggregates. Extra option:
 *
 *     --skip-windows=<n>           ignore the first <n> windows of
 *                                  every series (warm-up transients)
 *
 * Per series, the comparison localizes a regression to the *first*
 * offending window (index, virtual timestamp, both values) — the
 * window where a trajectory diverged is where to start debugging, and
 * later windows usually just inherit the divergence. Window-count
 * drift, removed series, SLO violated-flag changes, and
 * first-violation-timestamp drift beyond the threshold all fail.
 * Thresholds and --ignore match against the series name
 * ("<label>.<gauge>"), so `--threshold=fig12.serve.ttft=0.2` works
 * the way counter prefixes do. Same exit codes.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/json.h"
#include "common/logging.h"

namespace {

using vespera::json::Value;
using vespera::strfmt;

/** Absolute slack below which a change is noise, not signal. */
constexpr double kAbsEps = 1e-12;

struct PrefixThreshold
{
    std::string prefix;
    double frac = 0.10;
};

struct Config
{
    double threshold = 0.10;
    std::vector<PrefixThreshold> overrides;
    std::vector<std::string> ignores;
    bool compareBenchmarks = false;
    bool jsonOut = false;
    std::string baselinePath;
    std::string candidatePath;
};

struct Finding
{
    std::string metric;
    double baseline = 0;
    double candidate = 0;
    double change = 0; ///< Relative change (inf when baseline is 0).
};

double
thresholdFor(const Config &cfg, const std::string &name)
{
    std::size_t best_len = 0;
    double frac = cfg.threshold;
    for (const PrefixThreshold &o : cfg.overrides) {
        if (o.prefix.size() >= best_len &&
            name.compare(0, o.prefix.size(), o.prefix) == 0) {
            best_len = o.prefix.size();
            frac = o.frac;
        }
    }
    return frac;
}

bool
ignored(const Config &cfg, const std::string &name)
{
    for (const std::string &p : cfg.ignores)
        if (name.compare(0, p.size(), p) == 0)
            return true;
    return false;
}

/** Flatten a `vespera-lint-tune/v1` document (autotuner results)
 *  into comparable dotted-name scalars. */
void
flattenTune(const Value &doc, std::map<std::string, double> &out)
{
    if (const Value *kernels = doc.find("kernels");
        kernels && kernels->isArray()) {
        for (const Value &k : kernels->array()) {
            const Value *name = k.find("kernel");
            if (!name || !name->isString())
                continue;
            const std::string prefix = "tune." + name->str() + ".";
            if (const Value *base = k.find("base")) {
                if (const Value *v = base->find("exact_cycles");
                    v && v->isNumber())
                    out[prefix + "base_cycles"] = v->number();
            }
            if (const Value *best = k.find("best")) {
                if (const Value *v = best->find("exact_cycles");
                    v && v->isNumber())
                    out[prefix + "best_cycles"] = v->number();
            }
            if (const Value *v = k.find("improvement_frac");
                v && v->isNumber())
                out[prefix + "improvement"] = v->number();
            if (const Value *v = k.find("configs_screened");
                v && v->isNumber())
                out[prefix + "configs_screened"] = v->number();
        }
    }
    if (const Value *totals = doc.find("totals");
        totals && totals->isObject()) {
        for (const auto &[name, v] : totals->object()) {
            if (v.isNumber())
                out["tune.totals." + name] = v.number();
        }
    }
}

/** Flatten a `vespera-lint-migrate/v1` document (migration
 *  scorecards) into comparable dotted-name scalars. Parity flattens
 *  to 0/1 so a lost parity shows as an infinite relative change. */
void
flattenMigrate(const Value &doc, std::map<std::string, double> &out)
{
    if (const Value *kernels = doc.find("kernels");
        kernels && kernels->isArray()) {
        for (const Value &k : kernels->array()) {
            const Value *name = k.find("kernel");
            if (!name || !name->isString())
                continue;
            const std::string prefix = "migrate." + name->str() + ".";
            if (const Value *v = k.find("parity"); v && v->isBool())
                out[prefix + "parity"] = v->boolean() ? 1.0 : 0.0;
            if (const Value *v = k.find("achieved_fraction");
                v && v->isNumber())
                out[prefix + "achieved_fraction"] = v->number();
            if (const Value *v = k.find("ported_cycles");
                v && v->isNumber())
                out[prefix + "ported_cycles"] = v->number();
            if (const Value *v = k.find("migration_findings");
                v && v->isNumber())
                out[prefix + "findings"] = v->number();
        }
    }
    if (const Value *totals = doc.find("totals");
        totals && totals->isObject()) {
        for (const auto &[name, v] : totals->object()) {
            if (v.isNumber())
                out["migrate.totals." + name] = v.number();
        }
    }
}

/** Flatten one metrics document into comparable dotted-name scalars. */
bool
flatten(const Value &doc, const std::string &path,
        bool compare_benchmarks, std::map<std::string, double> &out)
{
    const Value *schema = doc.find("schema");
    if (schema && schema->isString() &&
        schema->str() == "vespera-lint-tune/v1") {
        flattenTune(doc, out);
        return true;
    }
    if (schema && schema->isString() &&
        schema->str() == "vespera-lint-migrate/v1") {
        flattenMigrate(doc, out);
        return true;
    }
    if (!schema || !schema->isString() ||
        schema->str().rfind("vespera-metrics/", 0) != 0) {
        std::fprintf(stderr,
                     "vespera-stat: %s is not a vespera-metrics, "
                     "vespera-lint-tune, or vespera-lint-migrate "
                     "document\n",
                     path.c_str());
        return false;
    }

    if (const Value *counters = doc.find("counters");
        counters && counters->isObject()) {
        for (const auto &[name, entry] : counters->object()) {
            const Value *v = entry.find("value");
            if (!v || !v->isNumber())
                continue;
            // v1 docs carry attribution as plain attrib.* counters;
            // normalize them onto the v2 section's key space.
            if (name.rfind("attrib.", 0) == 0 && name.rfind('.') > 7) {
                out["attribution." + name.substr(7)] = v->number();
            } else {
                out["counters." + name] = v->number();
            }
        }
    }
    if (const Value *rates = doc.find("rates");
        rates && rates->isObject()) {
        for (const auto &[name, entry] : rates->object()) {
            if (const Value *v = entry.find("rate");
                v && v->isNumber())
                out["rates." + name] = v->number();
        }
    }
    if (const Value *attrib = doc.find("attribution");
        attrib && attrib->isObject()) {
        for (const auto &[scope, cats] : attrib->object()) {
            if (!cats.isObject())
                continue;
            for (const auto &[cat, v] : cats.object()) {
                if (v.isNumber())
                    out["attribution." + scope + "." + cat] =
                        v.number();
            }
        }
    }
    if (const Value *hists = doc.find("histograms");
        hists && hists->isObject()) {
        static const char *stats[] = {"count", "mean", "p50",
                                      "p90",   "p99",  "p999"};
        for (const auto &[name, entry] : hists->object()) {
            for (const char *stat : stats) {
                if (const Value *v = entry.find(stat);
                    v && v->isNumber())
                    out["histograms." + name + "." + stat] =
                        v->number();
            }
        }
    }
    // The host self-profile is wall-clock data, same boat as the
    // benchmarks section: only trajectory jobs that opted in via
    // --compare-benchmarks should see (and gate) it.
    if (const Value *host = doc.find("host");
        compare_benchmarks && host && host->isObject()) {
        if (const Value *v = host->find("total_ns");
            v && v->isNumber())
            out["host.total_ns"] = v->number();
        for (const char *section : {"time", "calls"}) {
            if (const Value *s = host->find(section);
                s && s->isObject()) {
                for (const auto &[cat, v] : s->object()) {
                    if (v.isNumber())
                        out[std::string("host.") + section + "." +
                            cat] = v.number();
                }
            }
        }
        if (const Value *alloc = host->find("alloc");
            alloc && alloc->isObject()) {
            for (const auto &[cat, entry] : alloc->object()) {
                for (const char *field : {"bytes", "count"}) {
                    if (const Value *v = entry.find(field);
                        v && v->isNumber())
                        out["host.alloc." + cat + "." + field] =
                            v->number();
                }
            }
        }
        if (const Value *cache = host->find("cache");
            cache && cache->isObject()) {
            for (const auto &[name, entry] : cache->object()) {
                for (const char *field :
                     {"hits", "misses", "key_count"}) {
                    if (const Value *v = entry.find(field);
                        v && v->isNumber())
                        out["host.cache." + name + "." + field] =
                            v->number();
                }
            }
        }
    }
    if (compare_benchmarks) {
        if (const Value *bm = doc.find("benchmarks");
            bm && bm->isObject()) {
            for (const auto &[name, v] : bm->object()) {
                if (v.isNumber())
                    out["benchmarks." + name] = v.number();
            }
        }
    }
    return true;
}

bool
loadDoc(const std::string &path, bool compare_benchmarks,
        std::map<std::string, double> &out)
{
    std::string text;
    if (!vespera::readFile(path, text)) {
        std::fprintf(stderr, "vespera-stat: cannot read %s\n",
                     path.c_str());
        return false;
    }
    Value doc;
    std::string err;
    if (!vespera::json::parse(text, doc, &err)) {
        std::fprintf(stderr, "vespera-stat: %s: %s\n", path.c_str(),
                     err.c_str());
        return false;
    }
    return flatten(doc, path, compare_benchmarks, out);
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: vespera-stat [options] <baseline.json> "
        "<candidate.json>\n"
        "  --threshold=<frac>           relative-change gate "
        "(default 0.10)\n"
        "  --threshold=<prefix>=<frac>  per-prefix override "
        "(repeatable)\n"
        "  --ignore=<prefix>            skip matching metrics "
        "(repeatable)\n"
        "  --compare-benchmarks         also gate wall-clock data "
        "(benchmarks + host)\n"
        "  --json                       vespera-stat/v1 JSON report\n");
    return 2;
}

std::string
jsonFindings(const std::vector<Finding> &findings)
{
    std::vector<Value> arr;
    for (const Finding &f : findings) {
        std::map<std::string, Value> e;
        e["metric"] = Value::makeString(f.metric);
        e["baseline"] = Value::makeNumber(f.baseline);
        e["candidate"] = Value::makeNumber(f.candidate);
        e["change"] = Value::makeNumber(
            std::isinf(f.change) ? 1e308 : f.change);
        arr.push_back(Value::makeObject(std::move(e)));
    }
    return vespera::json::serialize(Value::makeArray(std::move(arr)));
}

// ---------------------------------------------------------------------------
// `vespera-stat timeline`: window-by-window diff of v2.2 sections.

int
usageTimeline()
{
    std::fprintf(
        stderr,
        "usage: vespera-stat timeline [options] <baseline.json> "
        "<candidate.json>\n"
        "  --threshold=<frac>           per-window relative gate "
        "(default 0.10)\n"
        "  --threshold=<prefix>=<frac>  per-series override "
        "(repeatable)\n"
        "  --skip-windows=<n>           ignore the first <n> windows "
        "(warm-up)\n"
        "  --ignore=<prefix>            skip matching series "
        "(repeatable)\n"
        "  --json                       vespera-stat-timeline/v1 JSON "
        "report\n");
    return 2;
}

struct TimelineSeriesData
{
    double dropped = 0;
    std::vector<std::pair<double, double>> samples; ///< (t, value)
};

struct TimelineSlo
{
    double bound = 0;
    bool violated = false;
    double firstT = -1;
};

struct TimelineDoc
{
    double interval = 0;
    std::map<std::string, TimelineSeriesData> series;
    std::map<std::string, TimelineSlo> slos;
};

bool
loadTimeline(const std::string &path, TimelineDoc &out)
{
    std::string text;
    if (!vespera::readFile(path, text)) {
        std::fprintf(stderr, "vespera-stat: cannot read %s\n",
                     path.c_str());
        return false;
    }
    Value doc;
    std::string err;
    if (!vespera::json::parse(text, doc, &err)) {
        std::fprintf(stderr, "vespera-stat: %s: %s\n", path.c_str(),
                     err.c_str());
        return false;
    }
    const Value *schema = doc.find("schema");
    if (!schema || !schema->isString() ||
        schema->str().rfind("vespera-metrics/", 0) != 0) {
        std::fprintf(stderr,
                     "vespera-stat: %s is not a vespera-metrics "
                     "document\n",
                     path.c_str());
        return false;
    }
    const Value *tl = doc.find("timeline");
    if (!tl || !tl->isObject()) {
        std::fprintf(stderr,
                     "vespera-stat: %s has no \"timeline\" section "
                     "(produce one with --timeline-interval)\n",
                     path.c_str());
        return false;
    }
    if (const Value *v = tl->find("interval_seconds");
        v && v->isNumber())
        out.interval = v->number();
    if (const Value *series = tl->find("series");
        series && series->isObject()) {
        for (const auto &[name, entry] : series->object()) {
            TimelineSeriesData s;
            if (const Value *d = entry.find("dropped");
                d && d->isNumber())
                s.dropped = d->number();
            if (const Value *samples = entry.find("samples");
                samples && samples->isArray()) {
                for (const Value &smp : samples->array()) {
                    if (!smp.isArray() || smp.array().size() != 2 ||
                        !smp.array()[0].isNumber() ||
                        !smp.array()[1].isNumber())
                        continue;
                    s.samples.emplace_back(smp.array()[0].number(),
                                           smp.array()[1].number());
                }
            }
            out.series.emplace(name, std::move(s));
        }
    }
    if (const Value *slo = tl->find("slo"); slo && slo->isObject()) {
        for (const auto &[name, entry] : slo->object()) {
            TimelineSlo s;
            if (const Value *v = entry.find("bound");
                v && v->isNumber())
                s.bound = v->number();
            if (const Value *v = entry.find("violated");
                v && v->isBool())
                s.violated = v->boolean();
            if (const Value *v = entry.find("first_violation_seconds");
                v && v->isNumber())
                s.firstT = v->number();
            out.slos.emplace(name, s);
        }
    }
    return true;
}

/** Relative change of cand vs base; inf when base is 0, 0 on noise. */
double
relChange(double base, double cand)
{
    const double diff = std::abs(cand - base);
    if (diff <= kAbsEps)
        return 0.0;
    return base != 0.0 ? diff / std::abs(base)
                       : std::numeric_limits<double>::infinity();
}

int
timelineMain(int argc, char **argv)
{
    Config cfg;
    std::size_t skip = 0;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; i++) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--threshold=", 12) == 0) {
            const std::string rest(arg + 12);
            const std::size_t eq = rest.find('=');
            if (eq == std::string::npos) {
                cfg.threshold = std::atof(rest.c_str());
            } else {
                cfg.overrides.push_back(
                    {rest.substr(0, eq),
                     std::atof(rest.c_str() + eq + 1)});
            }
        } else if (std::strncmp(arg, "--skip-windows=", 15) == 0) {
            skip = static_cast<std::size_t>(std::atoi(arg + 15));
        } else if (std::strncmp(arg, "--ignore=", 9) == 0) {
            cfg.ignores.emplace_back(arg + 9);
        } else if (std::strcmp(arg, "--json") == 0) {
            cfg.jsonOut = true;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            usageTimeline();
            return 0;
        } else if (arg[0] == '-') {
            std::fprintf(stderr, "vespera-stat: unknown flag %s\n",
                         arg);
            return usageTimeline();
        } else {
            positional.emplace_back(arg);
        }
    }
    if (positional.size() != 2)
        return usageTimeline();
    cfg.baselinePath = positional[0];
    cfg.candidatePath = positional[1];

    TimelineDoc base, cand;
    if (!loadTimeline(cfg.baselinePath, base) ||
        !loadTimeline(cfg.candidatePath, cand))
        return 2;

    std::vector<Finding> regressions;
    std::vector<std::string> added, removed, notes;
    std::size_t compared = 0;

    if (relChange(base.interval, cand.interval) > cfg.threshold) {
        regressions.push_back({"timeline.interval_seconds",
                               base.interval, cand.interval,
                               relChange(base.interval,
                                         cand.interval)});
    }

    for (const auto &[name, bs] : base.series) {
        if (ignored(cfg, name))
            continue;
        const auto it = cand.series.find(name);
        if (it == cand.series.end()) {
            removed.push_back(name);
            continue;
        }
        compared++;
        const TimelineSeriesData &cs = it->second;
        if (bs.samples.size() != cs.samples.size()) {
            regressions.push_back(
                {name + " (window count)",
                 static_cast<double>(bs.samples.size()),
                 static_cast<double>(cs.samples.size()),
                 relChange(static_cast<double>(bs.samples.size()),
                           static_cast<double>(cs.samples.size()))});
        }
        const double thr = thresholdFor(cfg, name);
        const std::size_t n =
            std::min(bs.samples.size(), cs.samples.size());
        // Localize to the FIRST offending window: later windows
        // usually inherit the divergence, so the earliest one is
        // where the trajectories actually split.
        for (std::size_t w = skip; w < n; w++) {
            const auto &[bt, bv] = bs.samples[w];
            const auto &[ct, cv] = cs.samples[w];
            const double t_rel = relChange(bt, ct);
            const double v_rel = relChange(bv, cv);
            if (t_rel > cfg.threshold || v_rel > thr) {
                const bool time_off = t_rel > cfg.threshold;
                regressions.push_back(
                    {strfmt("%s window %zu (t=%.6g)%s", name.c_str(),
                            w, bt, time_off ? " [timestamp]" : ""),
                     time_off ? bt : bv, time_off ? ct : cv,
                     std::max(t_rel, v_rel)});
                break;
            }
        }
    }
    for (const auto &[name, cs] : cand.series) {
        (void)cs;
        if (!ignored(cfg, name) &&
            base.series.find(name) == base.series.end())
            added.push_back(name);
    }

    for (const auto &[name, bslo] : base.slos) {
        if (ignored(cfg, name))
            continue;
        const auto it = cand.slos.find(name);
        if (it == cand.slos.end()) {
            removed.push_back("slo." + name);
            continue;
        }
        compared++;
        const TimelineSlo &cslo = it->second;
        if (bslo.violated != cslo.violated) {
            regressions.push_back(
                {"slo." + name + " (violated flag)",
                 bslo.violated ? 1.0 : 0.0, cslo.violated ? 1.0 : 0.0,
                 std::numeric_limits<double>::infinity()});
        } else if (bslo.violated &&
                   relChange(bslo.firstT, cslo.firstT) >
                       thresholdFor(cfg, "slo." + name)) {
            regressions.push_back(
                {"slo." + name + " (first violation t)", bslo.firstT,
                 cslo.firstT, relChange(bslo.firstT, cslo.firstT)});
        }
    }

    const bool fail = !regressions.empty() || !removed.empty();

    if (cfg.jsonOut) {
        std::string out = "{\n";
        out += "  \"schema\": \"vespera-stat-timeline/v1\",\n";
        out += strfmt("  \"baseline\": \"%s\",\n",
                      cfg.baselinePath.c_str());
        out += strfmt("  \"candidate\": \"%s\",\n",
                      cfg.candidatePath.c_str());
        out += strfmt("  \"threshold\": %g,\n", cfg.threshold);
        out += strfmt("  \"skip_windows\": %zu,\n", skip);
        out += strfmt("  \"compared\": %zu,\n", compared);
        out += "  \"regressions\": " + jsonFindings(regressions) +
               ",\n";
        std::vector<Value> rm, ad;
        for (const std::string &n : removed)
            rm.push_back(Value::makeString(n));
        for (const std::string &n : added)
            ad.push_back(Value::makeString(n));
        out += "  \"removed\": " +
               vespera::json::serialize(
                   Value::makeArray(std::move(rm))) +
               ",\n";
        out += "  \"added\": " +
               vespera::json::serialize(
                   Value::makeArray(std::move(ad))) +
               ",\n";
        out += strfmt("  \"pass\": %s\n", fail ? "false" : "true");
        out += "}\n";
        std::fputs(out.c_str(), stdout);
        return fail ? 1 : 0;
    }

    std::printf("vespera-stat timeline: %s vs %s "
                "(threshold %g%%, skipping %zu warm-up windows)\n",
                cfg.baselinePath.c_str(), cfg.candidatePath.c_str(),
                cfg.threshold * 100.0, skip);
    for (const Finding &f : regressions) {
        std::printf("  REGRESSION %-56s %.6g -> %.6g\n",
                    f.metric.c_str(), f.baseline, f.candidate);
    }
    for (const std::string &n : removed)
        std::printf("  REMOVED    %s (present in baseline only)\n",
                    n.c_str());
    for (const std::string &n : added)
        std::printf("  added      %s (not gated)\n", n.c_str());
    std::printf("%s: %zu series/SLOs compared, %zu regression%s, "
                "%zu removed, %zu added\n",
                fail ? "FAIL" : "OK", compared, regressions.size(),
                regressions.size() == 1 ? "" : "s", removed.size(),
                added.size());
    return fail ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Subcommand dispatch: `vespera-stat timeline ...` diffs timeline
    // sections; everything else is the classic metrics diff.
    if (argc >= 2 && std::strcmp(argv[1], "timeline") == 0)
        return timelineMain(argc - 1, argv + 1);

    Config cfg;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; i++) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--threshold=", 12) == 0) {
            const std::string rest(arg + 12);
            const std::size_t eq = rest.find('=');
            if (eq == std::string::npos) {
                cfg.threshold = std::atof(rest.c_str());
            } else {
                cfg.overrides.push_back(
                    {rest.substr(0, eq),
                     std::atof(rest.c_str() + eq + 1)});
            }
        } else if (std::strncmp(arg, "--ignore=", 9) == 0) {
            cfg.ignores.emplace_back(arg + 9);
        } else if (std::strcmp(arg, "--compare-benchmarks") == 0) {
            cfg.compareBenchmarks = true;
        } else if (std::strcmp(arg, "--json") == 0) {
            cfg.jsonOut = true;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            usage();
            return 0;
        } else if (arg[0] == '-') {
            std::fprintf(stderr, "vespera-stat: unknown flag %s\n",
                         arg);
            return usage();
        } else {
            positional.emplace_back(arg);
        }
    }
    if (positional.size() != 2)
        return usage();
    cfg.baselinePath = positional[0];
    cfg.candidatePath = positional[1];

    std::map<std::string, double> base, cand;
    if (!loadDoc(cfg.baselinePath, cfg.compareBenchmarks, base) ||
        !loadDoc(cfg.candidatePath, cfg.compareBenchmarks, cand))
        return 2;

    std::vector<Finding> regressions;
    std::vector<std::string> added, removed;
    std::size_t compared = 0;

    for (const auto &[name, bval] : base) {
        if (ignored(cfg, name))
            continue;
        const auto it = cand.find(name);
        if (it == cand.end()) {
            removed.push_back(name);
            continue;
        }
        compared++;
        const double cval = it->second;
        const double diff = std::abs(cval - bval);
        if (diff <= kAbsEps)
            continue;
        const double rel =
            bval != 0.0
                ? diff / std::abs(bval)
                : std::numeric_limits<double>::infinity();
        if (rel > thresholdFor(cfg, name))
            regressions.push_back({name, bval, cval, rel});
    }
    for (const auto &[name, cval] : cand) {
        (void)cval;
        if (!ignored(cfg, name) && base.find(name) == base.end())
            added.push_back(name);
    }

    const bool fail = !regressions.empty() || !removed.empty();

    if (cfg.jsonOut) {
        std::string out = "{\n";
        out += "  \"schema\": \"vespera-stat/v1\",\n";
        out += strfmt("  \"baseline\": \"%s\",\n",
                      cfg.baselinePath.c_str());
        out += strfmt("  \"candidate\": \"%s\",\n",
                      cfg.candidatePath.c_str());
        out += strfmt("  \"threshold\": %g,\n", cfg.threshold);
        out += strfmt("  \"compared\": %zu,\n", compared);
        out += "  \"regressions\": " + jsonFindings(regressions) +
               ",\n";
        std::vector<Value> rm, ad;
        for (const std::string &n : removed)
            rm.push_back(Value::makeString(n));
        for (const std::string &n : added)
            ad.push_back(Value::makeString(n));
        out += "  \"removed\": " +
               vespera::json::serialize(
                   Value::makeArray(std::move(rm))) +
               ",\n";
        out += "  \"added\": " +
               vespera::json::serialize(
                   Value::makeArray(std::move(ad))) +
               ",\n";
        out += strfmt("  \"pass\": %s\n", fail ? "false" : "true");
        out += "}\n";
        std::fputs(out.c_str(), stdout);
        return fail ? 1 : 0;
    }

    std::printf("vespera-stat: %s vs %s (threshold %g%%)\n",
                cfg.baselinePath.c_str(), cfg.candidatePath.c_str(),
                cfg.threshold * 100.0);
    std::sort(regressions.begin(), regressions.end(),
              [](const Finding &a, const Finding &b) {
                  return a.change > b.change;
              });
    for (const Finding &f : regressions) {
        std::printf("  REGRESSION %-48s %.6g -> %.6g (%+.1f%%)\n",
                    f.metric.c_str(), f.baseline, f.candidate,
                    (f.candidate - f.baseline) /
                        (f.baseline != 0 ? std::abs(f.baseline)
                                         : 1.0) *
                        100.0);
    }
    for (const std::string &n : removed)
        std::printf("  REMOVED    %s (present in baseline only)\n",
                    n.c_str());
    for (const std::string &n : added)
        std::printf("  added      %s (not gated)\n", n.c_str());
    std::printf("%s: %zu metrics compared, %zu regression%s, "
                "%zu removed, %zu added\n",
                fail ? "FAIL" : "OK", compared, regressions.size(),
                regressions.size() == 1 ? "" : "s", removed.size(),
                added.size());
    return fail ? 1 : 0;
}
