/**
 * @file
 * vespera-lint: static analysis over the repo's TPC kernels and model
 * graphs.
 *
 * Two modes share one CLI:
 *
 *  - trace (default): runs every kernel registered in
 *    analysis::KernelRegistry under trace capture, analyzes each
 *    recorded tpc::Program against the cycle simulator's IssueTrace,
 *    lints the DLRM dense graph at raw and compiled stages, and
 *    reports findings as text and/or JSON (schema "vespera-lint/v1").
 *
 *  - static: lifts the same recorded traces to SSA IR and runs the
 *    pre-execution analyzer (analysis/static/) — dataflow passes plus
 *    the static cost model — without consuming a simulator cycle.
 *    Reports use schema "vespera-lint-static/v1" (per-finding fix
 *    hints, IR shape, predicted-cycle breakdown).
 *
 *  - migrate: lowers every CUDA kernel desc in the migration corpus
 *    (port/corpus.h) onto tpc::Program, checks functional parity
 *    against the lockstep CUDA reference interpreter, measures the
 *    achieved fraction of the hand-written TPC-C comparator's
 *    performance, and attributes the gap with the migration-aware
 *    static-analyzer passes. Reports use schema
 *    "vespera-lint-migrate/v1"; the baseline ratchet
 *    ("vespera-lint-migrate-baseline/v1") pins parity and achieved
 *    fraction so they can only improve.
 *
 *  - tune: runs the static design-space autotuner
 *    (analysis/predict/) over every registered tunable kernel —
 *    proxy-screens the knob cross product, exact-verifies the top-k,
 *    and reports the best configuration found as a fix hint. Reports
 *    use schema "vespera-lint-tune/v1". `tune --calibrate=PATH`
 *    refits the proxy coefficients against the exact static scheduler
 *    and writes the versioned artifact instead of tuning.
 *
 * CI runs all modes with checked-in warnings baselines: any
 * error-severity finding, or any warning count above the baseline,
 * fails the build.
 *
 * Usage:
 *   vespera-lint [static|tune|migrate] [--list] [--kernel=SUBSTR]
 *                [--json[=PATH]] [--baseline=PATH]
 *                [--write-baseline=PATH] [--update-baseline]
 *                [--fail-on=error|warning|none] [--verbose]
 *                [--top-k=N] [--coeffs=PATH] [--calibrate=PATH]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/kernel_registry.h"
#include "analysis/migrate/migrate_report.h"
#include "analysis/migrate/scorecard.h"
#include "analysis/predict/calibrate.h"
#include "analysis/predict/proxy.h"
#include "analysis/predict/tune_report.h"
#include "analysis/predict/tuner.h"
#include "analysis/report.h"
#include "analysis/static/static_analyzer.h"
#include "analysis/static/static_report.h"
#include "graph/compiler.h"
#include "graph/lint.h"
#include "models/dlrm.h"
#include "port/corpus.h"

namespace {

using vespera::analysis::Diagnostic;
using vespera::analysis::LintEntry;
using vespera::analysis::Report;
using vespera::analysis::Severity;
using vespera::analysis::StaticLintEntry;

struct Options
{
    bool staticMode = false;  ///< "static" subcommand.
    bool tuneMode = false;    ///< "tune" subcommand.
    bool migrateMode = false; ///< "migrate" subcommand.
    int topK = 5;            ///< Exact verifications per kernel (tune).
    std::string coeffsPath;  ///< Proxy coefficients ("" = builtin).
    /// Refit the proxy and write coefficients here instead of tuning.
    std::string calibratePath;
    bool list = false;
    bool verbose = false;
    bool json = false;
    std::string jsonPath;          ///< "" = stdout.
    std::string kernelFilter;
    std::string baselinePath;
    std::string writeBaselinePath;
    /// Rewrite --baseline's file in place from this run instead of
    /// comparing against it (the ratchet update).
    bool updateBaseline = false;
    Severity failOn = Severity::Error;
    bool failOnNothing = false;
};

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [static|tune|migrate] [options]\n"
        "  static                 pre-execution analyzer (SSA IR +\n"
        "                         static cost model) instead of the\n"
        "                         trace/simulator pipeline\n"
        "  migrate                CUDA->TPC migration scorecard:\n"
        "                         lower the CUDA corpus, check parity\n"
        "                         vs the reference interpreter, report\n"
        "                         achieved fraction of hand-written\n"
        "                         performance and migration findings\n"
        "  tune                   static design-space autotuner:\n"
        "                         proxy-screen knob cross products,\n"
        "                         exact-verify the top-k\n"
        "  --top-k=N              tune: exact verifications per kernel\n"
        "  --coeffs=PATH          tune: proxy coefficients JSON\n"
        "                         (default: built-in artifact)\n"
        "  --calibrate=PATH       tune: refit the proxy against the\n"
        "                         static scheduler, write coefficients\n"
        "                         to PATH, and exit\n"
        "  --list                 list registered kernels and exit\n"
        "  --kernel=SUBSTR        only kernels whose name contains "
        "SUBSTR\n"
        "  --json[=PATH]          emit JSON report (stdout or PATH)\n"
        "  --baseline=PATH        fail when warnings exceed baseline\n"
        "  --write-baseline=PATH  write the current warnings baseline\n"
        "  --update-baseline      rewrite --baseline's file in place\n"
        "                         from this run (skips the check)\n"
        "  --fail-on=SEV          error (default) | warning | none\n"
        "  --verbose              per-trace stats even when clean\n",
        argv0);
    return 2;
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        auto value = [&arg](const char *flag) -> const char * {
            const std::size_t n = std::strlen(flag);
            if (arg.compare(0, n, flag) == 0 && arg.size() > n &&
                arg[n] == '=') {
                return arg.c_str() + n + 1;
            }
            return nullptr;
        };
        if (arg == "static") {
            opt.staticMode = true;
        } else if (arg == "tune") {
            opt.tuneMode = true;
        } else if (arg == "migrate") {
            opt.migrateMode = true;
        } else if (const char *v = value("--top-k")) {
            opt.topK = std::atoi(v);
            if (opt.topK < 1)
                return false;
        } else if (const char *v = value("--coeffs")) {
            opt.coeffsPath = v;
        } else if (const char *v = value("--calibrate")) {
            opt.calibratePath = v;
        } else if (arg == "--list") {
            opt.list = true;
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else if (arg == "--json") {
            opt.json = true;
        } else if (arg == "--update-baseline") {
            opt.updateBaseline = true;
        } else if (const char *v = value("--json")) {
            opt.json = true;
            opt.jsonPath = v;
        } else if (const char *v = value("--kernel")) {
            opt.kernelFilter = v;
        } else if (const char *v = value("--baseline")) {
            opt.baselinePath = v;
        } else if (const char *v = value("--write-baseline")) {
            opt.writeBaselinePath = v;
        } else if (const char *v = value("--fail-on")) {
            if (std::strcmp(v, "error") == 0) {
                opt.failOn = Severity::Error;
            } else if (std::strcmp(v, "warning") == 0) {
                opt.failOn = Severity::Warning;
            } else if (std::strcmp(v, "none") == 0) {
                opt.failOnNothing = true;
            } else {
                return false;
            }
        } else {
            return false;
        }
    }
    // --update-baseline without a --baseline has nothing to rewrite.
    if (opt.updateBaseline && opt.baselinePath.empty())
        return false;
    // The subcommands are mutually exclusive; calibration is a tune
    // operation.
    if (opt.staticMode + opt.tuneMode + opt.migrateMode > 1)
        return false;
    if (!opt.calibratePath.empty() && !opt.tuneMode)
        return false;
    return true;
}

/** Wrap graph-lint diagnostics in a Report so they share the render /
 *  baseline path with kernel traces. */
Report
graphReport(const std::string &name, std::vector<Diagnostic> diags)
{
    Report r;
    r.kernel = name;
    for (Diagnostic &d : diags) {
        vespera::analysis::RuleSummary &s = r.rules[d.rule];
        s.count++;
        s.costCycles += d.costCycles;
        s.wastedBytes += d.wastedBytes;
        r.diagnostics.push_back(std::move(d));
    }
    return r;
}

void
appendGraphEntries(const Options &opt, std::vector<LintEntry> &entries)
{
    using vespera::models::DlrmConfig;
    using vespera::models::DlrmModel;
    using vespera::models::DlrmRunConfig;

    struct Stage
    {
        const char *name;
        bool compiled;
    };
    static constexpr Stage stages[] = {
        {"graph:dlrm_rm1:raw", false},
        {"graph:dlrm_rm1:compiled", true},
    };
    for (const Stage &stage : stages) {
        if (!opt.kernelFilter.empty() &&
            std::string(stage.name).find(opt.kernelFilter) ==
                std::string::npos) {
            continue;
        }
        DlrmModel model(DlrmConfig::rm1());
        vespera::graph::Graph g =
            model.buildDenseGraph(DlrmRunConfig{});
        if (stage.compiled)
            vespera::graph::Compiler().compile(g);
        LintEntry e;
        e.kernel = stage.name;
        e.shape = "rm1 batch=1024";
        e.report =
            graphReport(stage.name, vespera::graph::lintGraph(g));
        entries.push_back(std::move(e));
    }
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    out << content << "\n";
    return true;
}

/**
 * Everything after rendering, identical in both modes: baseline
 * writing / in-place update / comparison, and the --fail-on gate.
 * Returns the process exit code.
 */
int
finishRun(const Options &opt, const std::vector<LintEntry> &entries)
{
    const std::string baseline_doc = vespera::json::serialize(
        vespera::analysis::baselineJson(entries));
    if (!opt.writeBaselinePath.empty() &&
        !writeFile(opt.writeBaselinePath, baseline_doc)) {
        return 2;
    }
    if (opt.updateBaseline) {
        // Rewrite the ratchet from this run; comparing against the
        // file we just wrote would be vacuous, so skip the check.
        if (!writeFile(opt.baselinePath, baseline_doc))
            return 2;
        std::fprintf(stderr, "baseline %s updated\n",
                     opt.baselinePath.c_str());
    }

    int rc = 0;
    if (!opt.baselinePath.empty() && !opt.updateBaseline) {
        std::ifstream in(opt.baselinePath);
        if (!in) {
            std::fprintf(stderr, "cannot read baseline %s\n",
                         opt.baselinePath.c_str());
            return 2;
        }
        std::stringstream buf;
        buf << in.rdbuf();
        vespera::json::Value baseline;
        std::string error;
        if (!vespera::json::parse(buf.str(), baseline, &error)) {
            std::fprintf(stderr, "baseline %s: %s\n",
                         opt.baselinePath.c_str(), error.c_str());
            return 2;
        }
        const vespera::analysis::BaselineCheck check =
            vespera::analysis::checkAgainstBaseline(entries, baseline);
        for (const std::string &failure : check.failures)
            std::fprintf(stderr, "BASELINE: %s\n", failure.c_str());
        if (!check.ok)
            rc = 1;
    }
    if (!opt.failOnNothing) {
        for (const LintEntry &e : entries) {
            if (e.report.hasSeverity(opt.failOn)) {
                std::fprintf(
                    stderr, "FAIL: %s has findings at or above %s\n",
                    e.kernel.c_str(),
                    vespera::analysis::severityName(opt.failOn));
                rc = 1;
            }
        }
    }
    return rc;
}

/** Emit `doc` per the --json options. */
int
emitJson(const Options &opt, const vespera::json::Value &doc)
{
    const std::string text = vespera::json::serialize(doc);
    if (opt.jsonPath.empty()) {
        std::puts(text.c_str());
        return 0;
    }
    return writeFile(opt.jsonPath, text) ? 0 : 2;
}

int
runStatic(const Options &opt)
{
    vespera::analysis::KernelRegistry &reg =
        vespera::analysis::KernelRegistry::instance();
    std::vector<StaticLintEntry> entries;
    for (vespera::analysis::TracedKernel &t :
         reg.traceAll(opt.kernelFilter)) {
        StaticLintEntry e;
        e.kernel = t.name;
        e.shape = t.shape;
        e.report = vespera::analysis::analyzeProgramStatic(t.program);
        entries.push_back(std::move(e));
    }
    if (entries.empty()) {
        std::fprintf(stderr, "no kernels match filter '%s'\n",
                     opt.kernelFilter.c_str());
        return 2;
    }

    if (!opt.json || !opt.jsonPath.empty()) {
        std::fputs(vespera::analysis::staticLintReportText(
                       entries, opt.verbose)
                       .c_str(),
                   stdout);
    }
    if (opt.json) {
        const int rc = emitJson(
            opt, vespera::analysis::staticLintReportJson(entries));
        if (rc != 0)
            return rc;
    }
    return finishRun(opt,
                     vespera::analysis::toLintEntries(entries));
}

/** tune --calibrate=PATH: refit, report per-family error, write the
 *  coefficient artifact. */
int
runCalibrate(const Options &opt)
{
    const vespera::analysis::CalibrationReport report =
        vespera::analysis::calibrateProxy(opt.kernelFilter);
    for (const vespera::analysis::CalibrationFamily &f :
         report.families) {
        std::printf("%-24s %3zu samples: calibration %5.1f%%, "
                    "held-out %5.1f%%\n",
                    f.name.c_str(), f.samples,
                    f.maxCalibrationErr * 100.0,
                    f.maxHeldOutErr * 100.0);
    }
    std::printf("worst held-out error: %.1f%%\n",
                report.maxHeldOutErr() * 100.0);
    const std::string doc =
        vespera::json::serialize(report.model.toJson());
    if (!writeFile(opt.calibratePath, doc))
        return 2;
    std::fprintf(stderr, "coefficients written to %s\n",
                 opt.calibratePath.c_str());
    // The ±15% contract is a test-time gate too, but failing it at
    // fit time makes a bad refit impossible to commit silently.
    return report.maxHeldOutErr() <= 0.15 ? 0 : 1;
}

int
runTune(const Options &opt)
{
    if (!opt.calibratePath.empty())
        return runCalibrate(opt);

    vespera::analysis::ProxyModel loaded;
    vespera::analysis::TunerOptions topts;
    topts.topK = opt.topK;
    if (!opt.coeffsPath.empty()) {
        std::ifstream in(opt.coeffsPath);
        if (!in) {
            std::fprintf(stderr, "cannot read coeffs %s\n",
                         opt.coeffsPath.c_str());
            return 2;
        }
        std::stringstream buf;
        buf << in.rdbuf();
        vespera::json::Value doc;
        std::string error;
        if (!vespera::json::parse(buf.str(), doc, &error) ||
            !vespera::analysis::ProxyModel::fromJson(doc, loaded,
                                                     &error)) {
            std::fprintf(stderr, "coeffs %s: %s\n",
                         opt.coeffsPath.c_str(), error.c_str());
            return 2;
        }
        topts.model = &loaded;
    }

    const std::vector<vespera::analysis::TuneResult> results =
        vespera::analysis::autotuneAll(opt.kernelFilter, topts);
    if (results.empty()) {
        std::fprintf(stderr, "no tunables match filter '%s'\n",
                     opt.kernelFilter.c_str());
        return 2;
    }

    if (!opt.json || !opt.jsonPath.empty()) {
        std::fputs(
            vespera::analysis::tuneReportText(results, opt.verbose)
                .c_str(),
            stdout);
    }
    if (opt.json) {
        const int rc = emitJson(
            opt, vespera::analysis::tuneReportJson(results));
        if (rc != 0)
            return rc;
    }
    return finishRun(opt,
                     vespera::analysis::tuneToLintEntries(results));
}

/**
 * migrate: the CUDA->TPC porting scorecard. The baseline format
 * ("vespera-lint-migrate-baseline/v1", per-kernel parity + achieved
 * fraction) differs from the warnings baseline, so this mode has its
 * own finish path instead of finishRun.
 */
int
runMigrate(const Options &opt)
{
    std::vector<vespera::analysis::MigrateEntry> entries;
    for (vespera::analysis::MigrateEntry &e :
         vespera::analysis::runMigrationCorpus({})) {
        if (!opt.kernelFilter.empty() &&
            e.kernel.find(opt.kernelFilter) == std::string::npos) {
            continue;
        }
        entries.push_back(std::move(e));
    }
    if (entries.empty()) {
        std::fprintf(stderr, "no kernels match filter '%s'\n",
                     opt.kernelFilter.c_str());
        return 2;
    }

    if (!opt.json || !opt.jsonPath.empty()) {
        std::fputs(vespera::analysis::migrateReportText(entries,
                                                        opt.verbose)
                       .c_str(),
                   stdout);
    }
    if (opt.json) {
        const int rc = emitJson(
            opt, vespera::analysis::migrateReportJson(entries));
        if (rc != 0)
            return rc;
    }

    const std::string baseline_doc = vespera::json::serialize(
        vespera::analysis::migrateBaselineJson(entries));
    if (!opt.writeBaselinePath.empty() &&
        !writeFile(opt.writeBaselinePath, baseline_doc)) {
        return 2;
    }
    if (opt.updateBaseline) {
        if (!writeFile(opt.baselinePath, baseline_doc))
            return 2;
        std::fprintf(stderr, "baseline %s updated\n",
                     opt.baselinePath.c_str());
    }

    int rc = 0;
    if (!opt.baselinePath.empty() && !opt.updateBaseline) {
        std::ifstream in(opt.baselinePath);
        if (!in) {
            std::fprintf(stderr, "cannot read baseline %s\n",
                         opt.baselinePath.c_str());
            return 2;
        }
        std::stringstream buf;
        buf << in.rdbuf();
        vespera::json::Value baseline;
        std::string error;
        if (!vespera::json::parse(buf.str(), baseline, &error)) {
            std::fprintf(stderr, "baseline %s: %s\n",
                         opt.baselinePath.c_str(), error.c_str());
            return 2;
        }
        const vespera::analysis::BaselineCheck check =
            vespera::analysis::checkMigrateBaseline(entries, baseline);
        for (const std::string &failure : check.failures)
            std::fprintf(stderr, "BASELINE: %s\n", failure.c_str());
        if (!check.ok)
            rc = 1;
    }
    if (!opt.failOnNothing) {
        // Parity failures are always fatal; analyzer findings gate at
        // the usual --fail-on severity.
        for (const vespera::analysis::MigrateEntry &e : entries) {
            if (!e.parity) {
                std::fprintf(stderr, "FAIL: %s fails parity\n",
                             e.kernel.c_str());
                rc = 1;
            }
            if (e.analysis.report.hasSeverity(opt.failOn)) {
                std::fprintf(
                    stderr, "FAIL: %s has findings at or above %s\n",
                    e.kernel.c_str(),
                    vespera::analysis::severityName(opt.failOn));
                rc = 1;
            }
        }
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return usage(argv[0]);

    vespera::analysis::registerBuiltinKernels();
    vespera::analysis::registerTunableKernels();
    vespera::analysis::KernelRegistry &reg =
        vespera::analysis::KernelRegistry::instance();

    if (opt.list) {
        if (opt.migrateMode) {
            for (const vespera::port::CorpusEntry &e :
                 vespera::port::migrationCorpus()) {
                std::printf("%s [%s]\n", e.desc.name.c_str(),
                            e.desc.shape.c_str());
            }
            return 0;
        }
        if (opt.tuneMode) {
            const vespera::analysis::TunableRegistry &tunables =
                vespera::analysis::TunableRegistry::instance();
            for (const std::string &name : tunables.names()) {
                std::printf(
                    "%s (%zu configs)\n", name.c_str(),
                    tunables.get(name).configCount());
            }
            return 0;
        }
        for (const std::string &name : reg.names())
            std::printf("%s\n", name.c_str());
        return 0;
    }
    if (opt.migrateMode)
        return runMigrate(opt);
    if (opt.tuneMode)
        return runTune(opt);
    if (opt.staticMode)
        return runStatic(opt);

    std::vector<LintEntry> entries;
    for (vespera::analysis::TracedKernel &t :
         reg.traceAll(opt.kernelFilter)) {
        LintEntry e;
        e.kernel = t.name;
        e.shape = t.shape;
        e.report = vespera::analysis::analyzeProgram(t.program);
        entries.push_back(std::move(e));
    }
    appendGraphEntries(opt, entries);

    if (entries.empty()) {
        std::fprintf(stderr, "no kernels match filter '%s'\n",
                     opt.kernelFilter.c_str());
        return 2;
    }

    if (!opt.json || !opt.jsonPath.empty()) {
        std::fputs(
            vespera::analysis::lintReportText(entries, opt.verbose)
                .c_str(),
            stdout);
    }
    if (opt.json) {
        const int rc =
            emitJson(opt, vespera::analysis::lintReportJson(entries));
        if (rc != 0)
            return rc;
    }
    return finishRun(opt, entries);
}
