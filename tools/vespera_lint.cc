/**
 * @file
 * vespera-lint: static analysis over the repo's TPC kernels and model
 * graphs.
 *
 * Runs every kernel registered in analysis::KernelRegistry under trace
 * capture, analyzes each recorded tpc::Program, lints the DLRM dense
 * graph at raw and compiled stages, and reports findings as text and/or
 * JSON (schema "vespera-lint/v1"). CI runs this with a checked-in
 * warnings baseline: any error-severity finding, or any warning count
 * above the baseline, fails the build.
 *
 * Usage:
 *   vespera-lint [--list] [--kernel=SUBSTR] [--json[=PATH]]
 *                [--baseline=PATH] [--write-baseline=PATH]
 *                [--fail-on=error|warning|none] [--verbose]
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/kernel_registry.h"
#include "analysis/report.h"
#include "graph/compiler.h"
#include "graph/lint.h"
#include "models/dlrm.h"

namespace {

using vespera::analysis::Diagnostic;
using vespera::analysis::LintEntry;
using vespera::analysis::Report;
using vespera::analysis::Severity;

struct Options
{
    bool list = false;
    bool verbose = false;
    bool json = false;
    std::string jsonPath;          ///< "" = stdout.
    std::string kernelFilter;
    std::string baselinePath;
    std::string writeBaselinePath;
    Severity failOn = Severity::Error;
    bool failOnNothing = false;
};

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --list                 list registered kernels and exit\n"
        "  --kernel=SUBSTR        only kernels whose name contains "
        "SUBSTR\n"
        "  --json[=PATH]          emit JSON report (stdout or PATH)\n"
        "  --baseline=PATH        fail when warnings exceed baseline\n"
        "  --write-baseline=PATH  write the current warnings baseline\n"
        "  --fail-on=SEV          error (default) | warning | none\n"
        "  --verbose              per-trace stats even when clean\n",
        argv0);
    return 2;
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        auto value = [&arg](const char *flag) -> const char * {
            const std::size_t n = std::strlen(flag);
            if (arg.compare(0, n, flag) == 0 && arg.size() > n &&
                arg[n] == '=') {
                return arg.c_str() + n + 1;
            }
            return nullptr;
        };
        if (arg == "--list") {
            opt.list = true;
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else if (arg == "--json") {
            opt.json = true;
        } else if (const char *v = value("--json")) {
            opt.json = true;
            opt.jsonPath = v;
        } else if (const char *v = value("--kernel")) {
            opt.kernelFilter = v;
        } else if (const char *v = value("--baseline")) {
            opt.baselinePath = v;
        } else if (const char *v = value("--write-baseline")) {
            opt.writeBaselinePath = v;
        } else if (const char *v = value("--fail-on")) {
            if (std::strcmp(v, "error") == 0) {
                opt.failOn = Severity::Error;
            } else if (std::strcmp(v, "warning") == 0) {
                opt.failOn = Severity::Warning;
            } else if (std::strcmp(v, "none") == 0) {
                opt.failOnNothing = true;
            } else {
                return false;
            }
        } else {
            return false;
        }
    }
    return true;
}

/** Wrap graph-lint diagnostics in a Report so they share the render /
 *  baseline path with kernel traces. */
Report
graphReport(const std::string &name, std::vector<Diagnostic> diags)
{
    Report r;
    r.kernel = name;
    for (Diagnostic &d : diags) {
        vespera::analysis::RuleSummary &s = r.rules[d.rule];
        s.count++;
        s.costCycles += d.costCycles;
        s.wastedBytes += d.wastedBytes;
        r.diagnostics.push_back(std::move(d));
    }
    return r;
}

void
appendGraphEntries(const Options &opt, std::vector<LintEntry> &entries)
{
    using vespera::models::DlrmConfig;
    using vespera::models::DlrmModel;
    using vespera::models::DlrmRunConfig;

    struct Stage
    {
        const char *name;
        bool compiled;
    };
    static constexpr Stage stages[] = {
        {"graph:dlrm_rm1:raw", false},
        {"graph:dlrm_rm1:compiled", true},
    };
    for (const Stage &stage : stages) {
        if (!opt.kernelFilter.empty() &&
            std::string(stage.name).find(opt.kernelFilter) ==
                std::string::npos) {
            continue;
        }
        DlrmModel model(DlrmConfig::rm1());
        vespera::graph::Graph g =
            model.buildDenseGraph(DlrmRunConfig{});
        if (stage.compiled)
            vespera::graph::Compiler().compile(g);
        LintEntry e;
        e.kernel = stage.name;
        e.shape = "rm1 batch=1024";
        e.report =
            graphReport(stage.name, vespera::graph::lintGraph(g));
        entries.push_back(std::move(e));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return usage(argv[0]);

    vespera::analysis::registerBuiltinKernels();
    vespera::analysis::KernelRegistry &reg =
        vespera::analysis::KernelRegistry::instance();

    if (opt.list) {
        for (const std::string &name : reg.names())
            std::printf("%s\n", name.c_str());
        return 0;
    }

    std::vector<LintEntry> entries;
    for (vespera::analysis::TracedKernel &t :
         reg.traceAll(opt.kernelFilter)) {
        LintEntry e;
        e.kernel = t.name;
        e.shape = t.shape;
        e.report = vespera::analysis::analyzeProgram(t.program);
        entries.push_back(std::move(e));
    }
    appendGraphEntries(opt, entries);

    if (entries.empty()) {
        std::fprintf(stderr, "no kernels match filter '%s'\n",
                     opt.kernelFilter.c_str());
        return 2;
    }

    if (!opt.json || !opt.jsonPath.empty()) {
        std::fputs(
            vespera::analysis::lintReportText(entries, opt.verbose)
                .c_str(),
            stdout);
    }
    if (opt.json) {
        const std::string doc = vespera::json::serialize(
            vespera::analysis::lintReportJson(entries));
        if (opt.jsonPath.empty()) {
            std::puts(doc.c_str());
        } else {
            std::ofstream out(opt.jsonPath);
            if (!out) {
                std::fprintf(stderr, "cannot write %s\n",
                             opt.jsonPath.c_str());
                return 2;
            }
            out << doc << "\n";
        }
    }
    if (!opt.writeBaselinePath.empty()) {
        std::ofstream out(opt.writeBaselinePath);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         opt.writeBaselinePath.c_str());
            return 2;
        }
        out << vespera::json::serialize(
                   vespera::analysis::baselineJson(entries))
            << "\n";
    }

    int rc = 0;
    if (!opt.baselinePath.empty()) {
        std::ifstream in(opt.baselinePath);
        if (!in) {
            std::fprintf(stderr, "cannot read baseline %s\n",
                         opt.baselinePath.c_str());
            return 2;
        }
        std::stringstream buf;
        buf << in.rdbuf();
        vespera::json::Value baseline;
        std::string error;
        if (!vespera::json::parse(buf.str(), baseline, &error)) {
            std::fprintf(stderr, "baseline %s: %s\n",
                         opt.baselinePath.c_str(), error.c_str());
            return 2;
        }
        const vespera::analysis::BaselineCheck check =
            vespera::analysis::checkAgainstBaseline(entries, baseline);
        for (const std::string &failure : check.failures)
            std::fprintf(stderr, "BASELINE: %s\n", failure.c_str());
        if (!check.ok)
            rc = 1;
    }
    if (!opt.failOnNothing) {
        for (const LintEntry &e : entries) {
            if (e.report.hasSeverity(opt.failOn)) {
                std::fprintf(
                    stderr, "FAIL: %s has findings at or above %s\n",
                    e.kernel.c_str(),
                    vespera::analysis::severityName(opt.failOn));
                rc = 1;
            }
        }
    }
    return rc;
}
