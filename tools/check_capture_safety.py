#!/usr/bin/env python3
"""Capture-safety source lint (the PR 3 determinism contract).

Counter and RateMeter updates are capture-aware: under an active
obs::ScopedCapture they are deferred into the task's SideEffectLog and
replayed in task-index order, which is what keeps --metrics JSON
byte-identical at any thread count (docs/runtime.md). Everything else
in the telemetry surface is NOT deferred:

  - obs::Histogram mutation (add / merge / reset), including access
    through CounterRegistry::histogram(...) — documented single-thread;
  - common::Samples accumulation (push-back into a plain vector);
  - Samples/record-style raw recording added by future telemetry;
  - obs::SelfProf window operations (settle / reset / setEnabled) and
    raw obs::SelfLedger mutation (merge / settle / reset) — the
    *charge/alloc hooks* are capture-deferred, but the window control
    and bare-ledger paths are serial-only by contract;
  - obs::Timeline singleton control (setEnabled / setInterval /
    setCapacity / addSlo / clearSlos / reset / publishRun) and
    obs::TimelineRecorder gauge mutation (set / add / max /
    closeWindow / closeFinal) — a recorder is run-local state; only
    TimelineRecorder::publish() is capture-deferred.

Calling any of those from inside a parallel region (a lambda handed to
runtime::parallel_for / parallel_map / Pool::run) races the container
and makes the result depend on thread interleaving — exactly the bug
class ScopedCapture exists to prevent. This script walks src/ and
fails on such calls.

Heuristics, not a compiler: the lambda body is recovered by
parenthesis/brace matching from the call site, and Histogram/Samples
variables are recognized by their declarations within the same file.
A deliberate exception (e.g. a container proven task-local) can be
waived with a `// capture-ok` comment on the offending line.

Usage:
  tools/check_capture_safety.py [--root DIR] [--self-test]
"""

import argparse
import os
import re
import sys
import tempfile

PARALLEL_CALL = re.compile(
    r"\b(?:parallel_for|parallel_map)\s*\(|\bpool\.run\s*\(|"
    r"\bPool::global\(\)\s*\.run\s*\(")

# Mutations that bypass ScopedCapture regardless of receiver type.
ALWAYS_UNSAFE = [
    (re.compile(r"\bhistogram\s*\("),
     "CounterRegistry::histogram — Histogram mutation is not "
     "capture-deferred"),
    (re.compile(r"(?:\.|->)record\s*\("),
     "raw record() — not capture-deferred"),
    (re.compile(r"\bSelfProf::instance\(\)\s*\.\s*"
                r"(?:settle|reset|setEnabled)\s*\("),
     "SelfProf window control — serial-path only (charges defer, "
     "settle/reset/setEnabled do not)"),
    (re.compile(r"\bTimeline::instance\(\)\s*\.\s*"
                r"(?:setEnabled|setInterval|setCapacity|addSlo|"
                r"clearSlos|reset|publishRun)\s*\("),
     "Timeline singleton control — serial-path only (recorder "
     "publish() defers, the singleton's own methods do not)"),
    # Trace capture (the migration scorecard's parity path, src/port/)
    # installs a process-global observer: two captures racing would
    # interleave their recorded programs. captureTrace and raw
    # ScopedTraceObserver installation are serial-only by contract.
    (re.compile(r"\bcaptureTrace\s*\("),
     "captureTrace — installs a process-global trace observer, "
     "serial-path only"),
    (re.compile(r"\bScopedTraceObserver\b"),
     "tpc::ScopedTraceObserver — process-global trace capture, "
     "serial-path only"),
]

DECL_SAMPLES = re.compile(r"\b(?:common::)?Samples\s+(\w+)")
DECL_HIST = re.compile(r"\b(?:obs::)?Histogram\s+(\w+)")
DECL_SELF = re.compile(r"\b(?:obs::)?SelfLedger\s+(\w+)")
# Matches both a plain declaration and one behind unique_ptr<...>.
DECL_TL = re.compile(r"\b(?:obs::)?TimelineRecorder\s*>?\s+(\w+)")
WAIVER = "capture-ok"


def strip_comments(text):
    """Blank out comments and string literals, preserving newlines and
    column positions, so matching never fires inside either."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            # Keep the waiver token visible to the waiver check.
            chunk = text[i:j]
            out.append(WAIVER.ljust(j - i) if WAIVER in chunk
                       else " " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            out.append(re.sub(r"[^\n]", " ", text[i:j + 2]))
            i = j + 2
        elif c in "\"'":
            q, j = c, i + 1
            while j < n and text[j] != q:
                j += 2 if text[j] == "\\" else 1
            out.append(c + " " * (j - i - 1) + (q if j < n else ""))
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def call_extent(text, open_paren):
    """Index one past the ')' closing the call opened at open_paren."""
    depth = 0
    for i in range(open_paren, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def check_file(path):
    with open(path, encoding="utf-8", errors="replace") as f:
        raw = f.read()
    text = strip_comments(raw)
    lines = raw.splitlines()

    unsafe = list(ALWAYS_UNSAFE)
    for decl, what in ((DECL_SAMPLES, "common::Samples"),
                       (DECL_HIST, "obs::Histogram"),
                       (DECL_SELF, "obs::SelfLedger")):
        for m in decl.finditer(text):
            name = m.group(1)
            unsafe.append((
                re.compile(r"\b%s\s*\.\s*(?:add|merge|settle|reset)"
                           r"\s*\(" % re.escape(name)),
                "%s '%s' mutated — not capture-deferred" % (what, name)))
    for m in DECL_TL.finditer(text):
        name = m.group(1)
        unsafe.append((
            re.compile(r"\b%s\s*(?:\.|->)\s*(?:set|add|max|closeWindow|"
                       r"closeFinal)\s*\(" % re.escape(name)),
            "obs::TimelineRecorder '%s' mutated — run-local state, "
            "not capture-deferred (only publish() defers)" % name))

    findings = []
    for m in PARALLEL_CALL.finditer(text):
        start = text.index("(", m.start())
        end = call_extent(text, start)
        body = text[start:end]
        body_line0 = text.count("\n", 0, start)
        for pat, why in unsafe:
            for hit in pat.finditer(body):
                line = body_line0 + body.count("\n", 0, hit.start())
                if WAIVER in text.splitlines()[line]:
                    continue
                findings.append(
                    "%s:%d: %s inside a parallel region\n    %s"
                    % (path, line + 1, why, lines[line].strip()))
    return findings


def scan(root):
    findings = []
    for dirpath, _, names in os.walk(root):
        for name in sorted(names):
            if name.endswith((".cc", ".h")):
                findings += check_file(os.path.join(dirpath, name))
    return findings


SELF_TEST_BAD = """
#include "obs/counters.h"
void f() {
    common::Samples lat;
    obs::Histogram h("x");
    obs::SelfLedger ledger;
    std::unique_ptr<obs::TimelineRecorder> tl;
    runtime::parallel_for(8, [&](std::size_t i) {
        lat.add(1.0);                       // racy push_back
        h.merge(other);                     // racy merge
        reg.histogram("ttft").add(0.5);     // registry histogram
        obs::SelfProf::instance().settle(); // racy window close
        ledger.merge(worker);               // racy bare-ledger fold
        tl->add(0, 1.0);                    // racy gauge mutation
        obs::Timeline::instance().reset();  // racy singleton reset
        analysis::captureTrace([] {});      // racy trace observer
    });
    pool.run(4, [&](std::size_t i) { sink.record(i); });
}
"""

SELF_TEST_GOOD = """
#include "obs/counters.h"
void f() {
    common::Samples lat;
    obs::Histogram h("x");
    obs::SelfLedger ledger;
    obs::TimelineRecorder rec(1.0, 512, {});
    lat.add(1.0);      // serial path: fine
    h.add(2.0);        // serial path: fine
    ledger.settle(10); // serial path: fine
    obs::SelfProf::instance().reset(); // serial path: fine
    rec.closeWindow(); // serial path: fine
    obs::Timeline::instance().setInterval(0.5); // serial path: fine
    tpc::Program p = analysis::captureTrace([] {}); // serial: fine
    runtime::parallel_for(8, [&](std::size_t i) {
        reg.counter("ok.total").add(1.0); // capture-aware: deferred
        obs::SelfProf::instance().charge( // capture-aware: deferred
            obs::SelfCat::KernelEval, 5);
        obs::SelfProf::instance().recordAlloc(64); // deferred too
        rec.publish("run"); // capture-aware: deferred publish
        lat.add(3.0); // capture-ok: task-indexed slot, joined after
    });
    // parallel_for mentioned in a comment: reg.histogram("x").add(1);
}
"""


def self_test():
    with tempfile.TemporaryDirectory() as d:
        bad = os.path.join(d, "bad.cc")
        good = os.path.join(d, "good.cc")
        with open(bad, "w") as f:
            f.write(SELF_TEST_BAD)
        with open(good, "w") as f:
            f.write(SELF_TEST_GOOD)
        bad_findings = check_file(bad)
        good_findings = check_file(good)
    ok = True
    if len(bad_findings) != 9:
        print("self-test: expected 9 findings in bad.cc, got %d:"
              % len(bad_findings))
        print("\n".join(bad_findings))
        ok = False
    if good_findings:
        print("self-test: expected clean good.cc, got:")
        print("\n".join(good_findings))
        ok = False
    print("self-test %s" % ("OK" if ok else "FAILED"))
    return 0 if ok else 1


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default="src",
                    help="directory tree to scan (default: src)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the embedded positive/negative fixtures")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    findings = scan(args.root)
    for f in findings:
        print(f)
    if findings:
        print("%d capture-safety violation(s); wrap the mutation in "
              "the post-join serial path or waive with // capture-ok"
              % len(findings))
        return 1
    print("capture-safety: clean (%s)" % args.root)
    return 0


if __name__ == "__main__":
    sys.exit(main())
