/**
 * @file
 * LLM serving scenario: Llama-3.1-70B with tensor parallelism, plus a
 * continuous-batching vLLM-style engine run on a dynamic trace —
 * comparing attention backends and reporting SLO metrics (TTFT/TPOT).
 *
 * Run: ./build/examples/llm_serving
 */

#include <cstdio>

#include "common/table.h"
#include "serve/engine.h"

using namespace vespera;

int
main()
{
    // --- Offline fixed-shape serving: 70B across TP degrees ---------
    models::LlamaModel big(models::LlamaConfig::llama31_70b());
    printHeading("Llama-3.1-70B, batch 16, 100 in / 200 out");
    Table t({"TP", "Device", "Prefill (ms)", "Decode (s)", "Tok/s",
             "Power/dev (W)", "Tok/J"});
    for (int tp : {2, 4, 8}) {
        for (auto dev : {DeviceKind::Gaudi2, DeviceKind::A100}) {
            models::LlamaServingConfig cfg;
            cfg.batch = 16;
            cfg.inputLen = 100;
            cfg.outputLen = 200;
            cfg.tpDevices = tp;
            auto r = big.serve(dev, cfg);
            t.addRow({Table::integer(tp), deviceName(dev),
                      Table::num(r.prefillTime * 1e3, 1),
                      Table::num(r.decodeTime, 2),
                      Table::num(r.tokensPerSec, 0),
                      Table::num(r.avgPowerPerDevice, 0),
                      Table::num(r.tokensPerJoule, 1)});
        }
    }
    t.print();

    // --- Online continuous batching on a dynamic trace --------------
    models::LlamaModel small(models::LlamaConfig::llama31_8b());
    printHeading("vLLM-style online serving, Llama-8B, dynamic trace");
    Table s({"Attention backend", "Tok/s", "Mean TTFT (s)",
             "Mean TPOT (ms)", "p99 TTFT (s)", "Preemptions"});
    for (auto backend : {models::AttentionBackend::VllmBase,
                         models::AttentionBackend::VllmOpt}) {
        serve::EngineConfig ecfg;
        ecfg.device = DeviceKind::Gaudi2;
        ecfg.maxDecodeBatch = 32;
        ecfg.attention = backend;
        serve::Engine engine(small, ecfg);

        serve::TraceConfig tc;
        tc.numRequests = 96;
        Rng rng(7);
        auto metrics = engine.run(serve::makeDynamicTrace(tc, rng));
        s.addRow({backend == models::AttentionBackend::VllmOpt
                      ? "vLLM_opt (BlockList)"
                      : "vLLM_base (BlockTable)",
                  Table::num(metrics.throughputTokensPerSec, 0),
                  Table::num(metrics.meanTtft, 2),
                  Table::num(metrics.meanTpot * 1e3, 1),
                  Table::num(metrics.p99Ttft, 2),
                  Table::integer(metrics.preemptions)});
    }
    s.print();
    return 0;
}
