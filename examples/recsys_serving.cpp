/**
 * @file
 * RecSys serving scenario: serve the paper's RM2 (memory-intensive
 * DLRM) on both devices, compare the three Gaudi embedding-operator
 * variants of Section 4.1, and report end-to-end latency, power, and
 * energy per inference.
 *
 * Run: ./build/examples/recsys_serving
 */

#include <cstdio>

#include "common/table.h"
#include "models/dlrm.h"

using namespace vespera;

int
main()
{
    models::DlrmConfig cfg = models::DlrmConfig::rm2();
    cfg.rowsPerTable = 1 << 13;
    models::DlrmModel model(cfg);

    // --- Embedding operator shootout (Section 4.1) ------------------
    kern::EmbeddingConfig emb;
    emb.numTables = cfg.numTables;
    emb.rowsPerTable = cfg.rowsPerTable;
    emb.pooling = cfg.pooling;
    emb.vectorBytes = 256;
    emb.batch = 1024;
    kern::EmbeddingLayerGaudi layer(emb);

    printHeading("Embedding operator variants (RM2 layer, batch 1024)");
    Table ops({"Variant", "Time (us)", "HBM util", "Launches"});
    for (auto v : {kern::EmbeddingVariant::SdkSingleTable,
                   kern::EmbeddingVariant::SingleTable,
                   kern::EmbeddingVariant::BatchedTable}) {
        Rng rng(1);
        auto r = layer.run(v, rng);
        ops.addRow({kern::embeddingVariantName(v),
                    Table::num(r.time * 1e6, 1),
                    Table::pct(r.hbmUtilization),
                    Table::integer(r.kernelLaunches)});
    }
    ops.print();

    // --- End-to-end serving -----------------------------------------
    printHeading("End-to-end RM2 serving");
    Table t({"Device", "Batch", "Latency (ms)", "Samples/s", "Power (W)",
             "Samples/J"});
    for (int batch : {512, 2048}) {
        models::DlrmRunConfig run;
        run.batch = batch;
        run.embVectorBytes = 256;
        for (auto dev : {DeviceKind::Gaudi2, DeviceKind::A100}) {
            Rng rng(2);
            auto r = model.run(dev, run, rng);
            t.addRow({deviceName(dev), Table::integer(batch),
                      Table::num(r.time * 1e3, 2),
                      Table::num(r.samplesPerSec, 0),
                      Table::num(r.power, 0),
                      Table::num(r.samplesPerJoule, 0)});
        }
    }
    t.print();
    return 0;
}
