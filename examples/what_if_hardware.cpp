/**
 * @file
 * What-if scenario: exploring hardware design points with the models —
 * the computer-architect's use of this framework the paper's abstract
 * calls out ("valuable insights for ... computer architects working on
 * next-generation NPU designs").
 *
 *  1. What if Gaudi-2 had A100-style 32 B access granularity?
 *  2. What does the projected Gaudi-3 do to the GEMM balance?
 *  3. What if the HLS fabric had an all-to-all switch (Takeaway #4)?
 *
 * Run: ./build/examples/what_if_hardware
 */

#include <cstdio>

#include "coll/collective.h"
#include "common/table.h"
#include "hw/mme.h"
#include "mem/hbm.h"

using namespace vespera;

int
main()
{
    // --- 1. Finer access granularity -------------------------------
    printHeading("What if Gaudi-2 gathered at 32 B granularity?");
    hw::DeviceSpec fine = hw::withAccessGranularity(hw::gaudi2Spec(), 32);
    mem::HbmModel real(hw::gaudi2Spec());
    mem::HbmModel what_if(fine);
    mem::HbmModel a100(hw::a100Spec());
    Table g({"Vector (B)", "Gaudi-2", "Gaudi-2 @32B", "A100"});
    for (Bytes vec : {32, 64, 128, 256}) {
        mem::RandomAccessWorkload w;
        w.accessSize = vec;
        w.numAccesses = 1 << 20;
        w.concurrency = 384;
        g.addRow({Table::integer(static_cast<long long>(vec)),
                  Table::pct(real.randomAccess(w).bandwidthUtilization),
                  Table::pct(
                      what_if.randomAccess(w).bandwidthUtilization),
                  Table::pct(
                      a100.randomAccess(w).bandwidthUtilization)});
    }
    g.print();

    // --- 2. Gaudi-3 projection --------------------------------------
    printHeading("Gaudi-3 projection: decode-shape GEMM (M=64)");
    hw::MmeModel mme2;
    hw::MmeModel mme3(hw::gaudi3Spec());
    Table m({"K=N", "Gaudi-2 (us)", "Gaudi-3 (us)", "Speedup"});
    for (std::int64_t s : {4096, 8192, 16384}) {
        auto c2 = mme2.gemm({64, s, s}, DataType::BF16);
        auto c3 = mme3.gemm({64, s, s}, DataType::BF16);
        m.addRow({Table::integer(s), Table::num(c2.time * 1e6, 1),
                  Table::num(c3.time * 1e6, 1),
                  Table::num(c2.time / c3.time, 2)});
    }
    m.print();
    std::printf("Decode GEMMs are weight-bandwidth bound, so the gain "
                "tracks the 1.5x HBM\nuplift, not the 4.2x compute "
                "uplift — the balance the paper's roofline teaches.\n");

    // --- 3. A switched Gaudi fabric ---------------------------------
    printHeading("What if HLS-Gaudi-2 had an all-to-all switch?");
    auto hccl = coll::CollectiveModel::hcclOnGaudi2();
    // Same HCCL software efficiencies, switch topology.
    coll::CollectiveModel switched(net::FabricSpec::dgxA100(),
                                   coll::CollectiveModel::Backend::Hccl);
    Table c({"Devices", "P2P fabric (real)", "Switched fabric"});
    for (int n : {2, 4, 8}) {
        auto p2p = hccl.run(coll::CollectiveOp::AllReduce, 32 << 20, n);
        auto sw = switched.run(coll::CollectiveOp::AllReduce, 32 << 20,
                               n);
        c.addRow({Table::integer(n),
                  Table::pct(p2p.busBandwidthUtilization),
                  Table::pct(sw.busBandwidthUtilization)});
    }
    c.print();
    std::printf("A switch fixes the small-device-count collapse "
                "(Key Takeaway #4).\n");
    return 0;
}
