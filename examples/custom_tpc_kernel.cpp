/**
 * @file
 * Writing your own TPC-C kernel: a fused scale-and-accumulate
 * (y = alpha * x + y, SAXPY) implemented three ways, demonstrating the
 * two TPC programming best practices the paper teaches (Section 2.2):
 * 256 B access granularity and manual loop unrolling.
 *
 * Run: ./build/examples/custom_tpc_kernel
 */

#include <cstdio>
#include <vector>

#include "common/table.h"
#include "tpc/dispatcher.h"

using namespace vespera;

namespace {

/// SAXPY kernel with configurable access granularity and unrolling.
tpc::Kernel
makeSaxpy(const tpc::Tensor &x, tpc::Tensor &y, float alpha,
          std::int64_t n, std::int64_t per_tpc, Bytes access_bytes,
          int unroll)
{
    return [&x, &y, alpha, n, per_tpc, access_bytes,
            unroll](tpc::TpcContext &ctx) {
        const auto lanes =
            static_cast<std::int64_t>(access_bytes / 4);
        for (std::int64_t w = ctx.memberStart(1); w < ctx.memberEnd(1);
             w++) {
            const std::int64_t begin = w * per_tpc;
            const std::int64_t end = std::min(begin + per_tpc, n);
            for (std::int64_t d = begin; d < end;
                 d += lanes * unroll) {
                std::vector<tpc::Vec> xs, ys;
                for (int u = 0; u < unroll; u++) {
                    const std::int64_t at = d + u * lanes;
                    if (at >= end)
                        break;
                    tpc::Int5 coord{at, 0, 0, 0, 0};
                    xs.push_back(
                        ctx.v_ld_tnsr(coord, x, access_bytes));
                    ys.push_back(
                        ctx.v_ld_tnsr(coord, y, access_bytes));
                }
                for (std::size_t u = 0; u < xs.size(); u++) {
                    tpc::Vec r = ctx.v_mac_s(xs[u], alpha, ys[u]);
                    tpc::Int5 coord{
                        d + static_cast<std::int64_t>(u) * lanes, 0, 0,
                        0, 0};
                    ctx.v_st_tnsr(coord, y, r);
                }
            }
        }
    };
}

} // namespace

int
main()
{
    const std::int64_t n = 1 << 22;
    const float alpha = 2.0f;
    const int num_tpcs = 24;
    const std::int64_t per_tpc = (n + num_tpcs - 1) / num_tpcs;

    tpc::TpcDispatcher dispatcher;
    tpc::IndexSpace space;
    space.size = {1, num_tpcs, 1, 1, 1};

    printHeading("SAXPY on the simulated Gaudi-2 TPC array "
                 "(4M FP32 elements)");
    Table t({"Variant", "Granularity", "Unroll", "Time (us)",
             "GB/s", "vs naive"});

    struct Variant { const char *name; Bytes gran; int unroll; };
    const Variant variants[] = {
        {"naive (64 B, no unroll)", 64, 1},
        {"aligned (256 B)", 256, 1},
        {"aligned + unrolled x4", 256, 4},
    };

    double naive_time = 0;
    for (const auto &v : variants) {
        tpc::Tensor x({n}, DataType::FP32), y({n}, DataType::FP32);
        x.fill([](std::int64_t i) { return static_cast<float>(i % 7); });
        y.fill([](std::int64_t i) { return static_cast<float>(i % 3); });

        auto kernel = makeSaxpy(x, y, alpha, n, per_tpc, v.gran,
                                v.unroll);
        tpc::LaunchParams params;
        params.vectorBytes = v.gran;
        auto r = dispatcher.launch(kernel, space, params);

        // Functional check.
        for (std::int64_t i = 0; i < n; i += n / 5) {
            const float want = alpha * (i % 7) + (i % 3);
            if (y.at(i) != want) {
                std::fprintf(stderr, "mismatch at %lld\n",
                             static_cast<long long>(i));
                return 1;
            }
        }

        if (naive_time == 0)
            naive_time = r.time;
        const double gbps = 12.0 * n / r.time / 1e9; // 3 x 4 B/elem.
        t.addRow({v.name,
                  Table::integer(static_cast<long long>(v.gran)),
                  Table::integer(v.unroll), Table::num(r.time * 1e6, 1),
                  Table::num(gbps, 0),
                  Table::num(naive_time / r.time, 2)});
    }
    t.print();

    // At 24 TPCs the chip is bandwidth-bound, hiding the unroll win;
    // on a single TPC — where the paper's Figure 8(a,b) operates —
    // both practices show separately.
    printHeading("Same sweep on a single TPC");
    Table s({"Variant", "Time (us)", "GB/s"});
    tpc::IndexSpace one;
    one.size = {1, 1, 1, 1, 1};
    const std::int64_t small_n = 1 << 20;
    for (const auto &v : variants) {
        tpc::Tensor x({small_n}, DataType::FP32);
        tpc::Tensor y({small_n}, DataType::FP32);
        x.fill([](std::int64_t i) { return static_cast<float>(i % 7); });
        y.fill([](std::int64_t i) { return static_cast<float>(i % 3); });
        auto kernel = makeSaxpy(x, y, alpha, small_n, small_n, v.gran,
                                v.unroll);
        tpc::LaunchParams params;
        params.numTpcs = 1;
        params.vectorBytes = v.gran;
        auto r = dispatcher.launch(kernel, one, params);
        s.addRow({v.name, Table::num(r.time * 1e6, 1),
                  Table::num(12.0 * small_n / r.time / 1e9, 1)});
    }
    s.print();
    std::printf("\nBoth best practices applied: aligned 256 B accesses "
                "+ unrolling.\n");
    return 0;
}
