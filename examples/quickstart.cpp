/**
 * @file
 * Quickstart tour of the vespera API.
 *
 * Costs a GEMM on both simulated devices, runs a real TPC-C kernel on
 * the simulated Gaudi-2 TPC array, and times a collective — the three
 * building blocks everything else composes.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "coll/collective.h"
#include "kern/gemm.h"
#include "tpc/dispatcher.h"

using namespace vespera;

int
main()
{
    // --- 1. GEMM on both matrix engines -----------------------------
    hw::GemmShape shape{4096, 4096, 4096};
    auto gaudi = kern::runGemm(DeviceKind::Gaudi2, shape,
                               DataType::BF16);
    auto a100 = kern::runGemm(DeviceKind::A100, shape, DataType::BF16);
    std::printf("GEMM 4096^3 BF16:\n");
    std::printf("  Gaudi-2: %.0f TFLOPS (%.1f%% util, geometry %s)\n",
                gaudi.achievedFlops / 1e12, gaudi.utilization * 100,
                gaudi.geometry.c_str());
    std::printf("  A100:    %.0f TFLOPS (%.1f%% util, tile %s)\n",
                a100.achievedFlops / 1e12, a100.utilization * 100,
                a100.geometry.c_str());

    // --- 2. A TPC-C kernel, written against the paper's intrinsics --
    const std::int64_t n = 1 << 20;
    tpc::Tensor a({n}, DataType::FP32), b({n}, DataType::FP32);
    tpc::Tensor c({n}, DataType::FP32);
    a.fill([](std::int64_t i) { return static_cast<float>(i % 100); });
    b.fill([](std::int64_t i) { return static_cast<float>(i % 50); });

    const int num_tpcs = 24;
    const std::int64_t per_tpc = n / num_tpcs;
    tpc::Kernel add = [&](tpc::TpcContext &ctx) {
        const std::int64_t lanes = 64; // 256 B of FP32.
        for (std::int64_t w = ctx.memberStart(1); w < ctx.memberEnd(1);
             w++) {
            for (std::int64_t d = w * per_tpc;
                 d < std::min((w + 1) * per_tpc, n); d += lanes) {
                tpc::Int5 coord{d, 0, 0, 0, 0};
                tpc::Vec x = ctx.v_ld_tnsr(coord, a);
                tpc::Vec y = ctx.v_ld_tnsr(coord, b);
                ctx.v_st_tnsr(coord, c, ctx.v_add(x, y));
            }
        }
    };
    tpc::TpcDispatcher dispatcher;
    tpc::IndexSpace space;
    space.size = {1, num_tpcs, 1, 1, 1};
    auto launch = dispatcher.launch(add, space, tpc::LaunchParams{});
    std::printf("\nTPC vector add over %lld elements:\n",
                static_cast<long long>(n));
    std::printf("  %.1f us on %d TPCs, %.0f%% HBM utilization, "
                "c[123] = %.0f\n",
                launch.time * 1e6, launch.activeTpcs,
                launch.hbmUtilization * 100,
                static_cast<double>(c.at(std::int64_t{123})));

    // --- 3. A collective on each fabric ----------------------------
    auto hccl = coll::CollectiveModel::hcclOnGaudi2();
    auto nccl = coll::CollectiveModel::ncclOnDgxA100();
    auto rg = hccl.run(coll::CollectiveOp::AllReduce, 32 << 20, 8);
    auto ra = nccl.run(coll::CollectiveOp::AllReduce, 32 << 20, 8);
    std::printf("\n32 MB AllReduce across 8 devices:\n");
    std::printf("  HLS-Gaudi-2 (RoCE P2P): %.0f us, bus BW %.0f GB/s\n",
                rg.time * 1e6, rg.busBandwidth / 1e9);
    std::printf("  DGX A100 (NVSwitch):    %.0f us, bus BW %.0f GB/s\n",
                ra.time * 1e6, ra.busBandwidth / 1e9);
    return 0;
}
