/**
 * @file
 * Profiler scenario: dump the op-level timeline of Llama forward steps
 * — the view the Intel Gaudi Profiler gave the paper's authors when
 * reverse-engineering the graph compiler (Section 3.2) — plus a
 * Chrome-trace JSON of a short serving run.
 *
 * Run: ./build/examples/profile_step
 * Then open /tmp/vespera_step.json or /tmp/vespera_serving.json at
 * ui.perfetto.dev.
 */

#include <cstdio>

#include "common/table.h"
#include "serve/tracing.h"

using namespace vespera;

namespace {

void
printTimeline(const char *title, const graph::ExecutionReport &rep)
{
    printHeading(title);
    Table t({"Op", "Engine", "Start (us)", "Duration (us)"});
    for (const auto &e : rep.timeline) {
        const char *engine = "";
        switch (e.kind) {
          case graph::OpKind::MatMul:
            engine = "MME";
            break;
          case graph::OpKind::Elementwise:
          case graph::OpKind::Normalization:
            engine = "TPC";
            break;
          case graph::OpKind::AllReduce:
            engine = "RoCE";
            break;
          case graph::OpKind::Custom:
            engine = "MME+TPC";
            break;
          case graph::OpKind::Input:
            continue;
        }
        t.addRow({e.name, engine, Table::num(e.start * 1e6, 1),
                  Table::num(e.duration * 1e6, 1)});
    }
    t.print();
    std::printf("Total %.1f us; %.1f us hidden by MME-TPC pipelining\n",
                rep.time * 1e6, rep.overlapSaved * 1e6);
}

} // namespace

int
main()
{
    models::LlamaModel model(models::LlamaConfig::llama31_8b());
    models::LlamaServingConfig cfg;
    cfg.tpDevices = 2;

    // One decoder layer + LM head, decode step, batch 32, ctx 2048.
    auto rep = model.stepReport(DeviceKind::Gaudi2, 32, 1, 2048, false,
                                cfg);
    printTimeline("Llama-8B decode step (batch 32, ctx 2048, TP=2)",
                  rep);
    serve::writeFile("/tmp/vespera_step.json",
                     serve::timelineToChromeTrace(rep.timeline));
    std::printf("Wrote /tmp/vespera_step.json\n");

    // A short serving run with per-iteration events.
    serve::EngineConfig ecfg;
    ecfg.device = DeviceKind::Gaudi2;
    ecfg.maxDecodeBatch = 8;
    ecfg.chunkedPrefillTokens = 256;
    ecfg.recordEvents = true;
    serve::Engine engine(model, ecfg);
    Rng rng(3);
    serve::TraceConfig tc;
    tc.numRequests = 12;
    tc.maxOutputLen = 64;
    auto metrics = engine.run(serve::makeDynamicTrace(tc, rng));
    std::printf("\nServing run: %zu engine iterations, %.0f tok/s, "
                "mean TTFT %.2f s\n",
                engine.events().size(),
                metrics.throughputTokensPerSec, metrics.meanTtft);
    serve::writeFile("/tmp/vespera_serving.json",
                     serve::engineEventsToChromeTrace(engine.events()));
    std::printf("Wrote /tmp/vespera_serving.json\n");
    return 0;
}
