/**
 * @file
 * Profiler scenario: the counter-annotated Perfetto view the paper's
 * authors reasoned from (Section 3.2). One run produces a single trace
 * containing
 *   - op-level spans of a Llama decode step (MME/TPC/comm lanes),
 *   - engine iteration spans of a short serving run,
 *   - counter tracks: MME utilization, achieved HBM bandwidth, KV
 *     blocks in use, decode batch size, and TPC stall cycles,
 *   - host-side ScopedSpan timings of the simulator itself,
 * plus a vespera-metrics/v2 JSON document of all device counters.
 *
 * Run: ./build/examples/profile_step
 * Then open /tmp/vespera_profile.json at ui.perfetto.dev.
 */

#include <cstdio>

#include "common/io.h"
#include "common/table.h"
#include "kern/stream.h"
#include "obs/export.h"
#include "serve/tracing.h"

using namespace vespera;

namespace {

void
printTimeline(const char *title, const graph::ExecutionReport &rep)
{
    printHeading(title);
    Table t({"Op", "Engine", "Start (us)", "Duration (us)"});
    for (const auto &e : rep.timeline) {
        const char *engine = "";
        switch (e.kind) {
          case graph::OpKind::MatMul:
            engine = "MME";
            break;
          case graph::OpKind::Elementwise:
          case graph::OpKind::Normalization:
            engine = "TPC";
            break;
          case graph::OpKind::AllReduce:
            engine = "RoCE";
            break;
          case graph::OpKind::Custom:
            engine = "MME+TPC";
            break;
          case graph::OpKind::Input:
            continue;
        }
        t.addRow({e.name, engine, Table::num(e.start * 1e6, 1),
                  Table::num(e.duration * 1e6, 1)});
    }
    t.print();
    std::printf("Total %.1f us; %.1f us hidden by MME-TPC pipelining\n",
                rep.time * 1e6, rep.overlapSaved * 1e6);
}

} // namespace

int
main()
{
    obs::Profiler &profiler = obs::Profiler::instance();
    profiler.setEnabled(true);

    models::LlamaModel model(models::LlamaConfig::llama31_8b());
    models::LlamaServingConfig cfg;
    cfg.tpDevices = 2;

    // One decoder layer + LM head, decode step, batch 32, ctx 2048.
    // The executor samples mme.utilization and hbm.bandwidth_gbps
    // counter tracks while it places the op spans.
    graph::ExecutionReport rep;
    {
        obs::ScopedSpan span("llama.stepReport");
        rep = model.stepReport(DeviceKind::Gaudi2, 32, 1, 2048, false,
                               cfg);
    }
    printTimeline("Llama-8B decode step (batch 32, ctx 2048, TP=2)",
                  rep);
    serve::recordTimeline(profiler, rep.timeline);

    // A short serving run: engine iteration spans plus the
    // kv.blocks_in_use and engine.decode_batch counter tracks.
    serve::EngineConfig ecfg;
    ecfg.device = DeviceKind::Gaudi2;
    ecfg.maxDecodeBatch = 8;
    ecfg.chunkedPrefillTokens = 256;
    ecfg.recordEvents = true;
    serve::Engine engine(model, ecfg);
    Rng rng(3);
    serve::TraceConfig tc;
    tc.numRequests = 12;
    tc.maxOutputLen = 64;
    serve::ServingMetrics metrics;
    {
        obs::ScopedSpan span("engine.run");
        metrics = engine.run(serve::makeDynamicTrace(tc, rng));
    }
    std::printf("\nServing run: %zu engine iterations, %.0f tok/s, "
                "mean TTFT %.2f s\n",
                engine.events().size(),
                metrics.throughputTokensPerSec, metrics.meanTtft);
    serve::recordEngineEvents(profiler, engine.events());

    // A STREAM TRIAD kernel on one simulated TPC: the VLIW pipeline
    // samples its cumulative tpc.stall_cycles counter track.
    {
        obs::ScopedSpan span("tpc.stream_triad");
        kern::StreamConfig sc;
        sc.op = kern::StreamOp::Triad;
        sc.numElements = 1u << 16;
        sc.numTpcs = 1;
        (void)kern::runStreamGaudi(sc);
    }

    profiler.setEnabled(false);

    const char *trace_path = "/tmp/vespera_profile.json";
    if (!writeFile(trace_path, obs::chromeTraceJson(profiler)))
        std::fprintf(stderr, "cannot write %s\n", trace_path);
    std::printf("\nCounter tracks recorded:");
    for (const std::string &track : profiler.sampledTracks())
        std::printf(" %s", track.c_str());
    std::printf("\nWrote %s (open at ui.perfetto.dev)\n", trace_path);

    const char *metrics_path = "/tmp/vespera_metrics.json";
    obs::MetricsMeta meta;
    meta.tool = "profile_step";
    if (!writeFile(metrics_path,
                   obs::metricsJson(obs::CounterRegistry::instance(),
                                    meta))) {
        std::fprintf(stderr, "cannot write %s\n", metrics_path);
    }
    std::printf("Wrote %s\n", metrics_path);

    obs::printCounterSummary(obs::CounterRegistry::instance());
    return 0;
}
