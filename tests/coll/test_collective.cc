#include <gtest/gtest.h>

#include "coll/collective.h"

namespace vespera::coll {
namespace {

const std::array<CollectiveOp, 6> allOps = {
    CollectiveOp::AllReduce,     CollectiveOp::AllGather,
    CollectiveOp::ReduceScatter, CollectiveOp::AllToAll,
    CollectiveOp::Reduce,        CollectiveOp::Broadcast,
};

class CollectiveTest : public ::testing::Test
{
  protected:
    CollectiveModel hccl_ = CollectiveModel::hcclOnGaudi2();
    CollectiveModel nccl_ = CollectiveModel::ncclOnDgxA100();
};

TEST_F(CollectiveTest, BusFactors)
{
    EXPECT_DOUBLE_EQ(CollectiveModel::busFactor(CollectiveOp::AllReduce, 8),
                     2.0 * 7 / 8);
    EXPECT_DOUBLE_EQ(CollectiveModel::busFactor(CollectiveOp::AllGather, 8),
                     7.0 / 8);
    EXPECT_DOUBLE_EQ(CollectiveModel::busFactor(CollectiveOp::Broadcast, 8),
                     1.0);
}

TEST_F(CollectiveTest, UtilizationGrowsWithMessageSize)
{
    double prev = 0;
    for (Bytes s = 2 * 1024; s <= 32 * 1024 * 1024; s *= 4) {
        auto r = hccl_.run(CollectiveOp::AllReduce, s, 8);
        EXPECT_GT(r.busBandwidthUtilization, prev);
        prev = r.busBandwidthUtilization;
    }
    EXPECT_GT(prev, 0.5);
}

// Key takeaway #4: Gaudi's bus bandwidth declines roughly linearly as
// fewer devices participate; A100's stays flat thanks to NVSwitch.
TEST_F(CollectiveTest, GaudiDeclinesWithFewerDevices)
{
    const Bytes big = 32 * 1024 * 1024;
    auto g8 = hccl_.run(CollectiveOp::AllReduce, big, 8);
    auto g4 = hccl_.run(CollectiveOp::AllReduce, big, 4);
    auto g2 = hccl_.run(CollectiveOp::AllReduce, big, 2);
    EXPECT_GT(g8.busBandwidthUtilization,
              1.8 * g4.busBandwidthUtilization);
    EXPECT_GT(g4.busBandwidthUtilization,
              2.0 * g2.busBandwidthUtilization);
}

TEST_F(CollectiveTest, A100FlatAcrossDeviceCounts)
{
    const Bytes big = 32 * 1024 * 1024;
    auto a8 = nccl_.run(CollectiveOp::AllReduce, big, 8);
    auto a2 = nccl_.run(CollectiveOp::AllReduce, big, 2);
    EXPECT_NEAR(a8.busBandwidthUtilization / a2.busBandwidthUtilization,
                1.0, 0.1);
}

// Figure 10 at 8 devices: Gaudi-2 wins 5 of 6 collectives; AllToAll is
// the exception (the crossbar switch's natural workload).
TEST_F(CollectiveTest, GaudiWinsFiveOfSixAtEightDevices)
{
    const Bytes big = 32 * 1024 * 1024;
    int gaudi_wins = 0;
    for (CollectiveOp op : allOps) {
        auto g = hccl_.run(op, big, 8);
        auto a = nccl_.run(op, big, 8);
        if (g.busBandwidthUtilization > a.busBandwidthUtilization)
            gaudi_wins++;
        else
            EXPECT_EQ(op, CollectiveOp::AllToAll);
    }
    EXPECT_EQ(gaudi_wins, 5);
}

TEST_F(CollectiveTest, A100WinsAtTwoDevices)
{
    const Bytes big = 32 * 1024 * 1024;
    for (CollectiveOp op : allOps) {
        auto g = hccl_.run(op, big, 2);
        auto a = nccl_.run(op, big, 2);
        EXPECT_GT(a.busBandwidthUtilization, g.busBandwidthUtilization)
            << collectiveName(op);
    }
}

TEST_F(CollectiveTest, BusBandwidthConsistentWithTime)
{
    const Bytes s = 8 * 1024 * 1024;
    auto r = hccl_.run(CollectiveOp::AllGather, s, 8);
    double algo = static_cast<double>(s) / r.time;
    EXPECT_NEAR(r.algoBandwidth, algo, 1.0);
    EXPECT_NEAR(r.busBandwidth, algo * 7 / 8, 1.0);
}

TEST_F(CollectiveTest, UtilizationNeverExceedsOne)
{
    for (CollectiveOp op : allOps) {
        for (int n : {2, 4, 8}) {
            auto g = hccl_.run(op, 32 * 1024 * 1024, n);
            auto a = nccl_.run(op, 32 * 1024 * 1024, n);
            EXPECT_LE(g.busBandwidthUtilization, 1.0);
            EXPECT_LE(a.busBandwidthUtilization, 1.0);
        }
    }
}

} // namespace
} // namespace vespera::coll
