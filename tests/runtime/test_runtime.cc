/**
 * @file
 * Determinism contract of the parallel simulation runtime: the same
 * workload must produce bit-identical results and metrics JSON at any
 * thread count (docs/runtime.md). Exercised end-to-end through the
 * three parallelized layers — a STREAM sweep (SweepRunner + nested
 * TPC dispatch), the dispatcher itself, and the serving engine.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kern/stream.h"
#include "models/llama.h"
#include "obs/capture.h"
#include "obs/counters.h"
#include "obs/export.h"
#include "runtime/pool.h"
#include "runtime/sweep.h"
#include "serve/engine.h"

namespace vespera {
namespace {

/// Restores the global pool to serial when a test exits.
struct PoolGuard
{
    ~PoolGuard() { runtime::Pool::setGlobalThreads(1); }
};

std::string
metricsSnapshot()
{
    obs::MetricsMeta meta;
    meta.tool = "test_runtime";
    return obs::metricsJson(obs::CounterRegistry::instance(), meta);
}

/// A STREAM sweep shaped like bench_fig8's: gran x op points, each
/// dispatching onto the TPC array (nested parallelism when the pool
/// is parallel).
std::vector<double>
streamSweep()
{
    const std::vector<Bytes> grans = {4, 64, 256, 2048};
    const kern::StreamOp ops[] = {kern::StreamOp::Add,
                                  kern::StreamOp::Triad};
    runtime::SweepRunner sweep("test.stream");
    return sweep.mapIndex(grans.size() * 2, [&](std::size_t i) {
        kern::StreamConfig c;
        c.op = ops[i % 2];
        c.numElements = 1 << 16;
        c.accessBytes = grans[i / 2];
        c.numTpcs = 8;
        return kern::runStreamGaudi(c).gflops;
    });
}

serve::ServingMetrics
serveTrace()
{
    models::LlamaModel model(models::LlamaConfig::llama31_8b());
    serve::EngineConfig cfg;
    cfg.device = DeviceKind::Gaudi2;
    cfg.maxDecodeBatch = 16;
    serve::Engine engine(model, cfg);
    serve::TraceConfig tc;
    tc.numRequests = 32;
    tc.maxInputLen = 512;
    tc.maxOutputLen = 128;
    Rng rng(515);
    return engine.run(serve::makeDynamicTrace(tc, rng));
}

TEST(RuntimeDeterminism, StreamSweepIdenticalAtAnyThreadCount)
{
    PoolGuard guard;
    runtime::Pool::setGlobalThreads(1);
    const auto serial = streamSweep();

    for (int threads : {2, 8}) {
        runtime::Pool::setGlobalThreads(threads);
        const auto parallel = streamSweep();
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); i++) {
            EXPECT_EQ(parallel[i], serial[i])
                << "point " << i << " at " << threads << " threads";
        }
    }
}

TEST(RuntimeDeterminism, ServingMetricsIdenticalAcrossThreadCounts)
{
    // Full-precision double equality, not near-equality: the ordered
    // side-effect replay means the parallel engine performs the exact
    // same floating-point op sequence as the serial one. (Whole
    // metrics-JSON documents are compared byte-for-byte at the binary
    // level by the `determinism_metrics_json` ctest — the in-process
    // registry is cumulative, so the document is only reproducible
    // run-for-run across fresh processes.)
    PoolGuard guard;
    runtime::Pool::setGlobalThreads(1);
    const auto m1 = serveTrace();
    runtime::Pool::setGlobalThreads(2);
    const auto m2 = serveTrace();
    runtime::Pool::setGlobalThreads(8);
    const auto m8 = serveTrace();
    EXPECT_EQ(m1.makespan, m2.makespan);
    EXPECT_EQ(m1.makespan, m8.makespan);
    EXPECT_EQ(m1.throughputTokensPerSec, m2.throughputTokensPerSec);
    EXPECT_EQ(m1.throughputTokensPerSec, m8.throughputTokensPerSec);
    EXPECT_EQ(m1.meanTtft, m2.meanTtft);
    EXPECT_EQ(m1.meanTtft, m8.meanTtft);
    EXPECT_EQ(m1.meanTpot, m8.meanTpot);
    EXPECT_EQ(m1.p99Ttft, m8.p99Ttft);
    EXPECT_EQ(m1.preemptions, m8.preemptions);
    EXPECT_EQ(m1.avgDecodeBatch, m8.avgDecodeBatch);
}

TEST(RuntimeDeterminism, CounterDeltasIdenticalAcrossThreadCounts)
{
    PoolGuard guard;
    auto &reg = obs::CounterRegistry::instance();
    auto &steps = reg.counter("engine.steps");
    auto &decode_tok = reg.counter("engine.decode_tokens");
    auto &prefill_tok = reg.counter("engine.prefill_tokens");

    auto run_delta = [&](int threads) {
        runtime::Pool::setGlobalThreads(threads);
        const double s0 = steps.value();
        const double d0 = decode_tok.value();
        const double p0 = prefill_tok.value();
        (void)serveTrace();
        return std::vector<double>{steps.value() - s0,
                                   decode_tok.value() - d0,
                                   prefill_tok.value() - p0};
    };

    const auto serial = run_delta(1);
    EXPECT_GT(serial[0], 0);
    EXPECT_EQ(run_delta(2), serial);
    EXPECT_EQ(run_delta(8), serial);
}

TEST(RuntimeDeterminism, RuntimeCountersExcludedFromMetricsJson)
{
    PoolGuard guard;
    runtime::Pool::setGlobalThreads(8);
    (void)streamSweep(); // guarantees runtime.* counters exist and moved
    const std::string doc = metricsSnapshot();
    EXPECT_EQ(doc.find("runtime."), std::string::npos)
        << "host-side pool telemetry must not leak into the "
           "thread-count-invariant metrics document";
    runtime::Pool::setGlobalThreads(1);
    EXPECT_NE(obs::CounterRegistry::instance()
                  .counter("runtime.tasks")
                  .value(),
              0.0)
        << "the counters themselves must still record (summary/trace)";
}

TEST(RuntimeCapture, ReplayAppendsToEnclosingLog)
{
    // Nested capture: replaying an inner log inside an outer capture
    // must append to the outer log, not the real counters.
    auto &reg = obs::CounterRegistry::instance();
    auto &c = reg.counter("test.runtime.nested_capture");
    const double base = c.value();

    obs::SideEffectLog inner;
    {
        obs::ScopedCapture cap(inner);
        c.add(5);
    }
    EXPECT_EQ(c.value(), base) << "captured add must not apply";

    obs::SideEffectLog outer;
    {
        obs::ScopedCapture cap(outer);
        inner.replay();
    }
    EXPECT_EQ(c.value(), base) << "replay under capture must redirect";
    outer.replay();
    EXPECT_EQ(c.value(), base + 5);
}

} // namespace
} // namespace vespera
