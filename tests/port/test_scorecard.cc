/**
 * @file
 * Tier-1 tests of the migration scorecard (analysis/migrate/): golden
 * parity / achieved-fraction pins for three representative kernels,
 * the ISSUE acceptance invariants over the full scorecard JSON
 * (>= 15 kernels at parity; every kernel under 90% of hand performance
 * carries at least one migration-aware finding with a fix hint), and
 * the baseline ratchet's regression semantics.
 */

#include <gtest/gtest.h>

#include <string>

#include "analysis/migrate/migrate_report.h"
#include "analysis/migrate/scorecard.h"
#include "common/json.h"

namespace vespera::analysis {
namespace {

MigrateEntry
migrateByName(const char *name)
{
    const port::CorpusEntry *e = port::findCorpusEntry(name);
    EXPECT_NE(e, nullptr) << name;
    MigrateOptions opt;
    opt.exportCounters = false;
    return migrateKernel(*e, opt);
}

// Golden pins: the scorecard's headline numbers for three kernels that
// span the migration-quality range. The bands are wide enough to
// absorb cost-model tweaks but tight enough that a lowering or
// comparator regression moves a kernel out of its band.
TEST(Scorecard, GoldenSaxpy)
{
    const MigrateEntry e = migrateByName("port_saxpy");
    EXPECT_TRUE(e.parity);
    EXPECT_EQ(e.maxRelError, 0.0);
    EXPECT_GT(e.achievedFraction, 0.60);
    EXPECT_LT(e.achievedFraction, 0.85);
    EXPECT_GT(e.portedCycles, 0.0);
}

TEST(Scorecard, GoldenGather)
{
    // Data-dependent addressing shatters into per-lane transactions:
    // the worst migration outcome in the corpus.
    const MigrateEntry e = migrateByName("port_gather");
    EXPECT_TRUE(e.parity);
    EXPECT_LT(e.achievedFraction, 0.30);
}

TEST(Scorecard, GoldenTunedSaxpyReachesHandParity)
{
    const MigrateEntry e = migrateByName("port_saxpy_tuned");
    EXPECT_TRUE(e.parity);
    EXPECT_GT(e.achievedFraction, 0.97);
    // Nothing left for the migration passes to flag.
    int migration = 0;
    for (const Diagnostic &d : e.analysis.report.diagnostics)
        migration += isMigrationRule(d.rule) ? 1 : 0;
    EXPECT_EQ(migration, 0);
}

// The ISSUE acceptance criteria, enforced over the JSON document the
// CI job publishes (not over internal structs), so the schema carries
// everything the invariant needs.
TEST(Scorecard, AcceptanceInvariantsOverJson)
{
    MigrateOptions opt;
    opt.exportCounters = false;
    const std::vector<MigrateEntry> entries = runMigrationCorpus(opt);
    const json::Value doc = migrateReportJson(entries);

    const json::Value *schema = doc.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->str(), "vespera-lint-migrate/v1");

    const json::Value *kernels = doc.find("kernels");
    ASSERT_NE(kernels, nullptr);
    ASSERT_TRUE(kernels->isArray());
    EXPECT_GE(kernels->array().size(), 15u);

    int parity_passes = 0;
    for (const json::Value &k : kernels->array()) {
        const std::string name = k.find("kernel")->str();
        const bool parity = k.find("parity")->boolean();
        const double fraction =
            k.find("achieved_fraction")->number();
        const double migration =
            k.find("migration_findings")->number();
        if (parity)
            parity_passes++;
        if (fraction < 0.9) {
            EXPECT_GE(migration, 1.0)
                << name << " is at " << fraction
                << " of hand performance with no migration-aware "
                   "finding explaining the gap";
        }
        // Every migration finding must carry a usable fix hint.
        for (const json::Value &f : k.find("findings")->array()) {
            if (f.find("migration")->boolean()) {
                EXPECT_FALSE(f.find("fix_hint")->str().empty())
                    << name << ": " << f.find("rule")->str();
            }
        }
    }
    EXPECT_GE(parity_passes, 15);

    const json::Value *totals = doc.find("totals");
    ASSERT_NE(totals, nullptr);
    EXPECT_EQ(totals->find("kernels")->number(),
              static_cast<double>(entries.size()));
    EXPECT_EQ(totals->find("parity_failures")->number(), 0.0);
}

// The ratchet: a self-baseline passes; losing parity or dropping the
// achieved fraction beyond the slack fails with the kernel named.
TEST(Scorecard, BaselineRatchetSemantics)
{
    std::vector<MigrateEntry> entries;
    MigrateEntry a;
    a.kernel = "k_a";
    a.parity = true;
    a.achievedFraction = 0.80;
    MigrateEntry b;
    b.kernel = "k_b";
    b.parity = true;
    b.achievedFraction = 0.95;
    entries = {a, b};
    const json::Value baseline = migrateBaselineJson(entries);

    EXPECT_TRUE(checkMigrateBaseline(entries, baseline).ok);

    // Improvements pass.
    entries[0].achievedFraction = 0.90;
    EXPECT_TRUE(checkMigrateBaseline(entries, baseline).ok);

    // A drop inside the slack passes; beyond it fails.
    entries[0].achievedFraction = 0.79;
    EXPECT_TRUE(checkMigrateBaseline(entries, baseline).ok);
    entries[0].achievedFraction = 0.70;
    BaselineCheck check = checkMigrateBaseline(entries, baseline);
    EXPECT_FALSE(check.ok);
    ASSERT_EQ(check.failures.size(), 1u);
    EXPECT_NE(check.failures[0].find("k_a"), std::string::npos);

    // Parity loss fails regardless of fraction.
    entries[0].achievedFraction = 0.80;
    entries[0].parity = false;
    EXPECT_FALSE(checkMigrateBaseline(entries, baseline).ok);

    // A kernel absent from the baseline must at least pass parity.
    MigrateEntry fresh;
    fresh.kernel = "k_new";
    fresh.parity = false;
    entries = {a, b, fresh};
    EXPECT_FALSE(checkMigrateBaseline(entries, baseline).ok);
    entries[2].parity = true;
    EXPECT_TRUE(checkMigrateBaseline(entries, baseline).ok);
}

} // namespace
} // namespace vespera::analysis
