/**
 * @file
 * Tests of the CUDA→TPC lowering (port/lower.h): functional parity
 * against the reference interpreter across the whole migration corpus,
 * byte-identical lowering at any runtime::Pool thread count, and the
 * fix-hint knobs (warpsPerStrip / stripUnroll) actually paying off.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "analysis/kernel_registry.h"
#include "port/corpus.h"
#include "port/lower.h"
#include "port/reference.h"
#include "runtime/pool.h"

namespace vespera::port {
namespace {

/** Max per-element relative error across the desc's output buffers. */
double
maxRelError(const CudaKernelDesc &desc, const PortRun &run,
            const ReferenceResult &ref)
{
    double worst = 0;
    for (std::size_t b = 0; b < desc.buffers.size(); b++) {
        if (!desc.buffers[b].output)
            continue;
        const tpc::Tensor &t = (*run.tensors)[b];
        for (std::int64_t i = 0; i < desc.buffers[b].elems; i++) {
            const double got = t.at({i, 0, 0, 0, 0});
            const double want =
                ref.buffers[b][static_cast<std::size_t>(i)];
            const double denom = std::max(1.0, std::fabs(want));
            worst = std::max(worst, std::fabs(got - want) / denom);
        }
    }
    return worst;
}

// The headline parity sweep: every corpus kernel's lowered program
// must reproduce the lockstep CUDA reference (ISSUE acceptance:
// >= 15 kernels pass; in practice all of them do, bit-exactly for
// everything but reassociated reductions).
TEST(Lowering, FullCorpusMatchesReference)
{
    const auto &corpus = migrationCorpus();
    ASSERT_GE(corpus.size(), 15u);
    int passing = 0;
    for (const CorpusEntry &e : corpus) {
        const PortRun run = lowerAndRun(e.desc, e.lower);
        const ReferenceResult ref = runReference(e.desc);
        const double err = maxRelError(e.desc, run, ref);
        EXPECT_LE(err, 2e-3) << e.desc.name;
        if (err <= 2e-3)
            passing++;
    }
    EXPECT_GE(passing, 15);
}

/** Serialize a captured trace field-by-field (labels resolved). */
std::string
fingerprint(const tpc::Program &p)
{
    std::ostringstream os;
    os << p.kernelName() << "\n";
    for (const tpc::Instr &i : p.instrs()) {
        os << static_cast<int>(i.slot) << ' ' << i.dst << ' ' << i.src0
           << ' ' << i.src1 << ' ' << i.src2 << ' ' << i.memBytes
           << ' ' << static_cast<int>(i.access) << ' '
           << i.flopsPerLane << ' ' << i.lanes << ' ' << i.memOffset
           << ' ' << i.memStream << ' ' << p.label(i.opLabel) << "\n";
    }
    return os.str();
}

/** Serialize the output tensors bit-exactly. */
std::string
outputFingerprint(const CudaKernelDesc &desc, const PortRun &run)
{
    std::ostringstream os;
    for (std::size_t b = 0; b < desc.buffers.size(); b++) {
        if (!desc.buffers[b].output)
            continue;
        const tpc::Tensor &t = (*run.tensors)[b];
        for (std::int64_t i = 0; i < desc.buffers[b].elems; i++) {
            const float v = t.at({i, 0, 0, 0, 0});
            os.write(reinterpret_cast<const char *>(&v), sizeof(v));
        }
    }
    return os.str();
}

// The determinism property the whole telemetry stack leans on,
// extended to the migration layer: lowering and running a desc
// produces a byte-identical trace and byte-identical outputs at any
// pool width.
TEST(Lowering, ByteIdenticalAcrossThreadCounts)
{
    const int restore = runtime::Pool::global().threads();
    // Three kernels spanning the lowering's branches: plain
    // elementwise, barriered shared-memory scan, shared atomics.
    for (const char *name :
         {"port_saxpy", "port_scan_incl", "port_histogram"}) {
        const CorpusEntry *e = findCorpusEntry(name);
        ASSERT_NE(e, nullptr) << name;
        std::string base_trace, base_out;
        for (const int threads : {1, 2, 4, 8}) {
            runtime::Pool::setGlobalThreads(threads);
            PortRun run;
            const tpc::Program p = analysis::captureTrace(
                [&] { run = lowerAndRun(e->desc, e->lower); });
            const std::string trace = fingerprint(p);
            const std::string out = outputFingerprint(e->desc, run);
            if (threads == 1) {
                base_trace = trace;
                base_out = out;
            } else {
                EXPECT_EQ(trace, base_trace)
                    << name << " trace differs at " << threads
                    << " threads";
                EXPECT_EQ(out, base_out)
                    << name << " output differs at " << threads
                    << " threads";
            }
        }
    }
    runtime::Pool::setGlobalThreads(restore);
}

// The fix-hint knobs must do what the findings promise: re-lowering
// with warpsPerStrip=2 / stripUnroll=4 beats the naive port while
// keeping parity.
TEST(Lowering, TunedOptionsCloseTheGap)
{
    struct Case
    {
        const char *naive;
        const char *tuned;
    };
    for (const Case c : {Case{"port_saxpy", "port_saxpy_tuned"},
                         Case{"port_stencil3", "port_stencil3_tuned"}}) {
        const CorpusEntry *naive = findCorpusEntry(c.naive);
        const CorpusEntry *tuned = findCorpusEntry(c.tuned);
        ASSERT_NE(naive, nullptr);
        ASSERT_NE(tuned, nullptr);
        const PortRun slow = lowerAndRun(naive->desc, naive->lower);
        const PortRun fast = lowerAndRun(tuned->desc, tuned->lower);
        EXPECT_LT(fast.launch.time, slow.launch.time) << c.naive;
        const ReferenceResult ref = runReference(tuned->desc);
        EXPECT_LE(maxRelError(tuned->desc, fast, ref), 2e-3)
            << c.tuned;
    }
}

// A desc that was never lowered before (not in the corpus) exercises
// lowerAndRun directly — the API is usable outside the corpus.
TEST(Lowering, AdHocDescLowersCorrectly)
{
    CudaKernelDesc d;
    d.name = "adhoc_add";
    d.shape = "n=4096";
    d.gridBlocks = 16;
    d.blockThreads = 256;
    d.numRegs = 3;
    BufferDesc a;
    a.name = "a";
    a.elems = 4096;
    a.init = BufferInit::Linear;
    BufferDesc b;
    b.name = "b";
    b.elems = 4096;
    b.init = BufferInit::Wave;
    BufferDesc out;
    out.name = "out";
    out.elems = 4096;
    out.output = true;
    d.buffers = {a, b, out};
    CudaInstr la;
    la.op = CudaOp::LoadGlobal;
    la.dst = 0;
    la.buf = 0;
    la.addr.cGlobal = 1;
    CudaInstr lb;
    lb.op = CudaOp::LoadGlobal;
    lb.dst = 1;
    lb.buf = 1;
    lb.addr.cGlobal = 1;
    CudaInstr add;
    add.op = CudaOp::Add;
    add.dst = 2;
    add.src0 = 0;
    add.src1 = 1;
    CudaInstr st;
    st.op = CudaOp::StoreGlobal;
    st.src0 = 2;
    st.buf = 2;
    st.addr.cGlobal = 1;
    d.body = {CudaStmt::of(la), CudaStmt::of(lb), CudaStmt::of(add),
              CudaStmt::of(st)};

    const PortRun run = lowerAndRun(d);
    const ReferenceResult ref = runReference(d);
    EXPECT_EQ(maxRelError(d, run, ref), 0.0);
}

} // namespace
} // namespace vespera::port
