/**
 * @file
 * Tests of the CUDA kernel description language (port/cuda_desc.h):
 * affine address / predicate evaluation, deterministic buffer
 * initialization, desc validation (malformed descs die loudly), and
 * the lockstep reference interpreter on hand-computable kernels.
 */

#include <gtest/gtest.h>

#include "port/cuda_desc.h"
#include "port/reference.h"

namespace vespera::port {
namespace {

TEST(AddrExpr, EvaluatesAffineTerms)
{
    AddrExpr a;
    a.base = 7;
    a.cTid = 2;
    a.cWarp = 100;
    a.cIter = 3;
    LaneCtx ctx;
    ctx.tid = 5;
    ctx.warp = 1;
    ctx.iter = 4;
    EXPECT_EQ(evalAddr(a, ctx, nullptr), 7 + 2 * 5 + 100 + 3 * 4);
}

TEST(AddrExpr, Pow2IterTermIsShift)
{
    AddrExpr a;
    a.cPow2Iter = 1;
    LaneCtx ctx;
    ctx.iter = 5;
    EXPECT_EQ(evalAddr(a, ctx, nullptr), 32);
}

TEST(AddrExpr, IndexRegisterTruncates)
{
    AddrExpr a;
    a.base = 10;
    a.indexReg = 0;
    const float regs[1] = {3.9f};
    EXPECT_EQ(evalAddr(a, LaneCtx{}, regs), 13);
}

TEST(Pred, AddressFormComparesAffineExprs)
{
    Pred p;
    p.active = true;
    p.op = CmpOp::Lt;
    p.lhs.cLane = 1;
    p.rhs.base = 16;
    LaneCtx ctx;
    ctx.lane = 15;
    EXPECT_TRUE(evalPred(p, ctx, nullptr));
    ctx.lane = 16;
    EXPECT_FALSE(evalPred(p, ctx, nullptr));
}

TEST(Pred, RegisterFormComparesValues)
{
    Pred p;
    p.active = true;
    p.onRegs = true;
    p.op = CmpOp::Eq;
    p.lhsReg = 0;
    p.rhsReg = 1;
    const float eq[2] = {2.5f, 2.5f};
    const float ne[2] = {2.5f, 2.0f};
    EXPECT_TRUE(evalPred(p, LaneCtx{}, eq));
    EXPECT_FALSE(evalPred(p, LaneCtx{}, ne));
}

TEST(Pred, InactivePredicateAlwaysPasses)
{
    EXPECT_TRUE(evalPred(Pred{}, LaneCtx{}, nullptr));
}

TEST(BufferInit, PatternsAreDeterministicAndInRange)
{
    BufferDesc idx;
    idx.elems = 256;
    idx.init = BufferInit::Indices;
    idx.initMod = 64;
    for (std::int64_t i = 0; i < idx.elems; i++) {
        const float v = bufferInitValue(idx, i);
        EXPECT_EQ(v, bufferInitValue(idx, i));
        EXPECT_GE(v, 0.0f);
        EXPECT_LT(v, 64.0f);
        EXPECT_EQ(v, static_cast<float>(static_cast<int>(v)));
    }
    BufferDesc wave;
    wave.elems = 256;
    wave.init = BufferInit::Wave;
    wave.initScale = 2.0;
    for (std::int64_t i = 0; i < wave.elems; i++) {
        const float v = bufferInitValue(wave, i);
        EXPECT_GE(v, -2.0f);
        EXPECT_LE(v, 2.0f);
    }
}

/** Minimal well-formed desc: out[i] = 2 * x[i] over 2 blocks x 64. */
CudaKernelDesc
tinyScaleDesc()
{
    CudaKernelDesc d;
    d.name = "tiny_scale";
    d.shape = "n=128";
    d.gridBlocks = 2;
    d.blockThreads = 64;
    d.numRegs = 2;

    BufferDesc x;
    x.name = "x";
    x.elems = 128;
    x.init = BufferInit::Linear;
    BufferDesc out;
    out.name = "out";
    out.elems = 128;
    out.output = true;
    d.buffers = {x, out};

    CudaInstr ld;
    ld.op = CudaOp::LoadGlobal;
    ld.dst = 0;
    ld.buf = 0;
    ld.addr.cGlobal = 1;
    CudaInstr mul;
    mul.op = CudaOp::MulImm;
    mul.dst = 1;
    mul.src0 = 0;
    mul.imm = 2.0f;
    CudaInstr st;
    st.op = CudaOp::StoreGlobal;
    st.src0 = 1;
    st.buf = 1;
    st.addr.cGlobal = 1;
    d.body = {CudaStmt::of(ld), CudaStmt::of(mul), CudaStmt::of(st)};
    return d;
}

TEST(ValidateDesc, AcceptsWellFormedDesc)
{
    validateDesc(tinyScaleDesc()); // Must not die.
}

TEST(ValidateDescDeath, ZeroBlocksDies)
{
    CudaKernelDesc d = tinyScaleDesc();
    d.gridBlocks = 0;
    EXPECT_DEATH(validateDesc(d), "");
}

TEST(ValidateDescDeath, ZeroThreadsDies)
{
    CudaKernelDesc d = tinyScaleDesc();
    d.blockThreads = 0;
    EXPECT_DEATH(validateDesc(d), "");
}

TEST(ValidateDescDeath, ZeroElementBufferDies)
{
    CudaKernelDesc d = tinyScaleDesc();
    d.buffers[0].elems = 0;
    EXPECT_DEATH(validateDesc(d), "");
}

TEST(ValidateDescDeath, ZeroTripLoopDies)
{
    CudaKernelDesc d = tinyScaleDesc();
    CudaLoop loop;
    loop.trips = 0;
    d.body.push_back(CudaStmt::of(loop));
    EXPECT_DEATH(validateDesc(d), "");
}

TEST(ValidateDescDeath, OutOfRangeRegisterDies)
{
    CudaKernelDesc d = tinyScaleDesc();
    d.body[1].instr.dst = 5; // numRegs = 2.
    EXPECT_DEATH(validateDesc(d), "");
}

TEST(ValidateDescDeath, OutOfRangeBufferDies)
{
    CudaKernelDesc d = tinyScaleDesc();
    d.body[0].instr.buf = 7;
    EXPECT_DEATH(validateDesc(d), "");
}

TEST(ValidateDescDeath, SharedOpWithoutSharedMemoryDies)
{
    CudaKernelDesc d = tinyScaleDesc();
    CudaInstr st;
    st.op = CudaOp::StoreShared;
    st.src0 = 0;
    st.addr.cTid = 1;
    d.body.push_back(CudaStmt::of(st));
    EXPECT_DEATH(validateDesc(d), "");
}

TEST(ValidateDescDeath, PredicatedWarpReduceDies)
{
    CudaKernelDesc d = tinyScaleDesc();
    CudaInstr red;
    red.op = CudaOp::WarpReduceSum;
    red.dst = 1;
    red.src0 = 0;
    red.pred.active = true;
    red.pred.lhs.cLane = 1;
    red.pred.rhs.base = 16;
    d.body.push_back(CudaStmt::of(red));
    EXPECT_DEATH(validateDesc(d), "");
}

TEST(Reference, ScaleKernelMatchesHandComputation)
{
    const CudaKernelDesc d = tinyScaleDesc();
    const ReferenceResult r = runReference(d);
    ASSERT_EQ(r.buffers.size(), 2u);
    ASSERT_EQ(r.buffers[1].size(), 128u);
    for (std::int64_t i = 0; i < 128; i++) {
        EXPECT_EQ(r.buffers[1][static_cast<std::size_t>(i)],
                  2.0f * bufferInitValue(d.buffers[0], i))
            << "element " << i;
    }
}

TEST(Reference, PredicateMasksInactiveThreads)
{
    CudaKernelDesc d = tinyScaleDesc();
    // Only lanes < 16 write; others leave the output at its init (0).
    d.body[2].instr.pred.active = true;
    d.body[2].instr.pred.op = CmpOp::Lt;
    d.body[2].instr.pred.lhs.cLane = 1;
    d.body[2].instr.pred.rhs.base = 16;
    const ReferenceResult r = runReference(d);
    for (std::int64_t i = 0; i < 128; i++) {
        const float want = (i % 32) < 16
                               ? 2.0f * bufferInitValue(d.buffers[0], i)
                               : 0.0f;
        EXPECT_EQ(r.buffers[1][static_cast<std::size_t>(i)], want)
            << "element " << i;
    }
}

TEST(Reference, WarpReduceSumBroadcastsWarpTotal)
{
    CudaKernelDesc d = tinyScaleDesc();
    d.buffers[0].init = BufferInit::Mod;
    d.buffers[0].initMod = 4; // x[i] = i % 4, warp sum = 8 * (0+1+2+3).
    CudaInstr red;
    red.op = CudaOp::WarpReduceSum;
    red.dst = 1;
    red.src0 = 0;
    d.body[1] = CudaStmt::of(red);
    const ReferenceResult r = runReference(d);
    for (std::size_t i = 0; i < 128; i++)
        EXPECT_EQ(r.buffers[1][i], 48.0f) << "element " << i;
}

} // namespace
} // namespace vespera::port
