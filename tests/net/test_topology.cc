#include <gtest/gtest.h>

#include "net/topology.h"

namespace vespera::net {
namespace {

TEST(Topology, GaudiInjectionScalesWithParticipants)
{
    FabricSpec f = FabricSpec::hlsGaudi2();
    EXPECT_DOUBLE_EQ(f.injectionBandwidth(2), 37.5 * GB);
    EXPECT_DOUBLE_EQ(f.injectionBandwidth(4), 3 * 37.5 * GB);
    EXPECT_DOUBLE_EQ(f.injectionBandwidth(8), 7 * 37.5 * GB);
}

TEST(Topology, SwitchInjectionFlat)
{
    FabricSpec f = FabricSpec::dgxA100();
    EXPECT_DOUBLE_EQ(f.injectionBandwidth(2), 300 * GB);
    EXPECT_DOUBLE_EQ(f.injectionBandwidth(8), 300 * GB);
}

TEST(Topology, GaudiNeverExceedsPerDeviceCap)
{
    FabricSpec f = FabricSpec::hlsGaudi2();
    for (int n = 2; n <= 8; n++)
        EXPECT_LE(f.injectionBandwidth(n), f.perDeviceBandwidth);
}

TEST(Topology, P2pTransferIncludesLatency)
{
    FabricSpec f = FabricSpec::hlsGaudi2();
    Seconds tiny = p2pTransferTime(f, 1);
    EXPECT_GE(tiny, f.linkLatency);
    Seconds big = p2pTransferTime(f, 1ull << 30);
    EXPECT_GT(big, 0.02); // ~1 GiB over 37.5 GB/s ~ 28 ms.
}

TEST(TopologyDeath, ParticipantsOutOfRange)
{
    FabricSpec f = FabricSpec::hlsGaudi2();
    EXPECT_DEATH((void)f.injectionBandwidth(1), "out of range");
    EXPECT_DEATH((void)f.injectionBandwidth(9), "out of range");
}

} // namespace
} // namespace vespera::net
