/**
 * @file
 * Randomized robustness tests: adversarial but valid inputs must never
 * break model invariants (no crashes, bounded utilizations, conserved
 * work) — seeded and deterministic.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "kern/embedding.h"
#include "kern/gemm.h"
#include "tpc/context.h"
#include "tpc/pipeline.h"

namespace vespera {
namespace {

class FuzzSeed : public ::testing::TestWithParam<std::uint64_t>
{
};

// Random-but-valid TPC traces: the pipeline model must stay sane.
TEST_P(FuzzSeed, PipelineSurvivesRandomTraces)
{
    Rng rng(GetParam());
    tpc::Program p;
    tpc::MemberRange range{{0, 0, 0, 0, 0}, {1, 1, 1, 1, 1}};
    tpc::TpcContext ctx(p, range);
    tpc::Tensor t({1 << 16}, DataType::FP32);

    std::vector<tpc::Vec> live;
    const int n_ops = 200 + static_cast<int>(rng.below(300));
    for (int i = 0; i < n_ops; i++) {
        const auto choice = rng.below(6);
        if (choice <= 1 || live.empty()) {
            const Bytes bytes = 4u << rng.below(9); // 4..1024 B.
            const auto access = rng.below(2) == 0
                                    ? tpc::Access::Stream
                                    : tpc::Access::Random;
            const auto at = static_cast<std::int64_t>(
                rng.below((1 << 16) - 256));
            live.push_back(ctx.v_ld_tnsr({at, 0, 0, 0, 0}, t, bytes,
                                         access));
        } else if (choice == 2 && live.size() >= 2) {
            const auto &a = live[rng.below(live.size())];
            // Only combine lane-compatible vectors.
            const auto &b = live[rng.below(live.size())];
            if (a.laneCount() == b.laneCount())
                live.push_back(ctx.v_add(a, b));
        } else if (choice == 3) {
            live.push_back(
                ctx.v_mul_s(live[rng.below(live.size())], 2.0f));
        } else if (choice == 4) {
            live.push_back(
                ctx.v_reduce_add(live[rng.below(live.size())]));
        } else {
            const auto &v = live[rng.below(live.size())];
            const auto at = static_cast<std::int64_t>(
                rng.below((1 << 16) - 1024));
            ctx.v_st_tnsr({at, 0, 0, 0, 0}, t, v);
        }
    }

    auto r = tpc::evaluatePipeline(p, tpc::TpcParams::forGaudi2());
    EXPECT_GT(r.cycles, 0);
    EXPECT_GE(r.busBytes, p.streamBytes() + p.randomBytes());
    EXPECT_EQ(r.randomAccesses, p.stats().randomAccesses);
    EXPECT_GE(r.cycles,
              static_cast<double>(p.instrs().size()) / 4.0 - 1);
}

// Skewed (hot-row) embedding index distributions: verification and
// invariants must hold regardless of access skew.
TEST_P(FuzzSeed, EmbeddingSurvivesSkewedIndices)
{
    kern::EmbeddingConfig c;
    c.numTables = 3;
    c.rowsPerTable = 1 << 10;
    c.batch = 64;
    c.pooling = 7; // Deliberately not a multiple of the unroll.
    c.vectorBytes = 192; // Not a power of two, not granule-aligned.
    kern::EmbeddingLayerGaudi layer(c);

    // The Rng seed shapes the index draw inside run(); pooling/batch
    // being awkward shapes exercises the tail paths.
    Rng rng(GetParam());
    auto batched = layer.run(kern::EmbeddingVariant::BatchedTable, rng);
    auto single = layer.run(kern::EmbeddingVariant::SingleTable, rng);
    EXPECT_GT(batched.time, 0);
    EXPECT_LE(batched.hbmUtilization, 1.0);
    EXPECT_EQ(batched.gatheredBytes, single.gatheredBytes);
    EXPECT_LE(batched.time, single.time * 1.05);
}

// Random GEMM shapes stay well-formed on both engines.
TEST_P(FuzzSeed, GemmSurvivesRandomShapes)
{
    Rng rng(GetParam());
    for (int i = 0; i < 20; i++) {
        hw::GemmShape shape;
        shape.m = 1 + static_cast<std::int64_t>(rng.below(8192));
        shape.k = 1 + static_cast<std::int64_t>(rng.below(8192));
        shape.n = 1 + static_cast<std::int64_t>(rng.below(8192));
        shape.batch = 1 + static_cast<std::int64_t>(rng.below(8));
        for (auto dev : {DeviceKind::Gaudi2, DeviceKind::A100}) {
            auto c = kern::runGemm(dev, shape, DataType::BF16);
            ASSERT_GT(c.time, 0);
            ASSERT_LE(c.utilization, 1.0);
            ASSERT_GT(c.utilization, 0.0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeed,
                         ::testing::Values(1u, 17u, 1234u, 987654321u));

} // namespace
} // namespace vespera
