/**
 * @file
 * Property-based tests of the runtime work-stealing pool: every index
 * runs exactly once at any thread count, nested parallel_for makes
 * progress (no deadlock), exceptions propagate with the documented
 * lowest-index choice, and the ordered side-effect replay keeps
 * counter state identical to serial execution.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "obs/counters.h"
#include "runtime/parallel.h"
#include "runtime/pool.h"

namespace vespera::runtime {
namespace {

class PoolProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(PoolProperty, EveryIndexRunsExactlyOnce)
{
    Pool pool(GetParam());
    for (std::size_t count : {1u, 2u, 7u, 64u, 1000u}) {
        std::vector<std::atomic<int>> hits(count);
        for (auto &h : hits)
            h.store(0);
        pool.run(count, [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < count; i++)
            ASSERT_EQ(hits[i].load(), 1) << "index " << i << " at "
                                         << GetParam() << " threads";
    }
}

TEST_P(PoolProperty, NestedRunMakesProgress)
{
    // The submitter of a nested batch participates in it, so progress
    // never depends on a free worker — even when every worker is
    // already inside an outer task. Three levels deep to be sure.
    Pool pool(GetParam());
    std::atomic<int> leaf_runs{0};
    pool.run(8, [&](std::size_t) {
        pool.run(4, [&](std::size_t) {
            pool.run(2, [&](std::size_t) {
                leaf_runs.fetch_add(1, std::memory_order_relaxed);
            });
        });
    });
    EXPECT_EQ(leaf_runs.load(), 8 * 4 * 2);
}

TEST_P(PoolProperty, LowestIndexExceptionPropagates)
{
    Pool pool(GetParam());
    std::atomic<int> runs{0};
    try {
        pool.run(32, [&](std::size_t i) {
            runs.fetch_add(1, std::memory_order_relaxed);
            if (i == 5 || i == 20)
                throw std::runtime_error("boom " + std::to_string(i));
        });
        FAIL() << "exception did not propagate";
    } catch (const std::runtime_error &e) {
        // Deterministic choice: the lowest throwing index wins.
        EXPECT_STREQ(e.what(), "boom 5");
    }
    // All-indices-run semantics: a throw does not cancel the batch.
    EXPECT_EQ(runs.load(), 32);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, PoolProperty,
                         ::testing::Values(1, 2, 3, 8));

TEST(PoolGlobal, SetGlobalThreadsResizes)
{
    Pool::setGlobalThreads(3);
    EXPECT_EQ(Pool::global().threads(), 3);
    Pool::setGlobalThreads(0); // clamps to 1
    EXPECT_EQ(Pool::global().threads(), 1);
}

TEST(ParallelFor, ReplaysCounterEffectsInIndexOrder)
{
    // The parallel path must leave the exact counter state a serial
    // loop produces: same sum, same peak, same update count.
    auto &reg = obs::CounterRegistry::instance();
    auto &c = reg.counter("test.prop_pool.ordered");
    const double base = c.value();

    Pool::setGlobalThreads(8);
    parallel_for(100, [&](std::size_t i) {
        c.add(static_cast<double>(i));
    });
    Pool::setGlobalThreads(1);

    double serial_sum = 0;
    for (int i = 0; i < 100; i++)
        serial_sum += i;
    EXPECT_DOUBLE_EQ(c.value() - base, serial_sum);
}

TEST(ParallelFor, FailedRegionLeavesNoPartialCounterState)
{
    auto &reg = obs::CounterRegistry::instance();
    auto &c = reg.counter("test.prop_pool.failed_region");
    const double base = c.value();

    Pool::setGlobalThreads(4);
    EXPECT_THROW(parallel_for(50,
                              [&](std::size_t i) {
                                  c.add(1.0);
                                  if (i == 10)
                                      throw std::runtime_error("die");
                              }),
                 std::runtime_error);
    Pool::setGlobalThreads(1);

    EXPECT_DOUBLE_EQ(c.value(), base)
        << "side-effect logs of a failed parallel region must be "
           "discarded";
}

TEST(ParallelMap, ResultsComeBackInIndexOrder)
{
    Pool::setGlobalThreads(8);
    auto out = parallel_map(257, [](std::size_t i) {
        return static_cast<int>(i * 3);
    });
    Pool::setGlobalThreads(1);
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); i++)
        ASSERT_EQ(out[i], static_cast<int>(i * 3));
}

} // namespace
} // namespace vespera::runtime
