/**
 * @file
 * Property-based tests of the kernel-eval replay cache
 * (graph/replay_cache.h) over randomized node streams.
 *
 * Three properties, each the load-bearing half of a cache bug class:
 *
 *  1. Transparency: for any random graph, the executor's report and
 *     its counter side effects are bitwise equal whether every node
 *     is evaluated fresh (cache off), costed for the first time
 *     (cache miss), or replayed (cache hit).
 *  2. Key injectivity: two nodes with different cost-relevant payloads
 *     never map to the same replay key (a collision would silently
 *     serve one kernel's cost for another); payload-equal nodes on the
 *     same device always share a key (else the cache never hits).
 *  3. Bounded memory: entries() never exceeds capacity no matter how
 *     many distinct keys stream through, and eviction recomputes
 *     rather than miscomputes.
 */

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/executor.h"
#include "graph/graph.h"
#include "graph/replay_cache.h"
#include "obs/counters.h"

namespace vespera::graph {
namespace {

using vespera::Rng;

/** Uniform integer in [lo, hi] (Rng only exposes doubles). */
int
uniformInt(Rng &rng, int lo, int hi)
{
    const int span = hi - lo + 1;
    int v = lo + static_cast<int>(rng.uniform() * span);
    return v > hi ? hi : v;
}

/** Random cost-relevant payload for one graph. */
struct GraphCase
{
    std::int64_t m, k, n;
    std::int64_t elems;
    double flopsPerElement;
    bool usesFma;
    int normPasses;
    DataType dt;
};

GraphCase
randomCase(Rng &rng)
{
    GraphCase c;
    c.m = 1ll << uniformInt(rng, 4, 12);
    c.k = 1ll << uniformInt(rng, 4, 12);
    c.n = 1ll << uniformInt(rng, 0, 12);
    c.elems = 1ll << uniformInt(rng, 8, 20);
    c.flopsPerElement = static_cast<double>(uniformInt(rng, 1, 64)) / 4.0;
    c.usesFma = uniformInt(rng, 0, 1) == 1;
    c.normPasses = uniformInt(rng, 1, 4);
    c.dt = uniformInt(rng, 0, 1) == 1 ? DataType::BF16 : DataType::FP32;
    return c;
}

Graph
buildGraph(const GraphCase &c)
{
    Graph g;
    const int a = g.input({{c.m, c.k}, c.dt});
    const int b = g.input({{c.k, c.n}, c.dt});
    const int mm = g.matmul(a, b);
    const int e = g.elementwiseTo({mm}, {{c.elems}, c.dt},
                                  c.flopsPerElement, c.usesFma);
    g.normalization(e, c.normPasses, c.flopsPerElement);
    return g;
}

/** Doc of everything a run may touch: report bits + graph counters. */
std::string
runDoc(const Graph &g, DeviceKind device)
{
    obs::CounterRegistry::instance().reset();
    Executor executor(device);
    const ExecutionReport r = executor.run(g);
    std::string doc =
        strfmt("report|t=%a|f=%a|hbm=%llu|mb=%a|vb=%a|comm=%a|"
               "util=%a|mac=%a\n",
               r.time, r.flops,
               static_cast<unsigned long long>(r.hbmBytes), r.matrixBusy,
               r.vectorBusy, r.commTime, r.avgMatrixUtil,
               r.avgMacFraction);
    for (const auto &c : obs::CounterRegistry::instance().snapshot()) {
        if (c.name.rfind("replay.", 0) == 0)
            continue;
        doc += strfmt("counter|%s|v=%a|peak=%a|n=%llu\n", c.name.c_str(),
                      c.value, c.peak,
                      static_cast<unsigned long long>(c.updates));
    }
    return doc;
}

TEST(ReplayCacheProperty, CacheOnOffAndHitRunsAreBitwiseEqual)
{
    Rng rng(2024);
    for (int trial = 0; trial < 40; trial++) {
        SCOPED_TRACE(trial);
        const GraphCase c = randomCase(rng);
        const Graph g = buildGraph(c);
        const DeviceKind device =
            trial % 2 == 0 ? DeviceKind::Gaudi2 : DeviceKind::A100;

        // Settle cross-run model state first: the MME geometry tracker
        // charges a reconfiguration on the first visit to a new shape,
        // so the three compared runs must all start from the same
        // settled geometry (the same warm-up protocol as
        // tests/serve/test_engine_equiv.cc).
        std::string off_doc;
        {
            ReplayCacheDisable off(nodeReplayCache());
            (void)runDoc(g, device);
            off_doc = runDoc(g, device);
        }
        nodeReplayCache().clear();
        const std::string miss_doc = runDoc(g, device); // First costing.
        const std::string hit_doc = runDoc(g, device);  // Replay.

        EXPECT_EQ(miss_doc, off_doc)
            << "capturing a node's side effects changed them";
        EXPECT_EQ(hit_doc, off_doc)
            << "replaying a cached node diverged from fresh evaluation";
    }
}

TEST(ReplayCacheProperty, KeysAreInjectiveOverPayloads)
{
    // Map every generated key back to its payload descriptor; a key
    // seen twice must come from an identical descriptor. The draws
    // deliberately produce near-colliding field values (powers of two
    // shared across m/k/n/elems) so missing separators would be caught.
    Rng rng(7);
    std::map<std::string, std::string> seen;
    int checked = 0;
    for (int trial = 0; trial < 200; trial++) {
        const GraphCase c = randomCase(rng);
        const Graph g = buildGraph(c);
        const DeviceKind device =
            trial % 2 == 0 ? DeviceKind::Gaudi2 : DeviceKind::A100;
        for (const Node &node : g.nodes()) {
            const std::string key = nodeReplayKey(node, device);
            if (key.empty()) // Inputs and unkeyed customs opt out.
                continue;
            std::string desc;
            switch (node.kind) {
              case OpKind::MatMul:
                desc = strfmt("mm %s %lld %lld %lld %lld %d",
                              deviceName(device), node.gemm.m,
                              node.gemm.k, node.gemm.n, node.gemm.batch,
                              static_cast<int>(node.output.dt));
                break;
              case OpKind::Elementwise:
              case OpKind::Normalization:
                desc = strfmt("vec %s %a %d %llu %lld %d",
                              deviceName(device), node.flopsPerElement,
                              node.usesFma ? 1 : 0,
                              static_cast<unsigned long long>(
                                  node.trafficBytes),
                              node.output.elements(),
                              static_cast<int>(node.output.dt));
                break;
              default:
                desc = key; // Other kinds: key is its own descriptor.
                break;
            }
            auto [it, inserted] = seen.try_emplace(key, desc);
            if (!inserted) {
                EXPECT_EQ(it->second, desc)
                    << "key collision: '" << key
                    << "' maps to two different payloads";
            }
            checked++;
        }
    }
    EXPECT_GT(checked, 500);
    // Payload-equal nodes must share a key (hit path exists at all).
    const GraphCase c = randomCase(rng);
    const Graph g1 = buildGraph(c), g2 = buildGraph(c);
    EXPECT_EQ(nodeReplayKey(g1.node(2), DeviceKind::Gaudi2),
              nodeReplayKey(g2.node(2), DeviceKind::Gaudi2));
    EXPECT_NE(nodeReplayKey(g1.node(2), DeviceKind::Gaudi2),
              nodeReplayKey(g2.node(2), DeviceKind::A100))
        << "device must be part of the key";
}

TEST(ReplayCacheProperty, MemoryIsBoundedUnderEviction)
{
    ReplayCache<int> cache("proptest", 32);
    cache.setEnabled(true);
    int evaluations = 0;
    Rng rng(11);
    // Stream 1000 distinct keys, revisiting a random prefix so the LRU
    // actually exercises both hits and evictions.
    for (int i = 0; i < 1000; i++) {
        const int key_id = i;
        (void)cache.runMemoized(strfmt("k%d", key_id), [&] {
            evaluations++;
            return key_id * 3;
        });
        EXPECT_LE(cache.entries(), 32u) << "capacity overrun at " << i;
        const int back = uniformInt(rng, 0, i);
        const int v = cache.runMemoized(strfmt("k%d", back),
                                        [&] {
                                            evaluations++;
                                            return back * 3;
                                        });
        EXPECT_EQ(v, back * 3)
            << "eviction recomputed the wrong value for k" << back;
        EXPECT_LE(cache.entries(), 32u);
    }
    // Every evaluation was either a first visit or a post-eviction
    // recompute; with capacity 32 over 1000 keys there must be both.
    EXPECT_GE(evaluations, 1000);
    EXPECT_GT(evaluations, 1032) << "eviction never recomputed";
}

} // namespace
} // namespace vespera::graph
