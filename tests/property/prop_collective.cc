/**
 * @file
 * Property-based tests of the collective models across operations,
 * device counts, message sizes, and backends.
 */

#include <gtest/gtest.h>

#include "coll/collective.h"

namespace vespera::coll {
namespace {

struct CollCase
{
    CollectiveModel::Backend backend;
    CollectiveOp op;
    int devices;
    Bytes bytes;
};

void
PrintTo(const CollCase &c, std::ostream *os)
{
    *os << (c.backend == CollectiveModel::Backend::Hccl ? "hccl"
                                                        : "nccl")
        << " " << collectiveName(c.op) << " n" << c.devices << " "
        << c.bytes << "B";
}

CollectiveModel
modelFor(const CollCase &c)
{
    return c.backend == CollectiveModel::Backend::Hccl
               ? CollectiveModel::hcclOnGaudi2()
               : CollectiveModel::ncclOnDgxA100();
}

class CollectiveProperty : public ::testing::TestWithParam<CollCase>
{
};

TEST_P(CollectiveProperty, ResultWellFormed)
{
    const auto &p = GetParam();
    auto r = modelFor(p).run(p.op, p.bytes, p.devices);
    EXPECT_GT(r.time, 0);
    EXPECT_GT(r.algoBandwidth, 0);
    EXPECT_GT(r.busBandwidth, 0);
    EXPECT_GT(r.busBandwidthUtilization, 0);
    EXPECT_LE(r.busBandwidthUtilization, 1.0);
}

TEST_P(CollectiveProperty, BusBandwidthAccounting)
{
    const auto &p = GetParam();
    auto r = modelFor(p).run(p.op, p.bytes, p.devices);
    const double factor = CollectiveModel::busFactor(p.op, p.devices);
    EXPECT_NEAR(r.busBandwidth, r.algoBandwidth * factor,
                1e-6 * r.busBandwidth);
    EXPECT_NEAR(r.algoBandwidth,
                static_cast<double>(p.bytes) / r.time,
                1e-6 * r.algoBandwidth);
}

TEST_P(CollectiveProperty, TimeMonotoneInSize)
{
    const auto &p = GetParam();
    auto model = modelFor(p);
    auto small = model.run(p.op, p.bytes, p.devices);
    auto big = model.run(p.op, p.bytes * 4, p.devices);
    EXPECT_GT(big.time, small.time);
    // Utilization never decreases with message size.
    EXPECT_GE(big.busBandwidthUtilization,
              small.busBandwidthUtilization);
}

TEST_P(CollectiveProperty, LatencyFloor)
{
    const auto &p = GetParam();
    auto model = modelFor(p);
    auto tiny = model.run(p.op, 1, p.devices);
    // Even 1-byte collectives pay the software + link latency.
    EXPECT_GT(tiny.time, 5e-6);
}

TEST_P(CollectiveProperty, HcclScalesWithDevices)
{
    const auto &p = GetParam();
    if (p.backend != CollectiveModel::Backend::Hccl || p.devices >= 8)
        GTEST_SKIP();
    auto model = modelFor(p);
    auto fewer = model.run(p.op, p.bytes, p.devices);
    auto more = model.run(p.op, p.bytes, 8);
    // With more P2P links active, utilization never drops.
    EXPECT_GE(more.busBandwidthUtilization,
              fewer.busBandwidthUtilization * 0.99);
}

std::vector<CollCase>
collCases()
{
    std::vector<CollCase> cases;
    const CollectiveOp ops[] = {
        CollectiveOp::AllReduce,     CollectiveOp::AllGather,
        CollectiveOp::ReduceScatter, CollectiveOp::AllToAll,
        CollectiveOp::Reduce,        CollectiveOp::Broadcast,
    };
    for (auto backend : {CollectiveModel::Backend::Hccl,
                         CollectiveModel::Backend::Nccl}) {
        for (auto op : ops) {
            for (int n : {2, 4, 8}) {
                cases.push_back({backend, op, n, 64 * 1024});
                cases.push_back({backend, op, n, 8 * 1024 * 1024});
            }
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CollectiveProperty,
                         ::testing::ValuesIn(collCases()));

} // namespace
} // namespace vespera::coll
