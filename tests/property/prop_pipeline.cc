/**
 * @file
 * Property-based tests of the TPC pipeline timing model over unroll
 * factors and access granularities.
 */

#include <gtest/gtest.h>

#include "tpc/context.h"
#include "tpc/pipeline.h"

namespace vespera::tpc {
namespace {

struct PipeCase
{
    int unroll;
    Bytes granularity;
};

void
PrintTo(const PipeCase &c, std::ostream *os)
{
    *os << "u" << c.unroll << " g" << c.granularity;
}

/// Total payload held constant across parameters.
constexpr std::int64_t payloadBytes = 256 * 1024;

Program
buildTrace(const PipeCase &c)
{
    Program p;
    MemberRange range{{0, 0, 0, 0, 0}, {1, 1, 1, 1, 1}};
    TpcContext ctx(p, range, c.granularity);
    Tensor a({payloadBytes / 4}, DataType::FP32);
    Tensor b({payloadBytes / 4}, DataType::FP32);
    Tensor out({payloadBytes / 4}, DataType::FP32);
    const auto lanes = static_cast<std::int64_t>(c.granularity / 4);
    const std::int64_t iters = payloadBytes / 4 / lanes;
    for (std::int64_t i = 0; i < iters; i += c.unroll) {
        std::vector<Vec> xs, ys;
        for (int u = 0; u < c.unroll && i + u < iters; u++) {
            Int5 coord{(i + u) * lanes, 0, 0, 0, 0};
            xs.push_back(ctx.v_ld_tnsr(coord, a, c.granularity));
            ys.push_back(ctx.v_ld_tnsr(coord, b, c.granularity));
        }
        for (std::size_t u = 0; u < xs.size(); u++) {
            Vec sum = ctx.v_add(xs[u], ys[u]);
            Int5 coord{(i + static_cast<std::int64_t>(u)) * lanes, 0, 0,
                       0, 0};
            ctx.v_st_tnsr(coord, out, sum);
        }
    }
    return p;
}

class PipelineProperty : public ::testing::TestWithParam<PipeCase>
{
};

TEST_P(PipelineProperty, ResultWellFormed)
{
    Program p = buildTrace(GetParam());
    auto r = evaluatePipeline(p, TpcParams::forGaudi2());
    EXPECT_GT(r.cycles, 0);
    EXPECT_GT(r.time, 0);
    // Work is parameter-invariant: 1 flop per FP32 element.
    EXPECT_DOUBLE_EQ(r.flops, payloadBytes / 4.0);
}

TEST_P(PipelineProperty, BusBytesRoundedToGranules)
{
    Program p = buildTrace(GetParam());
    auto r = evaluatePipeline(p, TpcParams::forGaudi2());
    EXPECT_EQ(r.busBytes % 256, 0u);
    // Payload is 3 arrays; bus traffic covers at least that.
    EXPECT_GE(r.busBytes, 3u * payloadBytes);
}

TEST_P(PipelineProperty, CyclesLowerBoundedByMemInterface)
{
    TpcParams params = TpcParams::forGaudi2();
    Program p = buildTrace(GetParam());
    auto r = evaluatePipeline(p, params);
    const double min_cycles =
        static_cast<double>(r.busBytes) / params.granule *
        params.memIssueIntervalCycles;
    EXPECT_GE(r.cycles, min_cycles - 1);
}

TEST_P(PipelineProperty, PrefixNeverSlower)
{
    // Evaluating a prefix of the trace never takes longer than the
    // whole trace.
    Program full = buildTrace(GetParam());
    Program prefix;
    const std::size_t half = full.instrs().size() / 2;
    for (std::size_t i = 0; i < half; i++)
        prefix.append(full.instrs()[i]);
    // Value ids are shared; allocate enough.
    while (prefix.numValues() < full.numValues())
        prefix.newValue();
    auto rf = evaluatePipeline(full, TpcParams::forGaudi2());
    auto rp = evaluatePipeline(prefix, TpcParams::forGaudi2());
    EXPECT_LE(rp.cycles, rf.cycles);
}

TEST_P(PipelineProperty, MoreUnrollNeverSlower)
{
    PipeCase c = GetParam();
    auto base = evaluatePipeline(buildTrace(c), TpcParams::forGaudi2());
    c.unroll *= 2;
    auto more = evaluatePipeline(buildTrace(c), TpcParams::forGaudi2());
    EXPECT_LE(more.cycles, base.cycles * 1.001);
}

TEST_P(PipelineProperty, HigherClockProportionallyFaster)
{
    Program p = buildTrace(GetParam());
    TpcParams params = TpcParams::forGaudi2();
    auto slow = evaluatePipeline(p, params);
    params.clock *= 2;
    auto fast = evaluatePipeline(p, params);
    EXPECT_DOUBLE_EQ(slow.cycles, fast.cycles);
    EXPECT_NEAR(slow.time / fast.time, 2.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineProperty,
    ::testing::Values(PipeCase{1, 64}, PipeCase{1, 256},
                      PipeCase{2, 256}, PipeCase{4, 128},
                      PipeCase{4, 256}, PipeCase{4, 1024},
                      PipeCase{8, 256}, PipeCase{16, 512}));

} // namespace
} // namespace vespera::tpc
