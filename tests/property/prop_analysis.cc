/**
 * @file
 * Property tests of the static analyzer over randomized programs: the
 * predicted stall total never exceeds (and in fact equals) what
 * tpc::evaluatePipeline measures, and diagnostics always reference
 * valid instructions — on traces the generator never saw during
 * development.
 */

#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "common/rng.h"
#include "tpc/context.h"

namespace vespera::analysis {
namespace {

using tpc::Access;
using tpc::Int5;
using tpc::Program;
using tpc::Tensor;
using tpc::TpcContext;
using tpc::Vec;

/// Random but SSA-valid instruction soup: loads of varying width and
/// access class, arithmetic over live values, stores, local-memory
/// staging — the space of traces kernels can actually record.
Program
randomProgram(std::uint64_t seed)
{
    Rng rng(seed);
    Program p;
    tpc::MemberRange range{{0, 0, 0, 0, 0}, {1, 1, 1, 1, 1}};
    TpcContext ctx(p, range);
    Tensor a({1 << 16}, DataType::FP32);
    Tensor b({1 << 16}, DataType::FP32);
    Tensor out({1 << 16}, DataType::FP32);

    static constexpr Bytes widths[] = {64, 128, 256};
    std::vector<Vec> live;
    live.push_back(ctx.v_zero(64));
    const int steps = 20 + static_cast<int>(rng.below(180));
    for (int i = 0; i < steps; i++) {
        const auto pick = [&rng, &live]() -> const Vec & {
            return live[static_cast<std::size_t>(
                rng.below(live.size()))];
        };
        switch (rng.below(8)) {
          case 0:
          case 1: {
            // Arithmetic requires matching lane counts, so only
            // full-width loads join the live pool; narrower loads are
            // stored straight back (still visible to address rules).
            const Bytes w = widths[rng.below(3)];
            const auto at = static_cast<std::int64_t>(
                rng.below(1 << 10) * 64);
            const Access acc = rng.below(4) == 0 ? Access::Random
                                                 : Access::Stream;
            Vec v = ctx.v_ld_tnsr({at, 0, 0, 0, 0},
                                  rng.below(2) == 0 ? a : b, w, acc);
            if (w == 256)
                live.push_back(std::move(v));
            else
                ctx.v_st_tnsr({at, 0, 0, 0, 0}, out, v);
            break;
          }
          case 2:
          case 3:
            live.push_back(ctx.v_add(pick(), pick()));
            break;
          case 4:
            live.push_back(ctx.v_mul_s(pick(), 1.5f));
            break;
          case 5: {
            const auto at = static_cast<std::int64_t>(
                rng.below(1 << 10) * 64);
            ctx.v_st_tnsr({at, 0, 0, 0, 0}, out, pick());
            break;
          }
          case 6:
            ctx.v_st_local(
                static_cast<std::int64_t>(rng.below(256)) * 64,
                pick());
            break;
          case 7:
            live.push_back(ctx.v_ld_local(
                static_cast<std::int64_t>(rng.below(256)) * 64, 64));
            break;
        }
    }
    return p;
}

class AnalysisProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(AnalysisProperty, PredictionNeverExceedsMeasurement)
{
    const Program p =
        randomProgram(0xabcdull * static_cast<unsigned>(GetParam()));
    tpc::IssueTrace trace;
    const tpc::PipelineResult measured =
        tpc::evaluatePipeline(p, tpc::TpcParams::forGaudi2(), &trace);
    const Report r = analyzeProgram(p);

    // The ISSUE's property: predicted stalls never exceed measured.
    EXPECT_LE(r.predictedStallCycles,
              measured.stallCycles + 1e-9);
    // And the acceptance bound: within 10% (equality, in fact).
    EXPECT_NEAR(r.predictedStallCycles, measured.stallCycles, 1e-9);
    EXPECT_DOUBLE_EQ(r.cycles, measured.cycles);
}

TEST_P(AnalysisProperty, DiagnosticsReferenceValidInstructions)
{
    const Program p =
        randomProgram(0x5151ull * static_cast<unsigned>(GetParam()));
    const Report r = analyzeProgram(p);
    const auto n = static_cast<std::int64_t>(p.instrs().size());
    for (const Diagnostic &d : r.diagnostics) {
        EXPECT_GE(d.instrIndex, -1);
        EXPECT_LT(d.instrIndex, n);
        EXPECT_FALSE(d.rule.empty());
        EXPECT_FALSE(d.message.empty());
    }
    // No malformed-SSA findings: the generator is SSA-correct.
    EXPECT_EQ(r.countFor(rules::invalidSsa), 0);
}

TEST_P(AnalysisProperty, SummariesCountAtLeastEmittedDiagnostics)
{
    const Program p =
        randomProgram(0x7777ull * static_cast<unsigned>(GetParam()));
    const Report r = analyzeProgram(p);
    std::map<std::string, int> emitted;
    for (const Diagnostic &d : r.diagnostics)
        emitted[d.rule]++;
    for (const auto &[rule, count] : emitted) {
        ASSERT_NE(r.rules.find(rule), r.rules.end());
        EXPECT_GE(r.rules.at(rule).count, count);
    }
    for (const auto &[rule, summary] : r.rules)
        EXPECT_GT(summary.count, 0) << rule;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalysisProperty,
                         ::testing::Range(1, 25));

} // namespace
} // namespace vespera::analysis
