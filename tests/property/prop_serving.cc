/**
 * @file
 * Property-based tests of the serving engine: conservation and
 * ordering invariants that must survive any scheduler configuration,
 * including KV-exhaustion (failure-injection via tiny pools).
 */

#include <gtest/gtest.h>

#include "serve/engine.h"

namespace vespera::serve {
namespace {

struct ServeCase
{
    int maxBatch;
    KvPolicy policy;
    Bytes kvBytes;
    models::AttentionBackend backend;
};

void
PrintTo(const ServeCase &c, std::ostream *os)
{
    *os << "b" << c.maxBatch
        << (c.policy == KvPolicy::Paged ? " paged " : " contig ")
        << (c.kvBytes >> 30) << "GiB";
}

class ServingProperty : public ::testing::TestWithParam<ServeCase>
{
  protected:
    ServingProperty()
        : model_(models::LlamaConfig::llama31_8b())
    {
    }

    EngineConfig
    config() const
    {
        EngineConfig cfg;
        cfg.maxDecodeBatch = GetParam().maxBatch;
        cfg.kvPolicy = GetParam().policy;
        cfg.kvCacheBytes = GetParam().kvBytes;
        cfg.attention = GetParam().backend;
        cfg.maxModelLen = 2048;
        return cfg;
    }

    std::vector<Request>
    trace() const
    {
        TraceConfig tc;
        tc.numRequests = 48;
        tc.maxInputLen = 1024;
        tc.maxOutputLen = 256;
        Rng rng(2024);
        return makeDynamicTrace(tc, rng);
    }

    models::LlamaModel model_;
};

TEST_P(ServingProperty, AllRequestsComplete)
{
    Engine engine(model_, config());
    auto t = trace();
    const std::size_t n = t.size();
    auto m = engine.run(std::move(t));
    EXPECT_EQ(m.completed, static_cast<int>(n));
}

TEST_P(ServingProperty, TokenConservation)
{
    Engine engine(model_, config());
    auto t = trace();
    std::int64_t expected = 0;
    for (const auto &r : t)
        expected += r.outputLen;
    auto m = engine.run(t);
    // Throughput x makespan = generated tokens (>= expected; preempted
    // requests regenerate their tokens).
    const double generated = m.throughputTokensPerSec * m.makespan;
    EXPECT_GE(generated, expected - 1.0);
}

TEST_P(ServingProperty, LatencyOrdering)
{
    Engine engine(model_, config());
    auto m = engine.run(trace());
    EXPECT_GT(m.meanTtft, 0);
    EXPECT_LE(m.meanTtft, m.p99Ttft);
    EXPECT_LT(m.p99Ttft, m.makespan);
    EXPECT_GT(m.meanTpot, 0);
    EXPECT_LT(m.meanTpot, 1.0); // Sub-second per token.
}

TEST_P(ServingProperty, BatchBounded)
{
    Engine engine(model_, config());
    auto m = engine.run(trace());
    EXPECT_LE(m.avgDecodeBatch, GetParam().maxBatch);
    EXPECT_GE(m.avgDecodeBatch, 1.0);
}

TEST_P(ServingProperty, DeterministicAcrossRuns)
{
    Engine e1(model_, config());
    Engine e2(model_, config());
    auto m1 = e1.run(trace());
    auto m2 = e2.run(trace());
    EXPECT_DOUBLE_EQ(m1.makespan, m2.makespan);
    EXPECT_DOUBLE_EQ(m1.meanTtft, m2.meanTtft);
    EXPECT_EQ(m1.preemptions, m2.preemptions);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ServingProperty,
    ::testing::Values(
        ServeCase{4, KvPolicy::Paged, 16ull << 30,
                  models::AttentionBackend::VllmOpt},
        ServeCase{16, KvPolicy::Paged, 16ull << 30,
                  models::AttentionBackend::VllmOpt},
        ServeCase{64, KvPolicy::Paged, 16ull << 30,
                  models::AttentionBackend::VllmBase},
        ServeCase{16, KvPolicy::Contiguous, 16ull << 30,
                  models::AttentionBackend::VllmOpt},
        ServeCase{64, KvPolicy::Contiguous, 16ull << 30,
                  models::AttentionBackend::Static},
        // Failure injection: starved KV pool forces preemptions /
        // tiny admission windows; completion must still hold.
        ServeCase{32, KvPolicy::Paged, 1ull << 28,
                  models::AttentionBackend::VllmOpt},
        ServeCase{32, KvPolicy::Contiguous, 1ull << 29,
                  models::AttentionBackend::VllmOpt}));

// Paged vs contiguous under the same pool: paging admits more and
// never does worse on throughput (the PagedAttention motivation).
TEST(ServingPolicy, PagedBeatsContiguousWhenMemoryTight)
{
    models::LlamaModel model(models::LlamaConfig::llama31_8b());
    TraceConfig tc;
    tc.numRequests = 64;
    tc.maxInputLen = 512;
    tc.maxOutputLen = 128;

    EngineConfig cfg;
    cfg.maxDecodeBatch = 64;
    cfg.kvCacheBytes = 2ull << 30;
    cfg.maxModelLen = 4096;

    cfg.kvPolicy = KvPolicy::Contiguous;
    Engine contiguous(model, cfg);
    Rng r1(5);
    auto mc = contiguous.run(makeDynamicTrace(tc, r1));

    cfg.kvPolicy = KvPolicy::Paged;
    Engine paged(model, cfg);
    Rng r2(5);
    auto mp = paged.run(makeDynamicTrace(tc, r2));

    EXPECT_GT(mp.avgDecodeBatch, 1.5 * mc.avgDecodeBatch);
    EXPECT_GT(mp.throughputTokensPerSec, mc.throughputTokensPerSec);
}

} // namespace
} // namespace vespera::serve
