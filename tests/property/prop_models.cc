/**
 * @file
 * Property-based tests of the end-to-end model simulators (Llama and
 * DLRM) across devices, shapes, and parallelism degrees.
 */

#include <gtest/gtest.h>

#include "models/dlrm.h"
#include "models/llama.h"

namespace vespera::models {
namespace {

// ---------------------------------------------------------------- Llama

struct LlamaCase
{
    DeviceKind device;
    int batch;
    int tp;
    AttentionBackend backend;
};

void
PrintTo(const LlamaCase &c, std::ostream *os)
{
    *os << deviceName(c.device) << " b" << c.batch << " tp" << c.tp;
}

class LlamaProperty : public ::testing::TestWithParam<LlamaCase>
{
  protected:
    LlamaProperty()
        : model_(LlamaConfig::llama31_8b())
    {
    }
    LlamaModel model_;
};

TEST_P(LlamaProperty, StepTimeMonotoneInContext)
{
    const auto &p = GetParam();
    LlamaServingConfig cfg;
    cfg.tpDevices = p.tp;
    cfg.attention = p.backend;
    Seconds prev = 0;
    for (std::int64_t ctx : {128, 512, 2048, 8192}) {
        Seconds t = model_.stepTime(p.device, p.batch, 1, ctx, false,
                                    cfg);
        EXPECT_GT(t, prev) << "ctx " << ctx;
        prev = t;
    }
}

TEST_P(LlamaProperty, StepTimeMonotoneInBatch)
{
    const auto &p = GetParam();
    LlamaServingConfig cfg;
    cfg.tpDevices = p.tp;
    cfg.attention = p.backend;
    Seconds t1 = model_.stepTime(p.device, 1, 1, 1024, false, cfg);
    Seconds t2 = model_.stepTime(p.device, 4 * p.batch, 1, 1024, false,
                                 cfg);
    EXPECT_GE(t2, t1);
}

TEST_P(LlamaProperty, TensorParallelismShrinksStepTime)
{
    const auto &p = GetParam();
    if (p.tp != 1)
        GTEST_SKIP();
    LlamaServingConfig one;
    one.attention = p.backend;
    LlamaServingConfig four = one;
    four.tpDevices = 4;
    Seconds t1 = model_.stepTime(p.device, p.batch, 1, 2048, false,
                                 one);
    Seconds t4 = model_.stepTime(p.device, p.batch, 1, 2048, false,
                                 four);
    // Communication keeps it well above a 4x speedup.
    EXPECT_LT(t4, t1);
    EXPECT_GT(t4, t1 / 4);
}

TEST_P(LlamaProperty, ServeTotalsConsistent)
{
    const auto &p = GetParam();
    LlamaServingConfig cfg;
    cfg.batch = p.batch;
    cfg.outputLen = 50;
    cfg.tpDevices = p.tp;
    cfg.attention = p.backend;
    auto r = model_.serve(p.device, cfg);
    EXPECT_NEAR(r.totalTime, r.prefillTime + r.decodeTime, 1e-12);
    EXPECT_NEAR(r.tokensPerSec * r.totalTime,
                static_cast<double>(p.batch) * 50, 1e-6);
    EXPECT_GT(r.avgPowerPerDevice,
              hw::deviceSpec(p.device).idlePower);
    EXPECT_LE(r.avgPowerPerDevice, hw::deviceSpec(p.device).tdp);
    EXPECT_NEAR(r.energy,
                r.avgPowerPerDevice * r.totalTime * p.tp, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LlamaProperty,
    ::testing::Values(
        LlamaCase{DeviceKind::Gaudi2, 1, 1, AttentionBackend::Static},
        LlamaCase{DeviceKind::Gaudi2, 16, 1, AttentionBackend::Static},
        LlamaCase{DeviceKind::Gaudi2, 16, 4,
                  AttentionBackend::VllmOpt},
        LlamaCase{DeviceKind::Gaudi2, 64, 1,
                  AttentionBackend::VllmBase},
        LlamaCase{DeviceKind::A100, 1, 1, AttentionBackend::Static},
        LlamaCase{DeviceKind::A100, 16, 4, AttentionBackend::VllmOpt},
        LlamaCase{DeviceKind::A100, 64, 1, AttentionBackend::Static}));

// ----------------------------------------------------------------- DLRM

struct DlrmCase
{
    DeviceKind device;
    int batch;
    Bytes vecBytes;
};

void
PrintTo(const DlrmCase &c, std::ostream *os)
{
    *os << deviceName(c.device) << " b" << c.batch << " v"
        << c.vecBytes;
}

class DlrmProperty : public ::testing::TestWithParam<DlrmCase>
{
  protected:
    DlrmProperty()
        : model_([] {
              DlrmConfig c = DlrmConfig::rm2();
              c.rowsPerTable = 1 << 12;
              return c;
          }())
    {
    }
    DlrmModel model_;
};

TEST_P(DlrmProperty, ReportWellFormed)
{
    const auto &p = GetParam();
    DlrmRunConfig run;
    run.batch = p.batch;
    run.embVectorBytes = p.vecBytes;
    Rng rng(3);
    auto r = model_.run(p.device, run, rng);
    EXPECT_GT(r.time, 0);
    EXPECT_NEAR(r.time, r.embeddingTime + r.denseTime, 1e-12);
    EXPECT_NEAR(r.samplesPerSec * r.time, p.batch, 1e-6);
    EXPECT_GT(r.power, hw::deviceSpec(p.device).idlePower);
    EXPECT_LE(r.power, hw::deviceSpec(p.device).tdp);
}

TEST_P(DlrmProperty, ThroughputGrowsWithBatch)
{
    const auto &p = GetParam();
    DlrmRunConfig run;
    run.embVectorBytes = p.vecBytes;
    Rng rng(4);
    run.batch = p.batch;
    auto small = model_.run(p.device, run, rng);
    run.batch = p.batch * 4;
    auto big = model_.run(p.device, run, rng);
    EXPECT_GT(big.samplesPerSec, small.samplesPerSec);
}

TEST_P(DlrmProperty, MultiDeviceConsistent)
{
    const auto &p = GetParam();
    if (p.batch % 4 != 0)
        GTEST_SKIP();
    DlrmRunConfig run;
    run.batch = p.batch;
    run.embVectorBytes = p.vecBytes;
    Rng rng(5);
    auto multi = model_.runMultiDevice(p.device, run, 4, rng);
    EXPECT_GT(multi.commTime, 0);
    EXPECT_NEAR(multi.time,
                multi.embeddingTime + multi.commTime + multi.denseTime,
                1e-12);
    // 4 devices consume energy; per-sample energy stays finite.
    EXPECT_GT(multi.samplesPerJoule, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DlrmProperty,
    ::testing::Values(DlrmCase{DeviceKind::Gaudi2, 256, 64},
                      DlrmCase{DeviceKind::Gaudi2, 256, 512},
                      DlrmCase{DeviceKind::Gaudi2, 2048, 128},
                      DlrmCase{DeviceKind::A100, 256, 64},
                      DlrmCase{DeviceKind::A100, 2048, 256}));

} // namespace
} // namespace vespera::models
