/**
 * @file
 * Property-based tests of the matrix-engine cost models: invariants
 * that must hold for every device and GEMM shape.
 */

#include <gtest/gtest.h>

#include "hw/mme.h"
#include "kern/gemm.h"

namespace vespera::kern {
namespace {

struct GemmCase
{
    DeviceKind device;
    std::int64_t m, k, n, batch;
};

void
PrintTo(const GemmCase &c, std::ostream *os)
{
    *os << deviceName(c.device) << " " << c.m << "x" << c.k << "x"
        << c.n << " b" << c.batch;
}

class GemmProperty : public ::testing::TestWithParam<GemmCase>
{
};

TEST_P(GemmProperty, CostIsWellFormed)
{
    const auto &p = GetParam();
    auto c = runGemm(p.device, {p.m, p.k, p.n, p.batch},
                     DataType::BF16);
    EXPECT_GT(c.time, 0);
    EXPECT_GT(c.utilization, 0);
    EXPECT_LE(c.utilization, 1.0);
    EXPECT_LE(c.computeTime, c.time);
    EXPECT_LE(c.memoryTime, c.time);
    EXPECT_GT(c.activeMacFraction, 0);
    EXPECT_LE(c.activeMacFraction, 1.0);
    EXPECT_FALSE(c.geometry.empty());
}

TEST_P(GemmProperty, AchievedFlopsConsistent)
{
    const auto &p = GetParam();
    hw::GemmShape shape{p.m, p.k, p.n, p.batch};
    auto c = runGemm(p.device, shape, DataType::BF16);
    EXPECT_NEAR(c.achievedFlops * c.time / shape.flops(), 1.0, 1e-9);
}

TEST_P(GemmProperty, MonotoneInK)
{
    const auto &p = GetParam();
    auto base = runGemm(p.device, {p.m, p.k, p.n, p.batch},
                        DataType::BF16);
    auto doubled = runGemm(p.device, {p.m, 2 * p.k, p.n, p.batch},
                           DataType::BF16);
    EXPECT_GE(doubled.time, base.time);
}

TEST_P(GemmProperty, BatchScalesSanely)
{
    const auto &p = GetParam();
    auto one = runGemm(p.device, {p.m, p.k, p.n, 1}, DataType::BF16);
    auto four = runGemm(p.device, {p.m, p.k, p.n, 4}, DataType::BF16);
    EXPECT_GE(four.time, one.time);
    // Launch overhead amortizes: never more than 4x + epsilon.
    EXPECT_LE(four.time, 4.05 * one.time);
}

TEST_P(GemmProperty, Fp32NeverFasterThanBf16)
{
    const auto &p = GetParam();
    auto bf16 = runGemm(p.device, {p.m, p.k, p.n, p.batch},
                        DataType::BF16);
    auto fp32 = runGemm(p.device, {p.m, p.k, p.n, p.batch},
                        DataType::FP32);
    EXPECT_GE(fp32.time, bf16.time);
}

TEST_P(GemmProperty, GaudiConfigurableNeverWorseThanFixed)
{
    const auto &p = GetParam();
    if (p.device != DeviceKind::Gaudi2)
        GTEST_SKIP() << "Gaudi-only invariant";
    hw::MmeModel mme;
    hw::GemmShape shape{p.m, p.k, p.n, p.batch};
    auto fixed = mme.gemmWithGeometry(shape, DataType::BF16,
                                      hw::MmeModel::fixedGeometry());
    auto best = mme.gemm(shape, DataType::BF16);
    // The selector tolerates 2% slack to prefer power-gated configs.
    EXPECT_LE(best.time, fixed.time * 1.021);
}

std::vector<GemmCase>
gemmCases()
{
    std::vector<GemmCase> cases;
    for (DeviceKind dev : {DeviceKind::Gaudi2, DeviceKind::A100}) {
        for (std::int64_t s : {64, 256, 1024, 4096}) {
            cases.push_back({dev, s, s, s, 1});          // Square.
            cases.push_back({dev, s, 4 * s, 16, 1});     // Irregular.
            cases.push_back({dev, 16, s, s, 1});         // Decode-like.
            cases.push_back({dev, s, s, s / 4, 8});      // Batched.
        }
        cases.push_back({dev, 1, 4096, 4096, 32});       // GEMV-ish.
        cases.push_back({dev, 8192, 8192, 8192, 1});     // Large.
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmProperty,
                         ::testing::ValuesIn(gemmCases()));

} // namespace
} // namespace vespera::kern
