/**
 * @file
 * Property-based tests of the HBM model across devices, access sizes,
 * and concurrency levels.
 */

#include <gtest/gtest.h>

#include "mem/hbm.h"

namespace vespera::mem {
namespace {

struct HbmCase
{
    DeviceKind device;
    Bytes accessSize;
    double concurrency;
};

void
PrintTo(const HbmCase &c, std::ostream *os)
{
    *os << deviceName(c.device) << " " << c.accessSize << "B c"
        << c.concurrency;
}

class HbmProperty : public ::testing::TestWithParam<HbmCase>
{
  protected:
    const hw::DeviceSpec &
    spec() const
    {
        return hw::deviceSpec(GetParam().device);
    }
};

TEST_P(HbmProperty, TransactionCoversPayload)
{
    HbmModel m(spec());
    const Bytes txn = m.transactionBytes(GetParam().accessSize);
    EXPECT_GE(txn, GetParam().accessSize);
    EXPECT_EQ(txn % m.minGranularity(), 0u);
    EXPECT_LT(txn - GetParam().accessSize, m.minGranularity());
}

TEST_P(HbmProperty, GranularityEfficiencyIsRatio)
{
    HbmModel m(spec());
    const Bytes size = GetParam().accessSize;
    EXPECT_DOUBLE_EQ(m.granularityEfficiency(size),
                     static_cast<double>(size) /
                         m.transactionBytes(size));
    EXPECT_LE(m.granularityEfficiency(size), 1.0);
}

TEST_P(HbmProperty, RandomAccessWellFormed)
{
    HbmModel m(spec());
    RandomAccessWorkload w;
    w.accessSize = GetParam().accessSize;
    w.numAccesses = 100000;
    w.concurrency = GetParam().concurrency;
    auto r = m.randomAccess(w);
    EXPECT_GT(r.time, 0);
    EXPECT_GT(r.bandwidthUtilization, 0);
    EXPECT_LE(r.bandwidthUtilization, 1.0);
    EXPECT_EQ(r.usefulBytes, w.accessSize * w.numAccesses);
    EXPECT_GE(r.transactionBytes, r.usefulBytes);
}

TEST_P(HbmProperty, MoreConcurrencyNeverSlower)
{
    HbmModel m(spec());
    RandomAccessWorkload w;
    w.accessSize = GetParam().accessSize;
    w.numAccesses = 100000;
    w.concurrency = GetParam().concurrency;
    auto base = m.randomAccess(w);
    w.concurrency *= 4;
    auto more = m.randomAccess(w);
    EXPECT_LE(more.time, base.time);
}

TEST_P(HbmProperty, RandomNeverBeatsStreaming)
{
    HbmModel m(spec());
    RandomAccessWorkload w;
    w.accessSize = GetParam().accessSize;
    w.numAccesses = 1 << 20;
    w.concurrency = GetParam().concurrency;
    auto r = m.randomAccess(w);
    const Seconds stream = m.streamTime(r.usefulBytes);
    EXPECT_GE(r.time, stream);
}

TEST_P(HbmProperty, TimeLinearInAccessCount)
{
    HbmModel m(spec());
    RandomAccessWorkload w;
    w.accessSize = GetParam().accessSize;
    w.concurrency = GetParam().concurrency;
    w.numAccesses = 1 << 18;
    const Seconds t1 = m.randomAccess(w).time;
    w.numAccesses = 1 << 19;
    const Seconds t2 = m.randomAccess(w).time;
    // Doubling accesses roughly doubles the steady-state time.
    EXPECT_GT(t2, 1.6 * t1 - 2e-6);
    EXPECT_LT(t2, 2.1 * t1);
}

std::vector<HbmCase>
hbmCases()
{
    std::vector<HbmCase> cases;
    for (DeviceKind dev : {DeviceKind::Gaudi2, DeviceKind::A100})
        for (Bytes size : {16, 64, 256, 1000, 2048})
            for (double conc : {1.0, 16.0, 256.0})
                cases.push_back({dev, size, conc});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, HbmProperty,
                         ::testing::ValuesIn(hbmCases()));

} // namespace
} // namespace vespera::mem
