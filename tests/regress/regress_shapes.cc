/**
 * @file
 * Paper-shape regression suite: the qualitative claims of the source
 * paper's figures, as recorded in EXPERIMENTS.md, encoded as ctest
 * assertions. These are *shape* invariants (who wins, where the
 * cliffs are, what is monotone) — not re-calibration of the absolute
 * numbers — so a model change that silently flips a figure's
 * conclusion fails tier-1 CI instead of shipping.
 *
 * Each test names the figure it guards and the EXPERIMENTS.md row it
 * encodes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "coll/collective.h"
#include "hw/device_spec.h"
#include "kern/gather_scatter.h"
#include "kern/gemm.h"
#include "kern/stream.h"
#include "models/llama.h"
#include "obs/counters.h"
#include "serve/engine.h"

namespace vespera {
namespace {

// ---------------------------------------------------------------------
// Figure 4 — "Gaudi-2 wins every shape" and the 8192^3 near-peak point.
// ---------------------------------------------------------------------

TEST(RegressFig4, GaudiWinsEveryGemmShape)
{
    std::vector<hw::GemmShape> shapes;
    for (std::int64_t s : {512, 1024, 2048, 4096, 8192, 16384})
        shapes.push_back({s, s, s});
    for (std::int64_t s : {2048, 4096, 8192, 16384, 32768})
        shapes.push_back({s, s, 16});

    for (const auto &shape : shapes) {
        auto g = kern::runGemm(DeviceKind::Gaudi2, shape,
                               DataType::BF16);
        auto a = kern::runGemm(DeviceKind::A100, shape, DataType::BF16);
        EXPECT_GT(g.achievedFlops, a.achievedFlops)
            << "A100 won at " << shape.m << "x" << shape.k << "x"
            << shape.n << " — Figure 4's headline claim is broken";
    }
}

TEST(RegressFig4, GaudiNearPeakAtEightK)
{
    const hw::GemmShape shape{8192, 8192, 8192};
    auto g = kern::runGemm(DeviceKind::Gaudi2, shape, DataType::BF16);
    const double util =
        g.achievedFlops /
        static_cast<double>(hw::gaudi2Spec().matrixPeakBf16);
    EXPECT_GE(util, 0.99) << "paper: 429 TFLOPS = 99.3% of peak";
    EXPECT_LE(util, 1.0);
}

TEST(RegressFig4, IrregularShapesAreMemoryBound)
{
    for (std::int64_t s : {4096, 8192, 16384}) {
        auto g = kern::runGemm(DeviceKind::Gaudi2, {s, s, 16},
                               DataType::BF16);
        EXPECT_TRUE(g.memoryBound())
            << "N=16 shapes must sit on the bandwidth slope (s=" << s
            << ")";
    }
}

// ---------------------------------------------------------------------
// Figure 8(a) — throughput collapses in proportion to the access
// granularity below the 256 B vector width, and saturates above it.
// Mirrors the bench's single-TPC, no-unroll configuration.
// ---------------------------------------------------------------------

double
streamGflopsAt(Bytes granularity)
{
    kern::StreamConfig c;
    c.op = kern::StreamOp::Add;
    c.numElements = 1ull << 20;
    c.accessBytes = granularity;
    c.unroll = 1;
    c.numTpcs = 1;
    return kern::runStreamGaudi(c).gflops;
}

TEST(RegressFig8, ProportionalCollapseBelow256B)
{
    // Sub-vector-width accesses waste the unused lanes of every
    // 256 B VLIW load, so throughput tracks the granularity linearly:
    // a 4x smaller granule costs ~4x the throughput.
    const double g4 = streamGflopsAt(4);
    const double g16 = streamGflopsAt(16);
    const double g64 = streamGflopsAt(64);
    const double g128 = streamGflopsAt(128);
    const double g256 = streamGflopsAt(256);
    EXPECT_GT(g16 / g4, 3.0) << "collapse too shallow at 4 B";
    EXPECT_LT(g16 / g4, 5.0) << "collapse too steep at 4 B";
    EXPECT_GT(g64 / g16, 3.0) << "collapse too shallow at 16 B";
    EXPECT_LT(g64 / g16, 5.0) << "collapse too steep at 16 B";
    EXPECT_GT(g256 / g128, 1.8)
        << "the last halving before the vector width must still "
           "roughly halve throughput";
}

TEST(RegressFig8, SaturatesAboveVectorWidth)
{
    // Above 256 B the lanes are full; gains taper and the curve is
    // flat by 1 KiB (EXPERIMENTS.md: "flat above").
    const double g256 = streamGflopsAt(256);
    const double g1024 = streamGflopsAt(1024);
    const double g2048 = streamGflopsAt(2048);
    EXPECT_LT(g1024 / g256, 2.5)
        << "gains above the vector width should taper, not keep "
           "scaling linearly";
    EXPECT_GE(g2048, g1024) << "throughput must not regress";
    EXPECT_LT(g2048 / g1024, 1.15) << "curve must be flat by 1 KiB";
}

// ---------------------------------------------------------------------
// Figure 9 — monotone rise with vector size; Gaudi cliff below 256 B;
// A100's decisive small-vector advantage.
// ---------------------------------------------------------------------

kern::GatherScatterConfig
gatherConfig(Bytes vector_bytes)
{
    kern::GatherScatterConfig c;
    // The bench's footprint rule: cap rows so the array stays large
    // relative to caches but the functional run stays fast.
    c.numVectors = std::min<std::uint64_t>(
        1ull << 17, (256ull << 20) / vector_bytes);
    c.vectorBytes = vector_bytes;
    c.accessFraction = 1.0;
    return c;
}

double
gatherUtilGaudi(Bytes vector_bytes)
{
    Rng rng(99);
    return kern::runGatherScatterGaudi(gatherConfig(vector_bytes), rng)
        .hbmUtilization;
}

TEST(RegressFig9, GaudiUtilizationMonotoneInVectorSize)
{
    double prev = 0;
    for (Bytes vec : {32u, 64u, 128u, 256u, 512u, 1024u}) {
        const double util = gatherUtilGaudi(vec);
        EXPECT_GE(util, prev)
            << "gather utilization fell when vectors grew to " << vec
            << " B";
        prev = util;
    }
}

TEST(RegressFig9, GaudiCliffBelow256B)
{
    // The paper's cliff: sub-vector-width gathers waste most of each
    // VLIW access. 128 B must achieve well under half of 256 B.
    EXPECT_LT(gatherUtilGaudi(128), 0.6 * gatherUtilGaudi(256));
}

TEST(RegressFig9, A100WinsDecisivelyOnSmallVectors)
{
    // Paper: <=128 B average 15% vs 36% (2.4x); ours 2.6x.
    for (Bytes vec : {64u, 128u}) {
        const double a =
            kern::runGatherScatterA100(gatherConfig(vec)).hbmUtilization;
        const double g = gatherUtilGaudi(vec);
        EXPECT_GT(a, 1.5 * g)
            << "A100's small-vector gather advantage shrank at " << vec
            << " B";
    }
}

// ---------------------------------------------------------------------
// Figure 10 — collectives: Gaudi-2 wins 5 of 6 at 8 devices (AllToAll
// the exception); A100 flat across device counts; Gaudi declines.
// ---------------------------------------------------------------------

constexpr Bytes kCollectiveSize = 32ull << 20;

const coll::CollectiveOp kAllOps[] = {
    coll::CollectiveOp::AllReduce,     coll::CollectiveOp::AllGather,
    coll::CollectiveOp::ReduceScatter, coll::CollectiveOp::AllToAll,
    coll::CollectiveOp::Reduce,       coll::CollectiveOp::Broadcast,
};

TEST(RegressFig10, GaudiWinsFiveOfSixAtEightDevices)
{
    auto hccl = coll::CollectiveModel::hcclOnGaudi2();
    auto nccl = coll::CollectiveModel::ncclOnDgxA100();
    int wins = 0;
    for (auto op : kAllOps) {
        const double g =
            hccl.run(op, kCollectiveSize, 8).busBandwidthUtilization;
        const double a =
            nccl.run(op, kCollectiveSize, 8).busBandwidthUtilization;
        if (op == coll::CollectiveOp::AllToAll) {
            EXPECT_GT(a, g) << "AllToAll must stay the A100 exception";
        } else {
            EXPECT_GT(g, a) << "Gaudi-2 lost " << collectiveName(op)
                            << " at 8 devices";
        }
        wins += g > a;
    }
    EXPECT_EQ(wins, 5);
}

TEST(RegressFig10, A100FlatWhereGaudiCollapses)
{
    // NVSwitch makes A100's per-device bandwidth nearly independent
    // of participant count (spread under 5 pp across 2/4/8 devices),
    // while Gaudi-2's point-to-point ring collapses at 2 devices.
    // The contrast IS the figure: flat vs steep.
    auto nccl = coll::CollectiveModel::ncclOnDgxA100();
    auto hccl = coll::CollectiveModel::hcclOnGaudi2();
    for (auto op : kAllOps) {
        double lo = 1.0, hi = 0.0;
        for (int n : {2, 4, 8}) {
            const double u =
                nccl.run(op, kCollectiveSize, n).busBandwidthUtilization;
            lo = std::min(lo, u);
            hi = std::max(hi, u);
        }
        EXPECT_LT(hi - lo, 0.05)
            << collectiveName(op) << " no longer flat on A100";

        const double g2 =
            hccl.run(op, kCollectiveSize, 2).busBandwidthUtilization;
        const double g8 =
            hccl.run(op, kCollectiveSize, 8).busBandwidthUtilization;
        EXPECT_GT(g8 - g2, 0.3)
            << collectiveName(op)
            << " lost Gaudi-2's device-count sensitivity";
    }
}

TEST(RegressFig10, GaudiDeclinesWithFewerDevices)
{
    // Fewer participants leave P2P links idle: 8 > 4 > 2, strictly.
    auto hccl = coll::CollectiveModel::hcclOnGaudi2();
    const auto op = coll::CollectiveOp::AllReduce;
    const double u8 =
        hccl.run(op, kCollectiveSize, 8).busBandwidthUtilization;
    const double u4 =
        hccl.run(op, kCollectiveSize, 4).busBandwidthUtilization;
    const double u2 =
        hccl.run(op, kCollectiveSize, 2).busBandwidthUtilization;
    EXPECT_GT(u8, u4);
    EXPECT_GT(u4, u2);
    EXPECT_GT(u8, 2.0 * u2)
        << "the decline should be roughly linear in idle links "
           "(78% -> 33% -> 11% in EXPERIMENTS.md)";
}

// ---------------------------------------------------------------------
// Figure 12 — 70B tensor-parallel serving: Gaudi-2 wins at every TP
// degree and the advantage grows with device count.
// ---------------------------------------------------------------------

double
meanSpeedup70B(int tp)
{
    models::LlamaModel model(models::LlamaConfig::llama31_70b());
    double sum = 0;
    int count = 0;
    for (int batch : {1, 16, 64}) {
        for (int out : {50, 100, 400}) {
            models::LlamaServingConfig s;
            s.batch = batch;
            s.inputLen = 100;
            s.outputLen = out;
            s.tpDevices = tp;
            sum += model.serve(DeviceKind::A100, s).totalTime /
                   model.serve(DeviceKind::Gaudi2, s).totalTime;
            count++;
        }
    }
    return sum / count;
}

TEST(RegressFig12, SeventyBSpeedupGrowsWithTpDegree)
{
    const double sp2 = meanSpeedup70B(2);
    const double sp4 = meanSpeedup70B(4);
    const double sp8 = meanSpeedup70B(8);
    EXPECT_GT(sp2, 1.0) << "Gaudi-2 must win at TP=2";
    EXPECT_GT(sp4, 1.0) << "Gaudi-2 must win at TP=4";
    EXPECT_GT(sp8, 1.0) << "Gaudi-2 must win at TP=8";
    // EXPERIMENTS.md: 1.22 / 1.22 / 1.37 — non-decreasing, with the
    // clear step at TP=8 (P2P all-reduce scales with participants).
    EXPECT_GE(sp4, sp2 - 0.02);
    EXPECT_GT(sp8, sp4);
}

// ---------------------------------------------------------------------
// Engine preemption accounting — the recompute-on-preemption policy
// regenerates tokens the user already received; they must not count
// twice toward throughput, and TTFT must not be re-stamped.
// ---------------------------------------------------------------------

TEST(RegressPreemption, RecomputedTokensNotDoubleCounted)
{
    models::LlamaModel model(models::LlamaConfig::llama31_8b());
    serve::EngineConfig cfg;
    cfg.device = DeviceKind::Gaudi2;
    cfg.maxDecodeBatch = 64;
    // A KV pool small enough that a burst of long requests overflows
    // it and forces preemptions.
    cfg.kvCacheBytes = 1ull << 30;
    cfg.maxModelLen = 4096;
    serve::Engine engine(model, cfg);

    auto &recomputed = obs::CounterRegistry::instance().counter(
        "engine.recomputed_tokens");
    const double recomputed_before = recomputed.value();

    const int n = 48, out_len = 256;
    auto m = engine.run(serve::makeFixedTrace(n, 1024, out_len));

    ASSERT_GT(m.preemptions, 0)
        << "the trace must actually overflow the KV pool for this "
           "regression to bite";
    EXPECT_GT(recomputed.value(), recomputed_before)
        << "preemptions imply recomputed tokens";
    EXPECT_EQ(m.completed, n);

    // throughput = generated_total / makespan. With the high-water
    // accounting each request contributes exactly outputLen tokens no
    // matter how often it was preempted and recomputed.
    const double generated = m.throughputTokensPerSec * m.makespan;
    EXPECT_NEAR(generated, static_cast<double>(n) * out_len,
                1e-6 * generated)
        << "recomputed tokens leaked into the throughput total";
}

} // namespace
} // namespace vespera
