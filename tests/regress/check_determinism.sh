#!/usr/bin/env bash
# Byte-identical-output check for the parallel runtime (docs/runtime.md):
# runs a bench binary at 1, 2, and 8 threads and requires the metrics
# JSON document AND the figure output on stdout to match byte-for-byte.
#
# The one permitted difference is the host-side pool telemetry in the
# stdout counter summary (runtime.tasks, runtime.steals, ...), which by
# design varies with thread count and is already excluded from the
# metrics JSON — those lines are filtered before comparing.
#
# Usage: check_determinism.sh <bench-binary> [extra args...]
set -euo pipefail

bench="$1"
shift || true

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

run_at() {
    local threads="$1"
    shift
    # Same --metrics path every run so the "wrote metrics to ..."
    # stdout line is identical; snapshot the JSON per thread count.
    "$bench" "$@" --threads="$threads" --metrics="$workdir/m.json" \
        2>/dev/null | grep -v '^runtime\.' > "$workdir/t$threads.out"
    mv "$workdir/m.json" "$workdir/t$threads.json"
}

run_at 1 "$@"
for threads in 2 8; do
    run_at "$threads" "$@"
    if ! cmp -s "$workdir/t1.json" "$workdir/t$threads.json"; then
        echo "FAIL: metrics JSON differs between --threads=1 and" \
             "--threads=$threads for $bench" >&2
        diff "$workdir/t1.json" "$workdir/t$threads.json" | head -40 >&2
        exit 1
    fi
    if ! cmp -s "$workdir/t1.out" "$workdir/t$threads.out"; then
        echo "FAIL: stdout differs between --threads=1 and" \
             "--threads=$threads for $bench" >&2
        diff "$workdir/t1.out" "$workdir/t$threads.out" | head -40 >&2
        exit 1
    fi
done
echo "OK: $bench output byte-identical at 1/2/8 threads"
