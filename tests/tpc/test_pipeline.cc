#include <gtest/gtest.h>

#include "tpc/context.h"
#include "tpc/pipeline.h"

namespace vespera::tpc {
namespace {

/// Builds an ADD-style loop trace: per iteration two streaming loads,
/// one vector add, one streaming store, with `unroll` independent
/// chains interleaved per loop body, `iters` loop bodies total.
Program
buildAddTrace(int iters, int unroll, Bytes vec_bytes = 256)
{
    Program p;
    MemberRange range{{0, 0, 0, 0, 0}, {1, 1, 1, 1, 1}};
    TpcContext ctx(p, range, vec_bytes);
    Tensor a({1 << 20}, DataType::BF16), b({1 << 20}, DataType::BF16);
    Tensor c({1 << 20}, DataType::BF16);
    std::int64_t elem = 0;
    const auto lanes = static_cast<std::int64_t>(vec_bytes / 2);
    for (int i = 0; i < iters; i++) {
        std::vector<Vec> xs, ys;
        for (int u = 0; u < unroll; u++) {
            Int5 coord{elem + u * lanes, 0, 0, 0, 0};
            xs.push_back(ctx.v_ld_tnsr(coord, a, vec_bytes));
            ys.push_back(ctx.v_ld_tnsr(coord, b, vec_bytes));
        }
        for (int u = 0; u < unroll; u++) {
            Vec sum = ctx.v_add(xs[u], ys[u]);
            Int5 coord{elem + u * lanes, 0, 0, 0, 0};
            ctx.v_st_tnsr(coord, c, sum);
        }
        elem += unroll * lanes;
    }
    return p;
}

TEST(Pipeline, EmptyProgramIsFree)
{
    Program p;
    PipelineResult r = evaluatePipeline(p, TpcParams::forGaudi2());
    EXPECT_DOUBLE_EQ(r.cycles, 0.0);
    EXPECT_DOUBLE_EQ(r.flops, 0.0);
}

TEST(Pipeline, DependentChainPaysLatency)
{
    // ld -> add -> st: issue-to-issue distance of the store must cover
    // the load-to-use plus the 4-cycle vector latency.
    Program p = buildAddTrace(1, 1);
    TpcParams params = TpcParams::forGaudi2();
    PipelineResult r = evaluatePipeline(p, params);
    EXPECT_GE(r.cycles, params.loadLatencyStream + params.vectorLatency);
}

// The paper's central TPC programming lesson (Section 2.2, Figure 8b):
// unrolling interleaves independent chains and raises throughput.
TEST(Pipeline, UnrollingImprovesThroughput)
{
    const int total_iters = 256;
    TpcParams params = TpcParams::forGaudi2();
    PipelineResult u1 = evaluatePipeline(buildAddTrace(total_iters, 1),
                                         params);
    PipelineResult u4 = evaluatePipeline(
        buildAddTrace(total_iters / 4, 4), params);
    // Same work...
    EXPECT_DOUBLE_EQ(u1.flops, u4.flops);
    // ...meaningfully less time.
    EXPECT_LT(u4.cycles, u1.cycles * 0.85);
}

TEST(Pipeline, UnrollGainsSaturate)
{
    TpcParams params = TpcParams::forGaudi2();
    PipelineResult u8 = evaluatePipeline(buildAddTrace(32, 8), params);
    PipelineResult u16 = evaluatePipeline(buildAddTrace(16, 16), params);
    EXPECT_DOUBLE_EQ(u8.flops, u16.flops);
    // Once the memory interface saturates, more unrolling barely helps.
    EXPECT_GT(u16.cycles, u8.cycles * 0.9);
}

// Figure 8(a): sub-256 B access granularity wastes bus bandwidth; the
// pipeline charges a full granule per access.
TEST(Pipeline, SubGranuleAccessWastesBandwidth)
{
    TpcParams params = TpcParams::forGaudi2();
    // 64 iterations of 256 B vs 256 iterations of 64 B: same payload.
    PipelineResult full = evaluatePipeline(
        buildAddTrace(64, 4, 256), params);
    PipelineResult quarter = evaluatePipeline(
        buildAddTrace(256, 4, 64), params);
    EXPECT_EQ(full.busBytes * 4, quarter.busBytes);
    EXPECT_GT(quarter.cycles, full.cycles * 2.0);
}

TEST(Pipeline, AboveGranuleAccessScalesSmoothly)
{
    TpcParams params = TpcParams::forGaudi2();
    PipelineResult b256 = evaluatePipeline(
        buildAddTrace(128, 4, 256), params);
    PipelineResult b1024 = evaluatePipeline(
        buildAddTrace(32, 4, 1024), params);
    // Same payload, same bus traffic, similar time (within 30%).
    EXPECT_EQ(b256.busBytes, b1024.busBytes);
    EXPECT_NEAR(b1024.cycles / b256.cycles, 1.0, 0.3);
}

TEST(Pipeline, SingleTpcAddThroughputInCalibratedBand)
{
    // Paper Figure 8: a single TPC saturates around 30 GFLOPS for ADD
    // (BF16, 256 B granularity, with unrolling).
    TpcParams params = TpcParams::forGaudi2();
    PipelineResult r = evaluatePipeline(buildAddTrace(512, 4), params);
    double gflops = r.flops / r.time / 1e9;
    EXPECT_GT(gflops, 15.0);
    EXPECT_LT(gflops, 60.0);
}

TEST(Pipeline, RandomLoadsTrackConcurrency)
{
    Program p;
    MemberRange range{{0, 0, 0, 0, 0}, {1, 1, 1, 1, 1}};
    TpcContext ctx(p, range);
    Tensor t({1 << 16}, DataType::FP32);
    for (int i = 0; i < 64; i++)
        (void)ctx.v_ld_tnsr({i * 64, 0, 0, 0, 0}, t, 256, Access::Random);
    PipelineResult r = evaluatePipeline(p, TpcParams::forGaudi2());
    EXPECT_EQ(r.randomTxns, 64u);
    EXPECT_GT(r.memConcurrency, 1.0);
}

TEST(Pipeline, IssueTraceStallsSumToResultStalls)
{
    TpcParams params = TpcParams::forGaudi2();
    for (int unroll : {1, 4, 8}) {
        Program p = buildAddTrace(64 / unroll, unroll);
        IssueTrace trace;
        PipelineResult r = evaluatePipeline(p, params, &trace);
        ASSERT_EQ(trace.instrs.size(), p.instrs().size());
        double sum = trace.drainStall;
        for (const IssuedInstr &rec : trace.instrs)
            sum += rec.stallCycles;
        EXPECT_NEAR(sum, r.stallCycles, 1e-9) << "unroll " << unroll;
    }
}

TEST(Pipeline, IssueTraceAttributesDependencyStalls)
{
    // Serial ld -> add -> st: the add's stall must be attributed to a
    // dependency on the load's value, naming that value.
    Program p;
    MemberRange range{{0, 0, 0, 0, 0}, {1, 1, 1, 1, 1}};
    TpcContext ctx(p, range);
    Tensor t({1 << 12}, DataType::FP32);
    Vec x = ctx.v_ld_tnsr({0, 0, 0, 0, 0}, t, 256);
    Vec y = ctx.v_add(x, x);
    ctx.v_st_tnsr({0, 0, 0, 0, 0}, t, y);
    IssueTrace trace;
    evaluatePipeline(p, TpcParams::forGaudi2(), &trace);
    ASSERT_EQ(trace.instrs.size(), 3u);
    EXPECT_EQ(trace.instrs[1].cause, StallCause::Dependency);
    EXPECT_EQ(trace.instrs[1].criticalSrc, x.id);
    EXPECT_GT(trace.instrs[1].stallCycles, 0.0);
    EXPECT_EQ(trace.instrs[0].cause, StallCause::None);
}

TEST(Pipeline, TraceArgumentDoesNotChangeTiming)
{
    TpcParams params = TpcParams::forGaudi2();
    Program p = buildAddTrace(48, 4);
    IssueTrace trace;
    PipelineResult with = evaluatePipeline(p, params, &trace);
    PipelineResult without = evaluatePipeline(p, params);
    EXPECT_DOUBLE_EQ(with.cycles, without.cycles);
    EXPECT_DOUBLE_EQ(with.stallCycles, without.stallCycles);
    EXPECT_EQ(with.busBytes, without.busBytes);
}

TEST(Pipeline, LocalAccessesAvoidGlobalBus)
{
    Program p;
    MemberRange range{{0, 0, 0, 0, 0}, {1, 1, 1, 1, 1}};
    TpcContext ctx(p, range);
    Tensor t({64}, DataType::FP32);
    Vec v = ctx.v_ld_tnsr({0, 0, 0, 0, 0}, t);
    for (int i = 0; i < 16; i++) {
        ctx.v_st_local(0, v);
        v = ctx.v_ld_local(0, 64);
    }
    PipelineResult r = evaluatePipeline(p, TpcParams::forGaudi2());
    EXPECT_EQ(r.busBytes, 256u); // Only the initial global load.
}

} // namespace
} // namespace vespera::tpc
