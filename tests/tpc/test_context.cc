#include <gtest/gtest.h>

#include "tpc/context.h"

namespace vespera::tpc {
namespace {

class ContextTest : public ::testing::Test
{
  protected:
    ContextTest()
        : range_{{0, 0, 0, 0, 0}, {64, 1, 1, 1, 1}},
          ctx_(program_, range_)
    {
    }

    Program program_;
    MemberRange range_;
    TpcContext ctx_;
};

TEST_F(ContextTest, IndexSpaceQueries)
{
    EXPECT_EQ(ctx_.memberStart(0), 0);
    EXPECT_EQ(ctx_.memberEnd(0), 64);
    EXPECT_EQ(ctx_.memberEnd(1), 1);
}

TEST_F(ContextTest, LoadReadsTensorValues)
{
    Tensor t({64}, DataType::FP32);
    t.fill([](std::int64_t i) { return static_cast<float>(i); });
    Vec v = ctx_.v_ld_tnsr({0, 0, 0, 0, 0}, t);
    // Default vector width 256 B = 64 fp32 lanes.
    ASSERT_EQ(v.laneCount(), 64);
    EXPECT_FLOAT_EQ(v.lanes[0], 0.0f);
    EXPECT_FLOAT_EQ(v.lanes[63], 63.0f);
}

TEST_F(ContextTest, LoadPastEndZeroFills)
{
    Tensor t({40}, DataType::FP32);
    t.fill([](std::int64_t) { return 1.0f; });
    Vec v = ctx_.v_ld_tnsr({0, 0, 0, 0, 0}, t);
    EXPECT_FLOAT_EQ(v.lanes[39], 1.0f);
    EXPECT_FLOAT_EQ(v.lanes[40], 0.0f);
}

TEST_F(ContextTest, AddComputesElementwise)
{
    Tensor a({64}, DataType::FP32), b({64}, DataType::FP32);
    a.fill([](std::int64_t i) { return static_cast<float>(i); });
    b.fill([](std::int64_t i) { return static_cast<float>(2 * i); });
    Vec va = ctx_.v_ld_tnsr({0, 0, 0, 0, 0}, a);
    Vec vb = ctx_.v_ld_tnsr({0, 0, 0, 0, 0}, b);
    Vec sum = ctx_.v_add(va, vb);
    EXPECT_FLOAT_EQ(sum.lanes[10], 30.0f);
}

TEST_F(ContextTest, MacComputesFusedMultiplyAdd)
{
    Tensor a({64}, DataType::FP32), b({64}, DataType::FP32);
    a.fill([](std::int64_t) { return 3.0f; });
    b.fill([](std::int64_t) { return 4.0f; });
    Vec va = ctx_.v_ld_tnsr({0, 0, 0, 0, 0}, a);
    Vec vb = ctx_.v_ld_tnsr({0, 0, 0, 0, 0}, b);
    Vec acc = ctx_.v_zero(64);
    Vec r = ctx_.v_mac(va, vb, acc);
    EXPECT_FLOAT_EQ(r.lanes[0], 12.0f);
    r = ctx_.v_mac(va, vb, r);
    EXPECT_FLOAT_EQ(r.lanes[0], 24.0f);
}

TEST_F(ContextTest, ScalarOps)
{
    Tensor a({64}, DataType::FP32);
    a.fill([](std::int64_t) { return 2.0f; });
    Vec va = ctx_.v_ld_tnsr({0, 0, 0, 0, 0}, a);
    Vec scaled = ctx_.v_mul_s(va, 2.5f);
    EXPECT_FLOAT_EQ(scaled.lanes[5], 5.0f);
    Vec fma = ctx_.v_mac_s(va, 10.0f, scaled);
    EXPECT_FLOAT_EQ(fma.lanes[5], 25.0f);
}

TEST_F(ContextTest, StoreWritesBack)
{
    Tensor a({64}, DataType::FP32), out({64}, DataType::FP32);
    a.fill([](std::int64_t i) { return static_cast<float>(i + 1); });
    Vec v = ctx_.v_ld_tnsr({0, 0, 0, 0, 0}, a);
    ctx_.v_st_tnsr({0, 0, 0, 0, 0}, out, v);
    EXPECT_FLOAT_EQ(out.at(std::int64_t{7}), 8.0f);
}

TEST_F(ContextTest, ScalarLoadReturnsValue)
{
    Tensor idx({4}, DataType::FP32);
    idx.at(std::int64_t{2}) = 17.0f;
    EXPECT_FLOAT_EQ(ctx_.s_ld({2, 0, 0, 0, 0}, idx), 17.0f);
}

TEST_F(ContextTest, LocalMemoryRoundTrip)
{
    Tensor a({64}, DataType::FP32);
    a.fill([](std::int64_t i) { return static_cast<float>(i); });
    Vec v = ctx_.v_ld_tnsr({0, 0, 0, 0, 0}, a);
    ctx_.v_st_local(128, v);
    Vec back = ctx_.v_ld_local(128, 64);
    EXPECT_FLOAT_EQ(back.lanes[33], 33.0f);
    EXPECT_EQ(ctx_.localHighWater(), (128 + 64) * 4u);
}

TEST_F(ContextTest, TraceRecordsFlopsAndBytes)
{
    Tensor a({64}, DataType::FP32), b({64}, DataType::FP32);
    Vec va = ctx_.v_ld_tnsr({0, 0, 0, 0, 0}, a);
    Vec vb = ctx_.v_ld_tnsr({0, 0, 0, 0, 0}, b);
    Vec s = ctx_.v_add(va, vb);
    ctx_.v_st_tnsr({0, 0, 0, 0, 0}, a, s);
    EXPECT_DOUBLE_EQ(program_.flops(), 64.0);
    EXPECT_EQ(program_.streamBytes(), 3u * 256);
    EXPECT_EQ(program_.randomBytes(), 0u);
}

TEST_F(ContextTest, RandomAccessTracked)
{
    Tensor a({1024}, DataType::FP32);
    (void)ctx_.v_ld_tnsr({0, 0, 0, 0, 0}, a, 256, Access::Random);
    EXPECT_EQ(program_.randomBytes(), 256u);
    EXPECT_EQ(program_.randomTransactions(256), 1u);
}

TEST_F(ContextTest, SubGranuleLoadRoundsUpOnBus)
{
    Tensor a({1024}, DataType::FP32);
    (void)ctx_.v_ld_tnsr({0, 0, 0, 0, 0}, a, 64, Access::Random);
    EXPECT_EQ(program_.randomBytes(), 64u);       // Useful payload.
    EXPECT_EQ(program_.busBytes(256), 256u);      // Bus traffic.
}

TEST_F(ContextTest, InstructionsCarryIntrinsicLabels)
{
    Tensor a({64}, DataType::FP32);
    Vec v = ctx_.v_ld_tnsr({0, 0, 0, 0, 0}, a);
    Vec s = ctx_.v_add(v, v);
    ctx_.v_st_tnsr({0, 0, 0, 0, 0}, a, s);
    ASSERT_EQ(program_.instrs().size(), 3u);
    EXPECT_EQ(program_.label(program_.instrs()[0].opLabel),
              "v_ld_tnsr");
    EXPECT_EQ(program_.label(program_.instrs()[1].opLabel), "v_add");
    EXPECT_EQ(program_.label(program_.instrs()[2].opLabel),
              "v_st_tnsr");
}

TEST_F(ContextTest, PhaseLabelOverridesAndReverts)
{
    Tensor a({64}, DataType::FP32);
    ctx_.setOpLabel("phase1:reduce");
    Vec v = ctx_.v_ld_tnsr({0, 0, 0, 0, 0}, a);
    Vec s = ctx_.v_add(v, v);
    ctx_.setOpLabel("");
    ctx_.v_st_tnsr({0, 0, 0, 0, 0}, a, s);
    EXPECT_EQ(program_.label(program_.instrs()[0].opLabel),
              "phase1:reduce");
    EXPECT_EQ(program_.label(program_.instrs()[1].opLabel),
              "phase1:reduce");
    EXPECT_EQ(program_.label(program_.instrs()[2].opLabel),
              "v_st_tnsr");
}

TEST_F(ContextTest, MemoryProvenanceRecorded)
{
    Tensor a({1024}, DataType::FP32), b({1024}, DataType::FP32);
    (void)ctx_.v_ld_tnsr({64, 0, 0, 0, 0}, a, 256);
    (void)ctx_.v_ld_tnsr({0, 0, 0, 0, 0}, b, 256);
    Vec v = ctx_.v_ld_tnsr({0, 0, 0, 0, 0}, a, 256);
    ctx_.v_st_local(32, v);
    const auto &is = program_.instrs();
    ASSERT_EQ(is.size(), 4u);
    // Byte offsets within the owning tensor's stream.
    EXPECT_EQ(is[0].memOffset, 64 * 4);
    EXPECT_EQ(is[1].memOffset, 0);
    // Same tensor -> same stream id; different tensors differ.
    EXPECT_EQ(is[0].memStream, is[2].memStream);
    EXPECT_NE(is[0].memStream, is[1].memStream);
    EXPECT_NE(is[0].memStream, 0u);
    // Local memory uses the reserved stream, offsets in bytes.
    EXPECT_EQ(is[3].memStream, 1u);
    EXPECT_EQ(is[3].memOffset, 32 * 4);
}

TEST_F(ContextTest, LocalMemoryOverflowPanics)
{
    Tensor a({64}, DataType::FP32);
    Vec v = ctx_.v_ld_tnsr({0, 0, 0, 0, 0}, a);
    EXPECT_DEATH(ctx_.v_st_local(80 * 1024 / 4 - 10, v),
                 "local memory overflow");
}

TEST_F(ContextTest, LaneMismatchPanics)
{
    Tensor a({64}, DataType::FP32);
    Vec v64 = ctx_.v_ld_tnsr({0, 0, 0, 0, 0}, a, 256);
    Vec v32 = ctx_.v_ld_tnsr({0, 0, 0, 0, 0}, a, 128);
    EXPECT_DEATH((void)ctx_.v_add(v64, v32), "lane mismatch");
}

} // namespace
} // namespace vespera::tpc
