#include <gtest/gtest.h>

#include "tpc/dispatcher.h"

namespace vespera::tpc {
namespace {

/// The paper's Figure 2(c) kernel: element-wise vector add over an
/// index space of (depth, width) with the depth step at 256 B.
Kernel
makeAddKernel(const Tensor &a, const Tensor &b, Tensor &c,
              std::int64_t depth_elems, int unroll = 4)
{
    return [&a, &b, &c, depth_elems, unroll](TpcContext &ctx) {
        const auto lanes =
            static_cast<std::int64_t>(ctx.defaultVectorBytes() /
                                      dtypeSize(a.dtype()));
        for (std::int64_t w = ctx.memberStart(1); w < ctx.memberEnd(1);
             w++) {
            for (std::int64_t d = 0; d < depth_elems;
                 d += lanes * unroll) {
                // Manually unrolled body (paper best practice #2).
                std::vector<Vec> xs, ys;
                for (int u = 0; u < unroll; u++) {
                    if (d + u * lanes >= depth_elems)
                        break;
                    Int5 coord{d + u * lanes, w, 0, 0, 0};
                    xs.push_back(ctx.v_ld_tnsr(coord, a));
                    ys.push_back(ctx.v_ld_tnsr(coord, b));
                }
                for (std::size_t u = 0; u < xs.size(); u++) {
                    Vec sum = ctx.v_add(xs[u], ys[u]);
                    Int5 coord{d + static_cast<std::int64_t>(u) * lanes,
                               w, 0, 0, 0};
                    ctx.v_st_tnsr(coord, c, sum);
                }
            }
        }
    };
}

class DispatcherTest : public ::testing::Test
{
  protected:
    static constexpr std::int64_t depth_ = 4096; // Elements per column.
    static constexpr std::int64_t width_ = 48;   // Index-space width.

    DispatcherTest()
        : a_({depth_, width_}, DataType::FP32),
          b_({depth_, width_}, DataType::FP32),
          c_({depth_, width_}, DataType::FP32)
    {
        a_.fill([](std::int64_t i) { return static_cast<float>(i % 97); });
        b_.fill([](std::int64_t i) { return static_cast<float>(i % 31); });
    }

    TpcDispatcher dispatcher_;
    Tensor a_, b_, c_;
};

TEST_F(DispatcherTest, FunctionalResultCorrect)
{
    IndexSpace space;
    space.size = {1, width_, 1, 1, 1};
    LaunchParams params;
    dispatcher_.launch(makeAddKernel(a_, b_, c_, depth_), space, params);
    for (std::int64_t i = 0; i < a_.numElements(); i++) {
        ASSERT_FLOAT_EQ(c_.at(i), a_.at(i) + b_.at(i)) << "elem " << i;
    }
}

TEST_F(DispatcherTest, AllTpcsParticipate)
{
    IndexSpace space;
    space.size = {1, width_, 1, 1, 1};
    LaunchParams params;
    params.numTpcs = 24;
    auto r = dispatcher_.launch(makeAddKernel(a_, b_, c_, depth_), space,
                                params);
    EXPECT_EQ(r.activeTpcs, 24);
}

TEST_F(DispatcherTest, FewerMembersThanTpcs)
{
    IndexSpace space;
    space.size = {1, 5, 1, 1, 1};
    LaunchParams params;
    params.numTpcs = 24;
    auto r = dispatcher_.launch(makeAddKernel(a_, b_, c_, depth_), space,
                                params);
    EXPECT_EQ(r.activeTpcs, 5);
}

// Weak scaling (Figure 8c): throughput scales with TPC count until the
// chip HBM bandwidth bound takes over.
TEST_F(DispatcherTest, WeakScalingSaturates)
{
    double one_tpc, twelve_tpc, twentyfour_tpc;

    // Weak scaling: each TPC gets one column of 256 Ki elements.
    const std::int64_t col = 1 << 18;
    auto run = [&](int n) {
        Tensor a({col, n}, DataType::FP32);
        Tensor b({col, n}, DataType::FP32);
        Tensor c({col, n}, DataType::FP32);
        IndexSpace space;
        space.size = {1, n, 1, 1, 1};
        LaunchParams p;
        p.numTpcs = n;
        auto r = dispatcher_.launch(makeAddKernel(a, b, c, col), space,
                                    p);
        return r.achievedFlopsPerSec;
    };

    one_tpc = run(1);
    twelve_tpc = run(12);
    twentyfour_tpc = run(24);

    // Near-linear early on.
    EXPECT_GT(twelve_tpc, one_tpc * 6);
    // Saturating by 24 (well below 24x).
    EXPECT_LT(twentyfour_tpc, one_tpc * 20);
}

TEST_F(DispatcherTest, ReportsBandwidthUtilization)
{
    IndexSpace space;
    space.size = {1, width_, 1, 1, 1};
    auto r = dispatcher_.launch(makeAddKernel(a_, b_, c_, depth_), space,
                                LaunchParams{});
    EXPECT_GT(r.hbmUtilization, 0.0);
    EXPECT_LE(r.hbmUtilization, 1.0);
    EXPECT_EQ(r.usefulBytes, 3u * a_.bytes());
}

TEST_F(DispatcherTest, TimeIncludesLaunchOverhead)
{
    IndexSpace space;
    space.size = {1, 1, 1, 1, 1};
    Tensor a({64}, DataType::FP32), b({64}, DataType::FP32);
    Tensor c({64}, DataType::FP32);
    auto r = dispatcher_.launch(makeAddKernel(a, b, c, 64), space,
                                LaunchParams{});
    EXPECT_GE(r.time, hw::gaudi2Spec().launchOverhead);
}

TEST_F(DispatcherTest, RejectsBadConfig)
{
    IndexSpace space;
    space.size = {1, 4, 1, 1, 1};
    LaunchParams params;
    params.numTpcs = 99;
    EXPECT_DEATH(dispatcher_.launch(makeAddKernel(a_, b_, c_, depth_),
                                    space, params),
                 "numTpcs");
}

} // namespace
} // namespace vespera::tpc
