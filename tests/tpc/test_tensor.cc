#include <gtest/gtest.h>

#include "tpc/tensor.h"

namespace vespera::tpc {
namespace {

TEST(Tensor, ShapeAndSize)
{
    Tensor t({64, 3}, DataType::FP32);
    EXPECT_EQ(t.rank(), 2);
    EXPECT_EQ(t.dim(0), 64);
    EXPECT_EQ(t.dim(1), 3);
    EXPECT_EQ(t.numElements(), 192);
    EXPECT_EQ(t.bytes(), 192u * 4);
}

TEST(Tensor, Bf16Bytes)
{
    Tensor t({100}, DataType::BF16);
    EXPECT_EQ(t.bytes(), 200u);
}

TEST(Tensor, Dim0Fastest)
{
    Tensor t({4, 3}, DataType::FP32);
    // flat = c0 + 4*c1.
    EXPECT_EQ(t.flatten({0, 0, 0, 0, 0}), 0);
    EXPECT_EQ(t.flatten({1, 0, 0, 0, 0}), 1);
    EXPECT_EQ(t.flatten({0, 1, 0, 0, 0}), 4);
    EXPECT_EQ(t.flatten({3, 2, 0, 0, 0}), 11);
}

TEST(Tensor, FillAndRead)
{
    Tensor t({8}, DataType::FP32);
    t.fill([](std::int64_t i) { return static_cast<float>(i * i); });
    EXPECT_FLOAT_EQ(t.at(std::int64_t{3}), 9.0f);
    EXPECT_FLOAT_EQ(t.at(Int5{7, 0, 0, 0, 0}), 49.0f);
}

TEST(Tensor, WriteThroughCoord)
{
    Tensor t({2, 2}, DataType::FP32);
    t.at(Int5{1, 1, 0, 0, 0}) = 5.0f;
    EXPECT_FLOAT_EQ(t.at(std::int64_t{3}), 5.0f);
}

TEST(Tensor, ZeroInitialized)
{
    Tensor t({16}, DataType::BF16);
    for (std::int64_t i = 0; i < 16; i++)
        EXPECT_FLOAT_EQ(t.at(i), 0.0f);
}

TEST(TensorDeath, OutOfBounds)
{
    Tensor t({4}, DataType::FP32);
    EXPECT_DEATH((void)t.at(std::int64_t{4}), "out of bounds");
    EXPECT_DEATH((void)t.flatten({0, 1, 0, 0, 0}), "beyond tensor rank");
}

} // namespace
} // namespace vespera::tpc
