#include <gtest/gtest.h>

#include "cuda/simt.h"

namespace vespera::cuda {
namespace {

class SimtTest : public ::testing::Test
{
  protected:
    SimtModel model_;
};

TEST_F(SimtTest, StreamAddIsMemoryBound)
{
    StreamKernelDesc add;
    add.numElements = 24 << 20;
    add.bytesPerElement = 6; // Two BF16 reads, one write.
    add.flopsPerElement = 1;
    add.usesFma = false;
    KernelCost c = model_.streamKernel(add, DataType::BF16);
    EXPECT_TRUE(c.memoryBound());
    EXPECT_GT(c.hbmUtilization, 0.7);
}

TEST_F(SimtTest, HighIntensityIsComputeBound)
{
    StreamKernelDesc k;
    k.numElements = 24 << 20;
    k.bytesPerElement = 6;
    k.flopsPerElement = 1024;
    k.usesFma = true;
    KernelCost c = model_.streamKernel(k, DataType::BF16);
    EXPECT_FALSE(c.memoryBound());
    // Saturates near peak (paper Fig 8f: ~98% for TRIAD).
    EXPECT_GT(c.achievedFlopsPerSec,
              0.9 * hw::a100Spec().vectorPeakBf16);
}

// Figure 8(d,e): non-FMA kernels (ADD/SCALE) top out at 50% of the
// FMA-quoted vector peak on both devices.
TEST_F(SimtTest, NonFmaHalvesComputeCeiling)
{
    StreamKernelDesc k;
    k.numElements = 1 << 20;
    k.bytesPerElement = 6;
    k.flopsPerElement = 4096;
    k.usesFma = false;
    KernelCost c = model_.streamKernel(k, DataType::BF16);
    double util = c.achievedFlopsPerSec / hw::a100Spec().vectorPeakBf16;
    EXPECT_GT(util, 0.45);
    EXPECT_LT(util, 0.51);
}

TEST_F(SimtTest, GatherUtilizationByVectorSize)
{
    KernelCost big = model_.gatherScatter(512, 1 << 20, false);
    KernelCost small = model_.gatherScatter(16, 1 << 20, false);
    EXPECT_GT(big.hbmUtilization, small.hbmUtilization);
    EXPECT_GT(big.hbmUtilization, 0.5);
}

TEST_F(SimtTest, ScatterSlowerThanGatherSubSector)
{
    KernelCost gather = model_.gatherScatter(16, 1 << 20, false);
    KernelCost scatter = model_.gatherScatter(16, 1 << 20, true);
    EXPECT_GT(scatter.time, gather.time);
}

TEST_F(SimtTest, CoalescedAccessIsFullyEfficient)
{
    // 32 lanes x 4 B contiguous = 128 B = 4 sectors, 100% useful.
    WarpAccessPattern p{4, 4, 32};
    auto info = model_.coalescing(p);
    EXPECT_EQ(info.sectorsPerWarp, 4);
    EXPECT_DOUBLE_EQ(info.efficiency, 1.0);
}

TEST_F(SimtTest, StridedAccessShatters)
{
    // 4 B elements, 128 B apart: one sector per lane, 4/32 useful.
    WarpAccessPattern p{4, 128, 32};
    auto info = model_.coalescing(p);
    EXPECT_EQ(info.sectorsPerWarp, 32);
    EXPECT_NEAR(info.efficiency, 4.0 / 32, 1e-12);
}

TEST_F(SimtTest, ModerateStridePartiallyCoalesces)
{
    // 4 B elements, 8 B apart: two lanes share each 32 B sector.
    WarpAccessPattern p{4, 8, 32};
    auto info = model_.coalescing(p);
    EXPECT_EQ(info.sectorsPerWarp, 8);
    EXPECT_DOUBLE_EQ(info.efficiency, 0.5);
}

TEST_F(SimtTest, WideElementsSpanSectors)
{
    // 64 B elements back to back: 2 sectors each, fully useful.
    WarpAccessPattern p{64, 64, 32};
    auto info = model_.coalescing(p);
    EXPECT_EQ(info.sectorsPerWarp, 64);
    EXPECT_DOUBLE_EQ(info.efficiency, 1.0);
}

TEST_F(SimtTest, StridedSweepCostTracksEfficiency)
{
    const std::uint64_t n = 1 << 22;
    auto coalesced = model_.stridedSweep({4, 4, 32}, n);
    auto shattered = model_.stridedSweep({4, 128, 32}, n);
    EXPECT_NEAR(shattered.memoryTime / coalesced.memoryTime, 8.0, 0.01);
    EXPECT_GT(coalesced.hbmUtilization,
              5 * shattered.hbmUtilization);
}

TEST_F(SimtTest, Fp32HalvesVectorPeak)
{
    StreamKernelDesc k;
    k.numElements = 1 << 20;
    k.bytesPerElement = 12;
    k.flopsPerElement = 4096;
    k.usesFma = true;
    KernelCost bf16 = model_.streamKernel(k, DataType::BF16);
    KernelCost fp32 = model_.streamKernel(k, DataType::FP32);
    EXPECT_NEAR(fp32.computeTime / bf16.computeTime, 2.0, 0.01);
}

// Degenerate geometry must die loudly, not produce a zero-time (or
// NaN-utilization) cost that silently poisons a roofline downstream.
TEST_F(SimtTest, EmptyStreamKernelDies)
{
    StreamKernelDesc k;
    k.numElements = 0;
    EXPECT_DEATH((void)model_.streamKernel(k, DataType::BF16),
                 "empty stream kernel");
}

TEST_F(SimtTest, NegativeIntensityDies)
{
    StreamKernelDesc k;
    k.numElements = 1 << 10;
    k.bytesPerElement = -4;
    EXPECT_DEATH((void)model_.streamKernel(k, DataType::BF16),
                 "negative stream-kernel intensity");
    k.bytesPerElement = 4;
    k.flopsPerElement = -1;
    EXPECT_DEATH((void)model_.streamKernel(k, DataType::BF16),
                 "negative stream-kernel intensity");
}

TEST_F(SimtTest, EmptySweepDies)
{
    EXPECT_DEATH((void)model_.stridedSweep({4, 4, 32}, 0),
                 "empty sweep");
}

TEST_F(SimtTest, ZeroLaneWarpPatternDies)
{
    EXPECT_DEATH((void)model_.coalescing({4, 4, 0}),
                 "bad warp pattern");
    EXPECT_DEATH((void)model_.coalescing({0, 4, 32}),
                 "bad warp pattern");
}

TEST_F(SimtTest, EmptyGatherScatterDies)
{
    EXPECT_DEATH((void)model_.gatherScatter(0, 1 << 10, false),
                 "empty gather/scatter");
    EXPECT_DEATH((void)model_.gatherScatter(16, 0, false),
                 "empty gather/scatter");
}

TEST_F(SimtTest, ZeroOccupancyGatherDies)
{
    EXPECT_DEATH((void)model_.gatherScatter(16, 1 << 10, false, 0.0),
                 "gather/scatter needs occupancy");
}

} // namespace
} // namespace vespera::cuda
