#include <gtest/gtest.h>

#include "hw/mme.h"
#include "mem/hbm.h"

namespace vespera::hw {
namespace {

TEST(Gaudi3, ProjectedSpecScalesGaudi2)
{
    const auto &g2 = gaudi2Spec();
    const auto &g3 = gaudi3Spec();
    // Same architecture family, scaled up.
    EXPECT_EQ(g3.kind, DeviceKind::Gaudi2);
    EXPECT_GT(g3.matrixPeakBf16, 4 * g2.matrixPeakBf16);
    EXPECT_GT(g3.hbmBandwidth, g2.hbmBandwidth);
    EXPECT_EQ(g3.minAccessGranularity, g2.minAccessGranularity);
    EXPECT_EQ(g3.numVectorCores, 64);
}

TEST(Gaudi3, WorksWithMmeModel)
{
    MmeModel mme(gaudi3Spec());
    auto c = mme.gemm({8192, 8192, 8192}, DataType::BF16);
    EXPECT_GT(c.utilization, 0.9);
    EXPECT_GT(c.achievedFlops, gaudi2Spec().matrixPeakBf16);
}

TEST(Gaudi3, WorksWithHbmModel)
{
    mem::HbmModel m(gaudi3Spec());
    EXPECT_GT(m.streamBandwidth(),
              mem::HbmModel(gaudi2Spec()).streamBandwidth());
}

TEST(AccessGranularity, WhatIfCopiesSpec)
{
    DeviceSpec g = withAccessGranularity(gaudi2Spec(), 32);
    EXPECT_EQ(g.minAccessGranularity, 32u);
    EXPECT_EQ(g.hbmBandwidth, gaudi2Spec().hbmBandwidth);
    // Original untouched.
    EXPECT_EQ(gaudi2Spec().minAccessGranularity, 256u);
}

TEST(AccessGranularity, FinerGranuleImprovesSmallGathers)
{
    DeviceSpec fine_spec = withAccessGranularity(gaudi2Spec(), 32);
    mem::HbmModel coarse(gaudi2Spec());
    mem::HbmModel fine(fine_spec);
    mem::RandomAccessWorkload w;
    w.accessSize = 64;
    w.numAccesses = 1 << 20;
    w.concurrency = 256;
    EXPECT_GT(fine.randomAccess(w).bandwidthUtilization,
              1.5 * coarse.randomAccess(w).bandwidthUtilization);
}

TEST(AccessGranularity, NoEffectOnLargeTransfers)
{
    DeviceSpec fine_spec = withAccessGranularity(gaudi2Spec(), 32);
    mem::HbmModel coarse(gaudi2Spec());
    mem::HbmModel fine(fine_spec);
    mem::RandomAccessWorkload w;
    w.accessSize = 2048;
    w.numAccesses = 1 << 18;
    w.concurrency = 256;
    EXPECT_NEAR(fine.randomAccess(w).bandwidthUtilization /
                    coarse.randomAccess(w).bandwidthUtilization,
                1.0, 0.02);
}

TEST(AccessGranularityDeath, RejectsNonPowerOfTwo)
{
    EXPECT_DEATH((void)withAccessGranularity(gaudi2Spec(), 100),
                 "power of two");
}

} // namespace
} // namespace vespera::hw
