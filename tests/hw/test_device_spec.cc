#include <gtest/gtest.h>

#include "hw/device_spec.h"

namespace vespera::hw {
namespace {

// Table 1 of the paper: the spec ratios the analysis leans on.
TEST(DeviceSpec, Table1Ratios)
{
    const auto &g = gaudi2Spec();
    const auto &a = a100Spec();

    EXPECT_NEAR(g.matrixPeakBf16 / a.matrixPeakBf16, 1.4, 0.05);
    EXPECT_NEAR(a.vectorPeakBf16 / g.vectorPeakBf16, 3.5, 0.1);
    EXPECT_NEAR(g.hbmBandwidth / a.hbmBandwidth, 1.2, 0.05);
    EXPECT_NEAR(static_cast<double>(g.hbmCapacity) / a.hbmCapacity, 1.2,
                0.01);
    EXPECT_NEAR(static_cast<double>(g.sramCapacity) / a.sramCapacity, 1.2,
                0.01);
    EXPECT_DOUBLE_EQ(g.commBandwidthBidir, a.commBandwidthBidir);
    EXPECT_NEAR(g.tdp / a.tdp, 1.5, 0.01);
}

TEST(DeviceSpec, AccessGranularity)
{
    EXPECT_EQ(gaudi2Spec().minAccessGranularity, 256u);
    EXPECT_EQ(a100Spec().minAccessGranularity, 32u);
}

TEST(DeviceSpec, VectorClockConsistentWithPeak)
{
    for (const auto *s : {&gaudi2Spec(), &a100Spec()}) {
        const double lanes = s->vectorLanes(DataType::BF16);
        const double peak =
            s->numVectorCores * lanes * 2.0 * s->vectorClock;
        EXPECT_NEAR(peak / s->vectorPeakBf16, 1.0, 1e-9);
    }
}

TEST(DeviceSpec, Fp32HalfRate)
{
    const auto &g = gaudi2Spec();
    EXPECT_DOUBLE_EQ(g.matrixPeak(DataType::FP32),
                     g.matrixPeakBf16 * g.fp32MatrixRatio);
    EXPECT_DOUBLE_EQ(g.vectorPeak(DataType::FP32),
                     g.vectorPeakBf16 / 2);
    EXPECT_DOUBLE_EQ(g.matrixPeak(DataType::BF16), g.matrixPeakBf16);
}

TEST(DeviceSpec, LanesByDtype)
{
    const auto &g = gaudi2Spec();
    // 2048-bit TPC vector: 128 BF16 lanes, 64 FP32 lanes.
    EXPECT_EQ(g.vectorLanes(DataType::BF16), 128);
    EXPECT_EQ(g.vectorLanes(DataType::FP32), 64);
}

TEST(DeviceSpec, LookupByKind)
{
    EXPECT_EQ(&deviceSpec(DeviceKind::Gaudi2), &gaudi2Spec());
    EXPECT_EQ(&deviceSpec(DeviceKind::A100), &a100Spec());
}

} // namespace
} // namespace vespera::hw
