#include <gtest/gtest.h>

#include "hw/mme.h"
#include "hw/tensor_core.h"

namespace vespera::hw {
namespace {

class TensorCoreTest : public ::testing::Test
{
  protected:
    TensorCoreModel tc_;
};

TEST_F(TensorCoreTest, LargeSquareGemmHighUtilization)
{
    GemmCost c = tc_.gemm({8192, 8192, 8192}, DataType::BF16);
    EXPECT_GT(c.utilization, 0.80);
    EXPECT_LT(c.utilization, 1.0);
}

TEST_F(TensorCoreTest, BestTileNoWorseThanAnyCandidate)
{
    GemmShape shape{2048, 2048, 2048};
    GemmCost best = tc_.gemm(shape, DataType::BF16);
    for (const auto &[tm, tn] : TensorCoreModel::candidateTiles()) {
        GemmCost c = tc_.gemmWithTile(shape, DataType::BF16, tm, tn);
        EXPECT_LE(best.time, c.time * (1 + 1e-12));
    }
}

// Wave quantization: tile counts just above a multiple of 108 SMs lose
// utilization relative to an exact multiple.
TEST_F(TensorCoreTest, WaveQuantizationVisible)
{
    // 2048^3 with any tile shape gives a tile count far from a multiple
    // of 108, so utilization must sit well below the 8192^3 point.
    GemmCost small = tc_.gemm({2048, 2048, 2048}, DataType::BF16);
    GemmCost large = tc_.gemm({8192, 8192, 8192}, DataType::BF16);
    EXPECT_LT(small.utilization, large.utilization - 0.05);
}

// Paper Figure 5: Gaudi-2's configurable MME achieves higher compute
// utilization than A100 across square GEMMs, with the largest gap at
// mid sizes (paper: maximum at 2048).
TEST_F(TensorCoreTest, GaudiUtilizationAdvantage)
{
    MmeModel mme;
    double gap_sum = 0;
    int n = 0;
    for (std::int64_t s : {1024, 2048, 4096, 8192}) {
        GemmCost g = mme.gemm({s, s, s}, DataType::BF16);
        GemmCost a = tc_.gemm({s, s, s}, DataType::BF16);
        gap_sum += g.utilization - a.utilization;
        n++;
    }
    EXPECT_GT(gap_sum / n, 0.02);

    GemmCost g2k = mme.gemm({2048, 2048, 2048}, DataType::BF16);
    GemmCost a2k = tc_.gemm({2048, 2048, 2048}, DataType::BF16);
    // Paper: maximum gap ~32% (relative) at 2048^3.
    EXPECT_GT(g2k.utilization / a2k.utilization, 1.15);
}

// Figure 4: Gaudi-2 outperforms A100 in absolute TFLOPS on all shapes
// evaluated, including memory-bound irregular ones (higher HBM BW).
TEST_F(TensorCoreTest, GaudiAbsoluteAdvantageAcrossShapes)
{
    MmeModel mme;
    for (auto [m, k, n] :
         {std::tuple<std::int64_t, std::int64_t, std::int64_t>
              {512, 512, 512}, {2048, 2048, 2048}, {8192, 8192, 8192},
              {4096, 4096, 16}, {16384, 16384, 16}}) {
        GemmCost g = mme.gemm({m, k, n}, DataType::BF16);
        GemmCost a = tc_.gemm({m, k, n}, DataType::BF16);
        EXPECT_GT(g.achievedFlops, a.achievedFlops)
            << m << "x" << k << "x" << n;
    }
}

TEST_F(TensorCoreTest, IrregularGemmMemoryBound)
{
    GemmCost c = tc_.gemm({16384, 16384, 16}, DataType::BF16);
    EXPECT_TRUE(c.memoryBound());
}

TEST_F(TensorCoreTest, Fp32HalvesThroughput)
{
    GemmShape shape{4096, 4096, 4096};
    GemmCost bf16 = tc_.gemm(shape, DataType::BF16);
    GemmCost fp32 = tc_.gemm(shape, DataType::FP32);
    EXPECT_GT(fp32.time, bf16.time * 1.5);
}

} // namespace
} // namespace vespera::hw
