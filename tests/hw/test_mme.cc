#include <gtest/gtest.h>

#include "hw/mme.h"

namespace vespera::hw {
namespace {

class MmeTest : public ::testing::Test
{
  protected:
    MmeModel mme_;
};

// Paper Figure 4: Gaudi-2 reaches 429 TFLOPS (99.3% utilization) at
// M=K=N=8192. Verify the model lands in that regime.
TEST_F(MmeTest, LargeSquareGemmNearPeak)
{
    GemmCost c = mme_.gemm({8192, 8192, 8192}, DataType::BF16);
    EXPECT_GT(c.utilization, 0.97);
    EXPECT_LE(c.utilization, 1.0);
    EXPECT_GT(c.achievedFlops, 425 * TFLOPS);
}

TEST_F(MmeTest, UtilizationGrowsWithSize)
{
    double prev = 0;
    for (std::int64_t s : {512, 1024, 2048, 4096, 8192}) {
        GemmCost c = mme_.gemm({s, s, s}, DataType::BF16);
        EXPECT_GT(c.utilization, prev);
        prev = c.utilization;
    }
}

// Irregular (tall-skinny, N=16) GEMMs are memory-bound GEMV-like
// operations (Figure 4 triangle markers).
TEST_F(MmeTest, IrregularGemmIsMemoryBound)
{
    GemmCost c = mme_.gemm({16384, 16384, 16}, DataType::BF16);
    EXPECT_TRUE(c.memoryBound());
    // Attainable flops bounded by OI x BW: well below 15% of peak.
    EXPECT_LT(c.utilization, 0.15);
}

// Figure 6/7: the configurable MME beats a fixed 2x(256x256) array on
// shapes misaligned with the fixed geometry.
TEST_F(MmeTest, ConfigurableBeatsFixedOnIrregularShapes)
{
    const GemmShape shape{16384, 16384, 64};
    GemmCost fixed = mme_.gemmWithGeometry(shape, DataType::BF16,
                                           MmeModel::fixedGeometry());
    GemmCost configurable = mme_.gemm(shape, DataType::BF16);
    EXPECT_LT(configurable.time, fixed.time);
    EXPECT_GT(configurable.utilization, fixed.utilization);
}

TEST_F(MmeTest, ConfigurableNeverWorseThanFixed)
{
    for (std::int64_t n : {16, 32, 64, 128, 256, 1024, 4096}) {
        GemmShape shape{16384, 16384, n};
        GemmCost fixed = mme_.gemmWithGeometry(
            shape, DataType::BF16, MmeModel::fixedGeometry());
        GemmCost best = mme_.gemm(shape, DataType::BF16);
        EXPECT_LE(best.time, fixed.time * (1 + 1e-12))
            << "N=" << n;
    }
}

// Figure 7(a): tall-skinny shapes select tall geometries; small shapes
// select power-gated subsets.
TEST_F(MmeTest, GeometryTracksShape)
{
    MmeGeometry tall = mme_.selectGeometry({16384, 16384, 64},
                                           DataType::BF16);
    EXPECT_GT(tall.height, tall.width);

    MmeGeometry small = mme_.selectGeometry({128, 16384, 128},
                                            DataType::BF16);
    EXPECT_LT(small.totalMacs(), MmeModel::fixedGeometry().totalMacs());
}

TEST_F(MmeTest, PowerGatedGeometryReportsActiveFraction)
{
    GemmCost c = mme_.gemm({64, 4096, 64}, DataType::BF16);
    EXPECT_LT(c.activeMacFraction, 1.0);
    EXPECT_GT(c.activeMacFraction, 0.0);
}

TEST_F(MmeTest, Fp32HalvesThroughput)
{
    GemmShape shape{4096, 4096, 4096};
    GemmCost bf16 = mme_.gemm(shape, DataType::BF16);
    GemmCost fp32 = mme_.gemm(shape, DataType::FP32);
    EXPECT_GT(fp32.time, bf16.time * 1.5);
}

TEST_F(MmeTest, BatchScalesTime)
{
    GemmCost one = mme_.gemm({1024, 1024, 1024, 1}, DataType::BF16);
    GemmCost eight = mme_.gemm({1024, 1024, 1024, 8}, DataType::BF16);
    EXPECT_GT(eight.time, one.time * 4);
    EXPECT_LT(eight.time, one.time * 9);
}

TEST_F(MmeTest, GeometryLabels)
{
    EXPECT_EQ(MmeGeometry({256, 256, 2}).label(), "2x(256x256)");
    EXPECT_EQ(MmeGeometry({1024, 128, 1}).label(), "1024x128");
}

} // namespace
} // namespace vespera::hw
