#include <gtest/gtest.h>

#include "hw/power.h"

namespace vespera::hw {
namespace {

TEST(PowerModel, IdleAtZeroActivity)
{
    PowerModel g(gaudi2Spec());
    EXPECT_DOUBLE_EQ(g.averagePower({}), gaudi2Spec().idlePower);
}

TEST(PowerModel, CappedAtTdp)
{
    for (const auto *spec : {&gaudi2Spec(), &a100Spec()}) {
        PowerModel p(*spec);
        ActivityProfile full;
        full.matrixActivity = 1.0;
        full.vectorActivity = 1.0;
        full.hbmActivity = 1.0;
        EXPECT_LE(p.averagePower(full), spec->tdp);
    }
}

TEST(PowerModel, MonotoneInActivity)
{
    PowerModel p(gaudi2Spec());
    ActivityProfile low{0.2, 1.0, 0.1, 0.3};
    ActivityProfile high{0.8, 1.0, 0.5, 0.9};
    EXPECT_LT(p.averagePower(low), p.averagePower(high));
}

// Paper Section 3.5: Gaudi-2 power-gates inactive MME portions for
// small GEMM geometries, lowering draw at equal activity.
TEST(PowerModel, MacGatingReducesPower)
{
    PowerModel p(gaudi2Spec());
    ActivityProfile full{0.9, 1.0, 0.1, 0.5};
    ActivityProfile gated{0.9, 0.25, 0.1, 0.5};
    EXPECT_LT(p.averagePower(gated), p.averagePower(full));
}

TEST(PowerModel, EnergyScalesWithTime)
{
    PowerModel p(a100Spec());
    ActivityProfile act{0.5, 1.0, 0.2, 0.6};
    EXPECT_NEAR(p.energy(act, 2.0), 2 * p.energy(act, 1.0), 1e-9);
}

// Serving-level sanity: both devices stay well under TDP at the
// activity levels LLM inference produces (paper: Gaudi averaged ~1%
// higher power than A100 on single-device LLM serving despite a 50%
// higher TDP).
TEST(PowerModel, ServingActivityBelowTdp)
{
    PowerModel g(gaudi2Spec());
    PowerModel a(a100Spec());
    ActivityProfile serving{0.6, 0.8, 0.3, 0.7};
    EXPECT_LT(g.averagePower(serving), 0.85 * gaudi2Spec().tdp);
    EXPECT_LT(a.averagePower(serving), 1.05 * a100Spec().tdp);
    // The two should be within ~25% of each other at equal activity.
    double ratio = g.averagePower(serving) / a.averagePower(serving);
    EXPECT_GT(ratio, 0.75);
    EXPECT_LT(ratio, 1.30);
}

} // namespace
} // namespace vespera::hw
