#!/usr/bin/env bash
# Acceptance gate for vespera-stat (ISSUE PR 4): identical documents
# exit 0; a seeded 20% regression exits nonzero and names the
# offending counter; v1 attrib.* counters compare against v2
# attribution sections; thresholds and malformed input behave.
#
#   check_stat.sh <path-to-vespera-stat>
set -u

stat_bin="${1:?usage: check_stat.sh <vespera-stat>}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

cat > "$tmp/base.json" <<'EOF'
{
  "schema": "vespera-metrics/v2",
  "tool": "check_stat_fixture",
  "counters": {
    "hbm.stream_bytes": { "value": 6526600000 },
    "mme.ops": { "value": 2700 }
  },
  "rates": {
    "engine.tokens": { "count": 4096, "rate": 1850.5 }
  },
  "attribution": {
    "mme": { "compute": 0.6189, "memory_bw": 0.1182, "ops": 2700 }
  },
  "histograms": {
    "engine.ttft_seconds": { "count": 64, "mean": 0.21, "p50": 0.2,
                             "p90": 0.31, "p99": 0.42, "p999": 0.5 }
  }
}
EOF

# 1. Identical documents compare clean.
out="$("$stat_bin" --threshold=0.10 "$tmp/base.json" "$tmp/base.json")"
rc=$?
[ "$rc" -eq 0 ] || fail "identical docs exited $rc: $out"
echo "$out" | grep -q "^OK" || fail "identical docs not OK: $out"

# 2. Seeded 20% regression on one counter: nonzero exit, offender named.
sed 's/6526600000/7831920000/' "$tmp/base.json" > "$tmp/regressed.json"
out="$("$stat_bin" --threshold=0.10 "$tmp/base.json" "$tmp/regressed.json")"
rc=$?
[ "$rc" -eq 1 ] || fail "20% regression exited $rc (want 1): $out"
echo "$out" | grep -q "REGRESSION counters.hbm.stream_bytes" \
    || fail "offending counter not named: $out"

# 3. The same drift passes under a looser gate.
"$stat_bin" --threshold=0.30 "$tmp/base.json" "$tmp/regressed.json" \
    > /dev/null || fail "30% gate rejected a 20% change"

# 4. A per-prefix override tightens just that subsystem.
out="$("$stat_bin" --threshold=0.30 \
        --threshold=counters.hbm=0.05 \
        "$tmp/base.json" "$tmp/regressed.json")"
[ $? -eq 1 ] || fail "prefix override did not gate: $out"

# 5. --ignore excludes the offender entirely.
"$stat_bin" --threshold=0.10 --ignore=counters.hbm \
    "$tmp/base.json" "$tmp/regressed.json" > /dev/null \
    || fail "--ignore did not exclude the regression"

# 6. Regressions in either direction fail: a dropped counter is lost
#    coverage, not a win.
sed 's/6526600000/5221280000/' "$tmp/base.json" > "$tmp/dropped.json"
"$stat_bin" --threshold=0.10 "$tmp/base.json" "$tmp/dropped.json" \
    > /dev/null && fail "-20% drift passed the 10% gate"

# 7. A v1 document's attrib.* counters line up with the v2 attribution
#    section (baselines survive the schema bump).
cat > "$tmp/v1.json" <<'EOF'
{
  "schema": "vespera-metrics/v1",
  "tool": "check_stat_fixture",
  "counters": {
    "hbm.stream_bytes": { "value": 6526600000 },
    "mme.ops": { "value": 2700 },
    "attrib.mme.compute": { "value": 0.6189 },
    "attrib.mme.memory_bw": { "value": 0.1182 },
    "attrib.mme.ops": { "value": 2700 }
  },
  "rates": {
    "engine.tokens": { "count": 4096, "rate": 1850.5 }
  }
}
EOF
out="$("$stat_bin" --threshold=0.10 "$tmp/v1.json" "$tmp/base.json")"
rc=$?
[ "$rc" -eq 0 ] || fail "v1 vs v2 exited $rc: $out"
echo "$out" | grep -q "added .*histograms" \
    || fail "new v2 histograms should be informational: $out"

# 8. A missing metric in the candidate is a failure (REMOVED).
"$stat_bin" "$tmp/base.json" "$tmp/v1.json" > "$tmp/removed.out"
[ $? -eq 1 ] || fail "removed histograms section did not fail"
grep -q "REMOVED" "$tmp/removed.out" || fail "no REMOVED line"

# 9. --json report round-trips the verdict.
out="$("$stat_bin" --json "$tmp/base.json" "$tmp/regressed.json")"
echo "$out" | grep -q '"schema": "vespera-stat/v1"' || fail "json schema"
echo "$out" | grep -q '"pass": false' || fail "json pass flag"
echo "$out" | grep -q '"metric":"counters.hbm.stream_bytes"' \
    || fail "json offender"

# 10. Non-metrics input is a usage/document error (exit 2).
echo '{"schema": "something-else/v9"}' > "$tmp/alien.json"
"$stat_bin" "$tmp/alien.json" "$tmp/base.json" 2> /dev/null
[ $? -eq 2 ] || fail "alien schema not rejected with exit 2"
"$stat_bin" "$tmp/base.json" 2> /dev/null
[ $? -eq 2 ] || fail "missing operand not rejected with exit 2"

echo "STAT_OK"
