#!/usr/bin/env bash
# Acceptance gate for `vespera-stat timeline` (the ISSUE tentpole's
# diffing arm): identical timeline sections exit 0; a perturbed window
# exits nonzero naming the series and the FIRST offending window;
# --skip-windows excuses warm-up; SLO flag flips and first-violation
# drift are gated; documents without a timeline section are a usage
# error.
#
#   check_timeline_stat.sh <path-to-vespera-stat>
set -u

stat_bin="${1:?usage: check_timeline_stat.sh <vespera-stat>}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

cat > "$tmp/base.json" <<'EOF'
{
  "schema": "vespera-metrics/v2.2",
  "tool": "check_timeline_fixture",
  "counters": {},
  "timeline": {
    "interval_seconds": 0.5,
    "series": {
      "run.goodput_tokens_per_sec": {
        "dropped": 0,
        "samples": [
          [0.5, 110],
          [1.0, 220],
          [1.5, 330],
          [2.0, 440]
        ]
      },
      "run.queue_depth": {
        "dropped": 0,
        "samples": [
          [0.5, 4],
          [1.0, 8],
          [1.5, 6],
          [2.0, 2]
        ]
      }
    },
    "slo": {
      "run.ttft_p99_seconds": {
        "bound": 2.0,
        "violated": true,
        "first_violation_seconds": 1.5,
        "first_violation_value": 2.5
      }
    }
  }
}
EOF

# 1. Identical timelines compare clean.
out="$("$stat_bin" timeline "$tmp/base.json" "$tmp/base.json")"
rc=$?
[ "$rc" -eq 0 ] || fail "identical docs exited $rc: $out"
echo "$out" | grep -q "^OK" || fail "identical docs not OK: $out"

# 2. A 33% value drift in window 2: nonzero exit, localized to the
#    first offending window of the named series.
sed 's/330/440/' "$tmp/base.json" > "$tmp/window2.json"
out="$("$stat_bin" timeline "$tmp/base.json" "$tmp/window2.json")"
rc=$?
[ "$rc" -eq 1 ] || fail "window drift exited $rc (want 1): $out"
echo "$out" | grep -q \
    "REGRESSION run.goodput_tokens_per_sec window 2" \
    || fail "first offending window not localized: $out"

# 3. The same drift passes under a looser gate...
"$stat_bin" timeline --threshold=0.50 \
    "$tmp/base.json" "$tmp/window2.json" > /dev/null \
    || fail "50% gate rejected a 33% window drift"

# 4. ...but a per-series override re-tightens just that series.
"$stat_bin" timeline --threshold=0.50 \
    --threshold=run.goodput=0.10 \
    "$tmp/base.json" "$tmp/window2.json" > /dev/null \
    && fail "per-series override did not gate"

# 5. --ignore excludes the offender entirely.
"$stat_bin" timeline --ignore=run.goodput \
    "$tmp/base.json" "$tmp/window2.json" > /dev/null \
    || fail "--ignore did not exclude the regression"

# 6. Warm-up drift (window 0) fails by default and is excused by
#    --skip-windows.
sed 's/110/999/' "$tmp/base.json" > "$tmp/warmup.json"
"$stat_bin" timeline "$tmp/base.json" "$tmp/warmup.json" > /dev/null \
    && fail "window-0 drift passed without --skip-windows"
"$stat_bin" timeline --skip-windows=1 \
    "$tmp/base.json" "$tmp/warmup.json" > /dev/null \
    || fail "--skip-windows=1 did not excuse window-0 drift"

# 7. A timestamp shift is a regression even when values match: the
#    schedule itself moved.
sed 's/0.5, 110/0.75, 110/' "$tmp/base.json" > "$tmp/tshift.json"
out="$("$stat_bin" timeline "$tmp/base.json" "$tmp/tshift.json")"
[ $? -eq 1 ] || fail "timestamp shift did not fail: $out"
echo "$out" | grep -q '\[timestamp\]' \
    || fail "timestamp shift not flagged as such: $out"

# 8. Window-count drift (an extra trailing window) is a regression.
sed 's/\[2.0, 440\]/[2.0, 440], [2.5, 550]/' "$tmp/base.json" \
    > "$tmp/extra.json"
out="$("$stat_bin" timeline "$tmp/base.json" "$tmp/extra.json")"
[ $? -eq 1 ] || fail "window-count drift did not fail: $out"
echo "$out" | grep -q "window count" \
    || fail "window-count drift not named: $out"

# 9. SLO regressions: a violated-flag flip always fails; a drifted
#    first-violation timestamp fails at the default gate and passes a
#    per-SLO override.
sed 's/"violated": true/"violated": false/' "$tmp/base.json" \
    > "$tmp/sloflip.json"
out="$("$stat_bin" timeline "$tmp/base.json" "$tmp/sloflip.json")"
[ $? -eq 1 ] || fail "SLO flag flip did not fail: $out"
echo "$out" | grep -q "violated flag" || fail "SLO flip not named: $out"
sed 's/"first_violation_seconds": 1.5/"first_violation_seconds": 2.5/' \
    "$tmp/base.json" > "$tmp/slodrift.json"
"$stat_bin" timeline "$tmp/base.json" "$tmp/slodrift.json" \
    > /dev/null && fail "first-violation drift passed the default gate"
"$stat_bin" timeline \
    --threshold=slo.run.ttft_p99_seconds=0.80 \
    "$tmp/base.json" "$tmp/slodrift.json" > /dev/null \
    || fail "per-SLO threshold override did not apply"

# 10. A removed series is lost coverage: fail, named.
sed 's/"run.queue_depth"/"run.queue_renamed"/' "$tmp/base.json" \
    > "$tmp/renamed.json"
out="$("$stat_bin" timeline "$tmp/base.json" "$tmp/renamed.json")"
[ $? -eq 1 ] || fail "removed series did not fail: $out"
echo "$out" | grep -q "REMOVED    run.queue_depth" \
    || fail "removed series not named: $out"
echo "$out" | grep -q "added      run.queue_renamed" \
    || fail "added series should be informational: $out"

# 11. --json report round-trips the verdict.
out="$("$stat_bin" timeline --json --skip-windows=1 \
        "$tmp/base.json" "$tmp/window2.json")"
echo "$out" | grep -q '"schema": "vespera-stat-timeline/v1"' \
    || fail "json schema: $out"
echo "$out" | grep -q '"pass": false' || fail "json pass flag: $out"
echo "$out" | grep -q '"skip_windows": 1' || fail "json skip field"

# 12. A metrics document without a timeline section is a usage error
#    (exit 2) that tells the user which flag produces one.
cat > "$tmp/plain.json" <<'EOF'
{ "schema": "vespera-metrics/v2.2", "counters": {} }
EOF
err="$("$stat_bin" timeline "$tmp/plain.json" "$tmp/base.json" 2>&1)"
[ $? -eq 2 ] || fail "missing timeline section not exit 2: $err"
echo "$err" | grep -q -- "--timeline-interval" \
    || fail "missing-section error should name the flag: $err"
"$stat_bin" timeline "$tmp/base.json" 2> /dev/null
[ $? -eq 2 ] || fail "missing operand not rejected with exit 2"

echo "TIMELINE_STAT_OK"
