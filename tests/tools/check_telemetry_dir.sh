#!/usr/bin/env bash
# --telemetry-dir must derive <dir>/<bench>.{trace,metrics}.json, and
# an unwritable --metrics path must turn into a nonzero bench exit
# (ISSUE PR 4 satellites). Takes any bench binary.
#
#   check_telemetry_dir.sh <path-to-bench-binary>
set -u

bench="${1:?usage: check_telemetry_dir.sh <bench-binary>}"
name="$(basename "$bench")"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# 1. Derived telemetry paths.
"$bench" --quiet --telemetry-dir="$tmp" 2> /dev/null \
    || fail "$name exited nonzero with --telemetry-dir"
[ -s "$tmp/$name.metrics.json" ] || fail "derived metrics file missing"
[ -s "$tmp/$name.trace.json" ] || fail "derived trace file missing"
grep -q "vespera-metrics/v2" "$tmp/$name.metrics.json" \
    || fail "metrics doc is not vespera-metrics/v2"
grep -q '"traceEvents"' "$tmp/$name.trace.json" \
    || fail "trace doc has no traceEvents"

# 2. Explicit flags win over the derived paths.
"$bench" --quiet --telemetry-dir="$tmp" \
    --metrics="$tmp/explicit.json" 2> /dev/null \
    || fail "$name exited nonzero with explicit --metrics"
[ -s "$tmp/explicit.json" ] || fail "explicit metrics path ignored"

# 3. Export failure is a bench failure.
if "$bench" --quiet \
    --metrics="$tmp/no-such-dir/metrics.json" 2> /dev/null; then
    fail "unwritable --metrics path exited 0"
fi

echo "TELEMETRY_OK"
