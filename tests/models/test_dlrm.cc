#include <gtest/gtest.h>

#include "models/dlrm.h"

namespace vespera::models {
namespace {

DlrmConfig
tinyRm(const DlrmConfig &base)
{
    DlrmConfig c = base;
    c.rowsPerTable = 1 << 12; // Keep functional tables small in tests.
    return c;
}

TEST(Dlrm, ConfigsMatchTable3)
{
    auto rm1 = DlrmConfig::rm1();
    EXPECT_EQ(rm1.bottomMlp, (std::vector<int>{13, 512, 256, 64}));
    EXPECT_EQ(rm1.topMlp, (std::vector<int>{1024, 1024, 512, 256, 1}));
    EXPECT_EQ(rm1.crossLayers, 3);
    EXPECT_EQ(rm1.lowRankDim, 512);

    auto rm2 = DlrmConfig::rm2();
    EXPECT_EQ(rm2.bottomMlp, (std::vector<int>{13, 256, 64, 64}));
    EXPECT_EQ(rm2.topMlp, (std::vector<int>{128, 64, 1}));
    EXPECT_EQ(rm2.lowRankDim, 64);
}

TEST(Dlrm, RunsOnBothDevices)
{
    DlrmModel model(tinyRm(DlrmConfig::rm1()));
    DlrmRunConfig run;
    run.batch = 256;
    Rng rng(1);
    auto g = model.run(DeviceKind::Gaudi2, run, rng);
    auto a = model.run(DeviceKind::A100, run, rng);
    EXPECT_GT(g.time, 0);
    EXPECT_GT(a.time, 0);
    EXPECT_GT(g.power, hw::gaudi2Spec().idlePower);
    EXPECT_LT(g.power, hw::gaudi2Spec().tdp);
    EXPECT_GT(a.power, hw::a100Spec().idlePower);
}

// RM2 is the memory-intensive configuration: embedding dominates.
TEST(Dlrm, Rm2EmbeddingDominated)
{
    DlrmModel rm2(tinyRm(DlrmConfig::rm2()));
    DlrmRunConfig run;
    run.batch = 1024;
    Rng rng(2);
    auto r = rm2.run(DeviceKind::Gaudi2, run, rng);
    EXPECT_GT(r.embeddingTime, r.denseTime);
}

// RM1 is compute-intensive: dense layers outweigh embedding.
TEST(Dlrm, Rm1DenseHeavy)
{
    DlrmModel rm1(tinyRm(DlrmConfig::rm1()));
    DlrmRunConfig run;
    run.batch = 1024;
    Rng rng(3);
    auto r = rm1.run(DeviceKind::Gaudi2, run, rng);
    EXPECT_GT(r.denseTime, 0.5 * r.embeddingTime);
}

// Figure 11 / key takeaway #5: Gaudi-2 generally trails A100 on
// RecSys (~20% slower on average), with small embedding vectors being
// the worst case.
TEST(Dlrm, A100WinsSmallVectors)
{
    DlrmModel rm2(tinyRm(DlrmConfig::rm2()));
    DlrmRunConfig run;
    run.batch = 1024;
    run.embVectorBytes = 64;
    Rng rng(4);
    auto g = rm2.run(DeviceKind::Gaudi2, run, rng);
    auto a = rm2.run(DeviceKind::A100, run, rng);
    EXPECT_LT(g.samplesPerSec, a.samplesPerSec);
}

// ...while wide vectors and large batches favour Gaudi's bandwidth
// and compute (paper: up to 1.36x).
TEST(Dlrm, GaudiCompetitiveWideVectors)
{
    DlrmModel rm1(tinyRm(DlrmConfig::rm1()));
    DlrmRunConfig run;
    run.batch = 4096;
    run.embVectorBytes = 512;
    Rng rng(5);
    auto g = rm1.run(DeviceKind::Gaudi2, run, rng);
    auto a = rm1.run(DeviceKind::A100, run, rng);
    EXPECT_GT(g.samplesPerSec, 0.8 * a.samplesPerSec);
}

TEST(Dlrm, EnergyConsistent)
{
    DlrmModel rm1(tinyRm(DlrmConfig::rm1()));
    DlrmRunConfig run;
    run.batch = 512;
    Rng rng(6);
    auto r = rm1.run(DeviceKind::Gaudi2, run, rng);
    EXPECT_NEAR(r.energy, r.power * r.time, 1e-9);
    EXPECT_NEAR(r.samplesPerJoule, run.batch / r.energy, 1e-6);
}

TEST(Dlrm, DenseGraphShape)
{
    DlrmModel rm1(tinyRm(DlrmConfig::rm1()));
    DlrmRunConfig run;
    run.batch = 128;
    auto g = rm1.buildDenseGraph(run);
    int matmuls = 0;
    for (const auto &n : g.nodes())
        if (n.kind == graph::OpKind::MatMul)
            matmuls++;
    // 3 bottom + 2x3 cross + 5 top.
    EXPECT_EQ(matmuls, 3 + 6 + 5);
}

} // namespace
} // namespace vespera::models
