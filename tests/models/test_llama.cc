#include <gtest/gtest.h>

#include "models/llama.h"

namespace vespera::models {
namespace {

TEST(Llama, ConfigsMatchTable3)
{
    auto m8 = LlamaConfig::llama31_8b();
    EXPECT_EQ(m8.layers, 32);
    EXPECT_EQ(m8.numQHeads, 32);
    EXPECT_EQ(m8.numKvHeads, 8);
    EXPECT_EQ(m8.hidden, 4096);
    EXPECT_EQ(m8.intermediate, 14336);
    EXPECT_EQ(m8.vocab, 128256);
    // Parameter count near 8B.
    EXPECT_NEAR(m8.paramCount() / 1e9, 8.0, 1.0);

    auto m70 = LlamaConfig::llama31_70b();
    EXPECT_EQ(m70.layers, 80);
    EXPECT_EQ(m70.numQHeads, 64);
    EXPECT_NEAR(m70.paramCount() / 1e9, 70.0, 6.0);
}

TEST(Llama, ServeProducesSaneBreakdown)
{
    LlamaModel model(LlamaConfig::llama31_8b());
    LlamaServingConfig cfg;
    cfg.batch = 16;
    cfg.inputLen = 100;
    cfg.outputLen = 100;
    auto r = model.serve(DeviceKind::Gaudi2, cfg);
    EXPECT_GT(r.prefillTime, 0);
    EXPECT_GT(r.decodeTime, r.prefillTime); // 100 decode steps vs 1.
    EXPECT_NEAR(r.totalTime, r.prefillTime + r.decodeTime, 1e-9);
    EXPECT_GT(r.tokensPerSec, 0);
}

// Figure 12(a): Gaudi-2 outperforms A100 on single-device Llama-8B
// across batch sizes and output lengths (paper avg 1.47x).
TEST(Llama, GaudiSpeedup8B)
{
    LlamaModel model(LlamaConfig::llama31_8b());
    double worst = 10, best = 0;
    for (int batch : {4, 64}) {
        for (int out : {25, 400}) {
            LlamaServingConfig cfg;
            cfg.batch = batch;
            cfg.outputLen = out;
            auto g = model.serve(DeviceKind::Gaudi2, cfg);
            auto a = model.serve(DeviceKind::A100, cfg);
            double speedup = a.totalTime / g.totalTime;
            worst = std::min(worst, speedup);
            best = std::max(best, speedup);
        }
    }
    EXPECT_GT(worst, 1.0);  // Consistently faster.
    EXPECT_LT(best, 2.0);   // Paper max 1.70x.
}

// Figure 12(b): decode dominates at long outputs; prefill grows with
// input length.
TEST(Llama, LatencyBreakdownTrends)
{
    LlamaModel model(LlamaConfig::llama31_8b());
    LlamaServingConfig cfg;
    cfg.batch = 64;
    cfg.inputLen = 100;
    cfg.outputLen = 400;
    auto long_out = model.serve(DeviceKind::Gaudi2, cfg);
    EXPECT_GT(long_out.decodeTime, 4 * long_out.prefillTime);

    cfg.outputLen = 100;
    cfg.inputLen = 1600;
    auto long_in = model.serve(DeviceKind::Gaudi2, cfg);
    cfg.inputLen = 100;
    auto short_in = model.serve(DeviceKind::Gaudi2, cfg);
    EXPECT_GT(long_in.prefillTime, 4 * short_in.prefillTime);
}

// Figure 12(a) right: multi-device 70B speedups hold and grow with
// device count (paper: 1.29/1.32/1.35x for TP=2/4/8).
TEST(Llama, MultiDeviceSpeedupGrowsWithTp)
{
    LlamaModel model(LlamaConfig::llama31_70b());
    double prev = 0;
    for (int tp : {2, 4, 8}) {
        LlamaServingConfig cfg;
        cfg.batch = 16;
        cfg.outputLen = 100;
        cfg.tpDevices = tp;
        auto g = model.serve(DeviceKind::Gaudi2, cfg);
        auto a = model.serve(DeviceKind::A100, cfg);
        double speedup = a.totalTime / g.totalTime;
        EXPECT_GT(speedup, 1.0) << "tp=" << tp;
        EXPECT_GT(speedup, prev * 0.98) << "tp=" << tp;
        prev = speedup;
    }
}

// Figure 13 / key takeaway #5: Gaudi-2's LLM energy efficiency beats
// A100 (paper: ~1.5x).
TEST(Llama, EnergyEfficiencyAdvantage)
{
    LlamaModel model(LlamaConfig::llama31_8b());
    LlamaServingConfig cfg;
    cfg.batch = 32;
    cfg.outputLen = 100;
    auto g = model.serve(DeviceKind::Gaudi2, cfg);
    auto a = model.serve(DeviceKind::A100, cfg);
    double eff = g.tokensPerJoule / a.tokensPerJoule;
    EXPECT_GT(eff, 1.1);
    EXPECT_LT(eff, 2.2);
    // Despite the 50% higher TDP, average draw stays comparable.
    EXPECT_LT(g.avgPowerPerDevice / a.avgPowerPerDevice, 1.35);
}

TEST(Llama, VllmOptFasterThanBase)
{
    LlamaModel model(LlamaConfig::llama31_8b());
    LlamaServingConfig cfg;
    cfg.batch = 32;
    cfg.inputLen = 1024;
    cfg.outputLen = 64;
    cfg.attention = AttentionBackend::VllmBase;
    auto base = model.serve(DeviceKind::Gaudi2, cfg);
    cfg.attention = AttentionBackend::VllmOpt;
    auto opt = model.serve(DeviceKind::Gaudi2, cfg);
    EXPECT_LT(opt.totalTime, base.totalTime);
}

TEST(Llama, WeightBytesShardWithTp)
{
    auto cfg = LlamaConfig::llama31_70b();
    const Bytes full = cfg.weightBytes(1, DataType::BF16);
    EXPECT_NEAR(static_cast<double>(full) / (1ull << 30), 131.0, 15.0);
    EXPECT_EQ(cfg.weightBytes(4, DataType::BF16), full / 4);
    // FP32 doubles the footprint.
    EXPECT_EQ(cfg.weightBytes(1, DataType::FP32), 2 * full);
}

TEST(Llama, StepGraphValidatesAndProfiles)
{
    LlamaModel model(LlamaConfig::llama31_8b());
    LlamaServingConfig cfg;
    cfg.tpDevices = 2;
    auto rep = model.stepReport(DeviceKind::Gaudi2, 16, 1, 1024, false,
                                cfg);
    // One representative layer + lm head in the timeline, with the TP
    // all-reduces present.
    int allreduces = 0, matmuls = 0;
    for (const auto &e : rep.timeline) {
        if (e.kind == graph::OpKind::AllReduce)
            allreduces++;
        if (e.kind == graph::OpKind::MatMul)
            matmuls++;
    }
    EXPECT_EQ(allreduces, 2); // attn + mlp.
    EXPECT_EQ(matmuls, 5);    // qkv, o, gate_up, down, lm_head.
}

TEST(Llama, StepTimeGrowsWithContext)
{
    LlamaModel model(LlamaConfig::llama31_8b());
    LlamaServingConfig cfg;
    Seconds t1 = model.stepTime(DeviceKind::Gaudi2, 32, 1, 512, false,
                                cfg);
    Seconds t2 = model.stepTime(DeviceKind::Gaudi2, 32, 1, 4096, false,
                                cfg);
    EXPECT_GT(t2, t1);
}

} // namespace
} // namespace vespera::models
