#include <gtest/gtest.h>

#include "mem/hbm.h"

namespace vespera::mem {
namespace {

class HbmTest : public ::testing::Test
{
  protected:
    HbmModel gaudi_{hw::gaudi2Spec()};
    HbmModel a100_{hw::a100Spec()};
};

TEST_F(HbmTest, TransactionRounding)
{
    EXPECT_EQ(gaudi_.transactionBytes(1), 256u);
    EXPECT_EQ(gaudi_.transactionBytes(256), 256u);
    EXPECT_EQ(gaudi_.transactionBytes(257), 512u);
    EXPECT_EQ(a100_.transactionBytes(16), 32u);
    EXPECT_EQ(a100_.transactionBytes(33), 64u);
}

TEST_F(HbmTest, GranularityEfficiency)
{
    EXPECT_DOUBLE_EQ(gaudi_.granularityEfficiency(256), 1.0);
    EXPECT_DOUBLE_EQ(gaudi_.granularityEfficiency(64), 0.25);
    EXPECT_DOUBLE_EQ(a100_.granularityEfficiency(64), 1.0);
    EXPECT_DOUBLE_EQ(a100_.granularityEfficiency(16), 0.5);
}

TEST_F(HbmTest, StreamTimeLinear)
{
    Seconds t1 = gaudi_.streamTime(1 * GiB);
    Seconds t2 = gaudi_.streamTime(2 * GiB);
    EXPECT_NEAR(t2 / t1, 2.0, 1e-9);
}

TEST_F(HbmTest, StreamBandwidthBelowPeak)
{
    EXPECT_LT(gaudi_.streamBandwidth(), gaudi_.peakBandwidth());
    EXPECT_GT(gaudi_.streamBandwidth(), 0.75 * gaudi_.peakBandwidth());
}

TEST_F(HbmTest, ParallelismEfficiencyMonotone)
{
    double prev = 0;
    for (double c : {1.0, 4.0, 16.0, 64.0, 256.0, 4096.0}) {
        double e = gaudi_.parallelismEfficiency(c);
        EXPECT_GT(e, prev);
        EXPECT_LT(e, 1.0);
        prev = e;
    }
}

// Paper Figure 9 / Key takeaway #3: at >=256 B vectors both devices are
// competitive; below 256 B Gaudi-2 collapses while A100 degrades
// gracefully thanks to 32 B sectors.
TEST_F(HbmTest, SmallVectorGatherPenalty)
{
    auto util = [](const HbmModel &m, Bytes size) {
        RandomAccessWorkload w;
        w.accessSize = size;
        w.numAccesses = 1 << 20;
        w.concurrency = 512;
        return m.randomAccess(w).bandwidthUtilization;
    };

    // Large vectors: same ballpark (paper: 64% vs 72% average).
    double g256 = util(gaudi_, 256), a256 = util(a100_, 256);
    EXPECT_GT(g256, 0.4);
    EXPECT_GT(a256, 0.5);

    // Small vectors: A100 wins by >2x (paper: 2.4x at <=128 B).
    double g64 = util(gaudi_, 64), a64 = util(a100_, 64);
    EXPECT_GT(a64 / g64, 2.0);
}

TEST_F(HbmTest, UtilizationRisesWithVectorSize)
{
    RandomAccessWorkload w;
    w.numAccesses = 1 << 20;
    w.concurrency = 512;
    double prev = 0;
    for (Bytes size : {16, 32, 64, 128, 256, 512, 1024, 2048}) {
        w.accessSize = size;
        double u = gaudi_.randomAccess(w).bandwidthUtilization;
        EXPECT_GE(u, prev);
        prev = u;
    }
}

TEST_F(HbmTest, ScatterNoFasterThanGather)
{
    RandomAccessWorkload gather{128, 1 << 20, 256, false};
    RandomAccessWorkload scatter{128, 1 << 20, 256, true};
    EXPECT_GE(gaudi_.randomAccess(scatter).time,
              gaudi_.randomAccess(gather).time);
}

TEST_F(HbmTest, RandomTrafficTimeConsistent)
{
    // Aggregated-traffic entry point agrees with the workload-level one
    // up to the fixed ramp.
    RandomAccessWorkload w{256, 100000, 128, false};
    auto r = gaudi_.randomAccess(w);
    Seconds t = gaudi_.randomTrafficTime(256ull * 100000, 100000, 128);
    EXPECT_NEAR(r.time, t + 2e-6, 1e-9);
}

TEST_F(HbmTest, ZeroTrafficIsFree)
{
    EXPECT_DOUBLE_EQ(gaudi_.randomTrafficTime(0, 0, 1), 0.0);
    EXPECT_DOUBLE_EQ(gaudi_.streamTime(0), 0.0);
}

} // namespace
} // namespace vespera::mem
