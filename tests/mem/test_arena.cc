/**
 * @file
 * Arena allocator contract: alignment, mark/release reuse, scoped
 * thread-local binding, allocator fallback semantics, selfprof
 * growth accounting, and use-after-reset detection (epoch handles in
 * every build; poisoned memory under ASan).
 */

#include "mem/arena.h"

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "obs/selfprof.h"

namespace vespera::mem {
namespace {

TEST(Arena, AlignmentIsRespected)
{
    Arena a(256);
    for (std::size_t align : {1u, 2u, 4u, 8u, 16u, 64u}) {
        void *p = a.allocate(3, align);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
            << "align " << align;
    }
    // Oversized requests get a dedicated chunk, still aligned.
    void *big = a.allocate(4096, 64);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big) % 64, 0u);
}

TEST(Arena, ResetReusesChunksWithoutNewHeapTraffic)
{
    Arena a(1024);
    for (int round = 0; round < 50; round++) {
        for (int i = 0; i < 40; i++)
            a.allocate(64, 8);
        a.reset();
    }
    // Steady state: the first round sized the arena; later rounds bump
    // within retained chunks.
    EXPECT_LE(a.chunkAllocs(), 4u);
    EXPECT_EQ(a.bytesInUse(), 0u);
    EXPECT_GE(a.allocCalls(), 50u * 40u);
    EXPECT_GE(a.highWater(), 40u * 64u);
}

TEST(Arena, MarkReleasePopsOnlyTheSuffix)
{
    Arena a(1024);
    auto *first = static_cast<std::uint64_t *>(a.allocate(8, 8));
    *first = 0xA5A5A5A5A5A5A5A5ull;
    const Arena::Mark m = a.mark();
    const std::size_t before = a.bytesInUse();
    for (int i = 0; i < 100; i++)
        a.allocate(32, 8);
    a.release(m);
    EXPECT_EQ(a.bytesInUse(), before);
    // The prefix below the mark is untouched.
    EXPECT_EQ(*first, 0xA5A5A5A5A5A5A5A5ull);
}

TEST(Arena, ScopedArenaBindsAndRestoresThreadLocal)
{
    EXPECT_EQ(Arena::current(), nullptr);
    Arena a;
    {
        ScopedArena scope(a);
        EXPECT_EQ(Arena::current(), &a);
        {
            Arena inner;
            ScopedArena nested(inner);
            EXPECT_EQ(Arena::current(), &inner);
        }
        EXPECT_EQ(Arena::current(), &a);
    }
    EXPECT_EQ(Arena::current(), nullptr);
}

TEST(Arena, NestedScopesOnTheSameArenaReleaseOnlyTheirSuffix)
{
    Arena a(1024);
    ScopedArena outer(a);
    a.allocate(100, 8);
    const std::size_t outerUse = a.bytesInUse();
    {
        ScopedArena inner(a);
        a.allocate(500, 8);
        EXPECT_GT(a.bytesInUse(), outerUse);
    }
    EXPECT_EQ(a.bytesInUse(), outerUse);
}

TEST(ArenaAllocator, VectorUsesBoundArenaAndFallsBackToHeap)
{
    Arena a;
    std::vector<int, ArenaAllocator<int>> heapVec; // no arena bound
    EXPECT_EQ(heapVec.get_allocator().arena(), nullptr);
    heapVec.assign(1000, 7);
    EXPECT_EQ(heapVec[999], 7);

    const std::uint64_t callsBefore = a.allocCalls();
    {
        ScopedArena scope(a);
        std::vector<int, ArenaAllocator<int>> v;
        EXPECT_EQ(v.get_allocator().arena(), &a);
        for (int i = 0; i < 100; i++)
            v.push_back(i);
        EXPECT_EQ(v[99], 99);
        EXPECT_GT(a.allocCalls(), callsBefore);

        // Copies bind where the copy is made: inside the scope they
        // are arena-backed too...
        std::vector<int, ArenaAllocator<int>> inScope(v);
        EXPECT_EQ(inScope.get_allocator().arena(), &a);
    }
    // ...and a copy made outside any scope goes to the heap, so
    // escaping a trace into long-lived storage is safe.
    std::vector<int, ArenaAllocator<int>> src;
    {
        ScopedArena scope(a);
        std::vector<int, ArenaAllocator<int>> v(50, 3);
        // Copy-construct while NOT rebinding: simulate the registry
        // observer copying a trace after the scope unwinds.
        src = std::vector<int, ArenaAllocator<int>>(); // heap target
        src.assign(v.begin(), v.end());
    }
    EXPECT_EQ(src.size(), 50u);
    EXPECT_EQ(src[49], 3);
    EXPECT_EQ(src.get_allocator().arena(), nullptr);
}

TEST(ArenaAllocator, SelfRecordGrowthSkipsArenaBackedVectors)
{
    obs::SelfProf &prof = obs::SelfProf::instance();
    prof.reset();
    prof.setEnabled(true);

    Arena a;
    {
        ScopedArena scope(a);
        std::vector<int, ArenaAllocator<int>> v;
        for (int i = 0; i < 1000; i++) {
            const std::size_t cap = v.capacity();
            v.push_back(i);
            obs::selfRecordGrowth(v, cap);
        }
    }
    obs::SelfSnapshot snap = prof.snapshot();
    std::uint64_t growthEvents = 0;
    std::uint64_t growthBytes = 0;
    for (int c = 0; c < obs::kSelfCats; c++) {
        growthEvents += snap.ledger.allocCount[c];
        growthBytes += snap.ledger.allocBytes[c];
    }
    // The vector's bump-growth was skipped; only the arena's real
    // chunk mallocs were recorded — a handful, not O(log n) per
    // container per step.
    EXPECT_EQ(growthEvents, a.chunkAllocs());
    EXPECT_EQ(growthBytes, a.bytesReserved());

    // The same loop on a heap-backed vector records every regrowth.
    prof.reset();
    std::vector<int, ArenaAllocator<int>> heapVec;
    for (int i = 0; i < 1000; i++) {
        const std::size_t cap = heapVec.capacity();
        heapVec.push_back(i);
        obs::selfRecordGrowth(heapVec, cap);
    }
    snap = prof.snapshot();
    growthEvents = 0;
    for (int c = 0; c < obs::kSelfCats; c++)
        growthEvents += snap.ledger.allocCount[c];
    EXPECT_GT(growthEvents, 5u);
    prof.setEnabled(false);
    prof.reset();
}

TEST(Arena, HandleValidWithinEpoch)
{
    Arena a;
    auto h = a.make<std::uint64_t>(42u);
    EXPECT_TRUE(h.valid());
    EXPECT_EQ(*h, 42u);
    *h = 7;
    EXPECT_EQ(h.get(), 7u);
}

using ArenaDeathTest = ::testing::Test;

TEST(ArenaDeathTest, HandleUseAfterResetDies)
{
    Arena a;
    auto h = a.make<int>(1);
    a.reset();
    EXPECT_FALSE(h.valid());
    EXPECT_DEATH((void)h.get(), "outlived its epoch");
}

TEST(ArenaDeathTest, HandleUseAfterScopeExitDies)
{
    Arena a;
    Arena::Handle<int> h;
    {
        ScopedArena scope(a);
        h = a.make<int>(9);
        EXPECT_TRUE(h.valid());
    }
    EXPECT_DEATH((void)h.get(), "outlived its epoch");
}

#ifdef VESPERA_ASAN
TEST(ArenaDeathTest, RawPointerUseAfterResetTrapsUnderAsan)
{
    Arena a;
    auto *p = static_cast<volatile int *>(a.allocate(sizeof(int), 4));
    *p = 5;
    a.reset();
    EXPECT_DEATH({ (void)*p; }, "use-after-poison|AddressSanitizer");
}
#endif

} // namespace
} // namespace vespera::mem
