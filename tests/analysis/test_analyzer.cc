/**
 * @file
 * Unit tests for the TPC trace analyzer: every rule fires on a trace
 * crafted to contain exactly that anti-pattern, and the stall
 * attribution agrees with tpc::evaluatePipeline.
 */

#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "obs/counters.h"
#include "tpc/context.h"

namespace vespera::analysis {
namespace {

using tpc::Access;
using tpc::Int5;
using tpc::MemberRange;
using tpc::Program;
using tpc::Tensor;
using tpc::TpcContext;
using tpc::Vec;

MemberRange
oneTpc()
{
    return {{0, 0, 0, 0, 0}, {1, 1, 1, 1, 1}};
}

/// Serial reduction: every add waits on the previous add's result —
/// the canonical exposed-latency chain.
Program
serialChain(int length)
{
    Program p;
    TpcContext ctx(p, oneTpc());
    Tensor t({1 << 16}, DataType::FP32);
    Vec acc = ctx.v_ld_tnsr({0, 0, 0, 0, 0}, t, 256);
    for (int i = 1; i <= length; i++) {
        Vec x = ctx.v_ld_tnsr({i * 64, 0, 0, 0, 0}, t, 256);
        acc = ctx.v_add(acc, x);
    }
    ctx.v_st_tnsr({0, 0, 0, 0, 0}, t, acc);
    return p;
}

TEST(Analyzer, ExposedLatencyFiresOnSerialChain)
{
    Report r = analyzeProgram(serialChain(64));
    EXPECT_GT(r.countFor(rules::exposedLatency), 0);
    EXPECT_GT(r.dependencyStallCycles, 0.0);
    // The chain diagnostic names the producing value.
    bool named = false;
    for (const Diagnostic &d : r.diagnostics) {
        if (d.rule == rules::exposedLatency &&
            d.message.find('v') != std::string::npos) {
            named = true;
        }
    }
    EXPECT_TRUE(named);
}

TEST(Analyzer, InterleavedChainsStallLess)
{
    // Eight independent accumulators over the same loads: far fewer
    // dependency stalls than the serial reduction of the same length.
    Program p;
    TpcContext ctx(p, oneTpc());
    Tensor t({1 << 16}, DataType::FP32);
    std::vector<Vec> accs;
    for (int q = 0; q < 8; q++)
        accs.push_back(ctx.v_zero(64));
    for (int i = 0; i < 64; i += 8) {
        std::vector<Vec> xs;
        for (int u = 0; u < 8; u++)
            xs.push_back(
                ctx.v_ld_tnsr({(i + u) * 64, 0, 0, 0, 0}, t, 256));
        for (int u = 0; u < 8; u++)
            accs[static_cast<std::size_t>(u)] =
                ctx.v_add(accs[static_cast<std::size_t>(u)], xs[
                    static_cast<std::size_t>(u)]);
    }
    Report serial = analyzeProgram(serialChain(64));
    Report unrolled = analyzeProgram(p);
    EXPECT_LT(unrolled.dependencyStallCycles,
              serial.dependencyStallCycles);
}

TEST(Analyzer, NarrowAccessFlagsSubGranuleLoads)
{
    Program p;
    TpcContext ctx(p, oneTpc(), 64);
    Tensor t({1 << 12}, DataType::FP32);
    for (int i = 0; i < 8; i++) {
        Vec v = ctx.v_ld_tnsr({i * 16, 0, 0, 0, 0}, t, 64);
        ctx.v_st_tnsr({i * 16, 0, 0, 0, 0}, t, v);
    }
    Report r = analyzeProgram(p);
    // One grouped finding per call-site shape (load + store).
    EXPECT_EQ(r.countFor(rules::narrowAccess), 2);
    double wasted = 0;
    for (const Diagnostic &d : r.diagnostics) {
        if (d.rule == rules::narrowAccess)
            wasted += static_cast<double>(d.wastedBytes);
    }
    // 16 accesses x (256 - 64) wasted bytes each.
    EXPECT_DOUBLE_EQ(wasted, 16 * (256.0 - 64.0));
}

TEST(Analyzer, FullGranuleAccessIsClean)
{
    Program p;
    TpcContext ctx(p, oneTpc());
    Tensor t({1 << 12}, DataType::FP32);
    Vec v = ctx.v_ld_tnsr({0, 0, 0, 0, 0}, t, 256);
    ctx.v_st_tnsr({0, 0, 0, 0, 0}, t, v);
    Report r = analyzeProgram(p);
    EXPECT_EQ(r.countFor(rules::narrowAccess), 0);
}

TEST(Analyzer, RandomShouldStreamDetectsSequentialWalk)
{
    Program p;
    TpcContext ctx(p, oneTpc());
    Tensor t({1 << 16}, DataType::FP32);
    // 16 Random-tagged loads walking consecutive 256 B blocks.
    Vec acc = ctx.v_zero(64);
    for (int i = 0; i < 16; i++) {
        Vec v =
            ctx.v_ld_tnsr({i * 64, 0, 0, 0, 0}, t, 256, Access::Random);
        acc = ctx.v_add(acc, v);
    }
    Report r = analyzeProgram(p);
    EXPECT_EQ(r.countFor(rules::randomShouldStream), 1);
}

TEST(Analyzer, ScatteredRandomAccessIsNotFlagged)
{
    Program p;
    TpcContext ctx(p, oneTpc());
    Tensor t({1 << 16}, DataType::FP32);
    Vec acc = ctx.v_zero(64);
    // Strided: each access skips a block, so no sequential run forms.
    for (int i = 0; i < 16; i++) {
        Vec v = ctx.v_ld_tnsr({i * 128, 0, 0, 0, 0}, t, 256,
                              Access::Random);
        acc = ctx.v_add(acc, v);
    }
    Report r = analyzeProgram(p);
    EXPECT_EQ(r.countFor(rules::randomShouldStream), 0);
}

TEST(Analyzer, DeadValueSeverityDependsOnSlot)
{
    Program p;
    TpcContext ctx(p, oneTpc());
    Tensor t({1 << 12}, DataType::FP32);
    (void)ctx.v_ld_tnsr({0, 0, 0, 0, 0}, t, 256); // Dead load: Info.
    Vec a = ctx.v_ld_tnsr({64, 0, 0, 0, 0}, t, 256);
    Vec b = ctx.v_ld_tnsr({128, 0, 0, 0, 0}, t, 256);
    (void)ctx.v_add(a, b); // Dead compute: Warning.
    ctx.v_st_tnsr({0, 0, 0, 0, 0}, t, a);
    ctx.v_st_tnsr({64, 0, 0, 0, 0}, t, b);
    Report r = analyzeProgram(p);
    EXPECT_EQ(r.countFor(rules::deadValue), 2);
    int infos = 0;
    int warnings = 0;
    for (const Diagnostic &d : r.diagnostics) {
        if (d.rule != rules::deadValue)
            continue;
        (d.severity == Severity::Info ? infos : warnings)++;
    }
    EXPECT_EQ(infos, 1);
    EXPECT_EQ(warnings, 1);
}

TEST(Analyzer, RedundantReloadAccountsWastedBytes)
{
    Program p;
    TpcContext ctx(p, oneTpc());
    Tensor t({1 << 12}, DataType::FP32);
    for (int pass = 0; pass < 3; pass++) {
        Vec v = ctx.v_ld_tnsr({0, 0, 0, 0, 0}, t, 256);
        ctx.v_st_tnsr({(pass + 1) * 64, 0, 0, 0, 0}, t, v);
    }
    Report r = analyzeProgram(p);
    ASSERT_EQ(r.countFor(rules::redundantReload), 1);
    for (const Diagnostic &d : r.diagnostics) {
        if (d.rule == rules::redundantReload) {
            EXPECT_EQ(d.wastedBytes, 2u * 256u); // Two re-reads.
            EXPECT_EQ(d.severity, Severity::Warning); // Fits local mem.
        }
    }
}

TEST(Analyzer, LocalOverflowGradesBySeverity)
{
    Program p;
    TpcContext ctx(p, oneTpc());
    Tensor t({1 << 12}, DataType::FP32);
    Vec v = ctx.v_ld_tnsr({0, 0, 0, 0, 0}, t, 256);
    // 64 lanes x 4 B at lane offset 224: working set 1152 B.
    ctx.v_st_local(224, v);
    AnalyzerOptions opts;
    opts.localMemoryBytes = 1200; // 96% used -> Warning.
    Report warn = analyzeProgram(p, opts);
    EXPECT_EQ(warn.countFor(rules::localOverflow), 1);
    EXPECT_TRUE(warn.hasSeverity(Severity::Warning));
    EXPECT_FALSE(warn.hasSeverity(Severity::Error));
    EXPECT_EQ(warn.localBytesUsed, 1152u);

    opts.localMemoryBytes = 1024; // 113% used -> Error.
    Report err = analyzeProgram(p, opts);
    EXPECT_TRUE(err.hasSeverity(Severity::Error));

    opts.localMemoryBytes = 80 * 1024; // 1.4% -> clean.
    Report clean = analyzeProgram(p, opts);
    EXPECT_EQ(clean.countFor(rules::localOverflow), 0);
}

TEST(Analyzer, InvalidSsaIsReportedNotReplayed)
{
    Program p;
    tpc::Instr instr;
    instr.slot = tpc::Slot::Vector;
    instr.dst = p.newValue();
    instr.src0 = 7; // Never defined.
    p.append(instr);
    Report r = analyzeProgram(p);
    EXPECT_GE(r.countFor(rules::invalidSsa), 1);
    EXPECT_TRUE(r.hasSeverity(Severity::Error));
    // Replay skipped: no timing was computed.
    EXPECT_DOUBLE_EQ(r.cycles, 0.0);
}

TEST(Analyzer, EmptyProgramIsSilent)
{
    Report r = analyzeProgram(Program{});
    EXPECT_TRUE(r.diagnostics.empty());
    EXPECT_DOUBLE_EQ(r.predictedStallCycles, 0.0);
}

TEST(Analyzer, AttributionMatchesPipelineExactly)
{
    for (int length : {4, 32, 200}) {
        Report r = analyzeProgram(serialChain(length));
        EXPECT_NEAR(r.predictedStallCycles, r.measuredStallCycles,
                    1e-9);
        EXPECT_NEAR(r.dependencyStallCycles + r.memoryStallCycles +
                        r.slotStallCycles + r.drainStallCycles,
                    r.measuredStallCycles, 1e-9);
    }
}

TEST(Analyzer, CriticalPathBoundsBelowCycles)
{
    Report r = analyzeProgram(serialChain(64));
    EXPECT_GT(r.criticalPathCycles, 0.0);
    // An infinite-resource schedule can't beat the modeled machine by
    // definition... but the modeled machine can't beat it either.
    EXPECT_LE(r.criticalPathCycles, r.cycles + 1e-9);
}

TEST(Analyzer, PerRuleCapLimitsEmissionNotCounts)
{
    AnalyzerOptions opts;
    opts.maxDiagnosticsPerRule = 2;
    Report r = analyzeProgram(serialChain(64), opts);
    int emitted = 0;
    for (const Diagnostic &d : r.diagnostics) {
        if (d.rule == rules::exposedLatency)
            emitted++;
    }
    EXPECT_EQ(emitted, 2);
    EXPECT_GT(r.countFor(rules::exposedLatency), 2);
}

TEST(Analyzer, CountersExported)
{
    obs::CounterRegistry &reg = obs::CounterRegistry::instance();
    const double programs_before =
        reg.counter("analysis.programs").value();
    const double diags_before =
        reg.counter(std::string("analysis.diag.") +
                    rules::exposedLatency)
            .value();
    Report r = analyzeProgram(serialChain(32));
    EXPECT_DOUBLE_EQ(reg.counter("analysis.programs").value(),
                     programs_before + 1);
    EXPECT_DOUBLE_EQ(
        reg.counter(std::string("analysis.diag.") +
                    rules::exposedLatency)
            .value(),
        diags_before + r.countFor(rules::exposedLatency));

    AnalyzerOptions opts;
    opts.exportCounters = false;
    analyzeProgram(serialChain(32), opts);
    EXPECT_DOUBLE_EQ(reg.counter("analysis.programs").value(),
                     programs_before + 1); // Unchanged.
}

// Degenerate-trace contract: an empty IssueTrace produces a clean
// report — no rule (in particular not slot-imbalance, whose occupancy
// math divides by total cycles) may fire on zero instructions.
TEST(Analyzer, EmptyTraceProducesZeroFindings)
{
    Program p;
    const Report r = analyzeProgram(p);
    EXPECT_TRUE(r.diagnostics.empty());
    EXPECT_TRUE(r.rules.empty());
    EXPECT_EQ(r.instructions, 0u);
    EXPECT_EQ(r.cycles, 0.0);
}

// A single-instruction kernel trivially leaves three slots idle; that
// is not an imbalance finding (there is nothing to rebalance).
TEST(Analyzer, SingleInstructionKernelHasNoSlotImbalance)
{
    Program p;
    TpcContext ctx(p, oneTpc());
    Tensor t({64}, DataType::FP32);
    (void)ctx.v_ld_tnsr({0, 0, 0, 0, 0}, t, 256);
    const Report r = analyzeProgram(p);
    EXPECT_EQ(r.countFor(rules::slotImbalance), 0);
    EXPECT_FALSE(r.hasSeverity(Severity::Warning));
}

TEST(Analyzer, KernelNamePropagates)
{
    Program p;
    p.setKernelName("my_kernel");
    TpcContext ctx(p, oneTpc());
    Tensor t({1 << 12}, DataType::FP32);
    (void)ctx.v_ld_tnsr({0, 0, 0, 0, 0}, t, 64);
    Report r = analyzeProgram(p);
    EXPECT_EQ(r.kernel, "my_kernel");
    ASSERT_FALSE(r.diagnostics.empty());
    for (const Diagnostic &d : r.diagnostics)
        EXPECT_EQ(d.kernel, "my_kernel");
}

} // namespace
} // namespace vespera::analysis
