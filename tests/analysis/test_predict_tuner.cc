/**
 * @file
 * Tests of the static design-space autotuner: top-1 rank agreement
 * with the exhaustive exact-static oracle (the tier-1 acceptance
 * gate), enumeration invariants, thread-count invariance of both the
 * analysis.predict.* counters and the serialized tune report, the
 * vespera-lint-tune/v1 schema, and the bridge onto the warnings
 * baseline ratchet.
 */

#include <cstdint>

#include <gtest/gtest.h>

#include "analysis/predict/tune_report.h"
#include "analysis/predict/tuner.h"
#include "analysis/report.h"
#include "obs/counters.h"
#include "runtime/pool.h"

namespace vespera::analysis {
namespace {

struct PoolGuard
{
    ~PoolGuard() { runtime::Pool::setGlobalThreads(1); }
};

std::vector<std::string>
tpcTunables()
{
    registerTunableKernels();
    std::vector<std::string> names;
    for (const std::string &n : TunableRegistry::instance().names()) {
        if (TunableRegistry::instance().get(n).kind == TuneKind::Tpc)
            names.push_back(n);
    }
    return names;
}

TEST(PredictTuner, TopOneMatchesExhaustiveSearch)
{
    const std::vector<std::string> names = tpcTunables();
    ASSERT_EQ(names.size(), 11u);
    TunerOptions opts;
    opts.exportCounters = false;
    int agree = 0;
    for (const std::string &name : names) {
        const TunableKernel &k = TunableRegistry::instance().get(name);
        const TuneResult res = autotuneKernel(k, opts);
        const TuneCandidate oracle = exhaustiveBest(k, opts);
        // Agreement on the achieved cycles, not the config identity:
        // distinct configs can tie exactly (e.g. TPC counts beyond
        // the row count produce identical per-TPC traces).
        if (res.best.exactCycles <= oracle.exactCycles + 1e-9)
            agree++;
        else
            ADD_FAILURE() << name << ": tuner " << res.best.exactCycles
                          << " vs exhaustive " << oracle.exactCycles;
    }
    // The acceptance gate: >= 9 of the 11 registry kernels.
    EXPECT_GE(agree, 9);
}

TEST(PredictTuner, MmeGeometryMatchesExhaustive)
{
    registerTunableKernels();
    TunerOptions opts;
    opts.exportCounters = false;
    for (const char *name : {"gemm_decode_qkv", "gemm_prefill_mlp"}) {
        const TunableKernel &k = TunableRegistry::instance().get(name);
        EXPECT_EQ(k.kind, TuneKind::Mme);
        const TuneResult res = autotuneKernel(k, opts);
        const TuneCandidate oracle = exhaustiveBest(k, opts);
        EXPECT_LE(res.best.exactCycles, oracle.exactCycles + 1e-9)
            << name;
    }
}

TEST(PredictTuner, EnumerationInvariants)
{
    registerTunableKernels();
    for (const std::string &name : TunableRegistry::instance().names()) {
        const TunableKernel &k = TunableRegistry::instance().get(name);
        const std::vector<TuneConfig> configs = enumerateConfigs(k);
        ASSERT_FALSE(configs.empty()) << name;
        EXPECT_EQ(configs.size(), k.configCount()) << name;
        // The shipped configuration leads, exactly once.
        EXPECT_TRUE(configs.front() == k.base) << name;
        for (std::size_t i = 0; i < configs.size(); i++) {
            for (std::size_t j = i + 1; j < configs.size(); j++)
                EXPECT_FALSE(configs[i] == configs[j])
                    << name << " duplicate at " << i << "," << j;
            EXPECT_EQ(configs[i].size, k.base.size) << name;
        }
    }
}

TEST(PredictTuner, NeverRecommendsARegression)
{
    registerTunableKernels();
    TunerOptions opts;
    opts.exportCounters = false;
    for (const TuneResult &r : autotuneAll("", opts)) {
        EXPECT_LE(r.best.exactCycles, r.base.exactCycles) << r.kernel;
        EXPECT_GE(r.improvementFrac, 0.0) << r.kernel;
        EXPECT_GE(r.configsScreened, 1u) << r.kernel;
        EXPECT_GE(r.exactVerifications, 1u) << r.kernel;
    }
}

TEST(PredictTuner, ReducedAxesBoundTheSpace)
{
    registerTunableKernels();
    const TunableKernel &k =
        TunableRegistry::instance().get("stream_triad_tuned");
    const TunableKernel r = reduceAxes(k);
    EXPECT_LT(enumerateConfigs(r).size(), enumerateConfigs(k).size());
    for (const TuneConfig &c : enumerateConfigs(r)) {
        bool inFull = false;
        for (const TuneConfig &f : enumerateConfigs(k))
            inFull = inFull || f == c;
        EXPECT_TRUE(inFull || c == r.base);
    }
}

TEST(PredictTuner, CountersAreThreadCountInvariant)
{
    PoolGuard guard;
    registerTunableKernels();
    const TunableKernel &k =
        TunableRegistry::instance().get("stream_triad_tuned");
    auto &registry = obs::CounterRegistry::instance();
    auto run = [&](int threads) {
        runtime::Pool::setGlobalThreads(threads);
        for (const char *name :
             {"analysis.predict.configs_screened",
              "analysis.predict.exact_verifications",
              "analysis.predict.anchor_traces",
              "analysis.predict.proxy_error_ppm"}) {
            registry.counter(name).reset();
        }
        (void)autotuneKernel(k);
        struct View
        {
            double value;
            std::uint64_t updates;
        };
        std::vector<View> out;
        for (const char *name :
             {"analysis.predict.configs_screened",
              "analysis.predict.exact_verifications",
              "analysis.predict.anchor_traces",
              "analysis.predict.proxy_error_ppm"}) {
            const obs::Counter &c = registry.counter(name);
            out.push_back({c.value(), c.updates()});
        }
        return out;
    };
    const auto serial = run(1);
    EXPECT_GT(serial[0].value, 0);
    for (int threads : {2, 4, 8}) {
        const auto parallel = run(threads);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); i++) {
            EXPECT_EQ(parallel[i].value, serial[i].value)
                << "counter " << i << " at " << threads << " threads";
            EXPECT_EQ(parallel[i].updates, serial[i].updates)
                << "counter " << i << " at " << threads << " threads";
        }
    }
}

TEST(PredictTuner, ReportIsByteIdenticalAcrossThreads)
{
    PoolGuard guard;
    registerTunableKernels();
    TunerOptions opts;
    opts.exportCounters = false;
    auto reportAt = [&](int threads) {
        runtime::Pool::setGlobalThreads(threads);
        return json::serialize(
            tuneReportJson(autotuneAll("stream", opts)));
    };
    const std::string serial = reportAt(1);
    EXPECT_EQ(reportAt(4), serial);
    EXPECT_EQ(reportAt(8), serial);
    // And across repeated runs at the same thread count.
    EXPECT_EQ(reportAt(4), serial);
}

TEST(PredictTuner, TuneReportSchema)
{
    registerTunableKernels();
    TunerOptions opts;
    opts.exportCounters = false;
    const std::vector<TuneResult> results = autotuneAll("embedding", opts);
    ASSERT_EQ(results.size(), 3u);
    const json::Value doc = tuneReportJson(results);
    ASSERT_TRUE(doc.isObject());
    ASSERT_NE(doc.find("schema"), nullptr);
    EXPECT_EQ(doc.find("schema")->str(), "vespera-lint-tune/v1");
    const json::Value *kernels = doc.find("kernels");
    ASSERT_NE(kernels, nullptr);
    ASSERT_EQ(kernels->array().size(), 3u);
    for (const json::Value &k : kernels->array()) {
        for (const char *field :
             {"kernel", "shape", "base", "best", "verified",
              "configs_screened", "exact_verifications",
              "proxy_error_ppm", "improvement_frac"}) {
            EXPECT_NE(k.find(field), nullptr) << field;
        }
        const json::Value *best = k.find("best");
        ASSERT_NE(best->find("config"), nullptr);
        EXPECT_NE(best->find("config")->find("label"), nullptr);
        EXPECT_NE(best->find("exact_cycles"), nullptr);
    }
    const json::Value *totals = doc.find("totals");
    ASSERT_NE(totals, nullptr);
    EXPECT_DOUBLE_EQ(totals->find("kernels")->number(), 3.0);
    EXPECT_GT(totals->find("configs_screened")->number(), 0.0);
}

TuneResult
syntheticResult(double baseCycles, double bestCycles)
{
    TuneResult r;
    r.kernel = "synthetic";
    r.shape = "size=64";
    r.base.config.size = 64;
    r.base.config.unroll = 2;
    r.base.exactCycles = baseCycles;
    r.best.config.size = 64;
    r.best.config.unroll = 8;
    r.best.exactCycles = bestCycles;
    r.improvementFrac = 1.0 - bestCycles / baseCycles;
    r.configsScreened = 10;
    r.exactVerifications = 3;
    return r;
}

TEST(PredictTuner, LintEntryBridge)
{
    // >10% improvement: Warning, ratcheted by the baseline.
    {
        const std::vector<LintEntry> entries =
            tuneToLintEntries({syntheticResult(1000, 800)});
        ASSERT_EQ(entries.size(), 1u);
        ASSERT_EQ(entries[0].report.diagnostics.size(), 1u);
        const Diagnostic &d = entries[0].report.diagnostics[0];
        EXPECT_EQ(d.rule, rules::tuneOpportunity);
        EXPECT_EQ(d.severity, Severity::Warning);
        EXPECT_NE(d.fixHint.find("unroll=8"), std::string::npos);
        EXPECT_DOUBLE_EQ(d.costCycles, 200);
    }
    // 2-10%: Info (visible, not ratcheted).
    {
        const std::vector<LintEntry> entries =
            tuneToLintEntries({syntheticResult(1000, 950)});
        ASSERT_EQ(entries[0].report.diagnostics.size(), 1u);
        EXPECT_EQ(entries[0].report.diagnostics[0].severity,
                  Severity::Info);
    }
    // Already optimal: clean entry.
    {
        const std::vector<LintEntry> entries =
            tuneToLintEntries({syntheticResult(1000, 1000)});
        EXPECT_TRUE(entries[0].report.diagnostics.empty());
    }
}

TEST(PredictTuner, BaselineRatchetAppliesToTuneEntries)
{
    const std::vector<LintEntry> entries =
        tuneToLintEntries({syntheticResult(1000, 700)});
    const json::Value baseline = baselineJson(entries);
    // Same run passes against its own baseline.
    EXPECT_TRUE(checkAgainstBaseline(entries, baseline).ok);
    // A new warning on a previously clean kernel fails.
    std::vector<LintEntry> worse = entries;
    worse.push_back(tuneToLintEntries({[&] {
        TuneResult r = syntheticResult(1000, 700);
        r.kernel = "synthetic2";
        return r;
    }()})[0]);
    const BaselineCheck check = checkAgainstBaseline(worse, baseline);
    EXPECT_FALSE(check.ok);
    ASSERT_FALSE(check.failures.empty());
    EXPECT_NE(check.failures[0].find("synthetic2"), std::string::npos);
}

TEST(PredictTuner, TextReportNamesOpportunities)
{
    const std::string text =
        tuneReportText({syntheticResult(1000, 800)}, false);
    EXPECT_NE(text.find("synthetic"), std::string::npos);
    EXPECT_NE(text.find("20.0% faster"), std::string::npos);
    EXPECT_NE(text.find("1 opportunity"), std::string::npos);
}

} // namespace
} // namespace vespera::analysis
