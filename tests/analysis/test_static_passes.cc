/**
 * @file
 * Tests of the static dataflow passes: each pass fires on a trace
 * crafted to contain its anti-pattern, the static-only passes
 * (register-pressure, swp-opportunity) report sensible structure, and
 * degenerate traces (empty, single-instruction) stay clean — the same
 * edge-case contract the trace analyzer honors.
 */

#include <gtest/gtest.h>

#include "analysis/static/static_analyzer.h"
#include "tpc/context.h"

namespace vespera::analysis {
namespace {

using tpc::Access;
using tpc::MemberRange;
using tpc::Program;
using tpc::Tensor;
using tpc::TpcContext;
using tpc::Vec;

MemberRange
oneTpc()
{
    return {{0, 0, 0, 0, 0}, {1, 1, 1, 1, 1}};
}

Program
serialChain(int length)
{
    Program p;
    TpcContext ctx(p, oneTpc());
    Tensor t({1 << 16}, DataType::FP32);
    Vec acc = ctx.v_ld_tnsr({0, 0, 0, 0, 0}, t, 256);
    for (int i = 1; i <= length; i++) {
        Vec x = ctx.v_ld_tnsr({i * 64, 0, 0, 0, 0}, t, 256);
        acc = ctx.v_add(acc, x);
    }
    ctx.v_st_tnsr({0, 0, 0, 0, 0}, t, acc);
    return p;
}

TEST(StaticPasses, ExposedLatencyFiresOnSerialChain)
{
    const StaticReport r = analyzeProgramStatic(serialChain(64));
    EXPECT_GT(r.report.countFor(rules::exposedLatency), 0);
    EXPECT_GT(r.report.dependencyStallCycles, 0.0);
}

TEST(StaticPasses, EveryFindingCarriesAFixHint)
{
    const StaticReport r = analyzeProgramStatic(serialChain(64));
    ASSERT_FALSE(r.report.diagnostics.empty());
    for (const Diagnostic &d : r.report.diagnostics)
        EXPECT_FALSE(d.fixHint.empty()) << d.rule;
}

TEST(StaticPasses, NarrowAccessNamesTheEnclosingLoop)
{
    Program p;
    TpcContext ctx(p, oneTpc(), 64);
    Tensor t({1 << 12}, DataType::FP32);
    for (int i = 0; i < 8; i++) {
        Vec v = ctx.v_ld_tnsr({i * 16, 0, 0, 0, 0}, t, 64);
        ctx.v_st_tnsr({i * 16, 0, 0, 0, 0}, t, v);
    }
    const StaticReport r = analyzeProgramStatic(p);
    EXPECT_EQ(r.report.countFor(rules::narrowAccess), 2);
    bool names_loop = false;
    for (const Diagnostic &d : r.report.diagnostics) {
        if (d.rule == rules::narrowAccess &&
            d.message.find("in loop #") != std::string::npos) {
            names_loop = true;
        }
    }
    EXPECT_TRUE(names_loop);
}

TEST(StaticPasses, RandomShouldStreamConfirmsAffineStride)
{
    Program p;
    TpcContext ctx(p, oneTpc());
    Tensor t({1 << 16}, DataType::FP32);
    for (int i = 0; i < 8; i++) {
        Vec v = ctx.v_ld_tnsr({i * 64, 0, 0, 0, 0}, t, 256,
                              Access::Random);
        ctx.v_st_local(0, v);
    }
    const StaticReport r = analyzeProgramStatic(p);
    ASSERT_EQ(r.report.countFor(rules::randomShouldStream), 1);
    for (const Diagnostic &d : r.report.diagnostics) {
        if (d.rule == rules::randomShouldStream) {
            // The loop's symbolic stride analysis proved the walk
            // contiguous, so the diagnostic says so.
            EXPECT_NE(d.message.find("provably affine"),
                      std::string::npos)
                << d.message;
        }
    }
}

TEST(StaticPasses, RegisterPressureFlagsLongLiveRanges)
{
    // 64 loads all live until the reduction at the end: peak live
    // state is 64 x 64 lanes x 4 B = 16 KB.
    Program p;
    TpcContext ctx(p, oneTpc());
    Tensor t({1 << 16}, DataType::FP32);
    std::vector<Vec> xs;
    for (int i = 0; i < 64; i++)
        xs.push_back(ctx.v_ld_tnsr({i * 64, 0, 0, 0, 0}, t, 256));
    Vec acc = xs[0];
    for (int i = 1; i < 64; i++)
        acc = ctx.v_add(acc, xs[static_cast<std::size_t>(i)]);
    ctx.v_st_tnsr({0, 0, 0, 0, 0}, t, acc);

    StaticAnalyzerOptions opt;
    opt.localMemoryBytes = 8 * 1024; // Force the budget comparison.
    const StaticReport r = analyzeProgramStatic(p, opt);
    EXPECT_GE(r.peakLiveBytes, 16u * 1024u);
    EXPECT_GE(r.maxLiveValues, 64u);
    ASSERT_EQ(r.report.countFor(rules::registerPressure), 1);
    for (const Diagnostic &d : r.report.diagnostics) {
        if (d.rule == rules::registerPressure)
            EXPECT_EQ(d.severity, Severity::Warning);
    }

    // At the real 80 KB budget the same trace is fine.
    const StaticReport ok = analyzeProgramStatic(p);
    EXPECT_EQ(ok.report.countFor(rules::registerPressure), 0);
}

TEST(StaticPasses, SwpOpportunityFlagsLatencyBoundLoop)
{
    // Serial reduction: achieved II ~ load latency + issue, while the
    // recurrence/resource bound is the 4-cycle add chain — a textbook
    // software-pipelining candidate.
    const StaticReport r = analyzeProgramStatic(serialChain(32));
    ASSERT_GE(r.report.countFor(rules::swpOpportunity), 1);
    for (const Diagnostic &d : r.report.diagnostics) {
        if (d.rule == rules::swpOpportunity) {
            EXPECT_EQ(d.severity, Severity::Info);
            EXPECT_GT(d.costCycles, 0.0);
            EXPECT_NE(d.message.find("initiation interval"),
                      std::string::npos);
        }
    }
}

TEST(StaticPasses, SwpQuietOnResourceBoundLoop)
{
    // Back-to-back independent loads saturate the memory interface:
    // achieved II equals the resource bound, nothing to pipeline.
    Program p;
    TpcContext ctx(p, oneTpc());
    Tensor t({1 << 16}, DataType::FP32);
    for (int i = 0; i < 32; i++)
        (void)ctx.v_ld_tnsr({i * 64, 0, 0, 0, 0}, t, 256);
    const StaticReport r = analyzeProgramStatic(p);
    EXPECT_EQ(r.report.countFor(rules::swpOpportunity), 0);
}

TEST(StaticPasses, LocalOverflowEscalatesToError)
{
    Program p;
    TpcContext ctx(p, oneTpc());
    Vec z = ctx.v_zero(64);
    ctx.v_st_local(1000, z); // High-water (1000 + 64) * 4 B.
    StaticAnalyzerOptions opt;
    opt.localMemoryBytes = 2 * 1024;
    const StaticReport r = analyzeProgramStatic(p, opt);
    EXPECT_EQ(r.report.localBytesUsed, (1000u + 64u) * 4u);
    ASSERT_EQ(r.report.countFor(rules::localOverflow), 1);
    EXPECT_TRUE(r.report.hasSeverity(Severity::Error));
}

TEST(StaticPasses, InvalidSsaShortCircuitsWithErrors)
{
    Program p;
    const std::int32_t v = p.newValue();
    tpc::Instr use;
    use.slot = tpc::Slot::Vector;
    use.src0 = v;
    use.dst = p.newValue();
    p.append(use);
    const StaticReport r = analyzeProgramStatic(p);
    EXPECT_EQ(r.report.countFor(rules::invalidSsa), 1);
    EXPECT_TRUE(r.report.hasSeverity(Severity::Error));
    // No schedule or structure on malformed traces.
    EXPECT_EQ(r.predictedCycles(), 0.0);
    EXPECT_EQ(r.blockCount, 0u);
}

TEST(StaticPasses, PerRuleEmissionCapKeepsFullCounts)
{
    StaticAnalyzerOptions opt;
    opt.maxDiagnosticsPerRule = 2;
    const StaticReport r = analyzeProgramStatic(serialChain(64), opt);
    const int total = r.report.countFor(rules::exposedLatency);
    EXPECT_GT(total, 2);
    int emitted = 0;
    for (const Diagnostic &d : r.report.diagnostics) {
        if (d.rule == rules::exposedLatency)
            emitted++;
    }
    EXPECT_EQ(emitted, 2);
}

// The degenerate-trace contract, shared with the trace analyzer
// (tests/analysis/test_analyzer.cc pins the trace side).
TEST(StaticPasses, EmptyProgramProducesZeroFindings)
{
    Program p;
    const StaticReport r = analyzeProgramStatic(p);
    EXPECT_TRUE(r.report.diagnostics.empty());
    EXPECT_TRUE(r.report.rules.empty());
    EXPECT_EQ(r.predictedCycles(), 0.0);
}

TEST(StaticPasses, SingleInstructionKernelHasNoSlotImbalance)
{
    Program p;
    TpcContext ctx(p, oneTpc());
    Tensor t({64}, DataType::FP32);
    (void)ctx.v_ld_tnsr({0, 0, 0, 0, 0}, t, 256);
    const StaticReport r = analyzeProgramStatic(p);
    EXPECT_EQ(r.report.countFor(rules::slotImbalance), 0);
    // The lone dead load may legitimately report as Info; nothing at
    // Warning or above.
    EXPECT_FALSE(r.report.hasSeverity(Severity::Warning));
}

} // namespace
} // namespace vespera::analysis
