/**
 * @file
 * Tests of the traceable-kernel registry: the built-in corpus covers
 * every kernel family, traces capture real instructions with kernel
 * names, and the analyzer's stall prediction matches the pipeline's
 * measurement on every captured trace (the acceptance criterion).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/analyzer.h"
#include "analysis/kernel_registry.h"

namespace vespera::analysis {
namespace {

class RegistryTest : public ::testing::Test
{
  protected:
    void SetUp() override { registerBuiltinKernels(); }
};

TEST_F(RegistryTest, BuiltinCorpusCoversKernelFamilies)
{
    KernelRegistry &reg = KernelRegistry::instance();
    EXPECT_GE(reg.size(), 10u);
    const std::vector<std::string> names = reg.names();
    for (const char *expected :
         {"softmax", "layernorm", "rmsnorm", "gather", "scatter",
          "embedding_sdk", "embedding_single", "embedding_batched",
          "port_saxpy", "port_softmax", "port_transpose"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << expected;
    }
}

TEST_F(RegistryTest, RegistrationIsIdempotent)
{
    const std::size_t before = KernelRegistry::instance().size();
    registerBuiltinKernels();
    EXPECT_EQ(KernelRegistry::instance().size(), before);
}

TEST_F(RegistryTest, TraceCapturesNamedNonEmptyProgram)
{
    const TracedKernel t =
        KernelRegistry::instance().trace("softmax");
    EXPECT_EQ(t.name, "softmax");
    EXPECT_FALSE(t.shape.empty());
    EXPECT_FALSE(t.program.empty());
    EXPECT_EQ(t.program.kernelName(), "softmax");
    // Phase labels survived capture.
    bool labeled = false;
    for (const tpc::Instr &i : t.program.instrs()) {
        if (t.program.label(i.opLabel).find("phase") !=
            std::string::npos) {
            labeled = true;
        }
    }
    EXPECT_TRUE(labeled);
}

TEST_F(RegistryTest, FilterSelectsSubset)
{
    const auto traced =
        KernelRegistry::instance().traceAll("stream_");
    EXPECT_EQ(traced.size(), 3u);
    for (const TracedKernel &t : traced)
        EXPECT_NE(t.name.find("stream_"), std::string::npos);
}

TEST_F(RegistryTest, TracesAreDeterministic)
{
    KernelRegistry &reg = KernelRegistry::instance();
    const TracedKernel a = reg.trace("gather");
    const TracedKernel b = reg.trace("gather");
    ASSERT_EQ(a.program.instrs().size(), b.program.instrs().size());
    for (std::size_t i = 0; i < a.program.instrs().size(); i++) {
        EXPECT_EQ(a.program.instrs()[i].memOffset,
                  b.program.instrs()[i].memOffset);
        EXPECT_EQ(a.program.instrs()[i].dst,
                  b.program.instrs()[i].dst);
    }
}

// The ISSUE acceptance criterion: on every kernel of the sweep, the
// analyzer's predicted stall cycles match evaluatePipeline's
// measurement (we require exact-by-construction, well inside the
// 10% acceptance bound).
TEST_F(RegistryTest, StallPredictionMatchesPipelineOnAllKernels)
{
    for (const TracedKernel &t :
         KernelRegistry::instance().traceAll()) {
        const Report r = analyzeProgram(t.program);
        EXPECT_FALSE(r.kernel.empty()) << t.name;
        EXPECT_NEAR(r.predictedStallCycles, r.measuredStallCycles,
                    1e-9)
            << t.name;
        if (r.measuredStallCycles > 0) {
            EXPECT_LE(std::abs(r.predictedStallCycles -
                               r.measuredStallCycles) /
                          r.measuredStallCycles,
                      0.10)
                << t.name;
        }
    }
}

// Every registered kernel — the 11 hand-written kernels plus the
// 21-entry migration corpus — round-trips through by-name lookup: the
// traced result carries the registry name, a non-empty program, and a
// named embedded kernel. (Registry names are variant names —
// "stream_triad_tuned" traces the "stream_TRIAD" kernel — so the
// embedded name need not equal the registry name.)
TEST_F(RegistryTest, AllKernelsRoundTripThroughLookup)
{
    KernelRegistry &reg = KernelRegistry::instance();
    EXPECT_EQ(reg.size(), 32u);
    for (const std::string &name : reg.names()) {
        const TracedKernel t = reg.trace(name);
        EXPECT_EQ(t.name, name);
        EXPECT_FALSE(t.program.empty()) << name;
        EXPECT_FALSE(t.program.kernelName().empty()) << name;
    }
}

TEST_F(RegistryTest, DuplicateRegistrationFailsLoudly)
{
    KernelRegistry &reg = KernelRegistry::instance();
    EXPECT_DEATH(reg.add("softmax",
                         [] { return TracedKernel{}; }),
                 "duplicate kernel registration");
}

TEST_F(RegistryTest, UnknownKernelFailsLoudly)
{
    EXPECT_DEATH(
        (void)KernelRegistry::instance().trace("no_such_kernel"),
        "unknown kernel");
}

// The known-bad STREAM shape must trip the paper's two headline rules;
// the tuned shape must not trip narrow-access.
TEST_F(RegistryTest, NaiveStreamIsFlaggedTunedIsNot)
{
    KernelRegistry &reg = KernelRegistry::instance();
    const Report naive =
        analyzeProgram(reg.trace("stream_triad_naive").program);
    EXPECT_GT(naive.countFor(rules::narrowAccess), 0);
    EXPECT_GT(naive.countFor(rules::exposedLatency), 0);

    const Report tuned =
        analyzeProgram(reg.trace("stream_triad_tuned").program);
    EXPECT_EQ(tuned.countFor(rules::narrowAccess), 0);
    EXPECT_LT(tuned.dependencyStallCycles,
              naive.dependencyStallCycles);
}

} // namespace
} // namespace vespera::analysis
