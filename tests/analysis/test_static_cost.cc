/**
 * @file
 * Cross-validation of the static cost model against the cycle
 * simulator — the tentpole acceptance criteria:
 *
 *  - predicted issue cycles within ±10% of tpc::evaluatePipeline's
 *    measurement for every registered kernel (the two predictors are
 *    independent: the cost model consumes only the lifted IR, never
 *    the IssueTrace — divergence means one of them has a bug);
 *  - static/trace finding-set parity for every shared rule;
 *  - the vespera-lint-static/v1 JSON document shape.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "analysis/analyzer.h"
#include "analysis/kernel_registry.h"
#include "analysis/static/static_report.h"
#include "tpc/context.h"
#include "tpc/pipeline.h"

namespace vespera::analysis {
namespace {

using tpc::MemberRange;
using tpc::Program;
using tpc::Tensor;
using tpc::TpcContext;
using tpc::Vec;

MemberRange
oneTpc()
{
    return {{0, 0, 0, 0, 0}, {1, 1, 1, 1, 1}};
}

class StaticCostTest : public ::testing::Test
{
  protected:
    void SetUp() override { registerBuiltinKernels(); }
};

// Acceptance criterion: ±10% on all registered kernels, enforced as a
// tier-1 ctest. In practice the two predictors agree exactly — both
// derive from the same issue rules — so any drift inside the band is
// still a flag worth reading the assertion message for.
TEST_F(StaticCostTest, PredictsIssueCyclesWithinTenPercent)
{
    const auto traced = KernelRegistry::instance().traceAll();
    ASSERT_GE(traced.size(), 11u);
    for (const TracedKernel &t : traced) {
        const tpc::PipelineResult measured = tpc::evaluatePipeline(
            t.program, tpc::TpcParams::forGaudi2());
        const StaticReport predicted =
            analyzeProgramStatic(t.program);
        ASSERT_GT(measured.cycles, 0.0) << t.name;
        const double err =
            std::abs(predicted.predictedCycles() - measured.cycles) /
            measured.cycles;
        EXPECT_LE(err, 0.10)
            << t.name << ": static=" << predicted.predictedCycles()
            << " simulator=" << measured.cycles
            << " — simulator-or-cost-model bug";
    }
}

// The per-cause stall attribution must also track the simulator, not
// just the total (a cost model that lands the right total for the
// wrong reason would mislead every downstream diagnostic).
TEST_F(StaticCostTest, StallAttributionTracksSimulator)
{
    for (const TracedKernel &t :
         KernelRegistry::instance().traceAll()) {
        const Report trace = analyzeProgram(t.program);
        const StaticReport st = analyzeProgramStatic(t.program);
        EXPECT_NEAR(st.report.predictedStallCycles,
                    trace.predictedStallCycles,
                    0.10 * trace.predictedStallCycles + 1e-6)
            << t.name;
        EXPECT_NEAR(st.report.dependencyStallCycles,
                    trace.dependencyStallCycles,
                    0.10 * trace.dependencyStallCycles + 1e-6)
            << t.name;
        EXPECT_NEAR(st.report.memoryStallCycles,
                    trace.memoryStallCycles,
                    0.10 * trace.memoryStallCycles + 1e-6)
            << t.name;
    }
}

// Acceptance criterion: every trace rule with a static counterpart
// reaches the same finding set through both pipelines.
TEST_F(StaticCostTest, StaticTraceRuleParityOnAllKernels)
{
    const std::set<std::string> static_only = {
        rules::registerPressure, rules::swpOpportunity,
        // The migration-aware passes only exist in the static
        // pipeline (they read "port:*" labels pre-execution).
        rules::divergenceEmulation, rules::coalescingLoss,
        rules::stagingRedundancy, rules::loweredPipelining};
    for (const TracedKernel &t :
         KernelRegistry::instance().traceAll()) {
        const Report trace = analyzeProgram(t.program);
        const StaticReport st = analyzeProgramStatic(t.program);
        std::set<std::string> rule_names;
        for (const auto &[rule, summary] : trace.rules)
            rule_names.insert(rule);
        for (const auto &[rule, summary] : st.report.rules) {
            if (static_only.count(rule) == 0)
                rule_names.insert(rule);
        }
        for (const std::string &rule : rule_names) {
            EXPECT_EQ(st.report.countFor(rule), trace.countFor(rule))
                << t.name << " rule " << rule;
        }
    }
}

// The analytic roofline terms really are lower bounds on the schedule.
TEST_F(StaticCostTest, ScheduleRespectsItsLowerBounds)
{
    for (const TracedKernel &t :
         KernelRegistry::instance().traceAll()) {
        const StaticReport st = analyzeProgramStatic(t.program);
        const StaticSchedule &s = st.schedule;
        EXPECT_GE(s.cycles, s.criticalPathBound - 1e-9) << t.name;
        EXPECT_GE(s.cycles, s.slotResourceBound - 1e-9) << t.name;
        EXPECT_GE(s.cycles, s.memoryBound - 1e-9) << t.name;
        EXPECT_DOUBLE_EQ(s.lowerBound(),
                         std::max({s.criticalPathBound,
                                   s.slotResourceBound,
                                   s.memoryBound}));
    }
}

// Exact agreement on a hand-built trace: the shared issue rules mean
// the static scheduler and the pipeline see the same machine.
TEST_F(StaticCostTest, ExactAgreementOnSerialChain)
{
    Program p;
    TpcContext ctx(p, oneTpc());
    Tensor t({1 << 16}, DataType::FP32);
    Vec acc = ctx.v_ld_tnsr({0, 0, 0, 0, 0}, t, 256);
    for (int i = 1; i <= 32; i++) {
        Vec x = ctx.v_ld_tnsr({i * 64, 0, 0, 0, 0}, t, 256);
        acc = ctx.v_add(acc, x);
    }
    ctx.v_st_tnsr({0, 0, 0, 0, 0}, t, acc);

    const tpc::PipelineResult pr =
        tpc::evaluatePipeline(p, tpc::TpcParams::forGaudi2());
    const StaticReport st = analyzeProgramStatic(p);
    EXPECT_DOUBLE_EQ(st.predictedCycles(), pr.cycles);
    EXPECT_DOUBLE_EQ(st.report.predictedStallCycles, pr.stallCycles);
}

TEST_F(StaticCostTest, StaticJsonMatchesDocumentedSchema)
{
    std::vector<StaticLintEntry> entries;
    for (TracedKernel &t : KernelRegistry::instance().traceAll()) {
        StaticLintEntry e;
        e.kernel = t.name;
        e.shape = t.shape;
        e.report = analyzeProgramStatic(t.program);
        entries.push_back(std::move(e));
    }
    const json::Value doc = staticLintReportJson(entries);

    const json::Value *schema = doc.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->str(), "vespera-lint-static/v1");

    const json::Value *kernels = doc.find("kernels");
    ASSERT_NE(kernels, nullptr);
    ASSERT_TRUE(kernels->isArray());
    ASSERT_EQ(kernels->array().size(), entries.size());
    for (const json::Value &k : kernels->array()) {
        for (const char *key :
             {"kernel", "shape", "ir", "cost", "rules",
              "diagnostics"}) {
            EXPECT_NE(k.find(key), nullptr) << key;
        }
        const json::Value *ir = k.find("ir");
        for (const char *key :
             {"instructions", "blocks", "loops", "max_loop_depth",
              "max_live_values", "peak_live_bytes"}) {
            EXPECT_NE(ir->find(key), nullptr) << key;
        }
        const json::Value *cost = k.find("cost");
        for (const char *key :
             {"predicted_cycles", "stall_cycles",
              "dependency_stall_cycles", "memory_stall_cycles",
              "slot_stall_cycles", "drain_stall_cycles",
              "critical_path_bound", "slot_resource_bound",
              "memory_bound"}) {
            EXPECT_NE(cost->find(key), nullptr) << key;
        }
        // Every emitted diagnostic exposes its fix hint.
        for (const json::Value &d : k.find("diagnostics")->array()) {
            ASSERT_NE(d.find("fix_hint"), nullptr);
            EXPECT_FALSE(d.find("fix_hint")->str().empty());
        }
    }
    const json::Value *totals = doc.find("totals");
    ASSERT_NE(totals, nullptr);
    for (const char *key : {"errors", "warnings", "infos"})
        EXPECT_NE(totals->find(key), nullptr) << key;

    // The baseline bridge: a static run ratchets through the same
    // machinery as the trace linter.
    const json::Value baseline =
        baselineJson(toLintEntries(entries));
    const BaselineCheck check =
        checkAgainstBaseline(toLintEntries(entries), baseline);
    EXPECT_TRUE(check.ok);
}

} // namespace
} // namespace vespera::analysis
