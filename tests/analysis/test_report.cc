/**
 * @file
 * Tests of lint-report rendering (text + JSON) and the warnings
 * baseline used to gate CI.
 */

#include <gtest/gtest.h>

#include "analysis/report.h"

namespace vespera::analysis {
namespace {

Diagnostic
makeDiag(const char *rule, Severity sev, const char *kernel)
{
    Diagnostic d;
    d.rule = rule;
    d.severity = sev;
    d.kernel = kernel;
    d.instrIndex = 3;
    d.opLabel = "v_add";
    d.message = "test finding";
    d.costCycles = 5;
    d.wastedBytes = 128;
    return d;
}

LintEntry
makeEntry(const char *kernel,
          std::vector<Diagnostic> diags = {})
{
    LintEntry e;
    e.kernel = kernel;
    e.shape = "n=8";
    e.report.kernel = kernel;
    e.report.instructions = 10;
    e.report.cycles = 100;
    for (Diagnostic &d : diags) {
        e.report.rules[d.rule].count++;
        e.report.diagnostics.push_back(std::move(d));
    }
    return e;
}

TEST(Report, JsonRoundTripsThroughParser)
{
    std::vector<LintEntry> entries;
    entries.push_back(makeEntry(
        "k1", {makeDiag(rules::narrowAccess, Severity::Warning, "k1"),
               makeDiag(rules::deadValue, Severity::Info, "k1")}));
    entries.push_back(makeEntry("k2"));

    const std::string doc =
        json::serialize(lintReportJson(entries));
    json::Value v;
    std::string error;
    ASSERT_TRUE(json::parse(doc, v, &error)) << error;

    ASSERT_NE(v.find("schema"), nullptr);
    EXPECT_EQ(v.find("schema")->str(), "vespera-lint/v1");
    ASSERT_NE(v.find("traces"), nullptr);
    EXPECT_EQ(v.find("traces")->array().size(), 2u);
    EXPECT_DOUBLE_EQ(v.findPath("totals.warnings")->number(), 1.0);
    EXPECT_DOUBLE_EQ(v.findPath("totals.infos")->number(), 1.0);
    EXPECT_DOUBLE_EQ(v.findPath("totals.errors")->number(), 0.0);

    const json::Value &trace = v.find("traces")->array().front();
    const json::Value *diags =
        trace.find("report")->find("diagnostics");
    ASSERT_NE(diags, nullptr);
    ASSERT_EQ(diags->array().size(), 2u);
    EXPECT_EQ(diags->array()[0].find("rule")->str(),
              rules::narrowAccess);
    EXPECT_DOUBLE_EQ(diags->array()[0].find("wasted_bytes")->number(),
                     128.0);
}

TEST(Report, TextMentionsFindingsAndTotals)
{
    std::vector<LintEntry> entries;
    entries.push_back(makeEntry(
        "softmax",
        {makeDiag(rules::exposedLatency, Severity::Warning,
                  "softmax")}));
    entries.push_back(makeEntry("clean_kernel"));
    const std::string text = lintReportText(entries, false);
    EXPECT_NE(text.find("softmax"), std::string::npos);
    EXPECT_NE(text.find(rules::exposedLatency), std::string::npos);
    EXPECT_NE(text.find("OK  clean_kernel"), std::string::npos);
    EXPECT_NE(text.find("1 warnings"), std::string::npos);
}

TEST(Report, BaselineAcceptsItself)
{
    std::vector<LintEntry> entries;
    entries.push_back(makeEntry(
        "k", {makeDiag(rules::narrowAccess, Severity::Warning, "k"),
              makeDiag(rules::narrowAccess, Severity::Warning, "k")}));
    const json::Value baseline = baselineJson(entries);
    const BaselineCheck check =
        checkAgainstBaseline(entries, baseline);
    EXPECT_TRUE(check.ok) << check.failures.front();
}

TEST(Report, BaselineRejectsNewWarnings)
{
    std::vector<LintEntry> old_run;
    old_run.push_back(makeEntry(
        "k", {makeDiag(rules::narrowAccess, Severity::Warning, "k")}));
    const json::Value baseline = baselineJson(old_run);

    std::vector<LintEntry> new_run;
    new_run.push_back(makeEntry(
        "k", {makeDiag(rules::narrowAccess, Severity::Warning, "k"),
              makeDiag(rules::narrowAccess, Severity::Warning, "k")}));
    const BaselineCheck check =
        checkAgainstBaseline(new_run, baseline);
    EXPECT_FALSE(check.ok);
    ASSERT_EQ(check.failures.size(), 1u);
    EXPECT_NE(check.failures.front().find("narrow-access"),
              std::string::npos);
}

TEST(Report, BaselineRejectsUnknownKernel)
{
    const json::Value baseline = baselineJson({});
    std::vector<LintEntry> run;
    run.push_back(makeEntry(
        "brand_new",
        {makeDiag(rules::deadValue, Severity::Warning, "brand_new")}));
    EXPECT_FALSE(checkAgainstBaseline(run, baseline).ok);
}

TEST(Report, ErrorsAreNeverBaselined)
{
    std::vector<LintEntry> run;
    run.push_back(makeEntry(
        "k", {makeDiag(rules::invalidSsa, Severity::Error, "k")}));
    // Even a baseline generated from this very run fails it: errors
    // must be fixed, not ratcheted.
    const BaselineCheck check =
        checkAgainstBaseline(run, baselineJson(run));
    EXPECT_FALSE(check.ok);
}

TEST(Report, FewerWarningsThanBaselinePasses)
{
    std::vector<LintEntry> old_run;
    old_run.push_back(makeEntry(
        "k", {makeDiag(rules::narrowAccess, Severity::Warning, "k"),
              makeDiag(rules::narrowAccess, Severity::Warning, "k")}));
    const json::Value baseline = baselineJson(old_run);
    std::vector<LintEntry> improved;
    improved.push_back(makeEntry(
        "k", {makeDiag(rules::narrowAccess, Severity::Warning, "k")}));
    EXPECT_TRUE(checkAgainstBaseline(improved, baseline).ok);
}

} // namespace
} // namespace vespera::analysis
