/**
 * @file
 * Tests of the migration-aware static-analyzer passes
 * (analysis/static/passes_port.cc): they fire on the lowering artifact
 * each one targets, stay quiet on the tuned re-lowerings, and — the
 * gate — never touch hand-written (non-"port:*") traces.
 */

#include <gtest/gtest.h>

#include "analysis/kernel_registry.h"
#include "analysis/static/static_analyzer.h"
#include "port/corpus.h"
#include "port/lower.h"

namespace vespera::analysis {
namespace {

class PortPassesTest : public ::testing::Test
{
  protected:
    void SetUp() override { registerBuiltinKernels(); }

    StaticReport
    analyze(const char *kernel)
    {
        return analyzeProgramStatic(
            KernelRegistry::instance().trace(kernel).program);
    }
};

// The gate: hand-written kernels carry no "port:*" labels, so the
// migration passes must contribute nothing to their reports — the
// pre-existing baseline stays byte-stable.
TEST_F(PortPassesTest, HandWrittenKernelsAreNeverFlagged)
{
    for (const char *hand :
         {"softmax", "layernorm", "stream_triad_naive", "gather"}) {
        const StaticReport r = analyze(hand);
        EXPECT_EQ(r.report.countFor(rules::divergenceEmulation), 0)
            << hand;
        EXPECT_EQ(r.report.countFor(rules::coalescingLoss), 0) << hand;
        EXPECT_EQ(r.report.countFor(rules::stagingRedundancy), 0)
            << hand;
        EXPECT_EQ(r.report.countFor(rules::loweredPipelining), 0)
            << hand;
    }
}

TEST_F(PortPassesTest, DivergenceEmulationFiresOnPredicatedKernel)
{
    // port_branchy_scale predicates half its ALU work on lane < 16:
    // the lowering pays mask + full-width compute + blend.
    const StaticReport r = analyze("port_branchy_scale");
    EXPECT_GT(r.report.countFor(rules::divergenceEmulation), 0);
}

TEST_F(PortPassesTest, CoalescingLossFiresOnStridedAccess)
{
    // Stride-2 warp accesses shatter into per-lane transactions.
    const StaticReport r = analyze("port_strided_copy");
    EXPECT_GT(r.report.countFor(rules::coalescingLoss), 0);
}

TEST_F(PortPassesTest, CoalescingLossNotesSubGranuleWarpAccesses)
{
    // Even perfectly coalesced CUDA accesses land at warp width
    // (128 B), half the TPC granule — flagged at info severity.
    const StaticReport r = analyze("port_saxpy");
    EXPECT_GT(r.report.countFor(rules::coalescingLoss), 0);
}

TEST_F(PortPassesTest, StagingRedundancyFiresOnVerbatimSharedTiling)
{
    // port_staged_copy round-trips loads through __shared__ for no
    // reuse — on a TPC the value was already register-resident.
    const StaticReport r = analyze("port_staged_copy");
    EXPECT_GT(r.report.countFor(rules::stagingRedundancy), 0);
}

TEST_F(PortPassesTest, LoweredPipeliningFiresOnSerialStrips)
{
    // The naive port replays each thread chain in order; dependency
    // stalls dominate.
    const StaticReport r = analyze("port_saxpy");
    EXPECT_GT(r.report.countFor(rules::loweredPipelining), 0);
}

TEST_F(PortPassesTest, TunedLoweringIsClean)
{
    for (const char *tuned :
         {"port_saxpy_tuned", "port_stencil3_tuned"}) {
        const StaticReport r = analyze(tuned);
        EXPECT_EQ(r.report.countFor(rules::divergenceEmulation), 0)
            << tuned;
        EXPECT_EQ(r.report.countFor(rules::coalescingLoss), 0)
            << tuned;
        EXPECT_EQ(r.report.countFor(rules::stagingRedundancy), 0)
            << tuned;
        EXPECT_EQ(r.report.countFor(rules::loweredPipelining), 0)
            << tuned;
    }
}

TEST_F(PortPassesTest, MigrationFindingsCarryFixHintsAndCosts)
{
    const StaticReport r = analyze("port_strided_copy");
    bool saw_migration = false;
    for (const Diagnostic &d : r.report.diagnostics) {
        if (d.rule != rules::divergenceEmulation &&
            d.rule != rules::coalescingLoss &&
            d.rule != rules::stagingRedundancy &&
            d.rule != rules::loweredPipelining)
            continue;
        saw_migration = true;
        EXPECT_FALSE(d.fixHint.empty()) << d.rule;
        EXPECT_FALSE(d.message.empty()) << d.rule;
        EXPECT_GT(d.costCycles, 0.0) << d.rule;
    }
    EXPECT_TRUE(saw_migration);
}

// Raising the stall-fraction threshold above a kernel's actual stall
// share silences lowered-pipelining: the knob is live.
TEST_F(PortPassesTest, PipeliningThresholdIsRespected)
{
    const tpc::Program p =
        KernelRegistry::instance().trace("port_saxpy").program;
    StaticAnalyzerOptions strict;
    strict.portStallFrac = 0.99;
    EXPECT_EQ(analyzeProgramStatic(p, strict)
                  .report.countFor(rules::loweredPipelining),
              0);
    StaticAnalyzerOptions loose;
    loose.portStallFrac = 0.01;
    EXPECT_GT(analyzeProgramStatic(p, loose)
                  .report.countFor(rules::loweredPipelining),
              0);
}

} // namespace
} // namespace vespera::analysis
