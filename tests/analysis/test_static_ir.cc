/**
 * @file
 * Tests of the SSA IR lifter: def-use chains, loop recovery from
 * unrolled traces (including nesting), canonical basic blocks,
 * loop-carried dependences, affine stride analysis, and SSA
 * well-formedness reporting.
 */

#include <gtest/gtest.h>

#include "analysis/static/ir.h"
#include "tpc/context.h"
#include "tpc/pipeline.h"

namespace vespera::analysis {
namespace {

using tpc::Access;
using tpc::MemberRange;
using tpc::Program;
using tpc::Tensor;
using tpc::TpcContext;
using tpc::Vec;

MemberRange
oneTpc()
{
    return {{0, 0, 0, 0, 0}, {1, 1, 1, 1, 1}};
}

/// Z, (L A)^trips, S: a serial reduction whose unrolled body the
/// lifter must fold back into one counted loop.
Program
unrolledReduction(int trips)
{
    Program p;
    TpcContext ctx(p, oneTpc());
    Tensor t({1 << 16}, DataType::FP32);
    Vec acc = ctx.v_zero(64);
    for (int i = 0; i < trips; i++) {
        Vec x = ctx.v_ld_tnsr({i * 64, 0, 0, 0, 0}, t, 256);
        acc = ctx.v_add(acc, x);
    }
    ctx.v_st_tnsr({0, 0, 0, 0, 0}, t, acc);
    return p;
}

TEST(StaticIr, DefUseChains)
{
    Program p;
    TpcContext ctx(p, oneTpc());
    Tensor t({1 << 12}, DataType::FP32);
    Vec a = ctx.v_ld_tnsr({0, 0, 0, 0, 0}, t, 256);   // instr 0
    Vec b = ctx.v_ld_tnsr({64, 0, 0, 0, 0}, t, 256);  // instr 1
    Vec c = ctx.v_add(a, b);                          // instr 2
    ctx.v_st_tnsr({0, 0, 0, 0, 0}, t, c);             // instr 3

    const StaticIr ir = liftProgram(p);
    ASSERT_TRUE(ir.valid());
    EXPECT_EQ(ir.defIndex[static_cast<std::size_t>(a.id)], 0);
    EXPECT_EQ(ir.defIndex[static_cast<std::size_t>(b.id)], 1);
    EXPECT_EQ(ir.defIndex[static_cast<std::size_t>(c.id)], 2);
    ASSERT_EQ(ir.users[static_cast<std::size_t>(a.id)].size(), 1u);
    EXPECT_EQ(ir.users[static_cast<std::size_t>(a.id)][0], 2);
    ASSERT_EQ(ir.users[static_cast<std::size_t>(c.id)].size(), 1u);
    EXPECT_EQ(ir.users[static_cast<std::size_t>(c.id)][0], 3);
}

TEST(StaticIr, RecoversUnrolledLoop)
{
    const Program p = unrolledReduction(8);
    const StaticIr ir = liftProgram(p);
    ASSERT_TRUE(ir.valid());
    ASSERT_EQ(ir.loops.size(), 1u);
    const Loop &loop = ir.loops[0];
    EXPECT_EQ(loop.first, 1u); // After the v_zero prologue.
    EXPECT_EQ(loop.bodyLength, 2u);
    EXPECT_EQ(loop.tripCount, 8);
    EXPECT_EQ(loop.parent, -1);
    EXPECT_EQ(ir.maxLoopDepth(), 1);
    // Canonical blocks: prologue, one loop body, epilogue store.
    ASSERT_EQ(ir.blocks.size(), 3u);
    EXPECT_EQ(ir.blocks[0].kind, BlockKind::Straight);
    EXPECT_EQ(ir.blocks[1].kind, BlockKind::LoopBody);
    EXPECT_EQ(ir.blocks[1].loopId, loop.id);
    EXPECT_EQ(ir.blocks[1].count, 2u);
    EXPECT_EQ(ir.blocks[2].kind, BlockKind::Straight);
}

TEST(StaticIr, LoopCarriedDependenceIsTheAccumulator)
{
    const Program p = unrolledReduction(8);
    const StaticIr ir = liftProgram(p);
    ASSERT_EQ(ir.loops.size(), 1u);
    const Loop &loop = ir.loops[0];
    // acc(t+1) = v_add(acc(t), x): one recurrence, add -> add, at the
    // vector-ALU latency.
    ASSERT_EQ(loop.carried.size(), 1u);
    EXPECT_EQ(loop.carried[0].defBodyIndex, 1u);
    EXPECT_EQ(loop.carried[0].useBodyIndex, 1u);
    EXPECT_DOUBLE_EQ(
        loop.carried[0].latencyCycles,
        static_cast<double>(tpc::TpcParams::forGaudi2().vectorLatency));
    EXPECT_DOUBLE_EQ(loop.recurrenceLatency(),
                     loop.carried[0].latencyCycles);
}

TEST(StaticIr, AffineStrideAnalysisOnStreamingLoop)
{
    const Program p = unrolledReduction(8);
    const StaticIr ir = liftProgram(p);
    ASSERT_EQ(ir.loops.size(), 1u);
    const Loop &loop = ir.loops[0];
    // The load at body position 0 walks the tensor contiguously:
    // 64 fp32 elements = 256 B per trip.
    ASSERT_EQ(loop.accesses.size(), 1u);
    const AffineAccess &acc = loop.accesses[0];
    EXPECT_EQ(acc.bodyIndex, 0u);
    EXPECT_TRUE(acc.affine);
    EXPECT_EQ(acc.stride, 256);
    EXPECT_EQ(acc.bytes, 256u);
}

TEST(StaticIr, RecoversNestedLoops)
{
    Program p;
    TpcContext ctx(p, oneTpc());
    Tensor t({1 << 16}, DataType::FP32);
    Vec acc = ctx.v_zero(64);
    for (int j = 0; j < 3; j++) {
        for (int i = 0; i < 4; i++) {
            Vec x = ctx.v_ld_tnsr({(j * 4 + i) * 64, 0, 0, 0, 0}, t,
                                  256);
            acc = ctx.v_add(acc, x);
        }
        ctx.v_st_local(0, acc);
    }
    const StaticIr ir = liftProgram(p);
    ASSERT_TRUE(ir.valid());
    // Inner copies living in outer iterations 1.. are structural
    // repeats of the canonical first copy: exactly two loops survive.
    ASSERT_EQ(ir.loops.size(), 2u);
    const Loop *inner = nullptr;
    const Loop *outer = nullptr;
    for (const Loop &l : ir.loops)
        (l.parent >= 0 ? inner : outer) = &l;
    ASSERT_NE(inner, nullptr);
    ASSERT_NE(outer, nullptr);
    EXPECT_EQ(inner->parent, outer->id);
    EXPECT_EQ(inner->bodyLength, 2u);
    EXPECT_EQ(inner->tripCount, 4);
    EXPECT_EQ(outer->bodyLength, 9u); // 4 x (L A) + st_local.
    EXPECT_EQ(outer->tripCount, 3);
    EXPECT_EQ(ir.maxLoopDepth(), 2);
    EXPECT_EQ(ir.innermostLoopAt(1), inner);
}

TEST(StaticIr, EmptyProgramLiftsToEmptyIr)
{
    Program p;
    const StaticIr ir = liftProgram(p);
    EXPECT_TRUE(ir.valid());
    EXPECT_EQ(ir.size(), 0u);
    EXPECT_TRUE(ir.blocks.empty());
    EXPECT_TRUE(ir.loops.empty());
    EXPECT_EQ(ir.maxLoopDepth(), 0);
}

TEST(StaticIr, FlagsUseBeforeDef)
{
    Program p;
    const std::int32_t v = p.newValue();
    tpc::Instr use;
    use.slot = tpc::Slot::Vector;
    use.src0 = v; // Never defined.
    use.dst = p.newValue();
    p.append(use);
    const StaticIr ir = liftProgram(p);
    ASSERT_EQ(ir.violations.size(), 1u);
    EXPECT_EQ(ir.violations[0].kind,
              SsaViolation::Kind::UseBeforeDef);
    EXPECT_EQ(ir.violations[0].value, v);
    EXPECT_FALSE(ir.valid());
    // Malformed SSA: no structure recovery.
    EXPECT_TRUE(ir.blocks.empty());
}

TEST(StaticIr, FlagsRedefinitionAndOutOfRange)
{
    Program p;
    const std::int32_t v = p.newValue();
    tpc::Instr def;
    def.slot = tpc::Slot::Vector;
    def.dst = v;
    p.append(def);
    p.append(def); // Redefinition.
    tpc::Instr wild;
    wild.slot = tpc::Slot::Vector;
    wild.dst = 99; // Never allocated.
    p.append(wild);
    const StaticIr ir = liftProgram(p);
    ASSERT_EQ(ir.violations.size(), 2u);
    EXPECT_EQ(ir.violations[0].kind,
              SsaViolation::Kind::Redefinition);
    EXPECT_EQ(ir.violations[1].kind,
              SsaViolation::Kind::DefOutOfRange);
}

} // namespace
} // namespace vespera::analysis
