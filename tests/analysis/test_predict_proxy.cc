/**
 * @file
 * Tests of the proxy cost model: the ±15% held-out accuracy contract
 * on every registry kernel family, the pin between the committed
 * coefficient artifact (tools/predict_coeffs.json) and the compiled-in
 * copy, artifact schema validation, and the fitter itself on synthetic
 * data.
 */

#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "analysis/predict/calibrate.h"
#include "analysis/predict/features.h"
#include "analysis/predict/proxy.h"
#include "analysis/predict/tunable.h"
#include "analysis/static/cost_model.h"
#include "analysis/static/ir.h"

namespace vespera::analysis {
namespace {

/// The accuracy contract (proxy.h): held-out shapes within ±15% of
/// scheduleStatic for every registry kernel family.
constexpr double kContractErr = 0.15;

TEST(PredictProxy, BuiltinMatchesCommittedArtifact)
{
    const char *path =
        VESPERA_SOURCE_DIR "/tools/predict_coeffs.json";
    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing committed artifact " << path;
    std::stringstream buf;
    buf << in.rdbuf();
    json::Value doc;
    std::string error;
    ASSERT_TRUE(json::parse(buf.str(), doc, &error)) << error;
    ProxyModel committed;
    ASSERT_TRUE(ProxyModel::fromJson(doc, committed, &error)) << error;

    const ProxyModel &builtin = ProxyModel::builtin();
    ASSERT_EQ(builtin.families().size(), committed.families().size())
        << "regenerate src/analysis/predict/coeffs_builtin.inc from "
           "tools/predict_coeffs.json";
    for (const auto &[name, weights] : committed.families()) {
        ASSERT_TRUE(builtin.hasFamily(name)) << name;
        const std::vector<double> &b = builtin.families().at(name);
        ASSERT_EQ(b.size(), weights.size());
        for (std::size_t j = 0; j < weights.size(); j++)
            EXPECT_DOUBLE_EQ(b[j], weights[j]) << name << "[" << j << "]";
    }
}

TEST(PredictProxy, HeldOutAccuracyContract)
{
    registerTunableKernels();
    const ProxyModel &model = ProxyModel::builtin();
    const tpc::TpcParams params = tpc::TpcParams::forGaudi2();
    const TunableRegistry &reg = TunableRegistry::instance();
    int families = 0;
    for (const std::string &name : reg.names()) {
        const TunableKernel &k = reg.get(name);
        if (k.kind != TuneKind::Tpc)
            continue;
        families++;
        ASSERT_TRUE(model.hasFamily(name)) << name;
        for (std::int64_t size : k.heldOutSizes) {
            TuneConfig c = k.base;
            c.size = size;
            const tpc::Program program = k.produce(c);
            const StaticIr ir = liftProgram(program);
            ASSERT_TRUE(ir.valid()) << name;
            const double exact = scheduleStatic(ir, params).cycles;
            const double predicted = model.predictBasis(
                name, extractFeatures(ir, params).basis());
            EXPECT_LE(std::fabs(predicted - exact) /
                          std::max(1.0, exact),
                      kContractErr)
                << name << " size=" << size << ": predicted "
                << predicted << " vs exact " << exact;
        }
    }
    // The 11-kernel registry contract: every TPC family is covered.
    EXPECT_EQ(families, 11);
}

TEST(PredictProxy, PredictionIsDeterministicAcrossRuns)
{
    registerTunableKernels();
    const ProxyModel &model = ProxyModel::builtin();
    const TunableKernel &k =
        TunableRegistry::instance().get("stream_triad_tuned");
    const tpc::Program program = k.produce(k.base);
    const StaticIr ir = liftProgram(program);
    const std::vector<double> basis = extractFeatures(ir).basis();
    const double first = model.predictBasis(k.name, basis);
    for (int i = 0; i < 8; i++) {
        // Byte-identical, not approximately equal: the prediction is
        // a fixed-order dot product with no ambient state.
        const double again = model.predictBasis(
            k.name, extractFeatures(liftProgram(program)).basis());
        EXPECT_EQ(std::memcmp(&first, &again, sizeof first), 0);
    }
}

TEST(PredictProxy, UnknownFamilyFallsBackToDefault)
{
    ProxyModel m;
    std::vector<double> w(FeatureVector::basisNames().size(), 0.0);
    w[1] = 2.0; // cycles = 2 x instructions.
    m.setFamily("default", w);
    std::vector<double> basis(w.size(), 0.0);
    basis[0] = 1.0;
    basis[1] = 21.0;
    EXPECT_DOUBLE_EQ(m.predictBasis("no-such-kernel", basis), 42.0);
}

TEST(PredictProxy, PredictionClampsToOneCycle)
{
    ProxyModel m;
    std::vector<double> w(FeatureVector::basisNames().size(), 0.0);
    w[0] = -100.0;
    m.setFamily("default", w);
    std::vector<double> basis(w.size(), 0.0);
    basis[0] = 1.0;
    EXPECT_DOUBLE_EQ(m.predictBasis("x", basis), 1.0);
}

TEST(PredictProxy, FromJsonRejectsBadArtifacts)
{
    ProxyModel m;
    std::string error;
    json::Value doc;
    ASSERT_TRUE(json::parse("{\"schema\":\"bogus/v0\"}", doc, &error));
    EXPECT_FALSE(ProxyModel::fromJson(doc, m, &error));
    EXPECT_NE(error.find("vespera-predict-coeffs"), std::string::npos);

    // Right schema, wrong basis.
    std::string text =
        std::string("{\"schema\":\"") + kProxyCoeffsSchema +
        "\",\"basis\":[\"bias\"],\"families\":{\"default\":[1]}}";
    ASSERT_TRUE(json::parse(text, doc, &error));
    EXPECT_FALSE(ProxyModel::fromJson(doc, m, &error));

    // Valid basis but no default family.
    const ProxyModel &builtin = ProxyModel::builtin();
    json::Value good = builtin.toJson();
    std::string serialized = json::serialize(good);
    ASSERT_TRUE(json::parse(serialized, doc, &error));
    ProxyModel roundTrip;
    EXPECT_TRUE(ProxyModel::fromJson(doc, roundTrip, &error)) << error;
    EXPECT_EQ(roundTrip.families().size(), builtin.families().size());
}

TEST(PredictProxy, FitterRecoversALinearModel)
{
    // Synthetic family: cycles = 10 + 3*instructions + 0.5*mem_bound.
    const std::size_t dims = FeatureVector::basisNames().size();
    std::vector<CalibrationSample> samples;
    for (int i = 1; i <= 20; i++) {
        std::vector<double> basis(dims, 0.0);
        basis[0] = 1.0;
        basis[1] = i * 7.0;
        basis[3] = i * i * 1.5;
        const double y = 10.0 + 3.0 * basis[1] + 0.5 * basis[3];
        samples.push_back({"synthetic", basis, y, 1.0});
    }
    const ProxyModel m = fitProxyModel(samples, 1e-6);
    for (const CalibrationSample &s : samples) {
        const double p = m.predictBasis("synthetic", s.basis);
        EXPECT_NEAR(p / s.exactCycles, 1.0, 0.01);
    }
    // Extrapolation beyond the fitted range stays on the line.
    std::vector<double> basis(dims, 0.0);
    basis[0] = 1.0;
    basis[1] = 50 * 7.0;
    basis[3] = 2500 * 1.5;
    const double want = 10.0 + 3.0 * basis[1] + 0.5 * basis[3];
    EXPECT_NEAR(m.predictBasis("synthetic", basis) / want, 1.0, 0.02);
}

TEST(PredictProxy, CalibrationReportCoversAllTpcFamilies)
{
    registerTunableKernels();
    // Filtered calibration: one family, so this stays fast enough for
    // the default test tier. Full-registry calibration runs in CI's
    // predict-accuracy job via `vespera-lint tune --calibrate`.
    const CalibrationReport report = calibrateProxy("softmax");
    ASSERT_EQ(report.families.size(), 1u);
    EXPECT_EQ(report.families[0].name, "softmax");
    EXPECT_GT(report.families[0].samples, 0u);
    EXPECT_LE(report.families[0].maxHeldOutErr, kContractErr);
    EXPECT_TRUE(report.model.hasFamily("softmax"));
    EXPECT_TRUE(report.model.hasFamily("default"));
}

} // namespace
} // namespace vespera::analysis
