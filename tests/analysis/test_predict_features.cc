/**
 * @file
 * Tests of the predictor's feature extractor: golden feature vectors
 * for every registry kernel (byte-exact against a committed snapshot),
 * unit behavior on hand-built traces (granularity histogram, knees,
 * stride classes, loop aggregates, register pressure), and the
 * degenerate-loop guards the lifter and extractor enforce.
 *
 * Regenerate the golden snapshot after an intentional feature-schema
 * change with:
 *   VESPERA_UPDATE_GOLDEN=1 ./test_analysis \
 *       --gtest_filter=PredictFeatures.GoldenRegistryVectors
 */

#include <cstdlib>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "analysis/kernel_registry.h"
#include "analysis/predict/features.h"
#include "analysis/static/ir.h"
#include "tpc/context.h"

namespace vespera::analysis {
namespace {

using tpc::Access;
using tpc::MemberRange;
using tpc::Program;
using tpc::Tensor;
using tpc::TpcContext;
using tpc::Vec;

MemberRange
oneTpc()
{
    return {{0, 0, 0, 0, 0}, {1, 1, 1, 1, 1}};
}

const char *kGoldenPath =
    VESPERA_SOURCE_DIR "/tests/analysis/data/predict_features_golden.json";

TEST(PredictFeatures, GoldenRegistryVectors)
{
    registerBuiltinKernels();
    KernelRegistry &reg = KernelRegistry::instance();
    std::vector<json::Value> kernels;
    for (TracedKernel &t : reg.traceAll("")) {
        const StaticIr ir = liftProgram(t.program);
        ASSERT_TRUE(ir.valid()) << t.name;
        FeatureVector f = extractFeatures(ir);
        f.kernel = t.name;
        f.shape = t.shape;
        kernels.push_back(f.toJson());
    }
    EXPECT_EQ(kernels.size(), 32u);
    std::map<std::string, json::Value> doc;
    doc["schema"] = json::Value::makeString(kFeatureSchema);
    doc["kernels"] = json::Value::makeArray(std::move(kernels));
    const std::string got =
        json::serialize(json::Value::makeObject(std::move(doc)));

    if (std::getenv("VESPERA_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(kGoldenPath);
        ASSERT_TRUE(out) << "cannot write " << kGoldenPath;
        out << got << "\n";
        GTEST_SKIP() << "golden snapshot updated";
    }
    std::ifstream in(kGoldenPath);
    ASSERT_TRUE(in) << "missing golden snapshot " << kGoldenPath;
    std::stringstream buf;
    buf << in.rdbuf();
    std::string want = buf.str();
    while (!want.empty() && (want.back() == '\n' || want.back() == '\r'))
        want.pop_back();
    EXPECT_EQ(got, want)
        << "feature extraction drifted from the committed snapshot; "
           "if intentional, rerun with VESPERA_UPDATE_GOLDEN=1";
}

TEST(PredictFeatures, ReextractionIsByteIdentical)
{
    registerBuiltinKernels();
    KernelRegistry &reg = KernelRegistry::instance();
    std::vector<TracedKernel> first = reg.traceAll("softmax");
    std::vector<TracedKernel> second = reg.traceAll("softmax");
    ASSERT_FALSE(first.empty());
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); i++) {
        const StaticIr a = liftProgram(first[i].program);
        const StaticIr b = liftProgram(second[i].program);
        EXPECT_EQ(json::serialize(extractFeatures(a).toJson()),
                  json::serialize(extractFeatures(b).toJson()));
    }
}

TEST(PredictFeatures, GranularityHistogramAndKnees)
{
    Program p;
    TpcContext ctx(p, oneTpc());
    Tensor t({1 << 16}, DataType::FP32);
    // One access per bucket boundary of interest: 32 B (bucket 0),
    // 64 B (1), 256 B (3, at-granule), 512 B (4).
    // Differently-sized loads have different lane counts, so they
    // cannot be combined; only the 256 B vector feeds the store.
    (void)ctx.v_ld_tnsr({0, 0, 0, 0, 0}, t, 32);
    (void)ctx.v_ld_tnsr({64, 0, 0, 0, 0}, t, 64);
    Vec c = ctx.v_ld_tnsr({128, 0, 0, 0, 0}, t, 256);
    (void)ctx.v_ld_tnsr({256, 0, 0, 0, 0}, t, 512);
    ctx.v_st_tnsr({512, 0, 0, 0, 0}, t, ctx.v_add(c, c));

    const StaticIr ir = liftProgram(p);
    ASSERT_TRUE(ir.valid());
    const FeatureVector f = extractFeatures(ir);
    // Store is vector-width (256 B default context width) -> bucket 3.
    EXPECT_DOUBLE_EQ(f.granularityHist[0], 1);
    EXPECT_DOUBLE_EQ(f.granularityHist[1], 1);
    EXPECT_DOUBLE_EQ(f.granularityHist[3], 2);
    EXPECT_DOUBLE_EQ(f.granularityHist[4], 1);
    EXPECT_DOUBLE_EQ(f.globalAccesses, 5);
    // 32 and 64 B are below the 256 B granule.
    EXPECT_DOUBLE_EQ(f.subGranuleAccesses, 2);
    EXPECT_GT(f.granuleWasteCycles, 0);
    // Half-granule knee: only the 32 and 64 B accesses are below
    // 128 B, contributing (128-32)/128 + (128-64)/128.
    EXPECT_DOUBLE_EQ(f.hingeHalfGranule, 96.0 / 128.0 + 64.0 / 128.0);
    // memBound = granule txns x issue interval; txns = 1+1+1+2+1.
    EXPECT_DOUBLE_EQ(f.granuleTxns, 6);
}

TEST(PredictFeatures, GranuleSizedAccessesWasteNothing)
{
    Program p;
    TpcContext ctx(p, oneTpc());
    Tensor t({1 << 16}, DataType::FP32);
    for (int i = 0; i < 4; i++) {
        Vec x = ctx.v_ld_tnsr({i * 64, 0, 0, 0, 0}, t, 256);
        ctx.v_st_tnsr({(16 + i) * 64, 0, 0, 0, 0}, t, x);
    }
    const StaticIr ir = liftProgram(p);
    const FeatureVector f = extractFeatures(ir);
    EXPECT_DOUBLE_EQ(f.granuleWasteCycles, 0);
    EXPECT_DOUBLE_EQ(f.hingeHalfGranule, 0);
    EXPECT_DOUBLE_EQ(f.subGranuleAccesses, 0);
}

TEST(PredictFeatures, StrideClassesFromLoopAnalysis)
{
    Program p;
    TpcContext ctx(p, oneTpc());
    Tensor src({1 << 16}, DataType::FP32);
    Tensor dst({1 << 16}, DataType::FP32);
    // Contiguous: offset advances by exactly the payload per trip.
    // Strided: offset advances by twice the payload.
    for (int i = 0; i < 6; i++) {
        Vec a = ctx.v_ld_tnsr({i * 64, 0, 0, 0, 0}, src, 256);
        Vec b = ctx.v_ld_tnsr({i * 128, 0, 0, 0, 0}, src, 256);
        ctx.v_st_tnsr({i * 64, 0, 0, 0, 0}, dst, ctx.v_add(a, b));
    }
    const StaticIr ir = liftProgram(p);
    ASSERT_EQ(ir.loops.size(), 1u);
    const FeatureVector f = extractFeatures(ir);
    // Two contiguous streams (load a, store) and one strided (load b),
    // each weighted by the 6 trips.
    EXPECT_DOUBLE_EQ(f.contiguousAccesses, 12);
    EXPECT_DOUBLE_EQ(f.stridedAccesses, 6);
    EXPECT_DOUBLE_EQ(f.irregularAccesses, 0);
}

TEST(PredictFeatures, RandomAccessesAreIrregular)
{
    Program p;
    TpcContext ctx(p, oneTpc());
    Tensor t({1 << 16}, DataType::FP32);
    Vec acc = ctx.v_zero(64);
    for (int i = 0; i < 4; i++) {
        Vec x = ctx.v_ld_tnsr({i * 64, 0, 0, 0, 0}, t, 256,
                              Access::Random);
        acc = ctx.v_add(acc, x);
    }
    ctx.v_st_tnsr({0, 0, 0, 0, 0}, t, acc);
    const StaticIr ir = liftProgram(p);
    const FeatureVector f = extractFeatures(ir);
    EXPECT_GE(f.irregularAccesses, 4);
}

TEST(PredictFeatures, LoopAggregatesScaleWithTrips)
{
    auto traceOf = [](int trips) {
        Program p;
        TpcContext ctx(p, oneTpc());
        Tensor t({1 << 16}, DataType::FP32);
        Vec acc = ctx.v_zero(64);
        for (int i = 0; i < trips; i++) {
            Vec x = ctx.v_ld_tnsr({i * 64, 0, 0, 0, 0}, t, 256);
            acc = ctx.v_add(acc, x);
        }
        ctx.v_st_tnsr({0, 0, 0, 0, 0}, t, acc);
        return p;
    };
    const Program small = traceOf(4);
    const Program big = traceOf(8);
    const FeatureVector fs = extractFeatures(liftProgram(small));
    const FeatureVector fb = extractFeatures(liftProgram(big));
    EXPECT_DOUBLE_EQ(fs.loopCount, 1);
    EXPECT_DOUBLE_EQ(fb.loopCount, 1);
    EXPECT_DOUBLE_EQ(fs.maxTripCount, 4);
    EXPECT_DOUBLE_EQ(fb.maxTripCount, 8);
    // The serial reduction carries a recurrence; doubling trips
    // doubles the loop-dependence cycles.
    EXPECT_GT(fs.loopDepCycles, 0);
    EXPECT_DOUBLE_EQ(fb.loopDepCycles, 2 * fs.loopDepCycles);
    EXPECT_DOUBLE_EQ(fb.loopRooflineCycles, 2 * fs.loopRooflineCycles);
}

TEST(PredictFeatures, BasisMatchesNames)
{
    FeatureVector f;
    EXPECT_EQ(f.basis().size(), FeatureVector::basisNames().size());
    EXPECT_EQ(FeatureVector::basisNames().front(), "bias");
    EXPECT_DOUBLE_EQ(f.basis().front(), 1.0);
}

TEST(PredictFeatures, StraightLineTraceHasNoLoopFeatures)
{
    Program p;
    TpcContext ctx(p, oneTpc());
    Tensor t({1 << 12}, DataType::FP32);
    Vec a = ctx.v_ld_tnsr({0, 0, 0, 0, 0}, t, 256);
    Vec b = ctx.v_mul_s(a, 2.0f);
    ctx.v_st_tnsr({64, 0, 0, 0, 0}, t, b);
    const StaticIr ir = liftProgram(p);
    const FeatureVector f = extractFeatures(ir);
    EXPECT_DOUBLE_EQ(f.loopCount, 0);
    EXPECT_DOUBLE_EQ(f.loopRooflineCycles, 0);
    EXPECT_DOUBLE_EQ(f.iiGapCycles, 0);
    EXPECT_DOUBLE_EQ(f.straightInstrs, f.instructions);
    EXPECT_GT(f.depHeightCycles, 0);
    EXPECT_GT(f.peakLiveBytes, 0);
}

/// Satellite guard: the lifter must never hand downstream passes a
/// zero-trip / single-iteration / overrunning loop, and the extractor
/// panics if a hand-built IR smuggles one in.

Program &
sharedStraightProgram()
{
    static Program *p = [] {
        auto *program = new Program;
        TpcContext ctx(*program, oneTpc());
        Tensor t({1 << 12}, DataType::FP32);
        Vec a = ctx.v_ld_tnsr({0, 0, 0, 0, 0}, t, 256);
        ctx.v_st_tnsr({0, 0, 0, 0, 0}, t, a);
        return program;
    }();
    return *p;
}

StaticIr
irWithLoop(std::size_t first, std::size_t bodyLength,
           std::int64_t tripCount)
{
    StaticIr ir = liftProgram(sharedStraightProgram());
    Loop l;
    l.id = 0;
    l.first = first;
    l.bodyLength = bodyLength;
    l.tripCount = tripCount;
    ir.loops.push_back(l);
    return ir;
}

TEST(PredictFeaturesDeath, SingleTripLoop)
{
    const StaticIr ir = irWithLoop(0, 1, 1);
    EXPECT_DEATH((void)extractFeatures(ir), "tripCount < 2");
}

TEST(PredictFeaturesDeath, ZeroTripLoop)
{
    const StaticIr ir = irWithLoop(0, 1, 0);
    EXPECT_DEATH((void)extractFeatures(ir), "tripCount < 2");
}

TEST(PredictFeaturesDeath, EmptyLoopBody)
{
    const StaticIr ir = irWithLoop(0, 0, 2);
    EXPECT_DEATH((void)extractFeatures(ir), "empty body");
}

TEST(PredictFeaturesDeath, LoopSpanPastEnd)
{
    const StaticIr ir = irWithLoop(1, 1, 4);
    EXPECT_DEATH((void)extractFeatures(ir), "past end");
}

TEST(PredictFeatures, LifterSanitizesBeforeDataflow)
{
    // Traces whose structure *could* tempt a detector into degenerate
    // loops: empty, single instruction, and a two-identical-instr
    // prologue (minTrips demands 3 for period 1). All must lift to
    // loop-free IR and extract cleanly.
    {
        Program p;
        const StaticIr ir = liftProgram(p);
        EXPECT_TRUE(ir.loops.empty());
        const FeatureVector f = extractFeatures(ir);
        EXPECT_DOUBLE_EQ(f.instructions, 0);
    }
    {
        Program p;
        TpcContext ctx(p, oneTpc());
        Tensor t({64}, DataType::FP32);
        (void)ctx.v_ld_tnsr({0, 0, 0, 0, 0}, t, 256);
        const StaticIr ir = liftProgram(p);
        EXPECT_TRUE(ir.loops.empty());
        EXPECT_DOUBLE_EQ(extractFeatures(ir).straightInstrs, 1);
    }
    {
        Program p;
        TpcContext ctx(p, oneTpc());
        Tensor t({1 << 12}, DataType::FP32);
        Vec a = ctx.v_ld_tnsr({0, 0, 0, 0, 0}, t, 256);
        Vec b = ctx.v_ld_tnsr({64, 0, 0, 0, 0}, t, 256);
        ctx.v_st_tnsr({0, 0, 0, 0, 0}, t, ctx.v_add(a, b));
        const StaticIr ir = liftProgram(p);
        for (const Loop &l : ir.loops) {
            EXPECT_GE(l.tripCount, 2);
            EXPECT_GT(l.bodyLength, 0u);
        }
        (void)extractFeatures(ir);
    }
}

} // namespace
} // namespace vespera::analysis
