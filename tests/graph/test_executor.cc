#include <gtest/gtest.h>

#include "graph/compiler.h"
#include "graph/executor.h"

namespace vespera::graph {
namespace {

Graph
mlpGraph(std::int64_t m = 1024, std::int64_t k = 4096,
         std::int64_t n = 4096)
{
    Graph g;
    int x = g.input({{m, k}, DataType::BF16}, "x");
    int w = g.input({{k, n}, DataType::BF16}, "w");
    int mm = g.matmul(x, w, "mm");
    (void)g.elementwise({mm}, 1.0, false, "act");
    return g;
}

TEST(Executor, TimesSimpleGraph)
{
    Graph g = mlpGraph();
    Executor exec(DeviceKind::Gaudi2);
    auto r = exec.run(g);
    EXPECT_GT(r.time, 0);
    EXPECT_GT(r.flops, 0);
    EXPECT_GT(r.matrixBusy, 0);
    EXPECT_GT(r.vectorBusy, 0);
}

TEST(Executor, FusionReducesTime)
{
    Graph g1;
    {
        int a = g1.input({{2048, 2048}, DataType::BF16}, "a");
        int r = g1.elementwise({a}, 1.0, false, "r");
        int s = g1.elementwise({r}, 1.0, false, "s");
        (void)g1.elementwise({s}, 1.0, false, "t");
    }
    Graph g2 = g1;
    Compiler().compile(g2);

    Executor exec(DeviceKind::Gaudi2);
    auto unfused = exec.run(g1);
    auto fused = exec.run(g2);
    EXPECT_LT(fused.time, unfused.time);
    EXPECT_LT(fused.hbmBytes, unfused.hbmBytes);
}

TEST(Executor, PipeliningHidesVectorTime)
{
    Graph g1 = mlpGraph();
    Graph g2 = mlpGraph();
    CompilerOptions no_pipe;
    no_pipe.pipelineMmeTpc = false;
    Compiler(no_pipe).compile(g1);
    Compiler().compile(g2);

    Executor exec(DeviceKind::Gaudi2);
    auto serial = exec.run(g1);
    auto pipelined = exec.run(g2);
    EXPECT_LT(pipelined.time, serial.time);
    EXPECT_GT(pipelined.overlapSaved, 0);
}

TEST(Executor, AllReduceUsesDeviceFabric)
{
    Graph g;
    int x = g.input({{1024, 8192}, DataType::BF16}, "x");
    (void)g.allReduce(x, 8, "ar");

    Executor gaudi(DeviceKind::Gaudi2);
    Executor a100(DeviceKind::A100);
    auto rg = gaudi.run(g);
    auto ra = a100.run(g);
    EXPECT_GT(rg.commTime, 0);
    EXPECT_GT(ra.commTime, 0);
    // At 8 devices the Gaudi P2P fabric is competitive (Figure 10).
    EXPECT_LT(rg.commTime / ra.commTime, 1.4);

    Graph g2;
    int y = g2.input({{1024, 8192}, DataType::BF16}, "y");
    (void)g2.allReduce(y, 2, "ar2");
    auto rg2 = gaudi.run(g2);
    auto ra2 = a100.run(g2);
    // At 2 devices Gaudi has only 1/7 of its links active.
    EXPECT_GT(rg2.commTime, 2.0 * ra2.commTime);
}

TEST(Executor, CustomNodeCallback)
{
    Graph g;
    int x = g.input({{16}, DataType::BF16}, "x");
    int calls = 0;
    (void)g.custom({x}, {{16}, DataType::BF16},
                   [&calls](DeviceKind) {
                       calls++;
                       OpCost c;
                       c.time = 1e-3;
                       return c;
                   },
                   "custom");
    Executor exec(DeviceKind::Gaudi2);
    auto r = exec.run(g);
    EXPECT_EQ(calls, 1);
    EXPECT_NEAR(r.time, 1e-3, 1e-9);
}

TEST(Executor, ActivityProfileBounded)
{
    Graph g = mlpGraph(4096, 4096, 4096);
    Compiler().compile(g);
    Executor exec(DeviceKind::Gaudi2);
    auto r = exec.run(g);
    auto act = r.activity(hw::gaudi2Spec());
    EXPECT_GE(act.matrixActivity, 0);
    EXPECT_LE(act.matrixActivity, 1);
    EXPECT_LE(act.hbmActivity, 1);
    EXPECT_GT(act.matrixActivity, 0.3); // GEMM-dominated graph.
}

TEST(Executor, AccumulateScales)
{
    Graph g = mlpGraph();
    Executor exec(DeviceKind::Gaudi2);
    auto one = exec.run(g);
    ExecutionReport total;
    accumulate(total, one, 10.0);
    EXPECT_NEAR(total.time, 10 * one.time, 1e-12);
    EXPECT_NEAR(total.flops, 10 * one.flops, 1);
    EXPECT_NEAR(total.avgMatrixUtil, one.avgMatrixUtil, 1e-12);
}

TEST(Executor, InputNodesAreFree)
{
    Graph g;
    (void)g.input({{1 << 20}, DataType::FP32}, "big");
    Executor exec(DeviceKind::A100);
    auto r = exec.run(g);
    EXPECT_DOUBLE_EQ(r.time, 0);
}

} // namespace
} // namespace vespera::graph
