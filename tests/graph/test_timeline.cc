#include <gtest/gtest.h>

#include "graph/compiler.h"
#include "graph/executor.h"

namespace vespera::graph {
namespace {

Graph
layerGraph()
{
    Graph g;
    int x = g.input({{1024, 4096}, DataType::BF16}, "x");
    int w1 = g.input({{4096, 4096}, DataType::BF16}, "w1");
    int mm1 = g.matmul(x, w1, "mm1");
    int act = g.elementwise({mm1}, 1.0, false, "act");
    int w2 = g.input({{4096, 4096}, DataType::BF16}, "w2");
    (void)g.matmul(act, w2, "mm2");
    return g;
}

TEST(Timeline, CoversLiveNodesInOrder)
{
    Graph g = layerGraph();
    Executor exec(DeviceKind::Gaudi2);
    auto rep = exec.run(g);
    // 3 inputs (zero-duration) + 3 ops.
    ASSERT_EQ(rep.timeline.size(), 6u);
    Seconds prev_start = 0;
    for (const auto &e : rep.timeline) {
        EXPECT_GE(e.start, prev_start);
        prev_start = e.start;
    }
    // Last op ends at the report time.
    const auto &last = rep.timeline.back();
    EXPECT_NEAR(last.start + last.duration, rep.time, 1e-12);
}

TEST(Timeline, PipelinedOpOverlapsProducer)
{
    Graph g = layerGraph();
    Compiler().compile(g);
    Executor exec(DeviceKind::Gaudi2);
    auto rep = exec.run(g);

    const TimelineEntry *mm1 = nullptr, *act = nullptr;
    for (const auto &e : rep.timeline) {
        if (e.name == "mm1")
            mm1 = &e;
        if (e.name == "act")
            act = &e;
    }
    ASSERT_NE(mm1, nullptr);
    ASSERT_NE(act, nullptr);
    // The fused/pipelined vector op starts before its producer ends.
    EXPECT_LT(act->start, mm1->start + mm1->duration);
    EXPECT_GT(rep.overlapSaved, 0);
}

TEST(Timeline, SlicingControlsOverlap)
{
    auto overlap_with = [](int slices) {
        Graph g = layerGraph();
        Compiler().compile(g);
        for (auto &n : g.nodes())
            n.pipelineSlices = slices;
        Executor exec(DeviceKind::Gaudi2);
        return exec.run(g).overlapSaved;
    };
    const Seconds coarse = overlap_with(2);
    const Seconds fine = overlap_with(32);
    // Finer slicing hides more of the vector op (less ramp exposed).
    EXPECT_GT(fine, coarse);
    EXPECT_GT(overlap_with(1), -1e-18); // 1 slice: nothing hidden.
    EXPECT_DOUBLE_EQ(overlap_with(1), 0);
}

TEST(Timeline, AccumulateShiftsRepresentativeCopy)
{
    Graph g = layerGraph();
    Executor exec(DeviceKind::Gaudi2);
    auto one = exec.run(g);
    ExecutionReport total;
    accumulate(total, one, 10.0);
    accumulate(total, one, 1.0);
    // One copy per accumulate call, second shifted past the first
    // part's scaled duration.
    ASSERT_EQ(total.timeline.size(), 2 * one.timeline.size());
    const auto &second_copy = total.timeline[one.timeline.size()];
    EXPECT_NEAR(second_copy.start, 10 * one.time, 1e-12);
}

} // namespace
} // namespace vespera::graph
