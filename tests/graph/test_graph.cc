#include <gtest/gtest.h>

#include "graph/graph.h"

namespace vespera::graph {
namespace {

TEST(Graph, MatmulShapeInference)
{
    Graph g;
    int a = g.input({{64, 128}, DataType::BF16}, "a");
    int b = g.input({{128, 32}, DataType::BF16}, "b");
    int c = g.matmul(a, b);
    const Node &n = g.node(c);
    EXPECT_EQ(n.output.shape, (std::vector<std::int64_t>{64, 32}));
    EXPECT_EQ(n.gemm.m, 64);
    EXPECT_EQ(n.gemm.k, 128);
    EXPECT_EQ(n.gemm.n, 32);
    EXPECT_EQ(n.gemm.batch, 1);
}

TEST(Graph, BatchedMatmul)
{
    Graph g;
    int a = g.input({{8, 4, 64, 128}, DataType::BF16}, "a");
    int b = g.input({{128, 32}, DataType::BF16}, "b");
    int c = g.matmul(a, b);
    EXPECT_EQ(g.node(c).gemm.batch, 32);
    EXPECT_EQ(g.node(c).output.shape,
              (std::vector<std::int64_t>{8, 4, 64, 32}));
}

TEST(Graph, ElementwiseTraffic)
{
    Graph g;
    int a = g.input({{1024}, DataType::FP32}, "a");
    int b = g.input({{1024}, DataType::FP32}, "b");
    int c = g.elementwise({a, b}, 1.0, false, "add");
    // Two reads + one write of 4 KiB each.
    EXPECT_EQ(g.node(c).trafficBytes, 3u * 4096);
}

TEST(Graph, NormalizationTraffic)
{
    Graph g;
    int a = g.input({{1024}, DataType::FP32}, "a");
    int n = g.normalization(a, 2, 4.0, "softmax");
    EXPECT_EQ(g.node(n).trafficBytes, 4u * 4096);
}

TEST(Graph, ConsumersTracksEdges)
{
    Graph g;
    int a = g.input({{16, 16}, DataType::BF16}, "a");
    int b = g.input({{16, 16}, DataType::BF16}, "b");
    int c = g.matmul(a, b);
    int d = g.elementwise({c}, 1.0, false);
    int e = g.elementwise({c}, 1.0, false);
    auto cons = g.consumers(c);
    EXPECT_EQ(cons.size(), 2u);
    EXPECT_EQ(cons[0], d);
    EXPECT_EQ(cons[1], e);
}

TEST(Graph, TensorDescBytes)
{
    TensorDesc d{{3, 5}, DataType::FP32};
    EXPECT_EQ(d.elements(), 15);
    EXPECT_EQ(d.bytes(), 60u);
}

TEST(GraphDeath, MatmulKMismatch)
{
    Graph g;
    int a = g.input({{4, 8}, DataType::BF16}, "a");
    int b = g.input({{16, 4}, DataType::BF16}, "b");
    EXPECT_DEATH((void)g.matmul(a, b), "K mismatch");
}

TEST(GraphDeath, ForwardReferenceRejected)
{
    Graph g;
    int a = g.input({{4, 4}, DataType::BF16}, "a");
    (void)a;
    EXPECT_DEATH((void)g.elementwise({5}, 1.0, false), "bad");
}

} // namespace
} // namespace vespera::graph
