#include <gtest/gtest.h>

#include "graph/compiler.h"
#include "graph/graph.h"

namespace vespera::graph {
namespace {

Graph
smallGraph()
{
    Graph g;
    int a = g.input({{64, 64}, DataType::BF16}, "a");
    int b = g.input({{64, 64}, DataType::BF16}, "b");
    int mm = g.matmul(a, b, "mm");
    int r = g.elementwise({mm}, 1.0, false, "relu");
    (void)g.elementwise({r}, 1.0, false, "scale");
    return g;
}

TEST(Validate, AcceptsWellFormedGraph)
{
    Graph g = smallGraph();
    EXPECT_EQ(g.validate(), 5);
}

TEST(Validate, CountsLiveNodesAfterFusion)
{
    Graph g = smallGraph();
    Compiler().compile(g);
    // relu fused into scale: 5 -> 4 live nodes.
    EXPECT_EQ(g.validate(), 4);
}

TEST(Validate, RejectsReadOfFusedNode)
{
    Graph g = smallGraph();
    Compiler().compile(g);
    // Corrupt: point the surviving elementwise at the fused-away node.
    for (auto &n : g.nodes()) {
        if (!n.fusedAway && n.kind == OpKind::Elementwise)
            n.inputs = {3}; // "relu" was node 3 and is fused away.
    }
    EXPECT_DEATH((void)g.validate(), "fused-away");
}

TEST(Validate, RejectsDegenerateGemm)
{
    Graph g = smallGraph();
    g.nodes()[2].gemm.k = 0;
    EXPECT_DEATH((void)g.validate(), "degenerate GEMM");
}

TEST(Validate, RejectsMissingCustomCost)
{
    Graph g;
    int a = g.input({{4}, DataType::BF16}, "a");
    (void)g.custom({a}, {{4}, DataType::BF16},
                   [](DeviceKind) { return OpCost{}; }, "c");
    g.nodes()[1].customCost = nullptr;
    EXPECT_DEATH((void)g.validate(), "missing cost callback");
}

TEST(Dot, ContainsLiveNodesAndEdges)
{
    Graph g = smallGraph();
    Compiler().compile(g);
    std::string dot = g.toDot();
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("\"mm\""), std::string::npos);
    EXPECT_NE(dot.find("\"scale\""), std::string::npos);
    // Fused node omitted.
    EXPECT_EQ(dot.find("\"relu\""), std::string::npos);
    // Edge from matmul into the fused survivor.
    EXPECT_NE(dot.find("n2 -> n4"), std::string::npos);
}

TEST(Dot, StylesByOpKind)
{
    Graph g;
    int a = g.input({{1024, 1024}, DataType::BF16}, "a");
    int ar = g.allReduce(a, 4, "ar");
    (void)g.normalization(ar, 1, 4.0, "norm");
    std::string dot = g.toDot();
    EXPECT_NE(dot.find("shape=diamond"), std::string::npos);
    EXPECT_NE(dot.find("style=dashed"), std::string::npos);
    EXPECT_NE(dot.find("style=dotted"), std::string::npos);
}

} // namespace
} // namespace vespera::graph
