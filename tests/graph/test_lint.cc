/**
 * @file
 * Tests of the graph-level lint pass: findings mirror the compiler's
 * own passes, so a compiled graph must be clean of the findings those
 * passes address.
 */

#include <gtest/gtest.h>

#include "graph/compiler.h"
#include "graph/lint.h"
#include "models/dlrm.h"

namespace vespera::graph {
namespace {

int
countRule(const std::vector<analysis::Diagnostic> &diags,
          const char *rule)
{
    int n = 0;
    for (const analysis::Diagnostic &d : diags) {
        if (d.rule == rule)
            n++;
    }
    return n;
}

/// input -> eltwise -> eltwise chain: the canonical fusion candidate.
Graph
elementwiseChain()
{
    Graph g;
    const int in = g.input({{1024, 1024}, DataType::BF16}, "x");
    const int a = g.elementwise({in}, 1, false, "scale");
    (void)g.elementwise({a}, 1, false, "bias");
    return g;
}

TEST(GraphLint, UnfusedElementwiseFlaggedOnRawGraph)
{
    Graph g = elementwiseChain();
    const auto diags = lintGraph(g);
    ASSERT_EQ(countRule(diags, analysis::rules::unfusedElementwise), 1);
    for (const analysis::Diagnostic &d : diags) {
        if (d.rule == analysis::rules::unfusedElementwise) {
            EXPECT_EQ(d.kernel, "scale");
            // 2 MB intermediate: one write + one read saved.
            EXPECT_EQ(d.wastedBytes, 2u * 1024u * 1024u * 2u);
        }
    }
}

TEST(GraphLint, CompiledGraphHasNoFusionFindings)
{
    Graph g = elementwiseChain();
    Compiler().compile(g);
    const auto diags = lintGraph(g);
    EXPECT_EQ(countRule(diags, analysis::rules::unfusedElementwise), 0);
}

TEST(GraphLint, MultiConsumerChainIsNotAFusionCandidate)
{
    Graph g;
    const int in = g.input({{256, 256}, DataType::BF16}, "x");
    const int a = g.elementwise({in}, 1, false, "shared");
    (void)g.elementwise({a}, 1, false, "user1");
    (void)g.elementwise({a}, 1, false, "user2");
    const auto diags = lintGraph(g);
    // 'shared' has two consumers; only the user1/user2 tails are
    // single-consumer, and they have no elementwise consumers at all.
    EXPECT_EQ(countRule(diags, analysis::rules::unfusedElementwise), 0);
}

TEST(GraphLint, UnpipelinedConsumerClearedByCompiler)
{
    Graph g;
    const int x = g.input({{1024, 1024}, DataType::BF16}, "x");
    const int w = g.input({{1024, 1024}, DataType::BF16}, "w");
    const int mm = g.matmul(x, w, "proj");
    (void)g.elementwise({mm}, 1, false, "act");
    const auto raw = lintGraph(g);
    EXPECT_EQ(countRule(raw, analysis::rules::unpipelinedConsumer), 1);

    Compiler().compile(g);
    const auto compiled = lintGraph(g);
    EXPECT_EQ(
        countRule(compiled, analysis::rules::unpipelinedConsumer), 0);
}

TEST(GraphLint, GeometryThrashDetectedOnDlrmDenseGraph)
{
    // DLRM RM1's dense stack mixes MLP widths enough that the MME
    // geometry selector switches configurations (observed: 4 of 14
    // transitions) — exactly the churn Figure 7(a) attributes cost to.
    models::DlrmModel model(models::DlrmConfig::rm1());
    Graph g = model.buildDenseGraph(models::DlrmRunConfig{});
    const auto diags = lintGraph(g);
    ASSERT_EQ(countRule(diags, analysis::rules::mmeGeometryThrash), 1);
    for (const analysis::Diagnostic &d : diags) {
        if (d.rule == analysis::rules::mmeGeometryThrash) {
            EXPECT_NE(d.message.find("reconfigure"),
                      std::string::npos);
        }
    }
}

TEST(GraphLint, UniformGemmsDoNotThrash)
{
    Graph g;
    int cur = g.input({{512, 512}, DataType::BF16}, "x");
    for (int i = 0; i < 4; i++) {
        const int w = g.input({{512, 512}, DataType::BF16}, "w");
        cur = g.matmul(cur, w, "layer");
    }
    const auto diags = lintGraph(g);
    EXPECT_EQ(countRule(diags, analysis::rules::mmeGeometryThrash), 0);
}

} // namespace
} // namespace vespera::graph
