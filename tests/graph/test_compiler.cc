#include <gtest/gtest.h>

#include "graph/compiler.h"

namespace vespera::graph {
namespace {

Graph
chainGraph()
{
    // matmul -> relu -> scale -> bias-add (three fusable vector ops).
    Graph g;
    int a = g.input({{512, 512}, DataType::BF16}, "a");
    int b = g.input({{512, 512}, DataType::BF16}, "b");
    int mm = g.matmul(a, b, "mm");
    int r = g.elementwise({mm}, 1.0, false, "relu");
    int s = g.elementwise({r}, 1.0, false, "scale");
    (void)g.elementwise({s}, 1.0, false, "bias");
    return g;
}

TEST(Compiler, FusesElementwiseChain)
{
    Graph g = chainGraph();
    Compiler compiler;
    CompileStats stats = compiler.compile(g);
    EXPECT_EQ(stats.fusedOps, 2);
    // Each fusion removes one intermediate write + read.
    EXPECT_EQ(stats.trafficSaved, 2u * 2 * 512 * 512 * 2);

    int alive_vector_ops = 0;
    for (const auto &n : g.nodes()) {
        if (!n.fusedAway && n.kind == OpKind::Elementwise)
            alive_vector_ops++;
    }
    EXPECT_EQ(alive_vector_ops, 1);
}

TEST(Compiler, FusedNodeAccumulatesFlops)
{
    Graph g = chainGraph();
    Compiler().compile(g);
    for (const auto &n : g.nodes()) {
        if (!n.fusedAway && n.kind == OpKind::Elementwise) {
            EXPECT_DOUBLE_EQ(n.flopsPerElement, 3.0);
            EXPECT_EQ(n.numFusedOps, 3);
        }
    }
}

TEST(Compiler, MarksMmeTpcPipelining)
{
    Graph g = chainGraph();
    CompileStats stats = Compiler().compile(g);
    EXPECT_EQ(stats.pipelinedPairs, 1);
    bool found = false;
    for (const auto &n : g.nodes()) {
        if (!n.fusedAway && n.kind == OpKind::Elementwise) {
            EXPECT_TRUE(n.pipelinedWithProducer);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Compiler, DoesNotFuseAcrossFanout)
{
    Graph g;
    int a = g.input({{256, 256}, DataType::BF16}, "a");
    int r = g.elementwise({a}, 1.0, false, "relu");
    (void)g.elementwise({r}, 1.0, false, "user1");
    (void)g.elementwise({r}, 1.0, false, "user2");
    CompileStats stats = Compiler().compile(g);
    // r has two consumers: must stay materialized. The consumers have
    // no further consumers, so nothing fuses.
    EXPECT_EQ(stats.fusedOps, 0);
}

TEST(Compiler, PassesCanBeDisabled)
{
    Graph g = chainGraph();
    CompilerOptions opts;
    opts.fuseElementwise = false;
    opts.pipelineMmeTpc = false;
    CompileStats stats = Compiler(opts).compile(g);
    EXPECT_EQ(stats.fusedOps, 0);
    EXPECT_EQ(stats.pipelinedPairs, 0);
}

TEST(Compiler, RewiresFusedInputs)
{
    Graph g;
    int a = g.input({{128, 128}, DataType::BF16}, "a");
    int b = g.input({{128, 128}, DataType::BF16}, "b");
    int x = g.elementwise({a}, 1.0, false, "x");
    int y = g.elementwise({x, b}, 1.0, false, "y");
    Compiler().compile(g);
    EXPECT_TRUE(g.node(x).fusedAway);
    // y now reads a directly (plus b).
    EXPECT_EQ(g.node(y).inputs, (std::vector<int>{a, b}));
}

} // namespace
} // namespace vespera::graph
