#include <gtest/gtest.h>

#include "kern/stream.h"

namespace vespera::kern {
namespace {

StreamConfig
smallConfig(StreamOp op)
{
    StreamConfig c;
    c.op = op;
    c.numElements = 1 << 20; // Enough for steady state, fast to trace.
    return c;
}

TEST(Stream, GaudiRunsAllOps)
{
    for (StreamOp op :
         {StreamOp::Add, StreamOp::Scale, StreamOp::Triad}) {
        StreamResult r = runStreamGaudi(smallConfig(op));
        EXPECT_GT(r.gflops, 0) << streamOpName(op);
        EXPECT_LE(r.vectorUtilization, 1.0);
        EXPECT_LE(r.hbmUtilization, 1.0);
    }
}

// Figure 8(a): sub-256 B access granularity collapses throughput.
TEST(Stream, GranularityPenaltyBelow256B)
{
    StreamConfig c = smallConfig(StreamOp::Triad);
    c.numTpcs = 1;
    c.numElements = 1 << 18;
    c.accessBytes = 256;
    double full = runStreamGaudi(c).gflops;
    c.accessBytes = 64;
    double quarter = runStreamGaudi(c).gflops;
    c.accessBytes = 16;
    double sixteenth = runStreamGaudi(c).gflops;
    EXPECT_GT(full, 2.5 * quarter);
    EXPECT_GT(quarter, 2.5 * sixteenth);
}

TEST(Stream, GranularityAbove256BSaturates)
{
    StreamConfig c = smallConfig(StreamOp::Triad);
    c.numTpcs = 1;
    c.numElements = 1 << 18;
    c.accessBytes = 256;
    double at256 = runStreamGaudi(c).gflops;
    c.accessBytes = 1024;
    double at1024 = runStreamGaudi(c).gflops;
    EXPECT_NEAR(at1024 / at256, 1.0, 0.35);
}

// Figure 8(b): unrolling helps; SCALE benefits the most (single load
// stream leaves the most pipeline slack).
TEST(Stream, UnrollingImprovesAllOps)
{
    for (StreamOp op :
         {StreamOp::Add, StreamOp::Scale, StreamOp::Triad}) {
        StreamConfig c = smallConfig(op);
        c.numTpcs = 1;
        c.numElements = 1 << 18;
        c.unroll = 1;
        double u1 = runStreamGaudi(c).gflops;
        c.unroll = 8;
        double u8 = runStreamGaudi(c).gflops;
        EXPECT_GT(u8, u1) << streamOpName(op);
    }
}

// Figure 8(c): weak scaling saturates at the HBM bound well below the
// 24-TPC linear extrapolation, near the paper's chip-level numbers
// (ADD ~330, SCALE ~530, TRIAD ~670 GFLOPS).
TEST(Stream, ChipSaturationBands)
{
    struct Band { StreamOp op; double lo, hi; };
    for (auto [op, lo, hi] : {Band{StreamOp::Add, 250, 420},
                              Band{StreamOp::Scale, 400, 650},
                              Band{StreamOp::Triad, 520, 820}}) {
        StreamConfig c = smallConfig(op);
        c.numElements = 24 << 20;
        c.numTpcs = 24;
        StreamResult r = runStreamGaudi(c);
        EXPECT_GT(r.gflops, lo) << streamOpName(op);
        EXPECT_LT(r.gflops, hi) << streamOpName(op);
    }
}

// Figure 8(d,e,f): raising operational intensity saturates compute at
// ~50% of peak for ADD/SCALE (non-FMA) and ~99% for TRIAD (MAC).
TEST(Stream, IntensitySaturationGaudi)
{
    StreamConfig c = smallConfig(StreamOp::Triad);
    c.numElements = 1 << 20;
    c.extraComputePerVector = 256;
    StreamResult triad = runStreamGaudi(c);
    EXPECT_GT(triad.vectorUtilization, 0.85);

    c.op = StreamOp::Add;
    StreamResult add = runStreamGaudi(c);
    EXPECT_GT(add.vectorUtilization, 0.40);
    EXPECT_LT(add.vectorUtilization, 0.55);
}

TEST(Stream, IntensitySaturationA100)
{
    StreamConfig c = smallConfig(StreamOp::Triad);
    c.numElements = 16 << 20;
    c.extraComputePerVector = 512;
    StreamResult triad = runStreamA100(c);
    EXPECT_GT(triad.vectorUtilization, 0.9);

    c.op = StreamOp::Scale;
    StreamResult scale = runStreamA100(c);
    EXPECT_GT(scale.vectorUtilization, 0.45);
    EXPECT_LT(scale.vectorUtilization, 0.52);
}

// Key takeaway #2: at high intensity A100's 3.5x vector advantage
// shows; at low intensity Gaudi's higher bandwidth gives it the edge.
TEST(Stream, CrossoverBetweenDevices)
{
    StreamConfig mem = smallConfig(StreamOp::Triad);
    mem.numElements = 24 << 20;
    StreamResult g_mem = runStreamGaudi(mem);
    StreamResult a_mem = runStreamA100(mem);
    EXPECT_GT(g_mem.gflops, a_mem.gflops);

    StreamConfig comp = mem;
    comp.numElements = 1 << 20;
    comp.extraComputePerVector = 128;
    StreamResult g_comp = runStreamGaudi(comp);
    StreamResult a_comp = runStreamA100(comp);
    EXPECT_GT(a_comp.gflops, 2.5 * g_comp.gflops);
}

} // namespace
} // namespace vespera::kern
