#include <gtest/gtest.h>

#include "kern/layernorm.h"
#include "tpc/dispatcher.h"

namespace vespera::kern {
namespace {

TEST(Norm, RmsNormSelfVerifies)
{
    NormConfig c;
    c.kind = NormKind::RmsNorm;
    c.rows = 32;
    c.cols = 1024;
    auto r = runNormGaudi(c);
    EXPECT_GT(r.time, 0);
    EXPECT_GT(r.flops, 0);
}

TEST(Norm, LayerNormSelfVerifies)
{
    NormConfig c;
    c.kind = NormKind::LayerNorm;
    c.rows = 32;
    c.cols = 1024;
    auto r = runNormGaudi(c);
    EXPECT_GT(r.time, 0);
}

TEST(Norm, LayerNormOutputHasZeroMeanUnitVariance)
{
    NormConfig c;
    c.kind = NormKind::LayerNorm;
    c.rows = 4;
    c.cols = 512;
    tpc::Tensor in({c.cols, c.rows}, c.dt);
    in.fill([](std::int64_t i) {
        return static_cast<float>((i * 7) % 19) - 9.0f;
    });
    tpc::Tensor out({c.cols, c.rows}, c.dt);
    runNormGaudi(c, in, out);
    for (std::int64_t row = 0; row < c.rows; row++) {
        double sum = 0, sq = 0;
        for (std::int64_t col = 0; col < c.cols; col++) {
            const double y = out.at({col, row, 0, 0, 0});
            sum += y;
            sq += y * y;
        }
        EXPECT_NEAR(sum / c.cols, 0.0, 1e-3);
        EXPECT_NEAR(sq / c.cols, 1.0, 1e-2);
    }
}

TEST(Norm, RmsNormScalesLinearly)
{
    // RMSNorm(k*x) == RMSNorm(x) for k > 0 (scale invariance).
    NormConfig c;
    c.kind = NormKind::RmsNorm;
    c.rows = 2;
    c.cols = 256;
    c.epsilon = 0; // Exact invariance requires eps = 0.
    tpc::Tensor a({c.cols, c.rows}, c.dt), b({c.cols, c.rows}, c.dt);
    a.fill([](std::int64_t i) {
        return static_cast<float>(i % 11) + 1.0f;
    });
    b.fill([](std::int64_t i) {
        return 3.0f * (static_cast<float>(i % 11) + 1.0f);
    });
    tpc::Tensor oa({c.cols, c.rows}, c.dt), ob({c.cols, c.rows}, c.dt);
    runNormGaudi(c, a, oa);
    runNormGaudi(c, b, ob);
    for (std::int64_t i = 0; i < oa.numElements(); i += 17)
        EXPECT_NEAR(oa.at(i), ob.at(i), 1e-4);
}

TEST(Norm, MemoryBoundAtScale)
{
    // Two read passes + one write: normalization is bandwidth-bound.
    NormConfig c;
    c.rows = 256;
    c.cols = 4096;
    auto r = runNormGaudi(c);
    EXPECT_GT(r.hbmUtilization, 0.3);
}

TEST(NormDeath, RejectsUnalignedRows)
{
    NormConfig c;
    c.cols = 100;
    EXPECT_DEATH(runNormGaudi(c), "aligned");
}

TEST(ProgramStats, CountsInstructionMix)
{
    tpc::Program p;
    tpc::MemberRange range{{0, 0, 0, 0, 0}, {1, 1, 1, 1, 1}};
    tpc::TpcContext ctx(p, range);
    tpc::Tensor t({256}, DataType::FP32);
    tpc::Vec a = ctx.v_ld_tnsr({0, 0, 0, 0, 0}, t);
    tpc::Vec b = ctx.v_ld_tnsr({64, 0, 0, 0, 0}, t, 256,
                               tpc::Access::Random);
    tpc::Vec s = ctx.v_add(a, b);
    ctx.v_st_local(0, s);
    ctx.v_st_tnsr({0, 0, 0, 0, 0}, t, s);
    (void)ctx.s_ld({0, 0, 0, 0, 0}, t);

    auto stats = p.stats();
    EXPECT_EQ(stats.loads, 2u);
    EXPECT_EQ(stats.stores, 2u);
    EXPECT_EQ(stats.vectorOps, 1u);
    EXPECT_EQ(stats.scalarOps, 1u);
    EXPECT_EQ(stats.streamAccesses, 2u); // One load + one store.
    EXPECT_EQ(stats.randomAccesses, 2u); // Vector load + scalar load.
    EXPECT_EQ(stats.localAccesses, 1u);
    EXPECT_EQ(stats.total(), 6u);
}

TEST(Intrinsics, RsqrtAndSplat)
{
    tpc::Program p;
    tpc::MemberRange range{{0, 0, 0, 0, 0}, {1, 1, 1, 1, 1}};
    tpc::TpcContext ctx(p, range);
    tpc::Vec four = ctx.v_splat(4.0f, 8);
    ASSERT_EQ(four.laneCount(), 8);
    EXPECT_FLOAT_EQ(four.lanes[7], 4.0f);
    tpc::Vec half = ctx.v_rsqrt(four);
    EXPECT_FLOAT_EQ(half.lanes[0], 0.5f);
}

} // namespace
} // namespace vespera::kern
