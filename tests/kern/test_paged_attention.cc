#include <gtest/gtest.h>

#include "kern/paged_attention.h"

namespace vespera::kern {
namespace {

PagedAttentionConfig
defaultConfig()
{
    PagedAttentionConfig c;
    c.batch = 32;
    c.seqLen = 4096;
    return c;
}

TEST(PagedAttention, KvBytesFormula)
{
    PagedAttentionConfig c = defaultConfig();
    // 32 x 4096 x 2 x 8 x 128 x 2 B.
    EXPECT_EQ(c.kvBytes(), 32ull * 4096 * 2 * 8 * 128 * 2);
}

// Figure 17(a): vLLM_opt ~7.4x over vLLM_base at 0% padding.
TEST(PagedAttention, OptSpeedupAtZeroPadding)
{
    PagedAttentionConfig c = defaultConfig();
    auto base = runPagedAttention(c, PagedAttentionImpl::GaudiBase);
    auto opt = runPagedAttention(c, PagedAttentionImpl::GaudiOpt);
    double speedup = base.time / opt.time;
    EXPECT_GT(speedup, 5.0);
    EXPECT_LT(speedup, 10.0);
}

// Figure 17(b): speedup grows to ~55x at 90% padding.
TEST(PagedAttention, SpeedupGrowsWithPadding)
{
    PagedAttentionConfig c = defaultConfig();
    double prev = 0;
    for (double pad : {0.0, 0.3, 0.6, 0.9}) {
        c.paddedFraction = pad;
        auto base = runPagedAttention(c, PagedAttentionImpl::GaudiBase);
        c.paddedFraction = 0; // Opt ignores padding by construction.
        auto opt = runPagedAttention(c, PagedAttentionImpl::GaudiOpt);
        double speedup = base.time / opt.time;
        EXPECT_GT(speedup, prev);
        prev = speedup;
    }
    EXPECT_GT(prev, 35.0);
    EXPECT_LT(prev, 75.0);
}

TEST(PagedAttention, PaddingDoesNotAffectOptOrA100)
{
    PagedAttentionConfig c = defaultConfig();
    auto opt0 = runPagedAttention(c, PagedAttentionImpl::GaudiOpt);
    auto a0 = runPagedAttention(c, PagedAttentionImpl::A100Fused);
    c.paddedFraction = 0.8;
    auto opt8 = runPagedAttention(c, PagedAttentionImpl::GaudiOpt);
    auto a8 = runPagedAttention(c, PagedAttentionImpl::A100Fused);
    EXPECT_DOUBLE_EQ(opt0.time, opt8.time);
    EXPECT_DOUBLE_EQ(a0.time, a8.time);
}

// Figure 17(c): vLLM_opt reaches ~45% of A100's PagedAttention
// throughput.
TEST(PagedAttention, OptVsA100Band)
{
    PagedAttentionConfig c = defaultConfig();
    auto opt = runPagedAttention(c, PagedAttentionImpl::GaudiOpt);
    auto a100 = runPagedAttention(c, PagedAttentionImpl::A100Fused);
    double relative = a100.time / opt.time;
    EXPECT_GT(relative, 0.33);
    EXPECT_LT(relative, 0.60);
}

TEST(PagedAttention, TimeScalesWithContext)
{
    PagedAttentionConfig c = defaultConfig();
    auto short_ctx = runPagedAttention(c, PagedAttentionImpl::GaudiOpt);
    c.seqLen = 8192;
    auto long_ctx = runPagedAttention(c, PagedAttentionImpl::GaudiOpt);
    EXPECT_NEAR(long_ctx.time / short_ctx.time, 2.0, 0.25);
}

TEST(PagedAttention, TokensPerSecondConsistent)
{
    PagedAttentionConfig c = defaultConfig();
    auto r = runPagedAttention(c, PagedAttentionImpl::GaudiOpt);
    EXPECT_NEAR(r.tokensPerSec, c.batch / r.time, 1e-6);
}

TEST(PagedAttentionDeath, RejectsFullPadding)
{
    PagedAttentionConfig c = defaultConfig();
    c.paddedFraction = 1.0;
    EXPECT_DEATH(runPagedAttention(c, PagedAttentionImpl::GaudiBase),
                 "padded fraction");
}

} // namespace
} // namespace vespera::kern
