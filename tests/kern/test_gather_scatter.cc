#include <gtest/gtest.h>

#include "kern/gather_scatter.h"

namespace vespera::kern {
namespace {

GatherScatterConfig
smallConfig(Bytes vec_bytes)
{
    GatherScatterConfig c;
    c.numVectors = 1 << 14;
    c.vectorBytes = vec_bytes;
    c.accessFraction = 1.0;
    return c;
}

TEST(GatherScatter, GaudiGatherVerifies)
{
    Rng rng(1);
    auto r = runGatherScatterGaudi(smallConfig(256), rng);
    EXPECT_GT(r.hbmUtilization, 0.0);
    EXPECT_LE(r.hbmUtilization, 1.0);
    EXPECT_EQ(r.usefulBytes, (1ull << 14) * 256);
}

// Key takeaway #3: Gaudi competitive at >=256 B, collapses below.
TEST(GatherScatter, GaudiSmallVectorCollapse)
{
    Rng rng(2);
    double u256 = runGatherScatterGaudi(smallConfig(256), rng)
                      .hbmUtilization;
    double u64 =
        runGatherScatterGaudi(smallConfig(64), rng).hbmUtilization;
    EXPECT_GT(u256, 2.5 * u64);
}

TEST(GatherScatter, A100DegradesGracefully)
{
    // Large access counts so launch/ramp overheads amortize away.
    GatherScatterConfig c256 = smallConfig(256);
    c256.numVectors = 1 << 20;
    GatherScatterConfig c64 = smallConfig(64);
    c64.numVectors = 1 << 20;
    double a256 = runGatherScatterA100(c256).hbmUtilization;
    double a64 = runGatherScatterA100(c64).hbmUtilization;
    // A100's 32 B sectors keep small-vector efficiency much closer.
    EXPECT_LT(a256 / a64, 2.2);
}

TEST(GatherScatter, DeviceComparisonMatchesPaper)
{
    Rng rng(3);
    // >=256 B: same ballpark (paper: 64% vs 72% on average).
    GatherScatterConfig big = smallConfig(512);
    big.numVectors = 1 << 17;
    double g = runGatherScatterGaudi(big, rng).hbmUtilization;
    double a = runGatherScatterA100(big).hbmUtilization;
    EXPECT_GT(g, 0.4);
    EXPECT_GT(a, 0.5);
    EXPECT_LT(a / g, 1.8);

    // <=128 B: A100 wins by >~2x (paper: 2.4x).
    GatherScatterConfig small = smallConfig(128);
    small.numVectors = 1 << 17;
    double gs = runGatherScatterGaudi(small, rng).hbmUtilization;
    double as = runGatherScatterA100(small).hbmUtilization;
    EXPECT_GT(as / gs, 1.7);
}

TEST(GatherScatter, ScatterRunsAndIsSlower)
{
    Rng rng(4);
    GatherScatterConfig c = smallConfig(64);
    auto gather = runGatherScatterGaudi(c, rng);
    c.scatter = true;
    auto scatter = runGatherScatterGaudi(c, rng);
    EXPECT_GE(scatter.time, gather.time * 0.9);
}

TEST(GatherScatter, LowerFractionLowerAmortization)
{
    Rng rng(5);
    GatherScatterConfig c = smallConfig(256);
    c.numVectors = 1 << 15;
    auto full = runGatherScatterGaudi(c, rng);
    c.accessFraction = 0.01;
    auto sparse = runGatherScatterGaudi(c, rng);
    // Fixed launch+ramp costs dominate tiny access counts.
    EXPECT_LT(sparse.hbmUtilization, full.hbmUtilization);
}

TEST(GatherScatter, DeeperUnrollHelps)
{
    Rng rng(6);
    GatherScatterConfig c = smallConfig(256);
    c.unroll = 1;
    auto u1 = runGatherScatterGaudi(c, rng);
    c.unroll = 16;
    auto u16 = runGatherScatterGaudi(c, rng);
    EXPECT_LT(u16.time, u1.time);
}

} // namespace
} // namespace vespera::kern
