#include <gtest/gtest.h>

#include "kern/gemm.h"
#include "kern/vector_op.h"

namespace vespera::kern {
namespace {

TEST(GemmDispatch, RoutesToBothDevices)
{
    hw::GemmShape shape{4096, 4096, 4096};
    auto g = runGemm(DeviceKind::Gaudi2, shape, DataType::BF16);
    auto a = runGemm(DeviceKind::A100, shape, DataType::BF16);
    EXPECT_GT(g.achievedFlops, 0);
    EXPECT_GT(a.achievedFlops, 0);
    // Gaudi geometry labels come from the MME; A100's from CTA tiles.
    EXPECT_NE(g.geometry, "");
    EXPECT_NE(a.geometry, "");
}

TEST(VectorOp, MemoryBoundCase)
{
    auto c = vectorOpCost(hw::gaudi2Spec(), 1ull << 30, 1e6,
                          DataType::BF16, false);
    EXPECT_TRUE(c.memoryBound());
    EXPECT_GT(c.time, c.computeTime);
}

TEST(VectorOp, ComputeBoundCase)
{
    auto c = vectorOpCost(hw::gaudi2Spec(), 1 << 10, 1e12,
                          DataType::BF16, true);
    EXPECT_FALSE(c.memoryBound());
}

TEST(VectorOp, NonFmaHalvesPeak)
{
    auto fma = vectorOpCost(hw::gaudi2Spec(), 0, 1e12, DataType::BF16,
                            true, false);
    auto add = vectorOpCost(hw::gaudi2Spec(), 0, 1e12, DataType::BF16,
                            false, false);
    EXPECT_NEAR(add.computeTime / fma.computeTime, 2.0, 1e-9);
}

TEST(VectorOp, LaunchOverheadToggle)
{
    auto with = vectorOpCost(hw::a100Spec(), 1 << 20, 1e6,
                             DataType::BF16, false, true);
    auto without = vectorOpCost(hw::a100Spec(), 1 << 20, 1e6,
                                DataType::BF16, false, false);
    EXPECT_NEAR(with.time - without.time,
                hw::a100Spec().launchOverhead, 1e-12);
}

} // namespace
} // namespace vespera::kern
