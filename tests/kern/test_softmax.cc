#include <gtest/gtest.h>

#include "kern/softmax.h"
#include "tpc/context.h"

namespace vespera::kern {
namespace {

TEST(Softmax, SelfVerifiesFunctionally)
{
    SoftmaxConfig c;
    c.rows = 64;
    c.cols = 512;
    auto r = runSoftmaxGaudi(c); // Panics internally on mismatch.
    EXPECT_GT(r.time, 0);
    EXPECT_GT(r.flops, 0);
    EXPECT_LE(r.hbmUtilization, 1.0);
}

TEST(Softmax, RowsSumToOne)
{
    SoftmaxConfig c;
    c.rows = 8;
    c.cols = 256;
    tpc::Tensor input({c.cols, c.rows}, c.dt);
    input.fill([](std::int64_t i) {
        return static_cast<float>((i % 17)) / 3.0f;
    });
    tpc::Tensor output({c.cols, c.rows}, c.dt);
    runSoftmaxGaudi(c, input, output);
    for (std::int64_t row = 0; row < c.rows; row++) {
        double sum = 0;
        for (std::int64_t col = 0; col < c.cols; col++)
            sum += output.at({col, row, 0, 0, 0});
        EXPECT_NEAR(sum, 1.0, 1e-4) << "row " << row;
    }
}

TEST(Softmax, InvariantToConstantShift)
{
    SoftmaxConfig c;
    c.rows = 2;
    c.cols = 128;
    tpc::Tensor a({c.cols, c.rows}, c.dt), b({c.cols, c.rows}, c.dt);
    a.fill([](std::int64_t i) { return static_cast<float>(i % 9); });
    b.fill([](std::int64_t i) {
        return static_cast<float>(i % 9) + 50.0f;
    });
    tpc::Tensor oa({c.cols, c.rows}, c.dt), ob({c.cols, c.rows}, c.dt);
    runSoftmaxGaudi(c, a, oa);
    runSoftmaxGaudi(c, b, ob);
    for (std::int64_t i = 0; i < oa.numElements(); i++)
        EXPECT_NEAR(oa.at(i), ob.at(i), 1e-5);
}

TEST(Softmax, ScalesAcrossTpcs)
{
    SoftmaxConfig c;
    c.rows = 96;
    c.cols = 1024;
    c.numTpcs = 1;
    auto one = runSoftmaxGaudi(c);
    c.numTpcs = 24;
    auto many = runSoftmaxGaudi(c);
    EXPECT_LT(many.time, one.time / 4);
}

TEST(SoftmaxDeath, RejectsOversizedRows)
{
    SoftmaxConfig c;
    c.rows = 1;
    c.cols = 1 << 18;
    EXPECT_DEATH(runSoftmaxGaudi(c), "local-memory staging");
}

// New intrinsics behave functionally.
TEST(Intrinsics, ExpReciprocalReduceBroadcast)
{
    tpc::Program p;
    tpc::MemberRange range{{0, 0, 0, 0, 0}, {1, 1, 1, 1, 1}};
    tpc::TpcContext ctx(p, range);
    tpc::Tensor t({64}, DataType::FP32);
    t.fill([](std::int64_t i) { return static_cast<float>(i % 4); });

    tpc::Vec v = ctx.v_ld_tnsr({0, 0, 0, 0, 0}, t);
    tpc::Vec e = ctx.v_exp(v);
    EXPECT_FLOAT_EQ(e.lanes[0], 1.0f);
    EXPECT_NEAR(e.lanes[1], 2.71828f, 1e-4);

    tpc::Vec r = ctx.v_reciprocal(e);
    EXPECT_NEAR(r.lanes[1], 1.0f / 2.71828f, 1e-4);

    tpc::Vec mx = ctx.v_reduce_max(v);
    ASSERT_EQ(mx.laneCount(), 1);
    EXPECT_FLOAT_EQ(mx.lanes[0], 3.0f);

    tpc::Vec sum = ctx.v_reduce_add(v);
    EXPECT_FLOAT_EQ(sum.lanes[0], 96.0f); // 16 x (0+1+2+3).

    tpc::Vec b = ctx.v_broadcast(mx, 64);
    ASSERT_EQ(b.laneCount(), 64);
    EXPECT_FLOAT_EQ(b.lanes[63], 3.0f);

    // Transcendentals cost more issue than simple ALU ops.
    double exp_flops = 0, add_flops = 0;
    for (const auto &instr : p.instrs()) {
        if (instr.dst == e.id)
            exp_flops = instr.flopsPerLane;
        if (instr.dst == sum.id)
            add_flops = instr.flopsPerLane;
    }
    EXPECT_GT(exp_flops, add_flops);
}

} // namespace
} // namespace vespera::kern
