#include <gtest/gtest.h>

#include "kern/embedding.h"

namespace vespera::kern {
namespace {

EmbeddingConfig
smallConfig()
{
    EmbeddingConfig c;
    c.numTables = 4;
    c.rowsPerTable = 1 << 12;
    c.vectorBytes = 256;
    c.batch = 128;
    c.pooling = 8;
    return c;
}

TEST(Embedding, AllVariantsVerifyFunctionally)
{
    EmbeddingLayerGaudi layer(smallConfig());
    for (auto v : {EmbeddingVariant::SdkSingleTable,
                   EmbeddingVariant::SingleTable,
                   EmbeddingVariant::BatchedTable}) {
        Rng rng(7);
        EmbeddingResult r = layer.run(v, rng);
        EXPECT_GT(r.time, 0) << embeddingVariantName(v);
        EXPECT_LE(r.hbmUtilization, 1.0);
    }
}

TEST(Embedding, LaunchCounts)
{
    EmbeddingLayerGaudi layer(smallConfig());
    Rng rng(8);
    EXPECT_EQ(layer.run(EmbeddingVariant::BatchedTable, rng)
                  .kernelLaunches, 1);
    EXPECT_EQ(layer.run(EmbeddingVariant::SingleTable, rng)
                  .kernelLaunches, 4);
}

// Section 4.1 footnote: the optimized SingleTable is ~1.6x the SDK's
// un-unrolled operator.
TEST(Embedding, OptimizedSingleTableBeatsSdk)
{
    EmbeddingConfig c = smallConfig();
    c.batch = 512;
    EmbeddingLayerGaudi layer(c);
    Rng rng(9);
    auto sdk = layer.run(EmbeddingVariant::SdkSingleTable, rng);
    auto opt = layer.run(EmbeddingVariant::SingleTable, rng);
    double speedup = sdk.time / opt.time;
    EXPECT_GT(speedup, 1.15);
    EXPECT_LT(speedup, 3.5);
}

// Figure 15(a): BatchedTable's advantage grows with the table count at
// small batch; SingleTable utilization stays flat.
TEST(Embedding, BatchedAdvantageGrowsWithTables)
{
    double gain_few, gain_many;
    {
        EmbeddingConfig c = smallConfig();
        c.numTables = 2;
        c.batch = 64;
        EmbeddingLayerGaudi layer(c);
        Rng rng(10);
        auto single = layer.run(EmbeddingVariant::SingleTable, rng);
        auto batched = layer.run(EmbeddingVariant::BatchedTable, rng);
        gain_few = single.time / batched.time;
    }
    {
        EmbeddingConfig c = smallConfig();
        c.numTables = 16;
        c.batch = 64;
        EmbeddingLayerGaudi layer(c);
        Rng rng(10);
        auto single = layer.run(EmbeddingVariant::SingleTable, rng);
        auto batched = layer.run(EmbeddingVariant::BatchedTable, rng);
        gain_many = single.time / batched.time;
    }
    EXPECT_GT(gain_many, gain_few);
    EXPECT_GT(gain_many, 1.5);
}

// Figures 15(b,c): the Single-vs-Batched gap narrows at large batch.
TEST(Embedding, GapNarrowsWithBatch)
{
    auto gap_at = [](int batch) {
        EmbeddingConfig c = smallConfig();
        c.batch = batch;
        EmbeddingLayerGaudi layer(c);
        Rng rng(11);
        auto single = layer.run(EmbeddingVariant::SingleTable, rng);
        auto batched = layer.run(EmbeddingVariant::BatchedTable, rng);
        return single.time / batched.time;
    };
    EXPECT_GT(gap_at(32), gap_at(1024));
}

// Key takeaway #6: >=256 B vectors: Gaudi ~95% of A100; <256 B: ~47%.
TEST(Embedding, GaudiVsA100ByVectorSize)
{
    auto ratio_at = [](Bytes vec) {
        EmbeddingConfig c = smallConfig();
        c.vectorBytes = vec;
        c.batch = 1024;
        c.numTables = 8;
        EmbeddingLayerGaudi layer(c);
        Rng rng(12);
        auto g = layer.run(EmbeddingVariant::BatchedTable, rng);
        auto a = runEmbeddingA100(c);
        return a.time / g.time; // Gaudi throughput relative to A100.
    };
    const double big = ratio_at(512);
    const double small = ratio_at(64);
    EXPECT_GT(big, 0.55);
    EXPECT_LT(small, 0.75);
    EXPECT_GT(big, small * 1.3);
}

TEST(Embedding, UtilizationGrowsWithVectorSize)
{
    double prev = 0;
    for (Bytes vec : {64, 128, 256, 512}) {
        EmbeddingConfig c = smallConfig();
        c.vectorBytes = vec;
        c.batch = 1024;
        EmbeddingLayerGaudi layer(c);
        Rng rng(13);
        auto r = layer.run(EmbeddingVariant::BatchedTable, rng);
        EXPECT_GT(r.hbmUtilization, prev) << vec;
        prev = r.hbmUtilization;
    }
}

TEST(EmbeddingDeath, RejectsBadVectorSize)
{
    EmbeddingConfig c = smallConfig();
    c.vectorBytes = 3;
    EXPECT_DEATH(EmbeddingLayerGaudi{c}, "multiple of the element size");
}

} // namespace
} // namespace vespera::kern
