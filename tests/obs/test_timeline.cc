#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "kern/gemm.h"
#include "obs/capture.h"
#include "obs/hist.h"
#include "obs/timeline.h"

namespace vespera::obs {
namespace {

// The tentpole contract (ISSUE): virtual-time series are a pure
// function of the simulated schedule — fixed-memory rings, windowed
// reset semantics, first-violation SLO stamps, capture-deferred
// publication — and cost one relaxed atomic load per run when off.

class TimelineTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto &tl = Timeline::instance();
        tl.setEnabled(false);
        tl.reset();
        tl.clearSlos();
        tl.setInterval(1.0);
        tl.setCapacity(512);
    }

    void
    TearDown() override
    {
        SetUp(); // leave the singleton as other suites expect it
    }
};

TEST_F(TimelineTest, SeriesRingKeepsLatestAndCountsDrops)
{
    TimelineSeries s("g", 3);
    for (int i = 0; i < 5; i++)
        s.append(i * 0.5, i * 10.0);
    EXPECT_EQ(s.size(), 3u);
    EXPECT_EQ(s.total(), 5u);
    EXPECT_EQ(s.dropped(), 2u);
    const auto kept = s.samples();
    ASSERT_EQ(kept.size(), 3u);
    // Oldest-first, and the *oldest* samples are the ones dropped.
    EXPECT_DOUBLE_EQ(kept[0].t, 1.0);
    EXPECT_DOUBLE_EQ(kept[0].value, 20.0);
    EXPECT_DOUBLE_EQ(kept[2].t, 2.0);
    EXPECT_DOUBLE_EQ(kept[2].value, 40.0);
}

TEST_F(TimelineTest, RecorderWindowResetSemantics)
{
    TimelineRecorder rec(0.5, 64, {});
    const int g_set = rec.gaugeId("level");
    const int g_add = rec.gaugeId("delta");
    const int g_max = rec.gaugeId("high_water");
    rec.set(g_set, 7.0);
    rec.add(g_add, 2.0);
    rec.add(g_add, 3.0);
    rec.max(g_max, 4.0);
    rec.max(g_max, 1.0); // below the running max: ignored
    rec.closeWindow();
    // Second window: nothing recorded at all.
    rec.closeWindow();

    const auto data = rec.snapshot();
    ASSERT_EQ(data.series.size(), 3u);
    auto find = [&](const std::string &name) {
        for (const auto &s : data.series)
            if (s.gauge == name)
                return s;
        ADD_FAILURE() << "missing series " << name;
        return data.series[0];
    };
    const auto level = find("level");
    ASSERT_EQ(level.samples.size(), 2u);
    EXPECT_DOUBLE_EQ(level.samples[0].t, 0.5); // stamped at window end
    EXPECT_DOUBLE_EQ(level.samples[0].value, 7.0);
    EXPECT_DOUBLE_EQ(level.samples[1].value, 7.0); // Keep: carries
    const auto delta = find("delta");
    EXPECT_DOUBLE_EQ(delta.samples[0].value, 5.0);
    EXPECT_DOUBLE_EQ(delta.samples[1].value, 0.0); // Zero: cleared
    const auto hw = find("high_water");
    EXPECT_DOUBLE_EQ(hw.samples[0].value, 4.0);
    EXPECT_DOUBLE_EQ(hw.samples[1].value, 0.0);
}

TEST_F(TimelineTest, RecorderTrailingPartialWindow)
{
    TimelineRecorder rec(1.0, 64, {});
    const int g = rec.gaugeId("g");
    rec.set(g, 1.0);
    rec.closeWindow();
    // Run ends mid-window: the partial window is emitted at the actual
    // end time, not at the never-reached boundary.
    rec.set(g, 2.0);
    rec.closeFinal(1.25);
    const auto data = rec.snapshot();
    ASSERT_EQ(data.series[0].samples.size(), 2u);
    EXPECT_DOUBLE_EQ(data.series[0].samples[1].t, 1.25);
    EXPECT_DOUBLE_EQ(data.series[0].samples[1].value, 2.0);

    // A run ending exactly on a boundary adds no empty extra window.
    TimelineRecorder exact(1.0, 64, {});
    exact.gaugeId("g");
    exact.closeWindow();
    exact.closeFinal(1.0);
    EXPECT_EQ(exact.snapshot().series[0].samples.size(), 1u);
}

TEST_F(TimelineTest, SloRecordsFirstViolationOnly)
{
    TimelineRecorder rec(1.0, 64, {SloSpec{"lat", 2.0}});
    const int g = rec.gaugeId("lat");
    rec.set(g, 1.5);
    rec.closeWindow(); // under the bound
    rec.set(g, 2.5);
    rec.closeWindow(); // first violation, t=2
    rec.set(g, 9.0);
    rec.closeWindow(); // worse, but not *first*
    const auto data = rec.snapshot();
    ASSERT_EQ(data.slos.size(), 1u);
    EXPECT_TRUE(data.slos[0].violated);
    EXPECT_DOUBLE_EQ(data.slos[0].firstViolationT, 2.0);
    EXPECT_DOUBLE_EQ(data.slos[0].firstViolationValue, 2.5);

    // Exactly at the bound is not a violation (bound is inclusive).
    TimelineRecorder ok(1.0, 64, {SloSpec{"lat", 2.0}});
    ok.set(ok.gaugeId("lat"), 2.0);
    ok.closeWindow();
    EXPECT_FALSE(ok.snapshot().slos[0].violated);
}

TEST_F(TimelineTest, PublishIsCaptureDeferredWithDeterministicLabels)
{
    auto &tl = Timeline::instance();
    tl.setEnabled(true);

    auto make = [](double v) {
        TimelineRecorder rec(1.0, 64, {});
        rec.set(rec.gaugeId("g"), v);
        rec.closeWindow();
        return rec;
    };

    SideEffectLog log_a, log_b;
    {
        // "Task 1" publishes before "task 0" — the wall-clock order a
        // racy parallel sweep could produce.
        TimelineRecorder a = make(1.0);
        TimelineRecorder b = make(2.0);
        {
            ScopedCapture cap(log_b);
            b.publish("");
        }
        {
            ScopedCapture cap(log_a);
            a.publish("");
        }
        // Nothing lands until replay, and the recorders may die first:
        // the deferred payload is self-contained by value.
        EXPECT_FALSE(tl.hasData());
    }
    // Replay in task-index order, as the runtime join does.
    log_a.replay();
    log_b.replay();

    const auto series = tl.series();
    ASSERT_EQ(series.size(), 2u);
    // Labels follow *replay* order, so they are thread-count-invariant.
    EXPECT_EQ(series[0].name, "run0.g");
    EXPECT_DOUBLE_EQ(series[0].samples[0].value, 1.0);
    EXPECT_EQ(series[1].name, "run1.g");
    EXPECT_DOUBLE_EQ(series[1].samples[0].value, 2.0);
}

TEST_F(TimelineTest, SingletonFloodGuardDropsWholeSeries)
{
    auto &tl = Timeline::instance();
    tl.setEnabled(true);
    TimelineRunData data;
    data.interval = 1.0;
    data.series.push_back({"g", 0, {{1.0, 1.0}}});
    for (std::size_t i = 0; i < Timeline::kMaxSeries + 5; i++)
        tl.publishRun("", data);
    EXPECT_EQ(tl.series().size(), Timeline::kMaxSeries);
    EXPECT_EQ(tl.droppedSeries(), 5u);
    tl.reset();
    EXPECT_FALSE(tl.hasData());
    EXPECT_EQ(tl.droppedSeries(), 0u);
}

// ---------------------------------------------------------------------------
// Histogram::diff — the delta behind the windowed p99 gauges.

TEST_F(TimelineTest, HistogramDiffIsTheWindowDelta)
{
    Histogram now("ttft"), earlier("ttft.prev");
    for (int i = 1; i <= 20; i++)
        earlier.add(i * 1e-3);
    now.merge(earlier);
    for (int i = 1; i <= 10; i++)
        now.add(i * 1e-2); // this window's samples
    const Histogram d = now.diff(earlier);
    EXPECT_EQ(d.count(), 10u);
    EXPECT_NEAR(d.sum(), 0.55, 1e-12);
    // The delta's percentile sees only the new samples: p99 of the
    // window is near 0.1s, far above the 20ms tail of the old ones.
    EXPECT_GT(d.percentile(99), 0.05);
    // Empty delta (no new samples): a well-formed zero histogram.
    const Histogram z = now.diff(now);
    EXPECT_EQ(z.count(), 0u);
    EXPECT_DOUBLE_EQ(z.percentile(99), 0.0);
}

TEST(TimelineDeathTest, HistogramDiffMismatchedLayoutsFails)
{
    Histogram def("default.layout");
    Histogram coarse("coarse.layout", Histogram::Layout{1e-6, 4, 32});
    EXPECT_DEATH(def.diff(coarse), "mismatched bucket layouts");
}

TEST(TimelineDeathTest, HistogramDiffRequiresEarlierSnapshot)
{
    // `earlier` holds samples `now` never saw: not a snapshot, and the
    // subtraction would go negative — must fail loudly.
    Histogram now("now"), earlier("earlier");
    now.add(1e-3);
    earlier.add(1e-3);
    earlier.add(2e-3);
    EXPECT_DEATH(now.diff(earlier), "not an earlier snapshot");
}

// ---------------------------------------------------------------------------
// Disabled cost: one relaxed atomic load, bounded against real work
// (same harness as SelfProfTest.DisabledTimerCostIsNegligible).

TEST_F(TimelineTest, DisabledCheckCostIsNegligible)
{
    ASSERT_FALSE(Timeline::instance().enabled());
    const hw::GemmShape shape{1024, 1024, 1024};
    constexpr int kChecks = 1000000;
    constexpr int kGemms = 200;
    constexpr int kTrials = 5;

    auto min_over_trials = [&](auto body) {
        double best = 1e300;
        for (int t = 0; t < kTrials; t++) {
            const auto t0 = std::chrono::steady_clock::now();
            body();
            const auto t1 = std::chrono::steady_clock::now();
            best = std::min(
                best, std::chrono::duration<double>(t1 - t0).count());
        }
        return best;
    };

    volatile int sink = 0;
    const double check_loop = min_over_trials([&] {
        int n = 0;
        for (int i = 0; i < kChecks; i++)
            n += Timeline::instance().enabled() ? 1 : 0;
        sink = n;
    });
    const double gemm_loop = min_over_trials([&] {
        for (int i = 0; i < kGemms; i++) {
            auto c = kern::runGemm(DeviceKind::Gaudi2, shape,
                                   DataType::BF16);
            (void)c;
        }
    });

    const double per_check = check_loop / kChecks;
    const double per_gemm = gemm_loop / kGemms;
    EXPECT_LT(per_check, 0.01 * per_gemm)
        << "disabled Timeline check costs " << per_check * 1e9
        << " ns vs GEMM eval " << per_gemm * 1e9 << " ns";
}

} // namespace
} // namespace vespera::obs
