#include <gtest/gtest.h>

#include <cstdio>

#include "common/io.h"
#include "common/json.h"
#include "obs/export.h"

namespace vespera::obs {
namespace {

TEST(MetricsJson, RoundTripsThroughParser)
{
    CounterRegistry reg;
    reg.counter("mme.flops").add(1e12);
    reg.counter("kv.blocks_in_use").set(42);
    reg.counter("kv.blocks_in_use").set(17);
    reg.rate("hbm.stream_bytes_per_sec").add(2.4e9, 1e-3);

    MetricsMeta meta;
    meta.tool = "test_export";
    meta.benchmarks["BM_Fake/8"] = 123.5;

    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::parse(metricsJson(reg, meta), doc, &err)) << err;

    const json::Value *schema = doc.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->str(), metricsSchema);
    EXPECT_EQ(doc.find("tool")->str(), "test_export");

    const json::Value *flops =
        doc.findPath("counters.mme.flops");
    ASSERT_NE(flops, nullptr);
    EXPECT_DOUBLE_EQ(flops->find("value")->number(), 1e12);
    EXPECT_EQ(flops->find("updates")->number(), 1.0);

    const json::Value *kv =
        doc.findPath("counters.kv.blocks_in_use");
    ASSERT_NE(kv, nullptr);
    EXPECT_DOUBLE_EQ(kv->find("value")->number(), 17.0);
    EXPECT_DOUBLE_EQ(kv->find("peak")->number(), 42.0);

    const json::Value *rate =
        doc.findPath("rates.hbm.stream_bytes_per_sec");
    ASSERT_NE(rate, nullptr);
    EXPECT_DOUBLE_EQ(rate->find("total")->number(), 2.4e9);
    EXPECT_DOUBLE_EQ(rate->find("rate")->number(), 2.4e9 / 1e-3);

    const json::Value *bm = doc.findPath("benchmarks.BM_Fake/8");
    ASSERT_NE(bm, nullptr);
    EXPECT_DOUBLE_EQ(bm->number(), 123.5);
}

TEST(MetricsJson, EmptyRegistryStillSchemaValid)
{
    CounterRegistry reg;
    MetricsMeta meta;
    meta.tool = "empty";
    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::parse(metricsJson(reg, meta), doc, &err)) << err;
    EXPECT_EQ(doc.find("schema")->str(), metricsSchema);
    ASSERT_NE(doc.find("counters"), nullptr);
    EXPECT_TRUE(doc.find("counters")->isObject());
    EXPECT_TRUE(doc.find("counters")->object().empty());
}

TEST(ChromeTrace, SpansSamplesAndMetadataParse)
{
    Profiler p;
    p.nameTrack(TrackGroup::Device, 1, "MME");
    p.recordSpan("mm", "mme", 1, 1e-3, 2e-3);
    p.sample("mme.utilization", 1e-3, 85.0);

    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::parse(chromeTraceJson(p), doc, &err)) << err;
    const json::Value *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    int numSpans = 0, numCounters = 0, numMeta = 0;
    for (const json::Value &e : events->array()) {
        const std::string &ph = e.find("ph")->str();
        if (ph == "X") {
            numSpans++;
            // Simulated seconds exported as microseconds.
            EXPECT_DOUBLE_EQ(e.find("ts")->number(), 1000.0);
            EXPECT_DOUBLE_EQ(e.find("dur")->number(), 2000.0);
            EXPECT_EQ(e.find("name")->str(), "mm");
        } else if (ph == "C") {
            numCounters++;
            EXPECT_EQ(e.find("name")->str(), "mme.utilization");
            EXPECT_DOUBLE_EQ(e.findPath("args.value")->number(), 85.0);
        } else if (ph == "M") {
            numMeta++;
        }
    }
    EXPECT_EQ(numSpans, 1);
    EXPECT_EQ(numCounters, 1);
    EXPECT_GE(numMeta, 2); // process_name + the "MME" thread_name.
}

TEST(ChromeTrace, HostSpansLandOnHostTrackGroup)
{
    Profiler p;
    SpanEvent host;
    host.name = "engine.run";
    host.category = "host";
    host.group = TrackGroup::Host;
    host.track = 7;
    host.start = 0;
    host.duration = 0.25;
    p.recordSpan(host);

    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::parse(chromeTraceJson(p), doc, &err)) << err;
    bool found = false;
    for (const json::Value &e : doc.find("traceEvents")->array()) {
        if (e.find("ph")->str() != "X")
            continue;
        found = true;
        EXPECT_EQ(int(e.find("pid")->number()), int(TrackGroup::Host));
        EXPECT_EQ(int(e.find("tid")->number()), 7);
    }
    EXPECT_TRUE(found);
}

/**
 * Golden-file round trip: write the metrics document to disk, read it
 * back, parse, re-serialize, parse again — both parses must agree on
 * the values. Guards against exporter/parser drift.
 */
TEST(MetricsJson, GoldenFileRoundTrip)
{
    CounterRegistry reg;
    reg.counter("engine.steps").add(9);
    reg.counter("tpc.stall_cycles").add(1234.5);
    MetricsMeta meta;
    meta.tool = "golden";

    const std::string path = "/tmp/vespera_test_metrics.json";
    ASSERT_TRUE(writeFile(path, metricsJson(reg, meta)));
    std::string back;
    ASSERT_TRUE(readFile(path, back));
    std::remove(path.c_str());

    json::Value first;
    ASSERT_TRUE(json::parse(back, first, nullptr));
    json::Value second;
    ASSERT_TRUE(json::parse(json::serialize(first), second, nullptr));
    EXPECT_DOUBLE_EQ(
        second.findPath("counters.engine.steps")->find("value")->number(),
        9.0);
    EXPECT_DOUBLE_EQ(second.findPath("counters.tpc.stall_cycles")
                         ->find("value")
                         ->number(),
                     1234.5);
    EXPECT_EQ(second.find("schema")->str(), metricsSchema);
}

TEST(CounterSummary, PrintsNonzeroCountersOnly)
{
    CounterRegistry reg;
    reg.counter("visible.count").add(3);
    reg.counter("zero.count"); // Never updated; must be omitted.

    std::FILE *f = std::tmpfile();
    ASSERT_NE(f, nullptr);
    printCounterSummary(reg, f);
    std::rewind(f);
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    EXPECT_NE(text.find("visible.count"), std::string::npos);
    EXPECT_EQ(text.find("zero.count"), std::string::npos);
}

} // namespace
} // namespace vespera::obs
