#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "hw/gemm_cost.h"
#include "kern/gemm.h"
#include "mem/hbm.h"
#include "obs/attrib.h"
#include "obs/counters.h"
#include "obs/profiler.h"
#include "runtime/pool.h"
#include "runtime/sweep.h"

namespace vespera::obs {
namespace {

TEST(Attrib, CategoryNamesAreStable)
{
    // Exported as metric-name components; renames break baselines.
    EXPECT_STREQ(attribCatName(AttribCat::Compute), "compute");
    EXPECT_STREQ(attribCatName(AttribCat::MemoryBw), "memory_bw");
    EXPECT_STREQ(attribCatName(AttribCat::ExposedLat),
                 "exposed_latency");
    EXPECT_STREQ(attribCatName(AttribCat::Reconfig), "reconfig");
    EXPECT_STREQ(attribCatName(AttribCat::Idle), "idle");
}

TEST(Attrib, SettleSumsBitwiseExactly)
{
    // The core invariant: after settle(), sum() == total to the bit,
    // no matter how awkward the floating-point residues are.
    Rng rng(19);
    for (int trial = 0; trial < 2000; trial++) {
        AttribBreakdown b;
        b[AttribCat::Compute] = rng.uniform(0, 1e-2);
        b[AttribCat::MemoryBw] = rng.uniform(0, 1e-3);
        if (trial % 3 == 0)
            b[AttribCat::Idle] = rng.uniform(0, 1e-5);
        const double slack = rng.uniform(0, 1e-6);
        const double total = b.sum() + slack;
        b.settle(AttribCat::ExposedLat, total);
        ASSERT_EQ(b.sum(), total) << "trial " << trial;
        for (double c : b.seconds)
            ASSERT_GE(c, 0.0) << "trial " << trial;
    }
}

TEST(Attrib, SettleAbsorbsOvershootResidue)
{
    // Components can overshoot total by fp residue (sums computed two
    // ways); the residual clamps to 0 and the excess folds into the
    // largest component. This total is rounding-adversarial (not a sum
    // of the components), so the guarantee is the documented weaker
    // one: within one ulp. Model-produced totals settle bitwise
    // (SettleSumsBitwiseExactly, Fig5SweepSpansSumExactlyToDuration).
    AttribBreakdown b;
    b[AttribCat::Compute] = 0.1;
    b[AttribCat::MemoryBw] = 0.3;
    const double total = (0.1 + 0.3) * (1 - 1e-16);
    b.settle(AttribCat::ExposedLat, total);
    EXPECT_NEAR(b.sum(), total, total * 1e-15);
    EXPECT_EQ(b[AttribCat::ExposedLat], 0.0);
    EXPECT_GE(b[AttribCat::Compute], 0.0);
    EXPECT_GE(b[AttribCat::MemoryBw], 0.0);
}

TEST(Attrib, ScopeRegistrationIsIdempotent)
{
    auto &ledger = AttributionLedger::instance();
    const int a = ledger.scope("test_scope_a");
    EXPECT_EQ(ledger.scope("test_scope_a"), a);
    const int b = ledger.scope("test_scope_b");
    EXPECT_NE(a, b);
    const auto names = ledger.scopeNames();
    EXPECT_EQ(names[static_cast<std::size_t>(a)], "test_scope_a");
    EXPECT_EQ(names[static_cast<std::size_t>(b)], "test_scope_b");
    // Counters exist before any charge, so metrics docs are
    // shape-stable across runs that never hit a scope.
    auto &reg = CounterRegistry::instance();
    EXPECT_NE(reg.find("attrib.test_scope_a.compute"), nullptr);
    EXPECT_NE(reg.find("attrib.test_scope_a.ops"), nullptr);
}

TEST(Attrib, ChargeFeedsCountersWithoutProfiler)
{
    auto &ledger = AttributionLedger::instance();
    auto &reg = CounterRegistry::instance();
    Profiler::instance().setEnabled(false);
    ledger.clearRecords();

    const int sc = ledger.scope("test_scope_c");
    const double before = reg.counter("attrib.test_scope_c.compute").value();
    AttribBreakdown b;
    b[AttribCat::Compute] = 2e-3;
    b.settle(AttribCat::ExposedLat, 2.5e-3);
    ledger.charge(sc, "op", b);

    EXPECT_EQ(reg.counter("attrib.test_scope_c.compute").value() - before,
              2e-3);
    EXPECT_GE(reg.counter("attrib.test_scope_c.ops").value(), 1.0);
    // Per-op spans are trace-only; nothing recorded while disabled.
    for (const auto &rec : ledger.records())
        EXPECT_NE(rec.scope, sc);
}

// The Fig. 5 sweep: every shape the figure evaluates, on both the MME
// (Gaudi-2) and tensor-core (A100) models. Acceptance criterion: for
// every attributed span the categories sum bitwise-exactly to the
// span's duration.
std::vector<hw::GemmShape>
fig5Shapes()
{
    const std::vector<std::int64_t> sizes = {512,  1024, 2048,
                                             4096, 8192, 16384};
    std::vector<hw::GemmShape> shapes;
    for (auto s : sizes)
        shapes.push_back({s, s, s}); // Fig. 5(a) square sweep.
    for (auto m : sizes)
        for (auto k : {m / 2, m})
            shapes.push_back({m, k, 16}); // Fig. 5(b) irregular, N=16.
    return shapes;
}

TEST(Attrib, Fig5SweepSpansSumExactlyToDuration)
{
    auto &ledger = AttributionLedger::instance();
    Profiler &profiler = Profiler::instance();
    profiler.clear();
    profiler.setEnabled(true);
    ledger.clearRecords();

    for (const auto &shape : fig5Shapes()) {
        (void)kern::runGemm(DeviceKind::Gaudi2, shape, DataType::BF16);
        (void)kern::runGemm(DeviceKind::A100, shape, DataType::BF16);
    }
    profiler.setEnabled(false);

    const auto recs = ledger.records();
    const auto names = ledger.scopeNames();
    // 18 shapes x 2 devices; GEMMs may also touch HBM scopes, so at
    // least the 36 matrix-engine ops must be present.
    ASSERT_GE(recs.size(), 36u);
    std::map<std::string, int> per_scope;
    for (const auto &rec : recs) {
        ASSERT_GE(rec.scope, 0);
        ASSERT_LT(static_cast<std::size_t>(rec.scope), names.size());
        per_scope[names[static_cast<std::size_t>(rec.scope)]]++;
        // THE invariant, bitwise: attributed categories == wall time.
        EXPECT_EQ(rec.breakdown.sum(), rec.duration) << rec.name;
        EXPECT_GT(rec.duration, 0.0) << rec.name;
        for (double c : rec.breakdown.seconds)
            EXPECT_GE(c, 0.0) << rec.name;
    }
    EXPECT_EQ(per_scope["mme"], 18);
    EXPECT_EQ(per_scope["tc"], 18);

    // Each record also landed on a profiler Device lane with the same
    // duration (the trace view and the ledger must agree).
    std::multimap<std::string, double> span_durs;
    for (const auto &sp : profiler.spans())
        if (sp.category.rfind("attrib.", 0) == 0)
            span_durs.insert({sp.name, sp.duration});
    for (const auto &rec : recs) {
        auto [lo, hi] = span_durs.equal_range(rec.name);
        bool matched = false;
        for (auto it = lo; it != hi; ++it)
            matched = matched || it->second == rec.duration;
        EXPECT_TRUE(matched) << rec.name;
    }
    profiler.clear();
    ledger.clearRecords();
}

TEST(Attrib, SweepChargesAreThreadCountInvariant)
{
    // Aggregate attribution rides the counter capture/replay contract:
    // the same sweep at 1 and 4 workers must add identical bits.
    auto &reg = CounterRegistry::instance();
    Profiler::instance().setEnabled(false);
    const auto shapes = fig5Shapes();

    auto run_once = [&]() {
        runtime::SweepRunner sweep("test.attrib.sweep");
        (void)sweep.map(shapes, [](const hw::GemmShape &s) {
            return kern::runGemm(DeviceKind::Gaudi2, s, DataType::BF16)
                .time;
        });
    };

    Counter &compute = reg.counter("attrib.mme.compute");
    Counter &reconfig = reg.counter("attrib.mme.reconfig");

    // Bitwise comparison needs both runs to start identically: zero
    // the counters (fp addition rounds differently on different
    // bases) and prime the MME's order-dependent geometry state with
    // a fixed gemm so the first sweep op makes the same reconfig
    // decision in both runs.
    auto prime = [&]() {
        (void)kern::runGemm(DeviceKind::Gaudi2, {768, 768, 768},
                            DataType::BF16);
        compute.set(0);
        reconfig.set(0);
    };

    runtime::Pool::setGlobalThreads(1);
    prime();
    run_once();
    const double dc_serial = compute.value();
    const double dr_serial = reconfig.value();

    runtime::Pool::setGlobalThreads(4);
    prime();
    run_once();
    const double dc_par = compute.value();
    const double dr_par = reconfig.value();
    runtime::Pool::setGlobalThreads(1);

    EXPECT_GT(dc_serial, 0.0);
    EXPECT_EQ(dc_serial, dc_par);
    EXPECT_EQ(dr_serial, dr_par);
}

TEST(Attrib, HbmRandomAccessChargesExposedLatency)
{
    auto &ledger = AttributionLedger::instance();
    Profiler &profiler = Profiler::instance();
    profiler.clear();
    profiler.setEnabled(true);
    ledger.clearRecords();

    mem::HbmModel hbm(hw::deviceSpec(DeviceKind::Gaudi2));
    mem::RandomAccessWorkload w;
    w.accessSize = 64;
    w.numAccesses = 4096;
    w.concurrency = 24;
    (void)hbm.randomAccess(w);

    profiler.setEnabled(false);
    const auto recs = ledger.records();
    const auto names = ledger.scopeNames();
    bool saw_hbm = false;
    for (const auto &rec : recs) {
        if (names[static_cast<std::size_t>(rec.scope)] != "hbm")
            continue;
        saw_hbm = true;
        EXPECT_EQ(rec.breakdown.sum(), rec.duration);
        // The access-ramp latency shows up as exposed latency.
        EXPECT_GT(rec.breakdown[AttribCat::ExposedLat], 0.0);
    }
    EXPECT_TRUE(saw_hbm);
    profiler.clear();
    ledger.clearRecords();
}

} // namespace
} // namespace vespera::obs
