#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>

#include "common/rng.h"
#include "kern/gemm.h"
#include "kern/stream.h"
#include "obs/selfprof.h"
#include "runtime/parallel.h"
#include "runtime/pool.h"

namespace vespera::obs {
namespace {

/// Every test owns the process-wide profile: start clean, leave clean.
class SelfProfTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        runtime::Pool::setGlobalThreads(1);
        SelfProf::instance().setEnabled(false);
        SelfProf::instance().reset();
    }

    void
    TearDown() override
    {
        SelfProf::instance().setEnabled(false);
        SelfProf::instance().reset();
        runtime::Pool::setGlobalThreads(1);
    }
};

/// The fig5 GEMM corpus: square sweeps plus one irregular shape.
std::vector<hw::GemmShape>
fig5Shapes()
{
    std::vector<hw::GemmShape> shapes;
    for (std::int64_t n : {256, 512, 1024, 2048, 4096, 8192})
        shapes.push_back({n, n, n});
    shapes.push_back({4096, 4096, 16});
    return shapes;
}

std::uint64_t
sumCats(const SelfLedger &l)
{
    std::uint64_t s = 0;
    for (int c = 0; c < kSelfCats; ++c)
        s += l.ns[static_cast<std::size_t>(c)];
    return s;
}

TEST_F(SelfProfTest, CategoryNamesAreStable)
{
    // Exported dotted names — metrics schema v2.1 and the Perfetto
    // tracks depend on these strings; renames break baselines.
    EXPECT_STREQ(selfCatName(SelfCat::KernelEval), "kernel_eval");
    EXPECT_STREQ(selfCatName(SelfCat::TraceRecord), "trace_record");
    EXPECT_STREQ(selfCatName(SelfCat::GraphBuild), "graph_build");
    EXPECT_STREQ(selfCatName(SelfCat::EngineStep), "engine_step");
    EXPECT_STREQ(selfCatName(SelfCat::Alloc), "alloc");
    EXPECT_STREQ(selfCatName(SelfCat::TelemetryExport),
                 "telemetry_export");
    EXPECT_STREQ(selfCatName(SelfCat::Other), "other");
}

TEST_F(SelfProfTest, LedgerSettleSumsToTotalBitwise)
{
    // Random integer charges: settle() must make the categories
    // reproduce any window exactly — integers, so bitwise.
    Rng rng(19);
    for (int trial = 0; trial < 50; trial++) {
        SelfLedger l;
        std::uint64_t charged = 0;
        for (int c = 0; c < kSelfCats; ++c) {
            const auto ns = static_cast<std::uint64_t>(
                rng.uniform(0.0, 1e9));
            l.ns[static_cast<std::size_t>(c)] += ns;
            charged += ns;
        }
        const auto window = static_cast<std::uint64_t>(
            rng.uniform(0.0, 8e9));
        l.settle(window);
        EXPECT_EQ(l.totalNs(), sumCats(l));
        EXPECT_EQ(l.totalNs(), std::max(window, charged));
    }
}

TEST_F(SelfProfTest, LedgerMergeIsExact)
{
    SelfLedger a, b;
    a.ns[0] = 7;
    a.calls[0] = 2;
    a.allocBytes[3] = 100;
    b.ns[0] = 5;
    b.ns[6] = 11;
    b.allocCount[3] = 4;
    a.merge(b);
    EXPECT_EQ(a.ns[0], 12u);
    EXPECT_EQ(a.ns[6], 11u);
    EXPECT_EQ(a.calls[0], 2u);
    EXPECT_EQ(a.allocBytes[3], 100u);
    EXPECT_EQ(a.allocCount[3], 4u);
    EXPECT_EQ(a.totalNs(), 23u);
}

TEST_F(SelfProfTest, TimerNestingNeverDoubleCounts)
{
    SelfProf::instance().setEnabled(true);
    {
        SelfTimer outer(SelfCat::EngineStep);
        // Busy-wait so both scopes observe nonzero time even on a
        // coarse clock.
        const auto until = std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(2);
        {
            SelfTimer inner(SelfCat::KernelEval);
            while (std::chrono::steady_clock::now() < until) {
            }
        }
        const auto more = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(2);
        while (std::chrono::steady_clock::now() < more) {
        }
    }
    const SelfSnapshot snap = SelfProf::instance().snapshot();
    const auto engine =
        snap.ledger.ns[static_cast<std::size_t>(SelfCat::EngineStep)];
    const auto kernel =
        snap.ledger.ns[static_cast<std::size_t>(SelfCat::KernelEval)];
    EXPECT_EQ(
        snap.ledger.calls[static_cast<std::size_t>(SelfCat::EngineStep)],
        1u);
    EXPECT_EQ(
        snap.ledger.calls[static_cast<std::size_t>(SelfCat::KernelEval)],
        1u);
    EXPECT_GT(kernel, 0u);
    EXPECT_GT(engine, 0u);
    // Self-time partition: the categories must not together exceed the
    // window (single thread, so parallel over-counting cannot occur).
    const SelfSnapshot settled = SelfProf::instance().settle();
    EXPECT_EQ(settled.ledger.totalNs(), sumCats(settled.ledger));
    EXPECT_GE(settled.ledger.totalNs(), settled.windowNs);
}

TEST_F(SelfProfTest, SameCategoryNestingChargesOnce)
{
    SelfProf::instance().setEnabled(true);
    {
        SelfTimer outer(SelfCat::KernelEval);
        SelfTimer inner(SelfCat::KernelEval); // runGemm in stepReport
        const auto until = std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(1);
        while (std::chrono::steady_clock::now() < until) {
        }
    }
    const SelfSnapshot settled = SelfProf::instance().settle();
    // Two scopes completed, but the parent absorbed the child's
    // elapsed time — total stays within the wall window.
    EXPECT_EQ(
        settled.ledger
            .calls[static_cast<std::size_t>(SelfCat::KernelEval)],
        2u);
    EXPECT_GE(settled.ledger.totalNs(), settled.windowNs);
    EXPECT_EQ(settled.ledger.totalNs(), sumCats(settled.ledger));
}

TEST_F(SelfProfTest, ParallelFig5SweepSettles)
{
    // The acceptance invariant under a parallel fig5-style sweep:
    // worker charges defer through ScopedCapture, replay serially, and
    // settle() still reproduces the total bitwise.
    runtime::Pool::setGlobalThreads(4);
    SelfProf::instance().setEnabled(true);
    const auto shapes = fig5Shapes();
    runtime::parallel_for(shapes.size(), [&](std::size_t i) {
        auto c = kern::runGemm(DeviceKind::Gaudi2, shapes[i],
                               DataType::BF16);
        (void)c;
    });
    const SelfSnapshot settled = SelfProf::instance().settle();
    EXPECT_EQ(
        settled.ledger
            .calls[static_cast<std::size_t>(SelfCat::KernelEval)],
        shapes.size());
    EXPECT_EQ(settled.ledger.totalNs(), sumCats(settled.ledger));
    EXPECT_GE(settled.ledger.totalNs(), settled.windowNs);
}

TEST_F(SelfProfTest, CountsAreThreadCountInvariant)
{
    // Wall times are machine noise, but scope counts, allocation
    // bytes, and allocation events must be byte-identical at any
    // --threads (the capture-replay contract, docs/runtime.md).
    kern::StreamConfig cfg;
    cfg.op = kern::StreamOp::Triad;
    cfg.numElements = 1 << 16;

    auto run_at = [&](int threads) {
        runtime::Pool::setGlobalThreads(threads);
        SelfProf::instance().reset();
        (void)kern::runStreamGaudi(cfg);
        return SelfProf::instance().snapshot();
    };

    SelfProf::instance().setEnabled(true);
    const SelfSnapshot serial = run_at(1);
    const SelfSnapshot parallel = run_at(8);

    for (int c = 0; c < kSelfCats; ++c) {
        const auto i = static_cast<std::size_t>(c);
        EXPECT_EQ(serial.ledger.calls[i], parallel.ledger.calls[i])
            << selfCatName(static_cast<SelfCat>(c));
        EXPECT_EQ(serial.ledger.allocBytes[i],
                  parallel.ledger.allocBytes[i])
            << selfCatName(static_cast<SelfCat>(c));
        EXPECT_EQ(serial.ledger.allocCount[i],
                  parallel.ledger.allocCount[i])
            << selfCatName(static_cast<SelfCat>(c));
    }
    // The trace-record and kernel-eval hooks fired at least once per
    // TPC slice...
    EXPECT_GT(serial.ledger
                  .calls[static_cast<std::size_t>(SelfCat::TraceRecord)],
              0u);
    EXPECT_GT(serial.ledger
                  .calls[static_cast<std::size_t>(SelfCat::KernelEval)],
              0u);
    // ...but recorded zero heap traffic: the instruction traces bump
    // from the per-thread scratch arena (mem/arena.h), whose recycled
    // chunks never reach the allocation ledger.
    EXPECT_EQ(serial.ledger.allocBytes
                  [static_cast<std::size_t>(SelfCat::TraceRecord)],
              0u);
}

TEST_F(SelfProfTest, DisabledTimerCostIsNegligible)
{
    // The disabled contract: one relaxed atomic load per SelfTimer.
    // Bound it against real work — the cost of adding one disabled
    // timer to a runGemm call must be under 1% of the call itself.
    ASSERT_FALSE(SelfProf::instance().enabled());
    const hw::GemmShape shape{1024, 1024, 1024};
    constexpr int kTimers = 1000000;
    constexpr int kGemms = 200;
    constexpr int kTrials = 5;

    auto min_over_trials = [&](auto body) {
        double best = 1e300;
        for (int t = 0; t < kTrials; t++) {
            const auto t0 = std::chrono::steady_clock::now();
            body();
            const auto t1 = std::chrono::steady_clock::now();
            best = std::min(
                best, std::chrono::duration<double>(t1 - t0).count());
        }
        return best;
    };

    const double timer_loop = min_over_trials([&] {
        for (int i = 0; i < kTimers; i++)
            SelfTimer t(SelfCat::KernelEval);
    });
    const double gemm_loop = min_over_trials([&] {
        for (int i = 0; i < kGemms; i++) {
            auto c = kern::runGemm(DeviceKind::Gaudi2, shape,
                                   DataType::BF16);
            (void)c;
        }
    });

    const double per_timer = timer_loop / kTimers;
    const double per_gemm = gemm_loop / kGemms;
    EXPECT_LT(per_timer, 0.01 * per_gemm)
        << "disabled SelfTimer costs " << per_timer * 1e9
        << " ns vs GEMM eval " << per_gemm * 1e9 << " ns";
}

TEST_F(SelfProfTest, CacheCountersTrackKeys)
{
    SelfProf::instance().setEnabled(true);
    auto &p = SelfProf::instance();
    p.cacheMiss("decode|gaudi2|b32|ctx1024");
    p.cacheHit("decode|gaudi2|b32|ctx1024");
    p.cacheHit("decode|gaudi2|b32|ctx1024");
    p.cacheMiss("prefill|gaudi2|in128");
    const SelfSnapshot snap = p.snapshot();
    EXPECT_EQ(snap.cacheHits, 2u);
    EXPECT_EQ(snap.cacheMisses, 2u);
    EXPECT_EQ(snap.cacheKeyCount, 2u);
}

TEST_F(SelfProfTest, ResetZeroesEverything)
{
    SelfProf::instance().setEnabled(true);
    {
        SelfTimer t(SelfCat::GraphBuild);
    }
    SelfProf::instance().recordAlloc(SelfCat::Alloc, 64);
    SelfProf::instance().cacheMiss("k");
    SelfProf::instance().reset();
    const SelfSnapshot snap = SelfProf::instance().snapshot();
    EXPECT_EQ(snap.ledger.totalNs(), 0u);
    EXPECT_EQ(sumCats(snap.ledger), 0u);
    EXPECT_EQ(snap.cacheHits, 0u);
    EXPECT_EQ(snap.cacheMisses, 0u);
    EXPECT_EQ(snap.cacheKeyCount, 0u);
    for (int c = 0; c < kSelfCats; ++c) {
        const auto i = static_cast<std::size_t>(c);
        EXPECT_EQ(snap.ledger.calls[i], 0u);
        EXPECT_EQ(snap.ledger.allocBytes[i], 0u);
        EXPECT_EQ(snap.ledger.allocCount[i], 0u);
    }
}

TEST_F(SelfProfTest, AllocAttributesToInnermostTimer)
{
    SelfProf::instance().setEnabled(true);
    EXPECT_EQ(SelfProf::currentCat(), SelfCat::Alloc); // no timer
    {
        SelfTimer outer(SelfCat::EngineStep);
        EXPECT_EQ(SelfProf::currentCat(), SelfCat::EngineStep);
        SelfProf::instance().recordAlloc(128);
        {
            SelfTimer inner(SelfCat::GraphBuild);
            EXPECT_EQ(SelfProf::currentCat(), SelfCat::GraphBuild);
            SelfProf::instance().recordAlloc(256);
        }
        EXPECT_EQ(SelfProf::currentCat(), SelfCat::EngineStep);
    }
    const SelfSnapshot snap = SelfProf::instance().snapshot();
    EXPECT_EQ(snap.ledger.allocBytes
                  [static_cast<std::size_t>(SelfCat::EngineStep)],
              128u);
    EXPECT_EQ(snap.ledger.allocBytes
                  [static_cast<std::size_t>(SelfCat::GraphBuild)],
              256u);
    EXPECT_EQ(snap.ledger.allocCount
                  [static_cast<std::size_t>(SelfCat::EngineStep)],
              1u);
}

} // namespace
} // namespace vespera::obs
