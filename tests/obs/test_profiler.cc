#include <gtest/gtest.h>

#include <algorithm>

#include "obs/profiler.h"

namespace vespera::obs {
namespace {

TEST(Profiler, RecordsDeviceSpans)
{
    Profiler p;
    p.recordSpan("mm", "mme", 1, 0.5e-3, 2e-3);
    p.recordSpan("act", "tpc", 2, 2.5e-3, 1e-3);
    auto spans = p.spans();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].name, "mm");
    EXPECT_EQ(spans[0].category, "mme");
    EXPECT_EQ(spans[0].group, TrackGroup::Device);
    EXPECT_EQ(spans[0].track, 1);
    EXPECT_DOUBLE_EQ(spans[0].start, 0.5e-3);
    EXPECT_DOUBLE_EQ(spans[0].duration, 2e-3);
    EXPECT_EQ(spans[1].track, 2);
}

TEST(Profiler, RecordsCounterSamplesAndDistinctTracks)
{
    Profiler p;
    p.sample("mme.utilization", 0.0, 80.0);
    p.sample("hbm.bandwidth_gbps", 0.0, 1500.0);
    p.sample("mme.utilization", 1e-3, 0.0);
    auto samples = p.samples();
    ASSERT_EQ(samples.size(), 3u);
    EXPECT_EQ(samples[0].track, "mme.utilization");
    EXPECT_DOUBLE_EQ(samples[1].value, 1500.0);

    auto tracks = p.sampledTracks();
    ASSERT_EQ(tracks.size(), 2u); // Distinct and sorted.
    EXPECT_EQ(tracks[0], "hbm.bandwidth_gbps");
    EXPECT_EQ(tracks[1], "mme.utilization");
}

TEST(Profiler, TrackNamesRoundTrip)
{
    Profiler p;
    p.nameTrack(TrackGroup::Device, 1, "MME");
    p.nameTrack(TrackGroup::Device, 2, "TPC");
    auto names = p.trackNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0].first.first, int(TrackGroup::Device));
    EXPECT_EQ(names[0].second, "MME");
    EXPECT_EQ(names[1].second, "TPC");
}

TEST(Profiler, ClearDropsEventsKeepsEnabledFlag)
{
    Profiler p;
    p.setEnabled(true);
    p.recordSpan("s", "c", 1, 0, 1);
    p.sample("t", 0, 1);
    p.clear();
    EXPECT_TRUE(p.enabled());
    EXPECT_TRUE(p.spans().empty());
    EXPECT_TRUE(p.samples().empty());
}

TEST(ScopedSpan, DisabledProfilerRecordsNothing)
{
    Profiler &p = Profiler::instance();
    p.clear();
    p.setEnabled(false);
    {
        ScopedSpan span("invisible");
    }
    EXPECT_TRUE(p.spans().empty());
}

TEST(ScopedSpan, RecordsHostSpanWithNesting)
{
    Profiler &p = Profiler::instance();
    p.clear();
    p.setEnabled(true);
    EXPECT_EQ(ScopedSpan::currentDepth(), 0);
    {
        ScopedSpan outer("outer");
        EXPECT_EQ(ScopedSpan::currentDepth(), 1);
        {
            ScopedSpan inner("inner", "phase");
            EXPECT_EQ(ScopedSpan::currentDepth(), 2);
        }
        EXPECT_EQ(ScopedSpan::currentDepth(), 1);
    }
    EXPECT_EQ(ScopedSpan::currentDepth(), 0);
    p.setEnabled(false);

    auto spans = p.spans();
    ASSERT_EQ(spans.size(), 2u);
    // Inner destructs first.
    EXPECT_EQ(spans[0].name, "inner");
    EXPECT_EQ(spans[0].category, "phase");
    EXPECT_EQ(spans[0].group, TrackGroup::Host);
    EXPECT_EQ(spans[0].depth, 1);
    EXPECT_EQ(spans[1].name, "outer");
    EXPECT_EQ(spans[1].depth, 0);
    // Outer fully contains inner on the wall clock.
    EXPECT_LE(spans[1].start, spans[0].start);
    EXPECT_GE(spans[1].start + spans[1].duration,
              spans[0].start + spans[0].duration);
    p.clear();
}

TEST(ScopedSpan, EnableStateLatchedAtConstruction)
{
    Profiler &p = Profiler::instance();
    p.clear();
    p.setEnabled(false);
    {
        ScopedSpan span("started-disabled");
        // Enabling mid-span must not retroactively record it.
        p.setEnabled(true);
    }
    EXPECT_TRUE(p.spans().empty());
    p.setEnabled(false);
    p.clear();
}

TEST(Profiler, InstanceIsSingleton)
{
    EXPECT_EQ(&Profiler::instance(), &Profiler::instance());
}

} // namespace
} // namespace vespera::obs
