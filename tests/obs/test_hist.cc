#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "obs/counters.h"
#include "obs/hist.h"

namespace vespera::obs {
namespace {

// The satellite contract (ISSUE): quantile estimates within a bounded
// relative error of the exact Samples::percentile, plus the stronger
// constructive guarantee that the estimate brackets the true order
// statistic from above: v_rank <= estimate <= v_rank * growth().

std::vector<double>
fillBoth(Histogram &h, Samples *s, const std::vector<double> &vs)
{
    for (double v : vs) {
        h.add(v);
        if (s)
            s->add(v);
    }
    return vs;
}

double
orderStat(std::vector<double> sorted, double p)
{
    // The rank the histogram targets: ceil(p/100 * n), 1-based.
    const std::size_t n = sorted.size();
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(n)));
    rank = std::clamp<std::size_t>(rank, 1, n);
    std::sort(sorted.begin(), sorted.end());
    return sorted[rank - 1];
}

TEST(Histogram, BucketGeometryBrackets)
{
    // Every representable latency must fall strictly inside its
    // bucket's (lo, hi] interval, across the full dynamic range.
    for (double v : {2e-12, 1e-9, 3.7e-6, 1e-3, 0.042, 1.0, 97.0, 1e4}) {
        const int idx = Histogram::bucketIndex(v);
        ASSERT_GT(idx, 0) << v;
        ASSERT_LT(idx, Histogram::kBuckets) << v;
        EXPECT_LT(Histogram::bucketLo(idx), v) << v;
        EXPECT_GE(Histogram::bucketHi(idx), v) << v;
        // Relative bucket width is the advertised growth factor.
        EXPECT_LE(Histogram::bucketHi(idx),
                  Histogram::bucketLo(idx) * Histogram::growth() *
                      (1 + 1e-12))
            << v;
    }
    // At-or-below the floor -> underflow bucket.
    EXPECT_EQ(Histogram::bucketIndex(0.0), 0);
    EXPECT_EQ(Histogram::bucketIndex(-1.0), 0);
    EXPECT_EQ(Histogram::bucketIndex(Histogram::kMinTrackable), 0);
    // Beyond the top octave -> overflow bucket.
    EXPECT_EQ(Histogram::bucketIndex(1e30), Histogram::kBuckets - 1);
}

TEST(Histogram, EmptyIsAllZero)
{
    Histogram h("empty");
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0.0);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.min(), 0.0);
    EXPECT_EQ(h.max(), 0.0);
    EXPECT_EQ(h.percentile(50), 0.0);
    EXPECT_EQ(h.percentile(99.9), 0.0);
    EXPECT_TRUE(h.nonzeroBuckets().empty());
}

TEST(Histogram, SingleValueClampsToMax)
{
    Histogram h;
    h.add(1.25e-3);
    // The bucket's upper edge overshoots, but the clamp to the
    // observed max makes a one-sample histogram exact.
    EXPECT_EQ(h.percentile(0), 1.25e-3);
    EXPECT_EQ(h.percentile(50), 1.25e-3);
    EXPECT_EQ(h.percentile(100), 1.25e-3);
    EXPECT_EQ(h.min(), 1.25e-3);
    EXPECT_EQ(h.max(), 1.25e-3);
}

TEST(Histogram, AggregatesMatchSamples)
{
    Histogram h;
    Samples s;
    Rng rng(11);
    std::vector<double> vs;
    for (int i = 0; i < 5000; i++)
        vs.push_back(rng.uniform(1e-4, 5e-2));
    fillBoth(h, &s, vs);

    EXPECT_EQ(h.count(), s.count());
    // Same insertion order, same accumulation order: identical bits.
    EXPECT_EQ(h.mean(), s.mean());
    EXPECT_EQ(h.min(), *std::min_element(vs.begin(), vs.end()));
    EXPECT_EQ(h.max(), *std::max_element(vs.begin(), vs.end()));
}

TEST(Histogram, QuantilesBracketOrderStatistic)
{
    // Uniform and heavy-tailed (lognormal-ish) latency shapes.
    Rng rng(42);
    std::vector<std::vector<double>> dists(2);
    for (int i = 0; i < 20000; i++) {
        dists[0].push_back(rng.uniform(5e-4, 5e-2));
        dists[1].push_back(1e-3 * std::exp(0.6 * rng.normal()));
    }
    for (const auto &vs : dists) {
        Histogram h;
        fillBoth(h, nullptr, vs);
        for (double p : {50.0, 90.0, 99.0, 99.9}) {
            const double vk = orderStat(vs, p);
            const double est = h.percentile(p);
            // Constructive guarantee: upper edge of v_rank's bucket,
            // clamped to max -> never below the order statistic and
            // never more than one bucket width above it.
            EXPECT_GE(est, vk) << "p" << p;
            EXPECT_LE(est, vk * Histogram::growth() * (1 + 1e-12))
                << "p" << p;
        }
    }
}

TEST(Histogram, QuantilesTrackExactPercentile)
{
    // Versus the interpolating exact collector the engine used to
    // carry: within one bucket width plus order-statistic slack.
    Rng rng(7);
    Histogram h;
    Samples s;
    std::vector<double> vs;
    for (int i = 0; i < 50000; i++)
        vs.push_back(2e-3 + 0.1 * rng.uniform() * rng.uniform());
    fillBoth(h, &s, vs);
    for (double p : {50.0, 90.0, 99.0, 99.9}) {
        const double exact = s.percentile(p);
        const double est = h.percentile(p);
        const double tol = Histogram::growth() - 1.0 + 0.01;
        EXPECT_NEAR(est, exact, exact * tol) << "p" << p;
    }
}

TEST(Histogram, MergeEqualsCombinedFill)
{
    Rng rng(3);
    std::vector<double> a, b;
    for (int i = 0; i < 4000; i++)
        a.push_back(rng.uniform(1e-4, 1e-2));
    for (int i = 0; i < 6000; i++)
        b.push_back(rng.uniform(5e-3, 2e-1));

    Histogram ha, hb, hall;
    fillBoth(ha, nullptr, a);
    fillBoth(hb, nullptr, b);
    fillBoth(hall, nullptr, a);
    fillBoth(hall, nullptr, b);

    ha.merge(hb);
    EXPECT_EQ(ha.count(), hall.count());
    EXPECT_DOUBLE_EQ(ha.sum(), hall.sum());
    EXPECT_EQ(ha.min(), hall.min());
    EXPECT_EQ(ha.max(), hall.max());
    // Bucket counts are additive, so quantiles agree exactly.
    for (double p : {1.0, 50.0, 90.0, 99.0, 99.9, 100.0})
        EXPECT_EQ(ha.percentile(p), hall.percentile(p)) << "p" << p;
    const auto ba = ha.nonzeroBuckets();
    const auto bc = hall.nonzeroBuckets();
    ASSERT_EQ(ba.size(), bc.size());
    for (std::size_t i = 0; i < ba.size(); i++)
        EXPECT_EQ(ba[i].count, bc[i].count);
}

TEST(Histogram, MergeWithEmptyIsIdentity)
{
    Histogram full, empty;
    for (int i = 1; i <= 100; i++)
        full.add(i * 1e-3);
    const double p99 = full.percentile(99);
    full.merge(empty);
    EXPECT_EQ(full.count(), 100u);
    EXPECT_EQ(full.percentile(99), p99);

    empty.merge(full);
    EXPECT_EQ(empty.count(), 100u);
    EXPECT_EQ(empty.percentile(99), p99);
    EXPECT_EQ(empty.min(), full.min());
    EXPECT_EQ(empty.max(), full.max());
}

TEST(Histogram, ResetClears)
{
    Histogram h("r");
    h.add(1.0);
    h.add(2.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(99), 0.0);
    EXPECT_TRUE(h.nonzeroBuckets().empty());
    EXPECT_EQ(h.name(), "r");
}

TEST(Histogram, CustomLayoutGeometry)
{
    // A coarser, narrower-range layout: every sample still lands in a
    // bracketing bucket of the *custom* geometry.
    const Histogram::Layout coarse{1e-6, 4, 32};
    Histogram h("coarse", coarse);
    EXPECT_EQ(h.layout(), coarse);
    EXPECT_EQ(coarse.buckets(), 32 * 4 + 2);
    for (double v : {2e-6, 1e-3, 0.5, 100.0}) {
        const int idx = Histogram::bucketIndex(coarse, v);
        ASSERT_GT(idx, 0) << v;
        ASSERT_LT(idx, coarse.buckets()) << v;
        EXPECT_LT(Histogram::bucketLo(coarse, idx), v) << v;
        EXPECT_GE(Histogram::bucketHi(coarse, idx), v) << v;
    }
    // Below the floor / beyond the top octave of the custom range.
    EXPECT_EQ(Histogram::bucketIndex(coarse, 1e-9), 0);
    EXPECT_EQ(Histogram::bucketIndex(coarse, 1e12),
              coarse.buckets() - 1);

    h.add(1e-3);
    h.add(2e-3);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_GE(h.percentile(99), 2e-3);
}

TEST(Histogram, MergeSameCustomLayoutOk)
{
    const Histogram::Layout coarse{1e-6, 4, 32};
    Histogram a("a", coarse), b("b", coarse);
    for (int i = 1; i <= 50; i++)
        a.add(i * 1e-4);
    for (int i = 1; i <= 50; i++)
        b.add(i * 1e-3);
    a.merge(b);
    EXPECT_EQ(a.count(), 100u);
    EXPECT_EQ(a.max(), 50e-3);
}

TEST(HistogramDeathTest, MergeMismatchedLayoutsFails)
{
    // The satellite guard: folding different geometries would silently
    // misplace every sample, so merge must fail loudly instead.
    Histogram def("default.layout");
    Histogram coarse("coarse.layout", Histogram::Layout{1e-6, 4, 32});
    def.add(1e-3);
    coarse.add(1e-3);
    EXPECT_DEATH(def.merge(coarse), "mismatched bucket layouts");
    EXPECT_DEATH(coarse.merge(def), "mismatched bucket layouts");
}

TEST(HistogramDeathTest, OversizedLayoutFails)
{
    // Storage is fixed at kBuckets; a layout that needs more must be
    // rejected at construction, not corrupt memory at add().
    EXPECT_DEATH(Histogram("too.big",
                           Histogram::Layout{1e-12, 32, 128}),
                 "histogram layout needs");
}

TEST(Histogram, RegistryGetOrCreate)
{
    auto &reg = CounterRegistry::instance();
    Histogram &h1 = reg.histogram("test.hist.registry");
    h1.add(4e-3);
    Histogram &h2 = reg.histogram("test.hist.registry");
    EXPECT_EQ(&h1, &h2);
    EXPECT_EQ(h2.count(), 1u);
    const Histogram *found = reg.findHistogram("test.hist.registry");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found, &h1);
    EXPECT_EQ(reg.findHistogram("test.hist.nope"), nullptr);

    bool listed = false;
    for (const Histogram *h : reg.histograms())
        listed = listed || h == &h1;
    EXPECT_TRUE(listed);
}

} // namespace
} // namespace vespera::obs
