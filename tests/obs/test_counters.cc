#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/counters.h"

namespace vespera::obs {
namespace {

TEST(Counter, AddAccumulatesAndTracksPeak)
{
    Counter c("x");
    c.add();
    c.add(2.5);
    EXPECT_DOUBLE_EQ(c.value(), 3.5);
    EXPECT_DOUBLE_EQ(c.peak(), 3.5);
    EXPECT_EQ(c.updates(), 2u);
    EXPECT_EQ(c.name(), "x");
}

TEST(Counter, SetIsGaugeWithHighWaterMark)
{
    Counter c("gauge");
    c.set(10);
    c.set(4);
    EXPECT_DOUBLE_EQ(c.value(), 4.0);
    EXPECT_DOUBLE_EQ(c.peak(), 10.0);
    c.set(12);
    EXPECT_DOUBLE_EQ(c.peak(), 12.0);
}

TEST(Counter, ResetZeroesEverything)
{
    Counter c("r");
    c.add(7);
    c.reset();
    EXPECT_DOUBLE_EQ(c.value(), 0.0);
    EXPECT_DOUBLE_EQ(c.peak(), 0.0);
    EXPECT_EQ(c.updates(), 0u);
}

TEST(Counter, ConcurrentAddLosesNothing)
{
    Counter c("hot");
    constexpr int numThreads = 8;
    constexpr int perThread = 10000;
    std::vector<std::thread> threads;
    for (int i = 0; i < numThreads; i++) {
        threads.emplace_back([&c] {
            for (int j = 0; j < perThread; j++)
                c.add(1.0);
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_DOUBLE_EQ(c.value(), double(numThreads) * perThread);
    EXPECT_EQ(c.updates(), std::uint64_t(numThreads) * perThread);
}

TEST(RateMeter, RateIsTotalOverElapsed)
{
    RateMeter m("bw");
    EXPECT_DOUBLE_EQ(m.rate(), 0.0);
    m.add(100.0, 2.0);
    m.add(50.0, 1.0);
    EXPECT_DOUBLE_EQ(m.total(), 150.0);
    EXPECT_DOUBLE_EQ(m.elapsed(), 3.0);
    EXPECT_DOUBLE_EQ(m.rate(), 50.0);
    m.reset();
    EXPECT_DOUBLE_EQ(m.rate(), 0.0);
}

TEST(CounterRegistry, GetOrCreateReturnsStableReference)
{
    CounterRegistry reg;
    Counter &a = reg.counter("mme.flops");
    Counter &b = reg.counter("mme.flops");
    EXPECT_EQ(&a, &b);
    a.add(5);
    EXPECT_DOUBLE_EQ(reg.counter("mme.flops").value(), 5.0);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(CounterRegistry, FindDoesNotCreate)
{
    CounterRegistry reg;
    EXPECT_EQ(reg.find("nope"), nullptr);
    EXPECT_EQ(reg.findRate("nope"), nullptr);
    reg.counter("yes").add(1);
    ASSERT_NE(reg.find("yes"), nullptr);
    EXPECT_DOUBLE_EQ(reg.find("yes")->value(), 1.0);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(CounterRegistry, RollupSumsDottedSubtree)
{
    CounterRegistry reg;
    reg.counter("mme").add(1);
    reg.counter("mme.flops").add(10);
    reg.counter("mme.cfg.reconfigs").add(100);
    reg.counter("mmex.other").add(1000); // Not in the subtree.
    reg.counter("tpc.cycles").add(7);
    EXPECT_DOUBLE_EQ(reg.rollup("mme"), 111.0);
    EXPECT_DOUBLE_EQ(reg.rollup("mme.cfg"), 100.0);
    EXPECT_DOUBLE_EQ(reg.rollup("absent"), 0.0);
}

TEST(CounterRegistry, SnapshotIsNameOrdered)
{
    CounterRegistry reg;
    reg.counter("b").add(2);
    reg.counter("a").add(1);
    reg.counter("c").set(3);
    auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].name, "a");
    EXPECT_EQ(snap[1].name, "b");
    EXPECT_EQ(snap[2].name, "c");
    EXPECT_DOUBLE_EQ(snap[1].value, 2.0);
    EXPECT_EQ(snap[0].updates, 1u);
}

TEST(CounterRegistry, ResetZeroesButKeepsNames)
{
    CounterRegistry reg;
    Counter &c = reg.counter("kv.blocks_in_use");
    c.set(42);
    reg.rate("hbm.bw").add(10, 1);
    reg.reset();
    EXPECT_EQ(&reg.counter("kv.blocks_in_use"), &c);
    EXPECT_DOUBLE_EQ(c.value(), 0.0);
    EXPECT_DOUBLE_EQ(c.peak(), 0.0);
    ASSERT_NE(reg.findRate("hbm.bw"), nullptr);
    EXPECT_DOUBLE_EQ(reg.findRate("hbm.bw")->total(), 0.0);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(CounterRegistry, ConcurrentRegistrationAndAddIsSafe)
{
    CounterRegistry reg;
    constexpr int numThreads = 8;
    constexpr int perThread = 2000;
    std::vector<std::thread> threads;
    for (int i = 0; i < numThreads; i++) {
        threads.emplace_back([&reg] {
            for (int j = 0; j < perThread; j++)
                reg.counter("shared.hits").add(1.0);
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_DOUBLE_EQ(reg.counter("shared.hits").value(),
                     double(numThreads) * perThread);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(CounterRegistry, ProcessWideInstanceIsSingleton)
{
    EXPECT_EQ(&CounterRegistry::instance(), &CounterRegistry::instance());
}

} // namespace
} // namespace vespera::obs
