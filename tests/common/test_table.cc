#include <cstdlib>

#include <gtest/gtest.h>

#include "common/table.h"

namespace vespera {
namespace {

TEST(Table, FormatsNumbers)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(1.0, 0), "1");
    EXPECT_EQ(Table::pct(0.5), "50.0%");
    EXPECT_EQ(Table::pct(0.123, 2), "12.30%");
    EXPECT_EQ(Table::integer(-42), "-42");
}

TEST(Table, CountsRows)
{
    Table t({"a", "b"});
    EXPECT_EQ(t.rowCount(), 0u);
    t.addRow({"x", "1"});
    t.addRow({"y", "2"});
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, PrintsAlignedColumns)
{
    Table t({"name", "val"});
    t.addRow({"alpha", "1.00"});
    t.addRow({"b", "12.50"});

    char buf[4096] = {};
    std::FILE *f = fmemopen(buf, sizeof(buf), "w");
    ASSERT_NE(f, nullptr);
    t.print(f);
    std::fclose(f);

    std::string out(buf);
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("12.50"), std::string::npos);
    // Separator rule present.
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, WritesCsv)
{
    Table t({"name", "value"});
    t.addRow({"plain", "1.5"});
    t.addRow({"with,comma", "quote\"inside"});
    const std::string path = "/tmp/vespera_table_test.csv";
    ASSERT_TRUE(t.writeCsv(path));

    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[256] = {};
    (void)!std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    std::string csv(buf);
    EXPECT_NE(csv.find("name,value\n"), std::string::npos);
    EXPECT_NE(csv.find("plain,1.5\n"), std::string::npos);
    EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(Table, CsvFailsOnBadPath)
{
    Table t({"a"});
    EXPECT_FALSE(t.writeCsv("/no_such_dir/t.csv"));
}

TEST(Table, CsvDirEnvAutoExport)
{
    setenv("VESPERA_CSV_DIR", "/tmp/vespera_csv_test", 1);
    (void)std::system("mkdir -p /tmp/vespera_csv_test && "
                      "rm -f /tmp/vespera_csv_test/table_*.csv");
    Table t({"k", "v"});
    t.addRow({"x", "1"});
    std::FILE *sink = fmemopen(nullptr, 1024, "w");
    t.print(sink);
    std::fclose(sink);
    unsetenv("VESPERA_CSV_DIR");

    // A CSV appeared in the directory.
    std::FILE *p = popen("ls /tmp/vespera_csv_test/table_*.csv "
                         "2>/dev/null | wc -l", "r");
    ASSERT_NE(p, nullptr);
    int count = 0;
    (void)!fscanf(p, "%d", &count);
    pclose(p);
    EXPECT_GE(count, 1);
}

} // namespace
} // namespace vespera
