#include <gtest/gtest.h>

#include "common/stats.h"

namespace vespera {
namespace {

TEST(Accumulator, StartsEmpty)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Accumulator, TracksMoments)
{
    Accumulator a;
    for (double v : {4.0, 1.0, 7.0, 2.0})
        a.add(v);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.sum(), 14.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.5);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 7.0);
}

TEST(Accumulator, ResetClears)
{
    Accumulator a;
    a.add(5.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    a.add(-3.0);
    EXPECT_DOUBLE_EQ(a.min(), -3.0);
    EXPECT_DOUBLE_EQ(a.max(), -3.0);
}

TEST(Samples, PercentileInterpolates)
{
    Samples s;
    for (double v : {10.0, 20.0, 30.0, 40.0, 50.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 50.0);
    EXPECT_DOUBLE_EQ(s.median(), 30.0);
    EXPECT_DOUBLE_EQ(s.percentile(25), 20.0);
    EXPECT_DOUBLE_EQ(s.percentile(12.5), 15.0);
}

TEST(Samples, SingleValue)
{
    Samples s;
    s.add(7.5);
    EXPECT_DOUBLE_EQ(s.percentile(1), 7.5);
    EXPECT_DOUBLE_EQ(s.percentile(99), 7.5);
    EXPECT_DOUBLE_EQ(s.mean(), 7.5);
}

TEST(Samples, MeanOfEmptyIsZero)
{
    Samples s;
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
}

TEST(GeoMean, MatchesClosedForm)
{
    EXPECT_NEAR(geoMean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geoMean({1.0, 1.0, 1.0}), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(geoMean({}), 0.0);
}

} // namespace
} // namespace vespera
