#include <gtest/gtest.h>

#include "common/rng.h"

namespace vespera {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; i++)
        if (a.next() == b.next())
            same++;
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0;
    for (int i = 0; i < 10000; i++) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(3);
    for (int i = 0; i < 1000; i++)
        ASSERT_LT(rng.below(17), 17u);
    // Bound of 1 always returns 0.
    EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, NormalMomentsReasonable)
{
    Rng rng(11);
    double sum = 0, sumsq = 0;
    const int n = 20000;
    for (int i = 0; i < n; i++) {
        double x = rng.normal();
        sum += x;
        sumsq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(Rng, LogNormalIsPositive)
{
    Rng rng(13);
    for (int i = 0; i < 1000; i++)
        ASSERT_GT(rng.logNormal(3.0, 1.0), 0.0);
}

} // namespace
} // namespace vespera
