#include <gtest/gtest.h>

#include "common/json.h"

namespace vespera::json {
namespace {

TEST(JsonParse, Scalars)
{
    Value v;
    ASSERT_TRUE(parse("null", v, nullptr));
    EXPECT_TRUE(v.isNull());
    ASSERT_TRUE(parse("true", v, nullptr));
    EXPECT_TRUE(v.boolean());
    ASSERT_TRUE(parse("false", v, nullptr));
    EXPECT_FALSE(v.boolean());
    ASSERT_TRUE(parse("-12.5e2", v, nullptr));
    EXPECT_DOUBLE_EQ(v.number(), -1250.0);
    ASSERT_TRUE(parse("\"hi\"", v, nullptr));
    EXPECT_EQ(v.str(), "hi");
}

TEST(JsonParse, NestedContainersAndWhitespace)
{
    Value v;
    ASSERT_TRUE(parse(" { \"a\" : [ 1 , 2 , { \"b\" : null } ] , "
                      "\"c\" : true } ",
                      v, nullptr));
    ASSERT_TRUE(v.isObject());
    const Value *a = v.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->array().size(), 3u);
    EXPECT_DOUBLE_EQ(a->array()[1].number(), 2.0);
    EXPECT_TRUE(a->array()[2].find("b")->isNull());
    EXPECT_TRUE(v.find("c")->boolean());
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, StringEscapes)
{
    Value v;
    ASSERT_TRUE(parse(R"("a\"b\\c\nd\tA")", v, nullptr));
    EXPECT_EQ(v.str(), "a\"b\\c\nd\tA");
}

TEST(JsonParse, RejectsMalformedInput)
{
    Value v;
    std::string err;
    EXPECT_FALSE(parse("", v, &err));
    EXPECT_FALSE(parse("{", v, &err));
    EXPECT_FALSE(parse("[1,]", v, &err));
    EXPECT_FALSE(parse("{\"a\":1,}", v, &err));
    EXPECT_FALSE(parse("\"unterminated", v, &err));
    EXPECT_FALSE(parse("1 2", v, &err)); // Trailing garbage.
    EXPECT_FALSE(parse("nul", v, &err));
    EXPECT_FALSE(err.empty());
}

TEST(JsonParse, RejectsRunawayNesting)
{
    std::string deep(128, '[');
    deep += std::string(128, ']');
    Value v;
    EXPECT_FALSE(parse(deep, v, nullptr));
}

TEST(JsonValue, FindPathWalksDottedKeys)
{
    Value v;
    ASSERT_TRUE(parse(R"({"a":{"b":{"c":3}},"a.b":7})", v, nullptr));
    const Value *c = v.findPath("a.b.c");
    ASSERT_NE(c, nullptr);
    EXPECT_DOUBLE_EQ(c->number(), 3.0);
    // Literal keys win over path splitting where both exist.
    const Value *literal = v.findPath("a.b");
    ASSERT_NE(literal, nullptr);
    EXPECT_DOUBLE_EQ(literal->number(), 7.0);
    EXPECT_EQ(v.findPath("a.x"), nullptr);
}

TEST(JsonSerialize, RoundTripPreservesStructure)
{
    Value v;
    ASSERT_TRUE(parse(
        R"({"s":"q\"uote","n":-2.5,"b":false,"l":[1,null],"o":{}})", v,
        nullptr));
    Value again;
    ASSERT_TRUE(parse(serialize(v), again, nullptr));
    EXPECT_EQ(again.find("s")->str(), "q\"uote");
    EXPECT_DOUBLE_EQ(again.find("n")->number(), -2.5);
    EXPECT_FALSE(again.find("b")->boolean());
    ASSERT_EQ(again.find("l")->array().size(), 2u);
    EXPECT_TRUE(again.find("l")->array()[1].isNull());
    EXPECT_TRUE(again.find("o")->object().empty());
}

} // namespace
} // namespace vespera::json
