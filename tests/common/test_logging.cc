#include <gtest/gtest.h>

#include "common/logging.h"

namespace vespera {
namespace {

TEST(Strfmt, FormatsLikePrintf)
{
    EXPECT_EQ(strfmt("x=%d", 42), "x=42");
    EXPECT_EQ(strfmt("%s-%s", "a", "b"), "a-b");
    EXPECT_EQ(strfmt("%.2f", 3.14159), "3.14");
    EXPECT_EQ(strfmt("plain"), "plain");
}

TEST(Strfmt, HandlesLongStrings)
{
    std::string big(5000, 'x');
    std::string out = strfmt("[%s]", big.c_str());
    EXPECT_EQ(out.size(), 5002u);
    EXPECT_EQ(out.front(), '[');
    EXPECT_EQ(out.back(), ']');
}

TEST(Strfmt, EmptyResult)
{
    EXPECT_EQ(strfmt("%s", ""), "");
}

TEST(Assertions, VassertPassesOnTrue)
{
    vassert(1 + 1 == 2, "math works");
    SUCCEED();
}

TEST(AssertionsDeath, VassertAbortsWithMessage)
{
    EXPECT_DEATH(vassert(false, "custom %d", 7), "custom 7");
}

TEST(AssertionsDeath, PanicAborts)
{
    EXPECT_DEATH(vpanic("boom %s", "now"), "boom now");
}

TEST(AssertionsDeath, FatalExitsCleanly)
{
    EXPECT_EXIT(vfatal("bad config"),
                ::testing::ExitedWithCode(1), "bad config");
}

} // namespace
} // namespace vespera
