/**
 * @file
 * Differential equivalence suite: the event-driven engine core vs the
 * legacy reference stepper (serve/engine_event.cc, engine.cc).
 *
 * The contract under test is *byte* equivalence, not approximate
 * equivalence: for every scheduler scenario, both cores at every
 * thread count must produce bit-identical serving metrics, counter
 * values/peaks/update-counts, rate meters, latency histograms
 * (count, exact sum bits, every nonzero bucket), and — with the
 * Timeline enabled, as this fixture always does — every virtual-time
 * timeline sample and SLO first-violation stamp (obs/timeline.h). All
 * floating-point state is serialized with %a so "close" can never
 * pass for "equal".
 *
 * Canonical-doc exclusions (and nothing else):
 *  - engine.steps_skipped / engine.events_processed: differ between
 *    the cores by construction (they count the structural difference).
 *  - runtime.* : host-side pool facts, thread-variant by design.
 *  - replay.*  : process-wide replay-cache stats; cache state persists
 *    across runs, so hit/miss splits depend on run order, not on the
 *    simulated schedule.
 *
 * Warm-up protocol (per scenario, before any compared run): one fully
 * executed run with the replay caches disabled settles cross-run model
 * state (the MME geometry tracker's reconfiguration counter depends on
 * the previous run's final geometry); the caches are then cleared and
 * one cache-enabled run recaptures every replay log *from that settled
 * state*. After that, cached replays and fresh executions are
 * byte-equivalent, so cache-on, cache-off, legacy, and event runs all
 * compare against one reference document.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/replay_cache.h"
#include "obs/counters.h"
#include "obs/timeline.h"
#include "runtime/pool.h"
#include "serve/engine.h"

namespace vespera::serve {
namespace {

bool
excludedFromDoc(const std::string &name)
{
    if (name == "engine.steps_skipped" ||
        name == "engine.events_processed")
        return true;
    return name.rfind("runtime.", 0) == 0 ||
           name.rfind("replay.", 0) == 0;
}

/** Every observable of one run, with float bits spelled out in hex. */
std::string
canonicalDoc(const ServingMetrics &m)
{
    std::string doc;
    doc += strfmt("metrics|makespan=%a|thr=%a|ttft=%a|p99=%a|tpot=%a|"
                  "completed=%d|preempt=%d|batch=%a\n",
                  m.makespan, m.throughputTokensPerSec, m.meanTtft,
                  m.p99Ttft, m.meanTpot, m.completed, m.preemptions,
                  m.avgDecodeBatch);
    const auto &reg = obs::CounterRegistry::instance();
    for (const auto &c : reg.snapshot()) {
        if (excludedFromDoc(c.name))
            continue;
        doc += strfmt("counter|%s|v=%a|peak=%a|n=%llu\n", c.name.c_str(),
                      c.value, c.peak,
                      static_cast<unsigned long long>(c.updates));
    }
    for (const auto *r : reg.rates()) {
        if (excludedFromDoc(r->name()))
            continue;
        doc += strfmt("rate|%s|total=%a|elapsed=%a\n", r->name().c_str(),
                      r->total(), r->elapsed());
    }
    for (const auto *h : reg.histograms()) {
        if (excludedFromDoc(h->name()))
            continue;
        doc += strfmt("hist|%s|n=%llu|sum=%a|min=%a|max=%a",
                      h->name().c_str(),
                      static_cast<unsigned long long>(h->count()),
                      h->sum(), h->min(), h->max());
        for (const auto &b : h->nonzeroBuckets())
            doc += strfmt("|[%a,%a)=%llu", b.lo, b.hi,
                          static_cast<unsigned long long>(b.count));
        doc += "\n";
    }
    // Timeline series and SLO stamps are virtual-time state, so they
    // fall under the same byte-equivalence contract as everything
    // above — every sample bit-for-bit, in both timestamp and value.
    const auto &tl = obs::Timeline::instance();
    for (const auto &s : tl.series()) {
        doc += strfmt("timeline|%s|dropped=%llu", s.name.c_str(),
                      static_cast<unsigned long long>(s.dropped));
        for (const auto &smp : s.samples)
            doc += strfmt("|(%a,%a)", smp.t, smp.value);
        doc += "\n";
    }
    for (const auto &r : tl.sloResults())
        doc += strfmt("slo|%s|bound=%a|violated=%d|t=%a|v=%a\n",
                      r.gauge.c_str(), r.bound, r.violated ? 1 : 0,
                      r.firstViolationT, r.firstViolationValue);
    return doc;
}

struct Scenario
{
    const char *name;
    EngineConfig cfg;
    std::vector<Request> trace;
};

/**
 * Thirteen scenarios spanning the scheduler feature space the
 * regression suite (tests/regress/regress_shapes.cc) exercises one
 * figure at a time: both devices, both attention backends, both KV
 * policies, both admission policies, monolithic and chunked prefill,
 * preemption storms, idle gaps, and dynamic traces.
 */
std::vector<Scenario>
scenarios()
{
    auto base = [] {
        EngineConfig cfg;
        cfg.device = DeviceKind::Gaudi2;
        cfg.maxDecodeBatch = 16;
        cfg.kvCacheBytes = 16ull << 30;
        return cfg;
    };
    std::vector<Scenario> list;

    list.push_back({"fixed_baseline", base(),
                    makeFixedTrace(32, 128, 32)});

    {
        EngineConfig cfg = base();
        cfg.maxDecodeBatch = 2;
        list.push_back({"tiny_batch", cfg, makeFixedTrace(12, 128, 24)});
    }
    {
        EngineConfig cfg = base();
        list.push_back({"long_prompts_monolithic", cfg,
                        makeFixedTrace(16, 1024, 32)});
    }
    {
        EngineConfig cfg = base();
        cfg.maxDecodeBatch = 8;
        cfg.chunkedPrefillTokens = 256;
        list.push_back({"chunked_prefill", cfg,
                        makeFixedTrace(24, 2048, 32)});
    }
    {
        EngineConfig cfg = base();
        cfg.maxDecodeBatch = 64;
        cfg.kvCacheBytes = 1ull << 30; // Overflow: preemption storm.
        list.push_back({"preemption_storm", cfg,
                        makeFixedTrace(48, 1024, 256)});
    }
    {
        EngineConfig cfg = base();
        cfg.maxDecodeBatch = 8;
        cfg.chunkedPrefillTokens = 128;
        cfg.kvCacheBytes = 1ull << 30;
        list.push_back({"chunked_plus_preemption", cfg,
                        makeFixedTrace(24, 1024, 192)});
    }
    {
        EngineConfig cfg = base();
        cfg.maxDecodeBatch = 4;
        cfg.schedPolicy = SchedPolicy::ShortestPromptFirst;
        std::vector<Request> trace;
        for (int i = 0; i < 16; i++) {
            Request r;
            r.id = i;
            r.inputLen = i % 2 == 0 ? 2048 : 128;
            r.outputLen = 16;
            trace.push_back(r);
        }
        list.push_back({"shortest_prompt_first", cfg, std::move(trace)});
    }
    {
        EngineConfig cfg = base();
        cfg.kvPolicy = KvPolicy::Contiguous;
        cfg.maxModelLen = 2048;
        list.push_back({"contiguous_kv", cfg,
                        makeFixedTrace(16, 256, 64)});
    }
    {
        EngineConfig cfg = base();
        cfg.device = DeviceKind::A100;
        list.push_back({"a100", cfg, makeFixedTrace(8, 128, 32)});
    }
    {
        EngineConfig cfg = base();
        cfg.attention = models::AttentionBackend::VllmBase;
        list.push_back({"vllm_base_attention", cfg,
                        makeFixedTrace(16, 1024, 32)});
    }
    {
        EngineConfig cfg = base();
        Rng rng(7);
        TraceConfig tc;
        tc.numRequests = 64;
        tc.maxInputLen = 512;
        tc.maxOutputLen = 128;
        list.push_back({"dynamic_trace", cfg,
                        makeDynamicTrace(tc, rng)});
    }
    {
        // Idle gaps: the engine drains between arrival bursts, so the
        // event core crosses the idle-jump path repeatedly.
        EngineConfig cfg = base();
        std::vector<Request> trace = makeFixedTrace(12, 128, 16);
        for (std::size_t i = 0; i < trace.size(); i++)
            trace[i].arrival =
                static_cast<Seconds>(i / 4) * 50.0; // 3 bursts.
        list.push_back({"bursty_arrivals", cfg, std::move(trace)});
    }
    {
        EngineConfig cfg = base();
        cfg.recordEvents = true;
        cfg.chunkedPrefillTokens = 128;
        list.push_back({"recorded_events", cfg,
                        makeFixedTrace(6, 512, 16)});
    }
    return list;
}

class EngineEquivTest : public ::testing::Test
{
  protected:
    EngineEquivTest() : model_(models::LlamaConfig::llama31_8b())
    {
        // Always-on timelines: every scenario's windowed gauges join
        // the byte-equivalence contract. The short interval forces
        // many window crossings per run, and the tight TTFT bound
        // exercises the SLO first-violation path on most scenarios.
        auto &tl = obs::Timeline::instance();
        tl.reset();
        tl.clearSlos();
        tl.setInterval(0.25);
        tl.addSlo({"ttft_p99_seconds", 0.5});
        tl.setEnabled(true);
    }

    ~EngineEquivTest() override
    {
        runtime::Pool::setGlobalThreads(1);
        obs::CounterRegistry::instance().reset();
        auto &tl = obs::Timeline::instance();
        tl.setEnabled(false);
        tl.reset();
        tl.clearSlos();
        tl.setInterval(1.0);
    }

    /** One measured run: fresh engine, reset registry, canonical doc. */
    std::string
    runOnce(const Scenario &s, EngineCore core, int threads,
            std::vector<EngineEvent> *events_out = nullptr)
    {
        runtime::Pool::setGlobalThreads(threads);
        obs::CounterRegistry::instance().reset();
        // Fresh timeline store per run (config survives): each run's
        // auto-assigned label is then deterministically "run0".
        obs::Timeline::instance().reset();
        EngineConfig cfg = s.cfg;
        cfg.core = core;
        Engine engine(model_, cfg);
        const ServingMetrics m = engine.run(s.trace);
        if (events_out != nullptr)
            *events_out = engine.events();
        return canonicalDoc(m);
    }

    /** The warm-up protocol from the file comment. */
    void
    settleAndRecapture(const Scenario &s)
    {
        runtime::Pool::setGlobalThreads(1);
        {
            graph::ReplayCacheDisable off_node(graph::nodeReplayCache());
            graph::ReplayCacheDisable off_step(graph::stepReplayCache());
            EngineConfig cfg = s.cfg;
            Engine engine(model_, cfg);
            (void)engine.run(s.trace);
        }
        graph::nodeReplayCache().clear();
        graph::stepReplayCache().clear();
        EngineConfig cfg = s.cfg;
        Engine engine(model_, cfg);
        (void)engine.run(s.trace);
    }

    models::LlamaModel model_;
};

TEST_F(EngineEquivTest, CoresAreByteIdenticalAtEveryThreadCount)
{
    for (const Scenario &s : scenarios()) {
        SCOPED_TRACE(s.name);
        settleAndRecapture(s);

        std::vector<EngineEvent> ref_events;
        const std::string reference =
            runOnce(s, EngineCore::Legacy, 1, &ref_events);
        ASSERT_FALSE(reference.empty());
        // The timeline must actually be part of the compared document,
        // or its equivalence claim would pass vacuously.
        ASSERT_NE(reference.find("timeline|run0."), std::string::npos);
        ASSERT_NE(reference.find("slo|run0.ttft_p99_seconds"),
                  std::string::npos);

        for (int threads : {1, 2, 4, 8}) {
            SCOPED_TRACE(strfmt("threads=%d", threads));
            std::vector<EngineEvent> ev_events;
            EXPECT_EQ(runOnce(s, EngineCore::Legacy, threads), reference)
                << "legacy core is not thread-count invariant";
            EXPECT_EQ(runOnce(s, EngineCore::Event, threads, &ev_events),
                      reference)
                << "event core diverged from the legacy reference";

            // recordEvents scenarios additionally pin the per-step
            // event stream, not just its aggregates.
            ASSERT_EQ(ev_events.size(), ref_events.size());
            for (std::size_t i = 0; i < ref_events.size(); i++) {
                EXPECT_EQ(static_cast<int>(ev_events[i].kind),
                          static_cast<int>(ref_events[i].kind));
                EXPECT_EQ(ev_events[i].start, ref_events[i].start);
                EXPECT_EQ(ev_events[i].duration, ref_events[i].duration);
                EXPECT_EQ(ev_events[i].decodeBatch,
                          ref_events[i].decodeBatch);
                EXPECT_EQ(ev_events[i].prefillTokens,
                          ref_events[i].prefillTokens);
            }
        }
    }
}

TEST_F(EngineEquivTest, EventCoreMatchesWithReplayCachesOff)
{
    // The replay caches claim transparency; the event core claims
    // schedule equivalence. This test composes the two claims: a
    // fully-executed (cache-off) event run must still byte-match the
    // cached legacy reference.
    for (const Scenario &s : scenarios()) {
        SCOPED_TRACE(s.name);
        settleAndRecapture(s);
        const std::string reference = runOnce(s, EngineCore::Legacy, 1);

        graph::ReplayCacheDisable off_node(graph::nodeReplayCache());
        graph::ReplayCacheDisable off_step(graph::stepReplayCache());
        EXPECT_EQ(runOnce(s, EngineCore::Event, 1), reference)
            << "replay-cache hits are not transparent on this scenario";
    }
}

TEST_F(EngineEquivTest, EventCoreActuallySkipsWork)
{
    // Guard against the fast path silently dying (e.g. a predicate
    // typo making it always false): on a plain decode-heavy scenario
    // the skipped-step counter must dominate.
    Scenario s{"skip_check", EngineConfig{}, makeFixedTrace(16, 128, 64)};
    s.cfg.maxDecodeBatch = 16;
    s.cfg.kvCacheBytes = 16ull << 30;
    settleAndRecapture(s);

    runtime::Pool::setGlobalThreads(1);
    obs::CounterRegistry::instance().reset();
    EngineConfig cfg = s.cfg;
    cfg.core = EngineCore::Event;
    Engine engine(model_, cfg);
    (void)engine.run(s.trace);

    const auto &reg = obs::CounterRegistry::instance();
    const obs::Counter *skipped = reg.find("engine.steps_skipped");
    const obs::Counter *full = reg.find("engine.events_processed");
    ASSERT_NE(skipped, nullptr);
    ASSERT_NE(full, nullptr);
    EXPECT_GT(skipped->value(), 0.0);
    EXPECT_GT(skipped->value(), full->value())
        << "decode-heavy schedules should mostly ride the fast path";
}

} // namespace
} // namespace vespera::serve
