#include <gtest/gtest.h>

#include "serve/kv_cache.h"

namespace vespera::serve {
namespace {

TEST(PagedKvCache, BlocksForRoundsUp)
{
    PagedKvCache kv(100, 128);
    EXPECT_EQ(kv.blocksFor(1), 1);
    EXPECT_EQ(kv.blocksFor(128), 1);
    EXPECT_EQ(kv.blocksFor(129), 2);
    EXPECT_EQ(kv.blocksFor(0), 0);
}

TEST(PagedKvCache, GrowAndRelease)
{
    PagedKvCache kv(10, 128);
    EXPECT_TRUE(kv.grow(1, 300)); // 3 blocks.
    EXPECT_EQ(kv.freeBlocks(), 7);
    EXPECT_TRUE(kv.grow(1, 400)); // 4 blocks total (+1).
    EXPECT_EQ(kv.freeBlocks(), 6);
    kv.release(1);
    EXPECT_EQ(kv.freeBlocks(), 10);
    EXPECT_EQ(kv.activeSequences(), 0);
}

TEST(PagedKvCache, GrowIsIncrementalNotDouble)
{
    PagedKvCache kv(4, 128);
    EXPECT_TRUE(kv.grow(1, 128));
    EXPECT_TRUE(kv.grow(1, 129)); // Needs only 1 more block.
    EXPECT_EQ(kv.freeBlocks(), 2);
}

TEST(PagedKvCache, RefusesWhenExhausted)
{
    PagedKvCache kv(2, 128);
    EXPECT_TRUE(kv.grow(1, 256));
    EXPECT_FALSE(kv.grow(2, 128));
    EXPECT_FALSE(kv.canGrow(2, 128));
    kv.release(1);
    EXPECT_TRUE(kv.canGrow(2, 128));
}

TEST(PagedKvCache, GrowFailureLeavesStateUnchanged)
{
    PagedKvCache kv(3, 128);
    EXPECT_TRUE(kv.grow(1, 128));
    EXPECT_FALSE(kv.grow(1, 128 * 4));
    EXPECT_EQ(kv.freeBlocks(), 2); // Unchanged by the failed grow.
    EXPECT_TRUE(kv.grow(1, 128 * 3));
}

TEST(ContiguousKvCache, ReservesMaxLength)
{
    ContiguousKvCache kv(10000, 2048);
    EXPECT_EQ(kv.capacitySequences(), 4);
    EXPECT_TRUE(kv.admit(1));
    EXPECT_TRUE(kv.admit(2));
    EXPECT_TRUE(kv.admit(3));
    EXPECT_TRUE(kv.admit(4));
    EXPECT_FALSE(kv.admit(5)); // Fragmented away.
    kv.release(2);
    EXPECT_TRUE(kv.admit(5));
}

// The PagedAttention motivation: paging admits far more concurrent
// short sequences than max-length reservation.
TEST(KvCache, PagingBeatsContiguousForShortSequences)
{
    const std::int64_t pool_tokens = 1 << 16;
    const std::int64_t max_len = 4096;
    const std::int64_t actual_len = 512;

    ContiguousKvCache contiguous(pool_tokens, max_len);
    PagedKvCache paged(pool_tokens / 128, 128);

    int contiguous_admitted = 0, paged_admitted = 0;
    for (int i = 0; i < 1000; i++) {
        if (contiguous.admit(i))
            contiguous_admitted++;
        if (paged.grow(i, actual_len))
            paged_admitted++;
    }
    EXPECT_EQ(contiguous_admitted, 16);
    EXPECT_EQ(paged_admitted, 128);
}

TEST(KvCache, BytesPerToken)
{
    // Llama-8B BF16: 32 layers x 2 x 8 heads x 128 dim x 2 B = 131072.
    EXPECT_EQ(kvBytesPerToken(32, 8, 128, DataType::BF16), 131072u);
}

} // namespace
} // namespace vespera::serve
