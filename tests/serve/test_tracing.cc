#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "common/io.h"
#include "common/json.h"
#include "graph/compiler.h"
#include "obs/export.h"
#include "serve/tracing.h"

namespace vespera::serve {
namespace {

std::vector<EngineEvent>
sampleEvents()
{
    std::vector<EngineEvent> events;
    EngineEvent prefill;
    prefill.kind = EngineEvent::Kind::Prefill;
    prefill.start = 0;
    prefill.duration = 1e-3;
    prefill.prefillTokens = 512;
    events.push_back(prefill);

    EngineEvent decode;
    decode.kind = EngineEvent::Kind::Decode;
    decode.start = 1e-3;
    decode.duration = 2e-4;
    decode.decodeBatch = 8;
    events.push_back(decode);

    EngineEvent mixed;
    mixed.kind = EngineEvent::Kind::Mixed;
    mixed.start = 1.2e-3;
    mixed.duration = 5e-4;
    mixed.decodeBatch = 8;
    mixed.prefillTokens = 256;
    events.push_back(mixed);
    return events;
}

TEST(Tracing, EngineEventsJsonStructure)
{
    std::string json = engineEventsToChromeTrace(sampleEvents());
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("prefill 512 tok"), std::string::npos);
    EXPECT_NE(json.find("decode b8"), std::string::npos);
    EXPECT_NE(json.find("chunk 256"), std::string::npos);
    // Times are microseconds: 1 ms -> 1000.
    EXPECT_NE(json.find("\"dur\": 1000.000"), std::string::npos);
    // No trailing comma before the closing bracket.
    EXPECT_EQ(json.find("},\n  ]"), std::string::npos);
}

TEST(Tracing, TimelineJsonFromRealGraph)
{
    graph::Graph g;
    int a = g.input({{1024, 1024}, DataType::BF16}, "a");
    int w = g.input({{1024, 1024}, DataType::BF16}, "w");
    int mm = g.matmul(a, w, "mm");
    (void)g.elementwise({mm}, 1.0, false, "act");
    graph::Compiler().compile(g);
    graph::Executor exec(DeviceKind::Gaudi2);
    auto rep = exec.run(g);

    std::string json = timelineToChromeTrace(rep.timeline);
    EXPECT_NE(json.find("\"mm\""), std::string::npos);
    EXPECT_NE(json.find("\"act\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"mme\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"tpc\""), std::string::npos);
    // Lane labels come through as thread_name metadata.
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"MME\""), std::string::npos);
    // Inputs are omitted.
    EXPECT_EQ(json.find("\"a\""), std::string::npos);
    EXPECT_EQ(json.find("},\n  ]"), std::string::npos);
}

TEST(Tracing, ExportsAreValidJson)
{
    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::parse(engineEventsToChromeTrace(sampleEvents()),
                            doc, &err))
        << err;
    const json::Value *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    EXPECT_TRUE(events->isArray());
    // Metadata events (process/thread names) + the three spans.
    EXPECT_GE(events->array().size(), 3u);
}

TEST(Tracing, ExecutorEmitsCounterTracksWhenProfiling)
{
    obs::Profiler &profiler = obs::Profiler::instance();
    profiler.clear();
    profiler.setEnabled(true);

    graph::Graph g;
    int a = g.input({{2048, 2048}, DataType::BF16}, "a");
    int w = g.input({{2048, 2048}, DataType::BF16}, "w");
    int mm = g.matmul(a, w, "mm");
    (void)g.elementwise({mm}, 1.0, false, "act");
    graph::Compiler().compile(g);
    graph::Executor exec(DeviceKind::Gaudi2);
    auto rep = exec.run(g);
    recordTimeline(profiler, rep.timeline);

    profiler.setEnabled(false);
    const auto tracks = profiler.sampledTracks();
    EXPECT_NE(std::find(tracks.begin(), tracks.end(), "mme.utilization"),
              tracks.end());
    EXPECT_NE(
        std::find(tracks.begin(), tracks.end(), "hbm.bandwidth_gbps"),
        tracks.end());

    // Counter samples appear as "C" events alongside the spans.
    std::string json = obs::chromeTraceJson(profiler);
    EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
    EXPECT_NE(json.find("mme.utilization"), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    profiler.clear();
}

TEST(Tracing, WriteFileRoundTrip)
{
    const std::string path = "/tmp/vespera_test_trace.json";
    ASSERT_TRUE(writeFile(path, "{\"x\": 1}\n"));
    std::string back;
    ASSERT_TRUE(readFile(path, back));
    EXPECT_EQ(back, "{\"x\": 1}\n");
    std::remove(path.c_str());
}

TEST(Tracing, WriteFileFailsOnBadPath)
{
    EXPECT_FALSE(writeFile("/nonexistent_dir/x.json", "data"));
}

} // namespace
} // namespace vespera::serve
