#include <gtest/gtest.h>

#include "serve/trace.h"

namespace vespera::serve {
namespace {

TEST(Trace, FixedTraceShape)
{
    auto t = makeFixedTrace(8, 100, 50);
    ASSERT_EQ(t.size(), 8u);
    for (const auto &r : t) {
        EXPECT_EQ(r.inputLen, 100);
        EXPECT_EQ(r.outputLen, 50);
        EXPECT_DOUBLE_EQ(r.arrival, 0);
    }
}

TEST(Trace, DynamicLengthsWithinBounds)
{
    TraceConfig cfg;
    cfg.numRequests = 500;
    Rng rng(1);
    auto t = makeDynamicTrace(cfg, rng);
    ASSERT_EQ(t.size(), 500u);
    for (const auto &r : t) {
        EXPECT_GE(r.inputLen, cfg.minInputLen);
        EXPECT_LE(r.inputLen, cfg.maxInputLen);
        EXPECT_GE(r.outputLen, cfg.minOutputLen);
        EXPECT_LE(r.outputLen, cfg.maxOutputLen);
    }
}

TEST(Trace, DynamicLengthsActuallyVary)
{
    TraceConfig cfg;
    cfg.numRequests = 100;
    Rng rng(2);
    auto t = makeDynamicTrace(cfg, rng);
    int distinct_in = 0;
    for (std::size_t i = 1; i < t.size(); i++)
        if (t[i].inputLen != t[0].inputLen)
            distinct_in++;
    EXPECT_GT(distinct_in, 50);
}

TEST(Trace, OfflineArrivalsAtZero)
{
    TraceConfig cfg;
    cfg.arrivalRate = 0;
    Rng rng(3);
    auto t = makeDynamicTrace(cfg, rng);
    for (const auto &r : t)
        EXPECT_DOUBLE_EQ(r.arrival, 0);
}

TEST(Trace, PoissonArrivalsIncrease)
{
    TraceConfig cfg;
    cfg.numRequests = 50;
    cfg.arrivalRate = 10.0;
    Rng rng(4);
    auto t = makeDynamicTrace(cfg, rng);
    for (std::size_t i = 1; i < t.size(); i++)
        EXPECT_GE(t[i].arrival, t[i - 1].arrival);
    // Mean inter-arrival ~ 1/rate.
    EXPECT_NEAR(t.back().arrival / 50.0, 0.1, 0.06);
}

TEST(Trace, Deterministic)
{
    TraceConfig cfg;
    Rng a(5), b(5);
    auto t1 = makeDynamicTrace(cfg, a);
    auto t2 = makeDynamicTrace(cfg, b);
    for (std::size_t i = 0; i < t1.size(); i++) {
        EXPECT_EQ(t1[i].inputLen, t2[i].inputLen);
        EXPECT_EQ(t1[i].outputLen, t2[i].outputLen);
    }
}

} // namespace
} // namespace vespera::serve
