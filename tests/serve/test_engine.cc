#include <gtest/gtest.h>

#include "serve/engine.h"

namespace vespera::serve {
namespace {

class EngineTest : public ::testing::Test
{
  protected:
    EngineTest()
        : model_(models::LlamaConfig::llama31_8b())
    {
    }

    EngineConfig
    baseConfig()
    {
        EngineConfig cfg;
        cfg.device = DeviceKind::Gaudi2;
        cfg.maxDecodeBatch = 16;
        cfg.kvCacheBytes = 16ull << 30;
        return cfg;
    }

    models::LlamaModel model_;
};

TEST_F(EngineTest, CompletesAllRequests)
{
    Engine engine(model_, baseConfig());
    auto m = engine.run(makeFixedTrace(32, 128, 32));
    EXPECT_EQ(m.completed, 32);
    EXPECT_GT(m.makespan, 0);
    EXPECT_GT(m.throughputTokensPerSec, 0);
    EXPECT_GT(m.meanTtft, 0);
    EXPECT_GT(m.meanTpot, 0);
}

TEST_F(EngineTest, TtftBelowTotalLatency)
{
    Engine engine(model_, baseConfig());
    auto m = engine.run(makeFixedTrace(16, 128, 64));
    EXPECT_LT(m.meanTtft, m.makespan);
    EXPECT_LE(m.meanTtft, m.p99Ttft);
}

// Figure 17(e): growing the max decode batch raises TPOT (more work
// per step) but improves throughput until saturation; TTFT grows as
// prefills queue behind larger decode batches.
TEST_F(EngineTest, MaxBatchTradeoff)
{
    auto run_with = [&](int max_batch) {
        EngineConfig cfg = baseConfig();
        cfg.maxDecodeBatch = max_batch;
        Engine engine(model_, cfg);
        Rng rng(7);
        TraceConfig tc;
        tc.numRequests = 64;
        tc.maxInputLen = 512;
        tc.maxOutputLen = 128;
        return engine.run(makeDynamicTrace(tc, rng));
    };
    auto small = run_with(2);
    auto large = run_with(32);
    EXPECT_GT(large.throughputTokensPerSec,
              small.throughputTokensPerSec);
    EXPECT_GT(large.meanTpot, small.meanTpot);
    EXPECT_GT(large.avgDecodeBatch, small.avgDecodeBatch);
}

TEST_F(EngineTest, VllmOptOutperformsBase)
{
    EngineConfig cfg = baseConfig();
    cfg.attention = models::AttentionBackend::VllmBase;
    Engine base(model_, cfg);
    cfg.attention = models::AttentionBackend::VllmOpt;
    Engine opt(model_, cfg);
    auto trace = makeFixedTrace(16, 1024, 32);
    auto mb = base.run(trace);
    auto mo = opt.run(trace);
    EXPECT_GT(mo.throughputTokensPerSec, mb.throughputTokensPerSec);
}

TEST_F(EngineTest, TinyKvCacheForcesPreemptionOrStillCompletes)
{
    EngineConfig cfg = baseConfig();
    cfg.kvCacheBytes = 1ull << 28; // 256 MiB: ~2048 tokens of KV.
    cfg.maxDecodeBatch = 8;
    Engine engine(model_, cfg);
    auto m = engine.run(makeFixedTrace(8, 256, 128));
    EXPECT_EQ(m.completed, 8); // Preemption must not lose requests.
}

TEST_F(EngineTest, RespectsArrivalTimes)
{
    EngineConfig cfg = baseConfig();
    Engine engine(model_, cfg);
    std::vector<Request> trace = makeFixedTrace(4, 128, 16);
    trace[3].arrival = 1e3; // Arrives much later.
    auto m = engine.run(trace);
    EXPECT_GE(m.makespan, 1e3);
}

TEST_F(EngineTest, A100EngineRuns)
{
    EngineConfig cfg = baseConfig();
    cfg.device = DeviceKind::A100;
    Engine engine(model_, cfg);
    auto m = engine.run(makeFixedTrace(8, 128, 32));
    EXPECT_EQ(m.completed, 8);
}

TEST_F(EngineTest, KvCacheClampedToHbmBudget)
{
    EngineConfig cfg = baseConfig();
    cfg.kvCacheBytes = 1ull << 40; // Absurd: 1 TiB.
    Engine engine(model_, cfg);
    // Weights (~16 GiB) + KV must fit the 96 GiB HBM.
    EXPECT_LE(engine.kvBudget(), hw::gaudi2Spec().hbmCapacity);
    EXPECT_GT(engine.kvBudget(), 60ull << 30);
    auto m = engine.run(makeFixedTrace(8, 128, 16));
    EXPECT_EQ(m.completed, 8);
}

TEST_F(EngineTest, ModelTooLargePanics)
{
    models::LlamaModel big(models::LlamaConfig::llama31_70b());
    EngineConfig cfg = baseConfig();
    cfg.tpDevices = 1; // 140 GiB of weights on a 96 GiB device.
    EXPECT_DEATH(Engine(big, cfg), "does not fit");
}

TEST_F(EngineTest, ChunkedPrefillReducesDecodeStalls)
{
    // Long prompts + short outputs: monolithic prefills stall the
    // decode batch; chunking interleaves them.
    auto trace = makeFixedTrace(24, 2048, 32);
    EngineConfig cfg = baseConfig();
    cfg.maxDecodeBatch = 8;

    Engine mono(model_, cfg);
    auto mm = mono.run(trace);

    cfg.chunkedPrefillTokens = 256;
    Engine chunked(model_, cfg);
    auto mc = chunked.run(trace);

    EXPECT_EQ(mc.completed, 24);
    // Decode cadence (TPOT) improves when prefills no longer block
    // entire iterations.
    EXPECT_LT(mc.meanTpot, mm.meanTpot);
}

TEST_F(EngineTest, EventsRecordedAndOrdered)
{
    EngineConfig cfg = baseConfig();
    cfg.recordEvents = true;
    cfg.chunkedPrefillTokens = 128;
    Engine engine(model_, cfg);
    auto m = engine.run(makeFixedTrace(6, 512, 16));
    EXPECT_EQ(m.completed, 6);
    const auto &events = engine.events();
    ASSERT_FALSE(events.empty());
    Seconds prev_end = 0;
    bool saw_prefill_work = false, saw_decode = false;
    for (const auto &e : events) {
        EXPECT_GE(e.start, prev_end - 1e-12);
        EXPECT_GT(e.duration, 0);
        prev_end = e.start + e.duration;
        if (e.prefillTokens > 0)
            saw_prefill_work = true;
        if (e.decodeBatch > 0)
            saw_decode = true;
    }
    EXPECT_TRUE(saw_prefill_work);
    EXPECT_TRUE(saw_decode);
    // Last event ends at the makespan.
    EXPECT_NEAR(prev_end, m.makespan, 1e-9);
}

TEST_F(EngineTest, ShortestPromptFirstLowersMeanTtft)
{
    // A mix of long and short prompts, all arriving at once: FCFS
    // makes short prompts wait behind long prefills.
    std::vector<Request> trace;
    for (int i = 0; i < 16; i++) {
        Request r;
        r.id = i;
        r.inputLen = i % 2 == 0 ? 2048 : 128;
        r.outputLen = 16;
        trace.push_back(r);
    }

    EngineConfig cfg = baseConfig();
    cfg.maxDecodeBatch = 4;
    Engine fcfs(model_, cfg);
    auto mf = fcfs.run(trace);

    cfg.schedPolicy = SchedPolicy::ShortestPromptFirst;
    Engine sjf(model_, cfg);
    auto ms = sjf.run(trace);

    EXPECT_EQ(ms.completed, 16);
    EXPECT_LT(ms.meanTtft, mf.meanTtft);
    // Total work is unchanged; makespan stays comparable.
    EXPECT_NEAR(ms.makespan / mf.makespan, 1.0, 0.15);
}

TEST_F(EngineTest, EventsOffByDefault)
{
    Engine engine(model_, baseConfig());
    engine.run(makeFixedTrace(4, 128, 8));
    EXPECT_TRUE(engine.events().empty());
}

} // namespace
} // namespace vespera::serve
