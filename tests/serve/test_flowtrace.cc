#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "obs/counters.h"
#include "obs/export.h"
#include "obs/profiler.h"
#include "serve/engine.h"

namespace vespera::serve {
namespace {

// Request-lifecycle flow tracing: with the profiler on, every request
// emits a linked chain of Device-track spans (queued -> prefill ->
// decode, with preemption episodes in between) sharing one flowId,
// and the Chrome exporter turns each chain into Perfetto flow arrows.

class FlowTraceTest : public ::testing::Test
{
  protected:
    FlowTraceTest() : model_(models::LlamaConfig::llama31_8b()) {}

    void
    SetUp() override
    {
        obs::Profiler::instance().clear();
        obs::Profiler::instance().setEnabled(true);
    }

    void
    TearDown() override
    {
        obs::Profiler::instance().setEnabled(false);
        obs::Profiler::instance().clear();
    }

    std::map<std::uint64_t, std::vector<obs::SpanEvent>>
    requestFlows()
    {
        std::map<std::uint64_t, std::vector<obs::SpanEvent>> flows;
        for (const auto &sp : obs::Profiler::instance().spans())
            if (sp.category == "request")
                flows[sp.flowId].push_back(sp);
        for (auto &[id, spans] : flows)
            std::stable_sort(spans.begin(), spans.end(),
                             [](const obs::SpanEvent &a,
                                const obs::SpanEvent &b) {
                                 return a.start < b.start;
                             });
        return flows;
    }

    models::LlamaModel model_;
};

TEST_F(FlowTraceTest, EveryRequestGetsALinkedLifecycle)
{
    EngineConfig cfg;
    cfg.device = DeviceKind::Gaudi2;
    cfg.maxDecodeBatch = 4;
    cfg.kvCacheBytes = 16ull << 30;
    Engine engine(model_, cfg);
    auto m = engine.run(makeFixedTrace(6, 128, 16));
    ASSERT_EQ(m.completed, 6);

    auto flows = requestFlows();
    ASSERT_EQ(flows.size(), 6u); // One flow per request, flowId = id+1.
    for (const auto &[id, spans] : flows) {
        ASSERT_NE(id, 0u);
        ASSERT_GE(spans.size(), 3u) << "flow " << id;
        // Lifecycle starts queued, then prefills, then decodes.
        EXPECT_NE(spans[0].name.find("queued"), std::string::npos);
        EXPECT_NE(spans[1].name.find("prefill"), std::string::npos);
        EXPECT_NE(spans.back().name.find("decode"), std::string::npos);
        for (const auto &sp : spans) {
            EXPECT_EQ(sp.group, obs::TrackGroup::Device);
            EXPECT_GE(sp.duration, 0.0);
            // Span names carry the request id for the trace viewer.
            EXPECT_NE(sp.name.find(std::to_string(id - 1)),
                      std::string::npos);
        }
        // Phases of one request never run concurrently.
        for (std::size_t i = 1; i < spans.size(); i++)
            EXPECT_GE(spans[i].start,
                      spans[i - 1].start + spans[i - 1].duration -
                          1e-12)
                << "flow " << id;
    }
}

TEST_F(FlowTraceTest, PreemptionAddsReprefillEpisodes)
{
    // Tiny paged KV with outputs long enough to outgrow each
    // request's admission-time block reservation: forces
    // recompute-style preemption, which must show up as extra
    // lifecycle episodes.
    EngineConfig cfg;
    cfg.device = DeviceKind::Gaudi2;
    cfg.maxDecodeBatch = 8;
    cfg.kvCacheBytes = 1ull << 28;
    auto &reg = obs::CounterRegistry::instance();
    const double preempt0 = reg.counter("engine.preemptions").value();
    Engine engine(model_, cfg);
    auto m = engine.run(makeFixedTrace(8, 300, 200));
    ASSERT_EQ(m.completed, 8);
    const double preempts =
        reg.counter("engine.preemptions").value() - preempt0;

    auto flows = requestFlows();
    ASSERT_EQ(flows.size(), 8u);
    int preempted_spans = 0, requeues = 0, reprefills = 0;
    for (const auto &[id, spans] : flows) {
        (void)id;
        for (const auto &sp : spans) {
            if (sp.name.find("preempted") != std::string::npos)
                preempted_spans++;
            if (sp.name.find("re-queued") != std::string::npos)
                requeues++;
            if (sp.name.find("re-prefill") != std::string::npos)
                reprefills++;
        }
    }
    // Every preemption the engine counted appears in the trace as a
    // truncated decode, a re-queue, and a second prefill.
    EXPECT_EQ(preempted_spans, static_cast<int>(preempts));
    EXPECT_EQ(requeues, static_cast<int>(preempts));
    EXPECT_EQ(reprefills, static_cast<int>(preempts));
    EXPECT_GT(m.preemptions, 0) << "scenario no longer preempts; "
                                   "shrink kvCacheBytes";
}

TEST_F(FlowTraceTest, ExporterEmitsPerfettoFlowArrows)
{
    EngineConfig cfg;
    cfg.device = DeviceKind::Gaudi2;
    cfg.maxDecodeBatch = 2;
    cfg.kvCacheBytes = 16ull << 30;
    Engine engine(model_, cfg);
    (void)engine.run(makeFixedTrace(3, 64, 8));

    const std::string json =
        obs::chromeTraceJson(obs::Profiler::instance());
    // Flow start / step / end arrows, with binding-point-enclosing on
    // the terminator so the arrow lands inside the final span.
    EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"t\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
    EXPECT_NE(json.find("\"bp\": \"e\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"flow\""), std::string::npos);
    // The queue lane and per-slot lanes are labeled for the viewer.
    EXPECT_NE(json.find("req queue"), std::string::npos);
    EXPECT_NE(json.find("req slot 0"), std::string::npos);
}

} // namespace
} // namespace vespera::serve
