file(REMOVE_RECURSE
  "libvespera_net.a"
)
