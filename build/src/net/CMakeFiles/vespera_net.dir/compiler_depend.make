# Empty compiler generated dependencies file for vespera_net.
# This may be replaced when dependencies are built.
