file(REMOVE_RECURSE
  "CMakeFiles/vespera_net.dir/topology.cc.o"
  "CMakeFiles/vespera_net.dir/topology.cc.o.d"
  "libvespera_net.a"
  "libvespera_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vespera_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
