# Empty compiler generated dependencies file for vespera_graph.
# This may be replaced when dependencies are built.
