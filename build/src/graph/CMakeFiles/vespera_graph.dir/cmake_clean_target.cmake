file(REMOVE_RECURSE
  "libvespera_graph.a"
)
