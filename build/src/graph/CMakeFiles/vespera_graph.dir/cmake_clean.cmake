file(REMOVE_RECURSE
  "CMakeFiles/vespera_graph.dir/compiler.cc.o"
  "CMakeFiles/vespera_graph.dir/compiler.cc.o.d"
  "CMakeFiles/vespera_graph.dir/executor.cc.o"
  "CMakeFiles/vespera_graph.dir/executor.cc.o.d"
  "CMakeFiles/vespera_graph.dir/graph.cc.o"
  "CMakeFiles/vespera_graph.dir/graph.cc.o.d"
  "libvespera_graph.a"
  "libvespera_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vespera_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
