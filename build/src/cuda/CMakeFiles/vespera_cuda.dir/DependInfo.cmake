
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cuda/simt.cc" "src/cuda/CMakeFiles/vespera_cuda.dir/simt.cc.o" "gcc" "src/cuda/CMakeFiles/vespera_cuda.dir/simt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vespera_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/vespera_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vespera_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
