# Empty compiler generated dependencies file for vespera_cuda.
# This may be replaced when dependencies are built.
