file(REMOVE_RECURSE
  "libvespera_cuda.a"
)
