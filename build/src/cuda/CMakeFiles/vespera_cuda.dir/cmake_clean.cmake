file(REMOVE_RECURSE
  "CMakeFiles/vespera_cuda.dir/simt.cc.o"
  "CMakeFiles/vespera_cuda.dir/simt.cc.o.d"
  "libvespera_cuda.a"
  "libvespera_cuda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vespera_cuda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
