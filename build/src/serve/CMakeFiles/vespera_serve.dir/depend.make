# Empty dependencies file for vespera_serve.
# This may be replaced when dependencies are built.
