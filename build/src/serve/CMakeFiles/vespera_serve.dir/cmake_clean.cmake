file(REMOVE_RECURSE
  "CMakeFiles/vespera_serve.dir/engine.cc.o"
  "CMakeFiles/vespera_serve.dir/engine.cc.o.d"
  "CMakeFiles/vespera_serve.dir/kv_cache.cc.o"
  "CMakeFiles/vespera_serve.dir/kv_cache.cc.o.d"
  "CMakeFiles/vespera_serve.dir/trace.cc.o"
  "CMakeFiles/vespera_serve.dir/trace.cc.o.d"
  "CMakeFiles/vespera_serve.dir/tracing.cc.o"
  "CMakeFiles/vespera_serve.dir/tracing.cc.o.d"
  "libvespera_serve.a"
  "libvespera_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vespera_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
