file(REMOVE_RECURSE
  "libvespera_serve.a"
)
