file(REMOVE_RECURSE
  "libvespera_coll.a"
)
