file(REMOVE_RECURSE
  "CMakeFiles/vespera_coll.dir/collective.cc.o"
  "CMakeFiles/vespera_coll.dir/collective.cc.o.d"
  "libvespera_coll.a"
  "libvespera_coll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vespera_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
