# Empty dependencies file for vespera_coll.
# This may be replaced when dependencies are built.
