file(REMOVE_RECURSE
  "libvespera_kern.a"
)
