file(REMOVE_RECURSE
  "CMakeFiles/vespera_kern.dir/embedding.cc.o"
  "CMakeFiles/vespera_kern.dir/embedding.cc.o.d"
  "CMakeFiles/vespera_kern.dir/gather_scatter.cc.o"
  "CMakeFiles/vespera_kern.dir/gather_scatter.cc.o.d"
  "CMakeFiles/vespera_kern.dir/gemm.cc.o"
  "CMakeFiles/vespera_kern.dir/gemm.cc.o.d"
  "CMakeFiles/vespera_kern.dir/layernorm.cc.o"
  "CMakeFiles/vespera_kern.dir/layernorm.cc.o.d"
  "CMakeFiles/vespera_kern.dir/paged_attention.cc.o"
  "CMakeFiles/vespera_kern.dir/paged_attention.cc.o.d"
  "CMakeFiles/vespera_kern.dir/softmax.cc.o"
  "CMakeFiles/vespera_kern.dir/softmax.cc.o.d"
  "CMakeFiles/vespera_kern.dir/stream.cc.o"
  "CMakeFiles/vespera_kern.dir/stream.cc.o.d"
  "CMakeFiles/vespera_kern.dir/vector_op.cc.o"
  "CMakeFiles/vespera_kern.dir/vector_op.cc.o.d"
  "libvespera_kern.a"
  "libvespera_kern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vespera_kern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
