
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kern/embedding.cc" "src/kern/CMakeFiles/vespera_kern.dir/embedding.cc.o" "gcc" "src/kern/CMakeFiles/vespera_kern.dir/embedding.cc.o.d"
  "/root/repo/src/kern/gather_scatter.cc" "src/kern/CMakeFiles/vespera_kern.dir/gather_scatter.cc.o" "gcc" "src/kern/CMakeFiles/vespera_kern.dir/gather_scatter.cc.o.d"
  "/root/repo/src/kern/gemm.cc" "src/kern/CMakeFiles/vespera_kern.dir/gemm.cc.o" "gcc" "src/kern/CMakeFiles/vespera_kern.dir/gemm.cc.o.d"
  "/root/repo/src/kern/layernorm.cc" "src/kern/CMakeFiles/vespera_kern.dir/layernorm.cc.o" "gcc" "src/kern/CMakeFiles/vespera_kern.dir/layernorm.cc.o.d"
  "/root/repo/src/kern/paged_attention.cc" "src/kern/CMakeFiles/vespera_kern.dir/paged_attention.cc.o" "gcc" "src/kern/CMakeFiles/vespera_kern.dir/paged_attention.cc.o.d"
  "/root/repo/src/kern/softmax.cc" "src/kern/CMakeFiles/vespera_kern.dir/softmax.cc.o" "gcc" "src/kern/CMakeFiles/vespera_kern.dir/softmax.cc.o.d"
  "/root/repo/src/kern/stream.cc" "src/kern/CMakeFiles/vespera_kern.dir/stream.cc.o" "gcc" "src/kern/CMakeFiles/vespera_kern.dir/stream.cc.o.d"
  "/root/repo/src/kern/vector_op.cc" "src/kern/CMakeFiles/vespera_kern.dir/vector_op.cc.o" "gcc" "src/kern/CMakeFiles/vespera_kern.dir/vector_op.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vespera_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/vespera_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vespera_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/tpc/CMakeFiles/vespera_tpc.dir/DependInfo.cmake"
  "/root/repo/build/src/cuda/CMakeFiles/vespera_cuda.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
