# Empty dependencies file for vespera_kern.
# This may be replaced when dependencies are built.
