file(REMOVE_RECURSE
  "libvespera_mem.a"
)
