file(REMOVE_RECURSE
  "CMakeFiles/vespera_mem.dir/hbm.cc.o"
  "CMakeFiles/vespera_mem.dir/hbm.cc.o.d"
  "libvespera_mem.a"
  "libvespera_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vespera_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
