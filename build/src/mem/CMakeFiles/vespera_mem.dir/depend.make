# Empty dependencies file for vespera_mem.
# This may be replaced when dependencies are built.
