
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tpc/context.cc" "src/tpc/CMakeFiles/vespera_tpc.dir/context.cc.o" "gcc" "src/tpc/CMakeFiles/vespera_tpc.dir/context.cc.o.d"
  "/root/repo/src/tpc/dispatcher.cc" "src/tpc/CMakeFiles/vespera_tpc.dir/dispatcher.cc.o" "gcc" "src/tpc/CMakeFiles/vespera_tpc.dir/dispatcher.cc.o.d"
  "/root/repo/src/tpc/pipeline.cc" "src/tpc/CMakeFiles/vespera_tpc.dir/pipeline.cc.o" "gcc" "src/tpc/CMakeFiles/vespera_tpc.dir/pipeline.cc.o.d"
  "/root/repo/src/tpc/program.cc" "src/tpc/CMakeFiles/vespera_tpc.dir/program.cc.o" "gcc" "src/tpc/CMakeFiles/vespera_tpc.dir/program.cc.o.d"
  "/root/repo/src/tpc/tensor.cc" "src/tpc/CMakeFiles/vespera_tpc.dir/tensor.cc.o" "gcc" "src/tpc/CMakeFiles/vespera_tpc.dir/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vespera_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/vespera_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vespera_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
