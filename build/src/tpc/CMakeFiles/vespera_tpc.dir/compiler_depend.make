# Empty compiler generated dependencies file for vespera_tpc.
# This may be replaced when dependencies are built.
