file(REMOVE_RECURSE
  "libvespera_tpc.a"
)
