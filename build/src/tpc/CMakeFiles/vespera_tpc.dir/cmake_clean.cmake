file(REMOVE_RECURSE
  "CMakeFiles/vespera_tpc.dir/context.cc.o"
  "CMakeFiles/vespera_tpc.dir/context.cc.o.d"
  "CMakeFiles/vespera_tpc.dir/dispatcher.cc.o"
  "CMakeFiles/vespera_tpc.dir/dispatcher.cc.o.d"
  "CMakeFiles/vespera_tpc.dir/pipeline.cc.o"
  "CMakeFiles/vespera_tpc.dir/pipeline.cc.o.d"
  "CMakeFiles/vespera_tpc.dir/program.cc.o"
  "CMakeFiles/vespera_tpc.dir/program.cc.o.d"
  "CMakeFiles/vespera_tpc.dir/tensor.cc.o"
  "CMakeFiles/vespera_tpc.dir/tensor.cc.o.d"
  "libvespera_tpc.a"
  "libvespera_tpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vespera_tpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
