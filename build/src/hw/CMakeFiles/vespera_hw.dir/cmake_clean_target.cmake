file(REMOVE_RECURSE
  "libvespera_hw.a"
)
