file(REMOVE_RECURSE
  "CMakeFiles/vespera_hw.dir/device_spec.cc.o"
  "CMakeFiles/vespera_hw.dir/device_spec.cc.o.d"
  "CMakeFiles/vespera_hw.dir/mme.cc.o"
  "CMakeFiles/vespera_hw.dir/mme.cc.o.d"
  "CMakeFiles/vespera_hw.dir/power.cc.o"
  "CMakeFiles/vespera_hw.dir/power.cc.o.d"
  "CMakeFiles/vespera_hw.dir/tensor_core.cc.o"
  "CMakeFiles/vespera_hw.dir/tensor_core.cc.o.d"
  "libvespera_hw.a"
  "libvespera_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vespera_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
