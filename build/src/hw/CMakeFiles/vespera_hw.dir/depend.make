# Empty dependencies file for vespera_hw.
# This may be replaced when dependencies are built.
