
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/device_spec.cc" "src/hw/CMakeFiles/vespera_hw.dir/device_spec.cc.o" "gcc" "src/hw/CMakeFiles/vespera_hw.dir/device_spec.cc.o.d"
  "/root/repo/src/hw/mme.cc" "src/hw/CMakeFiles/vespera_hw.dir/mme.cc.o" "gcc" "src/hw/CMakeFiles/vespera_hw.dir/mme.cc.o.d"
  "/root/repo/src/hw/power.cc" "src/hw/CMakeFiles/vespera_hw.dir/power.cc.o" "gcc" "src/hw/CMakeFiles/vespera_hw.dir/power.cc.o.d"
  "/root/repo/src/hw/tensor_core.cc" "src/hw/CMakeFiles/vespera_hw.dir/tensor_core.cc.o" "gcc" "src/hw/CMakeFiles/vespera_hw.dir/tensor_core.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vespera_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
