file(REMOVE_RECURSE
  "libvespera_common.a"
)
