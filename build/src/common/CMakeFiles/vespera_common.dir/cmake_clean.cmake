file(REMOVE_RECURSE
  "CMakeFiles/vespera_common.dir/logging.cc.o"
  "CMakeFiles/vespera_common.dir/logging.cc.o.d"
  "CMakeFiles/vespera_common.dir/stats.cc.o"
  "CMakeFiles/vespera_common.dir/stats.cc.o.d"
  "CMakeFiles/vespera_common.dir/table.cc.o"
  "CMakeFiles/vespera_common.dir/table.cc.o.d"
  "libvespera_common.a"
  "libvespera_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vespera_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
