# Empty dependencies file for vespera_common.
# This may be replaced when dependencies are built.
