file(REMOVE_RECURSE
  "libvespera_models.a"
)
