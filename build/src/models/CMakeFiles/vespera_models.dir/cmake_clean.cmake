file(REMOVE_RECURSE
  "CMakeFiles/vespera_models.dir/dlrm.cc.o"
  "CMakeFiles/vespera_models.dir/dlrm.cc.o.d"
  "CMakeFiles/vespera_models.dir/llama.cc.o"
  "CMakeFiles/vespera_models.dir/llama.cc.o.d"
  "libvespera_models.a"
  "libvespera_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vespera_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
