# Empty dependencies file for vespera_models.
# This may be replaced when dependencies are built.
