# Empty dependencies file for bench_fig12_llm_serving.
# This may be replaced when dependencies are built.
