# Empty compiler generated dependencies file for bench_ablation_kvcache.
# This may be replaced when dependencies are built.
