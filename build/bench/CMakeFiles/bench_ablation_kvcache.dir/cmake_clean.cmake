file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_kvcache.dir/bench_ablation_kvcache.cc.o"
  "CMakeFiles/bench_ablation_kvcache.dir/bench_ablation_kvcache.cc.o.d"
  "bench_ablation_kvcache"
  "bench_ablation_kvcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_kvcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
