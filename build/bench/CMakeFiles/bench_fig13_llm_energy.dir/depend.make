# Empty dependencies file for bench_fig13_llm_energy.
# This may be replaced when dependencies are built.
