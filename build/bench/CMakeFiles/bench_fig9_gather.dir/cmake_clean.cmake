file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_gather.dir/bench_fig9_gather.cc.o"
  "CMakeFiles/bench_fig9_gather.dir/bench_fig9_gather.cc.o.d"
  "bench_fig9_gather"
  "bench_fig9_gather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_gather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
