# Empty compiler generated dependencies file for bench_ext_gaudi3.
# This may be replaced when dependencies are built.
