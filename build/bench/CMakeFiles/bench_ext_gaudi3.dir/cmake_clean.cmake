file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_gaudi3.dir/bench_ext_gaudi3.cc.o"
  "CMakeFiles/bench_ext_gaudi3.dir/bench_ext_gaudi3.cc.o.d"
  "bench_ext_gaudi3"
  "bench_ext_gaudi3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_gaudi3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
