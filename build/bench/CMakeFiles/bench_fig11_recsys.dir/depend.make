# Empty dependencies file for bench_fig11_recsys.
# This may be replaced when dependencies are built.
