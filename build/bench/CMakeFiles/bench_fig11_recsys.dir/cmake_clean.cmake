file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_recsys.dir/bench_fig11_recsys.cc.o"
  "CMakeFiles/bench_fig11_recsys.dir/bench_fig11_recsys.cc.o.d"
  "bench_fig11_recsys"
  "bench_fig11_recsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_recsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
