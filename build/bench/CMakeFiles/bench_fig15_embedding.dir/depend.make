# Empty dependencies file for bench_fig15_embedding.
# This may be replaced when dependencies are built.
