file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_embedding.dir/bench_fig15_embedding.cc.o"
  "CMakeFiles/bench_fig15_embedding.dir/bench_fig15_embedding.cc.o.d"
  "bench_fig15_embedding"
  "bench_fig15_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
