file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multidevice_recsys.dir/bench_ext_multidevice_recsys.cc.o"
  "CMakeFiles/bench_ext_multidevice_recsys.dir/bench_ext_multidevice_recsys.cc.o.d"
  "bench_ext_multidevice_recsys"
  "bench_ext_multidevice_recsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multidevice_recsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
