# Empty compiler generated dependencies file for bench_ext_multidevice_recsys.
# This may be replaced when dependencies are built.
