file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_mme_config.dir/bench_fig7_mme_config.cc.o"
  "CMakeFiles/bench_fig7_mme_config.dir/bench_fig7_mme_config.cc.o.d"
  "bench_fig7_mme_config"
  "bench_fig7_mme_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_mme_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
