
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_mme_config.cc" "bench/CMakeFiles/bench_fig7_mme_config.dir/bench_fig7_mme_config.cc.o" "gcc" "bench/CMakeFiles/bench_fig7_mme_config.dir/bench_fig7_mme_config.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/serve/CMakeFiles/vespera_serve.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/vespera_models.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/vespera_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/coll/CMakeFiles/vespera_coll.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vespera_net.dir/DependInfo.cmake"
  "/root/repo/build/src/kern/CMakeFiles/vespera_kern.dir/DependInfo.cmake"
  "/root/repo/build/src/tpc/CMakeFiles/vespera_tpc.dir/DependInfo.cmake"
  "/root/repo/build/src/cuda/CMakeFiles/vespera_cuda.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vespera_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/vespera_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vespera_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
