# Empty dependencies file for bench_fig7_mme_config.
# This may be replaced when dependencies are built.
