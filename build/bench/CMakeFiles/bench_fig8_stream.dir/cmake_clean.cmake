file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_stream.dir/bench_fig8_stream.cc.o"
  "CMakeFiles/bench_fig8_stream.dir/bench_fig8_stream.cc.o.d"
  "bench_fig8_stream"
  "bench_fig8_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
