file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_collectives.dir/bench_fig10_collectives.cc.o"
  "CMakeFiles/bench_fig10_collectives.dir/bench_fig10_collectives.cc.o.d"
  "bench_fig10_collectives"
  "bench_fig10_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
