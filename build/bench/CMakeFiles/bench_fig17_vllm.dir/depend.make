# Empty dependencies file for bench_fig17_vllm.
# This may be replaced when dependencies are built.
