file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_vllm.dir/bench_fig17_vllm.cc.o"
  "CMakeFiles/bench_fig17_vllm.dir/bench_fig17_vllm.cc.o.d"
  "bench_fig17_vllm"
  "bench_fig17_vllm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_vllm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
