file(REMOVE_RECURSE
  "CMakeFiles/custom_tpc_kernel.dir/custom_tpc_kernel.cpp.o"
  "CMakeFiles/custom_tpc_kernel.dir/custom_tpc_kernel.cpp.o.d"
  "custom_tpc_kernel"
  "custom_tpc_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_tpc_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
