# Empty dependencies file for custom_tpc_kernel.
# This may be replaced when dependencies are built.
