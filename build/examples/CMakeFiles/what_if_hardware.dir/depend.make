# Empty dependencies file for what_if_hardware.
# This may be replaced when dependencies are built.
