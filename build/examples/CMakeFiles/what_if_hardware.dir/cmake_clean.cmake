file(REMOVE_RECURSE
  "CMakeFiles/what_if_hardware.dir/what_if_hardware.cpp.o"
  "CMakeFiles/what_if_hardware.dir/what_if_hardware.cpp.o.d"
  "what_if_hardware"
  "what_if_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/what_if_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
