# Empty compiler generated dependencies file for recsys_serving.
# This may be replaced when dependencies are built.
