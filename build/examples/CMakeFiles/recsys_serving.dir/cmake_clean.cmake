file(REMOVE_RECURSE
  "CMakeFiles/recsys_serving.dir/recsys_serving.cpp.o"
  "CMakeFiles/recsys_serving.dir/recsys_serving.cpp.o.d"
  "recsys_serving"
  "recsys_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recsys_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
