file(REMOVE_RECURSE
  "CMakeFiles/llm_serving.dir/llm_serving.cpp.o"
  "CMakeFiles/llm_serving.dir/llm_serving.cpp.o.d"
  "llm_serving"
  "llm_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llm_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
