file(REMOVE_RECURSE
  "CMakeFiles/profile_step.dir/profile_step.cpp.o"
  "CMakeFiles/profile_step.dir/profile_step.cpp.o.d"
  "profile_step"
  "profile_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
