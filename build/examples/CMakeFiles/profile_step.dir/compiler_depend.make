# Empty compiler generated dependencies file for profile_step.
# This may be replaced when dependencies are built.
