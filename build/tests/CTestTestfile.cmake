# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_hw[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_tpc[1]_include.cmake")
include("/root/repo/build/tests/test_cuda[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_kern[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_serve[1]_include.cmake")
