file(REMOVE_RECURSE
  "CMakeFiles/test_property.dir/property/prop_collective.cc.o"
  "CMakeFiles/test_property.dir/property/prop_collective.cc.o.d"
  "CMakeFiles/test_property.dir/property/prop_fuzz.cc.o"
  "CMakeFiles/test_property.dir/property/prop_fuzz.cc.o.d"
  "CMakeFiles/test_property.dir/property/prop_gemm.cc.o"
  "CMakeFiles/test_property.dir/property/prop_gemm.cc.o.d"
  "CMakeFiles/test_property.dir/property/prop_hbm.cc.o"
  "CMakeFiles/test_property.dir/property/prop_hbm.cc.o.d"
  "CMakeFiles/test_property.dir/property/prop_models.cc.o"
  "CMakeFiles/test_property.dir/property/prop_models.cc.o.d"
  "CMakeFiles/test_property.dir/property/prop_pipeline.cc.o"
  "CMakeFiles/test_property.dir/property/prop_pipeline.cc.o.d"
  "CMakeFiles/test_property.dir/property/prop_serving.cc.o"
  "CMakeFiles/test_property.dir/property/prop_serving.cc.o.d"
  "test_property"
  "test_property.pdb"
  "test_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
