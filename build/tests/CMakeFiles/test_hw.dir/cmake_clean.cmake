file(REMOVE_RECURSE
  "CMakeFiles/test_hw.dir/hw/test_device_spec.cc.o"
  "CMakeFiles/test_hw.dir/hw/test_device_spec.cc.o.d"
  "CMakeFiles/test_hw.dir/hw/test_extensions.cc.o"
  "CMakeFiles/test_hw.dir/hw/test_extensions.cc.o.d"
  "CMakeFiles/test_hw.dir/hw/test_mme.cc.o"
  "CMakeFiles/test_hw.dir/hw/test_mme.cc.o.d"
  "CMakeFiles/test_hw.dir/hw/test_power.cc.o"
  "CMakeFiles/test_hw.dir/hw/test_power.cc.o.d"
  "CMakeFiles/test_hw.dir/hw/test_tensor_core.cc.o"
  "CMakeFiles/test_hw.dir/hw/test_tensor_core.cc.o.d"
  "test_hw"
  "test_hw.pdb"
  "test_hw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
