file(REMOVE_RECURSE
  "CMakeFiles/test_serve.dir/serve/test_engine.cc.o"
  "CMakeFiles/test_serve.dir/serve/test_engine.cc.o.d"
  "CMakeFiles/test_serve.dir/serve/test_kv_cache.cc.o"
  "CMakeFiles/test_serve.dir/serve/test_kv_cache.cc.o.d"
  "CMakeFiles/test_serve.dir/serve/test_trace.cc.o"
  "CMakeFiles/test_serve.dir/serve/test_trace.cc.o.d"
  "CMakeFiles/test_serve.dir/serve/test_tracing.cc.o"
  "CMakeFiles/test_serve.dir/serve/test_tracing.cc.o.d"
  "test_serve"
  "test_serve.pdb"
  "test_serve[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
