# Empty dependencies file for test_tpc.
# This may be replaced when dependencies are built.
