file(REMOVE_RECURSE
  "CMakeFiles/test_tpc.dir/tpc/test_context.cc.o"
  "CMakeFiles/test_tpc.dir/tpc/test_context.cc.o.d"
  "CMakeFiles/test_tpc.dir/tpc/test_dispatcher.cc.o"
  "CMakeFiles/test_tpc.dir/tpc/test_dispatcher.cc.o.d"
  "CMakeFiles/test_tpc.dir/tpc/test_pipeline.cc.o"
  "CMakeFiles/test_tpc.dir/tpc/test_pipeline.cc.o.d"
  "CMakeFiles/test_tpc.dir/tpc/test_tensor.cc.o"
  "CMakeFiles/test_tpc.dir/tpc/test_tensor.cc.o.d"
  "test_tpc"
  "test_tpc.pdb"
  "test_tpc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
