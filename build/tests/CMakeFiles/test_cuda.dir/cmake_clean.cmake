file(REMOVE_RECURSE
  "CMakeFiles/test_cuda.dir/cuda/test_simt.cc.o"
  "CMakeFiles/test_cuda.dir/cuda/test_simt.cc.o.d"
  "test_cuda"
  "test_cuda.pdb"
  "test_cuda[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cuda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
