file(REMOVE_RECURSE
  "CMakeFiles/test_kern.dir/kern/test_embedding.cc.o"
  "CMakeFiles/test_kern.dir/kern/test_embedding.cc.o.d"
  "CMakeFiles/test_kern.dir/kern/test_gather_scatter.cc.o"
  "CMakeFiles/test_kern.dir/kern/test_gather_scatter.cc.o.d"
  "CMakeFiles/test_kern.dir/kern/test_gemm_vector_op.cc.o"
  "CMakeFiles/test_kern.dir/kern/test_gemm_vector_op.cc.o.d"
  "CMakeFiles/test_kern.dir/kern/test_layernorm.cc.o"
  "CMakeFiles/test_kern.dir/kern/test_layernorm.cc.o.d"
  "CMakeFiles/test_kern.dir/kern/test_paged_attention.cc.o"
  "CMakeFiles/test_kern.dir/kern/test_paged_attention.cc.o.d"
  "CMakeFiles/test_kern.dir/kern/test_softmax.cc.o"
  "CMakeFiles/test_kern.dir/kern/test_softmax.cc.o.d"
  "CMakeFiles/test_kern.dir/kern/test_stream.cc.o"
  "CMakeFiles/test_kern.dir/kern/test_stream.cc.o.d"
  "test_kern"
  "test_kern.pdb"
  "test_kern[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
