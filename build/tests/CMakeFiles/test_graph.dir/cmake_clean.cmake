file(REMOVE_RECURSE
  "CMakeFiles/test_graph.dir/graph/test_compiler.cc.o"
  "CMakeFiles/test_graph.dir/graph/test_compiler.cc.o.d"
  "CMakeFiles/test_graph.dir/graph/test_executor.cc.o"
  "CMakeFiles/test_graph.dir/graph/test_executor.cc.o.d"
  "CMakeFiles/test_graph.dir/graph/test_graph.cc.o"
  "CMakeFiles/test_graph.dir/graph/test_graph.cc.o.d"
  "CMakeFiles/test_graph.dir/graph/test_timeline.cc.o"
  "CMakeFiles/test_graph.dir/graph/test_timeline.cc.o.d"
  "CMakeFiles/test_graph.dir/graph/test_validate.cc.o"
  "CMakeFiles/test_graph.dir/graph/test_validate.cc.o.d"
  "test_graph"
  "test_graph.pdb"
  "test_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
