#include "mem/arena.h"

#include <cstdlib>

#include "obs/selfprof.h"

#ifdef VESPERA_ASAN
#include <sanitizer/asan_interface.h>
#define VESPERA_POISON(p, n) ASAN_POISON_MEMORY_REGION(p, n)
#define VESPERA_UNPOISON(p, n) ASAN_UNPOISON_MEMORY_REGION(p, n)
#else
#define VESPERA_POISON(p, n) ((void)0)
#define VESPERA_UNPOISON(p, n) ((void)0)
#endif

namespace vespera::mem {

namespace {

std::size_t
alignUp(std::size_t v, std::size_t align)
{
    return (v + align - 1) & ~(align - 1);
}

thread_local Arena *tlCurrent = nullptr;

} // namespace

Arena::Arena(std::size_t chunkBytes, bool reportAllocs)
    : chunkBytes_(chunkBytes), reportAllocs_(reportAllocs)
{
    vassert(chunkBytes_ > 0, "arena chunk size must be positive");
}

Arena::~Arena()
{
    for (Chunk &c : chunks_) {
        VESPERA_UNPOISON(c.base, c.size);
        std::free(c.base);
    }
}

Arena::Chunk &
Arena::ensureChunk(std::size_t atLeast)
{
    // Advance into an already-reserved chunk that fits, else malloc a
    // new one (oversized requests get a dedicated chunk).
    while (cursorChunk_ < chunks_.size()) {
        if (cursorOffset_ == 0 && chunks_[cursorChunk_].size >= atLeast)
            return chunks_[cursorChunk_];
        cursorChunk_++;
        cursorOffset_ = 0;
    }
    const std::size_t size = atLeast > chunkBytes_ ? atLeast : chunkBytes_;
    Chunk c;
    c.base = static_cast<unsigned char *>(std::malloc(size));
    vassert(c.base != nullptr, "arena chunk allocation of %zu bytes failed",
            size);
    c.size = size;
    VESPERA_POISON(c.base, c.size);
    chunks_.push_back(c);
    cursorChunk_ = chunks_.size() - 1;
    cursorOffset_ = 0;
    reserved_ += size;
    chunkAllocs_++;
    // The only heap traffic the arena ever does — report it through
    // the same hook that exposed the per-step churn it replaces.
    if (reportAllocs_ && obs::SelfProf::instance().enabled())
        obs::SelfProf::instance().recordAlloc(size);
    return chunks_.back();
}

void *
Arena::allocate(std::size_t bytes, std::size_t align)
{
    vassert(align != 0 && (align & (align - 1)) == 0,
            "arena alignment %zu is not a power of two", align);
    if (bytes == 0)
        bytes = 1;
    allocCalls_++;
    if (cursorChunk_ < chunks_.size()) {
        Chunk &c = chunks_[cursorChunk_];
        const auto base = reinterpret_cast<std::uintptr_t>(c.base);
        const std::size_t at = alignUp(base + cursorOffset_, align) - base;
        if (at + bytes <= c.size) {
            cursorOffset_ = at + bytes;
            void *p = c.base + at;
            VESPERA_UNPOISON(p, bytes);
            inUse_ = cursorTotal();
            if (inUse_ > highWater_)
                highWater_ = inUse_;
            return p;
        }
        // Doesn't fit: move past this chunk.
        cursorChunk_++;
        cursorOffset_ = 0;
    }
    Chunk &c = ensureChunk(bytes + align);
    const auto base = reinterpret_cast<std::uintptr_t>(c.base);
    const std::size_t at = alignUp(base + cursorOffset_, align) - base;
    vassert(at + bytes <= c.size, "arena chunk sizing bug");
    cursorOffset_ = at + bytes;
    void *p = c.base + at;
    VESPERA_UNPOISON(p, bytes);
    inUse_ = cursorTotal();
    if (inUse_ > highWater_)
        highWater_ = inUse_;
    return p;
}

void
Arena::release(Mark m)
{
    vassert(m.chunk < chunks_.size() || (m.chunk == 0 && m.offset == 0),
            "arena release mark out of range");
    vassert(m.chunk < cursorChunk_ ||
                (m.chunk == cursorChunk_ && m.offset <= cursorOffset_) ||
                (m.chunk == 0 && m.offset == 0),
            "arena release mark is ahead of the cursor");
    // Poison everything above the mark so stale reads trap under ASan.
    for (std::size_t i = m.chunk; i < chunks_.size(); i++) {
        Chunk &c = chunks_[i];
        const std::size_t from = (i == m.chunk) ? m.offset : 0;
        if (from < c.size)
            VESPERA_POISON(c.base + from, c.size - from);
    }
    cursorChunk_ = m.chunk;
    cursorOffset_ = m.offset;
    inUse_ = cursorTotal();
    epoch_++;
}

std::size_t
Arena::cursorTotal() const
{
    std::size_t total = 0;
    for (std::size_t i = 0; i < cursorChunk_ && i < chunks_.size(); i++)
        total += chunks_[i].size;
    return total + cursorOffset_;
}

Arena *
Arena::current()
{
    return tlCurrent;
}

Arena *
Arena::bind(Arena *arena)
{
    Arena *prev = tlCurrent;
    tlCurrent = arena;
    return prev;
}

Arena &
Arena::scratch()
{
    thread_local Arena arena(Arena::kDefaultChunkBytes,
                             /*reportAllocs=*/false);
    return arena;
}

} // namespace vespera::mem
