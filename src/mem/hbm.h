/**
 * @file
 * HBM2E memory-system model.
 *
 * Captures the three first-order effects the paper's memory analysis
 * rests on (Section 3.3):
 *   1. peak bandwidth (2.46 TB/s Gaudi-2 vs 2.0 TB/s A100),
 *   2. minimum access granularity (256 B Gaudi vs 32 B A100 sectors) —
 *      requests smaller than the granularity still move a full-granule
 *      transaction, wasting bandwidth, and
 *   3. memory-level parallelism — random-access bandwidth ramps with the
 *      number of independent in-flight requests the kernel sustains.
 */

#ifndef VESPERA_MEM_HBM_H
#define VESPERA_MEM_HBM_H

#include <cstdint>

#include "hw/device_spec.h"

namespace vespera::mem {

/** A batch of same-sized random accesses (vector gather or scatter). */
struct RandomAccessWorkload
{
    /// Useful bytes per access (the vector size).
    Bytes accessSize = 0;
    /// Number of accesses performed.
    std::uint64_t numAccesses = 0;
    /// Independent in-flight requests the issuing kernel sustains
    /// (e.g., TPCs x unroll factor, or SMs x warps).
    double concurrency = 1;
    /// Scatter (write) instead of gather (read).
    bool write = false;
};

/** Outcome of a random-access batch. */
struct RandomAccessResult
{
    Seconds time = 0;
    Bytes usefulBytes = 0;       ///< accessSize x numAccesses.
    Bytes transactionBytes = 0;  ///< Bytes actually moved on the bus.
    double bandwidthUtilization = 0; ///< usefulBytes / (time x peak BW).
};

/** Per-device HBM model. */
class HbmModel
{
  public:
    explicit HbmModel(const hw::DeviceSpec &spec);

    /** Time to stream `bytes` sequentially at full parallelism. */
    Seconds streamTime(Bytes bytes) const;

    /** Sustained sequential bandwidth (peak x stream efficiency). */
    BytesPerSec streamBandwidth() const;

    /** Peak (theoretical) bandwidth. */
    BytesPerSec peakBandwidth() const { return spec_.hbmBandwidth; }

    /** Bytes moved on the bus for one access of `accessSize` bytes. */
    Bytes transactionBytes(Bytes accessSize) const;

    /** accessSize / transactionBytes: wasted-bandwidth factor. */
    double granularityEfficiency(Bytes accessSize) const;

    /** Saturating MLP curve: concurrency / (concurrency + half point). */
    double parallelismEfficiency(double concurrency) const;

    /** Cost a batch of random accesses. */
    RandomAccessResult randomAccess(const RandomAccessWorkload &w) const;

    /**
     * Time to move pre-aggregated random traffic: `busBytes` of
     * granule-rounded payload across `transactions` scattered requests,
     * with `concurrency` requests in flight. Used by kernel dispatchers
     * that already know their bus footprint.
     */
    Seconds randomTrafficTime(Bytes bus_bytes, std::uint64_t transactions,
                              double concurrency) const;

    Bytes minGranularity() const { return spec_.minAccessGranularity; }

    const hw::DeviceSpec &spec() const { return spec_; }

  private:
    const hw::DeviceSpec &spec_;

    /// In-flight requests at which random bandwidth reaches half of its
    /// asymptote (per device; A100's deeper MLP support ramps faster).
    double concurrencyHalfPoint_;
    /// Fixed ramp before random-access bandwidth reaches steady state.
    static constexpr Seconds rampLatency_ = 2e-6;
};

} // namespace vespera::mem

#endif // VESPERA_MEM_HBM_H
