#include "mem/hbm.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "obs/attrib.h"
#include "obs/counters.h"

namespace vespera::mem {

namespace {

/**
 * DRAM-side cost, in bus-equivalent bytes, of serving one scattered
 * transaction (row activation, command overhead). Larger transactions
 * amortize it; this is what makes 32 B-sectored A100 fetches efficient
 * at small sizes while Gaudi's 256 B-granule requests still pay full
 * freight below 256 B.
 */
double
dramOverheadBytes(DeviceKind kind)
{
    switch (kind) {
      case DeviceKind::Gaudi2:
        return 220.0;
      case DeviceKind::A100:
        return 64.0;
    }
    return 0.0;
}

} // namespace

HbmModel::HbmModel(const hw::DeviceSpec &spec)
    : spec_(spec)
{
    switch (spec.kind) {
      case DeviceKind::Gaudi2:
        concurrencyHalfPoint_ = 20.0;
        break;
      case DeviceKind::A100:
        concurrencyHalfPoint_ = 60.0;
        break;
    }
}

BytesPerSec
HbmModel::streamBandwidth() const
{
    return spec_.hbmBandwidth * spec_.streamEfficiency;
}

Seconds
HbmModel::streamTime(Bytes bytes) const
{
    const Seconds t = static_cast<double>(bytes) / streamBandwidth();

    auto &registry = obs::CounterRegistry::instance();
    static obs::Counter &streamed = registry.counter("hbm.stream_bytes");
    static obs::RateMeter &rate = registry.rate("hbm.stream_bytes_per_sec");
    streamed.add(static_cast<double>(bytes));
    rate.add(static_cast<double>(bytes), t);

    if (t > 0) {
        // Sequential streaming is pure bandwidth time.
        static const int attribScope =
            obs::AttributionLedger::instance().scope("hbm");
        obs::AttribBreakdown b;
        b.settle(obs::AttribCat::MemoryBw, t);
        obs::AttributionLedger::instance().charge(
            attribScope,
            strfmt("stream %lld B", static_cast<long long>(bytes)), b);
    }
    return t;
}

Bytes
HbmModel::transactionBytes(Bytes access_size) const
{
    vassert(access_size > 0, "zero-size access");
    const Bytes g = spec_.minAccessGranularity;
    return (access_size + g - 1) / g * g;
}

double
HbmModel::granularityEfficiency(Bytes access_size) const
{
    return static_cast<double>(access_size) / transactionBytes(access_size);
}

double
HbmModel::parallelismEfficiency(double concurrency) const
{
    vassert(concurrency > 0, "non-positive concurrency");
    return concurrency / (concurrency + concurrencyHalfPoint_);
}

Seconds
HbmModel::randomTrafficTime(Bytes bus_bytes, std::uint64_t transactions,
                            double concurrency) const
{
    if (bus_bytes == 0 || transactions == 0)
        return 0;
    const double overhead = dramOverheadBytes(spec_.kind);
    const double effective_bytes =
        static_cast<double>(bus_bytes) + transactions * overhead;
    const double bw = spec_.hbmBandwidth * spec_.randomEfficiency *
                      parallelismEfficiency(std::max(concurrency, 1.0));
    return effective_bytes / bw;
}

RandomAccessResult
HbmModel::randomAccess(const RandomAccessWorkload &w) const
{
    vassert(w.accessSize > 0 && w.numAccesses > 0,
            "empty random-access workload");

    const Bytes txn = transactionBytes(w.accessSize);
    const double overhead = dramOverheadBytes(spec_.kind);
    // Effective bus bytes per transaction: payload plus activation cost.
    const double bus_bytes_per_txn = static_cast<double>(txn) + overhead;
    const double random_bw = spec_.hbmBandwidth * spec_.randomEfficiency *
                             parallelismEfficiency(w.concurrency);
    // Writes (scatter) pay a modest read-modify-write penalty when the
    // payload is below the granule.
    const double write_penalty =
        (w.write && w.accessSize < spec_.minAccessGranularity) ? 1.25 : 1.0;

    const double steady =
        w.numAccesses * bus_bytes_per_txn * write_penalty / random_bw;

    RandomAccessResult r;
    r.time = rampLatency_ + steady;
    r.usefulBytes = w.accessSize * w.numAccesses;
    r.transactionBytes = txn * w.numAccesses;
    r.bandwidthUtilization = static_cast<double>(r.usefulBytes) /
                             (r.time * spec_.hbmBandwidth);

    auto &registry = obs::CounterRegistry::instance();
    static obs::Counter &useful = registry.counter("hbm.random_bytes");
    static obs::Counter &bus = registry.counter("hbm.random_bus_bytes");
    static obs::Counter &txns = registry.counter("hbm.random_txns");
    static obs::RateMeter &rate = registry.rate("hbm.random_bytes_per_sec");
    useful.add(static_cast<double>(r.usefulBytes));
    bus.add(static_cast<double>(r.transactionBytes));
    txns.add(static_cast<double>(w.numAccesses));
    rate.add(static_cast<double>(r.usefulBytes), r.time);

    // The access ramp is unhidden fixed latency; the steady-state
    // drain beyond it is bandwidth time (settled residual).
    static const int attribScope =
        obs::AttributionLedger::instance().scope("hbm");
    obs::AttribBreakdown b;
    b[obs::AttribCat::ExposedLat] = rampLatency_;
    b.settle(obs::AttribCat::MemoryBw, r.time);
    obs::AttributionLedger::instance().charge(
        attribScope,
        strfmt("%s %lld B x%llu", w.write ? "scatter" : "gather",
               static_cast<long long>(w.accessSize),
               static_cast<unsigned long long>(w.numAccesses)),
        b);
    return r;
}

} // namespace vespera::mem
