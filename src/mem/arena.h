/**
 * @file
 * Bump-pointer arena for the per-step hot containers.
 *
 * The serving hot path rebuilds the same transient structures every
 * step — `tpc::Program` instruction traces and `graph::Graph` node
 * vectors — then throws them away. Under the default allocator that
 * is a malloc/free pair per container growth per step, visible in the
 * self-profile's allocation columns (PR 6). The Arena replaces that
 * churn with chunked bump allocation: a step borrows memory with
 * ScopedArena, containers grow by pointer bumps, and the whole step's
 * memory is reclaimed in O(chunks) at scope exit. Steady state does
 * zero heap traffic — chunks are retained and reused.
 *
 * Contracts:
 *
 *  - **Scope discipline.** ScopedArena records a Mark on entry and
 *    releases back to it on exit, so scopes nest (an inner scope on
 *    the same arena frees only its own suffix). Anything allocated
 *    from the arena must not outlive the enclosing ScopedArena.
 *  - **Containers choose their backing at construction.**
 *    ArenaAllocator<T> captures Arena::current() (a thread-local
 *    binding) when default-constructed: containers created inside a
 *    scope are arena-backed, containers created outside fall back to
 *    the heap and behave exactly like std::allocator. Copies likewise
 *    bind to the arena current *where the copy is made*
 *    (select_on_container_copy_construction), so copying a trace out
 *    of a scope into long-lived storage — e.g. the kernel trace
 *    registry's observer — yields heap memory, never a dangling
 *    arena reference. The TPC dispatcher additionally skips the arena
 *    entirely while a trace observer is registered.
 *  - **Use-after-reset is detectable.** Every release()/reset() bumps
 *    the arena epoch and (under ASan) poisons the reclaimed region.
 *    Handle<T> pins the epoch at allocation time and vasserts it on
 *    access, so a stale handle dies loudly in any build
 *    (tests/mem/test_arena.cc); a raw stale pointer dies under ASan.
 *    Epoch checking is conservative: release() invalidates *all*
 *    handles on the arena, including ones below the mark.
 *  - **Growth is observable.** Chunk allocations (the only heap
 *    traffic) report through obs::SelfProf::recordAlloc, attributed
 *    to the innermost active SelfTimer — the same PR 6 hook that
 *    exposed the churn this arena removes. obs::selfRecordGrowth
 *    skips arena-backed containers so the alloc columns count real
 *    heap bytes, not recycled bumps.
 *
 * Thread model: an Arena is single-threaded (no internal locking);
 * the current() binding and scratch() arena are thread-local, so pool
 * workers never share one. allocate() outside any chunk capacity is
 * the only path that touches malloc.
 */

#ifndef VESPERA_MEM_ARENA_H
#define VESPERA_MEM_ARENA_H

#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

#include "common/logging.h"

#if defined(__SANITIZE_ADDRESS__)
#define VESPERA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define VESPERA_ASAN 1
#endif
#endif

namespace vespera::mem {

/** Chunked bump allocator with mark/release and epoch validation. */
class Arena
{
  public:
    /// Default chunk: big enough that a full decode-step graph plus a
    /// per-TPC instruction trace fit in one chunk.
    static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

    /**
     * @param reportAllocs Report chunk mallocs through
     *   obs::SelfProf::recordAlloc. The per-thread scratch() arenas
     *   pass false: their chunks are one-time per-worker warmup, so
     *   reporting them would make the self-profile's alloc columns
     *   vary with --threads and break the count-invariance contract
     *   (tests/obs/test_selfprof.cc).
     */
    explicit Arena(std::size_t chunkBytes = kDefaultChunkBytes,
                   bool reportAllocs = true);
    ~Arena();

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Bump-allocate `bytes` aligned to `align` (a power of two). */
    void *allocate(std::size_t bytes, std::size_t align);

    /** Position snapshot for release(); cheap value type. */
    struct Mark
    {
        std::size_t chunk = 0;
        std::size_t offset = 0;
    };

    Mark mark() const { return Mark{cursorChunk_, cursorOffset_}; }

    /**
     * Pop back to `m`: memory allocated after the mark is reclaimed
     * (chunks are retained for reuse). Bumps the epoch — all
     * Handles on this arena become stale — and poisons the
     * reclaimed region under ASan.
     */
    void release(Mark m);

    /** release() to empty. Chunks are kept; epoch bumps. */
    void reset() { release(Mark{}); }

    /** Generation counter: incremented by every release()/reset(). */
    std::uint64_t epoch() const { return epoch_; }

    /// @name Accounting (used by tests and the self-profile).
    /// @{
    /** Live bytes currently handed out (aligned). */
    std::size_t bytesInUse() const { return inUse_; }
    /** Heap bytes backing the arena (sum of chunk sizes). */
    std::size_t bytesReserved() const { return reserved_; }
    /** Chunks ever malloc'd — steady state stops growing. */
    std::uint64_t chunkAllocs() const { return chunkAllocs_; }
    /** allocate() calls served. */
    std::uint64_t allocCalls() const { return allocCalls_; }
    /** High-water of bytesInUse(). */
    std::size_t highWater() const { return highWater_; }
    /// @}

    /** Epoch-checked pointer: access after release()/reset() dies. */
    template <typename T>
    class Handle
    {
      public:
        Handle() = default;
        Handle(Arena *arena, T *ptr, std::uint64_t epoch)
            : arena_(arena), ptr_(ptr), epoch_(epoch)
        {
        }

        bool valid() const
        {
            return arena_ != nullptr && epoch_ == arena_->epoch();
        }

        T &get() const
        {
            vassert(arena_ != nullptr, "empty arena handle");
            vassert(epoch_ == arena_->epoch(),
                    "arena handle outlived its epoch (use-after-reset: "
                    "handle epoch %llu, arena epoch %llu)",
                    static_cast<unsigned long long>(epoch_),
                    static_cast<unsigned long long>(arena_->epoch()));
            return *ptr_;
        }

        T &operator*() const { return get(); }
        T *operator->() const { return &get(); }

      private:
        Arena *arena_ = nullptr;
        T *ptr_ = nullptr;
        std::uint64_t epoch_ = 0;
    };

    /**
     * Construct a T in the arena and return an epoch-checked handle.
     * The object is NOT destroyed by release(); use only for
     * trivially-destructible or scope-managed payloads.
     */
    template <typename T, typename... Args>
    Handle<T> make(Args &&...args);

    /// @name Thread-local binding (what ArenaAllocator captures).
    /// @{
    /** Arena bound to this thread, or nullptr. */
    static Arena *current();
    /** Rebind; returns the previous binding (restore on unwind). */
    static Arena *bind(Arena *arena);
    /** This thread's lazily-created step-scratch arena. */
    static Arena &scratch();
    /// @}

  private:
    struct Chunk
    {
        unsigned char *base = nullptr;
        std::size_t size = 0;
    };

    Chunk &ensureChunk(std::size_t atLeast);
    /** Bytes between the arena start and the cursor (live bytes). */
    std::size_t cursorTotal() const;

    std::size_t chunkBytes_;
    bool reportAllocs_ = true;
    std::vector<Chunk> chunks_;
    std::size_t cursorChunk_ = 0;  ///< Chunk the cursor is in.
    std::size_t cursorOffset_ = 0; ///< Offset within that chunk.
    std::uint64_t epoch_ = 0;
    std::size_t inUse_ = 0;
    std::size_t reserved_ = 0;
    std::size_t highWater_ = 0;
    std::uint64_t chunkAllocs_ = 0;
    std::uint64_t allocCalls_ = 0;
};

template <typename T, typename... Args>
Arena::Handle<T>
Arena::make(Args &&...args)
{
    void *p = allocate(sizeof(T), alignof(T));
    T *obj = ::new (p) T(std::forward<Args>(args)...);
    return Handle<T>(this, obj, epoch_);
}

/**
 * std-conforming allocator that bumps from the thread's current arena
 * (captured at construction) and falls back to the heap when no arena
 * is bound. deallocate() on the arena path is a no-op — memory comes
 * back wholesale at ScopedArena exit.
 */
template <typename T>
class ArenaAllocator
{
  public:
    using value_type = T;

    ArenaAllocator() noexcept : arena_(Arena::current()) {}
    explicit ArenaAllocator(Arena *arena) noexcept : arena_(arena) {}
    template <typename U>
    ArenaAllocator(const ArenaAllocator<U> &other) noexcept
        : arena_(other.arena())
    {
    }

    T *allocate(std::size_t n)
    {
        const std::size_t bytes = n * sizeof(T);
        if (arena_ != nullptr)
            return static_cast<T *>(arena_->allocate(bytes, alignof(T)));
        return static_cast<T *>(::operator new(bytes));
    }

    void deallocate(T *p, std::size_t) noexcept
    {
        if (arena_ == nullptr)
            ::operator delete(p);
        // Arena memory is reclaimed wholesale at release().
    }

    /**
     * Copies bind to the arena current *where the copy happens*:
     * copying a container out of a scope into long-lived storage
     * yields heap (or the outer scope's) memory, never a reference
     * into a region about to be released.
     */
    ArenaAllocator select_on_container_copy_construction() const
    {
        return ArenaAllocator();
    }

    Arena *arena() const noexcept { return arena_; }

    friend bool operator==(const ArenaAllocator &a,
                           const ArenaAllocator &b) noexcept
    {
        return a.arena_ == b.arena_;
    }
    friend bool operator!=(const ArenaAllocator &a,
                           const ArenaAllocator &b) noexcept
    {
        return !(a == b);
    }

  private:
    template <typename U>
    friend class ArenaAllocator;

    Arena *arena_;
};

/**
 * RAII scope: binds `arena` as the thread's current arena and releases
 * everything the scope allocated on exit. Nests — including on the
 * same arena, where the inner scope releases only its own suffix.
 * Declare the scope before the containers that allocate from it, so
 * the containers are destroyed while their memory is still live.
 */
class ScopedArena
{
  public:
    explicit ScopedArena(Arena &arena)
        : arena_(&arena), prev_(Arena::bind(&arena)), mark_(arena.mark())
    {
    }

    ~ScopedArena()
    {
        arena_->release(mark_);
        Arena::bind(prev_);
    }

    ScopedArena(const ScopedArena &) = delete;
    ScopedArena &operator=(const ScopedArena &) = delete;

  private:
    Arena *arena_;
    Arena *prev_;
    Arena::Mark mark_;
};

} // namespace vespera::mem

#endif // VESPERA_MEM_ARENA_H
