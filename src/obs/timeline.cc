#include "obs/timeline.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/capture.h"
#include "obs/profiler.h"

namespace vespera::obs {

// ---------------------------------------------------------------------------
// TimelineSeries

TimelineSeries::TimelineSeries(std::string name, std::size_t capacity)
    : name_(std::move(name)), capacity_(capacity)
{
    vassert(capacity_ >= 1, "timeline series '%s': capacity must be >= 1",
            name_.c_str());
    ring_.reserve(std::min<std::size_t>(capacity_, 64));
}

void TimelineSeries::append(Seconds t, double value)
{
    if (ring_.size() < capacity_) {
        ring_.push_back({t, value});
    } else {
        ring_[next_] = {t, value};
        next_ = (next_ + 1) % capacity_;
    }
    total_ += 1;
}

std::vector<TimelineSample> TimelineSeries::samples() const
{
    if (ring_.size() < capacity_)
        return ring_;
    // Full ring: next_ points at the oldest retained sample.
    std::vector<TimelineSample> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(next_ + i) % capacity_]);
    return out;
}

// ---------------------------------------------------------------------------
// TimelineRecorder

TimelineRecorder::TimelineRecorder(Seconds interval, std::size_t capacity,
                                   std::vector<SloSpec> slos)
    : interval_(interval), capacity_(capacity), slos_(std::move(slos))
{
    vassert(interval_ > 0, "timeline interval must be > 0 (got %g)",
            interval_);
    vassert(capacity_ >= 1, "timeline capacity must be >= 1");
}

int TimelineRecorder::gaugeId(const std::string &name)
{
    auto it = ids_.find(name);
    if (it != ids_.end())
        return it->second;
    const int id = static_cast<int>(gauges_.size());
    Gauge g{name, 0.0, Reset::Keep, TimelineSeries(name, capacity_),
            nullptr, SloResult{}};
    // Bind at most one SLO monitor per gauge (first spec wins).
    for (const SloSpec &s : slos_) {
        if (s.gauge == name) {
            g.slo = &s;
            g.result.gauge = name;
            g.result.bound = s.bound;
            break;
        }
    }
    gauges_.push_back(std::move(g));
    ids_.emplace(name, id);
    return id;
}

void TimelineRecorder::set(int id, double v)
{
    Gauge &g = gauges_[static_cast<std::size_t>(id)];
    g.value = v;
    g.reset = Reset::Keep;
}

void TimelineRecorder::add(int id, double delta)
{
    Gauge &g = gauges_[static_cast<std::size_t>(id)];
    g.value += delta;
    g.reset = Reset::Zero;
}

void TimelineRecorder::max(int id, double v)
{
    Gauge &g = gauges_[static_cast<std::size_t>(id)];
    g.value = std::max(g.value, v);
    g.reset = Reset::Zero;
}

void TimelineRecorder::emitAll(Seconds t)
{
    for (Gauge &g : gauges_) {
        g.series.append(t, g.value);
        if (g.slo && !g.result.violated && g.value > g.slo->bound) {
            g.result.violated = true;
            g.result.firstViolationT = t;
            g.result.firstViolationValue = g.value;
        }
        if (g.reset == Reset::Zero)
            g.value = 0;
    }
}

void TimelineRecorder::closeWindow()
{
    emitAll(windowEnd());
    window_start_ += interval_;
}

void TimelineRecorder::closeFinal(Seconds t)
{
    vassert(t >= window_start_ && t <= windowEnd(),
            "timeline closeFinal(%g) outside window [%g, %g)", t,
            window_start_, windowEnd());
    if (t <= window_start_)
        return; // run ended exactly on a boundary; nothing to emit
    emitAll(t);
    window_start_ = t;
}

TimelineRunData TimelineRecorder::snapshot() const
{
    TimelineRunData data;
    data.interval = interval_;
    data.series.reserve(gauges_.size());
    for (const Gauge &g : gauges_) {
        data.series.push_back(
            {g.name, g.series.dropped(), g.series.samples()});
        if (g.slo)
            data.slos.push_back(g.result);
    }
    return data;
}

void TimelineRecorder::publish(std::string label)
{
    // Self-contained by-value payload: the closure may outlive the
    // recorder (deferred replay happens after the producer run's state
    // is gone). Mirrors the engine's histogram publish.
    auto pub = [label = std::move(label), data = snapshot()]() {
        Timeline::instance().publishRun(label, data);
    };
    if (SideEffectLog *log = ScopedCapture::current())
        log->appendDeferred(std::move(pub));
    else
        pub();
}

// ---------------------------------------------------------------------------
// Timeline

Timeline &Timeline::instance()
{
    static Timeline tl;
    return tl;
}

Seconds Timeline::interval() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return interval_;
}

void Timeline::setInterval(Seconds s)
{
    vassert(s > 0, "timeline interval must be > 0 (got %g)", s);
    std::lock_guard<std::mutex> lock(mu_);
    interval_ = s;
}

std::size_t Timeline::capacity() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return capacity_;
}

void Timeline::setCapacity(std::size_t n)
{
    vassert(n >= 1, "timeline capacity must be >= 1");
    std::lock_guard<std::mutex> lock(mu_);
    capacity_ = n;
}

void Timeline::addSlo(SloSpec spec)
{
    std::lock_guard<std::mutex> lock(mu_);
    slos_.push_back(std::move(spec));
}

void Timeline::clearSlos()
{
    std::lock_guard<std::mutex> lock(mu_);
    slos_.clear();
}

std::vector<SloSpec> Timeline::slos() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return slos_;
}

void Timeline::publishRun(const std::string &label,
                          const TimelineRunData &data)
{
    std::lock_guard<std::mutex> lock(mu_);
    // publishRun is serial by the capture-deferred contract, so the
    // counter yields the same "runN" sequence at any thread count.
    const std::string run =
        label.empty() ? strfmt("run%llu",
                               static_cast<unsigned long long>(run_counter_++))
                      : label;
    Profiler &prof = Profiler::instance();
    for (const TimelineRunData::Series &s : data.series) {
        const std::string name = run + "." + s.gauge;
        auto it = series_.find(name);
        if (it == series_.end()) {
            if (series_.size() >= kMaxSeries) {
                dropped_series_ += 1;
                continue;
            }
            it = series_.emplace(name, TimelineSeries(name, capacity_))
                     .first;
        }
        for (const TimelineSample &smp : s.samples) {
            it->second.append(smp.t, smp.value);
            if (prof.enabled())
                prof.sample("timeline." + name, smp.t, smp.value);
        }
    }
    for (const SloResult &r : data.slos) {
        const std::string name = run + "." + r.gauge;
        auto it = slo_results_.find(name);
        if (it == slo_results_.end()) {
            SloResult qualified = r;
            qualified.gauge = name;
            slo_results_.emplace(name, std::move(qualified));
        } else if (r.violated &&
                   (!it->second.violated ||
                    r.firstViolationT < it->second.firstViolationT)) {
            // Re-published label: keep the earliest violation.
            it->second.violated = true;
            it->second.firstViolationT = r.firstViolationT;
            it->second.firstViolationValue = r.firstViolationValue;
        }
    }
}

std::vector<Timeline::SeriesView> Timeline::series() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<SeriesView> out;
    out.reserve(series_.size());
    for (const auto &[name, s] : series_)
        out.push_back({name, s.dropped(), s.samples()});
    return out;
}

std::vector<SloResult> Timeline::sloResults() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<SloResult> out;
    out.reserve(slo_results_.size());
    for (const auto &[name, r] : slo_results_)
        out.push_back(r);
    return out;
}

bool Timeline::hasData() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return !series_.empty() || !slo_results_.empty();
}

std::uint64_t Timeline::droppedSeries() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_series_;
}

void Timeline::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    series_.clear();
    slo_results_.clear();
    run_counter_ = 0;
    dropped_series_ = 0;
}

} // namespace vespera::obs
