#include "obs/selfprof.h"

#include "common/logging.h"
#include "obs/capture.h"

namespace vespera::obs {

namespace {

/// Innermost active SelfTimer on this thread (self-time stack).
thread_local SelfTimer *tlsTop = nullptr;

std::uint64_t
elapsedNs(std::chrono::steady_clock::time_point from,
          std::chrono::steady_clock::time_point to)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
            .count());
}

} // namespace

const char *
selfCatName(SelfCat cat)
{
    switch (cat) {
    case SelfCat::KernelEval:
        return "kernel_eval";
    case SelfCat::TraceRecord:
        return "trace_record";
    case SelfCat::GraphBuild:
        return "graph_build";
    case SelfCat::EngineStep:
        return "engine_step";
    case SelfCat::Alloc:
        return "alloc";
    case SelfCat::TelemetryExport:
        return "telemetry_export";
    case SelfCat::Other:
        return "other";
    }
    return "unknown";
}

std::uint64_t
SelfLedger::totalNs() const
{
    // Fixed left-to-right order for symmetry with AttribBreakdown::sum;
    // with integers any order gives the same bits, which is the point.
    std::uint64_t total = 0;
    for (std::uint64_t v : ns)
        total += v;
    return total;
}

void
SelfLedger::merge(const SelfLedger &other)
{
    for (int c = 0; c < kSelfCats; ++c) {
        const auto i = static_cast<std::size_t>(c);
        ns[i] += other.ns[i];
        calls[i] += other.calls[i];
        allocBytes[i] += other.allocBytes[i];
        allocCount[i] += other.allocCount[i];
    }
}

void
SelfLedger::settle(std::uint64_t windowNs)
{
    const std::uint64_t categorized = totalNs();
    if (windowNs > categorized)
        ns[static_cast<std::size_t>(SelfCat::Other)] +=
            windowNs - categorized;
}

SelfProf &
SelfProf::instance()
{
    static SelfProf prof;
    return prof;
}

void
SelfProf::setEnabled(bool on)
{
    const bool was = enabled_.exchange(on);
    if (on && !was) {
        std::lock_guard<std::mutex> lock(mu_);
        windowStart_ = std::chrono::steady_clock::now();
    }
}

void
SelfProf::charge(SelfCat cat, std::uint64_t ns)
{
    // A worker-thread charge must not race the ledger or make the
    // merged counts depend on interleaving: defer to the outermost
    // replay, which runs serially in task-index order (obs/capture.h).
    if (SideEffectLog *log = ScopedCapture::current()) {
        log->appendDeferred([this, cat, ns]() { applyCharge(cat, ns); });
    } else {
        applyCharge(cat, ns);
    }
}

void
SelfProf::applyCharge(SelfCat cat, std::uint64_t ns)
{
    std::lock_guard<std::mutex> lock(mu_);
    ledger_.ns[static_cast<std::size_t>(cat)] += ns;
    ledger_.calls[static_cast<std::size_t>(cat)] += 1;
}

void
SelfProf::recordAlloc(std::uint64_t bytes)
{
    recordAlloc(currentCat(), bytes);
}

void
SelfProf::recordAlloc(SelfCat cat, std::uint64_t bytes)
{
    if (SideEffectLog *log = ScopedCapture::current()) {
        log->appendDeferred(
            [this, cat, bytes]() { applyAlloc(cat, bytes); });
    } else {
        applyAlloc(cat, bytes);
    }
}

void
SelfProf::applyAlloc(SelfCat cat, std::uint64_t bytes)
{
    std::lock_guard<std::mutex> lock(mu_);
    ledger_.allocBytes[static_cast<std::size_t>(cat)] += bytes;
    ledger_.allocCount[static_cast<std::size_t>(cat)] += 1;
}

void
SelfProf::cacheHit(const std::string &key)
{
    if (SideEffectLog *log = ScopedCapture::current()) {
        log->appendDeferred([this, key]() { cacheHit(key); });
        return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    cacheHits_++;
    cacheKeys_.insert(key);
}

void
SelfProf::cacheMiss(const std::string &key)
{
    if (SideEffectLog *log = ScopedCapture::current()) {
        log->appendDeferred([this, key]() { cacheMiss(key); });
        return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    cacheMisses_++;
    cacheKeys_.insert(key);
}

SelfSnapshot
SelfProf::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    SelfSnapshot snap;
    snap.ledger = ledger_;
    snap.windowNs =
        windowStart_.time_since_epoch().count() == 0
            ? 0
            : elapsedNs(windowStart_, std::chrono::steady_clock::now());
    snap.cacheHits = cacheHits_;
    snap.cacheMisses = cacheMisses_;
    snap.cacheKeyCount = cacheKeys_.size();
    return snap;
}

SelfSnapshot
SelfProf::settle()
{
    SelfSnapshot snap = snapshot();
    snap.ledger.settle(snap.windowNs);
    // THE invariant (ctest-enforced, acceptance criterion): the
    // settled categories reproduce the total bitwise. Integer sums
    // make this unconditional; the assert documents it at runtime.
    vassert(snap.ledger.totalNs() >= snap.windowNs,
            "selfprof settle lost wall time");
    return snap;
}

void
SelfProf::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    ledger_ = SelfLedger{};
    cacheHits_ = 0;
    cacheMisses_ = 0;
    cacheKeys_.clear();
    windowStart_ = std::chrono::steady_clock::now();
}

SelfCat
SelfProf::currentCat()
{
    return tlsTop ? tlsTop->cat_ : SelfCat::Alloc;
}

SelfTimer::SelfTimer(SelfCat cat) : cat_(cat)
{
    if (!SelfProf::instance().enabled())
        return; // Disabled cost: the one relaxed load above.
    active_ = true;
    parent_ = tlsTop;
    tlsTop = this;
    begin_ = std::chrono::steady_clock::now();
}

SelfTimer::~SelfTimer()
{
    if (!active_)
        return;
    const std::uint64_t elapsed =
        elapsedNs(begin_, std::chrono::steady_clock::now());
    tlsTop = parent_;
    if (parent_)
        parent_->childNs_ += elapsed;
    // Self time only: children already charged their share. Clamp
    // guards clock coarseness (a child can observe more time than the
    // parent when both round to the same tick).
    SelfProf::instance().charge(
        cat_, elapsed > childNs_ ? elapsed - childNs_ : 0);
}

} // namespace vespera::obs
