/**
 * @file
 * Virtual-time timeline telemetry: deterministic gauges sampled on the
 * simulated clock, windowed SLO monitors, and fixed-memory series.
 *
 * Everything else in the obs stack is an end-of-run aggregate. The
 * timeline layer records how serving signals *evolve over simulated
 * time*: a producer (today, serve::Engine) owns a run-local
 * TimelineRecorder, registers named gauges, and closes a window every
 * `interval` simulated seconds. Each window close emits one sample per
 * registered gauge — the series shape is stable whether or not a gauge
 * was touched that window — and evaluates SLO bounds, recording the
 * *virtual* timestamp of the first violation.
 *
 * Determinism contract (same as counters, docs/runtime.md):
 *
 *  - Samples are keyed by virtual time only. Nothing here reads a wall
 *    clock, and window boundaries are a pure function of the simulated
 *    schedule, so the recorded series is identical on both engine
 *    cores and at any `--threads`.
 *  - A recorder is run-local state. It must only be fed from the
 *    producer's serial decision path (the engine scheduler), never
 *    from inside a parallel region — `tools/check_capture_safety.py`
 *    lints for this.
 *  - Publication into the process-wide Timeline singleton is
 *    capture-deferred exactly like the engine's histogram publish:
 *    under an active ScopedCapture the publish becomes a Deferred op
 *    replayed in task-index order, so runs launched from a parallel
 *    sweep land in the singleton in a deterministic order and with
 *    deterministic auto-assigned labels.
 *
 * When the Timeline is disabled (the default), producers skip recorder
 * creation entirely; the steady-state cost is one relaxed atomic load
 * per run, not per step.
 */

#ifndef VESPERA_OBS_TIMELINE_H
#define VESPERA_OBS_TIMELINE_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"

namespace vespera::obs {

/** One timeline observation: (virtual timestamp, gauge value). */
struct TimelineSample
{
    Seconds t = 0;
    double value = 0;
};

/**
 * Fixed-memory ring of samples: keeps the latest `capacity`
 * observations and counts the ones it had to drop. Dropping the oldest
 * is deliberate — for SLO trajectories the steady-state tail matters
 * more than the warm-up head, and the drop count makes the truncation
 * visible in the exported document instead of silent.
 */
class TimelineSeries
{
  public:
    TimelineSeries(std::string name, std::size_t capacity);

    void append(Seconds t, double value);

    const std::string &name() const { return name_; }
    std::size_t size() const { return ring_.size(); }
    /** Samples appended over the series' lifetime. */
    std::uint64_t total() const { return total_; }
    /** Samples lost to the ring (oldest-first). */
    std::uint64_t dropped() const
    {
        return total_ - static_cast<std::uint64_t>(ring_.size());
    }

    /** Retained samples, oldest first. */
    std::vector<TimelineSample> samples() const;

  private:
    std::string name_;
    std::size_t capacity_;
    std::vector<TimelineSample> ring_;
    std::size_t next_ = 0; ///< Overwrite cursor once the ring is full.
    std::uint64_t total_ = 0;
};

/** An upper bound on a gauge: violated when value > bound. */
struct SloSpec
{
    std::string gauge;
    double bound = 0;
};

/** Outcome of one SLO monitor over one run (or merged runs). */
struct SloResult
{
    std::string gauge; ///< Recorder: gauge name. Singleton: label.gauge.
    double bound = 0;
    bool violated = false;
    Seconds firstViolationT = 0; ///< Virtual time of first violation.
    double firstViolationValue = 0;
};

/**
 * The publishable payload of one producer run: self-contained by
 * value, so the capture-deferred publish closure stays valid after the
 * recorder (and its owning run state) is gone.
 */
struct TimelineRunData
{
    Seconds interval = 0;
    struct Series
    {
        std::string gauge;
        std::uint64_t dropped = 0;
        std::vector<TimelineSample> samples;
    };
    std::vector<Series> series;
    std::vector<SloResult> slos;
};

/**
 * Run-local windowed sampler. Single-threaded by contract (see file
 * header): owned by one producer run, fed from its serial path.
 *
 * Window semantics: windows are [k*interval, (k+1)*interval). The
 * producer calls set/add/max as events land, and closeWindow() when
 * the simulated clock reaches a boundary; every registered gauge emits
 * one sample timestamped at the window *end*. set() gauges keep their
 * last value as the emitted sample; add()/max() gauges reset to 0
 * after each close (per-window deltas / high-water marks).
 */
class TimelineRecorder
{
  public:
    TimelineRecorder(Seconds interval, std::size_t capacity,
                     std::vector<SloSpec> slos);

    /** Get-or-create a gauge; ids are dense and stable. */
    int gaugeId(const std::string &name);

    enum class Reset : std::uint8_t {
        Keep,   ///< set(): last value carries into the next window.
        Zero,   ///< add()/max(): per-window, cleared at close.
    };

    void set(int id, double v);        ///< Instantaneous level (Keep).
    void add(int id, double delta);    ///< Per-window delta (Zero).
    void max(int id, double v);        ///< Per-window high-water (Zero).

    Seconds interval() const { return interval_; }
    Seconds windowStart() const { return window_start_; }
    Seconds windowEnd() const { return window_start_ + interval_; }

    /** Emit every gauge at windowEnd(), evaluate SLOs, open the next
        window. */
    void closeWindow();
    /** Emit the trailing partial window at `t` (no-op when `t` is the
        current window start, i.e. the run ended exactly on a
        boundary). */
    void closeFinal(Seconds t);

    /**
     * Publish into Timeline::instance() under `label` (empty: the
     * singleton assigns a deterministic "runN"). Capture-deferred when
     * a ScopedCapture is active. Call at most once, after the run.
     */
    void publish(std::string label);

    /** The payload publish() would send (exposed for tests). */
    TimelineRunData snapshot() const;

  private:
    void emitAll(Seconds t);

    struct Gauge
    {
        std::string name;
        double value = 0;
        Reset reset = Reset::Keep;
        TimelineSeries series;
        const SloSpec *slo = nullptr; ///< Into slos_; stable.
        SloResult result;
    };

    Seconds interval_;
    std::size_t capacity_;
    Seconds window_start_ = 0;
    std::vector<SloSpec> slos_;
    std::vector<Gauge> gauges_;
    std::map<std::string, int> ids_;
};

/**
 * Process-wide timeline store and configuration. Configuration
 * (enable/interval/capacity/SLOs) is set from the serial path before
 * producers run — check_capture_safety.py flags configuration calls
 * inside parallel regions. Data arrives via publishRun(), which is
 * serial by the capture-deferred contract; accessors take a mutex so
 * exporters may read concurrently with nothing in flight.
 */
class Timeline
{
  public:
    static Timeline &instance();

    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
    void setEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

    Seconds interval() const;
    /** Sampling interval in simulated seconds; must be > 0. */
    void setInterval(Seconds s);

    std::size_t capacity() const;
    /** Ring capacity per series; must be >= 1. */
    void setCapacity(std::size_t n);

    void addSlo(SloSpec spec);
    void clearSlos();
    std::vector<SloSpec> slos() const;

    /**
     * Land one run's payload. Empty label: assigned "run<k>" from a
     * counter that publication order makes deterministic. Series are
     * keyed "<label>.<gauge>"; a re-published label appends. When the
     * Profiler is tracing, samples also become Perfetto counter
     * tracks ("timeline.<label>.<gauge>").
     */
    void publishRun(const std::string &label, const TimelineRunData &data);

    struct SeriesView
    {
        std::string name;
        std::uint64_t dropped = 0;
        std::vector<TimelineSample> samples;
    };

    /** All series, name-ordered. */
    std::vector<SeriesView> series() const;
    /** All SLO results, name-ordered ("<label>.<gauge>"). */
    std::vector<SloResult> sloResults() const;
    bool hasData() const;
    /** Series beyond kMaxSeries discarded whole (flood guard). */
    std::uint64_t droppedSeries() const;

    /** Drop recorded data and the label counter; keep configuration. */
    void reset();

    /// Flood guard: a runaway producer loop (e.g. an adaptive timing
    /// loop publishing auto-labelled runs) caps out instead of growing
    /// without bound.
    static constexpr std::size_t kMaxSeries = 4096;

  private:
    Timeline() = default;

    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;
    Seconds interval_ = 1.0;
    std::size_t capacity_ = 512;
    std::vector<SloSpec> slos_;
    std::map<std::string, TimelineSeries> series_;
    std::map<std::string, SloResult> slo_results_;
    std::uint64_t run_counter_ = 0;
    std::uint64_t dropped_series_ = 0;
};

} // namespace vespera::obs

#endif // VESPERA_OBS_TIMELINE_H
