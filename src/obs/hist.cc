#include "obs/hist.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vespera::obs {

double Histogram::growth()
{
    return std::exp2(1.0 / kBucketsPerOctave);
}

Histogram::Histogram(std::string name, Layout layout)
    : name_(std::move(name)), layout_(layout)
{
    vassert(layout_.minTrackable > 0 && layout_.bucketsPerOctave >= 1 &&
                layout_.octaves >= 1,
            "degenerate histogram layout");
    // Storage is the fixed max-size array; a custom layout may only
    // shrink the geometry, never outgrow it.
    vassert(layout_.buckets() <= kBuckets,
            "histogram layout needs %d buckets, storage has %d",
            layout_.buckets(), kBuckets);
}

int Histogram::bucketIndex(const Layout &layout, double v)
{
    if (!(v > layout.minTrackable)) // negatives and NaN clamp down
        return 0;
    const int buckets = layout.buckets();
    const double octaves = std::log2(v / layout.minTrackable);
    int idx = 1 + static_cast<int>(octaves * layout.bucketsPerOctave);
    if (idx >= buckets) // beyond the top octave: overflow bucket
        return buckets - 1;
    // Guard the exact-edge case: log2/exp2 rounding can land a value
    // computed *as* a bucket edge in the bucket above it. A sample must
    // never sit above its bucket's upper edge or percentile() would
    // undershoot it.
    if (idx > 1 && v <= bucketHi(layout, idx - 1))
        --idx;
    return idx;
}

double Histogram::bucketLo(const Layout &layout, int index)
{
    vassert(index >= 0 && index < layout.buckets(),
            "bucket index out of range");
    if (index == 0)
        return 0.0;
    return layout.minTrackable *
           std::exp2(static_cast<double>(index - 1) /
                     layout.bucketsPerOctave);
}

double Histogram::bucketHi(const Layout &layout, int index)
{
    vassert(index >= 0 && index < layout.buckets(),
            "bucket index out of range");
    if (index == 0)
        return layout.minTrackable;
    return layout.minTrackable *
           std::exp2(static_cast<double>(index) /
                     layout.bucketsPerOctave);
}

int Histogram::bucketIndex(double v)
{
    return bucketIndex(Layout{}, v);
}

double Histogram::bucketLo(int index)
{
    return bucketLo(Layout{}, index);
}

double Histogram::bucketHi(int index)
{
    return bucketHi(Layout{}, index);
}

void Histogram::add(double v)
{
    counts_[static_cast<std::size_t>(bucketIndex(layout_, v))] += 1;
    count_ += 1;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
}

void Histogram::merge(const Histogram &other)
{
    // Folding counts_ arrays with different geometries would silently
    // misplace every sample; fail loudly instead (the satellite guard).
    vassert(layout_ == other.layout_,
            "histogram merge: mismatched bucket layouts "
            "('%s': min=%g x%d oct=%d vs '%s': min=%g x%d oct=%d)",
            name_.c_str(), layout_.minTrackable,
            layout_.bucketsPerOctave, layout_.octaves,
            other.name_.c_str(), other.layout_.minTrackable,
            other.layout_.bucketsPerOctave, other.layout_.octaves);
    const int buckets = layout_.buckets();
    for (int i = 0; i < buckets; ++i)
        counts_[static_cast<std::size_t>(i)] += other.counts_[static_cast<std::size_t>(i)];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

Histogram Histogram::diff(const Histogram &earlier) const
{
    vassert(layout_ == earlier.layout_,
            "histogram diff: mismatched bucket layouts "
            "('%s': min=%g x%d oct=%d vs '%s': min=%g x%d oct=%d)",
            name_.c_str(), layout_.minTrackable,
            layout_.bucketsPerOctave, layout_.octaves,
            earlier.name_.c_str(), earlier.layout_.minTrackable,
            earlier.layout_.bucketsPerOctave, earlier.layout_.octaves);
    Histogram out(name_, layout_);
    const int buckets = layout_.buckets();
    int first_nonzero = -1;
    int last_nonzero = -1;
    for (int i = 0; i < buckets; ++i) {
        const std::uint64_t now = counts_[static_cast<std::size_t>(i)];
        const std::uint64_t then =
            earlier.counts_[static_cast<std::size_t>(i)];
        vassert(then <= now,
                "histogram diff: '%s' is not an earlier snapshot of "
                "'%s' (bucket %d: %llu > %llu)",
                earlier.name_.c_str(), name_.c_str(), i,
                static_cast<unsigned long long>(then),
                static_cast<unsigned long long>(now));
        const std::uint64_t d = now - then;
        out.counts_[static_cast<std::size_t>(i)] = d;
        if (d > 0) {
            if (first_nonzero < 0)
                first_nonzero = i;
            last_nonzero = i;
        }
    }
    out.count_ = count_ - earlier.count_;
    out.sum_ = sum_ - earlier.sum_;
    if (first_nonzero >= 0) {
        // Conservative extremes from bucket geometry: the delta's true
        // min/max lie inside these edges. The overflow bucket has no
        // finite edge; the full histogram's observed max bounds it.
        out.min_ = bucketLo(layout_, first_nonzero);
        out.max_ = (last_nonzero == buckets - 1)
                       ? max_
                       : bucketHi(layout_, last_nonzero);
    }
    return out;
}

double Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    const double frac = std::clamp(p, 0.0, 100.0) / 100.0;
    std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(frac * static_cast<double>(count_)));
    rank = std::clamp<std::uint64_t>(rank, 1, count_);
    const int buckets = layout_.buckets();
    std::uint64_t cum = 0;
    for (int i = 0; i < buckets; ++i) {
        cum += counts_[static_cast<std::size_t>(i)];
        if (cum >= rank) {
            // Overflow bucket has no finite upper edge; the clamp to
            // the observed max supplies it.
            const double hi =
                (i == buckets - 1) ? max_ : bucketHi(layout_, i);
            return std::min(hi, max_);
        }
    }
    return max_; // unreachable: cum ends at count_ >= rank
}

std::vector<Histogram::Bucket> Histogram::nonzeroBuckets() const
{
    std::vector<Bucket> out;
    const int buckets = layout_.buckets();
    for (int i = 0; i < buckets; ++i) {
        const std::uint64_t c = counts_[static_cast<std::size_t>(i)];
        if (c == 0)
            continue;
        const bool overflow = i == buckets - 1;
        out.push_back({bucketLo(layout_, i),
                       overflow ? max_ : bucketHi(layout_, i), c});
    }
    return out;
}

void Histogram::reset()
{
    counts_.fill(0);
    count_ = 0;
    sum_ = 0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

} // namespace vespera::obs
