#include "obs/hist.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vespera::obs {

double Histogram::growth()
{
    return std::exp2(1.0 / kBucketsPerOctave);
}

int Histogram::bucketIndex(double v)
{
    if (!(v > kMinTrackable)) // negatives and NaN clamp down
        return 0;
    const double octaves = std::log2(v / kMinTrackable);
    int idx = 1 + static_cast<int>(octaves * kBucketsPerOctave);
    if (idx >= kBuckets) // beyond the top octave: overflow bucket
        return kBuckets - 1;
    // Guard the exact-edge case: log2/exp2 rounding can land a value
    // computed *as* a bucket edge in the bucket above it. A sample must
    // never sit above its bucket's upper edge or percentile() would
    // undershoot it.
    if (idx > 1 && v <= bucketHi(idx - 1))
        --idx;
    return idx;
}

double Histogram::bucketLo(int index)
{
    vassert(index >= 0 && index < kBuckets, "bucket index out of range");
    if (index == 0)
        return 0.0;
    return kMinTrackable * std::exp2(static_cast<double>(index - 1) / kBucketsPerOctave);
}

double Histogram::bucketHi(int index)
{
    vassert(index >= 0 && index < kBuckets, "bucket index out of range");
    if (index == 0)
        return kMinTrackable;
    return kMinTrackable * std::exp2(static_cast<double>(index) / kBucketsPerOctave);
}

void Histogram::add(double v)
{
    counts_[static_cast<std::size_t>(bucketIndex(v))] += 1;
    count_ += 1;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
}

void Histogram::merge(const Histogram &other)
{
    for (int i = 0; i < kBuckets; ++i)
        counts_[static_cast<std::size_t>(i)] += other.counts_[static_cast<std::size_t>(i)];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    const double frac = std::clamp(p, 0.0, 100.0) / 100.0;
    std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(frac * static_cast<double>(count_)));
    rank = std::clamp<std::uint64_t>(rank, 1, count_);
    std::uint64_t cum = 0;
    for (int i = 0; i < kBuckets; ++i) {
        cum += counts_[static_cast<std::size_t>(i)];
        if (cum >= rank) {
            // Overflow bucket has no finite upper edge; the clamp to
            // the observed max supplies it.
            const double hi = (i == kBuckets - 1) ? max_ : bucketHi(i);
            return std::min(hi, max_);
        }
    }
    return max_; // unreachable: cum ends at count_ >= rank
}

std::vector<Histogram::Bucket> Histogram::nonzeroBuckets() const
{
    std::vector<Bucket> out;
    for (int i = 0; i < kBuckets; ++i) {
        const std::uint64_t c = counts_[static_cast<std::size_t>(i)];
        if (c == 0)
            continue;
        const bool overflow = i == kBuckets - 1;
        out.push_back({bucketLo(i), overflow ? max_ : bucketHi(i), c});
    }
    return out;
}

void Histogram::reset()
{
    counts_.fill(0);
    count_ = 0;
    sum_ = 0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

} // namespace vespera::obs
