/**
 * @file
 * Fixed-memory streaming latency histograms.
 *
 * `common::Samples` retains every observation, which is fine for a
 * figure regeneration but incompatible with the ROADMAP's
 * millions-of-requests serving target. Histogram replaces it on the
 * serving hot path: log-bucketed (HdrHistogram-style), so memory is a
 * small constant (~8 KiB) regardless of sample count, while quantile
 * estimates stay within one bucket width — a bounded relative error of
 * `kGrowth - 1` (~4.4%).
 *
 * Quantiles are *conservative*: percentile() returns the upper edge of
 * the bucket holding the target rank (clamped to the observed max), so
 * the estimate never undershoots the true order statistic. That keeps
 * derived invariants like mean <= p99 stable when the exact collector
 * is swapped for the streaming one.
 *
 * Thread-safety: none. Mutate a Histogram from the serial path only,
 * or defer the mutation through an obs::ScopedCapture log the way
 * serve::Engine publishes its per-run histograms (merge order affects
 * the bits of `sum()`, so replay must be index-ordered — the same
 * determinism contract counters follow, docs/runtime.md).
 */

#ifndef VESPERA_OBS_HIST_H
#define VESPERA_OBS_HIST_H

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace vespera::obs {

/** Log-bucketed streaming histogram with fixed memory. */
class Histogram
{
  public:
    /// Values at or below this land in the underflow bucket (1 ps —
    /// far below any simulated latency we report).
    static constexpr double kMinTrackable = 1e-12;
    /// Buckets per power of two; relative bucket width 2^(1/16)-1.
    static constexpr int kBucketsPerOctave = 16;
    /// Octaves covered above kMinTrackable (up to ~1.8e7 seconds).
    static constexpr int kOctaves = 64;
    /// Underflow bucket + log buckets + overflow bucket.
    static constexpr int kBuckets = kOctaves * kBucketsPerOctave + 2;
    /// Upper bound on percentile() overestimation: estimate is in
    /// [exact, exact * kGrowth].
    static double growth();

    /**
     * Bucket geometry. The defaults are the compile-time constants
     * above — every registry histogram uses them — but a histogram
     * built for a different dynamic range (coarser buckets, fewer
     * octaves) may shrink them. Two histograms are merge-compatible
     * only when their layouts are equal: folding counts_ arrays with
     * different geometries silently miscounts every quantile, so
     * merge() asserts equality instead.
     */
    struct Layout
    {
        double minTrackable = kMinTrackable;
        int bucketsPerOctave = kBucketsPerOctave;
        int octaves = kOctaves;

        /// Underflow + log buckets + overflow.
        int
        buckets() const
        {
            return octaves * bucketsPerOctave + 2;
        }

        bool operator==(const Layout &) const = default;
    };

    Histogram() = default;
    explicit Histogram(std::string name) : name_(std::move(name)) {}
    /** A histogram with non-default geometry (storage stays fixed, so
        layout.buckets() must not exceed kBuckets). */
    Histogram(std::string name, Layout layout);

    const Layout &layout() const { return layout_; }

    /** Record one observation (negatives clamp to the underflow bucket). */
    void add(double v);

    /**
     * Fold `other` into this histogram. The layouts must be equal —
     * a mismatched merge is a hard failure (vassert), never a silent
     * miscount.
     */
    void merge(const Histogram &other);

    /**
     * The delta histogram `*this - earlier`, where `earlier` is a
     * previous snapshot (copy) of this histogram: every bucket count
     * of `earlier` must be <= the corresponding count here, and the
     * layouts must be equal — both are vasserted, never silently
     * wrong. Powers windowed percentile monitors (obs/timeline.h):
     * diffing consecutive snapshots yields the distribution of just
     * the samples recorded in between.
     *
     * min()/max() of the delta are reconstructed from the nonzero
     * delta buckets (conservative: bucket edges, with the overflow
     * bucket's edge supplied by this histogram's observed max), since
     * the exact extremes of the in-between samples are not recoverable
     * from two endpoint snapshots.
     */
    Histogram diff(const Histogram &earlier) const;

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /**
     * Conservative quantile estimate, p in [0, 100]: the upper edge of
     * the bucket containing the ceil(p/100 * count)-th smallest
     * sample, clamped to the observed max. 0 when empty.
     */
    double percentile(double p) const;

    const std::string &name() const { return name_; }

    /** One nonzero bucket, for exporters. */
    struct Bucket
    {
        double lo = 0;
        double hi = 0;
        std::uint64_t count = 0;
    };

    /** Nonzero buckets in ascending value order. */
    std::vector<Bucket> nonzeroBuckets() const;

    void reset();

    /// @name Bucket geometry (exposed for tests/exporters). The
    /// static forms use the default Layout; the Layout-taking forms
    /// serve histograms with custom geometry.
    /// @{
    static int bucketIndex(double v);
    static double bucketLo(int index);
    static double bucketHi(int index);
    static int bucketIndex(const Layout &layout, double v);
    static double bucketLo(const Layout &layout, int index);
    static double bucketHi(const Layout &layout, int index);
    /// @}

  private:
    std::string name_;
    Layout layout_;
    std::array<std::uint64_t, kBuckets> counts_{};
    std::uint64_t count_ = 0;
    double sum_ = 0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace vespera::obs

#endif // VESPERA_OBS_HIST_H
