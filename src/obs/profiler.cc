#include "obs/profiler.h"

#include <algorithm>

namespace vespera::obs {

namespace {

thread_local int tlsDepth = 0;

/** Host-time origin: first ScopedSpan ever constructed. */
std::chrono::steady_clock::time_point
hostEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

/** Small dense per-thread lane id for host spans. */
int
hostTrackId()
{
    static std::atomic<int> next{1};
    thread_local int id = next.fetch_add(1);
    return id;
}

} // namespace

Profiler &
Profiler::instance()
{
    static Profiler profiler;
    return profiler;
}

void
Profiler::recordSpan(SpanEvent span)
{
    std::lock_guard<std::mutex> lock(mu_);
    spans_.push_back(std::move(span));
}

void
Profiler::recordSpan(const std::string &name,
                     const std::string &category, int track,
                     Seconds start, Seconds duration)
{
    SpanEvent e;
    e.name = name;
    e.category = category;
    e.group = TrackGroup::Device;
    e.track = track;
    e.start = start;
    e.duration = duration;
    recordSpan(std::move(e));
}

void
Profiler::sample(const std::string &track, Seconds t, double value)
{
    sample(TrackGroup::Device, track, t, value);
}

void
Profiler::sample(TrackGroup group, const std::string &track, Seconds t,
                 double value)
{
    std::lock_guard<std::mutex> lock(mu_);
    samples_.push_back({track, group, t, value});
}

void
Profiler::nameTrack(TrackGroup group, int track, const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto key = std::make_pair(static_cast<int>(group), track);
    for (auto &entry : trackNames_) {
        if (entry.first == key) {
            entry.second = name;
            return;
        }
    }
    trackNames_.emplace_back(key, name);
}

std::vector<SpanEvent>
Profiler::spans() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return spans_;
}

std::vector<TrackSample>
Profiler::samples() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return samples_;
}

std::vector<std::pair<std::pair<int, int>, std::string>>
Profiler::trackNames() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return trackNames_;
}

std::vector<std::string>
Profiler::sampledTracks() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> tracks;
    for (const TrackSample &s : samples_) {
        if (std::find(tracks.begin(), tracks.end(), s.track) ==
            tracks.end()) {
            tracks.push_back(s.track);
        }
    }
    std::sort(tracks.begin(), tracks.end());
    return tracks;
}

void
Profiler::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    spans_.clear();
    samples_.clear();
    trackNames_.clear();
}

ScopedSpan::ScopedSpan(std::string name, std::string category)
    : name_(std::move(name)), category_(std::move(category))
{
    active_ = Profiler::instance().enabled();
    depth_ = tlsDepth++;
    if (active_)
        begin_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan()
{
    tlsDepth--;
    if (!active_)
        return;
    const auto end = std::chrono::steady_clock::now();
    SpanEvent e;
    e.name = std::move(name_);
    e.category = std::move(category_);
    e.group = TrackGroup::Host;
    e.track = hostTrackId();
    e.depth = depth_;
    e.start = std::chrono::duration<double>(begin_ - hostEpoch()).count();
    e.duration = std::chrono::duration<double>(end - begin_).count();
    Profiler::instance().recordSpan(std::move(e));
}

int
ScopedSpan::currentDepth()
{
    return tlsDepth;
}

} // namespace vespera::obs
