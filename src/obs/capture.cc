#include "obs/capture.h"

#include "obs/counters.h"

namespace vespera::obs {

namespace {
thread_local SideEffectLog *t_capture = nullptr;
} // namespace

ScopedCapture::ScopedCapture(SideEffectLog &log) : prev_(t_capture)
{
    t_capture = &log;
}

ScopedCapture::~ScopedCapture()
{
    t_capture = prev_;
}

SideEffectLog *
ScopedCapture::current()
{
    return t_capture;
}

CaptureBypass::CaptureBypass() : prev_(t_capture)
{
    t_capture = nullptr;
}

CaptureBypass::~CaptureBypass()
{
    t_capture = prev_;
}

void
SideEffectLog::replay()
{
    // Move out first: replaying into an enclosing capture must not
    // append to the log being drained.
    std::vector<SideEffectOp> ops = std::move(ops_);
    ops_.clear();
    for (SideEffectOp &op : ops) {
        switch (op.kind) {
          case SideEffectOp::Kind::CounterAdd:
            static_cast<Counter *>(op.target)->add(op.a);
            break;
          case SideEffectOp::Kind::CounterSet:
            static_cast<Counter *>(op.target)->set(op.a);
            break;
          case SideEffectOp::Kind::RateAdd:
            static_cast<RateMeter *>(op.target)->add(op.a, op.b);
            break;
          case SideEffectOp::Kind::Deferred:
            // Keep propagating outward: the closure may read or write
            // state shared across tasks, so it must only run at the
            // outermost join, where replay is serial and index-ordered.
            if (SideEffectLog *outer = ScopedCapture::current())
                outer->append(std::move(op));
            else
                op.fn();
            break;
        }
    }
}

} // namespace vespera::obs
