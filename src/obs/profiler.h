/**
 * @file
 * Trace recorder: timed spans plus time-series counter samples, the
 * two event kinds the Intel Gaudi Profiler / Nsight views interleave.
 *
 * Two clocks coexist:
 *  - device spans/samples carry *simulated* time (the `Seconds` the
 *    engine models compute) and land on the Device track group;
 *  - ScopedSpan RAII timers measure *host* wall time of the simulator
 *    itself and land on the Host track group.
 * The Chrome/Perfetto exporter (obs/export.h) renders both, so one
 * trace shows what the modeled hardware did and what it cost us to
 * model it.
 *
 * The process-wide instance is disabled by default: models check
 * `enabled()` (one relaxed atomic load) before recording, so the
 * tracing hooks cost nothing when no one asked for a trace.
 */

#ifndef VESPERA_OBS_PROFILER_H
#define VESPERA_OBS_PROFILER_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"

namespace vespera::obs {

/** Track groups ("processes" in the Chrome trace model). */
enum class TrackGroup : int {
    Device = 1, ///< Simulated-hardware timeline (simulated seconds).
    Host = 2,   ///< Simulator wall-clock timeline (ScopedSpan).
};

/** One completed span. */
struct SpanEvent
{
    std::string name;
    std::string category;
    TrackGroup group = TrackGroup::Device;
    int track = 1;     ///< Lane within the group ("tid").
    int depth = 0;     ///< Nesting depth at record time (host spans).
    Seconds start = 0;
    Seconds duration = 0;
    /// Nonzero links spans into one Perfetto flow (e.g. all lifecycle
    /// phases of one serving request): the exporter sorts a flow's
    /// spans by start time and emits flow-start/step/end arrows
    /// between consecutive spans. 0 = not part of any flow.
    std::uint64_t flowId = 0;
};

/** One counter-track sample: `track` had `value` at time `t`. */
struct TrackSample
{
    std::string track;
    /// Which track group (trace "process") the counter track renders
    /// under: Device samples carry simulated time, Host samples carry
    /// wall time (e.g. the selfprof attribution tracks).
    TrackGroup group = TrackGroup::Device;
    Seconds t = 0;
    double value = 0;
};

/**
 * Span + sample buffer. `instance()` is the process-wide recorder the
 * engine models feed; exporters also accept locally built Profilers so
 * trace conversion (serve/tracing.h) shares the same code path without
 * touching global state.
 */
class Profiler
{
  public:
    static Profiler &instance();

    Profiler() = default;
    Profiler(const Profiler &) = delete;
    Profiler &operator=(const Profiler &) = delete;

    /** Gate for the recording hooks in model hot paths. */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    void setEnabled(bool on) { enabled_.store(on); }

    /** Record a completed span (simulated or host time; see `group`). */
    void recordSpan(SpanEvent span);

    /** Convenience: device-track span in simulated time. */
    void recordSpan(const std::string &name, const std::string &category,
                    int track, Seconds start, Seconds duration);

    /** Record a Device counter-track sample at simulated time `t`. */
    void sample(const std::string &track, Seconds t, double value);

    /** Record a counter-track sample on an explicit track group
        (Host samples carry wall time, e.g. selfprof.* tracks). */
    void sample(TrackGroup group, const std::string &track, Seconds t,
                double value);

    /** Label a lane ("MME", "TPC", ...) for the trace viewer. */
    void nameTrack(TrackGroup group, int track, const std::string &name);

    std::vector<SpanEvent> spans() const;
    std::vector<TrackSample> samples() const;

    /** (group, track) -> label pairs, for the exporter. */
    std::vector<std::pair<std::pair<int, int>, std::string>>
    trackNames() const;

    /** Distinct counter tracks sampled so far. */
    std::vector<std::string> sampledTracks() const;

    /** Drop all recorded events (the enabled flag is untouched). */
    void clear();

  private:
    friend class ScopedSpan;

    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;
    std::vector<SpanEvent> spans_;
    std::vector<TrackSample> samples_;
    std::vector<std::pair<std::pair<int, int>, std::string>> trackNames_;
};

/**
 * RAII host-time span: measures the wall-clock time between
 * construction and destruction and records it on the Host track group
 * of the process-wide Profiler. Nests naturally — a per-thread depth
 * is captured so exporters and tests can see the hierarchy even for
 * zero-duration spans.
 *
 *   {
 *       obs::ScopedSpan s("engine.run");
 *       ... // work
 *   }   // span recorded here
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(std::string name,
                        std::string category = "host");
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** Current nesting depth on this thread (0 = outermost). */
    static int currentDepth();

  private:
    std::string name_;
    std::string category_;
    bool active_ = false; ///< Profiler was enabled at construction.
    int depth_ = 0;
    std::chrono::steady_clock::time_point begin_;
};

} // namespace vespera::obs

#endif // VESPERA_OBS_PROFILER_H
