/**
 * @file
 * Host-side self-time attribution: *where the simulator's own wall
 * clock goes*, the second clock of the two-clock model
 * (docs/observability.md).
 *
 * The AttributionLedger (obs/attrib.h) explains simulated cycles; this
 * ledger mirrors its discipline on the simulator's wall-clock
 * nanoseconds, so ROADMAP item 2 (event-driven core + trace
 * memoization) can be measured before and after. A fixed taxonomy —
 * kernel_eval, trace_record, graph_build, engine_step, alloc,
 * telemetry_export, other — with three guarantees:
 *
 *  - Bitwise sum-to-total: ledgers accumulate integer nanoseconds, so
 *    totalNs() is an exact fixed-order sum and settle() makes the
 *    categories reproduce an observation window bit-for-bit — no
 *    floating-point residue to absorb (the harder half of
 *    AttribBreakdown::settle is unnecessary by construction).
 *  - Deterministic merge: charges made under an active
 *    obs::ScopedCapture (a runtime::Pool worker) are logged as
 *    Deferred ops and applied at the outermost replay, serially, in
 *    task-index order — so call/alloc counts and bytes are
 *    byte-identical at any thread count (wall times themselves are
 *    inherently machine- and run-dependent).
 *  - Disabled cost: a SelfTimer on a disabled profile is one relaxed
 *    atomic load, the same contract as obs::Profiler::enabled() —
 *    ctest-enforced at <1% of a single MME GEMM costing.
 *
 * Self-time semantics: nested timers never double-count. Each timer
 * subtracts its children's elapsed time before charging, so within one
 * thread the charged categories partition the instrumented wall time
 * exactly; settle() pours the uninstrumented remainder into `other`.
 *
 * Also here: allocation observability (counting hooks on the hot-path
 * containers report bytes/count per category, attributed to the
 * innermost active timer) and the pre-wired kernel-eval cache counters
 * (`selfprof.kernel_eval.{hits,misses,key_count}`) that item 2's
 * replay cache will land against.
 *
 * Exported as the optional "host" section of vespera-metrics/v2.1
 * (bench --selfprof) and as counter tracks on the Host group of the
 * Perfetto trace. The section is opt-in because engine-step cache
 * hit/miss counts legitimately vary with --threads (the decode
 * prefetch window) — the core metrics document stays byte-identical at
 * any thread count (docs/runtime.md).
 */

#ifndef VESPERA_OBS_SELFPROF_H
#define VESPERA_OBS_SELFPROF_H

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>

namespace vespera::obs {

/** Where the simulator's own wall time went. */
enum class SelfCat : int {
    KernelEval = 0,      ///< Kernel/graph cost-model evaluation.
    TraceRecord = 1,     ///< TPC instruction-trace recording.
    GraphBuild = 2,      ///< Step-graph construction.
    EngineStep = 3,      ///< Serving-engine scheduling loop.
    Alloc = 4,           ///< Container growth outside any timer.
    TelemetryExport = 5, ///< Metrics/trace serialization + write.
    Other = 6,           ///< Uninstrumented remainder (settle()).
};

inline constexpr int kSelfCats = 7;

/** Stable dotted-name component for each category. */
const char *selfCatName(SelfCat cat);

/**
 * One accumulation of self time + allocation telemetry. Plain value
 * type; all fields are integers, so merge order cannot change any
 * result — the determinism story needs no floating-point care.
 */
struct SelfLedger
{
    /// Self time (children subtracted) per category, nanoseconds.
    std::array<std::uint64_t, kSelfCats> ns{};
    /// Completed SelfTimer scopes per category.
    std::array<std::uint64_t, kSelfCats> calls{};
    /// Container-growth bytes attributed to each category.
    std::array<std::uint64_t, kSelfCats> allocBytes{};
    /// Container-growth events attributed to each category.
    std::array<std::uint64_t, kSelfCats> allocCount{};

    /** Fixed-order sum of category nanoseconds (exact). */
    std::uint64_t totalNs() const;

    /** Fold `other` in (integer adds; order-independent). */
    void merge(const SelfLedger &other);

    /**
     * Absorb the uncategorized part of an observation window into
     * `Other`: afterwards totalNs() == max(windowNs, categorized)
     * bitwise. Categorized time can exceed the wall window when
     * workers charged in parallel; nothing is then absorbed.
     */
    void settle(std::uint64_t windowNs);
};

/** settle()d ledger plus the window and cache counters it closed over. */
struct SelfSnapshot
{
    SelfLedger ledger;
    /// Wall nanoseconds from enable (or reset) to settle.
    std::uint64_t windowNs = 0;
    /// @name selfprof.kernel_eval.* — step-cost cache telemetry.
    /// @{
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t cacheKeyCount = 0; ///< Distinct keys ever looked up.
    /// @}
};

/**
 * Process-wide self-profile sink. Disabled by default; every hook
 * checks enabled() (one relaxed atomic load) first, so instrumented
 * hot paths cost nothing when no one asked (--selfprof asks).
 */
class SelfProf
{
  public:
    static SelfProf &instance();

    SelfProf() = default;
    SelfProf(const SelfProf &) = delete;
    SelfProf &operator=(const SelfProf &) = delete;

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Enabling (re)opens the observation window settle() closes. */
    void setEnabled(bool on);

    /**
     * Charge `ns` of self time to `cat` (normally via SelfTimer).
     * Under an active ScopedCapture the charge is deferred to the
     * outermost replay, in task-index order.
     */
    void charge(SelfCat cat, std::uint64_t ns);

    /**
     * Record one container-growth event, attributed to the innermost
     * active SelfTimer's category on this thread (SelfCat::Alloc when
     * none). Capture-deferred like charge().
     */
    void recordAlloc(std::uint64_t bytes);

    /** recordAlloc with an explicit category. */
    void recordAlloc(SelfCat cat, std::uint64_t bytes);

    /// @name Kernel-eval cache counters (`selfprof.kernel_eval.*`).
    /// The key identifies one memoizable evaluation —
    /// kernel×shape×device×granularity — so the replay cache of
    /// ROADMAP item 2 lands against existing instrumentation. These
    /// live here, not in the CounterRegistry: hit/miss splits vary
    /// with --threads (prefetch windows), so they must stay out of
    /// the deterministic "counters" section.
    /// @{
    void cacheHit(const std::string &key);
    void cacheMiss(const std::string &key);
    /// @}

    /** Current totals without closing the window. */
    SelfSnapshot snapshot() const;

    /**
     * Close the window: settle the uninstrumented remainder into
     * Other and return the result. The invariant every --selfprof
     * bench export carries: ledger.totalNs() is the bitwise
     * fixed-order sum of the category ns — integers, so it holds at
     * any thread count. Call from the serial path only.
     */
    SelfSnapshot settle();

    /** Zero all state and reopen the window. Serial path only. */
    void reset();

    /** Innermost active SelfTimer's category on this thread. */
    static SelfCat currentCat();

  private:
    friend class SelfTimer;

    void applyCharge(SelfCat cat, std::uint64_t ns);
    void applyAlloc(SelfCat cat, std::uint64_t bytes);

    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;
    SelfLedger ledger_;
    std::uint64_t cacheHits_ = 0;
    std::uint64_t cacheMisses_ = 0;
    std::set<std::string> cacheKeys_;
    std::chrono::steady_clock::time_point windowStart_{};
};

/**
 * RAII self-time scope. Disabled-profile cost: one relaxed load, no
 * clock read. Enabled: reads the clock twice and charges elapsed
 * minus children to `cat`; the parent timer (same thread) absorbs
 * this scope's full elapsed time into its child total, so nesting —
 * including same-category nesting like runGemm inside stepReport —
 * never double-counts a nanosecond.
 */
class SelfTimer
{
  public:
    explicit SelfTimer(SelfCat cat);
    ~SelfTimer();

    SelfTimer(const SelfTimer &) = delete;
    SelfTimer &operator=(const SelfTimer &) = delete;

  private:
    friend class SelfProf;

    SelfCat cat_;
    bool active_ = false;
    std::uint64_t childNs_ = 0;
    SelfTimer *parent_ = nullptr;
    std::chrono::steady_clock::time_point begin_{};
};

/**
 * Inline hook for the hot-path containers: call with the vector's
 * capacity from *before* a push_back; records the growth (if any) as
 * one allocation event on the current category. The enabled() check
 * belongs to the caller so the disabled path never reads capacity().
 */
template <typename Vec>
inline void
selfRecordGrowth(const Vec &v, std::size_t capBefore)
{
    if (v.capacity() == capBefore)
        return;
    // Arena-backed growth (mem::ArenaAllocator with a bound arena) is
    // a pointer bump, not heap traffic — the arena's chunk hook
    // reports the real allocations, so skip it here to keep the alloc
    // columns honest about malloc churn.
    if constexpr (requires(const Vec &vec) {
                      vec.get_allocator().arena();
                  }) {
        if (v.get_allocator().arena() != nullptr)
            return;
    }
    SelfProf::instance().recordAlloc(
        (v.capacity() - capBefore) * sizeof(typename Vec::value_type));
}

} // namespace vespera::obs

#endif // VESPERA_OBS_SELFPROF_H
