#include "obs/export.h"

#include <algorithm>
#include <cstdint>

#include "common/json.h"
#include "common/logging.h"
#include "common/table.h"
#include "obs/timeline.h"

namespace vespera::obs {

namespace {

/** JSON string-escape for event names (quotes/backslashes/control). */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

const char *
groupName(TrackGroup g)
{
    return g == TrackGroup::Device ? "Device (simulated time)"
                                   : "Host (simulator wall time)";
}

} // namespace

std::string
chromeTraceJson(const Profiler &profiler)
{
    const auto spans = profiler.spans();
    const auto samples = profiler.samples();
    const auto names = profiler.trackNames();

    std::vector<std::string> events;
    events.reserve(spans.size() + samples.size() + names.size() + 2);

    // Process-name metadata for each track group in use.
    bool groupUsed[2] = {false, false};
    for (const SpanEvent &s : spans)
        groupUsed[s.group == TrackGroup::Host] = true;
    for (const TrackSample &c : samples)
        groupUsed[c.group == TrackGroup::Host] = true;
    for (int g = 0; g < 2; g++) {
        if (!groupUsed[g])
            continue;
        const TrackGroup group =
            g == 0 ? TrackGroup::Device : TrackGroup::Host;
        events.push_back(strfmt(
            "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, "
            "\"args\": {\"name\": \"%s\"}}",
            static_cast<int>(group), groupName(group)));
    }
    for (const auto &[key, label] : names) {
        events.push_back(strfmt(
            "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": %d, "
            "\"tid\": %d, \"args\": {\"name\": \"%s\"}}",
            key.first, key.second, escape(label).c_str()));
    }

    for (const SpanEvent &s : spans) {
        events.push_back(strfmt(
            "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
            "\"ts\": %.3f, \"dur\": %.3f, \"pid\": %d, \"tid\": %d}",
            escape(s.name).c_str(), escape(s.category).c_str(),
            s.start * 1e6, s.duration * 1e6,
            static_cast<int>(s.group), s.track));
    }

    // Counter tracks: one "C" event per sample; Perfetto groups them
    // by name into per-counter tracks under the sample's track group
    // (Device for simulated-time counters, Host for selfprof tracks).
    for (const TrackSample &c : samples) {
        events.push_back(strfmt(
            "{\"name\": \"%s\", \"ph\": \"C\", \"ts\": %.3f, "
            "\"pid\": %d, \"args\": {\"value\": %.6g}}",
            escape(c.track).c_str(), c.t * 1e6,
            static_cast<int>(c.group), c.value));
    }

    // Flow arrows: spans sharing a nonzero flowId form one flow. The
    // chrome format wants a flow-start ("s") anchored to the first
    // slice, steps ("t") on the middle ones, and a binding-enclosing
    // finish ("f", bp=e) on the last; the viewer matches them by id
    // and draws arrows between the anchoring slices.
    std::map<std::uint64_t, std::vector<std::size_t>> flows;
    for (std::size_t i = 0; i < spans.size(); i++) {
        if (spans[i].flowId != 0)
            flows[spans[i].flowId].push_back(i);
    }
    for (auto &[id, idx] : flows) {
        if (idx.size() < 2)
            continue; // A single span has nothing to link to.
        std::stable_sort(idx.begin(), idx.end(),
                         [&spans](std::size_t a, std::size_t b) {
                             return spans[a].start < spans[b].start;
                         });
        for (std::size_t k = 0; k < idx.size(); k++) {
            const SpanEvent &s = spans[idx[k]];
            const char *ph = k == 0 ? "s"
                             : k + 1 == idx.size() ? "f"
                                                   : "t";
            const char *bind =
                k + 1 == idx.size() ? ", \"bp\": \"e\"" : "";
            events.push_back(strfmt(
                "{\"name\": \"flow\", \"cat\": \"flow\", "
                "\"ph\": \"%s\", \"id\": %llu, \"ts\": %.3f, "
                "\"pid\": %d, \"tid\": %d%s}",
                ph, static_cast<unsigned long long>(id), s.start * 1e6,
                static_cast<int>(s.group), s.track, bind));
        }
    }

    std::string out = "{\n  \"traceEvents\": [\n";
    for (std::size_t i = 0; i < events.size(); i++) {
        out += "    " + events[i];
        out += i + 1 == events.size() ? "\n" : ",\n";
    }
    out += "  ],\n  \"displayTimeUnit\": \"ms\"\n}\n";
    return out;
}

std::string
metricsJson(const CounterRegistry &registry, const MetricsMeta &meta)
{
    std::map<std::string, json::Value> root;
    root["schema"] = json::Value::makeString(metricsSchema);
    if (!meta.tool.empty())
        root["tool"] = json::Value::makeString(meta.tool);

    std::map<std::string, json::Value> counters;
    // scope -> (category -> seconds), parsed from `attrib.*` names.
    std::map<std::string, std::map<std::string, json::Value>> attrib;
    for (const CounterSnapshot &c : registry.snapshot()) {
        // `runtime.*` counters describe the simulator's own host-side
        // execution (task counts, steals, worker busy time) and vary
        // with --threads and scheduling. The metrics document records
        // what the *simulated device* did, and its determinism contract
        // (docs/runtime.md) is byte-identity at any thread count, so
        // host telemetry stays out; it still appears in the end-of-run
        // counter summary and the Perfetto trace.
        if (c.name.rfind("runtime.", 0) == 0)
            continue;
        // Likewise `replay.*`: the replay cache's hit/miss/evict
        // counts depend on thread count (prefetch windows populate
        // the cache) and on process history, while the cache's
        // *replayed effects* are what keeps the rest of this document
        // bitwise cache-invariant (graph/replay_cache.h).
        if (c.name.rfind("replay.", 0) == 0)
            continue;
        // Attribution counters ("attrib.<scope>.<category>") become
        // the structured v2 section instead of counter entries.
        if (c.name.rfind("attrib.", 0) == 0 &&
            c.name.rfind('.') > 7) {
            const std::size_t dot = c.name.rfind('.');
            const std::string scope =
                c.name.substr(7, dot - 7); // between the dots
            const std::string cat = c.name.substr(dot + 1);
            attrib[scope][cat] = json::Value::makeNumber(c.value);
            continue;
        }
        std::map<std::string, json::Value> entry;
        entry["value"] = json::Value::makeNumber(c.value);
        entry["peak"] = json::Value::makeNumber(c.peak);
        entry["updates"] =
            json::Value::makeNumber(static_cast<double>(c.updates));
        counters[c.name] = json::Value::makeObject(std::move(entry));
    }
    root["counters"] = json::Value::makeObject(std::move(counters));

    if (!attrib.empty()) {
        std::map<std::string, json::Value> scopes;
        for (auto &[scope, cats] : attrib)
            scopes[scope] = json::Value::makeObject(std::move(cats));
        root["attribution"] =
            json::Value::makeObject(std::move(scopes));
    }

    const auto hists = registry.histograms();
    if (!hists.empty()) {
        std::map<std::string, json::Value> section;
        for (const Histogram *h : hists) {
            std::map<std::string, json::Value> entry;
            entry["count"] = json::Value::makeNumber(
                static_cast<double>(h->count()));
            entry["sum"] = json::Value::makeNumber(h->sum());
            entry["min"] = json::Value::makeNumber(h->min());
            entry["max"] = json::Value::makeNumber(h->max());
            entry["mean"] = json::Value::makeNumber(h->mean());
            entry["p50"] = json::Value::makeNumber(h->percentile(50));
            entry["p90"] = json::Value::makeNumber(h->percentile(90));
            entry["p99"] = json::Value::makeNumber(h->percentile(99));
            entry["p999"] =
                json::Value::makeNumber(h->percentile(99.9));
            std::vector<json::Value> buckets;
            for (const Histogram::Bucket &b : h->nonzeroBuckets()) {
                buckets.push_back(json::Value::makeArray(
                    {json::Value::makeNumber(b.lo),
                     json::Value::makeNumber(b.hi),
                     json::Value::makeNumber(
                         static_cast<double>(b.count))}));
            }
            entry["buckets"] =
                json::Value::makeArray(std::move(buckets));
            section[h->name()] =
                json::Value::makeObject(std::move(entry));
        }
        root["histograms"] =
            json::Value::makeObject(std::move(section));
    }

    std::map<std::string, json::Value> rates;
    for (const RateMeter *r : registry.rates()) {
        std::map<std::string, json::Value> entry;
        entry["total"] = json::Value::makeNumber(r->total());
        entry["seconds"] = json::Value::makeNumber(r->elapsed());
        entry["rate"] = json::Value::makeNumber(r->rate());
        rates[r->name()] = json::Value::makeObject(std::move(entry));
    }
    root["rates"] = json::Value::makeObject(std::move(rates));

    if (!meta.benchmarks.empty()) {
        std::map<std::string, json::Value> bm;
        for (const auto &[name, ns] : meta.benchmarks)
            bm[name] = json::Value::makeNumber(ns);
        root["benchmarks"] = json::Value::makeObject(std::move(bm));
    }

    // v2.1 "host" section (--selfprof): the simulator's own settled
    // wall-time attribution, allocation telemetry, and kernel-eval
    // cache counters. Every category is emitted even when zero so the
    // document shape is stable across runs (vespera-stat treats a
    // disappearing metric as a failure).
    if (meta.hostPresent) {
        const SelfLedger &l = meta.host.ledger;
        std::map<std::string, json::Value> host;
        host["total_ns"] = json::Value::makeNumber(
            static_cast<double>(l.totalNs()));
        host["window_ns"] = json::Value::makeNumber(
            static_cast<double>(meta.host.windowNs));
        std::map<std::string, json::Value> time, calls, alloc;
        for (int c = 0; c < kSelfCats; ++c) {
            const auto i = static_cast<std::size_t>(c);
            const char *name =
                selfCatName(static_cast<SelfCat>(c));
            time[name] = json::Value::makeNumber(
                static_cast<double>(l.ns[i]));
            calls[name] = json::Value::makeNumber(
                static_cast<double>(l.calls[i]));
            std::map<std::string, json::Value> a;
            a["bytes"] = json::Value::makeNumber(
                static_cast<double>(l.allocBytes[i]));
            a["count"] = json::Value::makeNumber(
                static_cast<double>(l.allocCount[i]));
            alloc[name] = json::Value::makeObject(std::move(a));
        }
        host["time"] = json::Value::makeObject(std::move(time));
        host["calls"] = json::Value::makeObject(std::move(calls));
        host["alloc"] = json::Value::makeObject(std::move(alloc));
        std::map<std::string, json::Value> cache, ke;
        ke["hits"] = json::Value::makeNumber(
            static_cast<double>(meta.host.cacheHits));
        ke["misses"] = json::Value::makeNumber(
            static_cast<double>(meta.host.cacheMisses));
        ke["key_count"] = json::Value::makeNumber(
            static_cast<double>(meta.host.cacheKeyCount));
        cache["kernel_eval"] = json::Value::makeObject(std::move(ke));
        host["cache"] = json::Value::makeObject(std::move(cache));
        root["host"] = json::Value::makeObject(std::move(host));
    }

    // v2.2 "timeline" section: virtual-time gauge series and SLO
    // monitors (obs/timeline.h), present only when the Timeline is
    // enabled and at least one producer published. Unlike "host" this
    // section is deterministic — samples are keyed by simulated time —
    // so it is diffable across commits with `vespera-stat timeline`.
    const Timeline &timeline = Timeline::instance();
    if (timeline.enabled() && timeline.hasData()) {
        std::map<std::string, json::Value> section;
        section["interval_seconds"] =
            json::Value::makeNumber(timeline.interval());
        std::map<std::string, json::Value> series;
        for (const Timeline::SeriesView &s : timeline.series()) {
            std::map<std::string, json::Value> entry;
            entry["dropped"] = json::Value::makeNumber(
                static_cast<double>(s.dropped));
            std::vector<json::Value> samples;
            samples.reserve(s.samples.size());
            for (const TimelineSample &smp : s.samples) {
                samples.push_back(json::Value::makeArray(
                    {json::Value::makeNumber(smp.t),
                     json::Value::makeNumber(smp.value)}));
            }
            entry["samples"] =
                json::Value::makeArray(std::move(samples));
            series[s.name] = json::Value::makeObject(std::move(entry));
        }
        section["series"] = json::Value::makeObject(std::move(series));
        const auto slo_results = timeline.sloResults();
        if (!slo_results.empty()) {
            std::map<std::string, json::Value> slo;
            for (const SloResult &r : slo_results) {
                std::map<std::string, json::Value> entry;
                entry["bound"] = json::Value::makeNumber(r.bound);
                entry["violated"] = json::Value::makeBool(r.violated);
                // -1 keeps the shape stable when never violated.
                entry["first_violation_seconds"] =
                    json::Value::makeNumber(
                        r.violated ? r.firstViolationT : -1.0);
                entry["first_violation_value"] =
                    json::Value::makeNumber(
                        r.violated ? r.firstViolationValue : -1.0);
                slo[r.gauge] = json::Value::makeObject(std::move(entry));
            }
            section["slo"] = json::Value::makeObject(std::move(slo));
        }
        root["timeline"] = json::Value::makeObject(std::move(section));
    }

    return json::serialize(json::Value::makeObject(std::move(root))) +
           "\n";
}

void
printCounterSummary(const CounterRegistry &registry, std::FILE *out)
{
    const auto counters = registry.snapshot();
    const auto rates = registry.rates();
    const auto hists = registry.histograms();

    bool anyHist = false;
    for (const Histogram *h : hists)
        anyHist = anyHist || h->count() > 0;

    bool any = anyHist || !rates.empty();
    for (const CounterSnapshot &c : counters)
        any = any || c.updates > 0;
    if (!any)
        return;

    printHeading("Device counters", out);
    Table t({"Counter", "Value", "Peak", "Updates"});
    for (const CounterSnapshot &c : counters) {
        if (c.updates == 0)
            continue;
        t.addRow({c.name, Table::num(c.value, 3), Table::num(c.peak, 3),
                  Table::integer(static_cast<long long>(c.updates))});
    }
    if (t.rowCount() > 0)
        t.print(out);

    if (!rates.empty()) {
        Table rt({"Rate meter", "Total", "Seconds", "Rate/s"});
        for (const RateMeter *r : rates) {
            rt.addRow({r->name(), Table::num(r->total(), 3),
                       Table::num(r->elapsed(), 6),
                       Table::num(r->rate(), 3)});
        }
        rt.print(out);
    }

    if (anyHist) {
        Table ht({"Histogram", "Count", "Mean", "p50", "p99", "Max"});
        for (const Histogram *h : hists) {
            if (h->count() == 0)
                continue;
            ht.addRow({h->name(),
                       Table::integer(
                           static_cast<long long>(h->count())),
                       Table::num(h->mean(), 6),
                       Table::num(h->percentile(50), 6),
                       Table::num(h->percentile(99), 6),
                       Table::num(h->max(), 6)});
        }
        ht.print(out);
    }
}

void
printHostSelfProfile(const SelfSnapshot &snap, std::FILE *out)
{
    const SelfLedger &l = snap.ledger;
    const std::uint64_t total = l.totalNs();
    if (total == 0)
        return;

    printHeading("Host self-profile (wall time)", out);
    Table t({"Category", "Self ms", "Share", "Scopes", "Alloc bytes",
             "Allocs"});
    for (int c = 0; c < kSelfCats; ++c) {
        const auto i = static_cast<std::size_t>(c);
        if (l.ns[i] == 0 && l.calls[i] == 0 && l.allocBytes[i] == 0 &&
            l.allocCount[i] == 0)
            continue;
        t.addRow({selfCatName(static_cast<SelfCat>(c)),
                  Table::num(static_cast<double>(l.ns[i]) * 1e-6, 3),
                  strfmt("%5.1f%%", 100.0 *
                                        static_cast<double>(l.ns[i]) /
                                        static_cast<double>(total)),
                  Table::integer(static_cast<long long>(l.calls[i])),
                  Table::integer(
                      static_cast<long long>(l.allocBytes[i])),
                  Table::integer(
                      static_cast<long long>(l.allocCount[i]))});
    }
    t.addRow({"total",
              Table::num(static_cast<double>(total) * 1e-6, 3),
              "100.0%", "", "", ""});
    t.print(out);

    if (snap.cacheHits + snap.cacheMisses > 0) {
        std::fprintf(
            out,
            "kernel-eval cache: %llu hits / %llu misses (%llu keys)\n",
            static_cast<unsigned long long>(snap.cacheHits),
            static_cast<unsigned long long>(snap.cacheMisses),
            static_cast<unsigned long long>(snap.cacheKeyCount));
    }
}

void
publishHostSelfProfile(const SelfSnapshot &snap, Profiler &profiler)
{
    if (!profiler.enabled())
        return;
    const SelfLedger &l = snap.ledger;
    const Seconds window =
        static_cast<double>(snap.windowNs) * 1e-9;
    for (int c = 0; c < kSelfCats; ++c) {
        const auto i = static_cast<std::size_t>(c);
        if (l.ns[i] == 0)
            continue;
        const std::string track =
            std::string("selfprof.") +
            selfCatName(static_cast<SelfCat>(c)) + ".ms";
        // Two samples per track — zero at the window start and the
        // cumulative self time at its end — so the counter renders as
        // a ramp spanning the run next to the Host span lanes.
        profiler.sample(TrackGroup::Host, track, 0.0, 0.0);
        profiler.sample(TrackGroup::Host, track, window,
                        static_cast<double>(l.ns[i]) * 1e-6);
    }
}

} // namespace vespera::obs
