#include "obs/export.h"

#include <algorithm>

#include "common/json.h"
#include "common/logging.h"
#include "common/table.h"

namespace vespera::obs {

namespace {

/** JSON string-escape for event names (quotes/backslashes/control). */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

const char *
groupName(TrackGroup g)
{
    return g == TrackGroup::Device ? "Device (simulated time)"
                                   : "Host (simulator wall time)";
}

} // namespace

std::string
chromeTraceJson(const Profiler &profiler)
{
    const auto spans = profiler.spans();
    const auto samples = profiler.samples();
    const auto names = profiler.trackNames();

    std::vector<std::string> events;
    events.reserve(spans.size() + samples.size() + names.size() + 2);

    // Process-name metadata for each track group in use.
    bool groupUsed[2] = {false, false};
    for (const SpanEvent &s : spans)
        groupUsed[s.group == TrackGroup::Host] = true;
    if (!samples.empty())
        groupUsed[0] = true; // Counter samples live in simulated time.
    for (int g = 0; g < 2; g++) {
        if (!groupUsed[g])
            continue;
        const TrackGroup group =
            g == 0 ? TrackGroup::Device : TrackGroup::Host;
        events.push_back(strfmt(
            "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, "
            "\"args\": {\"name\": \"%s\"}}",
            static_cast<int>(group), groupName(group)));
    }
    for (const auto &[key, label] : names) {
        events.push_back(strfmt(
            "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": %d, "
            "\"tid\": %d, \"args\": {\"name\": \"%s\"}}",
            key.first, key.second, escape(label).c_str()));
    }

    for (const SpanEvent &s : spans) {
        events.push_back(strfmt(
            "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
            "\"ts\": %.3f, \"dur\": %.3f, \"pid\": %d, \"tid\": %d}",
            escape(s.name).c_str(), escape(s.category).c_str(),
            s.start * 1e6, s.duration * 1e6,
            static_cast<int>(s.group), s.track));
    }

    // Counter tracks: one "C" event per sample; Perfetto groups them
    // by name into per-counter tracks under the Device process.
    for (const TrackSample &c : samples) {
        events.push_back(strfmt(
            "{\"name\": \"%s\", \"ph\": \"C\", \"ts\": %.3f, "
            "\"pid\": %d, \"args\": {\"value\": %.6g}}",
            escape(c.track).c_str(), c.t * 1e6,
            static_cast<int>(TrackGroup::Device), c.value));
    }

    std::string out = "{\n  \"traceEvents\": [\n";
    for (std::size_t i = 0; i < events.size(); i++) {
        out += "    " + events[i];
        out += i + 1 == events.size() ? "\n" : ",\n";
    }
    out += "  ],\n  \"displayTimeUnit\": \"ms\"\n}\n";
    return out;
}

std::string
metricsJson(const CounterRegistry &registry, const MetricsMeta &meta)
{
    std::map<std::string, json::Value> root;
    root["schema"] = json::Value::makeString(metricsSchema);
    if (!meta.tool.empty())
        root["tool"] = json::Value::makeString(meta.tool);

    std::map<std::string, json::Value> counters;
    for (const CounterSnapshot &c : registry.snapshot()) {
        // `runtime.*` counters describe the simulator's own host-side
        // execution (task counts, steals, worker busy time) and vary
        // with --threads and scheduling. The metrics document records
        // what the *simulated device* did, and its determinism contract
        // (docs/runtime.md) is byte-identity at any thread count, so
        // host telemetry stays out; it still appears in the end-of-run
        // counter summary and the Perfetto trace.
        if (c.name.rfind("runtime.", 0) == 0)
            continue;
        std::map<std::string, json::Value> entry;
        entry["value"] = json::Value::makeNumber(c.value);
        entry["peak"] = json::Value::makeNumber(c.peak);
        entry["updates"] =
            json::Value::makeNumber(static_cast<double>(c.updates));
        counters[c.name] = json::Value::makeObject(std::move(entry));
    }
    root["counters"] = json::Value::makeObject(std::move(counters));

    std::map<std::string, json::Value> rates;
    for (const RateMeter *r : registry.rates()) {
        std::map<std::string, json::Value> entry;
        entry["total"] = json::Value::makeNumber(r->total());
        entry["seconds"] = json::Value::makeNumber(r->elapsed());
        entry["rate"] = json::Value::makeNumber(r->rate());
        rates[r->name()] = json::Value::makeObject(std::move(entry));
    }
    root["rates"] = json::Value::makeObject(std::move(rates));

    if (!meta.benchmarks.empty()) {
        std::map<std::string, json::Value> bm;
        for (const auto &[name, ns] : meta.benchmarks)
            bm[name] = json::Value::makeNumber(ns);
        root["benchmarks"] = json::Value::makeObject(std::move(bm));
    }

    return json::serialize(json::Value::makeObject(std::move(root))) +
           "\n";
}

void
printCounterSummary(const CounterRegistry &registry, std::FILE *out)
{
    const auto counters = registry.snapshot();
    const auto rates = registry.rates();

    bool any = false;
    for (const CounterSnapshot &c : counters)
        any = any || c.updates > 0;
    any = any || !rates.empty();
    if (!any)
        return;

    printHeading("Device counters", out);
    Table t({"Counter", "Value", "Peak", "Updates"});
    for (const CounterSnapshot &c : counters) {
        if (c.updates == 0)
            continue;
        t.addRow({c.name, Table::num(c.value, 3), Table::num(c.peak, 3),
                  Table::integer(static_cast<long long>(c.updates))});
    }
    if (t.rowCount() > 0)
        t.print(out);

    if (!rates.empty()) {
        Table rt({"Rate meter", "Total", "Seconds", "Rate/s"});
        for (const RateMeter *r : rates) {
            rt.addRow({r->name(), Table::num(r->total(), 3),
                       Table::num(r->elapsed(), 6),
                       Table::num(r->rate(), 3)});
        }
        rt.print(out);
    }
}

} // namespace vespera::obs
