/**
 * @file
 * Telemetry exporters: the three ways a run's observability data
 * leaves the process.
 *
 *  1. chromeTraceJson — Chrome/Perfetto trace with spans *and* counter
 *     tracks interleaved (open at ui.perfetto.dev), the view the paper
 *     reasoned from when reverse-engineering the Gaudi graph compiler.
 *  2. metricsJson — schema-versioned machine-readable document
 *     (`vespera-metrics/v1`) for BENCH_*.json-style trajectory
 *     tracking across commits.
 *  3. printCounterSummary — human-readable end-of-run table.
 */

#ifndef VESPERA_OBS_EXPORT_H
#define VESPERA_OBS_EXPORT_H

#include <cstdio>
#include <map>
#include <string>

#include "obs/counters.h"
#include "obs/profiler.h"

namespace vespera::obs {

/** Schema identifier stamped into every metrics document. */
inline constexpr const char *metricsSchema = "vespera-metrics/v1";

/**
 * Chrome-trace JSON of everything the profiler recorded: spans as
 * "X" events, counter samples as "C" (counter-track) events, and
 * process/thread-name metadata for the Device and Host track groups.
 */
std::string chromeTraceJson(const Profiler &profiler);

/** Tool-specific fields accompanying a metrics export. */
struct MetricsMeta
{
    /** Producing binary ("bench_fig8_stream", "profile_step", ...). */
    std::string tool;
    /** Optional google-benchmark results: name -> real time (ns). */
    std::map<std::string, double> benchmarks;
};

/**
 * The `vespera-metrics/v1` document: schema/tool identification, every
 * registered counter (value, peak, update count), every rate meter
 * (total, elapsed, rate), and optional benchmark timings.
 */
std::string metricsJson(const CounterRegistry &registry,
                        const MetricsMeta &meta);

/**
 * Print the nonzero counters and all rate meters as an aligned table.
 * No-op when nothing was recorded.
 */
void printCounterSummary(const CounterRegistry &registry,
                         std::FILE *out = stdout);

} // namespace vespera::obs

#endif // VESPERA_OBS_EXPORT_H
