/**
 * @file
 * Telemetry exporters: the three ways a run's observability data
 * leaves the process.
 *
 *  1. chromeTraceJson — Chrome/Perfetto trace with spans *and* counter
 *     tracks interleaved (open at ui.perfetto.dev), the view the paper
 *     reasoned from when reverse-engineering the Gaudi graph compiler.
 *  2. metricsJson — schema-versioned machine-readable document
 *     (`vespera-metrics/v2`) for BENCH_*.json-style trajectory
 *     tracking across commits (diff two with tools/vespera-stat).
 *  3. printCounterSummary — human-readable end-of-run table.
 */

#ifndef VESPERA_OBS_EXPORT_H
#define VESPERA_OBS_EXPORT_H

#include <cstdio>
#include <map>
#include <string>

#include "obs/counters.h"
#include "obs/profiler.h"
#include "obs/selfprof.h"

namespace vespera::obs {

/**
 * Schema identifier stamped into every metrics document. v2 adds the
 * "histograms" (streaming latency distributions, obs/hist.h) and
 * "attribution" (per-scope category totals, obs/attrib.h) sections and
 * moves `attrib.*` counters out of "counters" into the latter;
 * consumers of v1 documents keep working — v2 is a superset plus that
 * one relocation. v2.1 adds the *optional* "host" section (simulator
 * self-profile, obs/selfprof.h), present only when the producer ran
 * with --selfprof; v2 readers that ignore unknown sections keep
 * working, and absent the flag the document is byte-for-byte what v2
 * produced apart from the schema string. v2.2 adds the *optional*
 * "timeline" section (virtual-time gauge series and SLO monitors,
 * obs/timeline.h), present only when the Timeline is enabled and a
 * producer published a run; unlike "host", the section is covered by
 * the determinism contract — its samples are keyed by simulated time
 * and are byte-identical at any thread count.
 */
inline constexpr const char *metricsSchema = "vespera-metrics/v2.2";

/**
 * Chrome-trace JSON of everything the profiler recorded: spans as
 * "X" events, counter samples as "C" (counter-track) events,
 * process/thread-name metadata for the Device and Host track groups,
 * and flow arrows ("s"/"t"/"f" events) linking spans that share a
 * nonzero SpanEvent::flowId — how one serving request is followed
 * across lanes in ui.perfetto.dev.
 */
std::string chromeTraceJson(const Profiler &profiler);

/** Tool-specific fields accompanying a metrics export. */
struct MetricsMeta
{
    /** Producing binary ("bench_fig8_stream", "profile_step", ...). */
    std::string tool;
    /** Optional google-benchmark results: name -> real time (ns). */
    std::map<std::string, double> benchmarks;
    /** Optional settled self-profile (--selfprof): becomes the v2.1
        "host" section. Host wall times vary with the machine, and
        cache hit/miss splits vary with --threads, so the section is
        strictly opt-in — the determinism contract (docs/runtime.md)
        covers documents produced without it. */
    SelfSnapshot host;
    bool hostPresent = false;
};

/**
 * The `vespera-metrics/v2` document: schema/tool identification, every
 * registered counter (value, peak, update count), every rate meter
 * (total, elapsed, rate), every histogram (count/sum/min/max/quantiles
 * plus nonzero buckets), the attribution section (scope -> category ->
 * seconds, from the `attrib.*` counters), and optional benchmark
 * timings.
 */
std::string metricsJson(const CounterRegistry &registry,
                        const MetricsMeta &meta);

/**
 * Print the nonzero counters and all rate meters as an aligned table.
 * No-op when nothing was recorded.
 */
void printCounterSummary(const CounterRegistry &registry,
                         std::FILE *out = stdout);

/**
 * Print a settled self-profile (--selfprof) as an aligned table: per
 * category the self time, share of the window, scope count, and
 * allocation bytes/events, plus the kernel-eval cache line.
 */
void printHostSelfProfile(const SelfSnapshot &snap,
                          std::FILE *out = stdout);

/**
 * Publish a settled self-profile as counter tracks on the Host group
 * of `profiler` (one `selfprof.<cat>.ms` track per nonzero category,
 * sampled at the window edges), next to the ScopedSpan host lanes.
 * No-op when the profiler is disabled.
 */
void publishHostSelfProfile(const SelfSnapshot &snap,
                            Profiler &profiler);

} // namespace vespera::obs

#endif // VESPERA_OBS_EXPORT_H
