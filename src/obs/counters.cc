#include "obs/counters.h"

#include <algorithm>

#include "obs/capture.h"

namespace vespera::obs {

namespace {

/** Portable atomic double accumulate (CAS loop; relaxed is enough —
 *  counters are statistics, not synchronization). */
void
atomicAdd(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + v,
                                    std::memory_order_relaxed)) {
    }
}

void
atomicMax(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (cur < v &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

} // namespace

void
Counter::add(double v)
{
    if (SideEffectLog *log = ScopedCapture::current()) {
        log->append({SideEffectOp::Kind::CounterAdd, this, v, 0, {}});
        return;
    }
    atomicAdd(value_, v);
    updates_.fetch_add(1, std::memory_order_relaxed);
    bumpPeak(value_.load(std::memory_order_relaxed));
}

void
Counter::set(double v)
{
    if (SideEffectLog *log = ScopedCapture::current()) {
        log->append({SideEffectOp::Kind::CounterSet, this, v, 0, {}});
        return;
    }
    value_.store(v, std::memory_order_relaxed);
    updates_.fetch_add(1, std::memory_order_relaxed);
    bumpPeak(v);
}

void
Counter::bumpPeak(double candidate)
{
    atomicMax(peak_, candidate);
}

void
Counter::reset()
{
    value_.store(0.0, std::memory_order_relaxed);
    peak_.store(0.0, std::memory_order_relaxed);
    updates_.store(0, std::memory_order_relaxed);
}

void
RateMeter::add(double amount, Seconds dt)
{
    if (SideEffectLog *log = ScopedCapture::current()) {
        log->append({SideEffectOp::Kind::RateAdd, this, amount, dt, {}});
        return;
    }
    atomicAdd(total_, amount);
    if (dt > 0)
        atomicAdd(elapsed_, dt);
}

double
RateMeter::rate() const
{
    const double t = elapsed();
    return t > 0 ? total() / t : 0.0;
}

void
RateMeter::reset()
{
    total_.store(0.0, std::memory_order_relaxed);
    elapsed_.store(0.0, std::memory_order_relaxed);
}

CounterRegistry &
CounterRegistry::instance()
{
    static CounterRegistry registry;
    return registry;
}

Counter &
CounterRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        it = counters_.emplace(name, std::make_unique<Counter>(name))
                 .first;
    }
    return *it->second;
}

RateMeter &
CounterRegistry::rate(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = rates_.find(name);
    if (it == rates_.end()) {
        it = rates_.emplace(name, std::make_unique<RateMeter>(name))
                 .first;
    }
    return *it->second;
}

Histogram &
CounterRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_
                 .emplace(name, std::make_unique<Histogram>(name))
                 .first;
    }
    return *it->second;
}

const Counter *
CounterRegistry::find(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : it->second.get();
}

const RateMeter *
CounterRegistry::findRate(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = rates_.find(name);
    return it == rates_.end() ? nullptr : it->second.get();
}

const Histogram *
CounterRegistry::findHistogram(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : it->second.get();
}

double
CounterRegistry::rollup(const std::string &prefix) const
{
    std::lock_guard<std::mutex> lock(mu_);
    double sum = 0;
    const std::string subtree = prefix + ".";
    for (const auto &[name, c] : counters_) {
        if (name == prefix ||
            name.compare(0, subtree.size(), subtree) == 0) {
            sum += c->value();
        }
    }
    return sum;
}

std::vector<CounterSnapshot>
CounterRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<CounterSnapshot> out;
    out.reserve(counters_.size());
    for (const auto &[name, c] : counters_) {
        out.push_back({name, c->value(), c->peak(), c->updates()});
    }
    return out;
}

std::vector<const RateMeter *>
CounterRegistry::rates() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<const RateMeter *> out;
    out.reserve(rates_.size());
    for (const auto &[name, r] : rates_)
        out.push_back(r.get());
    return out;
}

std::vector<const Histogram *>
CounterRegistry::histograms() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<const Histogram *> out;
    out.reserve(histograms_.size());
    for (const auto &[name, h] : histograms_)
        out.push_back(h.get());
    return out;
}

void
CounterRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, r] : rates_)
        r->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

std::size_t
CounterRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_.size();
}

} // namespace vespera::obs
