/**
 * @file
 * Deferred counter side effects — the mechanism behind the parallel
 * runtime's determinism contract (docs/runtime.md).
 *
 * Counter totals are doubles, and double addition is not associative:
 * letting worker threads race `Counter::add` calls would make the
 * final bits depend on the interleaving, so `--metrics` JSON could
 * never be byte-identical across thread counts. Instead, a task that
 * must stay deterministic runs under a ScopedCapture: every
 * Counter/RateMeter update on that thread is appended to a private
 * SideEffectLog instead of touching the shared atomics. After the
 * fork/join point, the runtime replays the logs in task-index order —
 * exactly the sequence a serial execution would have produced — so
 * values, peaks, and update counts come out bit-identical at any
 * thread count.
 *
 * Replay goes back through the public Counter/RateMeter API, so a
 * replay performed inside an enclosing capture (nested parallel_for)
 * simply appends to the outer log; nesting composes with no special
 * cases.
 */

#ifndef VESPERA_OBS_CAPTURE_H
#define VESPERA_OBS_CAPTURE_H

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace vespera::obs {

class Counter;
class RateMeter;

/** One deferred Counter/RateMeter update. */
struct SideEffectOp
{
    enum class Kind : std::uint8_t {
        CounterAdd, ///< Counter::add(a)
        CounterSet, ///< Counter::set(a)
        RateAdd,    ///< RateMeter::add(a, b)
        Deferred,   ///< fn() — an order-dependent decision (see below)
    };
    Kind kind = Kind::CounterAdd;
    void *target = nullptr; ///< The Counter/RateMeter (never dangles:
                            ///< the registry owns them for process life).
    double a = 0;
    double b = 0;
    /// Kind::Deferred only. Some telemetry is not a plain accumulation
    /// but a decision over *call order* (e.g. `mme.reconfigs` fires
    /// when one GEMM's geometry differs from the previous call's).
    /// Such a decision made on a worker thread would depend on the
    /// interleaving, so it is logged as a closure instead and executed
    /// only at the *outermost* replay: replay under an enclosing
    /// capture re-appends the op rather than running it, so the
    /// closure always runs serially, in task-index order.
    std::function<void()> fn;
};

/**
 * An ordered log of counter updates recorded by one captured task.
 * Not thread-safe: each log belongs to exactly one task at a time.
 */
class SideEffectLog
{
  public:
    /**
     * Apply the ops in recorded order and clear the log. Runs through
     * the public API, so replay under an active capture nests.
     */
    void replay();

    bool empty() const { return ops_.empty(); }
    std::size_t size() const { return ops_.size(); }
    void clear() { ops_.clear(); }

    void append(SideEffectOp op) { ops_.push_back(std::move(op)); }

    /** Log an order-dependent decision to run at the outermost replay. */
    void appendDeferred(std::function<void()> fn)
    {
        SideEffectOp op;
        op.kind = SideEffectOp::Kind::Deferred;
        op.fn = std::move(fn);
        ops_.push_back(std::move(op));
    }

  private:
    std::vector<SideEffectOp> ops_;
};

/**
 * RAII: while alive, every Counter/RateMeter update made by *this
 * thread* is appended to `log` instead of applied. Captures nest by
 * shadowing (inner capture wins until destroyed).
 */
class ScopedCapture
{
  public:
    explicit ScopedCapture(SideEffectLog &log);
    ~ScopedCapture();

    ScopedCapture(const ScopedCapture &) = delete;
    ScopedCapture &operator=(const ScopedCapture &) = delete;

    /** The log capturing this thread's updates, or nullptr if live. */
    static SideEffectLog *current();

  private:
    SideEffectLog *prev_;
};

/**
 * RAII: while alive, counter updates by this thread go straight to
 * the shared atomics even under an enclosing ScopedCapture. For
 * host-side bookkeeping (e.g. the replay cache's own hit/miss/evict
 * counters) that must reflect what the process actually did: such
 * counters are excluded from the deterministic metrics document, and
 * deferring them into a capture log would lose them entirely when the
 * log is never replayed (an unread prefetch window) or double-count
 * them when a stored log is replayed per cache hit.
 */
class CaptureBypass
{
  public:
    CaptureBypass();
    ~CaptureBypass();

    CaptureBypass(const CaptureBypass &) = delete;
    CaptureBypass &operator=(const CaptureBypass &) = delete;

  private:
    SideEffectLog *prev_;
};

} // namespace vespera::obs

#endif // VESPERA_OBS_CAPTURE_H
