/**
 * @file
 * Cycle-attribution ledger: *why* simulated time was spent.
 *
 * PR 1's spans and counters record that a kernel took N simulated
 * seconds; the paper's analytical core (Figs. 4-9, §IV) instead argues
 * about *composition* — how much of a GEMM was MAC-array compute vs
 * exposed HBM stall vs launch/reconfigure overhead. This ledger gives
 * every device model a place to charge each op's wall time to the
 * category taxonomy below, with a hard invariant: the categories of
 * one op sum bitwise-exactly to the op's wall time (ctest-enforced on
 * the full Fig. 5 GEMM sweep).
 *
 * Two outputs:
 *  - Aggregate per-scope totals, published as capture-aware counters
 *    `attrib.<scope>.<category>` (plus `attrib.<scope>.ops`), exported
 *    as the structured "attribution" section of vespera-metrics/v2.
 *    These follow the counter determinism contract (docs/runtime.md)
 *    with no extra machinery.
 *  - Optional per-op attributed spans on dedicated Device lanes of the
 *    process profiler (only when tracing is enabled), so a Perfetto
 *    view shows the op sequence per engine. Models are stateless cost
 *    functions with no global clock, so these lanes are
 *    *op-sequential*: each scope's ops are laid end to end from t=0 in
 *    charge order, not aligned to an engine/sweep timeline.
 *
 * Determinism: aggregate charges ride the normal Counter::add capture
 * path. The per-op span/lane-cursor mutation is order-dependent state
 * (like `mme.reconfigs`), so under an active ScopedCapture it is
 * logged as a Deferred op and runs at the outermost replay, serially,
 * in task-index order.
 */

#ifndef VESPERA_OBS_ATTRIB_H
#define VESPERA_OBS_ATTRIB_H

#include <array>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"

namespace vespera::obs {

class Counter;

/** Where one op's simulated time went. */
enum class AttribCat : int {
    Compute = 0,    ///< Useful engine work (MAC array, vector ALU busy).
    MemoryBw = 1,   ///< Bandwidth-bound stall exposed beyond compute.
    ExposedLat = 2, ///< Unhidden fixed latency (launch, access ramp).
    Reconfig = 3,   ///< Geometry/pipeline reconfiguration penalty.
    Idle = 4,       ///< Allocated-but-unused engine time (slot imbalance).
};

inline constexpr int kAttribCats = 5;

/** Stable dotted-name component for each category. */
const char *attribCatName(AttribCat cat);

/**
 * One op's time split across categories. Plain value type; the model
 * fills in the components it can derive and then calls settle() to
 * absorb floating-point residue so the parts sum bitwise to the op's
 * wall time.
 */
struct AttribBreakdown
{
    std::array<double, kAttribCats> seconds{};

    double &operator[](AttribCat cat)
    {
        return seconds[static_cast<std::size_t>(cat)];
    }
    double operator[](AttribCat cat) const
    {
        return seconds[static_cast<std::size_t>(cat)];
    }

    /** Fixed-order sum (deterministic bits). */
    double sum() const;

    /**
     * Make sum() reproduce `total`. The `residual` category is set to
     * total minus the others (clamped at 0); any remaining fp residue
     * is folded into the largest component and refined by ulps.
     * Bitwise whenever `total` derives from sums of the components —
     * every model path; property-tested — and within one ulp for
     * rounding-adversarial totals (tie-to-even can make the exact bits
     * unreachable; an assert guards anything worse). Components must
     * already be non-negative and their sum ~<= total. Downstream, the
     * ledger invariant is unconditional: AttributedSpan::duration is
     * *defined* as the settled sum.
     */
    void settle(AttribCat residual, Seconds total);
};

/** One attributed op, as stored for tests/exporters. */
struct AttributedSpan
{
    int scope = 0;          ///< Scope id from AttributionLedger::scope().
    std::string name;       ///< Op label ("gemm 4096x4096x4096 bf16").
    Seconds start = 0;      ///< Op-sequential lane time, not sim time.
    Seconds duration = 0;   ///< == breakdown.sum(), bitwise.
    AttribBreakdown breakdown;
};

/**
 * Process-wide attribution sink. Scopes ("mme", "tc", "tpc", "hbm")
 * register once and charge per-op breakdowns; see file comment for
 * the two outputs and the determinism story.
 */
class AttributionLedger
{
  public:
    static AttributionLedger &instance();

    AttributionLedger() = default;
    AttributionLedger(const AttributionLedger &) = delete;
    AttributionLedger &operator=(const AttributionLedger &) = delete;

    /// First profiler Device lane used for attribution scopes (serve
    /// tracing owns lanes 1-5; engine request-flow lanes start at 31).
    static constexpr int kFirstLane = 6;

    /**
     * Register (or look up) a scope by name; cheap to call per op but
     * models should cache the id. Pre-creates the scope's
     * `attrib.<name>.*` counters so they exist even before any charge.
     */
    int scope(const std::string &name);

    /**
     * Charge one op. `b` must be settled (duration := b.sum()).
     * Aggregates go to the scope's counters (capture-aware); when the
     * process profiler is enabled, also appends an AttributedSpan and
     * a matching profiler Device-lane span (deferred under capture).
     */
    void charge(int scopeId, std::string opName, const AttribBreakdown &b);

    /** Stored per-op spans (tracing-enabled runs only). */
    std::vector<AttributedSpan> records() const;

    /** Registered scope names, id-ordered. */
    std::vector<std::string> scopeNames() const;

    /** Drop per-op spans and lane cursors (counters are untouched). */
    void clearRecords();

  private:
    struct Scope
    {
        std::string name;
        int lane = 0;
        Seconds cursor = 0; ///< Next op's lane start.
        std::array<Counter *, kAttribCats> cats{};
        Counter *ops = nullptr;
    };

    void applySpan(int scopeId, std::string opName,
                   const AttribBreakdown &b);

    mutable std::mutex mu_;
    std::vector<Scope> scopes_;
    std::vector<AttributedSpan> records_;
};

} // namespace vespera::obs

#endif // VESPERA_OBS_ATTRIB_H
