#include "obs/attrib.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "obs/capture.h"
#include "obs/counters.h"
#include "obs/profiler.h"

namespace vespera::obs {

const char *attribCatName(AttribCat cat)
{
    switch (cat) {
    case AttribCat::Compute:
        return "compute";
    case AttribCat::MemoryBw:
        return "memory_bw";
    case AttribCat::ExposedLat:
        return "exposed_latency";
    case AttribCat::Reconfig:
        return "reconfig";
    case AttribCat::Idle:
        return "idle";
    }
    return "unknown";
}

double AttribBreakdown::sum() const
{
    // Fixed left-to-right order: the bits of the total must not depend
    // on which components happen to be nonzero.
    double s = 0;
    for (double v : seconds)
        s += v;
    return s;
}

void AttribBreakdown::settle(AttribCat residual, Seconds total)
{
    double &r = (*this)[residual];
    r = 0;
    r = std::max(0.0, total - sum());
    // Fold the fp residue into the largest component, then refine by
    // single ulps until the fixed-order sum reproduces `total`
    // bitwise. The coarse fold alone can oscillate around `total` when
    // the largest component sits early in the sum chain; an ulp step
    // on the largest addend moves the rounded sum by at most one ulp,
    // so the refinement cannot skip past the target.
    for (int pass = 0; pass < 64; ++pass) {
        const double d = total - sum();
        if (d == 0.0)
            return;
        auto it = std::max_element(seconds.begin(), seconds.end());
        const double folded = std::max(0.0, *it + d);
        if (pass == 0 && folded != *it) {
            *it = folded;
            continue;
        }
        const double next = std::nextafter(
            *it, d > 0 ? std::numeric_limits<double>::infinity() : 0.0);
        if (next == *it || next < 0)
            break;
        *it = next;
    }
    vassert(std::abs(total - sum()) <=
                1e-9 * std::max(std::abs(total), 1e-30),
            "attribution breakdown cannot reach op total");
}

AttributionLedger &AttributionLedger::instance()
{
    static AttributionLedger ledger;
    return ledger;
}

int AttributionLedger::scope(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < scopes_.size(); ++i)
        if (scopes_[i].name == name)
            return static_cast<int>(i);
    Scope s;
    s.name = name;
    s.lane = kFirstLane + static_cast<int>(scopes_.size());
    auto &reg = CounterRegistry::instance();
    for (int c = 0; c < kAttribCats; ++c)
        s.cats[static_cast<std::size_t>(c)] = &reg.counter(
            "attrib." + name + "." +
            attribCatName(static_cast<AttribCat>(c)));
    s.ops = &reg.counter("attrib." + name + ".ops");
    scopes_.push_back(std::move(s));
    return static_cast<int>(scopes_.size()) - 1;
}

void AttributionLedger::charge(int scopeId, std::string opName,
                               const AttribBreakdown &b)
{
    // Copy the counter pointers out under the lock: scopes_ may
    // reallocate on concurrent scope() registration, but the Counters
    // themselves are registry-owned and never move.
    std::array<Counter *, kAttribCats> cats{};
    Counter *ops = nullptr;
    {
        std::lock_guard<std::mutex> lock(mu_);
        vassert(scopeId >= 0 &&
                    scopeId < static_cast<int>(scopes_.size()),
                "unregistered attribution scope");
        cats = scopes_[static_cast<std::size_t>(scopeId)].cats;
        ops = scopes_[static_cast<std::size_t>(scopeId)].ops;
    }
    // Aggregates ride the normal capture-aware counter path.
    for (int c = 0; c < kAttribCats; ++c) {
        const double v = b.seconds[static_cast<std::size_t>(c)];
        if (v != 0.0)
            cats[static_cast<std::size_t>(c)]->add(v);
    }
    ops->add(1.0);

    // Per-op span records mutate the scope's lane cursor — order-
    // dependent state, so defer under capture like mme.reconfigs.
    if (!Profiler::instance().enabled())
        return;
    if (SideEffectLog *log = ScopedCapture::current()) {
        log->appendDeferred(
            [this, scopeId, name = std::move(opName), b]() mutable {
                applySpan(scopeId, std::move(name), b);
            });
    } else {
        applySpan(scopeId, std::move(opName), b);
    }
}

void AttributionLedger::applySpan(int scopeId, std::string opName,
                                  const AttribBreakdown &b)
{
    auto &profiler = Profiler::instance();
    SpanEvent e;
    {
        std::lock_guard<std::mutex> lock(mu_);
        Scope &s = scopes_[static_cast<std::size_t>(scopeId)];
        AttributedSpan rec;
        rec.scope = scopeId;
        rec.name = opName;
        rec.start = s.cursor;
        rec.duration = b.sum();
        rec.breakdown = b;
        s.cursor += rec.duration;
        records_.push_back(rec);

        e.name = std::move(opName);
        e.category = "attrib." + s.name;
        e.group = TrackGroup::Device;
        e.track = s.lane;
        e.start = rec.start;
        e.duration = rec.duration;
        profiler.nameTrack(TrackGroup::Device, s.lane,
                           s.name + " attrib");
    }
    profiler.recordSpan(std::move(e));
}

std::vector<AttributedSpan> AttributionLedger::records() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return records_;
}

std::vector<std::string> AttributionLedger::scopeNames() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(scopes_.size());
    for (const Scope &s : scopes_)
        out.push_back(s.name);
    return out;
}

void AttributionLedger::clearRecords()
{
    std::lock_guard<std::mutex> lock(mu_);
    records_.clear();
    for (Scope &s : scopes_)
        s.cursor = 0;
}

} // namespace vespera::obs
