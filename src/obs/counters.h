/**
 * @file
 * Process-wide registry of named device counters.
 *
 * The role the Intel Gaudi Profiler's hardware counters play in the
 * paper (Section 3.2): every engine model publishes what it did —
 * `mme.flops`, `tpc.stall_cycles`, `hbm.bytes_read`, `kv.blocks_in_use`
 * — into one flat namespace with dotted hierarchical names, and the
 * exporters (obs/export.h) turn a snapshot into the metrics JSON,
 * Perfetto counter tracks, and the end-of-run summary table.
 *
 * Counters are cheap enough to leave always-on in model hot paths:
 * lookup happens once (cache the reference), updates are lock-free
 * atomics.
 */

#ifndef VESPERA_OBS_COUNTERS_H
#define VESPERA_OBS_COUNTERS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/hist.h"

namespace vespera::obs {

/**
 * One named counter. `add` accumulates a monotonic total; `set` gives
 * gauge semantics (last value wins). Both maintain a high-water mark
 * and an update count. All updates are lock-free and thread-safe.
 *
 * Under an active obs::ScopedCapture (see capture.h) updates on that
 * thread are deferred into the capture's SideEffectLog instead of
 * applied — how the parallel runtime keeps counter totals
 * bit-identical at any thread count.
 */
class Counter
{
  public:
    explicit Counter(std::string name) : name_(std::move(name)) {}

    /** Accumulate `v` into the total (thread-safe). */
    void add(double v = 1.0);

    /** Gauge write: replace the value, update the high-water mark. */
    void set(double v);

    double value() const { return value_.load(std::memory_order_relaxed); }

    /** Largest value ever observed (gauge high-water mark). */
    double peak() const { return peak_.load(std::memory_order_relaxed); }

    /** Number of add/set calls since construction or reset. */
    std::uint64_t updates() const
    {
        return updates_.load(std::memory_order_relaxed);
    }

    const std::string &name() const { return name_; }

    void reset();

  private:
    void bumpPeak(double candidate);

    const std::string name_;
    std::atomic<double> value_{0.0};
    std::atomic<double> peak_{0.0};
    std::atomic<std::uint64_t> updates_{0};
};

/**
 * Accumulates (amount, elapsed) pairs and exposes the mean rate —
 * e.g. achieved HBM GB/s over the bytes a model actually moved.
 * Thread-safe like Counter.
 */
class RateMeter
{
  public:
    explicit RateMeter(std::string name) : name_(std::move(name)) {}

    /** Record `amount` units transferred/produced over `dt` seconds. */
    void add(double amount, Seconds dt);

    double total() const { return total_.load(std::memory_order_relaxed); }
    Seconds elapsed() const
    {
        return elapsed_.load(std::memory_order_relaxed);
    }

    /** Mean rate in units/second (0 before any time elapsed). */
    double rate() const;

    const std::string &name() const { return name_; }

    void reset();

  private:
    const std::string name_;
    std::atomic<double> total_{0.0};
    std::atomic<double> elapsed_{0.0};
};

/** Point-in-time view of one counter (see CounterRegistry::snapshot). */
struct CounterSnapshot
{
    std::string name;
    double value = 0;
    double peak = 0;
    std::uint64_t updates = 0;
};

/**
 * The process-wide counter namespace. Names are dotted paths
 * ("engine.prefill.tokens"); the registry supports subtree rollups over
 * that hierarchy. Registration is mutex-guarded; returned references
 * stay valid for the process lifetime (reset zeroes, never removes).
 */
class CounterRegistry
{
  public:
    /** The process-wide instance every model reports into. */
    static CounterRegistry &instance();

    CounterRegistry() = default;
    CounterRegistry(const CounterRegistry &) = delete;
    CounterRegistry &operator=(const CounterRegistry &) = delete;

    /** Get-or-create a counter; the reference never dangles. */
    Counter &counter(const std::string &name);

    /** Get-or-create a rate meter. */
    RateMeter &rate(const std::string &name);

    /**
     * Get-or-create a streaming latency histogram (obs/hist.h).
     * Unlike counters, Histogram mutation is NOT thread-safe or
     * capture-deferred: publish into registry histograms from the
     * serial path only, or via a capture Deferred op the way
     * serve::Engine merges its per-run histograms.
     */
    Histogram &histogram(const std::string &name);

    /** Lookup without creating; nullptr when absent. */
    const Counter *find(const std::string &name) const;
    const RateMeter *findRate(const std::string &name) const;
    const Histogram *findHistogram(const std::string &name) const;

    /**
     * Sum of `value()` over the counter named `prefix` (if any) and
     * every counter in its dotted subtree ("mme" covers "mme.flops"
     * and "mme.cfg.reconfigs" but not "mmex.y").
     */
    double rollup(const std::string &prefix) const;

    /** Name-ordered snapshot of all counters. */
    std::vector<CounterSnapshot> snapshot() const;

    /** Name-ordered list of registered rate meters. */
    std::vector<const RateMeter *> rates() const;

    /** Name-ordered list of registered histograms. */
    std::vector<const Histogram *> histograms() const;

    /** Zero every counter and rate meter (names stay registered). */
    void reset();

    std::size_t size() const;

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<RateMeter>> rates_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace vespera::obs

#endif // VESPERA_OBS_COUNTERS_H
