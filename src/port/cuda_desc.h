/**
 * @file
 * Compact CUDA-style kernel description, the input language of the
 * migration layer (ROADMAP item 5, the paper's Section 4
 * programmability study).
 *
 * A CudaKernelDesc captures the shape of a small CUDA kernel the way a
 * porting tool sees it: a grid of thread blocks, a per-thread body over
 * a fixed op vocabulary (global/shared loads and stores with
 * thread-indexed affine addressing, ALU/FMA arithmetic on per-thread
 * registers, warp-wide reductions, `__syncthreads()` barriers, counted
 * loops, and predicated execution). The description is explicitly
 * *not* Turing-complete — it covers the CUDABench-style corpus in
 * port/corpus.h and nothing more, which is what keeps the lowering in
 * port/lower.h total and auditable.
 *
 * Two independent executors consume a desc:
 *  - port/reference.h interprets it thread-by-thread in lockstep
 *    (barrier-correct CUDA semantics) — the functional oracle;
 *  - port/lower.h lowers it onto tpc::Program through the TPC-C
 *    intrinsics — the migrated kernel whose parity and performance the
 *    scorecard measures.
 */

#ifndef VESPERA_PORT_CUDA_DESC_H
#define VESPERA_PORT_CUDA_DESC_H

#include <cstdint>
#include <string>
#include <vector>

namespace vespera::port {

/** CUDA warp width; also the lane width of one lowered strip. */
inline constexpr int warpSize = 32;

/**
 * Per-thread affine address (in elements):
 *   base + cTid*tid + cLane*lane + cWarp*warp + cBlock*block
 *        + cBlockX*blockX + cBlockY*blockY + cGlobal*globalTid
 *        + cIter*iter + cPow2Iter*(1 << iter) [+ trunc(reg[indexReg])]
 * where lane = tid % 32, warp = tid / 32, blockX/Y decompose a 2D
 * grid (blockX = block % gridX), and iter is the innermost enclosing
 * loop's trip index. The pow2 term expresses Hillis-Steele scan
 * offsets; indexReg expresses data-dependent (gather/histogram)
 * addressing.
 */
struct AddrExpr
{
    std::int64_t base = 0;
    std::int64_t cTid = 0;
    std::int64_t cLane = 0;
    std::int64_t cWarp = 0;
    std::int64_t cBlock = 0;
    std::int64_t cBlockX = 0;
    std::int64_t cBlockY = 0;
    std::int64_t cGlobal = 0;
    std::int64_t cIter = 0;
    std::int64_t cPow2Iter = 0;
    /// Register whose (truncated) value is added; -1 = none.
    std::int32_t indexReg = -1;

    bool dataDependent() const { return indexReg >= 0; }
    bool
    iterDependent() const
    {
        return cIter != 0 || cPow2Iter != 0;
    }
};

/** Everything an AddrExpr may reference for one thread. */
struct LaneCtx
{
    std::int64_t tid = 0;
    std::int64_t lane = 0;
    std::int64_t warp = 0;
    std::int64_t block = 0;
    std::int64_t blockX = 0;
    std::int64_t blockY = 0;
    std::int64_t globalTid = 0;
    std::int64_t iter = 0;
};

/** Evaluate `addr` for one thread (`regs` = its register file). */
std::int64_t evalAddr(const AddrExpr &addr, const LaneCtx &ctx,
                      const float *regs);

/** Predicate comparison operator. */
enum class CmpOp : std::uint8_t {
    Lt,
    Ge,
    Eq,
    Ne,
};

/**
 * Per-thread predicate. Address-form predicates compare two affine
 * expressions (guarding edges: `tid < n`, `tid >= (1 << iter)`);
 * register-form predicates compare two register values (data-dependent
 * divergence: `x == max`).
 */
struct Pred
{
    bool active = false;
    bool onRegs = false;
    CmpOp op = CmpOp::Lt;
    AddrExpr lhs, rhs;                      ///< Address form.
    std::int32_t lhsReg = -1, rhsReg = -1;  ///< Register form.
};

/** Evaluate `pred` for one thread (true = thread executes the op). */
bool evalPred(const Pred &pred, const LaneCtx &ctx, const float *regs);

/** The op vocabulary. */
enum class CudaOp : std::uint8_t {
    LoadGlobal,      ///< reg[dst] = buf[addr]
    StoreGlobal,     ///< buf[addr] = reg[src0]
    LoadShared,      ///< reg[dst] = shared[addr]
    StoreShared,     ///< shared[addr] = reg[src0]
    AtomicAddShared, ///< shared[addr] += reg[src0] (serialized)
    MovImm,          ///< reg[dst] = imm
    Mov,             ///< reg[dst] = reg[src0]
    Add,             ///< reg[dst] = reg[src0] + reg[src1]
    Sub,             ///< reg[dst] = reg[src0] - reg[src1]
    Mul,             ///< reg[dst] = reg[src0] * reg[src1]
    Max,             ///< reg[dst] = max(reg[src0], reg[src1])
    Fma,             ///< reg[dst] = reg[src0]*reg[src1] + reg[src2]
    AddImm,          ///< reg[dst] = reg[src0] + imm
    MulImm,          ///< reg[dst] = reg[src0] * imm
    Exp,             ///< reg[dst] = exp(reg[src0])
    Rsqrt,           ///< reg[dst] = 1/sqrt(reg[src0])
    Recip,           ///< reg[dst] = 1/reg[src0]
    WarpReduceSum,   ///< reg[dst] = sum over warp of reg[src0]
    WarpReduceMax,   ///< reg[dst] = max over warp of reg[src0]
    Sync,            ///< __syncthreads()
};

const char *cudaOpName(CudaOp op);

/** One per-thread operation. */
struct CudaInstr
{
    CudaOp op = CudaOp::Sync;
    std::int32_t dst = -1;
    std::int32_t src0 = -1, src1 = -1, src2 = -1;
    float imm = 0;
    /// Buffer index (global ops only).
    std::int32_t buf = -1;
    /// Address (memory ops only).
    AddrExpr addr;
    Pred pred;
};

/** A counted per-thread loop (all threads run all trips). */
struct CudaLoop
{
    std::int64_t trips = 0;
    std::vector<CudaInstr> body;
};

/** Body statement: a single op or a counted loop (one nesting level). */
struct CudaStmt
{
    enum class Kind : std::uint8_t { Instr, Loop } kind = Kind::Instr;
    CudaInstr instr;
    CudaLoop loop;

    static CudaStmt
    of(CudaInstr i)
    {
        CudaStmt s;
        s.kind = Kind::Instr;
        s.instr = i;
        return s;
    }
    static CudaStmt
    of(CudaLoop l)
    {
        CudaStmt s;
        s.kind = Kind::Loop;
        s.loop = std::move(l);
        return s;
    }
};

/** Deterministic initialization pattern for a global buffer. */
enum class BufferInit : std::uint8_t {
    Zero,    ///< 0
    Linear,  ///< ((i * 37 + 11) % 113) * 0.01 * scale
    Wave,    ///< sin-free wave: hash-folded values in [-scale, scale]
    Mod,     ///< float(i % mod)  (exact small integers)
    Indices, ///< float((i * 73 + 5) % mod)  (in-range gather indices)
};

/** One global buffer (CUDA __global__ array of fp32). */
struct BufferDesc
{
    std::string name;
    std::int64_t elems = 0;
    bool output = false;
    BufferInit init = BufferInit::Zero;
    double initScale = 1.0;
    std::int64_t initMod = 1;
};

/** Deterministic init value for element `i` of `buf`. */
float bufferInitValue(const BufferDesc &buf, std::int64_t i);

/** The kernel description. */
struct CudaKernelDesc
{
    std::string name;
    std::string shape; ///< Human-readable tag for reports.
    /// Grid geometry: `gridBlocks` linear blocks; 2D kernels set
    /// `gridX` so blockX = block % gridX, blockY = block / gridX.
    std::int64_t gridBlocks = 0;
    std::int64_t gridX = 1;
    std::int64_t blockThreads = 0;
    /// Per-thread register file size.
    std::int32_t numRegs = 0;
    /// Per-block shared memory, in fp32 elements.
    std::int64_t sharedElems = 0;
    std::vector<BufferDesc> buffers;
    std::vector<CudaStmt> body;

    std::int64_t
    totalThreads() const
    {
        return gridBlocks * blockThreads;
    }
};

/**
 * Panics (vassert) on malformed descs: degenerate geometry (zero
 * blocks / zero threads / zero-element buffers / zero-trip loops),
 * out-of-range register or buffer references, nested loops, and warp
 * ops under predication.
 */
void validateDesc(const CudaKernelDesc &desc);

} // namespace vespera::port

#endif // VESPERA_PORT_CUDA_DESC_H
