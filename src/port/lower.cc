#include "port/lower.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "common/logging.h"

namespace vespera::port {

namespace {

/// Barrier-delimited run of body items (instrs / sync-free loops).
struct Segment
{
    std::vector<const CudaStmt *> items;
};

/// A loop whose body contains Sync: trips iterate sync-split chunks.
struct SyncLoop
{
    const CudaLoop *loop = nullptr;
    std::vector<std::vector<const CudaInstr *>> segs;
};

struct Unit
{
    bool isSyncLoop = false;
    Segment seg;
    SyncLoop syncLoop;
};

bool
loopHasSync(const CudaLoop &l)
{
    for (const CudaInstr &i : l.body)
        if (i.op == CudaOp::Sync)
            return true;
    return false;
}

std::vector<Unit>
splitUnits(const CudaKernelDesc &desc)
{
    std::vector<Unit> units;
    Segment cur;
    auto flush = [&] {
        if (!cur.items.empty()) {
            Unit u;
            u.seg = std::move(cur);
            units.push_back(std::move(u));
            cur = Segment{};
        }
    };
    for (const CudaStmt &s : desc.body) {
        if (s.kind == CudaStmt::Kind::Instr) {
            if (s.instr.op == CudaOp::Sync) {
                flush();
                continue;
            }
            cur.items.push_back(&s);
            continue;
        }
        if (!loopHasSync(s.loop)) {
            cur.items.push_back(&s);
            continue;
        }
        flush();
        Unit u;
        u.isSyncLoop = true;
        u.syncLoop.loop = &s.loop;
        std::vector<const CudaInstr *> chunk;
        for (const CudaInstr &i : s.loop.body) {
            if (i.op == CudaOp::Sync) {
                if (!chunk.empty())
                    u.syncLoop.segs.push_back(std::move(chunk));
                chunk.clear();
                continue;
            }
            chunk.push_back(&i);
        }
        if (!chunk.empty())
            u.syncLoop.segs.push_back(std::move(chunk));
        units.push_back(std::move(u));
    }
    flush();
    return units;
}

/** Lowers one thread block onto the TPC context. */
class BlockLowerer
{
  public:
    BlockLowerer(const CudaKernelDesc &desc, const LowerOptions &opts,
                 tpc::TpcContext &ctx, std::vector<tpc::Tensor> &tensors,
                 std::int64_t block)
        : desc_(desc), opts_(opts), ctx_(ctx), tensors_(tensors),
          block_(block),
          stripWidth_(warpSize * opts.warpsPerStrip),
          numStrips_(static_cast<int>(
              (desc.blockThreads + stripWidth_ - 1) / stripWidth_)),
          scratchBase_(desc.sharedElems),
          regs_(static_cast<std::size_t>(numStrips_))
    {
        for (auto &r : regs_)
            r.assign(static_cast<std::size_t>(desc.numRegs),
                     tpc::Vec{});
        vassert((scratchBase_ + stripWidth_) * 4 <=
                static_cast<std::int64_t>(opts.localMemoryBytes),
                "%s: shared memory (%lld elems) leaves no room for "
                "lowering scratch", desc.name.c_str(),
                static_cast<long long>(desc.sharedElems));
    }

    void
    run(const std::vector<Unit> &units)
    {
        zeroShared();
        for (const Unit &u : units) {
            if (!u.isSyncLoop) {
                emitSegment(u.seg.items, 0);
                continue;
            }
            for (std::int64_t trip = 0; trip < u.syncLoop.loop->trips;
                 trip++) {
                for (const auto &seg : u.syncLoop.segs)
                    emitChunk(seg, trip);
            }
        }
    }

  private:
    int
    stripLanes(int strip) const
    {
        const std::int64_t base =
            static_cast<std::int64_t>(strip) * stripWidth_;
        return static_cast<int>(std::min<std::int64_t>(
            stripWidth_, desc_.blockThreads - base));
    }

    LaneCtx
    laneCtx(int strip, int lane, std::int64_t iter) const
    {
        LaneCtx c;
        c.tid = static_cast<std::int64_t>(strip) * stripWidth_ + lane;
        c.lane = c.tid % warpSize;
        c.warp = c.tid / warpSize;
        c.block = block_;
        c.blockX = block_ % desc_.gridX;
        c.blockY = block_ / desc_.gridX;
        c.globalTid = block_ * desc_.blockThreads + c.tid;
        c.iter = iter;
        return c;
    }

    /// Register read with lazy zero-init (CUDA registers start
    /// undefined; the desc contract is read-as-zero, matching the
    /// reference interpreter).
    const tpc::Vec &
    getReg(int strip, std::int32_t r)
    {
        tpc::Vec &v = regs_[static_cast<std::size_t>(strip)]
                           [static_cast<std::size_t>(r)];
        if (v.id < 0) {
            ctx_.setOpLabel("port:reg-init");
            v = ctx_.v_zero(stripLanes(strip));
        }
        return v;
    }

    void
    setReg(int strip, std::int32_t r, tpc::Vec v)
    {
        regs_[static_cast<std::size_t>(strip)]
             [static_cast<std::size_t>(r)] = std::move(v);
    }

    tpc::Vec
    splat(float value, int lanes)
    {
        std::int32_t bits;
        std::memcpy(&bits, &value, sizeof(bits));
        const auto key = std::make_pair(bits, lanes);
        auto it = splats_.find(key);
        if (it != splats_.end())
            return it->second;
        ctx_.setOpLabel("port:alu");
        tpc::Vec v = ctx_.v_splat(value, lanes);
        splats_.emplace(key, v);
        return v;
    }

    tpc::Vec
    iota(int lanes)
    {
        auto it = iotas_.find(lanes);
        if (it != iotas_.end())
            return it->second;
        ctx_.setOpLabel("port:pred-mask");
        tpc::Vec v = ctx_.v_iota(lanes);
        iotas_.emplace(lanes, v);
        return v;
    }

    void
    zeroShared()
    {
        if (desc_.sharedElems <= 0)
            return;
        for (std::int64_t off = 0; off < desc_.sharedElems;
             off += stripWidth_) {
            const int lanes = static_cast<int>(std::min<std::int64_t>(
                stripWidth_, desc_.sharedElems - off));
            const tpc::Vec z = splat(0.0f, lanes);
            ctx_.setOpLabel("port:shared-init");
            ctx_.v_st_local(off, z);
        }
    }

    /// Per-lane addresses of a memory op for one strip.
    std::vector<std::int64_t>
    addrsFor(const CudaInstr &i, int strip, std::int64_t iter)
    {
        const int lanes = stripLanes(strip);
        std::vector<std::int64_t> addrs(
            static_cast<std::size_t>(lanes));
        const tpc::Vec *idx = nullptr;
        if (i.addr.indexReg >= 0)
            idx = &getReg(strip, i.addr.indexReg);
        for (int l = 0; l < lanes; l++) {
            const LaneCtx c = laneCtx(strip, l, iter);
            AddrExpr a = i.addr;
            a.indexReg = -1;
            std::int64_t v = evalAddr(a, c, nullptr);
            if (idx != nullptr)
                v += static_cast<std::int64_t>(
                    idx->lanes[static_cast<std::size_t>(l)]);
            addrs[static_cast<std::size_t>(l)] = v;
        }
        return addrs;
    }

    /// Per-lane predicate activity for one strip.
    std::vector<char>
    activeFor(const Pred &p, int strip, std::int64_t iter)
    {
        const int lanes = stripLanes(strip);
        std::vector<char> act(static_cast<std::size_t>(lanes), 1);
        if (!p.active)
            return act;
        const tpc::Vec *lhs = nullptr, *rhs = nullptr;
        if (p.onRegs) {
            lhs = &getReg(strip, p.lhsReg);
            rhs = &getReg(strip, p.rhsReg);
        }
        for (int l = 0; l < lanes; l++) {
            const LaneCtx c = laneCtx(strip, l, iter);
            bool on;
            if (p.onRegs) {
                float vals[2] = {
                    lhs->lanes[static_cast<std::size_t>(l)],
                    rhs->lanes[static_cast<std::size_t>(l)]};
                Pred q = p;
                q.lhsReg = 0;
                q.rhsReg = 1;
                on = evalPred(q, c, vals);
            } else {
                on = evalPred(p, c, nullptr);
            }
            act[static_cast<std::size_t>(l)] = on ? 1 : 0;
        }
        return act;
    }

    static bool
    allOf(const std::vector<char> &v)
    {
        return std::all_of(v.begin(), v.end(),
                           [](char c) { return c != 0; });
    }
    static bool
    anyOf(const std::vector<char> &v)
    {
        return std::any_of(v.begin(), v.end(),
                           [](char c) { return c != 0; });
    }

    /// Affine vector value a0 + l*d over the strip's lanes.
    tpc::Vec
    affineVec(std::int64_t a0, std::int64_t d, int lanes)
    {
        const tpc::Vec base = splat(static_cast<float>(a0), lanes);
        if (d == 0)
            return base;
        const tpc::Vec io = iota(lanes);
        ctx_.setOpLabel("port:pred-mask");
        return ctx_.v_mac_s(io, static_cast<float>(d), base);
    }

    /// Lane values of one side of an address-form predicate; panics
    /// unless affine in the lane index (mask must be expressible).
    std::pair<std::int64_t, std::int64_t>
    affineOf(const AddrExpr &e, int strip, std::int64_t iter)
    {
        const int lanes = stripLanes(strip);
        const LaneCtx c0 = laneCtx(strip, 0, iter);
        const std::int64_t a0 = evalAddr(e, c0, nullptr);
        if (lanes == 1)
            return {a0, 0};
        const LaneCtx c1 = laneCtx(strip, 1, iter);
        const std::int64_t d = evalAddr(e, c1, nullptr) - a0;
        for (int l = 2; l < lanes; l++) {
            const LaneCtx cl = laneCtx(strip, l, iter);
            vassert(evalAddr(e, cl, nullptr) == a0 + l * d,
                    "%s: predicate not affine in lane",
                    desc_.name.c_str());
        }
        return {a0, d};
    }

    /// Materialize the predicate as a 0/1 mask vector.
    tpc::Vec
    maskFor(const Pred &p, int strip, std::int64_t iter)
    {
        const int lanes = stripLanes(strip);
        tpc::Vec lhs, rhs;
        if (p.onRegs) {
            lhs = getReg(strip, p.lhsReg);
            rhs = getReg(strip, p.rhsReg);
        } else {
            const auto [a0, d0] = affineOf(p.lhs, strip, iter);
            const auto [a1, d1] = affineOf(p.rhs, strip, iter);
            const MaskKey key{strip, a0, d0, a1, d1,
                              static_cast<int>(p.op)};
            auto it = masks_.find(key);
            if (it != masks_.end())
                return it->second;
            lhs = affineVec(a0, d0, lanes);
            rhs = affineVec(a1, d1, lanes);
            tpc::Vec m = cmpVec(p.op, lhs, rhs, lanes);
            masks_.emplace(key, m);
            return m;
        }
        return cmpVec(p.op, lhs, rhs, lanes);
    }

    tpc::Vec
    cmpVec(CmpOp op, const tpc::Vec &lhs, const tpc::Vec &rhs,
           int lanes)
    {
        switch (op) {
          case CmpOp::Lt:
            ctx_.setOpLabel("port:pred-mask");
            return ctx_.v_cmp_lt(lhs, rhs);
          case CmpOp::Ge:
            ctx_.setOpLabel("port:pred-mask");
            return ctx_.v_cmp_ge(lhs, rhs);
          case CmpOp::Eq:
            ctx_.setOpLabel("port:pred-mask");
            return ctx_.v_cmp_eq(lhs, rhs);
          case CmpOp::Ne: {
            const tpc::Vec one = splat(1.0f, lanes);
            ctx_.setOpLabel("port:pred-mask");
            const tpc::Vec eq = ctx_.v_cmp_eq(lhs, rhs);
            return ctx_.v_sub(one, eq);
          }
        }
        vpanic("bad cmp op");
    }

    /// Blend `fresh` over the destination's prior value under `pred`.
    tpc::Vec
    blend(const CudaInstr &i, int strip, std::int64_t iter,
          tpc::Vec fresh)
    {
        const tpc::Vec old = getReg(strip, i.dst);
        const tpc::Vec m = maskFor(i.pred, strip, iter);
        ctx_.setOpLabel("port:pred-blend");
        return ctx_.v_sel(m, fresh, old);
    }

    void
    emitSegment(const std::vector<const CudaStmt *> &items,
                std::int64_t iter)
    {
        const int unroll = std::max(1, opts_.stripUnroll);
        for (int g = 0; g < numStrips_; g += unroll) {
            const int gEnd = std::min(numStrips_, g + unroll);
            for (const CudaStmt *s : items) {
                if (s->kind == CudaStmt::Kind::Instr) {
                    for (int strip = g; strip < gEnd; strip++)
                        emitInstr(strip, s->instr, iter);
                    continue;
                }
                for (std::int64_t trip = 0; trip < s->loop.trips;
                     trip++) {
                    for (const CudaInstr &i : s->loop.body) {
                        for (int strip = g; strip < gEnd; strip++)
                            emitInstr(strip, i, trip);
                    }
                }
            }
        }
    }

    void
    emitChunk(const std::vector<const CudaInstr *> &instrs,
              std::int64_t iter)
    {
        const int unroll = std::max(1, opts_.stripUnroll);
        for (int g = 0; g < numStrips_; g += unroll) {
            const int gEnd = std::min(numStrips_, g + unroll);
            for (const CudaInstr *i : instrs) {
                for (int strip = g; strip < gEnd; strip++)
                    emitInstr(strip, *i, iter);
            }
        }
    }

    void
    emitInstr(int strip, const CudaInstr &i, std::int64_t iter)
    {
        switch (i.op) {
          case CudaOp::Sync:
            return; // Barriers are segmentation, not instructions.
          case CudaOp::LoadGlobal: return loadGlobal(strip, i, iter);
          case CudaOp::StoreGlobal: return storeGlobal(strip, i, iter);
          case CudaOp::LoadShared: return loadShared(strip, i, iter);
          case CudaOp::StoreShared: return storeShared(strip, i, iter);
          case CudaOp::AtomicAddShared:
            return atomicAddShared(strip, i, iter);
          case CudaOp::WarpReduceSum:
          case CudaOp::WarpReduceMax: {
            vassert(opts_.warpsPerStrip == 1,
                    "%s: warp reduction requires warpsPerStrip=1",
                    desc_.name.c_str());
            const tpc::Vec src = getReg(strip, i.src0);
            ctx_.setOpLabel("port:warp-reduce");
            const tpc::Vec r = i.op == CudaOp::WarpReduceSum
                                   ? ctx_.v_reduce_add(src)
                                   : ctx_.v_reduce_max(src);
            setReg(strip, i.dst,
                   ctx_.v_broadcast(r, stripLanes(strip)));
            return;
          }
          default:
            return alu(strip, i, iter);
        }
    }

    void
    alu(int strip, const CudaInstr &i, std::int64_t iter)
    {
        const int lanes = stripLanes(strip);
        const std::vector<char> act = activeFor(i.pred, strip, iter);
        if (!anyOf(act))
            return;
        const bool full = allOf(act);

        // Fetch operand vectors before setting the ALU label: lazy
        // register init / cached splats emit under their own labels.
        tpc::Vec v;
        if (i.op == CudaOp::MovImm) {
            v = splat(i.imm, lanes);
        } else if (i.op == CudaOp::Mov) {
            v = getReg(strip, i.src0); // Register rename: no instr.
        } else {
            const tpc::Vec a = getReg(strip, i.src0);
            tpc::Vec b, c, immv;
            const bool binary =
                i.op == CudaOp::Add || i.op == CudaOp::Sub ||
                i.op == CudaOp::Mul || i.op == CudaOp::Max ||
                i.op == CudaOp::Fma;
            if (binary)
                b = getReg(strip, i.src1);
            if (i.op == CudaOp::Fma)
                c = getReg(strip, i.src2);
            if (i.op == CudaOp::AddImm)
                immv = splat(i.imm, lanes);

            ctx_.setOpLabel("port:alu");
            switch (i.op) {
              case CudaOp::Add: v = ctx_.v_add(a, b); break;
              case CudaOp::Sub: v = ctx_.v_sub(a, b); break;
              case CudaOp::Mul: v = ctx_.v_mul(a, b); break;
              case CudaOp::Max: v = ctx_.v_max(a, b); break;
              case CudaOp::Fma: v = ctx_.v_mac(a, b, c); break;
              case CudaOp::AddImm: v = ctx_.v_add(a, immv); break;
              case CudaOp::MulImm: v = ctx_.v_mul_s(a, i.imm); break;
              case CudaOp::Exp: v = ctx_.v_exp(a); break;
              case CudaOp::Rsqrt: v = ctx_.v_rsqrt(a); break;
              case CudaOp::Recip: v = ctx_.v_reciprocal(a); break;
              default:
                vpanic("unhandled ALU op %s", cudaOpName(i.op));
            }
        }
        if (!full)
            v = blend(i, strip, iter, std::move(v));
        setReg(strip, i.dst, std::move(v));
    }

    void
    loadGlobal(int strip, const CudaInstr &i, std::int64_t iter)
    {
        const int lanes = stripLanes(strip);
        tpc::Tensor &t = tensors_[static_cast<std::size_t>(i.buf)];
        const std::vector<std::int64_t> addrs = addrsFor(i, strip, iter);
        const std::vector<char> act = activeFor(i.pred, strip, iter);
        if (!anyOf(act))
            return;
        const bool full = allOf(act);

        const bool uniform = std::all_of(
            addrs.begin(), addrs.end(),
            [&](std::int64_t a) { return a == addrs[0]; });
        bool contiguous = !i.addr.dataDependent();
        for (std::size_t l = 1; contiguous && l < addrs.size(); l++)
            contiguous = addrs[l] == addrs[0] + static_cast<std::int64_t>(l);

        tpc::Vec v;
        if (uniform && !i.addr.dataDependent()) {
            ctx_.setOpLabel("port:ld-uniform");
            const tpc::Vec lv =
                ctx_.v_ld_tnsr({addrs[0], 0, 0, 0, 0}, t, 4,
                               tpc::Access::Stream);
            v = ctx_.v_broadcast(lv, lanes);
        } else if (contiguous) {
            vassert(addrs[0] >= 0,
                    "%s: contiguous load underruns buffer '%s' "
                    "(allocate halo padding)", desc_.name.c_str(),
                    desc_.buffers[static_cast<std::size_t>(i.buf)]
                        .name.c_str());
            ctx_.setOpLabel("port:ld-warp");
            v = ctx_.v_ld_tnsr({addrs[0], 0, 0, 0, 0}, t,
                               static_cast<Bytes>(lanes) * 4,
                               tpc::Access::Stream);
        } else {
            // Strided or data-dependent: shatter into per-lane 4 B
            // transactions assembled through local scratch.
            const tpc::Access acc = i.addr.dataDependent()
                                        ? tpc::Access::Random
                                        : tpc::Access::Stream;
            tpc::Vec old;
            if (!full)
                old = getReg(strip, i.dst);
            ctx_.setOpLabel("port:ld-shatter");
            if (!full)
                ctx_.v_st_local(scratchBase_, old);
            for (int l = 0; l < lanes; l++) {
                if (!act[static_cast<std::size_t>(l)])
                    continue;
                const tpc::Vec lv = ctx_.v_ld_tnsr(
                    {addrs[static_cast<std::size_t>(l)], 0, 0, 0, 0},
                    t, 4, acc);
                ctx_.v_st_local(scratchBase_ + l, lv);
            }
            v = ctx_.v_ld_local(scratchBase_, lanes);
            setReg(strip, i.dst, std::move(v));
            return; // Inactive lanes already carry the old value.
        }
        if (!full)
            v = blend(i, strip, iter, std::move(v));
        setReg(strip, i.dst, std::move(v));
    }

    void
    storeGlobal(int strip, const CudaInstr &i, std::int64_t iter)
    {
        const int lanes = stripLanes(strip);
        tpc::Tensor &t = tensors_[static_cast<std::size_t>(i.buf)];
        const std::vector<std::int64_t> addrs = addrsFor(i, strip, iter);
        const std::vector<char> act = activeFor(i.pred, strip, iter);
        if (!anyOf(act))
            return;
        const bool full = allOf(act);
        const tpc::Vec src = getReg(strip, i.src0);

        bool contiguous = !i.addr.dataDependent();
        for (std::size_t l = 1; contiguous && l < addrs.size(); l++)
            contiguous = addrs[l] == addrs[0] + static_cast<std::int64_t>(l);

        if (contiguous && addrs[0] >= 0) {
            if (full) {
                ctx_.setOpLabel("port:st-warp");
                ctx_.v_st_tnsr({addrs[0], 0, 0, 0, 0}, t, src);
                return;
            }
            // Predicated store: TPC has no write masks — emulate with
            // a read-modify-write blend (extra read traffic).
            ctx_.setOpLabel("port:pred-blend");
            const tpc::Vec old =
                ctx_.v_ld_tnsr({addrs[0], 0, 0, 0, 0}, t,
                               static_cast<Bytes>(lanes) * 4,
                               tpc::Access::Stream);
            const tpc::Vec m = maskFor(i.pred, strip, iter);
            ctx_.setOpLabel("port:pred-blend");
            const tpc::Vec merged = ctx_.v_sel(m, src, old);
            ctx_.setOpLabel("port:st-warp");
            ctx_.v_st_tnsr({addrs[0], 0, 0, 0, 0}, t, merged);
            return;
        }

        const tpc::Access acc = i.addr.dataDependent()
                                    ? tpc::Access::Random
                                    : tpc::Access::Stream;
        ctx_.setOpLabel("port:st-shatter");
        ctx_.v_st_local(scratchBase_, src);
        for (int l = 0; l < lanes; l++) {
            if (!act[static_cast<std::size_t>(l)])
                continue;
            const tpc::Vec lv = ctx_.v_ld_local(scratchBase_ + l, 1);
            ctx_.v_st_tnsr(
                {addrs[static_cast<std::size_t>(l)], 0, 0, 0, 0}, t,
                lv, acc);
        }
    }

    void
    loadShared(int strip, const CudaInstr &i, std::int64_t iter)
    {
        const int lanes = stripLanes(strip);
        const std::vector<std::int64_t> addrs = addrsFor(i, strip, iter);
        const std::vector<char> act = activeFor(i.pred, strip, iter);
        if (!anyOf(act))
            return;
        const bool full = allOf(act);

        const bool uniform = std::all_of(
            addrs.begin(), addrs.end(),
            [&](std::int64_t a) { return a == addrs[0]; });
        bool contiguous = !i.addr.dataDependent();
        for (std::size_t l = 1; contiguous && l < addrs.size(); l++)
            contiguous = addrs[l] == addrs[0] + static_cast<std::int64_t>(l);

        tpc::Vec v;
        if (uniform && !i.addr.dataDependent()) {
            ctx_.setOpLabel("port:shared-ld");
            const tpc::Vec lv = ctx_.v_ld_local(addrs[0], 1);
            v = ctx_.v_broadcast(lv, lanes);
            if (!full)
                v = blend(i, strip, iter, std::move(v));
        } else if (contiguous && full && addrs[0] >= 0 &&
                   addrs[0] + lanes <= desc_.sharedElems) {
            ctx_.setOpLabel("port:shared-ld");
            v = ctx_.v_ld_local(addrs[0], lanes);
        } else if (contiguous) {
            // Shifted / clipped window (e.g. a scan step reading
            // shared[tid - d]): realign through scratch and blend.
            const tpc::Vec old = getReg(strip, i.dst);
            ctx_.setOpLabel("port:shared-ld");
            ctx_.v_st_local(scratchBase_, old);
            const std::int64_t lo = std::max<std::int64_t>(addrs[0], 0);
            const std::int64_t hi = std::min<std::int64_t>(
                addrs[0] + lanes, desc_.sharedElems);
            if (hi > lo) {
                const tpc::Vec part = ctx_.v_ld_local(
                    lo, static_cast<int>(hi - lo));
                ctx_.v_st_local(scratchBase_ + (lo - addrs[0]), part);
            }
            v = ctx_.v_ld_local(scratchBase_, lanes);
            if (!full)
                v = blend(i, strip, iter, std::move(v));
        } else {
            // Per-lane local gather.
            tpc::Vec old;
            if (!full)
                old = getReg(strip, i.dst);
            ctx_.setOpLabel("port:shared-ld");
            if (!full)
                ctx_.v_st_local(scratchBase_, old);
            for (int l = 0; l < lanes; l++) {
                if (!act[static_cast<std::size_t>(l)])
                    continue;
                const tpc::Vec lv = ctx_.v_ld_local(
                    addrs[static_cast<std::size_t>(l)], 1);
                ctx_.v_st_local(scratchBase_ + l, lv);
            }
            v = ctx_.v_ld_local(scratchBase_, lanes);
        }
        setReg(strip, i.dst, std::move(v));
    }

    void
    storeShared(int strip, const CudaInstr &i, std::int64_t iter)
    {
        const int lanes = stripLanes(strip);
        const std::vector<std::int64_t> addrs = addrsFor(i, strip, iter);
        const std::vector<char> act = activeFor(i.pred, strip, iter);
        if (!anyOf(act))
            return;
        const bool full = allOf(act);
        const tpc::Vec src = getReg(strip, i.src0);

        bool contiguous = !i.addr.dataDependent();
        for (std::size_t l = 1; contiguous && l < addrs.size(); l++)
            contiguous = addrs[l] == addrs[0] + static_cast<std::int64_t>(l);

        ctx_.setOpLabel("port:shared-st");
        if (contiguous && full && addrs[0] >= 0 &&
            addrs[0] + lanes <= desc_.sharedElems) {
            ctx_.v_st_local(addrs[0], src);
            return;
        }
        // Per-lane scatter into local memory.
        ctx_.v_st_local(scratchBase_, src);
        for (int l = 0; l < lanes; l++) {
            if (!act[static_cast<std::size_t>(l)])
                continue;
            const tpc::Vec lv = ctx_.v_ld_local(scratchBase_ + l, 1);
            ctx_.v_st_local(addrs[static_cast<std::size_t>(l)], lv);
        }
    }

    void
    atomicAddShared(int strip, const CudaInstr &i, std::int64_t iter)
    {
        const int lanes = stripLanes(strip);
        const std::vector<std::int64_t> addrs = addrsFor(i, strip, iter);
        const std::vector<char> act = activeFor(i.pred, strip, iter);
        if (!anyOf(act))
            return;
        const tpc::Vec src = getReg(strip, i.src0);

        // Atomics have no TPC equivalent: the block owns its local
        // memory, so the lowering serializes lanes (read-add-write per
        // lane) — correct, and expensive in exactly the way the
        // scorecard should surface.
        ctx_.setOpLabel("port:atomic");
        ctx_.v_st_local(scratchBase_, src);
        for (int l = 0; l < lanes; l++) {
            if (!act[static_cast<std::size_t>(l)])
                continue;
            const std::int64_t a =
                addrs[static_cast<std::size_t>(l)];
            const tpc::Vec lv = ctx_.v_ld_local(scratchBase_ + l, 1);
            const tpc::Vec hv = ctx_.v_ld_local(a, 1);
            const tpc::Vec nv = ctx_.v_add(hv, lv);
            ctx_.v_st_local(a, nv);
        }
    }

    struct MaskKey
    {
        int strip;
        std::int64_t a0, d0, a1, d1;
        int op;
        bool
        operator<(const MaskKey &o) const
        {
            return std::tie(strip, a0, d0, a1, d1, op) <
                   std::tie(o.strip, o.a0, o.d0, o.a1, o.d1, o.op);
        }
    };

    const CudaKernelDesc &desc_;
    const LowerOptions &opts_;
    tpc::TpcContext &ctx_;
    std::vector<tpc::Tensor> &tensors_;
    std::int64_t block_;
    int stripWidth_;
    int numStrips_;
    std::int64_t scratchBase_;
    std::vector<std::vector<tpc::Vec>> regs_;
    std::map<std::pair<std::int32_t, int>, tpc::Vec> splats_;
    std::map<int, tpc::Vec> iotas_;
    std::map<MaskKey, tpc::Vec> masks_;
};

bool
usesWarpOps(const CudaKernelDesc &desc)
{
    auto instrHas = [](const CudaInstr &i) {
        return i.op == CudaOp::WarpReduceSum ||
               i.op == CudaOp::WarpReduceMax;
    };
    for (const CudaStmt &s : desc.body) {
        if (s.kind == CudaStmt::Kind::Instr) {
            if (instrHas(s.instr))
                return true;
        } else {
            for (const CudaInstr &i : s.loop.body)
                if (instrHas(i))
                    return true;
        }
    }
    return false;
}

} // namespace

PortRun
lowerAndRun(const CudaKernelDesc &desc, const LowerOptions &options)
{
    validateDesc(desc);
    vassert(options.warpsPerStrip >= 1 && options.warpsPerStrip <= 8,
            "%s: bad warpsPerStrip %d", desc.name.c_str(),
            options.warpsPerStrip);
    vassert(options.stripUnroll >= 1, "%s: bad stripUnroll %d",
            desc.name.c_str(), options.stripUnroll);
    if (options.warpsPerStrip > 1) {
        vassert(!usesWarpOps(desc),
                "%s: warpsPerStrip > 1 would widen warp reductions",
                desc.name.c_str());
    }

    // Shared state for the per-TPC kernel closures. The desc is
    // copied: the closure may outlive the caller's storage.
    auto descPtr = std::make_shared<CudaKernelDesc>(desc);
    auto tensors = std::make_shared<std::vector<tpc::Tensor>>();
    tensors->reserve(desc.buffers.size());
    for (const BufferDesc &b : desc.buffers) {
        tpc::Tensor t({b.elems}, DataType::FP32);
        t.fill([&b](std::int64_t i) { return bufferInitValue(b, i); });
        tensors->push_back(std::move(t));
    }
    auto units = std::make_shared<std::vector<Unit>>(splitUnits(desc));

    const LowerOptions opts = options;
    tpc::Kernel kernel = [descPtr, tensors, units,
                          opts](tpc::TpcContext &ctx) {
        for (std::int64_t block = ctx.memberStart(1);
             block < ctx.memberEnd(1); block++) {
            BlockLowerer lower(*descPtr, opts, ctx, *tensors, block);
            lower.run(*units);
        }
    };

    tpc::IndexSpace space;
    space.size = {1, desc.gridBlocks, 1, 1, 1};
    tpc::LaunchParams params;
    params.numTpcs = static_cast<int>(std::min<std::int64_t>(
        opts.numTpcs, desc.gridBlocks));
    params.partitionDim = 1;
    params.vectorBytes =
        static_cast<Bytes>(warpSize * opts.warpsPerStrip) * 4;
    params.kernelName = desc.name;

    tpc::TpcDispatcher dispatcher;
    PortRun run;
    run.launch = dispatcher.launch(kernel, space, params);
    run.tensors = std::move(tensors);
    return run;
}

} // namespace vespera::port
