/**
 * @file
 * CUDA→TPC lowering: maps a CudaKernelDesc onto a tpc::Program.
 *
 * The mapping mirrors what Habana's GPU Migration toolkit does for
 * real kernels (SNIPPETS.md §1–3), made explicit:
 *
 *  - thread blocks → index-space members along dim 1, partitioned
 *    across the 24 TPCs by the dispatcher;
 *  - a warp → one 32-lane vector *strip* (128 B of fp32), so
 *    warp-wide contiguous accesses become single vector loads — at
 *    half the TPC's 256 B granule, the first migration penalty;
 *  - strided / data-dependent warp accesses shatter into per-lane
 *    4 B transactions staged through local-memory scratch;
 *  - predicated branches → compute-plus-blend (mask via v_iota/v_cmp,
 *    merge via v_sel): SIMT divergence emulated at full vector cost;
 *  - shared memory → TPC local memory (v_st_local/v_ld_local);
 *  - __syncthreads() → a strip-serialization barrier: between
 *    barriers each strip executes its whole segment serially (the
 *    naive port), which is what exposes the 4-cycle dependency
 *    latency a hand-written kernel hides by unrolling.
 *
 * Every emitted instruction carries a "port:*" op label so the
 * migration-aware analyzer passes (analysis/static/passes_port.cc) can
 * attribute the performance gap to specific lowering artifacts.
 *
 * LowerOptions exposes the two fix-hint knobs the scorecard's findings
 * suggest: warpsPerStrip=2 fuses two warps into a full-granule 256 B
 * strip (elementwise kernels only), and stripUnroll>=4 interleaves
 * independent strips to hide result latency.
 */

#ifndef VESPERA_PORT_LOWER_H
#define VESPERA_PORT_LOWER_H

#include <memory>
#include <vector>

#include "port/cuda_desc.h"
#include "tpc/dispatcher.h"
#include "tpc/tensor.h"

namespace vespera::port {

/** Lowering knobs (the migration fix-hint surface). */
struct LowerOptions
{
    /// Warps fused into one vector strip. 1 = faithful warp-width
    /// lowering (128 B accesses); 2 = full-granule 256 B strips,
    /// legal only for kernels without warp/shared/lane-addressed ops.
    int warpsPerStrip = 1;
    /// Strips interleaved instruction-by-instruction within a
    /// barrier-delimited segment. 1 = naive serial port; >=4 hides
    /// the 4-cycle vector latency.
    int stripUnroll = 1;
    /// TPCs offered to the dispatcher (clamped to the grid size).
    int numTpcs = 24;
    /// TPC local-memory budget handed to the context.
    Bytes localMemoryBytes = 80 * 1024;
};

/** Outcome of lowering + launching one desc. */
struct PortRun
{
    tpc::LaunchResult launch;
    /// Final global-buffer tensors, indexed like desc.buffers.
    std::shared_ptr<std::vector<tpc::Tensor>> tensors;
};

/**
 * Lower `desc` and launch it on the simulated TPC array. The per-TPC
 * Program traces are observable via tpc::ScopedTraceObserver exactly
 * like hand-written kernels (analysis::captureTrace works unchanged).
 */
PortRun lowerAndRun(const CudaKernelDesc &desc,
                    const LowerOptions &options = {});

} // namespace vespera::port

#endif // VESPERA_PORT_LOWER_H
