/**
 * @file
 * The CUDABench-style migration corpus (ROADMAP item 5).
 *
 * Each entry pairs a CudaKernelDesc — the CUDA kernel as a porting tool
 * sees it — with the LowerOptions used to migrate it, a hand-written
 * TPC-C comparator implementing the same workload the way a Gaudi
 * kernel author would (vector-width accesses, deep unrolling,
 * independent accumulator chains), and an A100-side cost estimate from
 * cuda::SimtModel. The scorecard in analysis/migrate/scorecard.h runs
 * every entry through port::lowerAndRun and reports functional parity,
 * the achieved fraction of hand-written performance, and the analyzer
 * findings explaining the gap.
 *
 * Entries ending in `_tuned` re-lower an existing desc with the knobs
 * the migration fix-hints recommend (warpsPerStrip=2, stripUnroll>=4),
 * demonstrating that following the hints closes the gap.
 */

#ifndef VESPERA_PORT_CORPUS_H
#define VESPERA_PORT_CORPUS_H

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "port/cuda_desc.h"
#include "port/lower.h"

namespace vespera::port {

/** One migration-corpus kernel. */
struct CorpusEntry
{
    CudaKernelDesc desc;
    /// Lowering knobs for this entry (the `_tuned` entries differ).
    LowerOptions lower;
    /// What migration artifact this kernel exercises (for reports).
    std::string notes;
    /// Hand-written TPC-C comparator: runs the same workload on the
    /// simulated Gaudi-2 the way a TPC kernel author would write it.
    std::function<Seconds()> handTime;
    /// A100-side estimate from the SIMT cost model (informational).
    std::function<Seconds()> a100Time;
};

/** The corpus, built once (deterministic order and contents). */
const std::vector<CorpusEntry> &migrationCorpus();

/** Find an entry by desc name; nullptr if absent. */
const CorpusEntry *findCorpusEntry(std::string_view name);

} // namespace vespera::port

#endif // VESPERA_PORT_CORPUS_H
