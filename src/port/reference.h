/**
 * @file
 * Scalar reference interpreter for CudaKernelDesc.
 *
 * Executes the desc thread-by-thread in *per-instruction lockstep*:
 * every thread of a block completes operation k before any thread
 * starts operation k+1. That is strictly stronger than CUDA's
 * barrier-only guarantees, so any desc whose cross-thread shared-memory
 * communication is correctly fenced with Sync executes identically
 * here and on real SIMT hardware — and identically to the lowered TPC
 * program, which serializes strips between the same barriers. The
 * scorecard's functional-parity check compares lowered output tensors
 * against this interpreter's buffers.
 */

#ifndef VESPERA_PORT_REFERENCE_H
#define VESPERA_PORT_REFERENCE_H

#include <vector>

#include "port/cuda_desc.h"

namespace vespera::port {

/** Final global-buffer contents, indexed like desc.buffers. */
struct ReferenceResult
{
    std::vector<std::vector<float>> buffers;
};

/** Interpret `desc` (validates first). */
ReferenceResult runReference(const CudaKernelDesc &desc);

} // namespace vespera::port

#endif // VESPERA_PORT_REFERENCE_H
