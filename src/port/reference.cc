#include "port/reference.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vespera::port {

namespace {

/** Per-block interpreter state. */
struct BlockState
{
    const CudaKernelDesc &desc;
    std::vector<std::vector<float>> &buffers;
    std::vector<float> shared;
    /// regs[thread * numRegs + r]
    std::vector<float> regs;
    std::int64_t block = 0;

    LaneCtx
    laneCtx(std::int64_t tid, std::int64_t iter) const
    {
        LaneCtx c;
        c.tid = tid;
        c.lane = tid % warpSize;
        c.warp = tid / warpSize;
        c.block = block;
        c.blockX = block % desc.gridX;
        c.blockY = block / desc.gridX;
        c.globalTid = block * desc.blockThreads + tid;
        c.iter = iter;
        return c;
    }

    float *
    regsOf(std::int64_t tid)
    {
        return regs.data() + tid * desc.numRegs;
    }
};

void
checkBufferIndex(const BlockState &st, const CudaInstr &i,
                 std::int64_t idx)
{
    const std::vector<float> &buf =
        st.buffers[static_cast<std::size_t>(i.buf)];
    vassert(idx >= 0 && idx < static_cast<std::int64_t>(buf.size()),
            "%s: %s address %lld out of buffer '%s' [0, %zu)",
            st.desc.name.c_str(), cudaOpName(i.op),
            static_cast<long long>(idx),
            st.desc.buffers[static_cast<std::size_t>(i.buf)].name.c_str(),
            buf.size());
}

void
checkSharedIndex(const BlockState &st, const CudaInstr &i,
                 std::int64_t idx)
{
    vassert(idx >= 0 && idx < st.desc.sharedElems,
            "%s: %s shared address %lld out of [0, %lld)",
            st.desc.name.c_str(), cudaOpName(i.op),
            static_cast<long long>(idx),
            static_cast<long long>(st.desc.sharedElems));
}

/**
 * Execute one op for all threads of the block in lockstep: evaluate
 * every thread's reads before any thread's writes take effect (two
 * sweeps for ops whose sources other threads could overwrite).
 */
void
stepInstr(BlockState &st, const CudaInstr &i, std::int64_t iter)
{
    const std::int64_t threads = st.desc.blockThreads;

    if (i.op == CudaOp::Sync)
        return; // Lockstep interpretation is already barrier-strong.

    if (i.op == CudaOp::WarpReduceSum || i.op == CudaOp::WarpReduceMax) {
        // Warp-wide reduction over all lanes of each (possibly
        // partial) warp; every lane receives the result.
        for (std::int64_t wbase = 0; wbase < threads;
             wbase += warpSize) {
            const std::int64_t wend =
                std::min<std::int64_t>(wbase + warpSize, threads);
            double sum = 0;
            float mx = st.regsOf(wbase)[i.src0];
            for (std::int64_t t = wbase; t < wend; t++) {
                const float v = st.regsOf(t)[i.src0];
                sum += v;
                mx = std::max(mx, v);
            }
            const float r = i.op == CudaOp::WarpReduceSum
                                ? static_cast<float>(sum)
                                : mx;
            for (std::int64_t t = wbase; t < wend; t++)
                st.regsOf(t)[i.dst] = r;
        }
        return;
    }

    if (i.op == CudaOp::AtomicAddShared) {
        // Serialized over threads (deterministic ascending-tid order;
        // the lowering serializes lanes the same way).
        for (std::int64_t t = 0; t < threads; t++) {
            const LaneCtx c = st.laneCtx(t, iter);
            float *r = st.regsOf(t);
            if (!evalPred(i.pred, c, r))
                continue;
            const std::int64_t idx = evalAddr(i.addr, c, r);
            checkSharedIndex(st, i, idx);
            st.shared[static_cast<std::size_t>(idx)] += r[i.src0];
        }
        return;
    }

    // Read phase: compute every thread's result against pre-op state.
    std::vector<float> results(static_cast<std::size_t>(threads), 0.0f);
    std::vector<bool> active(static_cast<std::size_t>(threads), false);
    for (std::int64_t t = 0; t < threads; t++) {
        const LaneCtx c = st.laneCtx(t, iter);
        float *r = st.regsOf(t);
        if (!evalPred(i.pred, c, r))
            continue;
        active[static_cast<std::size_t>(t)] = true;
        float v = 0;
        switch (i.op) {
          case CudaOp::LoadGlobal: {
            const std::int64_t idx = evalAddr(i.addr, c, r);
            checkBufferIndex(st, i, idx);
            v = st.buffers[static_cast<std::size_t>(i.buf)]
                          [static_cast<std::size_t>(idx)];
            break;
          }
          case CudaOp::StoreGlobal: {
            v = r[i.src0];
            break;
          }
          case CudaOp::LoadShared: {
            const std::int64_t idx = evalAddr(i.addr, c, r);
            checkSharedIndex(st, i, idx);
            v = st.shared[static_cast<std::size_t>(idx)];
            break;
          }
          case CudaOp::StoreShared: {
            v = r[i.src0];
            break;
          }
          case CudaOp::MovImm: v = i.imm; break;
          case CudaOp::Mov: v = r[i.src0]; break;
          case CudaOp::Add: v = r[i.src0] + r[i.src1]; break;
          case CudaOp::Sub: v = r[i.src0] - r[i.src1]; break;
          case CudaOp::Mul: v = r[i.src0] * r[i.src1]; break;
          case CudaOp::Max: v = std::max(r[i.src0], r[i.src1]); break;
          case CudaOp::Fma:
            v = r[i.src0] * r[i.src1] + r[i.src2];
            break;
          case CudaOp::AddImm: v = r[i.src0] + i.imm; break;
          case CudaOp::MulImm: v = r[i.src0] * i.imm; break;
          case CudaOp::Exp: v = std::exp(r[i.src0]); break;
          case CudaOp::Rsqrt: v = 1.0f / std::sqrt(r[i.src0]); break;
          case CudaOp::Recip: v = 1.0f / r[i.src0]; break;
          default:
            vpanic("unhandled op %s", cudaOpName(i.op));
        }
        results[static_cast<std::size_t>(t)] = v;
    }

    // Write phase.
    for (std::int64_t t = 0; t < threads; t++) {
        if (!active[static_cast<std::size_t>(t)])
            continue;
        const LaneCtx c = st.laneCtx(t, iter);
        float *r = st.regsOf(t);
        const float v = results[static_cast<std::size_t>(t)];
        switch (i.op) {
          case CudaOp::StoreGlobal: {
            const std::int64_t idx = evalAddr(i.addr, c, r);
            checkBufferIndex(st, i, idx);
            st.buffers[static_cast<std::size_t>(i.buf)]
                      [static_cast<std::size_t>(idx)] = v;
            break;
          }
          case CudaOp::StoreShared: {
            const std::int64_t idx = evalAddr(i.addr, c, r);
            checkSharedIndex(st, i, idx);
            st.shared[static_cast<std::size_t>(idx)] = v;
            break;
          }
          default:
            r[i.dst] = v;
            break;
        }
    }
}

} // namespace

ReferenceResult
runReference(const CudaKernelDesc &desc)
{
    validateDesc(desc);

    ReferenceResult out;
    out.buffers.reserve(desc.buffers.size());
    for (const BufferDesc &b : desc.buffers) {
        std::vector<float> data(static_cast<std::size_t>(b.elems));
        for (std::int64_t i = 0; i < b.elems; i++)
            data[static_cast<std::size_t>(i)] = bufferInitValue(b, i);
        out.buffers.push_back(std::move(data));
    }

    for (std::int64_t block = 0; block < desc.gridBlocks; block++) {
        BlockState st{desc, out.buffers};
        st.block = block;
        st.shared.assign(static_cast<std::size_t>(desc.sharedElems),
                         0.0f);
        st.regs.assign(static_cast<std::size_t>(desc.blockThreads *
                                                desc.numRegs),
                       0.0f);
        for (const CudaStmt &s : desc.body) {
            if (s.kind == CudaStmt::Kind::Instr) {
                stepInstr(st, s.instr, 0);
            } else {
                for (std::int64_t trip = 0; trip < s.loop.trips;
                     trip++) {
                    for (const CudaInstr &i : s.loop.body)
                        stepInstr(st, i, trip);
                }
            }
        }
    }
    return out;
}

} // namespace vespera::port
