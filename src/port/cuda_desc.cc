#include "port/cuda_desc.h"

#include <cmath>

#include "common/logging.h"

namespace vespera::port {

std::int64_t
evalAddr(const AddrExpr &a, const LaneCtx &c, const float *regs)
{
    std::int64_t v = a.base + a.cTid * c.tid + a.cLane * c.lane +
                     a.cWarp * c.warp + a.cBlock * c.block +
                     a.cBlockX * c.blockX + a.cBlockY * c.blockY +
                     a.cGlobal * c.globalTid + a.cIter * c.iter +
                     a.cPow2Iter * (std::int64_t{1} << c.iter);
    if (a.indexReg >= 0)
        v += static_cast<std::int64_t>(regs[a.indexReg]);
    return v;
}

bool
evalPred(const Pred &p, const LaneCtx &c, const float *regs)
{
    if (!p.active)
        return true;
    double lhs, rhs;
    if (p.onRegs) {
        lhs = regs[p.lhsReg];
        rhs = regs[p.rhsReg];
    } else {
        lhs = static_cast<double>(evalAddr(p.lhs, c, regs));
        rhs = static_cast<double>(evalAddr(p.rhs, c, regs));
    }
    switch (p.op) {
      case CmpOp::Lt: return lhs < rhs;
      case CmpOp::Ge: return lhs >= rhs;
      case CmpOp::Eq: return lhs == rhs;
      case CmpOp::Ne: return lhs != rhs;
    }
    return false;
}

const char *
cudaOpName(CudaOp op)
{
    switch (op) {
      case CudaOp::LoadGlobal: return "ld.global";
      case CudaOp::StoreGlobal: return "st.global";
      case CudaOp::LoadShared: return "ld.shared";
      case CudaOp::StoreShared: return "st.shared";
      case CudaOp::AtomicAddShared: return "atom.shared.add";
      case CudaOp::MovImm: return "mov.imm";
      case CudaOp::Mov: return "mov";
      case CudaOp::Add: return "add";
      case CudaOp::Sub: return "sub";
      case CudaOp::Mul: return "mul";
      case CudaOp::Max: return "max";
      case CudaOp::Fma: return "fma";
      case CudaOp::AddImm: return "add.imm";
      case CudaOp::MulImm: return "mul.imm";
      case CudaOp::Exp: return "exp";
      case CudaOp::Rsqrt: return "rsqrt";
      case CudaOp::Recip: return "recip";
      case CudaOp::WarpReduceSum: return "warp.reduce.sum";
      case CudaOp::WarpReduceMax: return "warp.reduce.max";
      case CudaOp::Sync: return "syncthreads";
    }
    return "?";
}

float
bufferInitValue(const BufferDesc &buf, std::int64_t i)
{
    switch (buf.init) {
      case BufferInit::Zero:
        return 0.0f;
      case BufferInit::Linear:
        return static_cast<float>(((i * 37 + 11) % 113) * 0.01 *
                                  buf.initScale);
      case BufferInit::Wave: {
        // Deterministic hash fold into [-scale, scale]; avoids libm so
        // reference and lowered paths agree bit-for-bit.
        const std::uint64_t h =
            (static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ull) >> 33;
        const double unit =
            static_cast<double>(h % 2048) / 1024.0 - 1.0;
        return static_cast<float>(unit * buf.initScale);
      }
      case BufferInit::Mod:
        return static_cast<float>(i % buf.initMod);
      case BufferInit::Indices:
        return static_cast<float>((i * 73 + 5) % buf.initMod);
    }
    return 0.0f;
}

namespace {

bool
isMemOp(CudaOp op)
{
    return op == CudaOp::LoadGlobal || op == CudaOp::StoreGlobal ||
           op == CudaOp::LoadShared || op == CudaOp::StoreShared ||
           op == CudaOp::AtomicAddShared;
}

bool
isGlobalOp(CudaOp op)
{
    return op == CudaOp::LoadGlobal || op == CudaOp::StoreGlobal;
}

bool
isWarpOp(CudaOp op)
{
    return op == CudaOp::WarpReduceSum || op == CudaOp::WarpReduceMax;
}

void
validateReg(const CudaKernelDesc &desc, std::int32_t reg,
            const char *what)
{
    vassert(reg >= 0 && reg < desc.numRegs,
            "%s: %s register r%d out of range (numRegs=%d)",
            desc.name.c_str(), what, static_cast<int>(reg),
            static_cast<int>(desc.numRegs));
}

void
validateAddr(const CudaKernelDesc &desc, const AddrExpr &addr)
{
    if (addr.indexReg >= 0)
        validateReg(desc, addr.indexReg, "address index");
}

void
validateInstr(const CudaKernelDesc &desc, const CudaInstr &i,
              bool inLoop)
{
    const CudaOp op = i.op;
    if (isGlobalOp(op)) {
        vassert(i.buf >= 0 &&
                static_cast<std::size_t>(i.buf) < desc.buffers.size(),
                "%s: %s references buffer %d of %zu",
                desc.name.c_str(), cudaOpName(op),
                static_cast<int>(i.buf), desc.buffers.size());
    }
    if (isMemOp(op))
        validateAddr(desc, i.addr);
    if (!isGlobalOp(op) && isMemOp(op)) {
        vassert(desc.sharedElems > 0,
                "%s: %s without shared memory", desc.name.c_str(),
                cudaOpName(op));
    }
    if (i.addr.iterDependent() && isMemOp(op)) {
        vassert(inLoop, "%s: iter-dependent address outside a loop",
                desc.name.c_str());
    }

    // Register operands, per-op.
    const bool reads0 =
        op == CudaOp::StoreGlobal || op == CudaOp::StoreShared ||
        op == CudaOp::AtomicAddShared || op == CudaOp::Mov ||
        op == CudaOp::Add || op == CudaOp::Sub || op == CudaOp::Mul ||
        op == CudaOp::Max || op == CudaOp::Fma || op == CudaOp::AddImm ||
        op == CudaOp::MulImm || op == CudaOp::Exp ||
        op == CudaOp::Rsqrt || op == CudaOp::Recip || isWarpOp(op);
    const bool reads1 = op == CudaOp::Add || op == CudaOp::Sub ||
                        op == CudaOp::Mul || op == CudaOp::Max ||
                        op == CudaOp::Fma;
    const bool writes =
        op == CudaOp::LoadGlobal || op == CudaOp::LoadShared ||
        op == CudaOp::MovImm || op == CudaOp::Mov || op == CudaOp::Add ||
        op == CudaOp::Sub || op == CudaOp::Mul || op == CudaOp::Max ||
        op == CudaOp::Fma || op == CudaOp::AddImm ||
        op == CudaOp::MulImm || op == CudaOp::Exp ||
        op == CudaOp::Rsqrt || op == CudaOp::Recip || isWarpOp(op);
    if (reads0)
        validateReg(desc, i.src0, "source");
    if (reads1)
        validateReg(desc, i.src1, "source");
    if (op == CudaOp::Fma)
        validateReg(desc, i.src2, "source");
    if (writes)
        validateReg(desc, i.dst, "destination");

    if (i.pred.active) {
        vassert(!isWarpOp(op),
                "%s: warp reduction under predication",
                desc.name.c_str());
        vassert(op != CudaOp::Sync, "%s: predicated syncthreads",
                desc.name.c_str());
        if (i.pred.onRegs) {
            validateReg(desc, i.pred.lhsReg, "predicate");
            validateReg(desc, i.pred.rhsReg, "predicate");
        } else {
            validateAddr(desc, i.pred.lhs);
            validateAddr(desc, i.pred.rhs);
        }
    }
}

} // namespace

void
validateDesc(const CudaKernelDesc &desc)
{
    vassert(!desc.name.empty(), "unnamed kernel desc");
    // Degenerate-geometry guards: a zero-block grid, zero-thread
    // block, or zero-element buffer describes no work and would
    // otherwise surface as silent empty traces or OOB addressing.
    vassert(desc.gridBlocks > 0, "%s: zero-block grid",
            desc.name.c_str());
    vassert(desc.blockThreads > 0, "%s: zero-thread block",
            desc.name.c_str());
    vassert(desc.gridX > 0 && desc.gridBlocks % desc.gridX == 0,
            "%s: grid (%lld blocks) not divisible into gridX=%lld",
            desc.name.c_str(),
            static_cast<long long>(desc.gridBlocks),
            static_cast<long long>(desc.gridX));
    vassert(desc.numRegs > 0, "%s: empty register file",
            desc.name.c_str());
    vassert(desc.sharedElems >= 0, "%s: negative shared size",
            desc.name.c_str());
    vassert(!desc.body.empty(), "%s: empty body", desc.name.c_str());
    for (const BufferDesc &b : desc.buffers) {
        vassert(b.elems > 0, "%s: zero-element buffer '%s'",
                desc.name.c_str(), b.name.c_str());
        vassert(b.initMod > 0, "%s: buffer '%s' initMod must be > 0",
                desc.name.c_str(), b.name.c_str());
    }
    for (const CudaStmt &s : desc.body) {
        if (s.kind == CudaStmt::Kind::Instr) {
            validateInstr(desc, s.instr, /*inLoop=*/false);
        } else {
            vassert(s.loop.trips > 0, "%s: zero-trip loop",
                    desc.name.c_str());
            vassert(!s.loop.body.empty(), "%s: empty loop body",
                    desc.name.c_str());
            for (const CudaInstr &i : s.loop.body)
                validateInstr(desc, i, /*inLoop=*/true);
        }
    }
}

} // namespace vespera::port
