#include "port/corpus.h"

#include <algorithm>
#include <array>
#include <memory>

#include "common/logging.h"
#include "cuda/simt.h"
#include "kern/layernorm.h"
#include "kern/softmax.h"
#include "kern/stream.h"
#include "tpc/dispatcher.h"

namespace vespera::port {

namespace {

using tpc::Int5;

// ---------------------------------------------------------------------
// Hand-written TPC-C comparators. These implement the corpus workloads
// the way a Gaudi kernel author would: 256 B (64-lane fp32) vector
// accesses, 4x unrolling so independent work hides the 4-cycle result
// latency, loads hoisted ahead of dependent ops, and independent
// accumulator chains for reductions.
// ---------------------------------------------------------------------

constexpr int kLanes = 64;   ///< 256 B of fp32: the TPC access granule.
constexpr int kUnroll = 4;

tpc::LaunchParams
handParams(const char *name)
{
    tpc::LaunchParams p;
    p.numTpcs = 24;
    p.partitionDim = 1;
    p.vectorBytes = kLanes * 4;
    p.kernelName = name;
    return p;
}

/**
 * Generic streaming hand kernel over `elems` elements: per 64-lane
 * vector, `loads` stream loads, `alu` dependent vector-ALU ops (the
 * dependency chains are interleaved across the 4x unroll, so they
 * overlap), `perLaneLocal` independent single-lane local-memory ops
 * (hand-tiled staging, e.g. a transpose gather), and `stores` stream
 * stores.
 */
Seconds
handStreams(const char *name, std::int64_t elems, int loads, int stores,
            int alu, int per_lane_local = 0)
{
    const std::int64_t vectors = (elems + kLanes - 1) / kLanes;
    auto in = std::make_shared<tpc::Tensor>(
        std::vector<std::int64_t>{elems}, DataType::FP32);
    in->fill([](std::int64_t i) {
        return static_cast<float>(i % 97) * 0.01f;
    });
    auto out = std::make_shared<tpc::Tensor>(
        std::vector<std::int64_t>{std::max<std::int64_t>(elems, 1)},
        DataType::FP32);

    tpc::Kernel kernel = [=](tpc::TpcContext &ctx) {
        for (std::int64_t v = ctx.memberStart(1); v < ctx.memberEnd(1);
             v += kUnroll) {
            const std::int64_t vEnd =
                std::min(ctx.memberEnd(1), v + kUnroll);
            std::array<tpc::Vec, kUnroll> acc;
            // All loads first: independent, issue-limited.
            for (std::int64_t u = v; u < vEnd; u++) {
                tpc::Vec a = ctx.v_ld_tnsr({u * kLanes, 0, 0, 0, 0},
                                           *in, kLanes * 4);
                for (int ld = 1; ld < loads; ld++) {
                    const tpc::Vec b = ctx.v_ld_tnsr(
                        {u * kLanes, 0, 0, 0, 0}, *in, kLanes * 4);
                    a = ctx.v_add(a, b);
                }
                acc[static_cast<std::size_t>(u - v)] = a;
            }
            for (std::int64_t u = v; u < vEnd; u++) {
                for (int k = 0; k < per_lane_local; k++)
                    (void)ctx.v_ld_local((k * 7) % 256, 1);
            }
            // Dependent chains, interleaved across the unroll.
            for (int a = 0; a < alu; a++) {
                for (std::int64_t u = v; u < vEnd; u++) {
                    tpc::Vec &r = acc[static_cast<std::size_t>(u - v)];
                    r = ctx.v_mac_s(r, 1.0001f, r);
                }
            }
            for (int s = 0; s < stores; s++) {
                for (std::int64_t u = v; u < vEnd; u++)
                    ctx.v_st_tnsr({u * kLanes, 0, 0, 0, 0}, *out,
                                  acc[static_cast<std::size_t>(u - v)]);
            }
        }
    };

    tpc::IndexSpace space;
    space.size = {1, vectors, 1, 1, 1};
    tpc::TpcDispatcher dispatcher;
    return dispatcher.launch(kernel, space, handParams(name)).time;
}

/** Hand reduction: 4 independent accumulator chains, loads hoisted. */
Seconds
handReduce(const char *name, std::int64_t elems, bool dot)
{
    const std::int64_t vectors = (elems + kLanes - 1) / kLanes;
    auto in = std::make_shared<tpc::Tensor>(
        std::vector<std::int64_t>{elems}, DataType::FP32);
    in->fill([](std::int64_t i) {
        return static_cast<float>(i % 89) * 0.01f;
    });
    auto in2 = std::make_shared<tpc::Tensor>(
        std::vector<std::int64_t>{elems}, DataType::FP32);
    auto out = std::make_shared<tpc::Tensor>(
        std::vector<std::int64_t>{kLanes}, DataType::FP32);

    tpc::Kernel kernel = [=](tpc::TpcContext &ctx) {
        std::array<tpc::Vec, kUnroll> acc;
        for (auto &a : acc)
            a = ctx.v_zero(kLanes);
        for (std::int64_t v = ctx.memberStart(1); v < ctx.memberEnd(1);
             v += kUnroll) {
            const std::int64_t vEnd =
                std::min(ctx.memberEnd(1), v + kUnroll);
            std::array<tpc::Vec, kUnroll> a, b;
            for (std::int64_t u = v; u < vEnd; u++) {
                a[static_cast<std::size_t>(u - v)] = ctx.v_ld_tnsr(
                    {u * kLanes, 0, 0, 0, 0}, *in, kLanes * 4);
                if (dot)
                    b[static_cast<std::size_t>(u - v)] = ctx.v_ld_tnsr(
                        {u * kLanes, 0, 0, 0, 0}, *in2, kLanes * 4);
            }
            for (std::int64_t u = v; u < vEnd; u++) {
                const auto s = static_cast<std::size_t>(u - v);
                acc[s] = dot ? ctx.v_mac(a[s], b[s], acc[s])
                             : ctx.v_add(acc[s], a[s]);
            }
        }
        const tpc::Vec t = ctx.v_add(ctx.v_add(acc[0], acc[1]),
                                     ctx.v_add(acc[2], acc[3]));
        const tpc::Vec r = ctx.v_reduce_add(t);
        ctx.v_st_tnsr({ctx.memberStart(1) % kLanes, 0, 0, 0, 0}, *out,
                      r);
    };

    tpc::IndexSpace space;
    space.size = {1, vectors, 1, 1, 1};
    tpc::TpcDispatcher dispatcher;
    return dispatcher.launch(kernel, space, handParams(name)).time;
}

/**
 * Hand gather/scatter: random 4 B accesses with all loads issued
 * before the dependent staging ops, so the 130-cycle random-access
 * latency overlaps across lanes instead of serializing.
 */
Seconds
handGather(const char *name, std::int64_t n, std::int64_t table_elems,
           bool write)
{
    const std::int64_t vectors = (n + kLanes - 1) / kLanes;
    auto idx = std::make_shared<tpc::Tensor>(
        std::vector<std::int64_t>{n}, DataType::FP32);
    idx->fill([table_elems](std::int64_t i) {
        return static_cast<float>((i * 73 + 5) % table_elems);
    });
    auto table = std::make_shared<tpc::Tensor>(
        std::vector<std::int64_t>{table_elems}, DataType::FP32);
    auto out = std::make_shared<tpc::Tensor>(
        std::vector<std::int64_t>{std::max(n, table_elems)},
        DataType::FP32);

    tpc::Kernel kernel = [=](tpc::TpcContext &ctx) {
        for (std::int64_t v = ctx.memberStart(1); v < ctx.memberEnd(1);
             v++) {
            const tpc::Vec iv = ctx.v_ld_tnsr({v * kLanes, 0, 0, 0, 0},
                                              *idx, kLanes * 4);
            const int lanes = iv.laneCount();
            if (!write) {
                std::vector<tpc::Vec> lvs;
                lvs.reserve(static_cast<std::size_t>(lanes));
                for (int l = 0; l < lanes; l++) {
                    const auto a = static_cast<std::int64_t>(
                        iv.lanes[static_cast<std::size_t>(l)]);
                    lvs.push_back(ctx.v_ld_tnsr({a, 0, 0, 0, 0},
                                                *table, 4,
                                                tpc::Access::Random));
                }
                for (int l = 0; l < lanes; l++)
                    ctx.v_st_local(l, lvs[static_cast<std::size_t>(l)]);
                const tpc::Vec g = ctx.v_ld_local(0, lanes);
                ctx.v_st_tnsr({v * kLanes, 0, 0, 0, 0}, *out, g);
            } else {
                const tpc::Vec sv = ctx.v_ld_tnsr(
                    {v * kLanes, 0, 0, 0, 0}, *table, kLanes * 4);
                ctx.v_st_local(0, sv);
                std::vector<tpc::Vec> lvs;
                lvs.reserve(static_cast<std::size_t>(lanes));
                for (int l = 0; l < lanes; l++)
                    lvs.push_back(ctx.v_ld_local(l, 1));
                for (int l = 0; l < lanes; l++) {
                    const auto a = static_cast<std::int64_t>(
                        iv.lanes[static_cast<std::size_t>(l)]);
                    ctx.v_st_tnsr({a, 0, 0, 0, 0}, *out,
                                  lvs[static_cast<std::size_t>(l)],
                                  tpc::Access::Random);
                }
            }
        }
    };

    tpc::IndexSpace space;
    space.size = {1, vectors, 1, 1, 1};
    tpc::TpcDispatcher dispatcher;
    return dispatcher.launch(kernel, space, handParams(name)).time;
}

// ---------------------------------------------------------------------
// Desc-building helpers.
// ---------------------------------------------------------------------

CudaStmt
I(CudaInstr i)
{
    return CudaStmt::of(i);
}

CudaInstr
gLd(int dst, int buf, AddrExpr a, Pred p = {})
{
    CudaInstr i;
    i.op = CudaOp::LoadGlobal;
    i.dst = dst;
    i.buf = buf;
    i.addr = a;
    i.pred = p;
    return i;
}

CudaInstr
gSt(int buf, int src, AddrExpr a, Pred p = {})
{
    CudaInstr i;
    i.op = CudaOp::StoreGlobal;
    i.src0 = src;
    i.buf = buf;
    i.addr = a;
    i.pred = p;
    return i;
}

CudaInstr
sLd(int dst, AddrExpr a, Pred p = {})
{
    CudaInstr i;
    i.op = CudaOp::LoadShared;
    i.dst = dst;
    i.addr = a;
    i.pred = p;
    return i;
}

CudaInstr
sSt(int src, AddrExpr a, Pred p = {})
{
    CudaInstr i;
    i.op = CudaOp::StoreShared;
    i.src0 = src;
    i.addr = a;
    i.pred = p;
    return i;
}

CudaInstr
sAtomAdd(int src, AddrExpr a)
{
    CudaInstr i;
    i.op = CudaOp::AtomicAddShared;
    i.src0 = src;
    i.addr = a;
    return i;
}

CudaInstr
rr(CudaOp op, int dst, int s0, int s1 = -1, int s2 = -1)
{
    CudaInstr i;
    i.op = op;
    i.dst = dst;
    i.src0 = s0;
    i.src1 = s1;
    i.src2 = s2;
    return i;
}

CudaInstr
ri(CudaOp op, int dst, int s0, float imm, Pred p = {})
{
    CudaInstr i;
    i.op = op;
    i.dst = dst;
    i.src0 = s0;
    i.imm = imm;
    i.pred = p;
    return i;
}

CudaInstr
movi(int dst, float imm)
{
    CudaInstr i;
    i.op = CudaOp::MovImm;
    i.dst = dst;
    i.imm = imm;
    return i;
}

CudaInstr
warp(CudaOp op, int dst, int src)
{
    CudaInstr i;
    i.op = op;
    i.dst = dst;
    i.src0 = src;
    return i;
}

CudaInstr
syncI()
{
    CudaInstr i;
    i.op = CudaOp::Sync;
    return i;
}

Pred
laneLt(std::int64_t n)
{
    Pred p;
    p.active = true;
    p.op = CmpOp::Lt;
    p.lhs = AddrExpr{.cLane = 1};
    p.rhs = AddrExpr{.base = n};
    return p;
}

Pred
laneEq0()
{
    Pred p;
    p.active = true;
    p.op = CmpOp::Eq;
    p.lhs = AddrExpr{.cLane = 1};
    p.rhs = AddrExpr{};
    return p;
}

Pred
tidEq0()
{
    Pred p;
    p.active = true;
    p.op = CmpOp::Eq;
    p.lhs = AddrExpr{.cTid = 1};
    p.rhs = AddrExpr{};
    return p;
}

Pred
tidGePow2()
{
    Pred p;
    p.active = true;
    p.op = CmpOp::Ge;
    p.lhs = AddrExpr{.cTid = 1};
    p.rhs = AddrExpr{.cPow2Iter = 1};
    return p;
}

Pred
tidLt(std::int64_t n)
{
    Pred p;
    p.active = true;
    p.op = CmpOp::Lt;
    p.lhs = AddrExpr{.cTid = 1};
    p.rhs = AddrExpr{.base = n};
    return p;
}

Pred
regEq(int l, int r)
{
    Pred p;
    p.active = true;
    p.onRegs = true;
    p.op = CmpOp::Eq;
    p.lhsReg = l;
    p.rhsReg = r;
    return p;
}

BufferDesc
buf(std::string name, std::int64_t elems, BufferInit init,
    bool output = false, double scale = 1.0, std::int64_t mod = 1)
{
    BufferDesc b;
    b.name = std::move(name);
    b.elems = elems;
    b.output = output;
    b.init = init;
    b.initScale = scale;
    b.initMod = mod;
    return b;
}

CudaKernelDesc
makeDesc(std::string name, std::string shape, std::int64_t blocks,
         std::int64_t block_threads, int regs, std::int64_t shared,
         std::int64_t grid_x = 1)
{
    CudaKernelDesc d;
    d.name = std::move(name);
    d.shape = std::move(shape);
    d.gridBlocks = blocks;
    d.gridX = grid_x;
    d.blockThreads = block_threads;
    d.numRegs = regs;
    d.sharedElems = shared;
    return d;
}

/**
 * Appends the canonical CUDA two-level block reduction tail: warp
 * reduce -> one shared slot per warp (lane 0) -> barrier -> warp 0
 * re-reduces the partials -> thread 0 stores. Registers src..src+3
 * are used; the block result lands in reg src+3.
 */
void
blockReduceTail(std::vector<CudaStmt> &body, CudaOp warp_op,
                float identity, int src, std::int64_t num_warps,
                std::int64_t shared_base = 0)
{
    body.push_back(I(warp(warp_op, src + 1, src)));
    body.push_back(I(sSt(src + 1,
                         AddrExpr{.base = shared_base, .cWarp = 1},
                         laneEq0())));
    body.push_back(I(syncI()));
    body.push_back(I(movi(src + 2, identity)));
    body.push_back(I(sLd(src + 2,
                         AddrExpr{.base = shared_base, .cLane = 1},
                         laneLt(num_warps))));
    body.push_back(I(warp(warp_op, src + 3, src + 2)));
}

Seconds
a100Stream(std::uint64_t elems, double bytes_per_elem,
           double flops_per_elem, bool fma)
{
    cuda::SimtModel m;
    cuda::StreamKernelDesc d;
    d.numElements = elems;
    d.bytesPerElement = bytes_per_elem;
    d.flopsPerElement = flops_per_elem;
    d.usesFma = fma;
    return m.streamKernel(d, DataType::FP32).time;
}

// ---------------------------------------------------------------------
// The corpus.
// ---------------------------------------------------------------------

std::vector<CorpusEntry>
buildCorpus()
{
    std::vector<CorpusEntry> c;

    // --- port_saxpy: y = a*x + y ------------------------------------
    const auto saxpyDesc = [](const char *name) {
        const std::int64_t n = 393216;
        CudaKernelDesc d = makeDesc(name, "n=393216", 1536, 256, 4, 0);
        d.buffers = {buf("x", n, BufferInit::Wave),
                     buf("y", n, BufferInit::Linear, /*output=*/true)};
        d.body = {I(gLd(0, 0, AddrExpr{.cGlobal = 1})),
                  I(gLd(1, 1, AddrExpr{.cGlobal = 1})),
                  I(movi(2, 1.5f)),
                  I(rr(CudaOp::Fma, 3, 0, 2, 1)),
                  I(gSt(1, 3, AddrExpr{.cGlobal = 1}))};
        return d;
    };
    {
        CorpusEntry e;
        e.desc = saxpyDesc("port_saxpy");
        e.notes = "warp-width (128 B) accesses + strip-serial stalls";
        e.handTime = [] {
            kern::StreamConfig cfg;
            cfg.op = kern::StreamOp::Triad;
            cfg.numElements = 393216;
            cfg.dt = DataType::FP32;
            return kern::runStreamGaudi(cfg).time;
        };
        e.a100Time = [] { return a100Stream(393216, 12, 2, true); };
        c.push_back(std::move(e));
    }

    // --- port_vecadd: c = a + b -------------------------------------
    {
        const std::int64_t n = 393216;
        CorpusEntry e;
        e.desc = makeDesc("port_vecadd", "n=393216", 1536, 256, 4, 0);
        e.desc.buffers = {buf("a", n, BufferInit::Wave),
                          buf("b", n, BufferInit::Linear),
                          buf("c", n, BufferInit::Zero, true)};
        e.desc.body = {I(gLd(0, 0, AddrExpr{.cGlobal = 1})),
                       I(gLd(1, 1, AddrExpr{.cGlobal = 1})),
                       I(rr(CudaOp::Add, 2, 0, 1)),
                       I(gSt(2, 2, AddrExpr{.cGlobal = 1}))};
        e.notes = "STREAM add";
        e.handTime = [] {
            kern::StreamConfig cfg;
            cfg.op = kern::StreamOp::Add;
            cfg.numElements = 393216;
            cfg.dt = DataType::FP32;
            return kern::runStreamGaudi(cfg).time;
        };
        e.a100Time = [] { return a100Stream(393216, 12, 1, false); };
        c.push_back(std::move(e));
    }

    // --- port_scale: b = s * a --------------------------------------
    {
        const std::int64_t n = 393216;
        CorpusEntry e;
        e.desc = makeDesc("port_scale", "n=393216", 1536, 256, 2, 0);
        e.desc.buffers = {buf("a", n, BufferInit::Wave),
                          buf("b", n, BufferInit::Zero, true)};
        e.desc.body = {I(gLd(0, 0, AddrExpr{.cGlobal = 1})),
                       I(ri(CudaOp::MulImm, 1, 0, 2.5f)),
                       I(gSt(1, 1, AddrExpr{.cGlobal = 1}))};
        e.notes = "STREAM scale";
        e.handTime = [] {
            kern::StreamConfig cfg;
            cfg.op = kern::StreamOp::Scale;
            cfg.numElements = 393216;
            cfg.dt = DataType::FP32;
            return kern::runStreamGaudi(cfg).time;
        };
        e.a100Time = [] { return a100Stream(393216, 8, 1, false); };
        c.push_back(std::move(e));
    }

    // --- port_strided_copy: out[i] = in[2i] -------------------------
    {
        const std::int64_t n = 24576;
        CorpusEntry e;
        e.desc = makeDesc("port_strided_copy", "n=24576,stride=2", 96,
                          256, 2, 0);
        e.desc.buffers = {buf("in", 2 * n, BufferInit::Wave),
                          buf("out", n, BufferInit::Zero, true)};
        e.desc.body = {I(gLd(0, 0, AddrExpr{.cGlobal = 2})),
                       I(gSt(1, 0, AddrExpr{.cGlobal = 1}))};
        e.notes = "stride-2 load shatters into per-lane transactions";
        e.handTime = [] {
            // Hand version re-lays the data out and streams it.
            kern::StreamConfig cfg;
            cfg.op = kern::StreamOp::Scale;
            cfg.numElements = 24576;
            cfg.dt = DataType::FP32;
            return kern::runStreamGaudi(cfg).time;
        };
        e.a100Time = [] {
            cuda::SimtModel m;
            return m.stridedSweep({4, 8, 32}, 24576).time;
        };
        c.push_back(std::move(e));
    }

    // --- port_staged_copy: global -> shared -> global ----------------
    {
        const std::int64_t n = 49152;
        CorpusEntry e;
        e.desc = makeDesc("port_staged_copy", "n=49152", 192, 256, 2,
                          256);
        e.desc.buffers = {buf("in", n, BufferInit::Wave),
                          buf("out", n, BufferInit::Zero, true)};
        e.desc.body = {I(gLd(0, 0, AddrExpr{.cGlobal = 1})),
                       I(sSt(0, AddrExpr{.cTid = 1})),
                       I(syncI()),
                       I(sLd(1, AddrExpr{.cTid = 1})),
                       I(gSt(1, 1, AddrExpr{.cGlobal = 1}))};
        e.notes = "shared staging is redundant on a TPC";
        e.handTime = [] {
            kern::StreamConfig cfg;
            cfg.op = kern::StreamOp::Scale;
            cfg.numElements = 49152;
            cfg.dt = DataType::FP32;
            return kern::runStreamGaudi(cfg).time;
        };
        e.a100Time = [] { return a100Stream(49152, 8, 0, false); };
        c.push_back(std::move(e));
    }

    // --- port_branchy_scale: out = lane < 16 ? 3x : x ----------------
    {
        const std::int64_t n = 49152;
        CorpusEntry e;
        e.desc = makeDesc("port_branchy_scale", "n=49152", 192, 256, 2,
                          0);
        e.desc.buffers = {buf("x", n, BufferInit::Wave),
                          buf("out", n, BufferInit::Zero, true)};
        e.desc.body = {I(gLd(0, 0, AddrExpr{.cGlobal = 1})),
                       I(rr(CudaOp::Mov, 1, 0)),
                       I(ri(CudaOp::MulImm, 1, 0, 3.0f, laneLt(16))),
                       I(gSt(1, 1, AddrExpr{.cGlobal = 1}))};
        e.notes = "SIMT divergence emulated with mask + select";
        e.handTime = [] {
            // Branch-free hand version: one select-free scale pass.
            kern::StreamConfig cfg;
            cfg.op = kern::StreamOp::Scale;
            cfg.numElements = 49152;
            cfg.dt = DataType::FP32;
            return kern::runStreamGaudi(cfg).time;
        };
        e.a100Time = [] { return a100Stream(49152, 8, 1, false); };
        c.push_back(std::move(e));
    }

    // --- port_reduce_sum: out[block] = sum(x[block slice]) -----------
    {
        const std::int64_t n = 98304;
        CorpusEntry e;
        e.desc = makeDesc("port_reduce_sum", "n=98304", 384, 256, 6, 8);
        e.desc.buffers = {buf("x", n, BufferInit::Wave),
                          buf("out", 384, BufferInit::Zero, true)};
        e.desc.body = {I(gLd(0, 0, AddrExpr{.cGlobal = 1}))};
        blockReduceTail(e.desc.body, CudaOp::WarpReduceSum, 0.0f, 0, 8);
        e.desc.body.push_back(
            I(gSt(1, 3, AddrExpr{.cBlock = 1}, tidEq0())));
        e.notes = "two-level block reduction";
        e.handTime = [] {
            return handReduce("hand_reduce_sum", 98304, false);
        };
        e.a100Time = [] { return a100Stream(98304, 4, 1, false); };
        c.push_back(std::move(e));
    }

    // --- port_dot: grid-strided dot-product partials -----------------
    {
        const std::int64_t n = 196608; // 192 blocks x 256 x 4 trips
        CorpusEntry e;
        e.desc = makeDesc("port_dot", "n=196608,trips=4", 192, 256, 7,
                          8);
        e.desc.buffers = {buf("x", n, BufferInit::Wave),
                          buf("y", n, BufferInit::Linear),
                          buf("out", 192, BufferInit::Zero, true)};
        CudaLoop loop;
        loop.trips = 4;
        loop.body = {
            gLd(0, 0, AddrExpr{.cGlobal = 1, .cIter = 49152}),
            gLd(1, 1, AddrExpr{.cGlobal = 1, .cIter = 49152}),
            rr(CudaOp::Fma, 2, 0, 1, 2)};
        e.desc.body.push_back(CudaStmt::of(loop));
        blockReduceTail(e.desc.body, CudaOp::WarpReduceSum, 0.0f, 2, 8);
        e.desc.body.push_back(
            I(gSt(2, 5, AddrExpr{.cBlock = 1}, tidEq0())));
        e.notes = "grid-strided loop + block reduction";
        e.handTime = [] {
            return handReduce("hand_dot", 196608, true);
        };
        e.a100Time = [] { return a100Stream(196608, 8, 2, true); };
        c.push_back(std::move(e));
    }

    // --- port_scan_incl: Hillis-Steele inclusive scan per block ------
    {
        const std::int64_t n = 24576;
        CorpusEntry e;
        e.desc = makeDesc("port_scan_incl", "n=24576,block=256", 96,
                          256, 5, 256);
        e.desc.buffers = {
            buf("x", n, BufferInit::Linear),
            buf("out", n, BufferInit::Zero, true)};
        e.desc.body = {I(gLd(0, 0, AddrExpr{.cGlobal = 1})),
                       I(sSt(0, AddrExpr{.cTid = 1})), I(syncI())};
        CudaLoop steps;
        steps.trips = 8; // log2(256)
        steps.body = {
            sLd(2, AddrExpr{.cTid = 1}),
            movi(1, 0.0f),
            sLd(1, AddrExpr{.cTid = 1, .cPow2Iter = -1}, tidGePow2()),
            rr(CudaOp::Add, 2, 2, 1),
            syncI(),
            sSt(2, AddrExpr{.cTid = 1}),
            syncI()};
        e.desc.body.push_back(CudaStmt::of(steps));
        e.desc.body.push_back(I(sLd(3, AddrExpr{.cTid = 1})));
        e.desc.body.push_back(I(gSt(1, 3, AddrExpr{.cGlobal = 1})));
        e.notes = "barrier-heavy shared-memory scan";
        e.handTime = [] {
            // Hand scan: lane-shift adds in local memory, one pass.
            return handStreams("hand_scan", 24576, 1, 1, 6, 12);
        };
        e.a100Time = [] { return a100Stream(24576, 16, 4, false); };
        c.push_back(std::move(e));
    }

    // --- port_stencil3: 3-point stencil with halo --------------------
    const auto stencil3Desc = [](const char *name) {
        const std::int64_t n = 98304;
        CudaKernelDesc d = makeDesc(name, "n=98304", 384, 256, 6, 0);
        d.buffers = {buf("in", n + 2, BufferInit::Wave),
                     buf("out", n, BufferInit::Zero, true)};
        d.body = {I(gLd(0, 0, AddrExpr{.base = 0, .cGlobal = 1})),
                  I(gLd(1, 0, AddrExpr{.base = 1, .cGlobal = 1})),
                  I(gLd(2, 0, AddrExpr{.base = 2, .cGlobal = 1})),
                  I(movi(3, 0.25f)),
                  I(movi(4, 0.5f)),
                  I(rr(CudaOp::Mul, 5, 0, 3)),
                  I(rr(CudaOp::Fma, 5, 1, 4, 5)),
                  I(rr(CudaOp::Fma, 5, 2, 3, 5)),
                  I(gSt(1, 5, AddrExpr{.cGlobal = 1}))};
        return d;
    };
    {
        CorpusEntry e;
        e.desc = stencil3Desc("port_stencil3");
        e.notes = "three shifted streams, FMA chain";
        e.handTime = [] {
            return handStreams("hand_stencil3", 98304, 3, 1, 3);
        };
        e.a100Time = [] { return a100Stream(98304, 16, 5, true); };
        c.push_back(std::move(e));
    }

    // --- port_stencil5_2d: 5-point stencil on a 512x48 grid ----------
    {
        // 2D grid: gridX=2 tiles of 256 columns, 48 rows.
        const std::int64_t w = 512, h = 48, wp = w + 2;
        CorpusEntry e;
        e.desc = makeDesc("port_stencil5_2d", "512x48", 96, 256, 7, 0,
                          /*grid_x=*/2);
        e.desc.buffers = {
            buf("in", wp * (h + 2), BufferInit::Wave),
            buf("out", w * h, BufferInit::Zero, true)};
        const AddrExpr center{
            .base = wp + 1, .cTid = 1, .cBlockX = 256, .cBlockY = wp};
        AddrExpr up = center, down = center, left = center,
                 right = center;
        up.base -= wp;
        down.base += wp;
        left.base -= 1;
        right.base += 1;
        e.desc.body = {
            I(gLd(0, 0, center)),
            I(gLd(1, 0, left)),
            I(gLd(2, 0, right)),
            I(gLd(3, 0, up)),
            I(gLd(4, 0, down)),
            I(movi(5, 0.2f)),
            I(rr(CudaOp::Mul, 6, 0, 5)),
            I(rr(CudaOp::Fma, 6, 1, 5, 6)),
            I(rr(CudaOp::Fma, 6, 2, 5, 6)),
            I(rr(CudaOp::Fma, 6, 3, 5, 6)),
            I(rr(CudaOp::Fma, 6, 4, 5, 6)),
            I(gSt(1, 6,
                  AddrExpr{.cTid = 1, .cBlockX = 256, .cBlockY = w}))};
        e.notes = "2D decomposition, five shifted streams";
        e.handTime = [] {
            return handStreams("hand_stencil5", 24576, 5, 1, 5);
        };
        e.a100Time = [] { return a100Stream(24576, 24, 9, true); };
        c.push_back(std::move(e));
    }

    // --- port_histogram: shared-privatized, atomics ------------------
    {
        const std::int64_t n = 16384, bins = 64;
        CorpusEntry e;
        e.desc = makeDesc("port_histogram", "n=16384,bins=64", 64, 256,
                          4, bins);
        e.desc.buffers = {
            buf("data", n, BufferInit::Mod, false, 1.0, bins),
            buf("out", 64 * bins, BufferInit::Zero, true)};
        e.desc.body = {
            I(gLd(0, 0, AddrExpr{.cGlobal = 1})),
            I(movi(1, 1.0f)),
            I(sAtomAdd(1, AddrExpr{.indexReg = 0})),
            I(syncI()),
            I(sLd(2, AddrExpr{.cTid = 1}, tidLt(bins))),
            I(gSt(1, 2, AddrExpr{.cTid = 1, .cBlock = bins},
                  tidLt(bins)))};
        e.notes = "shared atomics serialize lane-by-lane on a TPC";
        e.handTime = [] {
            // Hand version: per-element local-memory bin updates,
            // independent across elements.
            return handStreams("hand_histogram", 16384, 1, 0, 0, 128);
        };
        e.a100Time = [] {
            cuda::SimtModel m;
            return m.gatherScatter(4, 16384, true).time;
        };
        c.push_back(std::move(e));
    }

    // --- port_gather: out[i] = table[idx[i]] -------------------------
    {
        const std::int64_t n = 24576, table = 16384;
        CorpusEntry e;
        e.desc = makeDesc("port_gather", "n=24576,table=16384", 96, 256,
                          3, 0);
        e.desc.buffers = {
            buf("idx", n, BufferInit::Indices, false, 1.0, table),
            buf("table", table, BufferInit::Wave),
            buf("out", n, BufferInit::Zero, true)};
        e.desc.body = {I(gLd(0, 0, AddrExpr{.cGlobal = 1})),
                       I(gLd(1, 1, AddrExpr{.indexReg = 0})),
                       I(gSt(2, 1, AddrExpr{.cGlobal = 1}))};
        e.notes = "data-dependent loads: 130-cycle random latency";
        e.handTime = [] {
            return handGather("hand_gather", 24576, 16384, false);
        };
        e.a100Time = [] {
            cuda::SimtModel m;
            return m.gatherScatter(4, 24576, false).time;
        };
        c.push_back(std::move(e));
    }

    // --- port_scatter: out[idx[i]] = x[i] (idx is a permutation) -----
    {
        const std::int64_t n = 24576; // gcd(73, n) = 1: bijective idx.
        CorpusEntry e;
        e.desc = makeDesc("port_scatter", "n=24576", 96, 256, 3, 0);
        e.desc.buffers = {
            buf("idx", n, BufferInit::Indices, false, 1.0, n),
            buf("x", n, BufferInit::Wave),
            buf("out", n, BufferInit::Zero, true)};
        e.desc.body = {I(gLd(0, 0, AddrExpr{.cGlobal = 1})),
                       I(gLd(1, 1, AddrExpr{.cGlobal = 1})),
                       I(gSt(2, 1, AddrExpr{.indexReg = 0}))};
        e.notes = "data-dependent stores shatter into 4 B writes";
        e.handTime = [] {
            return handGather("hand_scatter", 24576, 24576, true);
        };
        e.a100Time = [] {
            cuda::SimtModel m;
            return m.gatherScatter(4, 24576, true).time;
        };
        c.push_back(std::move(e));
    }

    // --- port_transpose: 256x256 via 32x32 shared tiles --------------
    {
        const std::int64_t w = 256, h = 256;
        CorpusEntry e;
        e.desc = makeDesc("port_transpose", "256x256,tile=32", 64, 256,
                          3, 1024, /*grid_x=*/8);
        e.desc.buffers = {buf("in", w * h, BufferInit::Wave),
                          buf("out", w * h, BufferInit::Zero, true)};
        CudaLoop stage;
        stage.trips = 4; // 8 rows per trip x 4 = 32 rows.
        stage.body = {
            gLd(0, 0,
                AddrExpr{.cLane = 1, .cWarp = w, .cBlockX = 32,
                         .cBlockY = 32 * w, .cIter = 8 * w}),
            sSt(0, AddrExpr{.cLane = 1, .cWarp = 32, .cIter = 256})};
        e.desc.body.push_back(CudaStmt::of(stage));
        e.desc.body.push_back(I(syncI()));
        CudaLoop write;
        write.trips = 4;
        write.body = {
            // Transposed read: lane walks a shared-memory column.
            sLd(1, AddrExpr{.cLane = 32, .cWarp = 1, .cIter = 8}),
            gSt(1, 1,
                AddrExpr{.cLane = 1, .cWarp = h, .cBlockX = 32 * h,
                         .cBlockY = 32, .cIter = 8 * h})};
        e.desc.body.push_back(CudaStmt::of(write));
        e.notes = "strided shared reads become per-lane local gathers";
        e.handTime = [] {
            return handStreams("hand_transpose", 65536, 1, 1, 0, 65);
        };
        e.a100Time = [] { return a100Stream(65536, 8, 0, false); };
        c.push_back(std::move(e));
    }

    // --- port_rmsnorm: rows=48, cols=2048 ----------------------------
    {
        const std::int64_t rows = 48, cols = 2048;
        CorpusEntry e;
        e.desc = makeDesc("port_rmsnorm", "48x2048", rows, 256, 8, 8);
        e.desc.buffers = {
            buf("x", rows * cols, BufferInit::Wave),
            buf("out", rows * cols, BufferInit::Zero, true)};
        const AddrExpr row{.cTid = 1, .cBlock = cols, .cIter = 256};
        CudaLoop sumsq;
        sumsq.trips = cols / 256;
        sumsq.body = {gLd(0, 0, row), rr(CudaOp::Fma, 1, 0, 0, 1)};
        e.desc.body.push_back(CudaStmt::of(sumsq));
        blockReduceTail(e.desc.body, CudaOp::WarpReduceSum, 0.0f, 1, 8);
        e.desc.body.push_back(I(ri(
            CudaOp::MulImm, 5, 4, 1.0f / static_cast<float>(cols))));
        e.desc.body.push_back(I(ri(CudaOp::AddImm, 5, 5, 1e-5f)));
        e.desc.body.push_back(I(rr(CudaOp::Rsqrt, 6, 5)));
        CudaLoop scale;
        scale.trips = cols / 256;
        scale.body = {gLd(0, 0, row), rr(CudaOp::Mul, 7, 0, 6),
                      gSt(1, 7, row)};
        e.desc.body.push_back(CudaStmt::of(scale));
        e.notes = "row reduction + scale (vs hand RMSNorm kernel)";
        e.handTime = [rows, cols] {
            kern::NormConfig cfg;
            cfg.kind = kern::NormKind::RmsNorm;
            cfg.rows = rows;
            cfg.cols = cols;
            cfg.dt = DataType::FP32;
            return kern::runNormGaudi(cfg).time;
        };
        e.a100Time = [] { return a100Stream(98304, 8, 3, true); };
        c.push_back(std::move(e));
    }

    // --- port_softmax: rows=48, cols=1024 ----------------------------
    {
        const std::int64_t rows = 48, cols = 1024;
        CorpusEntry e;
        e.desc = makeDesc("port_softmax", "48x1024", rows, 256, 10, 16);
        e.desc.buffers = {
            buf("x", rows * cols, BufferInit::Wave, false, 4.0),
            buf("out", rows * cols, BufferInit::Zero, true)};
        const AddrExpr row{.cTid = 1, .cBlock = cols, .cIter = 256};
        // Pass 1: row max.
        e.desc.body.push_back(I(movi(1, -1e30f)));
        CudaLoop maxp;
        maxp.trips = cols / 256;
        maxp.body = {gLd(0, 0, row), rr(CudaOp::Max, 1, 1, 0)};
        e.desc.body.push_back(CudaStmt::of(maxp));
        blockReduceTail(e.desc.body, CudaOp::WarpReduceMax, -1e30f, 1,
                        8);
        // Pass 2: exp(x - max), accumulate sum, stash exp in out.
        e.desc.body.push_back(I(movi(5, 0.0f)));
        CudaLoop expp;
        expp.trips = cols / 256;
        expp.body = {gLd(0, 0, row), rr(CudaOp::Sub, 6, 0, 4),
                     rr(CudaOp::Exp, 6, 6), rr(CudaOp::Add, 5, 5, 6),
                     gSt(1, 6, row)};
        e.desc.body.push_back(CudaStmt::of(expp));
        blockReduceTail(e.desc.body, CudaOp::WarpReduceSum, 0.0f, 5, 8,
                        /*shared_base=*/8);
        e.desc.body.push_back(I(rr(CudaOp::Recip, 9, 8)));
        // Pass 3: normalize.
        CudaLoop normp;
        normp.trips = cols / 256;
        normp.body = {gLd(0, 1, row), rr(CudaOp::Mul, 6, 0, 9),
                      gSt(1, 6, row)};
        e.desc.body.push_back(CudaStmt::of(normp));
        e.notes = "three-pass softmax (vs hand fused TPC softmax)";
        e.handTime = [rows, cols] {
            kern::SoftmaxConfig cfg;
            cfg.rows = rows;
            cfg.cols = cols;
            cfg.dt = DataType::FP32;
            return kern::runSoftmaxGaudi(cfg).time;
        };
        e.a100Time = [] { return a100Stream(49152, 12, 4, false); };
        c.push_back(std::move(e));
    }

    // --- port_rope: interleaved rotary embedding ---------------------
    {
        const std::int64_t pairs = 12288;
        CorpusEntry e;
        e.desc = makeDesc("port_rope", "pairs=12288,interleaved", 48,
                          256, 8, 0);
        e.desc.buffers = {
            buf("x", 2 * pairs, BufferInit::Wave),
            buf("cosv", pairs, BufferInit::Wave, false, 0.7),
            buf("sinv", pairs, BufferInit::Wave, false, 0.7),
            buf("out", 2 * pairs, BufferInit::Zero, true)};
        e.desc.body = {
            I(gLd(0, 0, AddrExpr{.base = 0, .cGlobal = 2})),
            I(gLd(1, 0, AddrExpr{.base = 1, .cGlobal = 2})),
            I(gLd(2, 1, AddrExpr{.cGlobal = 1})),
            I(gLd(3, 2, AddrExpr{.cGlobal = 1})),
            I(rr(CudaOp::Mul, 4, 0, 2)),
            I(rr(CudaOp::Mul, 5, 1, 3)),
            I(rr(CudaOp::Sub, 6, 4, 5)),
            I(rr(CudaOp::Mul, 4, 0, 3)),
            I(rr(CudaOp::Mul, 5, 1, 2)),
            I(rr(CudaOp::Add, 7, 4, 5)),
            I(gSt(3, 6, AddrExpr{.base = 0, .cGlobal = 2})),
            I(gSt(3, 7, AddrExpr{.base = 1, .cGlobal = 2}))};
        e.notes = "interleaved layout: stride-2 shatters (hand kernel "
                  "uses rotate-half contiguous layout)";
        e.handTime = [] {
            return handStreams("hand_rope", 24576, 2, 1, 2);
        };
        e.a100Time = [] { return a100Stream(24576, 16, 3, true); };
        c.push_back(std::move(e));
    }

    // --- port_topk: top-4 per row by repeated block max --------------
    {
        const std::int64_t rows = 48, cols = 1024, k = 4;
        CorpusEntry e;
        e.desc = makeDesc("port_topk", "48x1024,k=4", rows, 256, 8,
                          cols + 8);
        e.desc.buffers = {
            buf("x", rows * cols, BufferInit::Wave),
            buf("out", rows * k, BufferInit::Zero, true)};
        CudaLoop stage;
        stage.trips = cols / 256;
        stage.body = {gLd(0, 0,
                          AddrExpr{.cTid = 1, .cBlock = cols,
                                   .cIter = 256}),
                      sSt(0, AddrExpr{.cTid = 1, .cIter = 256})};
        e.desc.body.push_back(CudaStmt::of(stage));
        e.desc.body.push_back(I(syncI()));
        CudaLoop pick;
        pick.trips = k;
        pick.body = {movi(1, -1e30f)};
        for (int chunk = 0; chunk < 4; chunk++) {
            pick.body.push_back(
                sLd(0, AddrExpr{.base = chunk * 256, .cTid = 1}));
            pick.body.push_back(rr(CudaOp::Max, 1, 1, 0));
        }
        pick.body.push_back(warp(CudaOp::WarpReduceMax, 2, 1));
        pick.body.push_back(
            sSt(2, AddrExpr{.base = cols, .cWarp = 1}, laneEq0()));
        pick.body.push_back(syncI());
        pick.body.push_back(movi(3, -1e30f));
        pick.body.push_back(
            sLd(3, AddrExpr{.base = cols, .cLane = 1}, laneLt(8)));
        pick.body.push_back(warp(CudaOp::WarpReduceMax, 4, 3));
        pick.body.push_back(
            gSt(1, 4, AddrExpr{.cBlock = k, .cIter = 1}, tidEq0()));
        // Mask out every occurrence of the picked value.
        pick.body.push_back(movi(5, -1e30f));
        for (int chunk = 0; chunk < 4; chunk++) {
            const AddrExpr slot{.base = chunk * 256, .cTid = 1};
            pick.body.push_back(sLd(6, slot));
            pick.body.push_back(sSt(5, slot, regEq(6, 4)));
        }
        pick.body.push_back(syncI());
        e.desc.body.push_back(CudaStmt::of(pick));
        e.notes = "data-dependent masking: reg-predicated stores";
        e.handTime = [] {
            // Hand top-k reads each row once and keeps the k running
            // maxima in registers: one pass, k max ops per vector.
            return handStreams("hand_topk", 49152, 1, 0, 4);
        };
        e.a100Time = [] { return a100Stream(196608, 8, 2, false); };
        c.push_back(std::move(e));
    }

    // --- tuned re-lowerings: the fix-hints applied -------------------
    {
        CorpusEntry e;
        e.desc = saxpyDesc("port_saxpy_tuned");
        e.lower.warpsPerStrip = 2; // full 256 B granule
        e.lower.stripUnroll = 4;   // hide the 4-cycle latency
        e.notes = "port_saxpy with warpsPerStrip=2, stripUnroll=4";
        e.handTime = [] {
            kern::StreamConfig cfg;
            cfg.op = kern::StreamOp::Triad;
            cfg.numElements = 393216;
            cfg.dt = DataType::FP32;
            return kern::runStreamGaudi(cfg).time;
        };
        e.a100Time = [] { return a100Stream(393216, 12, 2, true); };
        c.push_back(std::move(e));
    }
    {
        CorpusEntry e;
        e.desc = stencil3Desc("port_stencil3_tuned");
        e.lower.warpsPerStrip = 2;
        e.lower.stripUnroll = 4;
        e.notes = "port_stencil3 with warpsPerStrip=2, stripUnroll=4";
        e.handTime = [] {
            return handStreams("hand_stencil3", 98304, 3, 1, 3);
        };
        e.a100Time = [] { return a100Stream(98304, 16, 5, true); };
        c.push_back(std::move(e));
    }

    for (const CorpusEntry &e : c)
        validateDesc(e.desc);
    return c;
}

} // namespace

const std::vector<CorpusEntry> &
migrationCorpus()
{
    static const std::vector<CorpusEntry> corpus = buildCorpus();
    return corpus;
}

const CorpusEntry *
findCorpusEntry(std::string_view name)
{
    for (const CorpusEntry &e : migrationCorpus())
        if (e.desc.name == name)
            return &e;
    return nullptr;
}

} // namespace vespera::port
