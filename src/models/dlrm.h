/**
 * @file
 * DLRM-DCNv2 recommendation models (Table 3: RM1 and RM2) for the
 * end-to-end RecSys serving comparison of Figure 11.
 *
 * RM1 is compute-intensive (feature interaction + MLPs dominate);
 * RM2 is memory-intensive (embedding lookups dominate). The embedding
 * layer runs through the TPC-C BatchedTable operator of Section 4.1 on
 * Gaudi-2 and the FBGEMM model on A100; the dense layers are lowered
 * to the graph IR and executed on each device's engine models.
 *
 * Note: the published table of MLP shapes is partially garbled in the
 * source text; the shapes below reconstruct the stated structure
 * (RM1: bottom 512-256-64, top 1024-1024-512-256-1, 3 cross layers of
 * rank 512; RM2: bottom 256-64-64, top 128-64-1, 2 cross layers of
 * rank 64) with the classic 13 dense input features.
 */

#ifndef VESPERA_MODELS_DLRM_H
#define VESPERA_MODELS_DLRM_H

#include <string>
#include <vector>

#include "graph/executor.h"
#include "kern/embedding.h"

namespace vespera::models {

/** Static DLRM architecture description. */
struct DlrmConfig
{
    std::string name;
    int numTables = 10;
    std::int64_t rowsPerTable = 1 << 15;
    int pooling = 10;
    std::vector<int> bottomMlp;  ///< Including the dense-input width.
    std::vector<int> topMlp;     ///< Excluding the interaction width.
    int crossLayers = 3;
    int lowRankDim = 512;

    /** Table 3 RM1 (compute-intensive). */
    static DlrmConfig rm1();
    /** Table 3 RM2 (memory-intensive). */
    static DlrmConfig rm2();
};

/** Per-run serving parameters (the Figure 11 sweep axes). */
struct DlrmRunConfig
{
    int batch = 1024;
    /// Embedding vector size in bytes (Figure 11 x-axis groups).
    Bytes embVectorBytes = 256;
    DataType dt = DataType::FP32; ///< Paper: RecSys runs FP32.
};

/** End-to-end outcome of one inference batch. */
struct DlrmReport
{
    Seconds time = 0;
    Seconds embeddingTime = 0;
    Seconds denseTime = 0;
    Seconds commTime = 0; ///< Multi-device only (AllToAll exchange).
    double samplesPerSec = 0;
    Watts power = 0;      ///< Per device.
    Joules energy = 0;    ///< All devices.
    double samplesPerJoule = 0;
};

/** Runs DLRM inference on a simulated device. */
class DlrmModel
{
  public:
    explicit DlrmModel(DlrmConfig config);

    /**
     * Serve one batch. On Gaudi the embedding layer executes
     * functionally as a TPC-C kernel with the given variant; on A100
     * the FBGEMM model is used and `variant` is ignored.
     */
    DlrmReport run(DeviceKind device, const DlrmRunConfig &run,
                   Rng &rng,
                   kern::EmbeddingVariant variant =
                       kern::EmbeddingVariant::BatchedTable) const;

    /**
     * TorchRec-style multi-device serving (extension beyond the paper,
     * which evaluates single-device RecSys only because the Gaudi SDK
     * lacks multi-device support): embedding tables are sharded across
     * devices (model parallel); each device pools its local tables for
     * the full batch, an AllToAll exchanges the pooled vectors, and
     * the dense layers run data-parallel on batch/N samples.
     */
    DlrmReport runMultiDevice(DeviceKind device,
                              const DlrmRunConfig &run, int num_devices,
                              Rng &rng,
                              kern::EmbeddingVariant variant =
                                  kern::EmbeddingVariant::BatchedTable)
        const;

    /** Dense-layer graph (bottom MLP, DCNv2 interaction, top MLP). */
    graph::Graph buildDenseGraph(const DlrmRunConfig &run) const;

    const DlrmConfig &config() const { return config_; }

  private:
    DlrmConfig config_;
};

} // namespace vespera::models

#endif // VESPERA_MODELS_DLRM_H
