#include "models/llama.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "graph/compiler.h"
#include "graph/replay_cache.h"
#include "mem/arena.h"
#include "obs/selfprof.h"

namespace vespera::models {

namespace {

/// Sustained fraction of matrix peak for prefill FlashAttention.
constexpr double flashPrefillEfficiency = 0.45;
/// Sustained fraction of HBM peak for contiguous-KV decode attention.
constexpr double staticKvReadEfficiency = 0.70;
/// Matrix-engine efficiency on the small decode attention GEMMs.
constexpr double decodeGemmEfficiency = 0.35;

} // namespace

LlamaConfig
LlamaConfig::llama31_8b()
{
    LlamaConfig c;
    c.name = "Llama-3.1-8B";
    c.layers = 32;
    c.hidden = 4096;
    c.intermediate = 14336;
    c.numQHeads = 32;
    c.numKvHeads = 8;
    c.headDim = 128;
    c.vocab = 128256;
    return c;
}

LlamaConfig
LlamaConfig::llama31_70b()
{
    LlamaConfig c;
    c.name = "Llama-3.1-70B";
    c.layers = 80;
    c.hidden = 8192;
    c.intermediate = 28672;
    c.numQHeads = 64;
    c.numKvHeads = 8;
    c.headDim = 128;
    c.vocab = 128256;
    return c;
}

double
LlamaConfig::paramCount() const
{
    const double d = headDim;
    const double attn = static_cast<double>(hidden) *
                            (numQHeads + 2.0 * numKvHeads) * d +
                        static_cast<double>(numQHeads) * d * hidden;
    const double mlp = 3.0 * hidden * static_cast<double>(intermediate);
    return layers * (attn + mlp) + 2.0 * vocab * hidden;
}

LlamaModel::LlamaModel(LlamaConfig config)
    : config_(std::move(config))
{
    vassert(config_.numQHeads % config_.numKvHeads == 0,
            "GQA requires q-heads divisible by kv-heads");
}

graph::OpCost
LlamaModel::attentionCost(DeviceKind device, int batch,
                          int tokens_per_request,
                          std::int64_t context_len, bool prefill,
                          const LlamaServingConfig &cfg) const
{
    const auto &spec = hw::deviceSpec(device);
    const int tp = cfg.tpDevices;
    const auto es = static_cast<double>(dtypeSize(cfg.dt));
    const double q_heads = static_cast<double>(config_.numQHeads) / tp;
    const double kv_heads =
        std::max(1.0, static_cast<double>(config_.numKvHeads) / tp);
    const double d = config_.headDim;

    graph::OpCost c;
    if (prefill) {
        // FlashAttention: causal, compute-bound; KV written once.
        const double flops = 2.0 * batch * q_heads *
                             tokens_per_request *
                             static_cast<double>(context_len) * d * 2.0 *
                             0.5;
        const Seconds compute =
            flops / (spec.matrixPeak(cfg.dt) * flashPrefillEfficiency);
        const double kv_write =
            batch * static_cast<double>(context_len) * 2.0 * kv_heads *
            d * es;
        const Seconds write =
            kv_write / (spec.hbmBandwidth * spec.streamEfficiency);
        c.time = compute + write + spec.launchOverhead;
        c.matrixBusy = compute;
        c.flops = flops;
        c.hbmBytes = static_cast<Bytes>(kv_write);
        c.matrixUtil = flashPrefillEfficiency;
        return c;
    }

    // Decode attention over the cached context.
    kern::PagedAttentionConfig pa;
    pa.batch = batch;
    pa.seqLen = context_len;
    pa.numQHeads = std::max(1, config_.numQHeads / tp);
    pa.numKvHeads = static_cast<int>(kv_heads);
    pa.headDim = config_.headDim;
    pa.dt = cfg.dt;

    switch (cfg.attention) {
      case AttentionBackend::Static: {
        // Contiguous KV + fused attention on both devices.
        const double kv = static_cast<double>(pa.kvBytes());
        const Seconds read =
            kv / (spec.hbmBandwidth * staticKvReadEfficiency);
        const Seconds compute = pa.flops() / (spec.matrixPeak(cfg.dt) *
                                              decodeGemmEfficiency);
        c.time = std::max(read, compute) + spec.launchOverhead;
        c.matrixBusy = std::min(read, compute);
        c.flops = pa.flops();
        c.hbmBytes = pa.kvBytes();
        c.matrixUtil = decodeGemmEfficiency;
        return c;
      }
      case AttentionBackend::VllmBase:
      case AttentionBackend::VllmOpt: {
        const auto impl =
            device == DeviceKind::A100
                ? kern::PagedAttentionImpl::A100Fused
                : (cfg.attention == AttentionBackend::VllmOpt
                       ? kern::PagedAttentionImpl::GaudiOpt
                       : kern::PagedAttentionImpl::GaudiBase);
        auto pc = kern::runPagedAttention(pa, impl);
        c.time = pc.time;
        c.vectorBusy = pc.gatherTime;
        c.matrixBusy = std::min(pc.gemmTime, pc.time);
        c.flops = pa.flops();
        c.hbmBytes = pa.kvBytes();
        c.matrixUtil = decodeGemmEfficiency;
        return c;
      }
    }
    vpanic("unknown attention backend");
}

graph::Graph
LlamaModel::buildStepGraph(DeviceKind device, int batch,
                           int tokens_per_request,
                           std::int64_t context_len, bool prefill,
                           const LlamaServingConfig &cfg) const
{
    obs::SelfTimer self(obs::SelfCat::GraphBuild);
    const int tp = cfg.tpDevices;
    vassert(config_.numQHeads % tp == 0, "TP must divide q-heads");
    const std::int64_t m =
        static_cast<std::int64_t>(batch) * tokens_per_request;
    const std::int64_t h = config_.hidden;
    const std::int64_t inter = config_.intermediate / tp;
    // Per-device head counts under TP (KV heads replicate once TP
    // exceeds their count).
    const std::int64_t q_heads_dev = config_.numQHeads / tp;
    const std::int64_t kv_heads_dev =
        std::max<std::int64_t>(1, config_.numKvHeads / tp);
    const std::int64_t qkv_n =
        (q_heads_dev + 2 * kv_heads_dev) * config_.headDim;
    const std::int64_t o_k =
        static_cast<std::int64_t>(config_.numQHeads) * config_.headDim /
        tp;

    graph::Graph g;
    int x = g.input({{m, h}, cfg.dt}, "hidden_in");

    int norm1 = g.normalization(x, 1, 4.0, "input_rmsnorm");
    int wqkv = g.input({{h, qkv_n}, cfg.dt}, "w_qkv");
    int qkv = g.matmul(norm1, wqkv, "qkv_proj");
    (void)qkv;

    int attn = g.custom(
        {qkv},
        graph::TensorDesc{{m, o_k}, cfg.dt},
        [this, device, batch, tokens_per_request, context_len, prefill,
         cfg](DeviceKind dev) {
            (void)dev;
            return attentionCost(device, batch, tokens_per_request,
                                 context_len, prefill, cfg);
        },
        "attention",
        // Replay-cache signature: every input attentionCost reads
        // (the callback ignores its device argument and uses the
        // captured one, so the device belongs in here too).
        strfmt("attn|%s|q%d.kv%d.d%d|b%d|t%d|ctx%lld|p%d|tp%d|a%d|%s",
               deviceName(device), config_.numQHeads,
               config_.numKvHeads, config_.headDim, batch,
               tokens_per_request, static_cast<long long>(context_len),
               prefill ? 1 : 0, cfg.tpDevices,
               static_cast<int>(cfg.attention), dtypeName(cfg.dt)));

    int wo = g.input({{o_k, h}, cfg.dt}, "w_o");
    int o = g.matmul(attn, wo, "o_proj");
    if (tp > 1)
        o = g.allReduce(o, tp, "attn_allreduce");

    int norm2 = g.normalization(o, 1, 4.0, "post_rmsnorm");
    int wgu = g.input({{h, 2 * inter}, cfg.dt}, "w_gate_up");
    int gu = g.matmul(norm2, wgu, "gate_up_proj");
    int act = g.elementwiseTo({gu}, {{m, inter}, cfg.dt}, 6.0, true,
                              "silu_mul");
    int wd = g.input({{inter, h}, cfg.dt}, "w_down");
    int down = g.matmul(act, wd, "down_proj");
    if (tp > 1)
        down = g.allReduce(down, tp, "mlp_allreduce");
    (void)down;

    return g;
}

graph::ExecutionReport
LlamaModel::stepReport(DeviceKind device, int batch,
                       int tokens_per_request, std::int64_t context_len,
                       bool prefill, const LlamaServingConfig &cfg) const
{
    // Whole-step evaluation is kernel-eval work on the host clock; the
    // nested GraphBuild timer inside buildStepGraph carves its own
    // share out, so the two categories never double-count.
    obs::SelfTimer self(obs::SelfCat::KernelEval);

    // Step-granularity replay cache: the whole report — graph build,
    // compile, execute, LM head — is a pure (observed) function of
    // the architecture + step shape, so repeat steps skip even the
    // graph construction (replay_cache.h).
    const std::string key = strfmt(
        "llama_step|%s|l%d.h%d.i%d.q%d.kv%d.d%d.v%d|%s|b%d|t%d|ctx%lld"
        "|p%d|tp%d|a%d|%s",
        config_.name.c_str(), config_.layers, config_.hidden,
        config_.intermediate, config_.numQHeads, config_.numKvHeads,
        config_.headDim, config_.vocab, deviceName(device), batch,
        tokens_per_request, static_cast<long long>(context_len),
        prefill ? 1 : 0, cfg.tpDevices, static_cast<int>(cfg.attention),
        dtypeName(cfg.dt));

    return graph::stepReplayCache().runMemoized(key, [&] {
        // The step's transient containers (graph nodes, compiler
        // scratch) bump-allocate from this thread's scratch arena and
        // are reclaimed wholesale on scope exit; the scope outlives
        // the graphs below, which is what makes their destructors
        // safe. The returned report uses ordinary heap storage.
        mem::ScopedArena arena(mem::Arena::scratch());

        graph::Graph layer = buildStepGraph(device, batch,
                                            tokens_per_request,
                                            context_len, prefill, cfg);
        graph::Compiler compiler;
        compiler.compile(layer);
        layer.validate();
        graph::Executor executor(device);
        graph::ExecutionReport one = executor.run(layer);

        graph::ExecutionReport total;
        graph::accumulate(total, one, config_.layers);

        // LM head over the last token of each request.
        graph::Graph head;
        int hx =
            head.input({{batch, config_.hidden}, cfg.dt}, "final_hidden");
        int wl = head.input(
            {{config_.hidden, config_.vocab / cfg.tpDevices}, cfg.dt},
            "w_lm_head");
        (void)head.matmul(hx, wl, "lm_head");
        graph::ExecutionReport head_rep = executor.run(head);
        graph::accumulate(total, head_rep);
        return total;
    });
}

Seconds
LlamaModel::stepTime(DeviceKind device, int batch,
                     int tokens_per_request, std::int64_t context_len,
                     bool prefill, const LlamaServingConfig &cfg) const
{
    return stepReport(device, batch, tokens_per_request, context_len,
                      prefill, cfg).time;
}

LlamaReport
LlamaModel::serve(DeviceKind device, const LlamaServingConfig &cfg) const
{
    vassert(cfg.batch >= 1 && cfg.inputLen >= 1 && cfg.outputLen >= 1,
            "bad serving config");

    // Prefill.
    graph::ExecutionReport prefill =
        stepReport(device, cfg.batch, cfg.inputLen, cfg.inputLen, true,
                   cfg);

    // Decode: integrate step time over the growing context with a
    // 5-point sample (step cost is near-linear in context length).
    graph::ExecutionReport decode;
    const std::int64_t in = cfg.inputLen;
    const std::int64_t out = cfg.outputLen;
    const std::int64_t samples[5] = {
        in + 1, in + out / 4, in + out / 2, in + 3 * out / 4, in + out};
    for (auto ctx : samples) {
        graph::ExecutionReport s =
            stepReport(device, cfg.batch, 1, ctx, false, cfg);
        graph::accumulate(decode, s, static_cast<double>(out) / 5.0);
    }

    graph::ExecutionReport total;
    graph::accumulate(total, prefill);
    graph::accumulate(total, decode);

    const auto &spec = hw::deviceSpec(device);
    hw::PowerModel power(spec);

    LlamaReport r;
    r.prefillTime = prefill.time;
    r.decodeTime = decode.time;
    r.totalTime = total.time;
    r.tokensPerSec =
        static_cast<double>(cfg.batch) * cfg.outputLen / r.totalTime;
    r.avgPowerPerDevice = power.averagePower(total.activity(spec));
    r.energy = r.avgPowerPerDevice * r.totalTime * cfg.tpDevices;
    r.tokensPerJoule =
        static_cast<double>(cfg.batch) * cfg.outputLen / r.energy;
    return r;
}

} // namespace vespera::models
