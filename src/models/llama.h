/**
 * @file
 * Llama-3.1 serving models (Table 3: 8B and 70B) for the end-to-end
 * LLM comparisons of Figures 12, 13, and 17.
 *
 * Each forward step (prefill or decode) is lowered to the graph IR —
 * QKV/O/MLP GEMMs, normalizations, activations, tensor-parallel
 * all-reduces — with attention as a Custom node costed by either the
 * static contiguous-KV backend (TensorRT-LLM / optimum-habana with
 * KV cache + FlashAttention, Section 3.5) or the PagedAttention
 * implementations of Section 4.2 (vLLM).
 */

#ifndef VESPERA_MODELS_LLAMA_H
#define VESPERA_MODELS_LLAMA_H

#include <string>

#include "graph/executor.h"
#include "hw/power.h"
#include "kern/paged_attention.h"

namespace vespera::models {

/** Static architecture description (Table 3). */
struct LlamaConfig
{
    std::string name;
    int layers = 32;
    int hidden = 4096;
    int intermediate = 14336;
    int numQHeads = 32;
    int numKvHeads = 8;
    int headDim = 128;
    int vocab = 128256;

    static LlamaConfig llama31_8b();
    static LlamaConfig llama31_70b();

    /** Approximate parameter count (for weight-traffic sanity). */
    double paramCount() const;

    /** Per-device weight footprint under TP sharding. */
    Bytes
    weightBytes(int tp_devices, DataType dt) const
    {
        return static_cast<Bytes>(paramCount() * dtypeSize(dt) /
                                  tp_devices);
    }
};

/** Attention backend for decode steps. */
enum class AttentionBackend {
    Static,   ///< Contiguous KV + FlashAttention (Figure 12 setup).
    VllmBase, ///< PagedAttention, BlockTable (Gaudi vLLM fork).
    VllmOpt,  ///< PagedAttention, BlockList + pipelining (vLLM_opt).
};

/** One serving scenario. */
struct LlamaServingConfig
{
    int batch = 32;
    int inputLen = 100;  ///< Paper: fixed at 100 for Figure 12.
    int outputLen = 100; ///< Swept 25..400.
    int tpDevices = 1;   ///< Tensor parallelism degree.
    AttentionBackend attention = AttentionBackend::Static;
    DataType dt = DataType::BF16;
};

/** End-to-end outcome of serving one batch of identical requests. */
struct LlamaReport
{
    Seconds prefillTime = 0;
    Seconds decodeTime = 0;
    Seconds totalTime = 0;
    double tokensPerSec = 0;    ///< Generated tokens / total time.
    Watts avgPowerPerDevice = 0;
    Joules energy = 0;          ///< All devices.
    double tokensPerJoule = 0;
};

/** Llama serving simulator. */
class LlamaModel
{
  public:
    explicit LlamaModel(LlamaConfig config);

    /** Serve a batch of fixed-shape requests end to end. */
    LlamaReport serve(DeviceKind device,
                      const LlamaServingConfig &cfg) const;

    /**
     * Time one forward step. `tokensPerRequest` is the number of new
     * tokens processed per request (inputLen for prefill, 1 for
     * decode); `contextLen` is the KV length attended to.
     */
    graph::ExecutionReport stepReport(DeviceKind device, int batch,
                                      int tokens_per_request,
                                      std::int64_t context_len,
                                      bool prefill,
                                      const LlamaServingConfig &cfg) const;

    /** Convenience: wall time of one step. */
    Seconds stepTime(DeviceKind device, int batch,
                     int tokens_per_request, std::int64_t context_len,
                     bool prefill, const LlamaServingConfig &cfg) const;

    const LlamaConfig &config() const { return config_; }

  private:
    graph::Graph buildStepGraph(DeviceKind device, int batch,
                                int tokens_per_request,
                                std::int64_t context_len, bool prefill,
                                const LlamaServingConfig &cfg) const;

    graph::OpCost attentionCost(DeviceKind device, int batch,
                                int tokens_per_request,
                                std::int64_t context_len, bool prefill,
                                const LlamaServingConfig &cfg) const;

    LlamaConfig config_;
};

} // namespace vespera::models

#endif // VESPERA_MODELS_LLAMA_H
