#include "models/dlrm.h"

#include <algorithm>

#include "coll/collective.h"
#include "common/logging.h"
#include "graph/compiler.h"
#include "hw/power.h"

namespace vespera::models {

DlrmConfig
DlrmConfig::rm1()
{
    DlrmConfig c;
    c.name = "RM1";
    c.numTables = 10;
    c.pooling = 10;
    c.rowsPerTable = 1 << 15;
    c.bottomMlp = {13, 512, 256, 64};
    c.topMlp = {1024, 1024, 512, 256, 1};
    c.crossLayers = 3;
    c.lowRankDim = 512;
    return c;
}

DlrmConfig
DlrmConfig::rm2()
{
    DlrmConfig c;
    c.name = "RM2";
    c.numTables = 20;
    c.pooling = 20;
    c.rowsPerTable = 1 << 15;
    c.bottomMlp = {13, 256, 64, 64};
    c.topMlp = {128, 64, 1};
    c.crossLayers = 2;
    c.lowRankDim = 64;
    return c;
}

DlrmModel::DlrmModel(DlrmConfig config)
    : config_(std::move(config))
{
    vassert(config_.bottomMlp.size() >= 2 && config_.topMlp.size() >= 1,
            "DLRM needs bottom and top MLPs");
}

graph::Graph
DlrmModel::buildDenseGraph(const DlrmRunConfig &run) const
{
    const auto es = static_cast<std::int64_t>(dtypeSize(run.dt));
    const std::int64_t emb_dim =
        static_cast<std::int64_t>(run.embVectorBytes) / es;
    const std::int64_t batch = run.batch;

    graph::Graph g;

    // Bottom MLP over the dense features.
    int x = g.input({{batch, config_.bottomMlp.front()}, run.dt},
                    "dense_features");
    for (std::size_t l = 1; l < config_.bottomMlp.size(); l++) {
        int w = g.input({{config_.bottomMlp[l - 1], config_.bottomMlp[l]},
                         run.dt},
                        strfmt("bottom_w%zu", l));
        x = g.matmul(x, w, strfmt("bottom_mlp%zu", l));
        x = g.elementwise({x}, 1.0, false, strfmt("bottom_relu%zu", l));
    }

    // Feature interaction: concat(bottom output, pooled embeddings)
    // followed by DCNv2 low-rank cross layers:
    //   x_{l+1} = x_0 * (U_l (V_l x_l) + b_l) + x_l.
    const std::int64_t d =
        config_.bottomMlp.back() + config_.numTables * emb_dim;
    int xl = g.input({{batch, d}, run.dt}, "interaction_in");
    for (int l = 0; l < config_.crossLayers; l++) {
        int v = g.input({{d, config_.lowRankDim}, run.dt},
                        strfmt("cross_v%d", l));
        int u = g.input({{config_.lowRankDim, d}, run.dt},
                        strfmt("cross_u%d", l));
        int t = g.matmul(xl, v, strfmt("cross_down%d", l));
        t = g.matmul(t, u, strfmt("cross_up%d", l));
        // Hadamard with x0 plus residual: 2 flops per element.
        xl = g.elementwise({t, xl}, 2.0, true, strfmt("cross_fma%d", l));
    }

    // Top MLP over the interaction output.
    int prev_width = static_cast<int>(d);
    int y = xl;
    for (std::size_t l = 0; l < config_.topMlp.size(); l++) {
        int w = g.input({{prev_width, config_.topMlp[l]}, run.dt},
                        strfmt("top_w%zu", l));
        y = g.matmul(y, w, strfmt("top_mlp%zu", l));
        y = g.elementwise({y}, 1.0, false, strfmt("top_act%zu", l));
        prev_width = config_.topMlp[l];
    }
    return g;
}

DlrmReport
DlrmModel::run(DeviceKind device, const DlrmRunConfig &run_cfg, Rng &rng,
               kern::EmbeddingVariant variant) const
{
    // Embedding layer.
    kern::EmbeddingConfig emb;
    emb.numTables = config_.numTables;
    emb.rowsPerTable = config_.rowsPerTable;
    emb.vectorBytes = run_cfg.embVectorBytes;
    emb.batch = run_cfg.batch;
    emb.pooling = config_.pooling;
    emb.dt = run_cfg.dt;

    kern::EmbeddingResult er;
    if (device == DeviceKind::Gaudi2) {
        kern::EmbeddingLayerGaudi layer(emb);
        er = layer.run(variant, rng);
    } else {
        er = kern::runEmbeddingA100(emb);
    }

    // Dense layers through the graph compiler + executor.
    graph::Graph g = buildDenseGraph(run_cfg);
    graph::Compiler compiler;
    compiler.compile(g);
    g.validate();
    graph::Executor executor(device);
    graph::ExecutionReport dense = executor.run(g);

    const auto &spec = hw::deviceSpec(device);
    DlrmReport report;
    report.embeddingTime = er.time;
    report.denseTime = dense.time;
    report.time = er.time + dense.time;
    report.samplesPerSec = run_cfg.batch / report.time;

    // Power: blend the dense graph's activity with the embedding
    // phase (vector-engine + HBM bound).
    hw::ActivityProfile act = dense.activity(spec);
    const double emb_frac = er.time / report.time;
    act.matrixActivity *= (1.0 - emb_frac);
    act.vectorActivity =
        act.vectorActivity * (1.0 - emb_frac) + 0.55 * emb_frac;
    act.hbmActivity = act.hbmActivity * (1.0 - emb_frac) +
                      std::min(1.0, er.hbmUtilization * 1.8) * emb_frac;

    hw::PowerModel power(spec);
    report.power = power.averagePower(act);
    report.energy = report.power * report.time;
    report.samplesPerJoule = run_cfg.batch / report.energy;
    return report;
}

DlrmReport
DlrmModel::runMultiDevice(DeviceKind device, const DlrmRunConfig &run_cfg,
                          int num_devices, Rng &rng,
                          kern::EmbeddingVariant variant) const
{
    vassert(num_devices >= 2 && num_devices <= 8,
            "num_devices must be 2..8");
    vassert(run_cfg.batch % num_devices == 0,
            "batch must divide evenly across devices");

    // Model-parallel embedding: each device holds ~T/N tables and
    // pools them for the full global batch.
    kern::EmbeddingConfig emb;
    emb.numTables = std::max(1, (config_.numTables + num_devices - 1) /
                                    num_devices);
    emb.rowsPerTable = config_.rowsPerTable;
    emb.vectorBytes = run_cfg.embVectorBytes;
    emb.batch = run_cfg.batch;
    emb.pooling = config_.pooling;
    emb.dt = run_cfg.dt;

    kern::EmbeddingResult er;
    if (device == DeviceKind::Gaudi2) {
        kern::EmbeddingLayerGaudi layer(emb);
        er = layer.run(variant, rng);
    } else {
        er = kern::runEmbeddingA100(emb);
    }

    // AllToAll redistributes pooled vectors: after the exchange each
    // device owns all tables' vectors for batch/N samples.
    const Bytes exchange = static_cast<Bytes>(run_cfg.batch) *
                           emb.numTables * run_cfg.embVectorBytes;
    auto collective = device == DeviceKind::Gaudi2
                          ? coll::CollectiveModel::hcclOnGaudi2()
                          : coll::CollectiveModel::ncclOnDgxA100();
    auto comm = collective.run(coll::CollectiveOp::AllToAll, exchange,
                               num_devices);

    // Data-parallel dense layers on the local batch shard.
    DlrmRunConfig local = run_cfg;
    local.batch = run_cfg.batch / num_devices;
    graph::Graph g = buildDenseGraph(local);
    graph::Compiler compiler;
    compiler.compile(g);
    graph::Executor executor(device);
    graph::ExecutionReport dense = executor.run(g);

    const auto &spec = hw::deviceSpec(device);
    DlrmReport report;
    report.embeddingTime = er.time;
    report.commTime = comm.time;
    report.denseTime = dense.time;
    report.time = er.time + comm.time + dense.time;
    report.samplesPerSec = run_cfg.batch / report.time;

    hw::ActivityProfile act = dense.activity(spec);
    const double emb_frac = er.time / report.time;
    const double comm_frac = comm.time / report.time;
    const double dense_frac = 1.0 - emb_frac - comm_frac;
    act.matrixActivity *= dense_frac;
    act.vectorActivity =
        act.vectorActivity * dense_frac + 0.55 * emb_frac;
    act.hbmActivity = act.hbmActivity * dense_frac +
                      std::min(1.0, er.hbmUtilization * 1.8) * emb_frac;

    hw::PowerModel power(spec);
    report.power = power.averagePower(act);
    report.energy = report.power * report.time * num_devices;
    report.samplesPerJoule = run_cfg.batch / report.energy;
    return report;
}

} // namespace vespera::models
