/**
 * @file
 * Export engine events and graph-execution timelines to the Chrome
 * tracing JSON format (view at chrome://tracing or ui.perfetto.dev) —
 * the observability role the Intel Gaudi Profiler plays in the paper's
 * reverse-engineering workflow.
 */

#ifndef VESPERA_SERVE_TRACING_H
#define VESPERA_SERVE_TRACING_H

#include <string>
#include <vector>

#include "graph/executor.h"
#include "serve/engine.h"

namespace vespera::serve {

/** Chrome-trace JSON for a serving run's engine events. */
std::string engineEventsToChromeTrace(
    const std::vector<EngineEvent> &events);

/** Chrome-trace JSON for one graph execution's op timeline. */
std::string timelineToChromeTrace(
    const std::vector<graph::TimelineEntry> &timeline);

/** Write a string to a file; returns false on I/O failure. */
bool writeFile(const std::string &path, const std::string &content);

} // namespace vespera::serve

#endif // VESPERA_SERVE_TRACING_H
