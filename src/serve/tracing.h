/**
 * @file
 * Adapters from the engine/graph timelines to the obs span model.
 *
 * Everything trace-shaped flows through obs::Profiler and
 * obs::chromeTraceJson (one trace-event code path); this header only
 * knows how to map EngineEvents and graph TimelineEntries onto spans
 * and engine lanes. View exports at chrome://tracing or
 * ui.perfetto.dev — the observability role the Intel Gaudi Profiler
 * plays in the paper's reverse-engineering workflow.
 */

#ifndef VESPERA_SERVE_TRACING_H
#define VESPERA_SERVE_TRACING_H

#include <string>
#include <vector>

#include "graph/executor.h"
#include "obs/profiler.h"
#include "serve/engine.h"

namespace vespera::serve {

/**
 * Record a serving run's engine events as spans (prefill/decode lanes
 * of the Device track group).
 */
void recordEngineEvents(obs::Profiler &profiler,
                        const std::vector<EngineEvent> &events);

/**
 * Record one graph execution's op timeline as spans (MME/TPC/comm
 * lanes of the Device track group). Input nodes are skipped.
 */
void recordTimeline(obs::Profiler &profiler,
                    const std::vector<graph::TimelineEntry> &timeline);

/** Chrome-trace JSON for a serving run's engine events. */
std::string engineEventsToChromeTrace(
    const std::vector<EngineEvent> &events);

/** Chrome-trace JSON for one graph execution's op timeline. */
std::string timelineToChromeTrace(
    const std::vector<graph::TimelineEntry> &timeline);

} // namespace vespera::serve

#endif // VESPERA_SERVE_TRACING_H
