#include "serve/kv_cache.h"

#include "common/logging.h"
#include "obs/counters.h"

namespace vespera::serve {

PagedKvCache::PagedKvCache(std::int64_t total_blocks, int block_tokens)
    : totalBlocks_(total_blocks), blockTokens_(block_tokens),
      freeBlocks_(total_blocks)
{
    vassert(total_blocks > 0 && block_tokens > 0, "bad KV pool");
}

std::int64_t
PagedKvCache::blocksFor(std::int64_t tokens) const
{
    return (tokens + blockTokens_ - 1) / blockTokens_;
}

bool
PagedKvCache::canGrow(std::int64_t seq_id, std::int64_t want_tokens) const
{
    auto it = held_.find(seq_id);
    const std::int64_t have = it == held_.end() ? 0 : it->second;
    const std::int64_t need = blocksFor(want_tokens) - have;
    return need <= freeBlocks_;
}

bool
PagedKvCache::grow(std::int64_t seq_id, std::int64_t tokens)
{
    const std::int64_t have = held_.count(seq_id) ? held_[seq_id] : 0;
    const std::int64_t want = blocksFor(tokens);
    const std::int64_t need = want - have;
    auto &registry = obs::CounterRegistry::instance();
    if (need > freeBlocks_) {
        static obs::Counter &failures =
            registry.counter("kv.grow_failures");
        failures.add();
        return false;
    }
    if (need > 0) {
        freeBlocks_ -= need;
        held_[seq_id] = want;
        static obs::Counter &grown =
            registry.counter("kv.blocks_allocated");
        static obs::Counter &high =
            registry.counter("kv.blocks_high_water");
        grown.add(static_cast<double>(need));
        // Gauge: peak() is the pool-wide high-water mark.
        high.set(static_cast<double>(totalBlocks_ - freeBlocks_));
    }
    return true;
}

void
PagedKvCache::release(std::int64_t seq_id)
{
    auto it = held_.find(seq_id);
    if (it == held_.end())
        return;
    freeBlocks_ += it->second;
    held_.erase(it);
    vassert(freeBlocks_ <= totalBlocks_, "double release");
}

ContiguousKvCache::ContiguousKvCache(std::int64_t total_tokens,
                                     std::int64_t max_seq_tokens)
    : totalTokens_(total_tokens), maxSeqTokens_(max_seq_tokens),
      freeTokens_(total_tokens)
{
    vassert(total_tokens > 0 && max_seq_tokens > 0, "bad KV pool");
}

bool
ContiguousKvCache::admit(std::int64_t seq_id)
{
    if (maxSeqTokens_ > freeTokens_)
        return false;
    vassert(!held_.count(seq_id), "sequence admitted twice");
    freeTokens_ -= maxSeqTokens_;
    held_[seq_id] = maxSeqTokens_;
    return true;
}

void
ContiguousKvCache::release(std::int64_t seq_id)
{
    auto it = held_.find(seq_id);
    if (it == held_.end())
        return;
    freeTokens_ += it->second;
    held_.erase(it);
    vassert(freeTokens_ <= totalTokens_, "double release");
}

std::int64_t
ContiguousKvCache::capacitySequences() const
{
    return totalTokens_ / maxSeqTokens_;
}

Bytes
kvBytesPerToken(int layers, int kv_heads, int head_dim, DataType dt)
{
    return static_cast<Bytes>(layers) * 2 * kv_heads * head_dim *
           dtypeSize(dt);
}

} // namespace vespera::serve
