#include "serve/trace.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vespera::serve {

std::vector<Request>
makeDynamicTrace(const TraceConfig &config, Rng &rng)
{
    vassert(config.numRequests > 0, "empty trace");
    std::vector<Request> trace;
    trace.reserve(static_cast<std::size_t>(config.numRequests));
    Seconds clock = 0;
    for (int i = 0; i < config.numRequests; i++) {
        Request r;
        r.id = i;
        const double in =
            rng.logNormal(config.inputLogMean, config.inputLogSigma);
        const double out =
            rng.logNormal(config.outputLogMean, config.outputLogSigma);
        r.inputLen = std::clamp(static_cast<int>(in),
                                config.minInputLen, config.maxInputLen);
        r.outputLen = std::clamp(static_cast<int>(out),
                                 config.minOutputLen,
                                 config.maxOutputLen);
        if (config.arrivalRate > 0) {
            // Poisson process: exponential inter-arrival times.
            clock += -std::log(1.0 - rng.uniform()) / config.arrivalRate;
            r.arrival = clock;
        }
        trace.push_back(r);
    }
    return trace;
}

std::vector<Request>
makeFixedTrace(int num_requests, int input_len, int output_len)
{
    vassert(num_requests > 0 && input_len > 0 && output_len > 0,
            "bad fixed trace");
    std::vector<Request> trace;
    trace.reserve(static_cast<std::size_t>(num_requests));
    for (int i = 0; i < num_requests; i++) {
        Request r;
        r.id = i;
        r.inputLen = input_len;
        r.outputLen = output_len;
        trace.push_back(r);
    }
    return trace;
}

} // namespace vespera::serve
