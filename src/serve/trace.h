/**
 * @file
 * Serving request traces.
 *
 * The paper's end-to-end vLLM experiments use the Dynamic-Sonnet
 * dataset to exercise variable input/output lengths. We synthesize an
 * equivalent trace: log-normal input lengths and output lengths,
 * clipped to the dataset's ranges (the serving-system dynamics only
 * depend on the length distributions, not the token contents).
 */

#ifndef VESPERA_SERVE_TRACE_H
#define VESPERA_SERVE_TRACE_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace vespera::serve {

/** One serving request. */
struct Request
{
    std::int64_t id = 0;
    Seconds arrival = 0;
    int inputLen = 0;
    int outputLen = 0;

    /// @name Engine-filled progress fields.
    /// @{
    int generated = 0;
    bool prefilled = false;
    int prefillProgress = 0; ///< Tokens prefilled (chunked prefill).
    Seconds firstTokenTime = -1;
    Seconds finishTime = -1;
    /// @}
};

/** Trace synthesis parameters. */
struct TraceConfig
{
    int numRequests = 256;
    /// Log-normal parameters of the input-length distribution.
    double inputLogMean = 6.2;  ///< exp(6.2) ~ 493 tokens.
    double inputLogSigma = 0.5;
    int minInputLen = 64;
    int maxInputLen = 2048;
    /// Output lengths.
    double outputLogMean = 5.3; ///< exp(5.3) ~ 200 tokens.
    double outputLogSigma = 0.6;
    int minOutputLen = 16;
    int maxOutputLen = 1024;
    /// All requests arrive at time zero (offline throughput test) when
    /// zero; otherwise Poisson arrivals at this rate (req/s).
    double arrivalRate = 0;
};

/** Synthesize a Dynamic-Sonnet-like trace. */
std::vector<Request> makeDynamicTrace(const TraceConfig &config,
                                      Rng &rng);

/** Fixed-shape trace (Figure 12's synthetic dataset). */
std::vector<Request> makeFixedTrace(int num_requests, int input_len,
                                    int output_len);

} // namespace vespera::serve

#endif // VESPERA_SERVE_TRACE_H
