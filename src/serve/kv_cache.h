/**
 * @file
 * KV-cache allocators for LLM serving.
 *
 * PagedKvCache implements vLLM's block-based on-demand allocation
 * (Section 4.2): the cache is carved into fixed-size token blocks
 * handed out as sequences grow, eliminating the fragmentation that a
 * contiguous reserve-max-length allocator suffers. The contiguous
 * allocator is provided as the comparison baseline.
 */

#ifndef VESPERA_SERVE_KV_CACHE_H
#define VESPERA_SERVE_KV_CACHE_H

#include <cstdint>
#include <map>

#include "common/types.h"

namespace vespera::serve {

/** vLLM-style paged allocator (block granularity, on demand). */
class PagedKvCache
{
  public:
    /**
     * @param total_blocks Blocks in the pool.
     * @param block_tokens Tokens per block.
     */
    PagedKvCache(std::int64_t total_blocks, int block_tokens);

    /** Blocks needed to hold `tokens` tokens. */
    std::int64_t blocksFor(std::int64_t tokens) const;

    /** Can a sequence currently holding `have` tokens grow to `want`? */
    bool canGrow(std::int64_t seq_id, std::int64_t want_tokens) const;

    /**
     * Reserve blocks so sequence `seq_id` holds `tokens` tokens.
     * Returns false (no change) if the pool lacks blocks.
     */
    bool grow(std::int64_t seq_id, std::int64_t tokens);

    /** Release all blocks of a finished sequence. */
    void release(std::int64_t seq_id);

    std::int64_t freeBlocks() const { return freeBlocks_; }
    std::int64_t totalBlocks() const { return totalBlocks_; }
    int blockTokens() const { return blockTokens_; }
    std::int64_t activeSequences() const
    {
        return static_cast<std::int64_t>(held_.size());
    }

  private:
    std::int64_t totalBlocks_;
    int blockTokens_;
    std::int64_t freeBlocks_;
    std::map<std::int64_t, std::int64_t> held_; ///< seq -> blocks.
};

/**
 * Baseline contiguous allocator: every admitted sequence reserves
 * max-length tokens up front (the fragmentation-prone strategy
 * PagedAttention replaces).
 */
class ContiguousKvCache
{
  public:
    ContiguousKvCache(std::int64_t total_tokens,
                      std::int64_t max_seq_tokens);

    bool admit(std::int64_t seq_id);
    void release(std::int64_t seq_id);
    std::int64_t freeTokens() const { return freeTokens_; }
    /** Max concurrently admitted sequences. */
    std::int64_t capacitySequences() const;

  private:
    std::int64_t totalTokens_;
    std::int64_t maxSeqTokens_;
    std::int64_t freeTokens_;
    std::map<std::int64_t, std::int64_t> held_;
};

/** KV bytes per token for a model shard (all layers, K and V). */
Bytes kvBytesPerToken(int layers, int kv_heads, int head_dim,
                      DataType dt);

} // namespace vespera::serve

#endif // VESPERA_SERVE_KV_CACHE_H
