/**
 * @file
 * Continuous-batching LLM serving engine (the vLLM substitute used for
 * Figure 17(d,e)).
 *
 * Iteration-level scheduling in the ORCA/vLLM style: each engine step
 * either prefills one admitted request or decodes one token for every
 * running request. KV blocks are allocated on demand from a
 * PagedKvCache; when the pool runs dry the newest running request is
 * preempted and re-queued. Step latencies come from the LlamaModel's
 * graph execution with the configured attention backend.
 *
 * Parallelism: when the runtime pool is parallel, the engine prefetches
 * step-cost evaluations — the next decode ctx buckets at the current
 * batch, and (monolithic-prefill mode) every prefill bucket the trace
 * will need — across the pool's workers. Each prefetched evaluation
 * captures its counter side effects (obs/capture.h); the capture is
 * replayed the first time the serial schedule actually reads that cache
 * entry, and never for entries the schedule never reads. Counter state
 * and metrics therefore stay bit-identical at any thread count
 * (docs/runtime.md).
 */

#ifndef VESPERA_SERVE_ENGINE_H
#define VESPERA_SERVE_ENGINE_H

#include <map>
#include <string>
#include <vector>

#include "models/llama.h"
#include "obs/capture.h"
#include "serve/kv_cache.h"
#include "serve/trace.h"

namespace vespera::serve {

/** Admission-order policy for waiting requests. */
enum class SchedPolicy {
    Fcfs,                ///< First come, first served.
    ShortestPromptFirst, ///< Among arrived requests, prefill the
                         ///< shortest prompt first (lower mean TTFT,
                         ///< at some fairness cost).
};

/**
 * Engine-loop core selector. Both cores produce byte-identical
 * metrics, counters, histograms, and attribution ledgers — fenced by
 * tests/serve/test_engine_equiv.cc — the Event core just proves, in
 * O(1) per step, when the scheduler front-end (SPF re-sort, admission
 * scan, prefill dispatch, idle check) would be a no-op and skips it
 * (docs/runtime.md "Event-driven engine core").
 */
enum class EngineCore {
    Event,  ///< Fast-path core (default): skip front-end when no
            ///< admission event is pending.
    Legacy, ///< Reference stepper: run every phase every iteration.
            ///< Kept as the equivalence oracle.
};

/** KV-cache allocation policy. */
enum class KvPolicy {
    Paged,      ///< vLLM block-based on-demand allocation.
    Contiguous, ///< Reserve max-model-length per admitted request
                ///< (the fragmentation-prone pre-vLLM baseline).
};

/** Engine configuration (Figure 17(d,e) sweeps maxDecodeBatch). */
struct EngineConfig
{
    DeviceKind device = DeviceKind::Gaudi2;
    /// Maximum decode-stage batch size.
    int maxDecodeBatch = 64;
    int tpDevices = 1;
    models::AttentionBackend attention =
        models::AttentionBackend::VllmOpt;
    /// HBM reserved for the KV cache (per device).
    Bytes kvCacheBytes = 40ull << 30;
    int blockTokens = 128;
    KvPolicy kvPolicy = KvPolicy::Paged;
    SchedPolicy schedPolicy = SchedPolicy::Fcfs;
    /// Tokens reserved per request under the Contiguous policy.
    std::int64_t maxModelLen = 4096;
    /// When nonzero, prefills are split into chunks of this many
    /// tokens and co-scheduled with the decode batch (vLLM's chunked
    /// prefill): long prompts no longer stall running decodes, at the
    /// cost of slightly later first tokens for the prefilling request.
    int chunkedPrefillTokens = 0;
    /// Record per-step engine events (see events()).
    bool recordEvents = false;
    DataType dt = DataType::BF16;
    /// Which run-loop core executes the schedule (same results).
    EngineCore core = EngineCore::Event;
    /// Label for this engine's virtual-time timeline series
    /// (obs/timeline.h) when the Timeline is enabled; empty means the
    /// Timeline assigns a deterministic "runN" label at publish.
    std::string timelineLabel;
};

/**
 * Cost of one engine step, harvested from the model's
 * graph::ExecutionReport: the step latency plus the per-unit busy
 * times the timeline layer turns into windowed utilization gauges.
 */
struct StepCost
{
    Seconds t = 0;        ///< Step latency (what the clock advances by).
    Seconds mmeBusy = 0;  ///< Matrix-engine busy time within the step.
    Seconds tpcBusy = 0;  ///< Vector-engine busy time within the step.
    double hbmBytes = 0;  ///< HBM traffic of the step.
};

/** One engine iteration, for profiling/visualization. */
struct EngineEvent
{
    enum class Kind { Prefill, Decode, Mixed };
    Kind kind = Kind::Decode;
    Seconds start = 0;
    Seconds duration = 0;
    int decodeBatch = 0;
    int prefillTokens = 0;
};

/** Serving-level metrics (Figure 17(d,e) y-axes). */
struct ServingMetrics
{
    Seconds makespan = 0;
    double throughputTokensPerSec = 0; ///< Generated tokens / makespan.
    Seconds meanTtft = 0;              ///< Mean time-to-first-token.
    Seconds meanTpot = 0;              ///< Mean time-per-output-token.
    Seconds p99Ttft = 0;
    int completed = 0;
    int preemptions = 0;
    double avgDecodeBatch = 0; ///< Mean running batch per decode step.
};

/** The engine. */
class Engine
{
  public:
    Engine(const models::LlamaModel &model, EngineConfig config);

    /** Simulate serving the trace to completion. */
    ServingMetrics run(std::vector<Request> trace);

    /** Per-step events of the last run (if recordEvents was set). */
    const std::vector<EngineEvent> &events() const { return events_; }

    /**
     * HBM bytes left for KV after model weights on this device; the
     * constructor clamps kvCacheBytes to it.
     */
    Bytes kvBudget() const { return kvBudget_; }

  private:
    /**
     * One memoized step-cost evaluation. Entries computed eagerly on
     * the serial path carry an empty, already-replayed log; entries
     * prefetched on a worker carry the captured counter effects, which
     * `use()` applies exactly once, at the first read.
     */
    struct CachedStep
    {
        StepCost c;
        obs::SideEffectLog log;
        bool replayed = false;

        const StepCost &
        use()
        {
            if (!replayed) {
                replayed = true;
                log.replay();
            }
            return c;
        }
    };

    StepCost decodeStepTime(int batch, std::int64_t mean_ctx);
    StepCost prefillStepTime(int input_len);
    StepCost prefillChunkTime(int chunk, std::int64_t ctx);
    void prewarmPrefill(const std::vector<Request> &trace);

    /**
     * Mutable state of one run() plus the scheduler phases, shared by
     * both cores so they cannot drift except in loop structure.
     * Defined in serve/engine_run.h (internal header).
     */
    struct RunState;
    /// Reference core: every phase, every iteration (engine.cc).
    void runLegacy(RunState &st);
    /// Event core: front-end skipped when provably idle
    /// (engine_event.cc).
    void runEvent(RunState &st);

    const models::LlamaModel &model_;
    EngineConfig config_;
    models::LlamaServingConfig servingCfg_;
    /// Memoized step times keyed by (batch, ctx bucket).
    std::map<std::pair<int, std::int64_t>, CachedStep> decodeCache_;
    std::map<int, CachedStep> prefillCache_;
    std::vector<EngineEvent> events_;
    Bytes kvBudget_ = 0;
};

} // namespace vespera::serve

#endif // VESPERA_SERVE_ENGINE_H
