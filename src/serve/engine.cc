#include "serve/engine.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/selfprof.h"
#include "runtime/pool.h"
#include "serve/engine_run.h"

namespace vespera::serve {

namespace {

/// Harvest the step fields the engine (and its timeline gauges) care
/// about from a full execution report. stepReport() is memoized by the
/// step replay cache exactly like stepTime() — stepTime *is*
/// stepReport().time — so this changes no values and no side effects.
StepCost
costOf(const graph::ExecutionReport &r)
{
    return {r.time, r.matrixBusy, r.vectorBusy,
            static_cast<double>(r.hbmBytes)};
}

} // namespace

Engine::Engine(const models::LlamaModel &model, EngineConfig config)
    : model_(model), config_(config)
{
    vassert(config.maxDecodeBatch >= 1, "bad max batch");
    servingCfg_.tpDevices = config.tpDevices;
    servingCfg_.attention = config.attention;
    servingCfg_.dt = config.dt;

    // Capacity accounting: weights plus KV must fit device HBM.
    const auto &spec = hw::deviceSpec(config.device);
    const Bytes weights =
        model.config().weightBytes(config.tpDevices, config.dt);
    vassert(weights < spec.hbmCapacity,
            "%s does not fit on %s with TP=%d (%llu GiB weights)",
            model.config().name.c_str(), deviceName(config.device),
            config.tpDevices,
            static_cast<unsigned long long>(weights >> 30));
    kvBudget_ = spec.hbmCapacity - weights;
    if (config_.kvCacheBytes > kvBudget_) {
        vwarn("kvCacheBytes clamped to %llu GiB (weights take %llu GiB)",
              static_cast<unsigned long long>(kvBudget_ >> 30),
              static_cast<unsigned long long>(weights >> 30));
        config_.kvCacheBytes = kvBudget_;
    }
}

StepCost
Engine::prefillChunkTime(int chunk, std::int64_t ctx)
{
    // Chunked prefill co-executes with the decode batch; this costs
    // the chunk alone (the caller overlaps it with the decode step).
    const int bucket = (chunk + 63) / 64 * 64;
    const std::int64_t ctx_bucket = std::max<std::int64_t>(
        bucket, (ctx + 255) / 256 * 256);
    if (obs::SelfProf::instance().enabled()) {
        // Chunked prefill is evaluated fresh every time (no cache), so
        // each call is a kernel-eval miss in the self-profile.
        obs::SelfProf::instance().cacheMiss(
            strfmt("prefill_chunk|%s|n%d|ctx%lld",
                   deviceName(config_.device), bucket,
                   static_cast<long long>(ctx_bucket)));
    }
    return costOf(model_.stepReport(config_.device, 1, bucket,
                                    ctx_bucket, true, servingCfg_));
}

StepCost
Engine::decodeStepTime(int batch, std::int64_t mean_ctx)
{
    const std::int64_t bucket = (mean_ctx + 63) / 64 * 64;
    const auto key = std::make_pair(batch, bucket);
    auto it = decodeCache_.find(key);
    if (obs::SelfProf::instance().enabled()) {
        // Self-profile cache accounting, keyed kernel x shape x device
        // x bucket granularity. Hit/miss splits shift with --threads
        // (the prefetch window below pre-inserts entries), which is why
        // these live in SelfProf and never in the deterministic
        // counter registry.
        const std::string ck =
            strfmt("decode|%s|b%d|ctx%lld", deviceName(config_.device),
                   batch, static_cast<long long>(bucket));
        if (it == decodeCache_.end())
            obs::SelfProf::instance().cacheMiss(ck);
        else
            obs::SelfProf::instance().cacheHit(ck);
    }
    if (it == decodeCache_.end()) {
        runtime::Pool &pool = runtime::Pool::global();
        const int fan = pool.threads();
        if (fan > 1) {
            // Speculative prefetch: decode context grows one token per
            // step, so the misses that follow this one are the next
            // ctx buckets at the same batch. Evaluate a pool-wide
            // window of them now, capturing each evaluation's counter
            // effects; CachedStep::use replays a capture only when the
            // serial schedule first reads that entry, so entries the
            // schedule never reads leave no counter footprint and the
            // op sequence matches single-threaded execution exactly.
            std::vector<std::pair<std::int64_t, CachedStep>> window(
                static_cast<std::size_t>(fan));
            pool.run(window.size(), [&](std::size_t i) {
                const std::int64_t b =
                    bucket + 64 * static_cast<std::int64_t>(i);
                window[i].first = b;
                obs::ScopedCapture cap(window[i].second.log);
                window[i].second.c = costOf(model_.stepReport(
                    config_.device, batch, 1, b, false, servingCfg_));
            });
            for (auto &entry : window) {
                decodeCache_.emplace(
                    std::make_pair(batch, entry.first),
                    std::move(entry.second));
            }
        } else {
            CachedStep step;
            step.c = costOf(model_.stepReport(config_.device, batch, 1,
                                              bucket, false, servingCfg_));
            step.replayed = true; // Eager: effects already applied.
            decodeCache_.emplace(key, std::move(step));
        }
        it = decodeCache_.find(key);
    }
    return it->second.use();
}

StepCost
Engine::prefillStepTime(int input_len)
{
    const int bucket = (input_len + 63) / 64 * 64;
    auto it = prefillCache_.find(bucket);
    if (obs::SelfProf::instance().enabled()) {
        const std::string ck = strfmt("prefill|%s|in%d",
                                      deviceName(config_.device), bucket);
        if (it == prefillCache_.end())
            obs::SelfProf::instance().cacheMiss(ck);
        else
            obs::SelfProf::instance().cacheHit(ck);
    }
    if (it == prefillCache_.end()) {
        CachedStep step;
        step.c = costOf(model_.stepReport(config_.device, 1, bucket,
                                          bucket, true, servingCfg_));
        step.replayed = true; // Eager: effects already applied.
        it = prefillCache_.emplace(bucket, std::move(step)).first;
    }
    return it->second.use();
}

void
Engine::prewarmPrefill(const std::vector<Request> &trace)
{
    // Monolithic prefill cost depends only on the input-length bucket,
    // so the full set of evaluations the run will need is known up
    // front. Fill the cache across the pool; effects replay at first
    // read (see decodeStepTime).
    runtime::Pool &pool = runtime::Pool::global();
    if (pool.threads() <= 1 || config_.chunkedPrefillTokens > 0)
        return;

    std::vector<int> buckets;
    buckets.reserve(trace.size());
    for (const Request &r : trace)
        buckets.push_back((r.inputLen + 63) / 64 * 64);
    std::sort(buckets.begin(), buckets.end());
    buckets.erase(std::unique(buckets.begin(), buckets.end()),
                  buckets.end());
    buckets.erase(std::remove_if(buckets.begin(), buckets.end(),
                                 [&](int b) {
                                     return prefillCache_.count(b) > 0;
                                 }),
                  buckets.end());
    if (buckets.empty())
        return;

    obs::ScopedSpan span("engine.prewarm_prefill", "runtime");
    if (obs::SelfProf::instance().enabled()) {
        // Prewarmed buckets are the run's prefill misses, recorded here
        // (serially, in bucket order) so prefillStepTime sees hits.
        for (int b : buckets)
            obs::SelfProf::instance().cacheMiss(
                strfmt("prefill|%s|in%d", deviceName(config_.device),
                       b));
    }
    std::vector<CachedStep> steps(buckets.size());
    pool.run(buckets.size(), [&](std::size_t i) {
        obs::ScopedCapture cap(steps[i].log);
        steps[i].c = costOf(model_.stepReport(config_.device, 1,
                                              buckets[i], buckets[i],
                                              true, servingCfg_));
    });
    for (std::size_t i = 0; i < buckets.size(); i++)
        prefillCache_.emplace(buckets[i], std::move(steps[i]));
}

namespace {

/// Under the Contiguous policy every request reserves a full
/// max-model-length slab up front: modeled as paging with one giant
/// block per sequence.
int
kvBlockTokens(const EngineConfig &cfg)
{
    return cfg.kvPolicy == KvPolicy::Paged
               ? cfg.blockTokens
               : static_cast<int>(cfg.maxModelLen);
}

std::int64_t
kvTotalBlocks(const EngineConfig &cfg, const models::LlamaConfig &mc)
{
    const Bytes per_token = kvBytesPerToken(
        mc.layers, std::max(1, mc.numKvHeads / cfg.tpDevices),
        mc.headDim, cfg.dt);
    const Bytes block_bytes =
        per_token * static_cast<Bytes>(kvBlockTokens(cfg));
    return std::max<std::int64_t>(
        1, static_cast<std::int64_t>(cfg.kvCacheBytes / block_bytes));
}

} // namespace

Engine::RunState::RunState(Engine &engine, std::vector<Request> &reqs)
    : eng(engine), trace(reqs),
      paged(engine.config_.kvPolicy == KvPolicy::Paged),
      kv(kvTotalBlocks(engine.config_, engine.model_.config()),
         kvBlockTokens(engine.config_)),
      remaining(reqs.size()), delivered(reqs.size(), 0),
      c_steps(obs::CounterRegistry::instance().counter("engine.steps")),
      c_prefill_tok(obs::CounterRegistry::instance().counter(
          "engine.prefill_tokens")),
      c_decode_tok(obs::CounterRegistry::instance().counter(
          "engine.decode_tokens")),
      c_preempt(obs::CounterRegistry::instance().counter(
          "engine.preemptions")),
      c_recomputed(obs::CounterRegistry::instance().counter(
          "engine.recomputed_tokens")),
      c_kv_in_use(obs::CounterRegistry::instance().counter(
          "kv.blocks_in_use")),
      profiler(obs::Profiler::instance()),
      // Request-lifecycle flow tracing: one Perfetto flow per request
      // (queued -> prefill -> decode, with preemption/re-prefill
      // episodes), linked via SpanEvent::flowId. Queue time renders on
      // one shared lane; admitted requests occupy one of
      // maxDecodeBatch slot lanes for their prefill+decode residency.
      // Recording is skipped under an active capture (a parallel
      // sweep worker): the span order and lane cursors there would
      // depend on thread interleaving, and overlapping sweep points on
      // shared lanes are unreadable anyway — single-run traces
      // (examples/profile_step) are where per-request flows make
      // sense.
      flow_trace(profiler.enabled() &&
                 obs::ScopedCapture::current() == nullptr)
{
    for (std::size_t i = 0; i < trace.size(); i++)
        waiting.push_back(i);
    if (flow_trace) {
        slot_of.assign(trace.size(), -1);
        phase_start.assign(trace.size(), 0);
        episodes.assign(trace.size(), 0);
        for (std::size_t i = 0; i < trace.size(); i++)
            phase_start[i] = trace[i].arrival;
        for (int s = 0; s < eng.config_.maxDecodeBatch; s++)
            free_slots.insert(s);
        profiler.nameTrack(obs::TrackGroup::Device, kLaneQueue,
                           "req queue");
    }

    // Virtual-time timeline: a run-local windowed sampler, created
    // only when the process-wide Timeline is on. Run-local state fed
    // from the serial scheduler path is what keeps the series a pure
    // function of the simulated schedule — sampling the shared counter
    // registry at boundaries would be thread-variant (deferred updates
    // are invisible under capture, and a 1-thread pool skips captures
    // entirely).
    obs::Timeline &timeline = obs::Timeline::instance();
    if (timeline.enabled()) {
        const models::LlamaConfig &mc = eng.model_.config();
        const Bytes per_token = kvBytesPerToken(
            mc.layers,
            std::max(1, mc.numKvHeads / eng.config_.tpDevices),
            mc.headDim, eng.config_.dt);
        kv_block_bytes =
            static_cast<double>(per_token) *
            static_cast<double>(kvBlockTokens(eng.config_));
        tl = std::make_unique<obs::TimelineRecorder>(
            timeline.interval(), timeline.capacity(), timeline.slos());
        g_queue = tl->gaugeId("queue_depth");
        g_running = tl->gaugeId("running");
        g_kv_bytes = tl->gaugeId("kv_bytes_in_use");
        g_kv_hw = tl->gaugeId("kv_high_water_bytes");
        g_preempt = tl->gaugeId("preemptions");
        g_prefill_tok = tl->gaugeId("prefill_tokens");
        g_decode_tok = tl->gaugeId("decode_tokens");
        g_goodput = tl->gaugeId("goodput_tokens_per_sec");
        g_ttft_p99 = tl->gaugeId("ttft_p99_seconds");
        g_tpot_p99 = tl->gaugeId("tpot_p99_seconds");
        g_mme_util = tl->gaugeId("mme_util");
        g_tpc_util = tl->gaugeId("tpc_util");
        g_hbm_gbps = tl->gaugeId("hbm_gbps");
    }
}

void
Engine::RunState::tlAdvance(Seconds t)
{
    // Close every window whose end has passed. The engine advances in
    // whole steps, so a boundary is never itself a scheduling point;
    // boundary gauges are read at the first scheduling point at or
    // after it (documented in docs/observability.md).
    while (tl->windowEnd() <= t) {
        tlSample(tl->windowEnd(), tl->interval());
        tl->closeWindow();
    }
}

void
Engine::RunState::tlSample(Seconds t, Seconds len)
{
    // Arrived-but-unadmitted requests plus the prefill queue. The
    // arrived prefix of `waiting` may be SPF-reordered, so the whole
    // deque is scanned against the boundary time.
    std::int64_t queued =
        static_cast<std::int64_t>(prefill_queue.size());
    for (std::size_t idx : waiting) {
        if (trace[idx].arrival <= t)
            queued++;
    }
    tl->set(g_queue, static_cast<double>(queued));
    tl->set(g_running, static_cast<double>(running.size()));
    const double kv_bytes =
        static_cast<double>(kv.totalBlocks() - kv.freeBlocks()) *
        kv_block_bytes;
    tl->set(g_kv_bytes, kv_bytes);
    // The window's KV high-water is at least the boundary occupancy
    // (a window with no steps still holds its residents' blocks).
    tl->max(g_kv_hw, kv_bytes);

    // Windowed deltas against the previous boundary's snapshots.
    tl->set(g_goodput,
            static_cast<double>(generated_total - w_goodput_base) /
                len);
    w_goodput_base = generated_total;
    tl->set(g_ttft_p99, ttft.diff(ttft_prev).percentile(99));
    ttft_prev = ttft;
    tl->set(g_tpot_p99, tpot.diff(tpot_prev).percentile(99));
    tpot_prev = tpot;

    // Busy fractions. A step is charged whole to the window containing
    // its start, so a fraction can exceed 1 when steps outlast the
    // interval — pick an interval above the typical step time
    // (docs/observability.md).
    tl->set(g_mme_util, w_mme / len);
    tl->set(g_tpc_util, w_tpc / len);
    tl->set(g_hbm_gbps, w_hbm / len / 1e9);
    w_mme = w_tpc = w_hbm = 0;
}

void
Engine::RunState::tlBusy(const StepCost &c)
{
    w_mme += c.mmeBusy;
    w_tpc += c.tpcBusy;
    w_hbm += c.hbmBytes;
}

void
Engine::RunState::tlFinish()
{
    tlAdvance(clock);
    if (clock > tl->windowStart()) {
        tlSample(clock, clock - tl->windowStart());
        tl->closeFinal(clock);
    }
    tl->publish(eng.config_.timelineLabel);
}

std::int64_t
Engine::RunState::reserveTokens(const Request &r) const
{
    return paged ? static_cast<std::int64_t>(r.inputLen) + 1
                 : std::max<std::int64_t>(eng.config_.maxModelLen,
                                          r.inputLen + r.outputLen);
}

void
Engine::RunState::flowSpan(const Request &r, const char *phase,
                           int lane, Seconds start)
{
    obs::SpanEvent e;
    e.name = strfmt("req %lld %s", static_cast<long long>(r.id), phase);
    e.category = "request";
    e.group = obs::TrackGroup::Device;
    e.track = lane;
    e.start = start;
    e.duration = clock - start;
    e.flowId = static_cast<std::uint64_t>(r.id) + 1;
    profiler.recordSpan(std::move(e));
}

void
Engine::RunState::allocSlot(std::size_t idx)
{
    vassert(!free_slots.empty(), "more residents than batch slots");
    const int s = *free_slots.begin();
    free_slots.erase(free_slots.begin());
    slot_of[idx] = s;
    profiler.nameTrack(obs::TrackGroup::Device, kLaneSlot0 + s,
                       strfmt("req slot %d", s));
}

void
Engine::RunState::releaseSlot(std::size_t idx)
{
    free_slots.insert(slot_of[idx]);
    slot_of[idx] = -1;
}

// Queue span ends and a slot lane begins when prefill starts.
void
Engine::RunState::flowAdmit(std::size_t idx)
{
    flowSpan(trace[idx], episodes[idx] ? "re-queued" : "queued",
             kLaneQueue, phase_start[idx]);
    allocSlot(idx);
    phase_start[idx] = clock;
}

void
Engine::RunState::record(EngineEvent::Kind kind, Seconds start,
                         Seconds duration, int batch, int chunk)
{
    // Telemetry runs regardless of recordEvents: counters are cheap,
    // and per-step counter tracks only when tracing.
    c_steps.add();
    c_prefill_tok.add(chunk);
    c_decode_tok.add(batch);
    const std::int64_t blocks_in_use =
        kv.totalBlocks() - kv.freeBlocks();
    c_kv_in_use.set(static_cast<double>(blocks_in_use));
    if (tl) {
        // Close windows the clock has passed, then charge this step's
        // scheduling to the window containing its start.
        tlAdvance(start);
        tl->add(g_prefill_tok, chunk);
        tl->add(g_decode_tok, batch);
        tl->max(g_kv_hw,
                static_cast<double>(blocks_in_use) * kv_block_bytes);
    }
    if (profiler.enabled()) {
        profiler.sample("kv.blocks_in_use", start + duration,
                        static_cast<double>(blocks_in_use));
        profiler.sample("engine.decode_batch", start + duration, batch);
    }
    if (!eng.config_.recordEvents)
        return;
    EngineEvent e;
    e.kind = kind;
    e.start = start;
    e.duration = duration;
    e.decodeBatch = batch;
    e.prefillTokens = chunk;
    eng.events_.push_back(e);
}

// Completes a request's prefill: its first token materializes.
// After a preemption the same request prefills again — recompute
// rebuilds its KV — but its first token was already delivered, so
// TTFT and the generated-token total are recorded only once.
void
Engine::RunState::finishPrefill(std::size_t idx)
{
    Request &r = trace[idx];
    r.prefilled = true;
    r.generated = 1;
    if (flow_trace) {
        flowSpan(r, episodes[idx] ? "re-prefill" : "prefill",
                 kLaneSlot0 + slot_of[idx], phase_start[idx]);
        phase_start[idx] = clock;
    }
    if (r.firstTokenTime < 0) {
        r.firstTokenTime = clock;
        ttft.add(clock - r.arrival);
    }
    if (r.generated > delivered[idx]) {
        delivered[idx] = r.generated;
        generated_total++;
    } else {
        c_recomputed.add();
    }
    if (requestFinished(r)) {
        r.finishTime = clock;
        kv.release(r.id);
        remaining--;
        if (flow_trace)
            releaseSlot(idx);
    } else {
        running.push_back(idx);
    }
}

void
Engine::RunState::spfSort()
{
    // Shortest-prompt-first: reorder the arrived prefix of the
    // waiting queue by prompt length before admitting.
    if (eng.config_.schedPolicy == SchedPolicy::ShortestPromptFirst &&
        waiting.size() > 1) {
        auto arrived_end = waiting.begin();
        while (arrived_end != waiting.end() &&
               trace[*arrived_end].arrival <= clock) {
            ++arrived_end;
        }
        std::stable_sort(waiting.begin(), arrived_end,
                         [&](std::size_t a, std::size_t b) {
                             return trace[a].inputLen <
                                    trace[b].inputLen;
                         });
    }
}

void
Engine::RunState::admitArrived()
{
    // Admission: arrived requests into free slots, KV permitting.
    while (!waiting.empty()) {
        const Request &r = trace[waiting.front()];
        const bool slot_free =
            static_cast<int>(running.size() + prefill_queue.size()) <
            eng.config_.maxDecodeBatch;
        if (r.arrival > clock || !slot_free ||
            !kv.canGrow(r.id, reserveTokens(r))) {
            break;
        }
        kv.grow(r.id, reserveTokens(r));
        prefill_queue.push_back(waiting.front());
        waiting.pop_front();
    }
}

void
Engine::RunState::monolithicPrefillStep()
{
    // Monolithic prefill of one request (stalls decodes).
    const std::size_t idx = prefill_queue.front();
    prefill_queue.pop_front();
    Request &r = trace[idx];
    if (flow_trace)
        flowAdmit(idx);
    const StepCost sc = eng.prefillStepTime(r.inputLen);
    record(EngineEvent::Kind::Prefill, clock, sc.t, 0, r.inputLen);
    if (tl)
        tlBusy(sc);
    clock += sc.t;
    finishPrefill(idx);
}

void
Engine::RunState::idleJump()
{
    // Idle: jump to the next arrival.
    vassert(!waiting.empty(), "deadlock: nothing running or waiting");
    clock = std::max(clock, trace[waiting.front()].arrival);
}

void
Engine::RunState::preemptScan()
{
    // Grow KV for every decoding sequence; preempt the newest on
    // exhaustion (vLLM's recompute-on-preemption policy).
    // Preemptions happen at the current clock, which may sit past an
    // unclosed window boundary (the scan precedes the step's record);
    // closing here keeps them attributed to the right window.
    if (tl)
        tlAdvance(clock);
    for (std::size_t k = running.size(); k-- > 0;) {
        Request &r = trace[running[k]];
        if (!kv.grow(r.id, r.inputLen + r.generated + 1)) {
            if (flow_trace) {
                flowSpan(r, "decode (preempted)",
                         kLaneSlot0 + slot_of[running[k]],
                         phase_start[running[k]]);
                releaseSlot(running[k]);
                episodes[running[k]]++;
                phase_start[running[k]] = clock;
            }
            kv.release(r.id);
            r.generated = 0;
            r.prefilled = false;
            r.prefillProgress = 0;
            waiting.push_front(running[k]);
            running.erase(running.begin() +
                          static_cast<std::ptrdiff_t>(k));
            m.preemptions++;
            c_preempt.add();
            if (tl)
                tl->add(g_preempt, 1);
        }
    }
}

void
Engine::RunState::decodeChunkStep(bool has_chunk)
{
    StepCost dc{};
    if (!running.empty()) {
        std::int64_t ctx_sum = 0;
        for (auto i : running)
            ctx_sum += trace[i].inputLen + trace[i].generated;
        dc = eng.decodeStepTime(
            static_cast<int>(running.size()),
            ctx_sum / static_cast<std::int64_t>(running.size()));
    }
    const Seconds decode_time = dc.t;

    StepCost pc{};
    int chunk = 0;
    std::size_t chunk_idx = 0;
    if (has_chunk) {
        chunk_idx = prefill_queue.front();
        Request &r = trace[chunk_idx];
        // First chunk of this prefill episode: the request leaves
        // the queue lane and takes a slot.
        if (flow_trace && slot_of[chunk_idx] < 0)
            flowAdmit(chunk_idx);
        chunk = std::min(eng.config_.chunkedPrefillTokens,
                         r.inputLen - r.prefillProgress);
        pc = eng.prefillChunkTime(chunk, r.prefillProgress);
    }
    const Seconds chunk_time = pc.t;

    // Compute-bound prefill chunks overlap with memory-bound
    // decode steps on real hardware; charge the longer plus a
    // small serialization tax.
    Seconds step;
    EngineEvent::Kind kind;
    if (decode_time > 0 && chunk_time > 0) {
        step = std::max(decode_time, chunk_time) +
               0.15 * std::min(decode_time, chunk_time);
        kind = EngineEvent::Kind::Mixed;
    } else if (chunk_time > 0) {
        step = chunk_time;
        kind = EngineEvent::Kind::Prefill;
    } else {
        step = decode_time;
        kind = EngineEvent::Kind::Decode;
    }
    record(kind, clock, step, static_cast<int>(running.size()), chunk);
    if (tl) {
        // Both halves of a mixed step overlap within it; their busy
        // times charge the same window (pc is zero when no chunk ran).
        tlBusy(dc);
        tlBusy(pc);
    }
    clock += step;

    if (has_chunk) {
        Request &r = trace[chunk_idx];
        r.prefillProgress += chunk;
        if (r.prefillProgress >= r.inputLen) {
            prefill_queue.pop_front();
            finishPrefill(chunk_idx);
        }
    }

    if (!running.empty()) {
        batch_sum += static_cast<double>(running.size());
        decode_steps++;
        for (std::size_t k = running.size(); k-- > 0;) {
            Request &r = trace[running[k]];
            r.generated++;
            if (r.generated > delivered[running[k]]) {
                delivered[running[k]] = r.generated;
                generated_total++;
            } else {
                c_recomputed.add();
            }
            if (requestFinished(r)) {
                r.finishTime = clock;
                if (r.outputLen > 1) {
                    tpot.add((r.finishTime - r.firstTokenTime) /
                             (r.outputLen - 1));
                }
                if (flow_trace) {
                    flowSpan(r, "decode",
                             kLaneSlot0 + slot_of[running[k]],
                             phase_start[running[k]]);
                    releaseSlot(running[k]);
                }
                kv.release(r.id);
                running.erase(running.begin() +
                              static_cast<std::ptrdiff_t>(k));
                remaining--;
            }
        }
    }
}

void
Engine::RunState::fullIteration()
{
    spfSort();
    admitArrived();

    const bool chunked = eng.config_.chunkedPrefillTokens > 0;

    if (!chunked && !prefill_queue.empty()) {
        monolithicPrefillStep();
        return;
    }

    const bool has_decodes = !running.empty();
    const bool has_chunk = chunked && !prefill_queue.empty();

    if (!has_decodes && !has_chunk) {
        idleJump();
        return;
    }

    // has_chunk is latched before the scan; preemption never touches
    // prefill_queue, so the latch is stable (engine_run.h).
    preemptScan();
    if (running.empty() && !has_chunk)
        return;

    decodeChunkStep(has_chunk);
}

bool
Engine::RunState::fastPathEligible() const
{
    return prefill_queue.empty() && !running.empty() &&
           (waiting.empty() || trace[waiting.front()].arrival > clock);
}

ServingMetrics
Engine::RunState::finalize()
{
    m.makespan = clock;
    m.throughputTokensPerSec =
        static_cast<double>(generated_total) / clock;
    m.meanTtft = ttft.mean();
    m.p99Ttft = ttft.percentile(99);
    m.meanTpot = tpot.mean();
    m.completed = static_cast<int>(trace.size());
    m.avgDecodeBatch =
        decode_steps ? batch_sum / static_cast<double>(decode_steps)
                     : 0;

    // End-of-run serving gauges (last run wins; peak keeps the best).
    auto &registry = obs::CounterRegistry::instance();
    registry.counter("engine.throughput_tokens_per_sec")
        .set(m.throughputTokensPerSec);
    registry.counter("engine.mean_ttft_seconds").set(m.meanTtft);
    registry.counter("engine.p99_ttft_seconds").set(m.p99Ttft);
    registry.counter("engine.mean_tpot_seconds").set(m.meanTpot);
    registry.counter("engine.avg_decode_batch").set(m.avgDecodeBatch);

    // Publish the full latency distributions. Histogram::merge is not
    // capture-aware like Counter::set, so when this run executes on a
    // sweep worker (bench_fig17_vllm) the merge is deferred to the
    // outermost replay — serial, in task-index order — keeping the
    // registry histograms bit-identical at any thread count.
    auto publish_hists = [ttft = ttft, tpot = tpot]() {
        auto &reg = obs::CounterRegistry::instance();
        reg.histogram("engine.ttft_seconds").merge(ttft);
        reg.histogram("engine.tpot_seconds").merge(tpot);
    };
    if (obs::SideEffectLog *log = obs::ScopedCapture::current())
        log->appendDeferred(publish_hists);
    else
        publish_hists();

    // Flush and publish the virtual-time timeline. Same deferral
    // story: publish() captures a self-contained payload and lands it
    // in the Timeline singleton at the outermost replay, so sweep
    // workers produce deterministic labels and ordering.
    if (tl)
        tlFinish();
    return m;
}

void
Engine::runLegacy(RunState &st)
{
    while (st.remaining > 0)
        st.fullIteration();
}

ServingMetrics
Engine::run(std::vector<Request> trace)
{
    vassert(!trace.empty(), "empty trace");
    // Engine-loop self time; the kernel-eval timers nested inside the
    // step caches subtract themselves out (see obs/selfprof.h).
    obs::SelfTimer self(obs::SelfCat::EngineStep);
    std::sort(trace.begin(), trace.end(),
              [](const Request &a, const Request &b) {
                  return a.arrival < b.arrival;
              });
    events_.clear();
    prewarmPrefill(trace);

    RunState st(*this, trace);
    if (config_.core == EngineCore::Legacy)
        runLegacy(st);
    else
        runEvent(st);
    return st.finalize();
}

} // namespace vespera::serve
