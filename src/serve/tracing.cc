#include "serve/tracing.h"

#include "common/logging.h"
#include "obs/export.h"

namespace vespera::serve {

namespace {

/// Device-track lanes used by the serving/graph adapters.
enum Lane {
    laneMme = 1,
    laneTpc = 2,
    laneComm = 3,
    laneDecode = 4,
    lanePrefill = 5,
};

} // namespace

void
recordEngineEvents(obs::Profiler &profiler,
                   const std::vector<EngineEvent> &events)
{
    profiler.nameTrack(obs::TrackGroup::Device, laneDecode, "decode");
    profiler.nameTrack(obs::TrackGroup::Device, lanePrefill, "prefill");
    for (const EngineEvent &e : events) {
        const char *cat = "decode";
        std::string name;
        int lane = laneDecode;
        switch (e.kind) {
          case EngineEvent::Kind::Prefill:
            cat = "prefill";
            name = strfmt("prefill %d tok", e.prefillTokens);
            lane = lanePrefill;
            break;
          case EngineEvent::Kind::Decode:
            name = strfmt("decode b%d", e.decodeBatch);
            break;
          case EngineEvent::Kind::Mixed:
            cat = "mixed";
            name = strfmt("decode b%d + chunk %d", e.decodeBatch,
                          e.prefillTokens);
            break;
        }
        profiler.recordSpan(name, cat, lane, e.start, e.duration);
    }
}

void
recordTimeline(obs::Profiler &profiler,
               const std::vector<graph::TimelineEntry> &timeline)
{
    profiler.nameTrack(obs::TrackGroup::Device, laneMme, "MME");
    profiler.nameTrack(obs::TrackGroup::Device, laneTpc, "TPC");
    profiler.nameTrack(obs::TrackGroup::Device, laneComm, "comm");
    for (const auto &e : timeline) {
        const char *cat = "op";
        int lane = laneMme;
        switch (e.kind) {
          case graph::OpKind::MatMul:
            cat = "mme";
            lane = laneMme;
            break;
          case graph::OpKind::Elementwise:
          case graph::OpKind::Normalization:
            cat = "tpc";
            lane = laneTpc;
            break;
          case graph::OpKind::AllReduce:
            cat = "comm";
            lane = laneComm;
            break;
          case graph::OpKind::Custom:
            cat = "custom";
            lane = laneTpc;
            break;
          case graph::OpKind::Input:
            continue;
        }
        profiler.recordSpan(e.name, cat, lane, e.start, e.duration);
    }
}

std::string
engineEventsToChromeTrace(const std::vector<EngineEvent> &events)
{
    obs::Profiler local;
    recordEngineEvents(local, events);
    return obs::chromeTraceJson(local);
}

std::string
timelineToChromeTrace(const std::vector<graph::TimelineEntry> &timeline)
{
    obs::Profiler local;
    recordTimeline(local, timeline);
    return obs::chromeTraceJson(local);
}

} // namespace vespera::serve
