#include "serve/tracing.h"

#include <cstdio>

#include "common/logging.h"

namespace vespera::serve {

namespace {

/// One "complete" (ph:X) trace event. Times are microseconds.
std::string
completeEvent(const std::string &name, const char *category,
              Seconds start, Seconds duration, int tid, bool last)
{
    return strfmt("    {\"name\": \"%s\", \"cat\": \"%s\", "
                  "\"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, "
                  "\"pid\": 1, \"tid\": %d}%s\n",
                  name.c_str(), category, start * 1e6, duration * 1e6,
                  tid, last ? "" : ",");
}

std::string
wrap(std::string events)
{
    return "{\n  \"traceEvents\": [\n" + std::move(events) +
           "  ],\n  \"displayTimeUnit\": \"ms\"\n}\n";
}

} // namespace

std::string
engineEventsToChromeTrace(const std::vector<EngineEvent> &events)
{
    std::string out;
    for (std::size_t i = 0; i < events.size(); i++) {
        const EngineEvent &e = events[i];
        const char *cat = "decode";
        std::string name;
        int tid = 1;
        switch (e.kind) {
          case EngineEvent::Kind::Prefill:
            cat = "prefill";
            name = strfmt("prefill %d tok", e.prefillTokens);
            tid = 2;
            break;
          case EngineEvent::Kind::Decode:
            name = strfmt("decode b%d", e.decodeBatch);
            break;
          case EngineEvent::Kind::Mixed:
            cat = "mixed";
            name = strfmt("decode b%d + chunk %d", e.decodeBatch,
                          e.prefillTokens);
            break;
        }
        out += completeEvent(name, cat, e.start, e.duration, tid,
                             i + 1 == events.size());
    }
    return wrap(std::move(out));
}

std::string
timelineToChromeTrace(const std::vector<graph::TimelineEntry> &timeline)
{
    std::string out;
    for (std::size_t i = 0; i < timeline.size(); i++) {
        const auto &e = timeline[i];
        const char *cat = "op";
        int tid = 1;
        switch (e.kind) {
          case graph::OpKind::MatMul:
            cat = "mme";
            tid = 1;
            break;
          case graph::OpKind::Elementwise:
          case graph::OpKind::Normalization:
            cat = "tpc";
            tid = 2;
            break;
          case graph::OpKind::AllReduce:
            cat = "comm";
            tid = 3;
            break;
          case graph::OpKind::Custom:
            cat = "custom";
            tid = 2;
            break;
          case graph::OpKind::Input:
            continue;
        }
        out += completeEvent(e.name, cat, e.start, e.duration, tid,
                             i + 1 == timeline.size());
    }
    // The last emitted event may not be the vector's last element
    // (inputs are skipped), so normalize the trailing comma.
    const auto pos = out.find_last_of('}');
    if (pos != std::string::npos && pos + 1 < out.size() &&
        out[pos + 1] == ',') {
        out.erase(pos + 1, 1);
    }
    return wrap(std::move(out));
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const std::size_t n =
        std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
    return n == content.size();
}

} // namespace vespera::serve
