/**
 * @file
 * Event-driven engine core.
 *
 * The legacy stepper re-runs the whole scheduler front-end — SPF
 * re-sort, admission scan, prefill dispatch, idle check — on every
 * iteration, even though on a long decode stretch nothing there can
 * fire: scheduling decisions only change on an *event* (a request
 * arrives, a prefill is queued, the batch drains, a preemption
 * re-queues work). This core checks for a pending event in O(1)
 * (RunState::fastPathEligible) and, when none is pending, jumps
 * straight to the two phases that always run — the KV-growth/preempt
 * scan and the decode step itself.
 *
 * Equivalence: the fast path executes the exact phase-method suffix
 * the full iteration would have reached, and the eligibility predicate
 * proves the skipped prefix is side-effect-free that iteration (the
 * waiting-queue ordering argument is spelled out on fastPathEligible).
 * When the fast-path preempt scan drains the batch, control falls
 * through to the next iteration where eligibility fails (the preempted
 * request now heads `waiting` with arrival <= clock) and the full
 * front-end runs — the same recovery order as the legacy core. The
 * differential suite (tests/serve/test_engine_equiv.cc) asserts
 * byte-identical metrics, counters, and histograms across both cores
 * on every regression scenario at 1/2/4/8 threads.
 *
 * Observability: `engine.events_processed` counts full iterations,
 * `engine.steps_skipped` counts fast-path iterations. Both are pure
 * functions of the simulated schedule (thread-count invariant), but
 * they differ between the two cores by construction, so the
 * equivalence suite excludes exactly this pair.
 */

#include "obs/counters.h"
#include "serve/engine_run.h"

namespace vespera::serve {

void
Engine::runEvent(RunState &st)
{
    auto &registry = obs::CounterRegistry::instance();
    static obs::Counter &c_skipped =
        registry.counter("engine.steps_skipped");
    static obs::Counter &c_events =
        registry.counter("engine.events_processed");

    while (st.remaining > 0) {
        if (st.fastPathEligible()) {
            c_skipped.add();
            st.preemptScan();
            if (st.running.empty())
                continue; // Batch drained: full front-end next.
            st.decodeChunkStep(/*has_chunk=*/false);
            continue;
        }
        c_events.add();
        st.fullIteration();
    }
}

} // namespace vespera::serve
