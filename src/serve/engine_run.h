/**
 * @file
 * Internal: shared run-loop state for the two engine cores.
 *
 * Engine::run() used to be one 200-line loop. It is now a RunState —
 * the mutable per-run state plus one method per scheduler phase — and
 * two drivers: runLegacy() executes every phase every iteration (the
 * reference stepper), runEvent() skips the scheduler front-end on
 * iterations where fastPathEligible() proves it is a no-op. Because
 * both cores call the *same* phase methods, they cannot drift except
 * in loop structure; the differential suite
 * (tests/serve/test_engine_equiv.cc) fences exactly that structural
 * difference, asserting byte-identical metrics/counters/histograms.
 *
 * Phase order of one full iteration (fullIteration()) — this order is
 * load-bearing and mirrors the original loop:
 *
 *   1. spfSort()               reorder arrived waiting prefix
 *   2. admitArrived()          waiting -> prefill_queue, KV permitting
 *   3. monolithicPrefillStep() when !chunked and queue nonempty (then
 *                              the iteration ends)
 *   4. idleJump()              nothing runnable: clock jumps to the
 *                              next arrival (then the iteration ends)
 *   5. preemptScan()           KV growth; preempt newest on exhaustion
 *   6. decodeChunkStep()       the decode batch + optional co-run
 *                              prefill chunk, telemetry, bookkeeping
 *
 * `has_chunk` is latched BEFORE preemptScan() (step 5 never touches
 * prefill_queue, so the latch is stable; keeping the original read
 * point makes the equivalence argument local).
 *
 * This header is internal to src/serve — tests include it directly,
 * public consumers use serve/engine.h.
 */

#ifndef VESPERA_SERVE_ENGINE_RUN_H
#define VESPERA_SERVE_ENGINE_RUN_H

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <vector>

#include "obs/counters.h"
#include "obs/hist.h"
#include "obs/profiler.h"
#include "obs/timeline.h"
#include "serve/engine.h"
#include "serve/kv_cache.h"

namespace vespera::serve {

struct Engine::RunState
{
    /** Builds KV pool, queues, counters, and flow-trace lanes. */
    RunState(Engine &engine, std::vector<Request> &reqs);

    /// @name Scheduler phases (see file comment for the order).
    /// @{
    void spfSort();
    void admitArrived();
    void monolithicPrefillStep();
    void idleJump();
    void preemptScan();
    void decodeChunkStep(bool has_chunk);
    /** One full legacy iteration: phases 1-6 with the early-outs. */
    void fullIteration();
    /// @}

    /**
     * True when phases 1-4 are provably no-ops this iteration: no
     * request queued for prefill, a decode batch is running, and no
     * waiting request has arrived. The waiting-front check is exact
     * because the queue is [arrived, any order][not yet arrived, by
     * arrival]: admission pops the front, preemption pushes requests
     * whose arrival <= clock to the front, and the tail keeps the
     * trace's arrival order — so front.arrival > clock implies every
     * queued arrival is still in the future.
     */
    bool fastPathEligible() const;

    /** Computes ServingMetrics and publishes end-of-run telemetry. */
    ServingMetrics finalize();

    /// @name Helpers shared by the phases.
    /// @{
    std::int64_t reserveTokens(const Request &r) const;
    bool requestFinished(const Request &r) const
    {
        return r.generated >= r.outputLen;
    }
    /** Per-step telemetry + optional EngineEvent record. */
    void record(EngineEvent::Kind kind, Seconds start, Seconds duration,
                int batch, int chunk);
    /** First token materializes (TTFT once, recompute-aware). */
    void finishPrefill(std::size_t idx);
    /// @}

    /// @name Request-lifecycle flow tracing (profiler runs only).
    /// @{
    void flowSpan(const Request &r, const char *phase, int lane,
                  Seconds start);
    void allocSlot(std::size_t idx);
    void releaseSlot(std::size_t idx);
    void flowAdmit(std::size_t idx);
    /// @}

    /// @name Virtual-time timeline hooks (obs/timeline.h). All are
    /// called from the serial scheduler path only and no-op (one
    /// branch) when the Timeline is disabled; because both cores share
    /// the phase methods carrying these hooks, the recorded series is
    /// identical across cores by construction.
    /// @{
    /** Close every window whose end is <= t (boundary gauges sampled
        at the first scheduling point at or after each boundary). */
    void tlAdvance(Seconds t);
    /** Sample the boundary gauges for the window ending at `t` of
        length `len` (the final window may be partial). */
    void tlSample(Seconds t, Seconds len);
    /** Charge one step's busy time / HBM traffic to the current
        window (the window containing the step's start). */
    void tlBusy(const StepCost &c);
    /** Flush trailing windows and publish (capture-deferred). */
    void tlFinish();
    /// @}

    Engine &eng;
    std::vector<Request> &trace;

    bool paged;
    PagedKvCache kv;

    std::deque<std::size_t> waiting;
    std::deque<std::size_t> prefill_queue;
    std::vector<std::size_t> running;

    Seconds clock = 0;
    std::int64_t generated_total = 0;
    /// Streaming histograms: fixed memory at any trace length.
    obs::Histogram ttft, tpot;
    ServingMetrics m;
    double batch_sum = 0;
    std::int64_t decode_steps = 0;
    std::size_t remaining;
    /// Tokens already delivered per request (recompute must not count
    /// twice toward throughput or TTFT).
    std::vector<int> delivered;

    obs::Counter &c_steps;
    obs::Counter &c_prefill_tok;
    obs::Counter &c_decode_tok;
    obs::Counter &c_preempt;
    obs::Counter &c_recomputed;
    obs::Counter &c_kv_in_use;
    obs::Profiler &profiler;

    /// Flow tracing is skipped under an active capture (sweep worker):
    /// span order and lane cursors would depend on thread interleaving.
    bool flow_trace;
    std::vector<int> slot_of;
    std::vector<Seconds> phase_start;
    std::vector<int> episodes;
    std::set<int> free_slots;

    static constexpr int kLaneQueue = 31; ///< after attrib lanes (6..)
    static constexpr int kLaneSlot0 = 32;

    /// Windowed sampler, created only when Timeline::enabled(); null
    /// keeps every hook above down to a single branch.
    std::unique_ptr<obs::TimelineRecorder> tl;
    /// Bytes per KV block (layout-derived), for KV-occupancy gauges.
    double kv_block_bytes = 0;
    /// @name Gauge ids (dense, from TimelineRecorder::gaugeId).
    /// @{
    int g_queue = -1;       ///< queue_depth: arrived-waiting + prefill queue.
    int g_running = -1;     ///< running: decode batch size at the boundary.
    int g_kv_bytes = -1;    ///< kv_bytes_in_use at the boundary.
    int g_kv_hw = -1;       ///< kv_high_water_bytes within the window.
    int g_preempt = -1;     ///< preemptions within the window.
    int g_prefill_tok = -1; ///< prefill_tokens scheduled within the window.
    int g_decode_tok = -1;  ///< decode_tokens scheduled within the window.
    int g_goodput = -1;     ///< goodput_tokens_per_sec over the window.
    int g_ttft_p99 = -1;    ///< ttft_p99_seconds of the window's samples.
    int g_tpot_p99 = -1;    ///< tpot_p99_seconds of the window's samples.
    int g_mme_util = -1;    ///< mme_util: matrix busy / window length.
    int g_tpc_util = -1;    ///< tpc_util: vector busy / window length.
    int g_hbm_gbps = -1;    ///< hbm_gbps: HBM traffic / window length.
    /// @}
    /// @name Per-window accumulators and boundary snapshots.
    /// @{
    double w_mme = 0, w_tpc = 0, w_hbm = 0;
    std::int64_t w_goodput_base = 0;
    /// Snapshots at the previous boundary; diffed (Histogram::diff)
    /// for windowed percentiles.
    obs::Histogram ttft_prev, tpot_prev;
    /// @}
};

} // namespace vespera::serve

#endif // VESPERA_SERVE_ENGINE_RUN_H
