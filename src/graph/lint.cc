#include "graph/lint.h"

#include <cstdio>
#include <string>

#include "hw/mme.h"
#include "obs/counters.h"

namespace vespera::graph {

namespace {

bool
isVectorOp(const Node &n)
{
    return n.kind == OpKind::Elementwise ||
           n.kind == OpKind::Normalization;
}

/**
 * Mirror of Compiler::fuseElementwise's candidate test: an elementwise
 * producer with a single vector-op consumer of the same element count
 * would be folded away, saving the intermediate's HBM write + read.
 */
void
findUnfusedElementwise(const Graph &graph,
                       std::vector<analysis::Diagnostic> &out)
{
    for (const Node &producer : graph.nodes()) {
        if (producer.fusedAway ||
            producer.kind != OpKind::Elementwise) {
            continue;
        }
        const std::vector<int> consumers =
            graph.consumers(producer.id);
        if (consumers.size() != 1)
            continue;
        const Node &consumer = graph.node(consumers.front());
        if (!isVectorOp(consumer) ||
            consumer.output.elements() != producer.output.elements()) {
            continue;
        }
        const Bytes intermediate = producer.output.bytes();
        analysis::Diagnostic d;
        d.rule = analysis::rules::unfusedElementwise;
        d.severity = analysis::Severity::Warning;
        d.kernel = producer.name;
        d.instrIndex = producer.id;
        d.wastedBytes = 2 * intermediate;
        d.message = "elementwise op feeds only '" + consumer.name +
                    "'; the fusion pass would fold them into one TPC "
                    "kernel and keep the intermediate out of HBM";
        out.push_back(std::move(d));
    }
}

/**
 * Consecutive live GEMMs whose best MME geometries differ force the
 * graph compiler to reconfigure the MAC array between them
 * (Figure 7(a)); frequent switches indicate shape churn worth
 * normalizing at the model level.
 */
void
findGeometryThrash(const Graph &graph,
                   std::vector<analysis::Diagnostic> &out)
{
    static const hw::MmeModel model;
    std::string prev;
    int prev_id = -1;
    std::string prev_name;
    int gemms = 0;
    int switches = 0;
    int first_switch_id = -1;
    std::string example;
    for (const Node &n : graph.nodes()) {
        if (n.fusedAway || n.kind != OpKind::MatMul)
            continue;
        gemms++;
        const hw::MmeGeometry g =
            model.selectGeometry(n.gemm, n.output.dt);
        char label[64];
        std::snprintf(label, sizeof(label), "%dx(%dx%d)", g.count,
                      g.height, g.width);
        if (!prev.empty() && prev != label) {
            switches++;
            if (first_switch_id < 0) {
                first_switch_id = n.id;
                example = "'" + prev_name + "' (" + prev + ") -> '" +
                          n.name + "' (" + label + ")";
            }
        }
        prev = label;
        prev_id = n.id;
        prev_name = n.name;
    }
    (void)prev_id;
    if (switches == 0)
        return;
    analysis::Diagnostic d;
    d.rule = analysis::rules::mmeGeometryThrash;
    // Occasional reconfiguration is normal (prefill vs decode shapes);
    // switching on most GEMMs means the array never settles.
    d.severity = 2 * switches > gemms ? analysis::Severity::Warning
                                      : analysis::Severity::Info;
    d.instrIndex = first_switch_id;
    char msg[256];
    std::snprintf(msg, sizeof(msg),
                  "%d of %d consecutive GEMM transitions reconfigure "
                  "the MME geometry (first: %s)",
                  switches, gemms, example.c_str());
    d.message = msg;
    out.push_back(std::move(d));
}

/** Vector ops consuming a GEMM without the pipelining annotation. */
void
findUnpipelinedConsumers(const Graph &graph,
                         std::vector<analysis::Diagnostic> &out)
{
    for (const Node &n : graph.nodes()) {
        if (n.fusedAway || !isVectorOp(n) || n.pipelinedWithProducer)
            continue;
        for (int in : n.inputs) {
            const Node &p = graph.node(in);
            if (p.fusedAway || p.kind != OpKind::MatMul)
                continue;
            analysis::Diagnostic d;
            d.rule = analysis::rules::unpipelinedConsumer;
            d.severity = analysis::Severity::Info;
            d.kernel = n.name;
            d.instrIndex = n.id;
            d.message = "consumes GEMM '" + p.name +
                        "' without MME-TPC pipelining; the compiler "
                        "pass would overlap the two engines";
            out.push_back(std::move(d));
            break;
        }
    }
}

} // namespace

std::vector<analysis::Diagnostic>
lintGraph(const Graph &graph)
{
    std::vector<analysis::Diagnostic> out;
    findUnfusedElementwise(graph, out);
    findGeometryThrash(graph, out);
    findUnpipelinedConsumers(graph, out);

    obs::CounterRegistry &reg = obs::CounterRegistry::instance();
    reg.counter("analysis.graphs").add(1.0);
    for (const analysis::Diagnostic &d : out)
        reg.counter(std::string("analysis.diag.") + d.rule).add(1.0);
    return out;
}

} // namespace vespera::graph
