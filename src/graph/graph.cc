#include "graph/graph.h"

#include "common/logging.h"
#include "obs/selfprof.h"

namespace vespera::graph {

int
Graph::push(Node n)
{
    n.id = static_cast<int>(nodes_.size());
    for (int in : n.inputs) {
        vassert(in >= 0 && in < n.id, "node %s has bad input %d",
                n.name.c_str(), in);
    }
    // Step-graph growth is rebuilt per engine step, so it shows up in
    // the self-profile's allocation columns when --selfprof is on.
    if (obs::SelfProf::instance().enabled()) {
        const std::size_t cap = nodes_.capacity();
        nodes_.push_back(std::move(n));
        obs::selfRecordGrowth(nodes_, cap);
    } else {
        nodes_.push_back(std::move(n));
    }
    return nodes_.back().id;
}

const Node &
Graph::node(int id) const
{
    vassert(id >= 0 && id < static_cast<int>(nodes_.size()),
            "bad node id %d", id);
    return nodes_[static_cast<std::size_t>(id)];
}

int
Graph::input(TensorDesc desc, std::string name)
{
    Node n;
    n.kind = OpKind::Input;
    n.name = std::move(name);
    n.output = std::move(desc);
    return push(std::move(n));
}

int
Graph::matmul(int a, int b, std::string name)
{
    const TensorDesc &da = node(a).output;
    const TensorDesc &db = node(b).output;
    vassert(da.shape.size() >= 2 && db.shape.size() >= 2,
            "matmul inputs must be at least rank-2");
    const std::size_t ra = da.shape.size(), rb = db.shape.size();
    const std::int64_t m = da.shape[ra - 2];
    const std::int64_t k = da.shape[ra - 1];
    const std::int64_t kb = db.shape[rb - 2];
    const std::int64_t nn = db.shape[rb - 1];
    vassert(k == kb, "matmul %s: K mismatch %lld vs %lld", name.c_str(),
            static_cast<long long>(k), static_cast<long long>(kb));

    std::int64_t batch = 1;
    std::vector<std::int64_t> out_shape;
    for (std::size_t i = 0; i + 2 < ra; i++) {
        batch *= da.shape[i];
        out_shape.push_back(da.shape[i]);
    }
    if (rb > 2) {
        std::int64_t bb = 1;
        for (std::size_t i = 0; i + 2 < rb; i++)
            bb *= db.shape[i];
        vassert(bb == batch || bb == 1,
                "matmul %s: batch mismatch", name.c_str());
    }
    out_shape.push_back(m);
    out_shape.push_back(nn);

    Node n;
    n.kind = OpKind::MatMul;
    n.name = std::move(name);
    n.inputs = {a, b};
    n.output = {std::move(out_shape), da.dt};
    n.gemm = {m, k, nn, batch};
    return push(std::move(n));
}

int
Graph::elementwise(std::vector<int> ins, double flops_per_element,
                   bool uses_fma, std::string name)
{
    vassert(!ins.empty(), "elementwise needs inputs");
    TensorDesc out = node(ins.front()).output;
    return elementwiseTo(std::move(ins), std::move(out),
                         flops_per_element, uses_fma, std::move(name));
}

int
Graph::elementwiseTo(std::vector<int> ins, TensorDesc out,
                     double flops_per_element, bool uses_fma,
                     std::string name)
{
    vassert(!ins.empty(), "elementwise needs inputs");
    Node n;
    n.kind = OpKind::Elementwise;
    n.name = std::move(name);
    n.output = std::move(out);
    n.flopsPerElement = flops_per_element;
    n.usesFma = uses_fma;
    Bytes traffic = n.output.bytes(); // Output write.
    for (int in : ins)
        traffic += node(in).output.bytes();
    n.trafficBytes = traffic;
    n.inputs = std::move(ins);
    return push(std::move(n));
}

int
Graph::normalization(int in, int passes, double flops_per_element,
                     std::string name)
{
    vassert(passes >= 1, "normalization needs at least one pass");
    Node n;
    n.kind = OpKind::Normalization;
    n.name = std::move(name);
    n.inputs = {in};
    n.output = node(in).output;
    n.flopsPerElement = flops_per_element;
    n.usesFma = false;
    n.trafficBytes = static_cast<Bytes>(passes) * 2 * n.output.bytes();
    return push(std::move(n));
}

int
Graph::allReduce(int in, int devices, std::string name)
{
    vassert(devices >= 2, "allReduce needs >= 2 devices");
    Node n;
    n.kind = OpKind::AllReduce;
    n.name = std::move(name);
    n.inputs = {in};
    n.output = node(in).output;
    n.commDevices = devices;
    return push(std::move(n));
}

int
Graph::custom(std::vector<int> ins, TensorDesc out,
              std::function<OpCost(DeviceKind)> cost, std::string name,
              std::string cost_signature)
{
    vassert(cost, "custom node needs a cost callback");
    Node n;
    n.kind = OpKind::Custom;
    n.name = std::move(name);
    n.inputs = std::move(ins);
    n.output = std::move(out);
    n.customCost = std::move(cost);
    n.costSignature = std::move(cost_signature);
    return push(std::move(n));
}

std::vector<int>
Graph::consumers(int id) const
{
    std::vector<int> out;
    for (const Node &n : nodes_) {
        if (n.fusedAway)
            continue;
        for (int in : n.inputs) {
            if (in == id) {
                out.push_back(n.id);
                break;
            }
        }
    }
    return out;
}

int
Graph::validate() const
{
    int live = 0;
    for (const Node &n : nodes_) {
        if (n.fusedAway) {
            // Fused nodes must have been absorbed by a live consumer.
            vassert(n.kind == OpKind::Elementwise,
                    "only element-wise nodes may be fused away (%s)",
                    n.name.c_str());
            continue;
        }
        live++;
        for (int in : n.inputs) {
            vassert(in >= 0 && in < n.id,
                    "node %s: input %d is not an earlier node",
                    n.name.c_str(), in);
            vassert(!nodes_[static_cast<std::size_t>(in)].fusedAway,
                    "node %s reads fused-away node %s", n.name.c_str(),
                    nodes_[static_cast<std::size_t>(in)].name.c_str());
        }
        switch (n.kind) {
          case OpKind::MatMul:
            vassert(n.gemm.m > 0 && n.gemm.k > 0 && n.gemm.n > 0 &&
                        n.gemm.batch > 0,
                    "node %s: degenerate GEMM", n.name.c_str());
            break;
          case OpKind::Elementwise:
          case OpKind::Normalization:
            vassert(n.trafficBytes >= n.output.bytes(),
                    "node %s: traffic below output size",
                    n.name.c_str());
            break;
          case OpKind::AllReduce:
            vassert(n.commDevices >= 2, "node %s: bad device count",
                    n.name.c_str());
            break;
          case OpKind::Custom:
            vassert(static_cast<bool>(n.customCost),
                    "node %s: missing cost callback", n.name.c_str());
            break;
          case OpKind::Input:
            vassert(n.inputs.empty(), "node %s: input with inputs",
                    n.name.c_str());
            break;
        }
        vassert(n.output.elements() > 0, "node %s: empty output",
                n.name.c_str());
    }
    return live;
}

std::string
Graph::toDot() const
{
    std::string dot = "digraph vespera {\n  rankdir=LR;\n";
    auto kind_attr = [](OpKind k) {
        switch (k) {
          case OpKind::Input:
            return "shape=box,style=dotted";
          case OpKind::MatMul:
            return "shape=box,style=filled,fillcolor=lightblue";
          case OpKind::Elementwise:
            return "shape=ellipse";
          case OpKind::Normalization:
            return "shape=ellipse,style=dashed";
          case OpKind::AllReduce:
            return "shape=diamond";
          case OpKind::Custom:
            return "shape=hexagon";
        }
        return "";
    };
    for (const Node &n : nodes_) {
        if (n.fusedAway)
            continue;
        dot += strfmt("  n%d [label=\"%s\",%s];\n", n.id,
                      n.name.c_str(), kind_attr(n.kind));
        for (int in : n.inputs)
            dot += strfmt("  n%d -> n%d;\n", in, n.id);
    }
    dot += "}\n";
    return dot;
}

} // namespace vespera::graph
