/**
 * @file
 * Times a compiled graph against one device's engine models and
 * produces the activity profile the power model consumes.
 */

#ifndef VESPERA_GRAPH_EXECUTOR_H
#define VESPERA_GRAPH_EXECUTOR_H

#include <vector>

#include "coll/collective.h"
#include "graph/graph.h"
#include "hw/power.h"

namespace vespera::graph {

/**
 * One operation's placement on the execution timeline — the
 * information the Intel Gaudi Profiler exposes and the paper used to
 * reverse-engineer the graph compiler (Section 3.2). Pipelined vector
 * ops appear overlapping their producer GEMM.
 */
struct TimelineEntry
{
    int nodeId = -1;
    std::string name;
    OpKind kind = OpKind::Input;
    Seconds start = 0;
    Seconds duration = 0;
};

/** Aggregate outcome of executing a graph once. */
struct ExecutionReport
{
    Seconds time = 0;
    Flops flops = 0;
    Bytes hbmBytes = 0;
    Seconds matrixBusy = 0;
    Seconds vectorBusy = 0;
    Seconds commTime = 0;
    /// Time hidden by MME-TPC pipelining.
    Seconds overlapSaved = 0;
    /// Matrix utilization weighted by matrix busy time.
    double avgMatrixUtil = 0;
    /// Powered-MAC fraction weighted by matrix busy time.
    double avgMacFraction = 1;
    std::vector<OpCost> perNode;
    /// Profiler-style timeline (live nodes only, in issue order).
    std::vector<TimelineEntry> timeline;

    /** Engine activity profile for hw::PowerModel. */
    hw::ActivityProfile activity(const hw::DeviceSpec &spec) const;
};

/**
 * Accumulate `part`, scaled `scale` times, into `total` (used by model
 * simulators that execute one representative layer and multiply).
 * Utilization averages stay matrix-busy-time weighted.
 */
void accumulate(ExecutionReport &total, const ExecutionReport &part,
                double scale = 1.0);

/** Per-device graph executor. */
class Executor
{
  public:
    explicit Executor(DeviceKind device);

    ExecutionReport run(const Graph &graph) const;

    DeviceKind device() const { return device_; }

  private:
    OpCost costNode(const Node &node) const;

    DeviceKind device_;
    const hw::DeviceSpec &spec_;
    coll::CollectiveModel collective_;
};

} // namespace vespera::graph

#endif // VESPERA_GRAPH_EXECUTOR_H
