/**
 * @file
 * Replay cache: memoized kernel-cost evaluations that reproduce their
 * side effects bit-for-bit (ROADMAP item 2).
 *
 * The serving sweeps evaluate the same kernels at the same shapes
 * thousands of times: every decode step at a given (batch, context
 * bucket) costs the same GEMMs, vector ops and attention kernel
 * through the same analytic models. Those evaluations are pure
 * functions of (kernel, shape, device, granularity) — but they are
 * *observed* functions: each one charges obs counters, settles an
 * attribution breakdown, and may flip order-dependent telemetry like
 * `mme.reconfigs`. A value-only memo would silently change every
 * metrics document.
 *
 * The replay cache therefore memoizes the *pair* (value, side-effect
 * log). A miss runs the evaluation under an obs::ScopedCapture and
 * stores the value together with a **pristine copy** of the captured
 * log; the original log is then replayed so the miss behaves exactly
 * like an uncached evaluation. A hit replays a fresh copy of the
 * stored log — fresh, because Deferred ops (obs/capture.h) are
 * mutable closures: `mme.reconfigs`' closure settles its captured
 * breakdown on first invocation, so a copy taken *before* any
 * invocation is the only safe thing to re-run. Replay goes through
 * the public counter API, so a hit inside an enclosing capture (a
 * pool worker's prefetch window) defers outward exactly like the
 * fresh evaluation would have. Net effect: **cache on and cache off
 * produce bitwise-identical counters, histograms and attribution at
 * any thread count** — the property tests/property/prop_replay_cache.cc
 * pins down.
 *
 * Two instances cover the two granularities:
 *  - the **node cache** (`replay.node.*`) memoizes one graph node's
 *    OpCost in graph::Executor::run — keyed by the node's full cost
 *    payload + device, so a new context bucket re-evaluates only the
 *    attention node while the dozen shape-invariant GEMMs of the
 *    layer hit;
 *  - the **step cache** (`replay.step.*`) memoizes a whole model
 *    step's ExecutionReport in models::LlamaModel::stepReport —
 *    skipping graph construction and compilation entirely on repeat
 *    steps (the fig12 sweep point's ≥3× wall-time gate rides on
 *    this).
 *
 * Caches disable themselves while the obs::Profiler is tracing:
 * spans/timeline samples are not captured ops, so a replayed hit
 * could not reproduce them.
 *
 * Observability: hits/misses/inserts/evictions are `replay.<ns>.*`
 * counters updated under obs::CaptureBypass (true process-wide
 * counts) and excluded from the deterministic metrics document —
 * like `runtime.*`, they legitimately vary with --threads. Keyed
 * hit/miss attribution also lands in the host self-profile
 * (obs::SelfProf::cacheHit/cacheMiss) when --selfprof is on.
 */

#ifndef VESPERA_GRAPH_REPLAY_CACHE_H
#define VESPERA_GRAPH_REPLAY_CACHE_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "graph/executor.h"
#include "graph/graph.h"
#include "obs/capture.h"
#include "obs/counters.h"
#include "obs/profiler.h"
#include "obs/selfprof.h"

namespace vespera::graph {

/**
 * Keyed memo of (value, captured side-effect log) with LRU eviction.
 * Thread-safe; the lock covers only map access, never an evaluation
 * or a replay.
 */
template <typename V>
class ReplayCache
{
  public:
    /** @param ns Stat namespace: counters are `replay.<ns>.*`. */
    ReplayCache(const char *ns, std::size_t capacity)
        : capacity_(capacity),
          hits_(obs::CounterRegistry::instance().counter(
              std::string("replay.") + ns + ".hits")),
          misses_(obs::CounterRegistry::instance().counter(
              std::string("replay.") + ns + ".misses")),
          inserts_(obs::CounterRegistry::instance().counter(
              std::string("replay.") + ns + ".inserts")),
          evictions_(obs::CounterRegistry::instance().counter(
              std::string("replay.") + ns + ".evictions"))
    {
    }

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    void
    setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /** Drop all entries (stat counters are left alone). */
    void
    clear()
    {
        std::lock_guard<std::mutex> lock(mu_);
        map_.clear();
    }

    std::size_t
    entries() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return map_.size();
    }

    void
    setCapacity(std::size_t capacity)
    {
        std::lock_guard<std::mutex> lock(mu_);
        capacity_ = capacity;
        while (map_.size() > capacity_)
            evictLruLocked();
    }

    std::size_t
    capacity() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return capacity_;
    }

    /**
     * Memoized evaluation. Hit: replay a pristine copy of the stored
     * log and return the stored value — observationally identical to
     * running `fn`. Miss: run `fn` under a capture, store (value,
     * pristine log copy), then replay the original so this call's
     * effects land exactly once. Bypasses itself (plain `fn()`) while
     * disabled or while the profiler is tracing.
     */
    template <typename Fn>
    V
    runMemoized(const std::string &key, Fn &&fn)
    {
        if (!enabled() || obs::Profiler::instance().enabled())
            return fn();

        {
            std::unique_lock<std::mutex> lock(mu_);
            auto it = map_.find(key);
            if (it != map_.end()) {
                it->second.lastUse = ++useTick_;
                V value = it->second.value;
                obs::SideEffectLog log = it->second.log;
                lock.unlock();
                {
                    obs::CaptureBypass bypass;
                    hits_.add();
                }
                if (obs::SelfProf::instance().enabled())
                    obs::SelfProf::instance().cacheHit(key);
                log.replay();
                return value;
            }
        }

        {
            obs::CaptureBypass bypass;
            misses_.add();
        }
        if (obs::SelfProf::instance().enabled())
            obs::SelfProf::instance().cacheMiss(key);

        obs::SideEffectLog log;
        V value;
        {
            obs::ScopedCapture capture(log);
            value = fn();
        }
        {
            std::unique_lock<std::mutex> lock(mu_);
            auto [it, inserted] = map_.try_emplace(key);
            if (inserted) {
                // Store the value and a pristine copy of the log NOW —
                // replaying first would consume the log and trip the
                // Deferred closures' one-shot state.
                it->second.value = value;
                it->second.log = log;
                it->second.lastUse = ++useTick_;
                {
                    obs::CaptureBypass bypass;
                    inserts_.add();
                }
                if (map_.size() > capacity_)
                    evictLruLocked();
            } else {
                // Concurrent filler won the race; keep its entry.
                it->second.lastUse = ++useTick_;
            }
        }
        // Apply this evaluation's own effects in the caller's context
        // (or append them to its enclosing capture).
        log.replay();
        return value;
    }

  private:
    struct Entry
    {
        V value{};
        obs::SideEffectLog log;
        std::uint64_t lastUse = 0;
    };

    void
    evictLruLocked()
    {
        auto victim = map_.begin();
        for (auto it = map_.begin(); it != map_.end(); ++it) {
            if (it->second.lastUse < victim->second.lastUse)
                victim = it;
        }
        if (victim != map_.end()) {
            map_.erase(victim);
            obs::CaptureBypass bypass;
            evictions_.add();
        }
    }

    mutable std::mutex mu_;
    std::unordered_map<std::string, Entry> map_;
    std::uint64_t useTick_ = 0;
    std::size_t capacity_;
    std::atomic<bool> enabled_{true};
    obs::Counter &hits_;
    obs::Counter &misses_;
    obs::Counter &inserts_;
    obs::Counter &evictions_;
};

/** Process-wide node-granularity cache (graph::Executor). */
ReplayCache<OpCost> &nodeReplayCache();

/** Process-wide step-granularity cache (models::LlamaModel). */
ReplayCache<ExecutionReport> &stepReplayCache();

/**
 * Cache key for one graph node on one device: the node's complete
 * cost payload, so two nodes share a key only if costNode() is the
 * same pure function for both. Returns "" for nodes that cannot be
 * keyed — Custom nodes without a costSignature — which the executor
 * then evaluates uncached.
 */
std::string nodeReplayKey(const Node &node, DeviceKind device);

/** RAII: disable a cache for a scope (benchmark baselines, tests). */
class ReplayCacheDisable
{
  public:
    template <typename V>
    explicit ReplayCacheDisable(ReplayCache<V> &cache)
        : restore_([&cache, was = cache.enabled()] { cache.setEnabled(was); })
    {
        cache.setEnabled(false);
    }

    ~ReplayCacheDisable() { restore_(); }

    ReplayCacheDisable(const ReplayCacheDisable &) = delete;
    ReplayCacheDisable &operator=(const ReplayCacheDisable &) = delete;

  private:
    std::function<void()> restore_;
};

} // namespace vespera::graph

#endif // VESPERA_GRAPH_REPLAY_CACHE_H
