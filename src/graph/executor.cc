#include "graph/executor.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "graph/replay_cache.h"
#include "kern/gemm.h"
#include "kern/vector_op.h"
#include "obs/counters.h"
#include "obs/profiler.h"

namespace vespera::graph {

namespace {

const char *
opKindSlug(OpKind kind)
{
    switch (kind) {
      case OpKind::Input: return "input";
      case OpKind::MatMul: return "matmul";
      case OpKind::Elementwise: return "elementwise";
      case OpKind::Normalization: return "normalization";
      case OpKind::AllReduce: return "allreduce";
      case OpKind::Custom: return "custom";
    }
    return "unknown";
}

} // namespace

hw::ActivityProfile
ExecutionReport::activity(const hw::DeviceSpec &spec) const
{
    hw::ActivityProfile a;
    if (time <= 0)
        return a;
    a.matrixActivity =
        std::min(1.0, matrixBusy / time) * std::min(1.0, avgMatrixUtil);
    a.matrixMacFraction = avgMacFraction;
    a.vectorActivity = std::min(1.0, vectorBusy / time);
    a.hbmActivity = std::min(
        1.0, static_cast<double>(hbmBytes) / (time * spec.hbmBandwidth));
    return a;
}

void
accumulate(ExecutionReport &total, const ExecutionReport &part,
           double scale)
{
    // Re-derive the weighted utilization sums before merging.
    const double w_total = total.matrixBusy;
    const double w_part = part.matrixBusy * scale;
    const double util_sum =
        total.avgMatrixUtil * w_total + part.avgMatrixUtil * w_part;
    const double mac_sum =
        total.avgMacFraction * w_total + part.avgMacFraction * w_part;

    // Timeline: keep one representative copy of the part (not `scale`
    // replicas), offset to the accumulation point — enough for
    // profiling a repeated layer without exploding the trace.
    for (const TimelineEntry &e : part.timeline) {
        TimelineEntry shifted = e;
        shifted.start += total.time;
        total.timeline.push_back(std::move(shifted));
    }

    total.time += part.time * scale;
    total.flops += part.flops * scale;
    total.hbmBytes += static_cast<Bytes>(
        static_cast<double>(part.hbmBytes) * scale);
    total.matrixBusy += part.matrixBusy * scale;
    total.vectorBusy += part.vectorBusy * scale;
    total.commTime += part.commTime * scale;
    total.overlapSaved += part.overlapSaved * scale;
    if (w_total + w_part > 0) {
        total.avgMatrixUtil = util_sum / (w_total + w_part);
        total.avgMacFraction = mac_sum / (w_total + w_part);
    }
}

Executor::Executor(DeviceKind device)
    : device_(device), spec_(hw::deviceSpec(device)),
      collective_(device == DeviceKind::Gaudi2
                      ? coll::CollectiveModel::hcclOnGaudi2()
                      : coll::CollectiveModel::ncclOnDgxA100())
{
}

OpCost
Executor::costNode(const Node &node) const
{
    OpCost c;
    switch (node.kind) {
      case OpKind::Input:
        return c;
      case OpKind::MatMul: {
        hw::GemmCost g = kern::runGemm(device_, node.gemm,
                                       node.output.dt);
        c.time = g.time;
        c.matrixBusy = std::min(g.computeTime, g.time);
        c.flops = node.gemm.flops();
        c.hbmBytes = node.gemm.idealTraffic(node.output.dt);
        c.matrixUtil = g.utilization;
        c.macFraction = g.activeMacFraction;
        return c;
      }
      case OpKind::Elementwise:
      case OpKind::Normalization: {
        const Flops flops =
            node.flopsPerElement *
            static_cast<double>(node.output.elements());
        auto v = kern::vectorOpCost(spec_, node.trafficBytes, flops,
                                    node.output.dt, node.usesFma);
        c.time = v.time;
        c.vectorBusy = v.time;
        c.flops = flops;
        c.hbmBytes = node.trafficBytes;
        return c;
      }
      case OpKind::AllReduce: {
        auto r = collective_.run(coll::CollectiveOp::AllReduce,
                                 node.output.bytes(), node.commDevices);
        c.time = r.time;
        c.commTime = r.time;
        return c;
      }
      case OpKind::Custom: {
        return node.customCost(device_);
      }
    }
    vpanic("unknown op kind");
}

ExecutionReport
Executor::run(const Graph &graph) const
{
    ExecutionReport report;
    report.perNode.resize(graph.size());

    // Remaining "shadow" of each MatMul node that pipelined consumers
    // can hide under (MME-TPC pipelining; Gaudi only — the compiler
    // pass is a Gaudi graph-compiler feature, but CUDA kernels overlap
    // similarly via streams, so we honour the annotation on both).
    std::map<int, Seconds> shadow;

    double util_weight = 0, util_sum = 0, mac_sum = 0;

    auto &registry = obs::CounterRegistry::instance();
    obs::Profiler &profiler = obs::Profiler::instance();
    const bool sampling = profiler.enabled();

    // Kernel-granularity replay cache: a node's cost is a pure
    // (observed) function of its payload + device, so identical nodes
    // across steps are costed once and their counter/attribution side
    // effects replayed (replay_cache.h). Tracing disables it (spans
    // are not replayable); un-keyable nodes evaluate fresh.
    ReplayCache<OpCost> &cache = nodeReplayCache();
    const bool memoize = cache.enabled() && !sampling;

    for (const Node &node : graph.nodes()) {
        if (node.fusedAway)
            continue;
        OpCost c;
        std::string key;
        if (memoize && !(key = nodeReplayKey(node, device_)).empty())
            c = cache.runMemoized(key, [&] { return costNode(node); });
        else
            c = costNode(node);
        report.perNode[static_cast<std::size_t>(node.id)] = c;

        // Per-OpKind execution-time breakdown (the per-op view the
        // Gaudi profiler timeline aggregates to).
        if (node.kind != OpKind::Input) {
            registry
                .counter(std::string("graph.time.") + opKindSlug(node.kind))
                .add(c.time);
            registry.counter("graph.ops").add();
        }

        Seconds contribution = c.time;
        if (node.pipelinedWithProducer) {
            for (int in : node.inputs) {
                auto it = shadow.find(in);
                if (it == shadow.end())
                    continue;
                // Slicing into S sub-operations exposes one slice of
                // ramp-in: at most (S-1)/S of this op can hide under
                // the producer.
                const int slices = std::max(1, node.pipelineSlices);
                const Seconds hideable =
                    contribution * (slices - 1) / slices;
                const Seconds hidden = std::min(it->second, hideable);
                contribution -= hidden;
                it->second -= hidden;
                report.overlapSaved += hidden;
                break;
            }
        }
        if (node.kind == OpKind::MatMul)
            shadow[node.id] = c.time;

        TimelineEntry entry;
        entry.nodeId = node.id;
        entry.name = node.name;
        entry.kind = node.kind;
        entry.start = report.time - (c.time - contribution);
        entry.duration = c.time;

        // Counter tracks alongside the spans: per-op MME utilization
        // and achieved HBM bandwidth, sampled at the op boundaries so
        // the Perfetto counter plot steps with the timeline.
        if (sampling && c.time > 0) {
            if (node.kind == OpKind::MatMul) {
                profiler.sample("mme.utilization", entry.start,
                                c.matrixUtil * 100.0);
                profiler.sample("mme.utilization",
                                entry.start + entry.duration, 0.0);
            }
            if (c.hbmBytes > 0) {
                profiler.sample("hbm.bandwidth_gbps", entry.start,
                                static_cast<double>(c.hbmBytes) /
                                    c.time / 1e9);
                profiler.sample("hbm.bandwidth_gbps",
                                entry.start + entry.duration, 0.0);
            }
        }
        report.timeline.push_back(std::move(entry));

        report.time += contribution;
        report.flops += c.flops;
        report.hbmBytes += c.hbmBytes;
        report.matrixBusy += c.matrixBusy;
        report.vectorBusy += c.vectorBusy;
        report.commTime += c.commTime;
        if (c.matrixBusy > 0) {
            util_weight += c.matrixBusy;
            util_sum += c.matrixBusy * c.matrixUtil;
            mac_sum += c.matrixBusy * c.macFraction;
        }
    }

    if (util_weight > 0) {
        report.avgMatrixUtil = util_sum / util_weight;
        report.avgMacFraction = mac_sum / util_weight;
    }
    return report;
}

} // namespace vespera::graph
