#include "graph/replay_cache.h"

#include "common/logging.h"

namespace vespera::graph {

ReplayCache<OpCost> &
nodeReplayCache()
{
    static ReplayCache<OpCost> cache("node", 4096);
    return cache;
}

ReplayCache<ExecutionReport> &
stepReplayCache()
{
    static ReplayCache<ExecutionReport> cache("step", 1024);
    return cache;
}

std::string
nodeReplayKey(const Node &node, DeviceKind device)
{
    switch (node.kind) {
      case OpKind::Input:
        // Free; nothing to memoize.
        return "";
      case OpKind::MatMul:
        return strfmt("mm|%s|%lld.%lld.%lld.%lld|%s",
                      deviceName(device),
                      static_cast<long long>(node.gemm.m),
                      static_cast<long long>(node.gemm.k),
                      static_cast<long long>(node.gemm.n),
                      static_cast<long long>(node.gemm.batch),
                      dtypeName(node.output.dt));
      case OpKind::Elementwise:
      case OpKind::Normalization:
        // costNode's vector path is a pure function of flops/element,
        // output element count, traffic, dtype and the FMA flag.
        return strfmt("vec|%s|%a|%d|%llu|%lld|%s",
                      deviceName(device), node.flopsPerElement,
                      node.usesFma ? 1 : 0,
                      static_cast<unsigned long long>(node.trafficBytes),
                      static_cast<long long>(node.output.elements()),
                      dtypeName(node.output.dt));
      case OpKind::AllReduce:
        return strfmt("ar|%s|%llu|%d", deviceName(device),
                      static_cast<unsigned long long>(node.output.bytes()),
                      node.commDevices);
      case OpKind::Custom:
        // Custom nodes carry an opaque cost callback; only the
        // builder knows what it depends on. No signature, no caching.
        if (node.costSignature.empty())
            return "";
        return strfmt("custom|%s|%s", deviceName(device),
                      node.costSignature.c_str());
    }
    return "";
}

} // namespace vespera::graph
