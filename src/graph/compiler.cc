#include "graph/compiler.h"

#include <algorithm>

#include "common/logging.h"

namespace vespera::graph {

Compiler::Compiler(CompilerOptions options)
    : options_(options)
{
}

CompileStats
Compiler::compile(Graph &graph) const
{
    CompileStats stats;
    if (options_.fuseElementwise)
        fuseElementwise(graph, stats);
    if (options_.pipelineMmeTpc)
        pipelineMmeTpc(graph, stats);
    return stats;
}

void
Compiler::fuseElementwise(Graph &graph, CompileStats &stats) const
{
    // Forward pass: fold each element-wise node into its sole
    // element-wise consumer when shapes match. The intermediate tensor
    // never touches HBM (one write + one read saved).
    auto is_vector_op = [](const Node &n) {
        return n.kind == OpKind::Elementwise ||
               n.kind == OpKind::Normalization;
    };

    for (Node &producer : graph.nodes()) {
        if (producer.fusedAway || producer.kind != OpKind::Elementwise)
            continue;
        auto consumers = graph.consumers(producer.id);
        if (consumers.size() != 1)
            continue;
        Node &consumer =
            graph.nodes()[static_cast<std::size_t>(consumers.front())];
        if (!is_vector_op(consumer) ||
            consumer.output.elements() != producer.output.elements()) {
            continue;
        }

        const Bytes intermediate = producer.output.bytes();
        // The consumer now reads the producer's external inputs
        // directly and keeps the intermediate in registers/SRAM.
        consumer.trafficBytes = consumer.trafficBytes +
                                producer.trafficBytes -
                                2 * intermediate;
        consumer.flopsPerElement += producer.flopsPerElement;
        consumer.usesFma = consumer.usesFma || producer.usesFma;
        consumer.numFusedOps += producer.numFusedOps;

        // Rewire: replace the producer in the consumer's input list
        // with the producer's own inputs.
        std::vector<int> rewired;
        for (int in : consumer.inputs) {
            if (in == producer.id) {
                for (int pin : producer.inputs)
                    rewired.push_back(pin);
            } else {
                rewired.push_back(in);
            }
        }
        consumer.inputs = std::move(rewired);

        producer.fusedAway = true;
        stats.fusedOps++;
        stats.trafficSaved += 2 * intermediate;
    }
}

void
Compiler::pipelineMmeTpc(Graph &graph, CompileStats &stats) const
{
    // Mark vector ops that directly consume a MatMul: the executor will
    // overlap their execution with the producing GEMM (the compiler
    // slices both into independent sub-operations; Section 2.2).
    for (Node &n : graph.nodes()) {
        if (n.fusedAway)
            continue;
        if (n.kind != OpKind::Elementwise &&
            n.kind != OpKind::Normalization) {
            continue;
        }
        for (int in : n.inputs) {
            const Node &p = graph.node(in);
            if (!p.fusedAway && p.kind == OpKind::MatMul) {
                n.pipelinedWithProducer = true;
                stats.pipelinedPairs++;
                break;
            }
        }
    }
}

} // namespace vespera::graph
