/**
 * @file
 * Model of the Gaudi graph compiler's optimization passes (Section 2.2):
 *
 *  1. Element-wise operation fusion — chains of element-wise /
 *     normalization ops are JIT-fused into a single TPC kernel,
 *     eliminating the intermediate tensors' HBM round trips.
 *  2. MME-TPC operator pipelining — a vector op consuming an MME op is
 *     split into sub-operations executed concurrently with the GEMM,
 *     hiding the shorter of the two latencies.
 *
 * (The third pass the paper discusses, MME geometry selection, lives in
 * hw::MmeModel::selectGeometry and runs at execution time.)
 *
 * The paper emphasizes that users cannot control these passes; the
 * options struct here exists for the ablation benchmarks, mirroring
 * what the paper measures indirectly through vLLM_base vs vLLM_opt.
 */

#ifndef VESPERA_GRAPH_COMPILER_H
#define VESPERA_GRAPH_COMPILER_H

#include "graph/graph.h"

namespace vespera::graph {

/** Pass toggles (for ablations; the real compiler is a black box). */
struct CompilerOptions
{
    bool fuseElementwise = true;
    bool pipelineMmeTpc = true;
};

/** Compilation statistics for tests and reporting. */
struct CompileStats
{
    int fusedOps = 0;        ///< Element-wise nodes folded away.
    Bytes trafficSaved = 0;  ///< HBM bytes eliminated by fusion.
    int pipelinedPairs = 0;  ///< MME->TPC producer/consumer pairs.
};

/** The graph compiler. */
class Compiler
{
  public:
    explicit Compiler(CompilerOptions options = {});

    /** Run all enabled passes in place; returns statistics. */
    CompileStats compile(Graph &graph) const;

  private:
    void fuseElementwise(Graph &graph, CompileStats &stats) const;
    void pipelineMmeTpc(Graph &graph, CompileStats &stats) const;

    CompilerOptions options_;
};

} // namespace vespera::graph

#endif // VESPERA_GRAPH_COMPILER_H
