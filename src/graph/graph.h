/**
 * @file
 * Tensor-graph intermediate representation.
 *
 * AI models (the paper's DLRM and Llama configurations) are lowered to
 * this IR; the graph::Compiler applies the Gaudi graph-compiler passes
 * the paper describes (element-wise fusion, MME geometry selection,
 * MME-TPC operator pipelining) and the graph::Executor times the result
 * against a device's engine models.
 */

#ifndef VESPERA_GRAPH_GRAPH_H
#define VESPERA_GRAPH_GRAPH_H

#include <functional>
#include <string>
#include <vector>

#include "hw/gemm_cost.h"
#include "mem/arena.h"

namespace vespera::graph {

/** Logical tensor shape + type. */
struct TensorDesc
{
    std::vector<std::int64_t> shape;
    DataType dt = DataType::BF16;

    std::int64_t
    elements() const
    {
        std::int64_t n = 1;
        for (auto d : shape)
            n *= d;
        return n;
    }

    Bytes bytes() const { return elements() * dtypeSize(dt); }
};

/** Node kinds. */
enum class OpKind {
    Input,         ///< Graph input; free.
    MatMul,        ///< Matrix engine (MME / Tensor Core).
    Elementwise,   ///< Vector engines (TPC / SIMD cores).
    Normalization, ///< Softmax / LayerNorm-style multi-pass vector op.
    AllReduce,     ///< Tensor-parallel collective.
    Custom,        ///< Externally-costed kernel (e.g. PagedAttention).
};

/** Per-node cost, as computed by the Executor. */
struct OpCost
{
    Seconds time = 0;        ///< Wall time this node contributes.
    Seconds matrixBusy = 0;  ///< Matrix-engine busy time.
    Seconds vectorBusy = 0;  ///< Vector-engine busy time.
    Seconds commTime = 0;    ///< Collective time.
    Flops flops = 0;
    Bytes hbmBytes = 0;
    double matrixUtil = 0;   ///< Utilization while the matrix engine ran.
    double macFraction = 1;  ///< Powered MAC fraction while it ran.
};

/** One IR node. */
struct Node
{
    int id = -1;
    OpKind kind = OpKind::Input;
    std::string name;
    std::vector<int> inputs;
    TensorDesc output;

    /// MatMul payload.
    hw::GemmShape gemm;

    /// Elementwise / Normalization payload.
    double flopsPerElement = 1;
    bool usesFma = false;
    Bytes trafficBytes = 0;
    int numFusedOps = 1;

    /// AllReduce payload.
    int commDevices = 1;

    /// Custom payload.
    std::function<OpCost(DeviceKind)> customCost;
    /// Replay-cache identity for the custom cost: everything the
    /// callback's result depends on, rendered to a stable string by
    /// the builder. Empty (the default) means "not memoizable" — the
    /// executor then always evaluates the callback fresh.
    std::string costSignature;

    /// Compiler annotations.
    bool fusedAway = false;
    bool pipelinedWithProducer = false;
    /// Sub-operation slices used for MME-TPC pipelining: the producer
    /// GEMM and this op are cut into this many independent pieces, so
    /// one slice of ramp-in/ramp-out is exposed (Section 2.2's
    /// "smaller, independent sub-operations").
    int pipelineSlices = 8;
};

/** Builder + container for a dataflow graph. */
class Graph
{
  public:
    /** Declare a graph input. */
    int input(TensorDesc desc, std::string name = "input");

    /**
     * MatMul with shape inference: a is [batch..., M, K], b is
     * [batch..., K, N] or [K, N] (broadcast). Output [batch..., M, N].
     */
    int matmul(int a, int b, std::string name = "matmul");

    /**
     * Element-wise op over the first input's shape. Traffic = all
     * inputs read once + output written once.
     */
    int elementwise(std::vector<int> ins, double flops_per_element,
                    bool uses_fma, std::string name = "eltwise");

    /**
     * Element-wise op with an explicit output shape (e.g. SwiGLU's
     * gate*up, which halves the fused gate_up projection's width).
     * flops are counted per *output* element.
     */
    int elementwiseTo(std::vector<int> ins, TensorDesc out,
                      double flops_per_element, bool uses_fma,
                      std::string name = "eltwise");

    /**
     * Softmax/LayerNorm-style op: `passes` read-write sweeps over the
     * input.
     */
    int normalization(int in, int passes, double flops_per_element,
                      std::string name = "norm");

    /** Tensor-parallel all-reduce of the input across `devices`. */
    int allReduce(int in, int devices, std::string name = "allreduce");

    /**
     * Custom node with an external cost callback. `cost_signature`
     * (optional) names everything the callback depends on so the
     * executor's replay cache may memoize it; leave empty to opt out.
     */
    int custom(std::vector<int> ins, TensorDesc out,
               std::function<OpCost(DeviceKind)> cost,
               std::string name = "custom",
               std::string cost_signature = "");

    /// Node storage: arena-backed when the graph is built inside a
    /// mem::ScopedArena (the per-step hot path), heap otherwise.
    using NodeVec = std::vector<Node, mem::ArenaAllocator<Node>>;

    const NodeVec &nodes() const { return nodes_; }
    NodeVec &nodes() { return nodes_; }
    const Node &node(int id) const;
    std::size_t size() const { return nodes_.size(); }

    /** Ids of nodes consuming `id`'s output (fused-away excluded). */
    std::vector<int> consumers(int id) const;

    /**
     * Structural validation: every input id resolves to an earlier,
     * non-fused node; shapes of element-wise inputs are consistent.
     * Panics with a diagnostic on violation; returns the number of
     * live (non-fused) nodes.
     */
    int validate() const;

    /** Graphviz DOT dump for debugging/visualization. */
    std::string toDot() const;

  private:
    int push(Node n);

    NodeVec nodes_;
};

} // namespace vespera::graph

#endif // VESPERA_GRAPH_GRAPH_H
