/**
 * @file
 * Graph-level lint pass: whole-model anti-patterns invisible at the
 * single-kernel level. Where the TPC analyzer inspects one recorded
 * trace, this pass inspects the dataflow IR for work the Gaudi graph
 * compiler's passes (Section 2.2) would eliminate — unfused elementwise
 * chains burning HBM round trips, MME geometry reconfiguration thrash
 * between consecutive GEMMs, and GEMM consumers that miss the MME-TPC
 * pipelining overlap.
 */

#ifndef VESPERA_GRAPH_LINT_H
#define VESPERA_GRAPH_LINT_H

#include <vector>

#include "analysis/analyzer.h"
#include "graph/graph.h"

namespace vespera::graph {

/**
 * Lint a graph (pre- or post-compilation; a compiled graph should be
 * clean of unfused-elementwise findings). Diagnostics carry the node
 * name in `kernel` and the node id in `instrIndex`. Per-rule counts
 * are exported to obs::CounterRegistry as "analysis.diag.<rule>".
 */
std::vector<analysis::Diagnostic> lintGraph(const Graph &graph);

} // namespace vespera::graph

#endif // VESPERA_GRAPH_LINT_H
