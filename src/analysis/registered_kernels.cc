/**
 * @file
 * The built-in lint corpus: every TPC kernel family in src/kern/,
 * traced at fixed shapes with fixed seeds. Shapes are chosen small
 * enough that the whole sweep runs in seconds, while still exercising
 * the behaviors the rules look for (the naive STREAM variants exist
 * precisely to keep the narrow-access and exposed-latency rules honest
 * against a known-bad kernel).
 */

#include "analysis/kernel_registry.h"

#include <cstdio>

#include "common/rng.h"
#include "kern/embedding.h"
#include "kern/gather_scatter.h"
#include "kern/layernorm.h"
#include "kern/softmax.h"
#include "kern/stream.h"
#include "port/corpus.h"
#include "port/lower.h"

namespace vespera::analysis {

namespace {

TracedKernel
traceStream(const char *name, kern::StreamConfig config)
{
    TracedKernel t;
    t.name = name;
    char shape[128];
    std::snprintf(shape, sizeof(shape),
                  "n=%llu access=%lluB unroll=%d",
                  static_cast<unsigned long long>(config.numElements),
                  static_cast<unsigned long long>(config.accessBytes),
                  config.unroll);
    t.shape = shape;
    t.program = captureTrace([config] { kern::runStreamGaudi(config); });
    return t;
}

} // namespace

void
registerBuiltinKernels()
{
    KernelRegistry &reg = KernelRegistry::instance();
    static bool done = false;
    if (done)
        return;
    done = true;

    reg.add("softmax", [] {
        kern::SoftmaxConfig config;
        config.rows = 48;
        config.cols = 1024;
        TracedKernel t;
        t.name = "softmax";
        t.shape = "rows=48 cols=1024 fp32";
        t.program =
            captureTrace([config] { kern::runSoftmaxGaudi(config); });
        return t;
    });

    reg.add("layernorm", [] {
        kern::NormConfig config;
        config.kind = kern::NormKind::LayerNorm;
        config.rows = 48;
        config.cols = 2048;
        TracedKernel t;
        t.name = "layernorm";
        t.shape = "rows=48 cols=2048 fp32";
        t.program =
            captureTrace([config] { kern::runNormGaudi(config); });
        return t;
    });

    reg.add("rmsnorm", [] {
        kern::NormConfig config;
        config.kind = kern::NormKind::RmsNorm;
        config.rows = 48;
        config.cols = 2048;
        TracedKernel t;
        t.name = "rmsnorm";
        t.shape = "rows=48 cols=2048 fp32";
        t.program =
            captureTrace([config] { kern::runNormGaudi(config); });
        return t;
    });

    reg.add("stream_triad_tuned", [] {
        kern::StreamConfig config;
        config.op = kern::StreamOp::Triad;
        config.numElements = 1 << 16;
        config.accessBytes = 256;
        config.unroll = 4;
        return traceStream("stream_triad_tuned", config);
    });

    // The shape Figure 8(a,b) shows losing most of the bandwidth:
    // sub-granule accesses and no unrolling. Kept in the corpus as a
    // known-bad kernel the narrow-access / exposed-latency rules must
    // flag (its findings are part of the checked-in baseline).
    reg.add("stream_triad_naive", [] {
        kern::StreamConfig config;
        config.op = kern::StreamOp::Triad;
        config.numElements = 1 << 16;
        config.accessBytes = 64;
        config.unroll = 1;
        return traceStream("stream_triad_naive", config);
    });

    reg.add("stream_add_tuned", [] {
        kern::StreamConfig config;
        config.op = kern::StreamOp::Add;
        config.numElements = 1 << 16;
        config.accessBytes = 256;
        config.unroll = 4;
        return traceStream("stream_add_tuned", config);
    });

    reg.add("gather", [] {
        kern::GatherScatterConfig config;
        config.numVectors = 1 << 12;
        config.vectorBytes = 256;
        config.accessFraction = 0.25;
        config.scatter = false;
        Rng rng(0x9a7e4);
        TracedKernel t;
        t.name = "gather";
        t.shape = "vectors=4096 vec=256B frac=0.25";
        t.program = captureTrace(
            [&] { kern::runGatherScatterGaudi(config, rng); });
        return t;
    });

    reg.add("scatter", [] {
        kern::GatherScatterConfig config;
        config.numVectors = 1 << 12;
        config.vectorBytes = 256;
        config.accessFraction = 0.25;
        config.scatter = true;
        Rng rng(1234);
        TracedKernel t;
        t.name = "scatter";
        t.shape = "vectors=4096 vec=256B frac=0.25";
        t.program = captureTrace(
            [&] { kern::runGatherScatterGaudi(config, rng); });
        return t;
    });

    // The three embedding variants share one layer (Section 4.1).
    struct EmbeddingCase
    {
        const char *name;
        kern::EmbeddingVariant variant;
    };
    static constexpr EmbeddingCase embeddingCases[] = {
        {"embedding_sdk", kern::EmbeddingVariant::SdkSingleTable},
        {"embedding_single", kern::EmbeddingVariant::SingleTable},
        {"embedding_batched", kern::EmbeddingVariant::BatchedTable},
    };
    for (const EmbeddingCase &c : embeddingCases) {
        reg.add(c.name, [c] {
            kern::EmbeddingConfig config;
            config.numTables = 4;
            config.rowsPerTable = 1 << 10;
            config.vectorBytes = 256;
            config.batch = 32;
            config.pooling = 20;
            kern::EmbeddingLayerGaudi layer(config);
            Rng rng(42);
            TracedKernel t;
            t.name = c.name;
            t.shape = "tables=4 rows=1024 vec=256B batch=32 pool=20";
            t.program =
                captureTrace([&] { layer.run(c.variant, rng); });
            return t;
        });
    }

    // The migration corpus (port/corpus.h): every CUDA kernel desc,
    // lowered by port::lowerAndRun at its corpus LowerOptions. Ported
    // traces carry "port:*" op labels, so the lint sweep runs the
    // migration-aware passes over them; hand-written kernels above are
    // untouched by those passes.
    for (const port::CorpusEntry &e : port::migrationCorpus()) {
        const port::CorpusEntry *entry = &e;
        reg.add(e.desc.name, [entry] {
            TracedKernel t;
            t.name = entry->desc.name;
            t.shape = entry->desc.shape;
            t.program = captureTrace(
                [entry] { port::lowerAndRun(entry->desc, entry->lower); });
            return t;
        });
    }
}

} // namespace vespera::analysis
