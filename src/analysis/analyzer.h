/**
 * @file
 * Static analyzer over recorded tpc::Program traces.
 *
 * The paper's programmability study (Section 4, Table 4) attributes
 * most of Gaudi-2's kernel-level performance loss to a small set of
 * authoring mistakes: global accesses below the 256 B granularity,
 * dependency chains that expose the 4-cycle vector-instruction
 * latency, under-unrolled loops that starve the four VLIW slots, and
 * random-access patterns where streaming would do. Because our kernels
 * record SSA instruction traces, every one of those anti-patterns is
 * detectable *before* the timing model runs — this module builds the
 * def-use graph, replays the pipeline's issue schedule to attribute
 * each stall cycle to its cause, and reports diagnostics with
 * severity, instruction index, source kernel, and an estimated
 * cycle/byte cost.
 */

#ifndef VESPERA_ANALYSIS_ANALYZER_H
#define VESPERA_ANALYSIS_ANALYZER_H

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "tpc/pipeline.h"
#include "tpc/program.h"

namespace vespera::analysis {

/** Diagnostic severity. Errors gate CI; warnings are baselined. */
enum class Severity : std::uint8_t {
    Info,
    Warning,
    Error,
};

const char *severityName(Severity s);

/** Lint-rule identifiers (stable strings used in reports/baselines). */
namespace rules {
/// Dependency chain shorter than the latency window: issue stalled
/// waiting on a source value (paper: 4-cycle vector latency).
inline constexpr const char *exposedLatency = "exposed-latency";
/// Global load/store below the 256 B access granularity.
inline constexpr const char *narrowAccess = "narrow-access";
/// Random-access stream whose addresses are in fact sequential.
inline constexpr const char *randomShouldStream = "random-should-stream";
/// VLIW slot-pressure imbalance (saturated or starved issue slots).
inline constexpr const char *slotImbalance = "slot-imbalance";
/// SSA value produced but never consumed.
inline constexpr const char *deadValue = "dead-value";
/// Global re-load of bytes already loaded by the same trace.
inline constexpr const char *redundantReload = "redundant-reload";
/// Local-memory working set near/over the TPC's capacity.
inline constexpr const char *localOverflow = "local-overflow";
/// Malformed trace: source value used before/without definition.
inline constexpr const char *invalidSsa = "invalid-ssa";

/// @name Graph-level rules (implemented in graph/lint.h).
/// @{
/// Elementwise chain the compiler's fusion pass would fold away.
inline constexpr const char *unfusedElementwise = "unfused-elementwise";
/// Consecutive GEMMs forcing MME geometry reconfiguration.
inline constexpr const char *mmeGeometryThrash = "mme-geometry-thrash";
/// Vector op consuming a GEMM without MME-TPC pipelining.
inline constexpr const char *unpipelinedConsumer =
    "unpipelined-mme-consumer";
/// @}
} // namespace rules

/** One finding. */
struct Diagnostic
{
    std::string rule;
    Severity severity = Severity::Info;
    /// Offending kernel (Program::kernelName; may be ""). Graph-level
    /// lints put the node name here.
    std::string kernel;
    /// Instruction index within the trace; -1 for trace-wide findings.
    std::int64_t instrIndex = -1;
    /// Op label of the offending instruction (intrinsic or phase tag).
    std::string opLabel;
    std::string message;
    /// One-line suggested remediation ("" when the message says it
    /// all). The static pipeline fills this for every finding; the
    /// vespera-lint-static/v1 JSON exposes it as "fix_hint".
    std::string fixHint;
    /// Estimated cycles this finding costs (0 when inapplicable).
    double costCycles = 0;
    /// Estimated bus/HBM bytes wasted (0 when inapplicable).
    Bytes wastedBytes = 0;
};

/** Aggregate per-rule totals (counts every instance, even those not
 *  emitted as individual diagnostics). */
struct RuleSummary
{
    int count = 0;
    double costCycles = 0;
    Bytes wastedBytes = 0;
};

/** Analyzer knobs. Defaults match the simulated Gaudi-2 TPC. */
struct AnalyzerOptions
{
    tpc::TpcParams params = tpc::TpcParams::forGaudi2();
    /// TPC vector local memory capacity (TpcContext default: 80 KB).
    Bytes localMemoryBytes = 80 * 1024;
    /// Individual diagnostics emitted per rule; totals count them all.
    int maxDiagnosticsPerRule = 8;
    /// Dependency stall (cycles) below which no per-instruction
    /// exposed-latency diagnostic is emitted.
    double minStallCycles = 3.0;
    /// Minimum run of address-sequential random accesses to flag.
    int minSequentialRun = 4;
    /// Publish per-rule counts to obs::CounterRegistry
    /// ("analysis.diag.<rule>").
    bool exportCounters = true;
};

/** Everything the analyzer learned about one trace. */
struct Report
{
    std::string kernel;
    std::vector<Diagnostic> diagnostics;
    std::map<std::string, RuleSummary> rules;

    std::uint64_t instructions = 0;
    double cycles = 0;
    /// Stall cycles as measured by tpc::evaluatePipeline.
    double measuredStallCycles = 0;
    /// Analyzer's attribution total (per-cause stalls + drain). By
    /// construction this equals measuredStallCycles; tests enforce it.
    double predictedStallCycles = 0;
    double dependencyStallCycles = 0;
    double memoryStallCycles = 0;
    double slotStallCycles = 0;
    double drainStallCycles = 0;
    /// Longest def-use chain through the trace, in cycles (a lower
    /// bound on execution no amount of unrolling removes).
    double criticalPathCycles = 0;
    /// Instructions issued per VLIW slot (load, store, vector, scalar).
    std::array<std::uint64_t, tpc::numSlots> slotCounts{};
    /// Local-memory working set observed in the trace.
    Bytes localBytesUsed = 0;

    /** True when any diagnostic has severity >= `s`. */
    bool hasSeverity(Severity s) const;

    /** Count of findings for `rule` (0 when the rule never fired). */
    int countFor(const std::string &rule) const;
};

/** Analyze one recorded trace. Never mutates the program. */
Report analyzeProgram(const tpc::Program &program,
                      const AnalyzerOptions &options = {});

} // namespace vespera::analysis

#endif // VESPERA_ANALYSIS_ANALYZER_H
