/**
 * @file
 * Static cost model: predicts per-kernel issue cycles from the lifted
 * SSA IR, before the cycle simulator runs.
 *
 * The model re-derives the TPC's issue discipline from first
 * principles over the IR — in-order issue, one instruction per VLIW
 * slot per cycle, result latencies from tpc::resultLatency, and a
 * global-memory interface moving whole granules at a bounded rate —
 * and schedules every IR instruction under those rules. It never
 * consults tpc::IssueTrace; the trace analyzer and this model are two
 * independent predictors of the same machine, and
 * tests/analysis/test_static_cost.cc cross-validates them against each
 * other on every registered kernel (tolerance: ±10%; in practice they
 * agree to round-off, and any divergence is a bug in the simulator or
 * the model — that is the point of having both).
 *
 * Alongside the scheduled estimate the model reports three analytic
 * lower bounds — dependence height, busiest-slot resource bound, and
 * memory-interface bound — whose max is the roofline no schedule can
 * beat; the gap between the scheduled estimate and that max is the
 * statically-visible optimization headroom.
 */

#ifndef VESPERA_ANALYSIS_STATIC_COST_MODEL_H
#define VESPERA_ANALYSIS_STATIC_COST_MODEL_H

#include <vector>

#include "analysis/static/ir.h"
#include "tpc/pipeline.h"

namespace vespera::analysis {

/** Per-instruction outcome of the static schedule. */
struct ScheduledInstr
{
    double issueCycle = 0;
    double stallCycles = 0;
    tpc::StallCause cause = tpc::StallCause::None;
    /// Source value whose latency bound the issue (Dependency only).
    std::int32_t criticalSrc = -1;
};

/** The static schedule and its cycle prediction. */
struct StaticSchedule
{
    std::vector<ScheduledInstr> instrs;
    /// Predicted total issue cycles (the cross-validated number).
    double cycles = 0;
    double stallCycles = 0;
    double dependencyStallCycles = 0;
    double memoryStallCycles = 0;
    double slotStallCycles = 0;
    /// Result/memory drain past the last issue.
    double drainStallCycles = 0;

    /// @name Analytic lower bounds (roofline terms).
    /// @{
    /// Longest def-use chain height in cycles.
    double criticalPathBound = 0;
    /// Busiest VLIW slot: one issue per slot per cycle.
    double slotResourceBound = 0;
    /// Global-memory interface: granule transactions x issue interval.
    double memoryBound = 0;
    /// @}

    /// max(criticalPath, slotResource, memory) — the roofline.
    double lowerBound() const
    {
        double b = criticalPathBound;
        b = b > slotResourceBound ? b : slotResourceBound;
        b = b > memoryBound ? b : memoryBound;
        return b;
    }
};

/**
 * Schedule `ir` under the static machine model. The IR must be valid
 * (no SSA violations); an empty program yields an all-zero schedule.
 */
StaticSchedule scheduleStatic(const StaticIr &ir,
                              const tpc::TpcParams &params);

} // namespace vespera::analysis

#endif // VESPERA_ANALYSIS_STATIC_COST_MODEL_H
