/**
 * @file
 * Rendering of static-analyzer results: human-readable text, the
 * "vespera-lint-static/v1" JSON schema (per-finding fix hints, IR
 * shape, and the cost model's predicted-cycle breakdown), and the
 * bridge back to the trace report machinery so the warnings baseline
 * ratchet (report.h) applies unchanged to static runs.
 */

#ifndef VESPERA_ANALYSIS_STATIC_STATIC_REPORT_H
#define VESPERA_ANALYSIS_STATIC_STATIC_REPORT_H

#include "analysis/report.h"
#include "analysis/static/static_analyzer.h"

namespace vespera::analysis {

/** One statically analyzed trace in a lint run (kernel x shape). */
struct StaticLintEntry
{
    std::string kernel;
    /// Human-readable shape tag ("rows=48 cols=1024"); may be "".
    std::string shape;
    StaticReport report;
};

/** Full static lint run as JSON (schema "vespera-lint-static/v1"). */
json::Value
staticLintReportJson(const std::vector<StaticLintEntry> &entries);

/** Human-readable report; layout mirrors lintReportText. */
std::string
staticLintReportText(const std::vector<StaticLintEntry> &entries,
                     bool verbose);

/**
 * Project onto trace-side LintEntry records (dropping the schedule and
 * IR shape) so baselineJson / checkAgainstBaseline apply to static
 * runs verbatim — same ratchet semantics, separate baseline file.
 */
std::vector<LintEntry>
toLintEntries(const std::vector<StaticLintEntry> &entries);

} // namespace vespera::analysis

#endif // VESPERA_ANALYSIS_STATIC_STATIC_REPORT_H
