/**
 * @file
 * Pre-execution static analyzer over recorded TPC kernel traces.
 *
 * The sibling of analysis/analyzer.h with the measurement removed:
 * where analyzeProgram replays the cycle simulator and attributes its
 * IssueTrace, analyzeProgramStatic lifts the trace to SSA IR
 * (analysis/static/ir.h), runs dataflow passes over that IR, and
 * predicts issue cycles with the static cost model
 * (analysis/static/cost_model.h) — no simulator cycle is consumed.
 *
 * Every trace rule with a static counterpart (exposed-latency,
 * narrow-access, random-should-stream, slot-imbalance, dead-value,
 * redundant-reload, local-overflow, invalid-ssa) produces the same
 * finding set through both pipelines on the registered kernels;
 * tests/analysis/test_static_cost.cc pins that parity. Two passes are
 * static-only: register-pressure (live-range analysis against the TPC
 * local-memory budget) and swp-opportunity (loops whose achieved
 * initiation interval trails their recurrence/resource bound, i.e.
 * software pipelining would pay).
 */

#ifndef VESPERA_ANALYSIS_STATIC_STATIC_ANALYZER_H
#define VESPERA_ANALYSIS_STATIC_STATIC_ANALYZER_H

#include "analysis/analyzer.h"
#include "analysis/static/cost_model.h"
#include "analysis/static/ir.h"

namespace vespera::analysis {

namespace rules {
/// Peak live SSA state near/over the TPC local-memory budget
/// (static-only: live-range analysis).
inline constexpr const char *registerPressure = "register-pressure";
/// Loop whose achieved initiation interval exceeds its
/// recurrence/resource lower bound: software pipelining would pay
/// (static-only).
inline constexpr const char *swpOpportunity = "swp-opportunity";

/// @name Migration-aware rules (ported "port:*"-labelled traces only).
/// @{
/// Predicated CUDA lanes emulated with mask + select instructions.
inline constexpr const char *divergenceEmulation =
    "divergence-emulation";
/// Warp accesses that lost coalescing in the port: shattered into
/// per-lane transactions, or vectorized below the TPC granule.
inline constexpr const char *coalescingLoss = "coalescing-loss";
/// __shared__ staging of unmodified global loads, ported verbatim.
inline constexpr const char *stagingRedundancy = "staging-redundancy";
/// Thread-order issue exposing latencies the GPU's warp scheduler
/// hid; strip-level software pipelining would recover them.
inline constexpr const char *loweredPipelining = "lowered-pipelining";
/// @}
} // namespace rules

/** Static-analyzer knobs. Defaults match the simulated Gaudi-2 TPC
 *  and the trace analyzer's thresholds (parity depends on it). */
struct StaticAnalyzerOptions
{
    tpc::TpcParams params = tpc::TpcParams::forGaudi2();
    Bytes localMemoryBytes = 80 * 1024;
    int maxDiagnosticsPerRule = 8;
    /// Predicted dependency stall below which no exposed-latency
    /// diagnostic is emitted (same default as AnalyzerOptions).
    double minStallCycles = 3.0;
    int minSequentialRun = 4;
    /// Publish per-rule counts as "analysis.static.diag.<rule>".
    bool exportCounters = true;

    /// @name IR lifting.
    /// @{
    std::size_t maxLoopPeriod = 128;
    int maxLoopNesting = 3;
    /// @}

    /// @name Static-only pass thresholds.
    /// @{
    /// Peak live bytes / local memory above which register-pressure
    /// reports Info resp. Warning.
    double registerPressureInfoFrac = 0.5;
    double registerPressureWarnFrac = 0.9;
    /// Achieved II must exceed bound * this factor to flag SWP.
    double swpGapFactor = 1.2;
    /// ... and the projected saving must reach this many cycles.
    double swpMinSavedCycles = 16;
    /// @}

    /// @name Migration-aware pass thresholds (ported traces only).
    /// @{
    /// Dependency-stall fraction of total cycles above which
    /// lowered-pipelining fires on a ported program.
    double portStallFrac = 0.10;
    /// @}
};

/** Everything the static pipeline learned about one trace. */
struct StaticReport
{
    /// Diagnostics / per-rule summaries / slot counts, in the same
    /// shape the trace analyzer emits (predictedStallCycles and the
    /// per-cause stalls come from the cost model; measuredStallCycles
    /// stays 0 — nothing was measured).
    Report report;
    /// The full static schedule (per-instruction issue prediction).
    StaticSchedule schedule;

    /// @name IR shape.
    /// @{
    std::size_t blockCount = 0;
    std::size_t loopCount = 0;
    int maxLoopDepth = 0;
    /// @}

    /// @name Live-range analysis results.
    /// @{
    std::uint64_t maxLiveValues = 0;
    Bytes peakLiveBytes = 0;
    /// @}

    /// Predicted issue cycles (schedule.cycles; the number the cost
    /// model is cross-validated on).
    double predictedCycles() const { return schedule.cycles; }
};

/** Analyze one recorded trace statically. Never runs the simulator. */
StaticReport
analyzeProgramStatic(const tpc::Program &program,
                     const StaticAnalyzerOptions &options = {});

} // namespace vespera::analysis

#endif // VESPERA_ANALYSIS_STATIC_STATIC_ANALYZER_H
