#include "analysis/static/ir.h"

#include <algorithm>

#include "common/logging.h"
#include "tpc/pipeline.h"

namespace vespera::analysis {

namespace {

/**
 * Structural signature of one instruction: everything that is stable
 * across loop iterations. SSA ids and memory offsets change per trip
 * and are deliberately excluded; the stream id is included so loads
 * from different tensors never alias into a fake period.
 */
std::uint64_t
instrSignature(const tpc::Instr &i)
{
    std::uint64_t h = 1469598103934665603ull; // FNV-1a.
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    mix(static_cast<std::uint64_t>(i.slot));
    mix(static_cast<std::uint64_t>(i.access));
    mix(static_cast<std::uint64_t>(i.memBytes));
    mix(static_cast<std::uint64_t>(i.memStream));
    mix(static_cast<std::uint64_t>(
        static_cast<std::uint32_t>(i.opLabel + 1)));
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(i.lanes)));
    mix(static_cast<std::uint64_t>(i.flopsPerLane * 16));
    mix(i.dst >= 0 ? 1u : 0u);
    mix((i.src0 >= 0 ? 1u : 0u) | (i.src1 >= 0 ? 2u : 0u) |
        (i.src2 >= 0 ? 4u : 0u));
    return h;
}

/** One element of the sequence the periodicity scan runs over: an
 *  instruction at level 0, a collapsed region (loop) above. */
struct Item
{
    std::uint64_t sig = 0;
    std::size_t first = 0; ///< Absolute index of the first instruction.
    std::size_t len = 1;   ///< Instructions covered.
};

/**
 * Minimum repetitions to call a run of period `p` a loop: two body
 * copies in general, three for single-item bodies — two identical
 * instructions in a row are weak evidence (a prologue load next to
 * the first body load), and collapsing such a pair shifts the phase
 * of the real enclosing loop.
 */
std::size_t
minTrips(std::size_t p)
{
    return p == 1 ? 3 : 2;
}

/**
 * True when a repetition of some period smaller than `period` starts
 * strictly inside (i, i + period). The candidate match at `i` is then
 * phase-rotated over an interior loop (the classic case: an outer
 * body recovered as "S L A L A ..." starting at its trailing store,
 * swallowing the (L A) inner loop). Declining the rotated match lets
 * the interior loop collapse first; the outer periodicity re-emerges
 * over the collapsed markers at the next nesting level, in phase.
 */
bool
shadowsInteriorLoop(const std::vector<Item> &items, std::size_t i,
                    std::size_t period)
{
    const std::size_t n = items.size();
    for (std::size_t o = i + 1; o < i + period; o++) {
        for (std::size_t p = 1; p < period && o + 2 * p <= n; p++) {
            std::size_t trips = 1;
            while (o + (trips + 1) * p <= n &&
                   trips < minTrips(p)) {
                bool same = true;
                for (std::size_t k = 0; k < p; k++) {
                    if (items[o + trips * p + k].sig !=
                        items[o + k].sig) {
                        same = false;
                        break;
                    }
                }
                if (!same)
                    break;
                trips++;
            }
            if (trips >= minTrips(p))
                return true;
        }
    }
    return false;
}

/**
 * One level of loop recovery: greedily find the smallest period p at
 * each position with enough consecutive repetitions, emit a Loop
 * covering the maximal run, and collapse it into a single item.
 * Returns true when any loop was found (another level may nest).
 */
bool
detectLoopsOneLevel(std::vector<Item> &items, std::vector<Loop> &loops,
                    int depth, const LiftOptions &options)
{
    std::vector<Item> out;
    out.reserve(items.size());
    bool found_any = false;
    std::size_t i = 0;
    const std::size_t n = items.size();
    while (i < n) {
        std::size_t best_period = 0;
        std::size_t best_trips = 0;
        const std::size_t max_p =
            std::min(options.maxLoopPeriod, (n - i) / 2);
        for (std::size_t p = 1; p <= max_p; p++) {
            // Count consecutive repetitions of items[i, i+p).
            std::size_t trips = 1;
            while (i + (trips + 1) * p <= n) {
                bool same = true;
                for (std::size_t k = 0; k < p; k++) {
                    if (items[i + trips * p + k].sig !=
                        items[i + k].sig) {
                        same = false;
                        break;
                    }
                }
                if (!same)
                    break;
                trips++;
            }
            if (trips >= minTrips(p)) {
                best_period = p;
                best_trips = trips;
                break; // Smallest period wins: the true body.
            }
        }
        if (best_period > 1 &&
            shadowsInteriorLoop(items, i, best_period)) {
            best_period = 0; // Rotated match; take it next level.
        }
        if (best_period == 0) {
            out.push_back(items[i]);
            i++;
            continue;
        }
        found_any = true;
        Loop loop;
        loop.id = static_cast<std::int32_t>(loops.size());
        loop.first = items[i].first;
        loop.bodyLength = 0;
        for (std::size_t k = 0; k < best_period; k++)
            loop.bodyLength += items[i + k].len;
        loop.tripCount = static_cast<std::int64_t>(best_trips);
        loop.depth = depth;
        loops.push_back(loop);

        Item collapsed;
        // The collapsed signature folds the body signature sequence
        // and the trip count, so outer periodicity only matches runs
        // whose inner loops are structurally identical.
        std::uint64_t h = 14695981039346656037ull;
        auto mix = [&h](std::uint64_t v) {
            h ^= v;
            h *= 1099511628211ull;
        };
        mix(0x100Fu); // Loop marker.
        for (std::size_t k = 0; k < best_period; k++)
            mix(items[i + k].sig);
        mix(best_trips);
        collapsed.sig = h;
        collapsed.first = items[i].first;
        collapsed.len = loop.span();
        out.push_back(collapsed);
        i += best_period * best_trips;
    }
    items = std::move(out);
    return found_any;
}

/**
 * Drop degenerate loop records before nesting resolution: zero-trip or
 * single-iteration loops, empty bodies, and spans overrunning the
 * trace. The periodicity detector never emits them (minTrips >= 2 and
 * period >= 1 by construction), but every downstream consumer —
 * analyzeLoopDataflow here, the predictor's feature extractor — reads
 * instrs[first + trip * bodyLength + k] and would index out of range,
 * so the lifter enforces the invariant structurally instead of
 * trusting the detector. Runs before resolveNesting, while parent
 * links are still unset, so compaction needs no id remapping.
 */
void
sanitizeLoops(StaticIr &ir)
{
    const std::size_t n = ir.size();
    std::vector<Loop> kept;
    kept.reserve(ir.loops.size());
    for (const Loop &l : ir.loops) {
        if (l.tripCount < 2 || l.bodyLength == 0)
            continue;
        if (l.first >= n || l.span() > n - l.first)
            continue;
        Loop copy = l;
        copy.id = static_cast<std::int32_t>(kept.size());
        kept.push_back(copy);
    }
    ir.loops = std::move(kept);
}

/** True when loop `inner`'s full span lies inside `outer`'s span. */
bool
spanContains(const Loop &outer, const Loop &inner)
{
    return outer.first <= inner.first &&
           inner.first + inner.span() <= outer.first + outer.span();
}

void
resolveNesting(StaticIr &ir)
{
    // Parent = smallest-span loop strictly containing the child.
    // Copies of an inner loop living in a non-first iteration of their
    // parent are structural repeats of the canonical first-iteration
    // copy; drop them.
    std::vector<Loop> &loops = ir.loops;
    std::vector<char> keep(loops.size(), 1);
    for (std::size_t a = 0; a < loops.size(); a++) {
        std::int32_t parent = -1;
        std::size_t parent_span = 0;
        for (std::size_t b = 0; b < loops.size(); b++) {
            if (a == b || loops[b].span() <= loops[a].span())
                continue;
            if (!spanContains(loops[b], loops[a]))
                continue;
            // Living in a non-first iteration of ANY containing loop
            // (not just the immediate parent — the check must be
            // transitive) makes this copy a structural repeat.
            if (loops[a].first >= loops[b].first + loops[b].bodyLength)
                keep[a] = 0;
            if (parent < 0 || loops[b].span() < parent_span) {
                parent = static_cast<std::int32_t>(b);
                parent_span = loops[b].span();
            }
        }
        loops[a].parent = parent;
    }
    // Compact, remapping ids/parents.
    std::vector<std::int32_t> remap(loops.size(), -1);
    std::vector<Loop> kept;
    for (std::size_t a = 0; a < loops.size(); a++) {
        if (!keep[a])
            continue;
        remap[a] = static_cast<std::int32_t>(kept.size());
        kept.push_back(loops[a]);
    }
    for (Loop &l : kept) {
        l.id = remap[static_cast<std::size_t>(l.id)];
        // A dropped parent is impossible: a parent always contains its
        // children's first copies, and parents are dropped only when
        // they are themselves repeats — in which case the child copy
        // inside them was dropped too.
        if (l.parent >= 0)
            l.parent = remap[static_cast<std::size_t>(l.parent)];
    }
    loops = std::move(kept);
    // Depth = nesting level from the parent chain (0 = top level).
    for (Loop &l : loops) {
        int depth = 0;
        std::int32_t p = l.parent;
        while (p >= 0) {
            depth++;
            p = loops[static_cast<std::size_t>(p)].parent;
        }
        l.depth = depth;
    }
}

/**
 * Blocks partition the *canonical* instruction space: every loop
 * contributes only its first iteration (the rest are structural
 * repeats), and consecutive canonical instructions sharing the same
 * innermost loop form one block.
 */
void
buildBlocks(StaticIr &ir)
{
    const std::size_t n = ir.size();
    // Innermost canonical loop per instruction; -2 = non-canonical.
    std::vector<std::int32_t> owner(n, -1);
    for (const Loop &l : ir.loops) {
        for (std::size_t i = l.first; i < l.first + l.span(); i++) {
            if (owner[i] == -2)
                continue;
            if (i >= l.first + l.bodyLength) {
                owner[i] = -2; // Repeat iteration: not canonical.
            } else if (owner[i] < 0 ||
                       ir.loops[static_cast<std::size_t>(owner[i])]
                               .bodyLength > l.bodyLength) {
                owner[i] = l.id;
            }
        }
    }
    for (std::size_t i = 0; i < n;) {
        if (owner[i] == -2) {
            i++;
            continue;
        }
        BasicBlock b;
        b.id = static_cast<std::int32_t>(ir.blocks.size());
        b.first = i;
        b.loopId = owner[i];
        b.kind = owner[i] >= 0 ? BlockKind::LoopBody
                               : BlockKind::Straight;
        std::size_t j = i;
        while (j < n && owner[j] == owner[i])
            j++;
        b.count = j - i;
        ir.blocks.push_back(b);
        i = j;
    }
}

void
analyzeLoopDataflow(StaticIr &ir)
{
    const auto &instrs = ir.program->instrs();
    const tpc::TpcParams params = tpc::TpcParams::forGaudi2();
    // Which loops have children (affine analysis is innermost-only).
    std::vector<char> has_child(ir.loops.size(), 0);
    for (const Loop &l : ir.loops) {
        if (l.parent >= 0)
            has_child[static_cast<std::size_t>(l.parent)] = 1;
    }
    for (Loop &l : ir.loops) {
        // sanitizeLoops upholds this; everything below indexes
        // instrs[first + trip * bodyLength + k] on its strength.
        vassert(l.tripCount >= 2 && l.bodyLength > 0 &&
                    l.first + l.span() <= instrs.size(),
                "degenerate loop in dataflow analysis: first=%zu "
                "body=%zu trips=%lld (trace %zu instrs)",
                l.first, l.bodyLength,
                static_cast<long long>(l.tripCount), instrs.size());
        // Loop-carried dependences: sources of second-iteration
        // instructions defined inside the first iteration.
        for (std::size_t k = 0; k < l.bodyLength; k++) {
            const std::size_t use = l.first + l.bodyLength + k;
            const tpc::Instr &instr = instrs[use];
            for (std::int32_t src :
                 {instr.src0, instr.src1, instr.src2}) {
                if (src < 0)
                    continue;
                const std::int64_t def =
                    ir.defIndex[static_cast<std::size_t>(src)];
                if (def < 0 ||
                    static_cast<std::size_t>(def) < l.first ||
                    static_cast<std::size_t>(def) >=
                        l.first + l.bodyLength) {
                    continue;
                }
                LoopCarriedDep dep;
                dep.defBodyIndex =
                    static_cast<std::size_t>(def) - l.first;
                dep.useBodyIndex = k;
                dep.latencyCycles = tpc::resultLatency(
                    instrs[static_cast<std::size_t>(def)], params);
                const bool dup = std::any_of(
                    l.carried.begin(), l.carried.end(),
                    [&dep](const LoopCarriedDep &d) {
                        return d.defBodyIndex == dep.defBodyIndex &&
                               d.useBodyIndex == dep.useBodyIndex;
                    });
                if (!dup)
                    l.carried.push_back(dep);
            }
        }
        // Symbolic stride analysis (innermost loops only): is each
        // body position's global access affine in the trip index?
        if (has_child[static_cast<std::size_t>(l.id)])
            continue;
        for (std::size_t k = 0; k < l.bodyLength; k++) {
            const tpc::Instr &first = instrs[l.first + k];
            if (!tpc::isGlobalMemAccess(first) || first.memOffset < 0)
                continue;
            AffineAccess acc;
            acc.bodyIndex = k;
            acc.stream = first.memStream;
            acc.bytes = first.memBytes;
            acc.base = first.memOffset;
            acc.affine = l.tripCount >= 2;
            acc.stride =
                instrs[l.first + l.bodyLength + k].memOffset -
                first.memOffset;
            for (std::int64_t t = 1; t < l.tripCount; t++) {
                const std::int64_t at = instrs[l.first +
                    static_cast<std::size_t>(t) * l.bodyLength + k]
                                            .memOffset;
                const std::int64_t prev = instrs[l.first +
                    static_cast<std::size_t>(t - 1) * l.bodyLength +
                    k].memOffset;
                if (at < 0 || at - prev != acc.stride) {
                    acc.affine = false;
                    break;
                }
            }
            l.accesses.push_back(acc);
        }
    }
}

} // namespace

const Loop *
StaticIr::innermostLoopAt(std::size_t index) const
{
    const Loop *best = nullptr;
    for (const Loop &l : loops) {
        if (index < l.first || index >= l.first + l.span())
            continue;
        if (best == nullptr || l.bodyLength < best->bodyLength)
            best = &l;
    }
    return best;
}

int
StaticIr::maxLoopDepth() const
{
    int depth = 0;
    for (const Loop &l : loops)
        depth = std::max(depth, l.depth + 1);
    return depth;
}

StaticIr
liftProgram(const tpc::Program &program, const LiftOptions &options)
{
    StaticIr ir;
    ir.program = &program;
    const auto &instrs = program.instrs();
    const std::size_t num_values =
        static_cast<std::size_t>(program.numValues());

    // Def-use chains + SSA well-formedness in one pass.
    ir.defIndex.assign(num_values, -1);
    ir.users.assign(num_values, {});
    for (std::size_t i = 0; i < instrs.size(); i++) {
        const tpc::Instr &instr = instrs[i];
        for (std::int32_t src : {instr.src0, instr.src1, instr.src2}) {
            if (src < 0)
                continue;
            if (static_cast<std::size_t>(src) >= num_values) {
                ir.violations.push_back(
                    {i, src, SsaViolation::Kind::UseOutOfRange});
            } else if (ir.defIndex[static_cast<std::size_t>(src)] < 0) {
                ir.violations.push_back(
                    {i, src, SsaViolation::Kind::UseBeforeDef});
            } else {
                ir.users[static_cast<std::size_t>(src)].push_back(
                    static_cast<std::int64_t>(i));
            }
        }
        if (instr.dst >= 0) {
            if (static_cast<std::size_t>(instr.dst) >= num_values) {
                ir.violations.push_back(
                    {i, instr.dst, SsaViolation::Kind::DefOutOfRange});
            } else if (ir.defIndex[static_cast<std::size_t>(
                           instr.dst)] >= 0) {
                ir.violations.push_back(
                    {i, instr.dst, SsaViolation::Kind::Redefinition});
            } else {
                ir.defIndex[static_cast<std::size_t>(instr.dst)] =
                    static_cast<std::int64_t>(i);
            }
        }
    }
    if (!ir.valid())
        return ir; // No structure recovery on malformed SSA.

    // Bottom-up loop recovery: instructions, then collapsed regions.
    std::vector<Item> items;
    items.reserve(instrs.size());
    for (std::size_t i = 0; i < instrs.size(); i++)
        items.push_back({instrSignature(instrs[i]), i, 1});
    for (int level = 0; level < options.maxLoopNesting; level++) {
        if (!detectLoopsOneLevel(items, ir.loops, level, options))
            break;
    }

    sanitizeLoops(ir);
    resolveNesting(ir);
    buildBlocks(ir);
    analyzeLoopDataflow(ir);
    return ir;
}

} // namespace vespera::analysis
