#include "analysis/static/static_analyzer.h"

#include "analysis/static/passes.h"
#include "common/logging.h"
#include "obs/counters.h"

namespace vespera::analysis {

namespace {

/** Emit one Error diagnostic per SSA violation, matching the trace
 *  analyzer's checkSsa wording (the two pipelines must agree on
 *  malformed traces too). */
void
reportViolations(const StaticIr &ir, DiagnosticSink &sink)
{
    const tpc::Program &program = *ir.program;
    for (const SsaViolation &v : ir.violations) {
        const tpc::Instr &instr = program.instrs()[v.instrIndex];
        Diagnostic d;
        d.rule = rules::invalidSsa;
        d.severity = Severity::Error;
        d.instrIndex = static_cast<std::int64_t>(v.instrIndex);
        d.opLabel = program.label(instr.opLabel);
        switch (v.kind) {
          case SsaViolation::Kind::UseBeforeDef:
            d.message = strfmt("source value v%d used before its "
                               "definition",
                               static_cast<int>(v.value));
            d.fixHint = "record the producing instruction before its "
                        "consumer";
            break;
          case SsaViolation::Kind::UseOutOfRange:
            d.message = strfmt("source value v%d used but never "
                               "allocated",
                               static_cast<int>(v.value));
            d.fixHint = "allocate SSA ids through Program::newValue";
            break;
          case SsaViolation::Kind::Redefinition:
            d.message = strfmt("destination value v%d redefined (SSA "
                               "requires fresh ids)",
                               static_cast<int>(v.value));
            d.fixHint = "every definition needs a fresh SSA id";
            break;
          case SsaViolation::Kind::DefOutOfRange:
            d.message = strfmt("destination value v%d out of range "
                               "(SSA requires fresh ids)",
                               static_cast<int>(v.value));
            d.fixHint = "allocate SSA ids through Program::newValue";
            break;
        }
        sink.add(std::move(d));
    }
}

void
exportRuleCounters(const Report &report,
                   const StaticAnalyzerOptions &options)
{
    if (!options.exportCounters)
        return;
    obs::CounterRegistry &reg = obs::CounterRegistry::instance();
    reg.counter("analysis.static.programs").add(1.0);
    for (const auto &[rule, summary] : report.rules) {
        reg.counter(std::string("analysis.static.diag.") + rule)
            .add(summary.count);
    }
}

} // namespace

StaticReport
analyzeProgramStatic(const tpc::Program &program,
                     const StaticAnalyzerOptions &options)
{
    StaticReport out;
    Report &report = out.report;
    report.kernel = program.kernelName();
    report.instructions = program.instrs().size();
    for (const tpc::Instr &instr : program.instrs())
        report.slotCounts[static_cast<std::size_t>(instr.slot)]++;
    DiagnosticSink sink(report, options.maxDiagnosticsPerRule);

    LiftOptions lift;
    lift.maxLoopPeriod = options.maxLoopPeriod;
    lift.maxLoopNesting = options.maxLoopNesting;
    const StaticIr ir = liftProgram(program, lift);
    if (!ir.valid()) {
        // Malformed traces get the SSA errors and nothing else — the
        // cost model (like the pipeline replay) indexes ready-time
        // state by value id and must not run on them.
        reportViolations(ir, sink);
        exportRuleCounters(report, options);
        return out;
    }

    out.blockCount = ir.blocks.size();
    out.loopCount = ir.loops.size();
    out.maxLoopDepth = ir.maxLoopDepth();

    out.schedule = scheduleStatic(ir, options.params);
    report.cycles = out.schedule.cycles;
    report.predictedStallCycles = out.schedule.stallCycles;
    report.dependencyStallCycles =
        out.schedule.dependencyStallCycles;
    report.memoryStallCycles = out.schedule.memoryStallCycles;
    report.slotStallCycles = out.schedule.slotStallCycles;
    report.drainStallCycles = out.schedule.drainStallCycles;
    report.criticalPathCycles = out.schedule.criticalPathBound;
    // measuredStallCycles stays 0: nothing was measured.

    PassContext ctx{ir, out.schedule, options, out, sink};
    passExposedLatency(ctx);
    passNarrowAccess(ctx);
    passRandomShouldStream(ctx);
    passSlotImbalance(ctx);
    passDeadValue(ctx);
    passRedundantReload(ctx);
    passLocalOverflow(ctx);
    passRegisterPressure(ctx);
    passSwpOpportunity(ctx);
    passDivergenceEmulation(ctx);
    passCoalescingLoss(ctx);
    passStagingRedundancy(ctx);
    passLoweredPipelining(ctx);

    exportRuleCounters(report, options);
    return out;
}

} // namespace vespera::analysis
