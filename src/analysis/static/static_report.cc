#include "analysis/static/static_report.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace vespera::analysis {

namespace {

json::Value
num(double v)
{
    return json::Value::makeNumber(v);
}

json::Value
str(std::string s)
{
    return json::Value::makeString(std::move(s));
}

json::Value
diagnosticJson(const Diagnostic &d)
{
    std::map<std::string, json::Value> m;
    m["rule"] = str(d.rule);
    m["severity"] = str(severityName(d.severity));
    m["kernel"] = str(d.kernel);
    m["instr"] = num(static_cast<double>(d.instrIndex));
    m["op"] = str(d.opLabel);
    m["message"] = str(d.message);
    m["fix_hint"] = str(d.fixHint);
    m["cost_cycles"] = num(d.costCycles);
    m["wasted_bytes"] = num(static_cast<double>(d.wastedBytes));
    return json::Value::makeObject(std::move(m));
}

json::Value
irJson(const StaticReport &r)
{
    std::map<std::string, json::Value> m;
    m["instructions"] =
        num(static_cast<double>(r.report.instructions));
    m["blocks"] = num(static_cast<double>(r.blockCount));
    m["loops"] = num(static_cast<double>(r.loopCount));
    m["max_loop_depth"] = num(r.maxLoopDepth);
    m["max_live_values"] =
        num(static_cast<double>(r.maxLiveValues));
    m["peak_live_bytes"] =
        num(static_cast<double>(r.peakLiveBytes));
    return json::Value::makeObject(std::move(m));
}

json::Value
costJson(const StaticReport &r)
{
    const StaticSchedule &s = r.schedule;
    std::map<std::string, json::Value> m;
    m["predicted_cycles"] = num(s.cycles);
    m["stall_cycles"] = num(s.stallCycles);
    m["dependency_stall_cycles"] = num(s.dependencyStallCycles);
    m["memory_stall_cycles"] = num(s.memoryStallCycles);
    m["slot_stall_cycles"] = num(s.slotStallCycles);
    m["drain_stall_cycles"] = num(s.drainStallCycles);
    m["critical_path_bound"] = num(s.criticalPathBound);
    m["slot_resource_bound"] = num(s.slotResourceBound);
    m["memory_bound"] = num(s.memoryBound);
    return json::Value::makeObject(std::move(m));
}

int
countSeverity(const std::vector<StaticLintEntry> &entries,
              Severity sev)
{
    int n = 0;
    for (const StaticLintEntry &e : entries) {
        for (const Diagnostic &d : e.report.report.diagnostics) {
            if (d.severity == sev)
                n++;
        }
    }
    return n;
}

} // namespace

json::Value
staticLintReportJson(const std::vector<StaticLintEntry> &entries)
{
    std::map<std::string, json::Value> root;
    root["schema"] = str("vespera-lint-static/v1");
    std::vector<json::Value> kernels;
    kernels.reserve(entries.size());
    for (const StaticLintEntry &e : entries) {
        const Report &r = e.report.report;
        std::map<std::string, json::Value> m;
        m["kernel"] = str(e.kernel);
        m["shape"] = str(e.shape);
        m["ir"] = irJson(e.report);
        m["cost"] = costJson(e.report);
        {
            std::map<std::string, json::Value> rules;
            for (const auto &[rule, summary] : r.rules) {
                std::map<std::string, json::Value> s;
                s["count"] = num(summary.count);
                s["cost_cycles"] = num(summary.costCycles);
                s["wasted_bytes"] =
                    num(static_cast<double>(summary.wastedBytes));
                rules[rule] = json::Value::makeObject(std::move(s));
            }
            m["rules"] = json::Value::makeObject(std::move(rules));
        }
        {
            std::vector<json::Value> diags;
            diags.reserve(r.diagnostics.size());
            for (const Diagnostic &d : r.diagnostics)
                diags.push_back(diagnosticJson(d));
            m["diagnostics"] =
                json::Value::makeArray(std::move(diags));
        }
        kernels.push_back(json::Value::makeObject(std::move(m)));
    }
    root["kernels"] = json::Value::makeArray(std::move(kernels));
    {
        std::map<std::string, json::Value> totals;
        totals["errors"] =
            num(countSeverity(entries, Severity::Error));
        totals["warnings"] =
            num(countSeverity(entries, Severity::Warning));
        totals["infos"] = num(countSeverity(entries, Severity::Info));
        root["totals"] = json::Value::makeObject(std::move(totals));
    }
    return json::Value::makeObject(std::move(root));
}

std::string
staticLintReportText(const std::vector<StaticLintEntry> &entries,
                     bool verbose)
{
    std::ostringstream os;
    for (const StaticLintEntry &e : entries) {
        const Report &r = e.report.report;
        const bool clean = r.diagnostics.empty();
        if (clean && !verbose) {
            os << "  OK  " << e.kernel;
            if (!e.shape.empty())
                os << " [" << e.shape << "]";
            os << "\n";
            continue;
        }
        os << "==== " << e.kernel;
        if (!e.shape.empty())
            os << " [" << e.shape << "]";
        os << " ====\n";
        char line[256];
        std::snprintf(
            line, sizeof(line),
            "  %llu instrs -> %zu blocks, %zu loops (depth %d); "
            "predicted %.0f cycles (%.0f stalled: dep %.0f, mem "
            "%.0f, slot %.0f, drain %.0f)\n",
            static_cast<unsigned long long>(r.instructions),
            e.report.blockCount, e.report.loopCount,
            e.report.maxLoopDepth, e.report.predictedCycles(),
            r.predictedStallCycles, r.dependencyStallCycles,
            r.memoryStallCycles, r.slotStallCycles,
            r.drainStallCycles);
        os << line;
        std::snprintf(
            line, sizeof(line),
            "  bounds: critical path %.0f, busiest slot %.0f, "
            "memory %.0f; peak live %llu values / %llu B\n",
            e.report.schedule.criticalPathBound,
            e.report.schedule.slotResourceBound,
            e.report.schedule.memoryBound,
            static_cast<unsigned long long>(e.report.maxLiveValues),
            static_cast<unsigned long long>(e.report.peakLiveBytes));
        os << line;
        for (const Diagnostic &d : r.diagnostics) {
            os << "  " << severityName(d.severity) << ": [" << d.rule
               << "]";
            if (d.instrIndex >= 0)
                os << " @" << d.instrIndex;
            if (!d.opLabel.empty())
                os << " (" << d.opLabel << ")";
            os << " " << d.message;
            if (d.costCycles > 0) {
                std::snprintf(line, sizeof(line), " [~%.0f cycles]",
                              d.costCycles);
                os << line;
            }
            if (d.wastedBytes > 0)
                os << " [" << d.wastedBytes << " B wasted]";
            os << "\n";
            if (!d.fixHint.empty())
                os << "        fix: " << d.fixHint << "\n";
        }
        for (const auto &[rule, summary] : r.rules) {
            const int shown = static_cast<int>(std::count_if(
                r.diagnostics.begin(), r.diagnostics.end(),
                [&rule = rule](const Diagnostic &d) {
                    return d.rule == rule;
                }));
            if (summary.count > shown) {
                os << "  ... [" << rule << "] "
                   << summary.count - shown << " more finding"
                   << (summary.count - shown == 1 ? "" : "s")
                   << " suppressed\n";
            }
        }
    }
    char totals[128];
    std::snprintf(totals, sizeof(totals),
                  "%zu traces: %d errors, %d warnings, %d infos\n",
                  entries.size(),
                  countSeverity(entries, Severity::Error),
                  countSeverity(entries, Severity::Warning),
                  countSeverity(entries, Severity::Info));
    os << totals;
    return os.str();
}

std::vector<LintEntry>
toLintEntries(const std::vector<StaticLintEntry> &entries)
{
    std::vector<LintEntry> out;
    out.reserve(entries.size());
    for (const StaticLintEntry &e : entries)
        out.push_back({e.kernel, e.shape, e.report.report});
    return out;
}

} // namespace vespera::analysis
