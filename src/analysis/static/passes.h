/**
 * @file
 * Dataflow passes over the lifted SSA IR.
 *
 * Each pass re-derives one of the kernel lint rules *statically*: the
 * trace analyzer (analysis/analyzer.cc) diagnoses the same
 * anti-patterns from the simulator's IssueTrace after execution; these
 * passes reach the same verdicts from the IR and the static schedule
 * alone. Rules shared with the trace pipeline must keep finding-set
 * parity on the registered kernels (tests pin this); the two
 * static-only passes (register-pressure, swp-opportunity) have no
 * trace counterpart because they reason about structure the pipeline
 * replay does not expose.
 */

#ifndef VESPERA_ANALYSIS_STATIC_PASSES_H
#define VESPERA_ANALYSIS_STATIC_PASSES_H

#include "analysis/static/static_analyzer.h"

namespace vespera::analysis {

/** Collects findings into a StaticReport, enforcing the per-rule
 *  emission cap (the per-rule RuleSummary still counts everything). */
class DiagnosticSink
{
  public:
    DiagnosticSink(Report &report, int max_per_rule)
        : report_(report), maxPerRule_(max_per_rule)
    {
    }

    void
    add(Diagnostic d)
    {
        RuleSummary &s = report_.rules[d.rule];
        s.count++;
        s.costCycles += d.costCycles;
        s.wastedBytes += d.wastedBytes;
        if (s.count <= maxPerRule_) {
            d.kernel = report_.kernel;
            report_.diagnostics.push_back(std::move(d));
        }
    }

  private:
    Report &report_;
    int maxPerRule_;
};

/** Everything a pass may read and write. */
struct PassContext
{
    const StaticIr &ir;
    const StaticSchedule &schedule;
    const StaticAnalyzerOptions &options;
    StaticReport &report; ///< For side outputs (live ranges, ...).
    DiagnosticSink &sink;
};

/// @name Static counterparts of the trace rules.
/// @{
/// Dependence-height analysis: predicted dependency stalls exposing
/// the latency window (rules::exposedLatency).
void passExposedLatency(PassContext &ctx);
/// Sub-granule global accesses (rules::narrowAccess).
void passNarrowAccess(PassContext &ctx);
/// Random-tagged streams with affine, contiguous strides
/// (rules::randomShouldStream).
void passRandomShouldStream(PassContext &ctx);
/// Static VLIW packing: slot saturation / ILP starvation
/// (rules::slotImbalance).
void passSlotImbalance(PassContext &ctx);
/// SSA values with empty use lists (rules::deadValue).
void passDeadValue(PassContext &ctx);
/// Re-loaded (stream, offset, size) triples (rules::redundantReload).
void passRedundantReload(PassContext &ctx);
/// Local-memory high-water vs capacity (rules::localOverflow).
void passLocalOverflow(PassContext &ctx);
/// @}

/// @name Static-only passes.
/// @{
/// Live-range / register-pressure estimation against the TPC
/// local-memory budget (rules::registerPressure).
void passRegisterPressure(PassContext &ctx);
/// Software-pipelining opportunity detection over recovered loops
/// (rules::swpOpportunity).
void passSwpOpportunity(PassContext &ctx);
/// @}

/// @name Migration-aware passes (passes_port.cc). Each no-ops unless
/// the trace carries "port:*" labels from port::lowerAndRun, so
/// hand-written kernels keep their finding sets byte-identical.
/// @{
/// Mask/select divergence emulation (rules::divergenceEmulation).
void passDivergenceEmulation(PassContext &ctx);
/// Shattered or sub-granule warp accesses (rules::coalescingLoss).
void passCoalescingLoss(PassContext &ctx);
/// Verbatim __shared__ staging of global loads
/// (rules::stagingRedundancy).
void passStagingRedundancy(PassContext &ctx);
/// Thread-order issue vs strip software pipelining
/// (rules::loweredPipelining).
void passLoweredPipelining(PassContext &ctx);
/// @}

} // namespace vespera::analysis

#endif // VESPERA_ANALYSIS_STATIC_PASSES_H
