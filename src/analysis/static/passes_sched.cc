/**
 * @file
 * Schedule-shape passes: dependence-height analysis (exposed latency),
 * static VLIW packing (slot imbalance), live-range / register-pressure
 * estimation, and software-pipelining opportunity detection. The first
 * two mirror the trace analyzer's rules over the *predicted* schedule
 * — the static cost model applies the same issue rules the pipeline
 * does, so the finding sets agree on well-formed traces; the last two
 * are static-only (they need loop and live-range structure the
 * IssueTrace does not carry).
 */

#include <algorithm>
#include <array>

#include "analysis/static/passes.h"
#include "common/logging.h"

namespace vespera::analysis {

namespace {

const char *
slotName(tpc::Slot slot)
{
    switch (slot) {
      case tpc::Slot::Load:
        return "load";
      case tpc::Slot::Store:
        return "store";
      case tpc::Slot::Vector:
        return "vector";
      case tpc::Slot::Scalar:
        return "scalar";
    }
    return "?";
}

} // namespace

void
passExposedLatency(PassContext &ctx)
{
    const tpc::Program &program = *ctx.ir.program;
    struct Candidate
    {
        std::size_t index;
        double stall;
        std::int32_t src;
    };
    std::vector<Candidate> candidates;
    for (std::size_t i = 0; i < ctx.schedule.instrs.size(); i++) {
        const ScheduledInstr &rec = ctx.schedule.instrs[i];
        if (rec.cause == tpc::StallCause::Dependency &&
            rec.stallCycles >= ctx.options.minStallCycles) {
            candidates.push_back({i, rec.stallCycles, rec.criticalSrc});
        }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate &a, const Candidate &b) {
                  return a.stall > b.stall;
              });
    for (const Candidate &c : candidates) {
        const tpc::Instr &instr = program.instrs()[c.index];
        Diagnostic d;
        d.rule = rules::exposedLatency;
        d.severity = Severity::Warning;
        d.instrIndex = static_cast<std::int64_t>(c.index);
        d.opLabel = program.label(instr.opLabel);
        d.costCycles = c.stall;
        std::string producer = "an earlier value";
        if (c.src >= 0 &&
            ctx.ir.defIndex[static_cast<std::size_t>(c.src)] >= 0) {
            const auto def =
                ctx.ir.defIndex[static_cast<std::size_t>(c.src)];
            producer = strfmt(
                "v%d (%s @ %lld)", static_cast<int>(c.src),
                program
                    .label(program.instrs()[static_cast<std::size_t>(
                                                def)]
                               .opLabel)
                    .c_str(),
                static_cast<long long>(def));
        }
        std::string where;
        if (const Loop *loop = ctx.ir.innermostLoopAt(c.index)) {
            where = strfmt(" inside loop #%d",
                           static_cast<int>(loop->id));
        }
        d.message = strfmt(
            "predicted %.0f-cycle dependence stall waiting on %s%s; "
            "the chain is shorter than the %d-cycle latency window",
            c.stall, producer.c_str(), where.c_str(),
            ctx.options.params.vectorLatency);
        d.fixHint = "interleave independent work: unroll deeper or "
                    "rotate across more accumulators";
        ctx.sink.add(std::move(d));
    }
}

void
passSlotImbalance(PassContext &ctx)
{
    // Same degenerate-trace guard as the trace rule: occupancy and
    // stall fractions are meaningless below two instructions.
    if (ctx.schedule.cycles <= 0 || ctx.ir.size() < 2)
        return;
    const tpc::Program &program = *ctx.ir.program;
    std::array<std::uint64_t, tpc::numSlots> slot_counts{};
    for (const tpc::Instr &instr : program.instrs())
        slot_counts[static_cast<std::size_t>(instr.slot)]++;

    double best_occ = 0;
    int best_slot = 0;
    for (int s = 0; s < tpc::numSlots; s++) {
        const double occ =
            static_cast<double>(
                slot_counts[static_cast<std::size_t>(s)]) /
            ctx.schedule.cycles;
        if (occ > best_occ) {
            best_occ = occ;
            best_slot = s;
        }
    }
    const double stall_frac =
        ctx.schedule.stallCycles / ctx.schedule.cycles;

    if (best_occ > 0.85) {
        std::string idle;
        for (int s = 0; s < tpc::numSlots; s++) {
            const double occ =
                static_cast<double>(
                    slot_counts[static_cast<std::size_t>(s)]) /
                ctx.schedule.cycles;
            if (s != best_slot && occ < 0.25 * best_occ) {
                if (!idle.empty())
                    idle += ", ";
                idle += slotName(static_cast<tpc::Slot>(s));
            }
        }
        if (!idle.empty()) {
            Diagnostic d;
            d.rule = rules::slotImbalance;
            d.severity = Severity::Info;
            d.message = strfmt(
                "static packing predicts the %s slot saturated "
                "(%.0f%% occupancy) while %s slot%s idle",
                slotName(static_cast<tpc::Slot>(best_slot)),
                100.0 * best_occ, idle.c_str(),
                idle.find(',') == std::string::npos ? " is"
                                                    : "s are");
            d.fixHint = strfmt(
                "move work across slots or accept the %s-bound "
                "roofline",
                slotName(static_cast<tpc::Slot>(best_slot)));
            ctx.sink.add(std::move(d));
        }
    } else if (stall_frac > 0.3 && best_occ < 0.5) {
        Diagnostic d;
        d.rule = rules::slotImbalance;
        d.severity = Severity::Warning;
        d.costCycles = ctx.schedule.stallCycles;
        d.message = strfmt(
            "no VLIW slot exceeds %.0f%% predicted occupancy while "
            "%.0f%% of cycles stall: the body exposes too little ILP",
            100.0 * best_occ, 100.0 * stall_frac);
        d.fixHint = "unroll deeper or add independent accumulator "
                    "chains";
        ctx.sink.add(std::move(d));
    }
}

void
passRegisterPressure(PassContext &ctx)
{
    const tpc::Program &program = *ctx.ir.program;
    const auto &instrs = program.instrs();
    if (instrs.empty())
        return;

    // Live range of value v: [defIndex[v], last user]. Values with no
    // users die at their definition (still live for one point — the
    // producer must hold them somewhere).
    struct Event
    {
        std::size_t index;
        std::int64_t deltaValues;
        std::int64_t deltaBytes;
    };
    std::vector<Event> events;
    events.reserve(
        static_cast<std::size_t>(program.numValues()) * 2);
    for (std::size_t v = 0;
         v < static_cast<std::size_t>(program.numValues()); v++) {
        const std::int64_t def = ctx.ir.defIndex[v];
        if (def < 0)
            continue;
        std::int64_t last = def;
        if (!ctx.ir.users[v].empty())
            last = ctx.ir.users[v].back();
        const tpc::Instr &producer =
            instrs[static_cast<std::size_t>(def)];
        // A vector value occupies one 4-byte element per lane in the
        // register file / vector local memory; scalars one element.
        const auto bytes = static_cast<std::int64_t>(
            std::max<std::int64_t>(producer.lanes, 1) * 4);
        events.push_back(
            {static_cast<std::size_t>(def), 1, bytes});
        events.push_back(
            {static_cast<std::size_t>(last) + 1, -1, -bytes});
    }
    std::sort(events.begin(), events.end(),
              [](const Event &a, const Event &b) {
                  if (a.index != b.index)
                      return a.index < b.index;
                  return a.deltaValues < b.deltaValues; // Kills first.
              });

    std::int64_t live = 0, live_bytes = 0;
    std::int64_t peak = 0, peak_bytes = 0;
    std::size_t peak_index = 0;
    for (const Event &e : events) {
        live += e.deltaValues;
        live_bytes += e.deltaBytes;
        if (live_bytes > peak_bytes) {
            peak_bytes = live_bytes;
            peak = live;
            peak_index = e.index;
        }
    }
    ctx.report.maxLiveValues = static_cast<std::uint64_t>(peak);
    ctx.report.peakLiveBytes = static_cast<Bytes>(peak_bytes);

    const double frac =
        static_cast<double>(peak_bytes) /
        static_cast<double>(ctx.options.localMemoryBytes);
    if (frac <= ctx.options.registerPressureInfoFrac)
        return;
    const bool warn = frac > ctx.options.registerPressureWarnFrac;
    Diagnostic d;
    d.rule = rules::registerPressure;
    d.severity = warn ? Severity::Warning : Severity::Info;
    d.instrIndex = static_cast<std::int64_t>(
        std::min(peak_index, instrs.size() - 1));
    d.opLabel = program.label(
        instrs[static_cast<std::size_t>(d.instrIndex)].opLabel);
    d.wastedBytes =
        static_cast<Bytes>(peak_bytes) > ctx.options.localMemoryBytes
            ? static_cast<Bytes>(peak_bytes) -
                  ctx.options.localMemoryBytes
            : 0;
    d.message = strfmt(
        "peak live SSA state is %lld values / %lld B, %.0f%% of the "
        "%llu B vector local memory",
        static_cast<long long>(peak),
        static_cast<long long>(peak_bytes), 100.0 * frac,
        static_cast<unsigned long long>(ctx.options.localMemoryBytes));
    d.fixHint = warn ? "shorten live ranges (consume values sooner) "
                       "or tile before the allocator starts spilling"
                     : "live state is over half the budget; further "
                       "unrolling may spill";
    ctx.sink.add(std::move(d));
}

void
passSwpOpportunity(PassContext &ctx)
{
    const tpc::Program &program = *ctx.ir.program;
    if (ctx.schedule.instrs.size() != program.instrs().size())
        return;
    // Child-bearing loops are pipelined by pipelining their inner
    // loops first; only analyze leaves.
    std::vector<char> has_child(ctx.ir.loops.size(), 0);
    for (const Loop &loop : ctx.ir.loops) {
        if (loop.parent >= 0)
            has_child[static_cast<std::size_t>(loop.parent)] = 1;
    }
    for (const Loop &loop : ctx.ir.loops) {
        if (has_child[static_cast<std::size_t>(loop.id)] ||
            loop.tripCount < 4 || loop.bodyLength < 2) {
            continue;
        }
        // Achieved initiation interval: issue-cycle distance between
        // the first instructions of the first and last iterations.
        const std::size_t first = loop.first;
        const std::size_t last_iter_first =
            loop.first +
            loop.bodyLength *
                static_cast<std::size_t>(loop.tripCount - 1);
        if (last_iter_first >= ctx.schedule.instrs.size())
            continue;
        const double achieved_ii =
            (ctx.schedule.instrs[last_iter_first].issueCycle -
             ctx.schedule.instrs[first].issueCycle) /
            static_cast<double>(loop.tripCount - 1);

        // Lower bounds no schedule beats: resource (busiest slot per
        // iteration; the memory interface's sustained rate) and
        // recurrence (the worst loop-carried latency).
        std::array<std::uint64_t, tpc::numSlots> body_slots{};
        std::uint64_t body_txns = 0;
        for (std::size_t i = first; i < first + loop.bodyLength; i++) {
            const tpc::Instr &instr = program.instrs()[i];
            body_slots[static_cast<std::size_t>(instr.slot)]++;
            if (tpc::isGlobalMemAccess(instr)) {
                body_txns += (instr.memBytes +
                              ctx.options.params.granule - 1) /
                             ctx.options.params.granule;
            }
        }
        double resource_ii = 0;
        for (std::uint64_t c : body_slots) {
            resource_ii =
                std::max(resource_ii, static_cast<double>(c));
        }
        resource_ii = std::max(
            resource_ii,
            static_cast<double>(body_txns) *
                ctx.options.params.memIssueIntervalCycles);
        const double bound =
            std::max(resource_ii, loop.recurrenceLatency());
        if (bound <= 0)
            continue;

        const double saved =
            (achieved_ii - bound) *
            static_cast<double>(loop.tripCount - 1);
        if (achieved_ii <= ctx.options.swpGapFactor * bound ||
            saved < ctx.options.swpMinSavedCycles) {
            continue;
        }
        Diagnostic d;
        d.rule = rules::swpOpportunity;
        d.severity = Severity::Info;
        d.instrIndex = static_cast<std::int64_t>(first);
        d.opLabel =
            program.label(program.instrs()[first].opLabel);
        d.costCycles = saved;
        d.message = strfmt(
            "loop #%d (%lld trips, %zu-instr body) achieves a "
            "%.1f-cycle initiation interval against a %.1f-cycle "
            "recurrence/resource bound: software pipelining could "
            "save ~%.0f cycles",
            static_cast<int>(loop.id),
            static_cast<long long>(loop.tripCount), loop.bodyLength,
            achieved_ii, bound, saved);
        d.fixHint = "overlap iterations: hoist next-trip loads above "
                    "this trip's compute (modulo-schedule the body)";
        ctx.sink.add(std::move(d));
    }
}

} // namespace vespera::analysis
