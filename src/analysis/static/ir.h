/**
 * @file
 * SSA-form kernel IR lifted from recorded tpc::Program traces.
 *
 * The functional TPC kernels record fully unrolled, linear SSA
 * instruction streams (every TPC-C intrinsic appends one tpc::Instr).
 * This module lifts that flat stream back into compiler-shaped
 * structure *without running the timing simulator*:
 *
 *  - def-use chains: for every SSA value, its defining instruction and
 *    the ordered list of its users;
 *  - loop structure: counted loops recovered by periodicity detection
 *    over instruction signatures (slot, op label, access class, width,
 *    stream) — iterating twice through the same body produces the same
 *    signature sequence even though SSA ids differ. Detection runs
 *    bottom-up, so an unrolled inner loop nests inside the element
 *    loop that repeats it;
 *  - basic blocks: the straight-line segments between loop boundaries
 *    plus one body block per loop (representing all its trips);
 *  - loop-carried dependences: values defined in iteration t and
 *    consumed in iteration t+1, the recurrences that bound software
 *    pipelining.
 *
 * Everything downstream — the dataflow passes in passes.h and the
 * static cost model in cost_model.h — consumes this IR, never the
 * pipeline's IssueTrace. That is the point: the static pipeline is an
 * independent predictor that can be cross-validated against the cycle
 * simulator.
 */

#ifndef VESPERA_ANALYSIS_STATIC_IR_H
#define VESPERA_ANALYSIS_STATIC_IR_H

#include <cstdint>
#include <string>
#include <vector>

#include "tpc/program.h"

namespace vespera::analysis {

/** Block kind: straight-line code or a recovered loop body. */
enum class BlockKind : std::uint8_t {
    Straight,
    LoopBody,
};

/**
 * One basic block. A LoopBody block covers the *first* iteration's
 * instructions; its owning Loop records the trip count (the remaining
 * iterations repeat the same signature sequence).
 */
struct BasicBlock
{
    std::int32_t id = -1;
    BlockKind kind = BlockKind::Straight;
    /// First instruction index (into Program::instrs()).
    std::size_t first = 0;
    /// Instructions in the block (one iteration for LoopBody).
    std::size_t count = 0;
    /// Owning loop id for LoopBody blocks; -1 for straight-line code.
    std::int32_t loopId = -1;
};

/** One value flowing across a loop back-edge (iteration t -> t+1). */
struct LoopCarriedDep
{
    /// Body-relative index of the producing instruction.
    std::size_t defBodyIndex = 0;
    /// Body-relative index of the consuming instruction.
    std::size_t useBodyIndex = 0;
    /// Result latency of the producer, in cycles (recurrence weight).
    double latencyCycles = 0;
};

/**
 * Per-(body-position) global-memory access pattern across a loop's
 * trips: offset(t) = base + t * stride when `affine`.
 */
struct AffineAccess
{
    std::size_t bodyIndex = 0;  ///< Body-relative instruction index.
    std::uint32_t stream = 0;   ///< Instr::memStream.
    Bytes bytes = 0;            ///< Access payload.
    std::int64_t base = -1;     ///< Offset at trip 0.
    std::int64_t stride = 0;    ///< Per-trip offset delta.
    bool affine = false;        ///< Uniform stride across all trips.
};

/** A counted loop recovered from the trace. */
struct Loop
{
    std::int32_t id = -1;
    /// First instruction of the first iteration.
    std::size_t first = 0;
    /// Instructions per iteration (nested loops fully included).
    std::size_t bodyLength = 0;
    std::int64_t tripCount = 0;
    /// Nesting depth: 0 = innermost-level detection, parents above.
    int depth = 0;
    /// Enclosing loop id; -1 when top-level.
    std::int32_t parent = -1;
    /// Values flowing across the back-edge (recurrences).
    std::vector<LoopCarriedDep> carried;
    /// Symbolic per-position stride analysis of global accesses
    /// (innermost loops only; empty for outer loops).
    std::vector<AffineAccess> accesses;

    /// Total instructions covered by all trips.
    std::size_t span() const
    {
        return bodyLength * static_cast<std::size_t>(tripCount);
    }

    /// Max single-edge recurrence weight, a lower bound on the
    /// initiation interval no amount of pipelining removes.
    double recurrenceLatency() const
    {
        double worst = 0;
        for (const LoopCarriedDep &d : carried)
            worst = worst > d.latencyCycles ? worst : d.latencyCycles;
        return worst;
    }
};

/** An SSA well-formedness violation found during lifting. */
struct SsaViolation
{
    std::size_t instrIndex = 0;
    std::int32_t value = -1;
    enum class Kind : std::uint8_t {
        UseBeforeDef,    ///< Source never (yet) defined.
        UseOutOfRange,   ///< Source id >= Program::numValues().
        Redefinition,    ///< Destination already defined.
        DefOutOfRange,   ///< Destination id >= Program::numValues().
    } kind = Kind::UseBeforeDef;
};

/** The lifted IR of one recorded kernel trace. */
struct StaticIr
{
    /// The lifted program. Non-owning; must outlive the IR.
    const tpc::Program *program = nullptr;

    /// @name Def-use chains.
    /// @{
    /// Value id -> defining instruction index (-1 = no definition).
    std::vector<std::int64_t> defIndex;
    /// Value id -> user instruction indices, in program order.
    std::vector<std::vector<std::int64_t>> users;
    /// @}

    /// Blocks in program order (loop bodies appear once).
    std::vector<BasicBlock> blocks;
    /// Loops in discovery order, innermost first.
    std::vector<Loop> loops;

    /// SSA violations; when non-empty the IR is not analyzable and
    /// blocks/loops are left empty.
    std::vector<SsaViolation> violations;

    bool valid() const { return violations.empty(); }
    std::size_t size() const
    {
        return program != nullptr ? program->instrs().size() : 0;
    }

    /// Innermost loop covering instruction `index`, or nullptr.
    const Loop *innermostLoopAt(std::size_t index) const;

    /// Deepest loop nesting across the trace (0 = no loops).
    int maxLoopDepth() const;
};

/** Lifting knobs. */
struct LiftOptions
{
    /// Longest iteration body (in instructions at the current
    /// detection level) the periodicity scan will consider.
    std::size_t maxLoopPeriod = 128;
    /// Levels of bottom-up loop-nesting recovery.
    int maxLoopNesting = 3;
};

/**
 * Lift `program` into SSA IR. Always succeeds; on malformed SSA the
 * result carries `violations` and no block/loop structure.
 */
StaticIr liftProgram(const tpc::Program &program,
                     const LiftOptions &options = {});

} // namespace vespera::analysis

#endif // VESPERA_ANALYSIS_STATIC_IR_H
